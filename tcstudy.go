// Package tcstudy is a faithful reproduction of "A Performance Study of
// Transitive Closure Algorithms" (Dar and Ramakrishnan, SIGMOD 1994) as a
// reusable Go library.
//
// It provides disk-based full and partial transitive closure (reachability)
// computation over a simulated paged storage system — 2048-byte pages, a
// buffer pool with pluggable replacement policies, and a successor-list
// storage engine — together with the seven algorithms the paper studies
// (BTC, HYB, BJ, SRCH, SPN, JKB, JKB2), the complete cost-metric suite
// headed by page I/O, the synthetic DAG workload generator, and the
// rectangle model of DAG shape used to choose between algorithms.
//
// # Quick start
//
//	g, _ := tcstudy.Generate(2000, 5, 200, 1) // n, F, locality, seed
//	db := tcstudy.NewDB(g)
//	res, _ := db.Run(tcstudy.BTC, tcstudy.Query{}, tcstudy.Config{BufferPages: 20})
//	fmt.Println("page I/O:", res.Metrics.TotalIO())
//
// Cyclic graphs are handled by strongly-connected-component condensation
// (ClosureOfCyclic); everything else requires a DAG, as in the paper.
package tcstudy

import (
	"fmt"

	"tcstudy/internal/core"
	"tcstudy/internal/graph"
	"tcstudy/internal/graphgen"
	"tcstudy/internal/planner"
)

// Arc is one directed edge of the input graph. Nodes are numbered 1..N.
type Arc = graph.Arc

// Algorithm names one of the studied transitive closure algorithms.
type Algorithm = core.Algorithm

// The seven candidate algorithms of the study (paper Section 3).
const (
	// BTC is the basic graph-based algorithm: reverse-topological
	// expansion of flat successor lists with the marking and immediate
	// successor optimizations. The study's overall best for full closure.
	BTC = core.BTC
	// HYB is the Hybrid algorithm: BTC plus successor-list blocking
	// controlled by Config.ILIMIT. Best at ILIMIT 0, where it equals BTC.
	HYB = core.HYB
	// BJ is Jiang's BFS algorithm: BTC plus the single-parent
	// optimization for selection queries.
	BJ = core.BJ
	// SRCH expands each source node independently over the base relation;
	// the best choice for very selective queries.
	SRCH = core.SRCH
	// SPN is the Spanning Tree algorithm: successor lists carrying tree
	// structure, trading page I/O for fewer duplicates and a materialized
	// path to every successor.
	SPN = core.SPN
	// JKB is Jakobsson's Compute_Tree over a single source-clustered
	// relation; JKB2 uses the dual representation with an inverse
	// relation clustered on the destination attribute.
	JKB  = core.JKB
	JKB2 = core.JKB2
	// SEMI (iterative Seminaive evaluation) and WARREN (the matrix-based
	// Blocked Warren algorithm) are the baseline families of the paper's
	// related-work section, implemented so the study's "graph-based beats
	// iterative and matrix-based" conclusion can be re-measured.
	SEMI   = core.SEMI
	WARREN = core.WARREN
	// SCHMITZ is Schmitz's SCC-based algorithm from the paper's related
	// work: one Tarjan pass that closes components as they pop. It is the
	// only list-based algorithm that accepts cyclic graphs directly (a
	// node inside a cycle reaches itself).
	SCHMITZ = core.SCHMITZ
	// BITM is the dense-core bit-matrix kernel: the input is condensed to
	// its component DAG, and when the core fits the in-memory threshold
	// (see the planner's bitmatrix estimate) its closure is computed with
	// a cache-blocked, word-parallel Warren sweep — 64 reachability bits
	// per machine word — then expanded back through SCC membership.
	// Oversized cores fall back to BTC (or Schmitz when cyclic). Accepts
	// cyclic graphs directly, like SCHMITZ.
	BITM = core.BITM
)

// Algorithms lists every implemented algorithm.
func Algorithms() []Algorithm { return core.Algorithms() }

// Config carries the system parameters of a run: buffer pool size, page and
// list replacement policies, the Hybrid blocking factor, and the ablation
// switches. The zero value gets the study defaults (M=10, LRU paging,
// smallest-list splitting).
type Config = core.Config

// Query selects a computation: an empty source set asks for the complete
// transitive closure, a non-empty one for the partial closure (all
// successors of each source node).
type Query = core.Query

// Result carries the computed successor sets and the full metric record.
type Result = core.Result

// Metrics is the paper's cost-metric suite for one run; TotalIO is the
// primary measure.
type Metrics = core.Metrics

// GraphStats is the Table 2 characterization of a DAG, including the
// rectangle model (height H, width W) of paper Section 5.3.
type GraphStats = graph.Stats

// Graph is an immutable directed graph prepared for closure computation.
type Graph struct {
	inner *graph.Graph
	arcs  []Arc
}

// NewGraph builds a graph over nodes 1..n. Duplicate arcs are removed.
// The graph may be cyclic only when used with ClosureOfCyclic; the Run
// path requires a DAG and reports an error otherwise.
func NewGraph(n int, arcs []Arc) *Graph {
	g := graph.New(n, arcs)
	return &Graph{inner: g, arcs: g.Arcs()}
}

// Generate produces one of the study's synthetic DAGs: n nodes, per-node
// out-degree uniform on [0, 2F], arcs restricted to the next `locality`
// nodes (paper Section 5.2).
func Generate(n, outDegree, locality int, seed int64) (*Graph, error) {
	arcs, err := graphgen.Generate(graphgen.Params{
		Nodes: n, OutDegree: outDegree, Locality: locality, Seed: seed,
	})
	if err != nil {
		return nil, err
	}
	return NewGraph(n, arcs), nil
}

// N reports the number of nodes.
func (g *Graph) N() int { return g.inner.N() }

// NumArcs reports the number of distinct arcs.
func (g *Graph) NumArcs() int { return g.inner.NumArcs() }

// Arcs returns the (deduplicated, sorted) arc list.
func (g *Graph) Arcs() []Arc { return g.arcs }

// IsAcyclic reports whether the graph is a DAG.
func (g *Graph) IsAcyclic() bool {
	_, err := g.inner.TopoSort()
	return err == nil
}

// Stats computes the Table 2 characterization: arc counts, node levels,
// the rectangle model (H, W), arc localities and the closure size. The
// graph must be acyclic.
func (g *Graph) Stats() (GraphStats, error) { return g.inner.ComputeStats() }

// DB is a stored graph: the relation clustered and indexed on the source
// attribute plus the dual representation used by JKB2, on a simulated disk.
type DB struct {
	inner    *core.Database
	g        *Graph
	reversed *DB              // lazily built arc-reversed database for Predecessors
	profile  *planner.Profile // cached planner statistics
}

// NewDB stores the graph. Building the database is not charged to queries.
func NewDB(g *Graph) *DB {
	return &DB{inner: core.NewDatabase(g.N(), g.arcs), g: g}
}

// NewWeightedDB stores the graph with per-arc weights (consulted once per
// arc at build time; duplicate arcs keep their smallest weight). Weights
// live in a column file beside the relation and enable the MinWeight and
// MaxWeight path aggregates; all reachability algorithms work unchanged.
func NewWeightedDB(g *Graph, weight func(Arc) int32) (*DB, error) {
	inner, err := core.NewDatabaseWeighted(g.N(), g.arcs, weight)
	if err != nil {
		return nil, err
	}
	return &DB{inner: inner, g: g}, nil
}

// Weighted reports whether the database carries arc weights.
func (db *DB) Weighted() bool { return db.inner.Weighted() }

// Run executes one query with one algorithm and returns the successor sets
// along with the full metric record. Each run starts from a cold buffer
// pool, as in the paper's experiments. Cyclic graphs are accepted only by
// SCHMITZ and BITM (both condense internally); the other algorithms need a
// DAG (see ClosureOfCyclic for the condensation route).
func (db *DB) Run(alg Algorithm, q Query, cfg Config) (*Result, error) {
	if alg != SCHMITZ && alg != BITM && !db.g.IsAcyclic() {
		return nil, fmt.Errorf("tcstudy: graph is cyclic; use SCHMITZ, BITM, or condense it first (see ClosureOfCyclic)")
	}
	return core.Run(db.inner, alg, q, cfg)
}

// FullClosure computes the complete transitive closure.
func (db *DB) FullClosure(alg Algorithm, cfg Config) (*Result, error) {
	return db.Run(alg, Query{}, cfg)
}

// Successors computes the partial transitive closure of the given sources.
func (db *DB) Successors(alg Algorithm, sources []int32, cfg Config) (*Result, error) {
	return db.Run(alg, Query{Sources: sources}, cfg)
}

// Predecessors computes the reverse reachability of the given targets: for
// each target, every node from which it can be reached. It runs the chosen
// algorithm on the arc-reversed graph (built lazily and cached), so all
// the study's machinery — and its cost model — applies symmetrically.
func (db *DB) Predecessors(alg Algorithm, targets []int32, cfg Config) (*Result, error) {
	if db.reversed == nil {
		arcs := make([]Arc, len(db.g.arcs))
		for i, a := range db.g.arcs {
			arcs[i] = Arc{From: a.To, To: a.From}
		}
		db.reversed = NewDB(NewGraph(db.g.N(), arcs))
	}
	return db.reversed.Run(alg, Query{Sources: targets}, cfg)
}

// Request and Response form a concurrent query batch.
type Request = core.Request
type Response = core.Response

// RunConcurrent executes independent queries in parallel over the
// database, one buffer pool per query; responses arrive in request order.
// Each query's metric record is exactly what a solo run would report —
// page I/O is attributed per pool, not per shared disk. The graph must be
// acyclic (checked once for the batch).
func (db *DB) RunConcurrent(reqs []Request) []Response {
	if !db.g.IsAcyclic() {
		err := fmt.Errorf("tcstudy: graph is cyclic; condense it first (see ClosureOfCyclic)")
		out := make([]Response, len(reqs))
		for i := range out {
			out[i] = Response{Err: err}
		}
		return out
	}
	return core.RunConcurrent(db.inner, reqs)
}

// PathAggregate selects a generalized-closure aggregate (the extension of
// reachability to path problems from the paper's companion work [7]).
type PathAggregate = core.PathAggregate

// The supported aggregates: shortest path length in arcs, longest path
// length (the critical path of a DAG), the number of distinct paths
// (saturating — dense DAGs have exponentially many), and — on weighted
// databases — minimum and maximum path weight.
const (
	MinHops   = core.MinHops
	MaxHops   = core.MaxHops
	PathCount = core.PathCount
	MinWeight = core.MinWeight
	MaxWeight = core.MaxWeight
)

// PathResult carries per-source aggregate values and the metric record.
type PathResult = core.PathResult

// Paths computes a generalized transitive closure: for each source (or
// every node, when sources is empty), the aggregate value for each
// reachable node. The computation runs on the same paged framework as the
// reachability algorithms, with the marking optimization necessarily
// disabled (redundant arcs still matter for path aggregation).
func (db *DB) Paths(agg PathAggregate, sources []int32, cfg Config) (*PathResult, error) {
	if !db.g.IsAcyclic() {
		return nil, fmt.Errorf("tcstudy: graph is cyclic; path aggregates need a DAG")
	}
	return core.RunPaths(db.inner, agg, Query{Sources: sources}, cfg)
}

// Session runs a sequence of queries through one warm buffer pool. The
// paper's measurements are cold (each query starts with an empty pool);
// a session is what a library user wants for repeated queries. A storage
// error does not poison the session: the pool is reset and the next query
// runs cold against the intact database.
type Session struct {
	inner *core.Session
	db    *DB
}

// NewSession opens a warm-buffer query session over the database.
func (db *DB) NewSession(cfg Config) (*Session, error) {
	s, err := core.NewSession(db.inner, cfg)
	if err != nil {
		return nil, err
	}
	return &Session{inner: s, db: db}, nil
}

// Run executes one query within the session.
func (s *Session) Run(alg Algorithm, q Query) (*Result, error) {
	if !s.db.g.IsAcyclic() {
		return nil, fmt.Errorf("tcstudy: graph is cyclic; condense it first (see ClosureOfCyclic)")
	}
	return s.inner.Run(alg, q)
}

// FullClosure computes the complete closure within the session.
func (s *Session) FullClosure(alg Algorithm) (*Result, error) {
	return s.Run(alg, Query{})
}

// Successors computes a partial closure within the session.
func (s *Session) Successors(alg Algorithm, sources []int32) (*Result, error) {
	return s.Run(alg, Query{Sources: sources})
}

// Save writes the database (relation pages, dual representation and
// catalogs) into a directory; OpenDB restores it. Snapshots skip relation
// construction on reopen; query cost accounting is unaffected.
func (db *DB) Save(dir string) error { return core.SaveDatabase(db.inner, dir) }

// OpenDB restores a database written by Save.
func OpenDB(dir string) (*DB, error) {
	inner, err := core.OpenDatabase(dir)
	if err != nil {
		return nil, err
	}
	arcs, err := inner.Arcs()
	if err != nil {
		return nil, err
	}
	return &DB{inner: inner, g: NewGraph(inner.N(), arcs)}, nil
}

// Graph returns the graph the database stores.
func (db *DB) Graph() *Graph { return db.g }

// SourceSet draws s distinct source nodes uniformly, as the study's
// selection queries do.
func SourceSet(n, s int, seed int64) []int32 { return graphgen.SourceSet(n, s, seed) }

// Advise picks an algorithm for a query using the paper's findings
// (Sections 6.3.4 and 9): SRCH for very selective queries; Compute_Tree
// (JKB2) for selections on narrow graphs, where its selection efficiency
// wins; BTC otherwise — including all full-closure computations, where it
// was the study's overall best. The width threshold is calibrated from
// Table 4, where the JKB2/BTC cost ratio crosses 1 near W ≈ 0.11·n.
func Advise(st GraphStats, n, numSources int) Algorithm {
	if numSources == 0 {
		return BTC
	}
	if numSources <= 5 || float64(numSources) <= 0.005*float64(n) {
		return SRCH
	}
	if float64(numSources) <= 0.1*float64(n) && st.W < 0.11*float64(n) {
		return JKB2
	}
	return BTC
}

// PlanEstimate is one algorithm's predicted page-I/O cost.
type PlanEstimate = planner.Estimate

// Plan ranks every applicable algorithm for a query with numSources source
// nodes (0 = full closure) by estimated page I/O, using cheap graph
// statistics — the cost-model counterpart to the rule-based Advise. The
// models are calibrated for ranking, not absolute prediction (the paper's
// Section 7 explains why absolute I/O prediction is treacherous).
func (db *DB) Plan(numSources, bufferPages int) ([]PlanEstimate, error) {
	if !db.g.IsAcyclic() {
		return nil, fmt.Errorf("tcstudy: graph is cyclic; condense it first")
	}
	if db.profile == nil {
		p, err := planner.BuildProfile(db.g.inner, 16, 1)
		if err != nil {
			return nil, err
		}
		db.profile = &p
	}
	return planner.Estimates(*db.profile, numSources, bufferPages), nil
}

// CyclicClosure is the reachability result for a possibly-cyclic graph.
type CyclicClosure struct {
	// Successors[v] lists the nodes reachable from v (index 0 unused).
	// A node inside a cycle reaches itself.
	Successors [][]int32
	// Components is the number of strongly connected components.
	Components int
	// Metrics records the closure computation over the condensation DAG.
	Metrics Metrics
}

// ClosureOfCyclic computes reachability over an arbitrary directed graph by
// condensing strongly connected components (the standard preprocessing the
// paper's introduction cites) and running the chosen algorithm on the
// acyclic condensation.
func ClosureOfCyclic(g *Graph, alg Algorithm, cfg Config) (*CyclicClosure, error) {
	cond := g.inner.Condense()
	db := core.NewDatabase(cond.DAG.N(), cond.DAG.Arcs())
	res, err := core.Run(db, alg, Query{}, cfg)
	if err != nil {
		return nil, err
	}
	// Translate the component-level closure back to original nodes.
	n := g.N()
	out := make([][]int32, n+1)
	for u := int32(1); u <= int32(n); u++ {
		cu := cond.Component[u]
		var res2 []int32
		if len(cond.Members[cu]) > 1 {
			res2 = append(res2, cond.Members[cu]...)
		}
		for _, cv := range res.Successors[cu] {
			res2 = append(res2, cond.Members[cv]...)
		}
		out[u] = res2
	}
	return &CyclicClosure{
		Successors: out,
		Components: cond.DAG.N(),
		Metrics:    res.Metrics,
	}, nil
}

// SuccessorsOfCyclic answers a partial (selection) reachability query over
// a possibly-cyclic graph: the condensation is computed, the chosen
// algorithm runs a PTC over the component DAG from the sources'
// components, and the answer is expanded back to original nodes. The
// result maps each requested source to its reachable set; a node inside a
// cycle reaches itself.
func SuccessorsOfCyclic(g *Graph, sources []int32, alg Algorithm, cfg Config) (map[int32][]int32, Metrics, error) {
	cond := g.inner.Condense()
	db := core.NewDatabase(cond.DAG.N(), cond.DAG.Arcs())
	// Map sources to their components, deduplicating shared cycles.
	compSet := map[int32][]int32{} // component -> requesting sources
	var compSources []int32
	for _, s := range sources {
		c := cond.Component[s]
		if len(compSet[c]) == 0 {
			compSources = append(compSources, c)
		}
		compSet[c] = append(compSet[c], s)
	}
	res, err := core.Run(db, alg, Query{Sources: compSources}, cfg)
	if err != nil {
		return nil, Metrics{}, err
	}
	out := make(map[int32][]int32, len(sources))
	for _, c := range compSources {
		var reach []int32
		if len(cond.Members[c]) > 1 {
			reach = append(reach, cond.Members[c]...)
		}
		for _, cv := range res.Successors[c] {
			reach = append(reach, cond.Members[cv]...)
		}
		for _, s := range compSet[c] {
			out[s] = reach
		}
	}
	return out, res.Metrics, nil
}
