// Critical paths: generalized transitive closure in action. A project
// plan is a DAG of tasks; the longest chain of dependencies from a task
// determines the earliest the project can finish once that task slips —
// its critical path. The paper's companion work ("Augmenting Databases
// with Generalized Transitive Closure", its reference [7]) extends the
// reachability framework to exactly this kind of path aggregate, and the
// library computes it on the same paged storage engine, with the same
// page-I/O accounting.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sort"

	"tcstudy"
)

// buildProject lays out tasks in waves; each task blocks a few tasks in
// later waves.
func buildProject(tasks int, seed int64) *tcstudy.Graph {
	rng := rand.New(rand.NewSource(seed))
	var arcs []tcstudy.Arc
	const wave = 25
	for task := 1; task <= tasks-wave; task++ {
		blocks := 1 + rng.Intn(3)
		for k := 0; k < blocks; k++ {
			// A blocked task sits 1-2 waves later.
			target := task + wave + rng.Intn(2*wave)
			if target > tasks {
				target = tasks
			}
			if target != task {
				arcs = append(arcs, tcstudy.Arc{From: int32(task), To: int32(target)})
			}
		}
	}
	return tcstudy.NewGraph(tasks, arcs)
}

func main() {
	const tasks = 1500
	g := buildProject(tasks, 17)
	fmt.Printf("project plan: %d tasks, %d dependency arcs\n\n", g.N(), g.NumArcs())

	db := tcstudy.NewDB(g)
	cfg := tcstudy.Config{BufferPages: 20}

	// Longest dependency chain from every task (full generalized closure).
	crit, err := db.Paths(tcstudy.MaxHops, nil, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("critical-path computation: %d page I/O\n", crit.Metrics.TotalIO())

	// The most critical tasks: longest chains hanging off them.
	type ranked struct {
		task  int32
		depth int64
	}
	var rank []ranked
	for task, row := range crit.Values {
		var deepest int64
		for _, d := range row {
			if d > deepest {
				deepest = d
			}
		}
		rank = append(rank, ranked{task, deepest})
	}
	sort.Slice(rank, func(i, j int) bool {
		if rank[i].depth != rank[j].depth {
			return rank[i].depth > rank[j].depth
		}
		return rank[i].task < rank[j].task
	})
	fmt.Println("\nmost critical tasks (longest downstream chains):")
	for _, r := range rank[:5] {
		fmt.Printf("  task %4d: chain of %d dependent stages\n", r.task, r.depth)
	}

	// Zoom into one task: shortest vs longest route to a milestone, and
	// how many distinct dependency paths connect them.
	src := rank[0].task
	minr, err := db.Paths(tcstudy.MinHops, []int32{src}, cfg)
	if err != nil {
		log.Fatal(err)
	}
	cntr, err := db.Paths(tcstudy.PathCount, []int32{src}, cfg)
	if err != nil {
		log.Fatal(err)
	}
	// Pick the farthest milestone.
	var milestone int32
	var far int64
	for u, d := range crit.Values[src] {
		if d > far {
			far, milestone = d, u
		}
	}
	fmt.Printf("\ntask %d -> milestone %d:\n", src, milestone)
	fmt.Printf("  shortest route %d stages, longest %d stages, %d distinct paths\n",
		minr.Values[src][milestone], far, cntr.Values[src][milestone])

	// Weighted closure: each dependency arc costs the upstream task's
	// duration in days, so MaxWeight gives real critical-path lengths.
	durations := func(a tcstudy.Arc) int32 { return a.From%10 + 1 } // 1-10 days
	wdb, err := tcstudy.NewWeightedDB(g, durations)
	if err != nil {
		log.Fatal(err)
	}
	wcrit, err := wdb.Paths(tcstudy.MaxWeight, []int32{src}, cfg)
	if err != nil {
		log.Fatal(err)
	}
	wmin, err := wdb.Paths(tcstudy.MinWeight, []int32{src}, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  with task durations: fastest chain %d days, critical chain %d days\n",
		wmin.Values[src][milestone], wcrit.Values[src][milestone])
}
