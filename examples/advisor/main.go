// Choosing an algorithm: the study's practical payoff. Three differently
// shaped graphs, one query each — the planner estimates every candidate's
// page I/O from cheap statistics, picks one, and the example then measures
// all candidates to show where the pick landed. This is Table 4's insight
// (the rectangle model's width predicts JKB2 vs BTC) plus Figure 8's
// (search wins high selectivity) running as a library feature.
package main

import (
	"fmt"
	"log"

	"tcstudy"
)

func main() {
	type scenario struct {
		name    string
		f, l    int
		sources int
	}
	scenarios := []scenario{
		{"narrow+selective (G4-like)", 5, 10, 4},
		{"wide+selective (G11-like)", 20, 1000, 4},
		{"narrow, full closure", 5, 100, 0},
	}
	const n = 1500
	cfgM := 10

	for _, sc := range scenarios {
		g, err := tcstudy.Generate(n, sc.f, sc.l, 3)
		if err != nil {
			log.Fatal(err)
		}
		db := tcstudy.NewDB(g)
		st, err := g.Stats()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("=== %s ===\n", sc.name)
		fmt.Printf("graph: %d arcs, H=%.0f, W=%.0f; query: ", g.NumArcs(), st.H, st.W)
		if sc.sources == 0 {
			fmt.Println("full closure")
		} else {
			fmt.Printf("%d sources\n", sc.sources)
		}

		ests, err := db.Plan(sc.sources, cfgM)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("planner picks %s (%s)\n", ests[0].Alg, ests[0].Why)

		// Measure the plausible candidates to see how the pick did.
		var sources []int32
		if sc.sources > 0 {
			sources = tcstudy.SourceSet(n, sc.sources, 9)
		}
		candidates := []tcstudy.Algorithm{tcstudy.BTC, tcstudy.JKB2, tcstudy.WARREN}
		if sc.sources > 0 {
			candidates = append(candidates, tcstudy.SRCH)
		}
		fmt.Printf("measured:")
		bestIO := int64(1) << 62
		var best tcstudy.Algorithm
		for _, alg := range candidates {
			res, err := db.Run(alg, tcstudy.Query{Sources: sources},
				tcstudy.Config{BufferPages: cfgM})
			if err != nil {
				log.Fatal(err)
			}
			io := res.Metrics.TotalIO()
			fmt.Printf("  %s=%d", alg, io)
			if io < bestIO {
				bestIO, best = io, alg
			}
		}
		fmt.Printf("\nmeasured best: %s\n\n", best)
	}
}
