// Reachability over a cyclic graph: link graphs, call graphs and social
// graphs all contain cycles, which the paper's algorithms do not accept
// directly. Its introduction prescribes the standard remedy — merge the
// strongly connected components into an acyclic condensation, close that,
// and expand — and this example runs the whole pipeline on a synthetic web
// link graph with hub-and-spoke cycles.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"tcstudy"
)

// buildLinkGraph wires pages into clusters with internal cycles (sites
// whose pages link each other) plus sparse forward cross-site links.
func buildLinkGraph(sites, pagesPerSite int, seed int64) *tcstudy.Graph {
	rng := rand.New(rand.NewSource(seed))
	n := sites * pagesPerSite
	var arcs []tcstudy.Arc
	page := func(site, idx int) int32 { return int32(site*pagesPerSite + idx + 1) }
	for s := 0; s < sites; s++ {
		// A ring through the site's pages makes the site one SCC.
		for p := 0; p < pagesPerSite; p++ {
			arcs = append(arcs, tcstudy.Arc{From: page(s, p), To: page(s, (p+1)%pagesPerSite)})
		}
		// Extra internal links.
		for k := 0; k < pagesPerSite; k++ {
			arcs = append(arcs, tcstudy.Arc{
				From: page(s, rng.Intn(pagesPerSite)),
				To:   page(s, rng.Intn(pagesPerSite)),
			})
		}
		// Outbound links to later sites only, so the site DAG is acyclic.
		for k := 0; k < 3 && s+1 < sites; k++ {
			target := s + 1 + rng.Intn(sites-s-1)
			arcs = append(arcs, tcstudy.Arc{
				From: page(s, rng.Intn(pagesPerSite)),
				To:   page(target, rng.Intn(pagesPerSite)),
			})
		}
	}
	// Drop self-loops introduced by the random internal links.
	keep := arcs[:0]
	for _, a := range arcs {
		if a.From != a.To {
			keep = append(keep, a)
		}
	}
	return tcstudy.NewGraph(n, keep)
}

func main() {
	g := buildLinkGraph(120, 12, 3)
	fmt.Printf("link graph: %d pages, %d links, acyclic=%v\n",
		g.N(), g.NumArcs(), g.IsAcyclic())

	cc, err := tcstudy.ClosureOfCyclic(g, tcstudy.BTC, tcstudy.Config{BufferPages: 20})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("condensation: %d strongly connected components (sites)\n", cc.Components)
	fmt.Printf("closure of the condensation: %d page I/O\n\n", cc.Metrics.TotalIO())

	var totalReach int64
	for v := 1; v <= g.N(); v++ {
		totalReach += int64(len(cc.Successors[v]))
	}
	fmt.Printf("total reachability pairs: %d (avg %.1f pages reachable per page)\n",
		totalReach, float64(totalReach)/float64(g.N()))

	// Pages in one site reach each other.
	fmt.Printf("page 1 reaches %d pages, including its own site's %d pages\n",
		len(cc.Successors[1]), 12)

	// Schmitz's algorithm handles the cycles natively — no separate
	// condensation pass — with the whole computation's I/O in one figure.
	db := tcstudy.NewDB(g)
	sres, err := db.Run(tcstudy.SCHMITZ, tcstudy.Query{}, tcstudy.Config{BufferPages: 20})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nnative Schmitz closure: %d page I/O end to end; page 1 reaches %d pages (agrees: %v)\n",
		sres.Metrics.TotalIO(), len(sres.Successors[1]),
		len(sres.Successors[1]) == len(cc.Successors[1]))
}
