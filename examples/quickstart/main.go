// Quickstart: generate one of the study's synthetic DAGs, compute its full
// transitive closure with the BTC algorithm, and read the cost metrics —
// the five-minute tour of the library.
package main

import (
	"fmt"
	"log"

	"tcstudy"
)

func main() {
	// A G5-family graph from the paper: 2000 nodes, average out-degree 5,
	// generation locality 200.
	g, err := tcstudy.Generate(2000, 5, 200, 1)
	if err != nil {
		log.Fatal(err)
	}
	st, err := g.Stats()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("graph: %d nodes, %d arcs, height %.1f, width %.1f, |TC| = %d\n",
		g.N(), g.NumArcs(), st.H, st.W, st.ClosureSize)

	// Store it and compute the full closure with a 20-page buffer pool.
	db := tcstudy.NewDB(g)
	res, err := db.FullClosure(tcstudy.BTC, tcstudy.Config{BufferPages: 20})
	if err != nil {
		log.Fatal(err)
	}

	m := res.Metrics
	fmt.Printf("algorithm BTC: %d page I/O (%d restructuring + %d computation)\n",
		m.TotalIO(), m.Restructure.Total(), m.Compute.Total())
	fmt.Printf("  %d tuples, %d list unions, %.1f%% of arcs marked redundant\n",
		m.DistinctTuples, m.ListUnions, m.MarkingPct())
	fmt.Printf("  buffer hit ratio %.2f, estimated I/O time %s\n",
		m.ComputeBuffer.HitRatio(), m.EstimatedIOTime().Round(1e9))

	// Ask a point query against the result.
	node := int32(42)
	fmt.Printf("node %d reaches %d nodes\n", node, len(res.Successors[node]))
}
