// Prerequisite closure: the classic motivating workload for *partial*
// transitive closure. A university catalogue is a DAG of courses whose
// arcs point at direct prerequisites; advising a handful of students means
// asking, for a few courses, for every course they transitively require —
// a high-selectivity PTC query, exactly the regime Figures 8-13 of the
// paper explore.
//
// The example builds a layered synthetic catalogue, runs the same query
// with SRCH, BTC, BJ and JKB2, and shows why the paper's advice — search
// for very selective queries — holds.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sort"

	"tcstudy"
)

// buildCatalogue lays out `n` courses in difficulty layers; each course
// requires 1-4 courses from the previous few layers. Node 1..n, arcs point
// from a course to its direct prerequisites (closure = everything needed).
func buildCatalogue(n int, seed int64) *tcstudy.Graph {
	rng := rand.New(rand.NewSource(seed))
	const perLayer = 40
	var arcs []tcstudy.Arc
	for c := perLayer + 1; c <= n; c++ {
		layer := (c - 1) / perLayer
		nreq := 1 + rng.Intn(4)
		for k := 0; k < nreq; k++ {
			// A prerequisite sits 1-3 layers below.
			back := 1 + rng.Intn(3)
			preLayer := layer - back
			if preLayer < 0 {
				continue
			}
			pre := preLayer*perLayer + 1 + rng.Intn(perLayer)
			// Arc course -> prerequisite: prerequisites have smaller IDs,
			// so flip to keep the generator's ascending-arc convention.
			arcs = append(arcs, tcstudy.Arc{From: int32(pre), To: int32(c)})
		}
	}
	return tcstudy.NewGraph(n, arcs)
}

func main() {
	const n = 2000
	g := buildCatalogue(n, 7)
	st, err := g.Stats()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("catalogue: %d courses, %d prerequisite arcs, height %.1f, width %.1f\n\n",
		g.N(), g.NumArcs(), st.H, st.W)

	db := tcstudy.NewDB(g)

	// "Which courses become reachable once you pass these three?" — the
	// arcs run prerequisite -> dependent, so successors are the courses a
	// completed course unlocks downstream.
	courses := []int32{3, 17, 29}
	fmt.Printf("query: all courses transitively unlocked by %v\n", courses)
	fmt.Printf("advisor suggests: %s (|S|=%d, W=%.0f)\n\n",
		tcstudy.Advise(st, g.N(), len(courses)), len(courses), st.W)

	cfg := tcstudy.Config{BufferPages: 10}
	fmt.Printf("%-6s %10s %10s %10s %12s\n", "alg", "page I/O", "unions", "tuples", "sel. eff.")
	var reference map[int32][]int32
	for _, alg := range []tcstudy.Algorithm{tcstudy.SRCH, tcstudy.BTC, tcstudy.BJ, tcstudy.JKB2} {
		res, err := db.Successors(alg, courses, cfg)
		if err != nil {
			log.Fatal(err)
		}
		m := res.Metrics
		fmt.Printf("%-6s %10d %10d %10d %12.2f\n",
			alg, m.TotalIO(), m.ListUnions, m.DistinctTuples, m.SelectionEfficiency())
		if reference == nil {
			reference = res.Successors
		} else {
			mustMatch(reference, res.Successors, string(alg))
		}
	}

	fmt.Println()
	for _, c := range courses {
		unlocked := reference[c]
		sort.Slice(unlocked, func(i, j int) bool { return unlocked[i] < unlocked[j] })
		preview := unlocked
		if len(preview) > 8 {
			preview = preview[:8]
		}
		fmt.Printf("course %d unlocks %d courses (first: %v)\n", c, len(unlocked), preview)
	}
}

func mustMatch(a, b map[int32][]int32, alg string) {
	for k, av := range a {
		bv := b[k]
		if len(av) != len(bv) {
			log.Fatalf("%s disagrees with reference on course %d: %d vs %d successors",
				alg, k, len(bv), len(av))
		}
	}
}
