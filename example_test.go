package tcstudy_test

import (
	"fmt"

	"tcstudy"
)

// The five-line tour: build a graph, store it, close it, read the cost.
func Example() {
	g := tcstudy.NewGraph(4, []tcstudy.Arc{
		{From: 1, To: 2}, {From: 2, To: 3}, {From: 3, To: 4},
	})
	db := tcstudy.NewDB(g)
	res, _ := db.FullClosure(tcstudy.BTC, tcstudy.Config{BufferPages: 8})
	fmt.Println("node 1 reaches", len(res.Successors[1]), "nodes")
	// Output: node 1 reaches 3 nodes
}

func ExampleDB_Successors() {
	g := tcstudy.NewGraph(5, []tcstudy.Arc{
		{From: 1, To: 2}, {From: 2, To: 3}, {From: 4, To: 5},
	})
	db := tcstudy.NewDB(g)
	// SRCH is the paper's recommendation for very selective queries.
	res, _ := db.Successors(tcstudy.SRCH, []int32{1}, tcstudy.Config{BufferPages: 8})
	fmt.Println(len(res.Successors[1]), res.Metrics.SelectionEfficiency())
	// Output: 2 1
}

func ExampleDB_Predecessors() {
	g := tcstudy.NewGraph(4, []tcstudy.Arc{
		{From: 1, To: 3}, {From: 2, To: 3}, {From: 3, To: 4},
	})
	db := tcstudy.NewDB(g)
	res, _ := db.Predecessors(tcstudy.BTC, []int32{4}, tcstudy.Config{BufferPages: 8})
	fmt.Println(len(res.Successors[4]), "nodes reach node 4")
	// Output: 3 nodes reach node 4
}

func ExampleDB_Paths() {
	// 1 -> 2 -> 4 and 1 -> 3 -> 4: two routes of two hops each.
	g := tcstudy.NewGraph(4, []tcstudy.Arc{
		{From: 1, To: 2}, {From: 1, To: 3}, {From: 2, To: 4}, {From: 3, To: 4},
	})
	db := tcstudy.NewDB(g)
	cnt, _ := db.Paths(tcstudy.PathCount, []int32{1}, tcstudy.Config{BufferPages: 8})
	min, _ := db.Paths(tcstudy.MinHops, []int32{1}, tcstudy.Config{BufferPages: 8})
	fmt.Println(cnt.Values[1][4], "paths, shortest is", min.Values[1][4], "hops")
	// Output: 2 paths, shortest is 2 hops
}

func ExampleNewWeightedDB() {
	g := tcstudy.NewGraph(3, []tcstudy.Arc{
		{From: 1, To: 2}, {From: 2, To: 3}, {From: 1, To: 3},
	})
	// The direct arc is expensive; the detour is cheap.
	db, _ := tcstudy.NewWeightedDB(g, func(a tcstudy.Arc) int32 {
		if a.From == 1 && a.To == 3 {
			return 10
		}
		return 2
	})
	res, _ := db.Paths(tcstudy.MinWeight, []int32{1}, tcstudy.Config{BufferPages: 8})
	fmt.Println("cheapest 1->3 costs", res.Values[1][3])
	// Output: cheapest 1->3 costs 4
}

func ExampleClosureOfCyclic() {
	// A two-node cycle feeding a sink.
	g := tcstudy.NewGraph(3, []tcstudy.Arc{
		{From: 1, To: 2}, {From: 2, To: 1}, {From: 2, To: 3},
	})
	cc, _ := tcstudy.ClosureOfCyclic(g, tcstudy.BTC, tcstudy.Config{BufferPages: 8})
	fmt.Println(cc.Components, "components; node 1 reaches", len(cc.Successors[1]), "nodes")
	// Output: 2 components; node 1 reaches 3 nodes
}

func ExampleAdvise() {
	narrow := tcstudy.GraphStats{W: 60}
	fmt.Println(tcstudy.Advise(narrow, 2000, 0))   // full closure
	fmt.Println(tcstudy.Advise(narrow, 2000, 3))   // few sources
	fmt.Println(tcstudy.Advise(narrow, 2000, 100)) // selective, narrow graph
	// Output:
	// btc
	// srch
	// jkb2
}

func ExampleDB_NewSession() {
	g, _ := tcstudy.Generate(300, 3, 40, 1)
	db := tcstudy.NewDB(g)
	s, _ := db.NewSession(tcstudy.Config{BufferPages: 40})
	cold, _ := s.Successors(tcstudy.SRCH, []int32{7})
	warm, _ := s.Successors(tcstudy.SRCH, []int32{7})
	fmt.Println("warm rerun cheaper:", warm.Metrics.TotalIO() < cold.Metrics.TotalIO())
	// Output: warm rerun cheaper: true
}

func ExampleGraph_Stats() {
	g, _ := tcstudy.Generate(2000, 5, 200, 1) // the study's G5 family
	st, _ := g.Stats()
	fmt.Println("H and W are positive:", st.H > 0 && st.W > 0)
	fmt.Println("closure is much larger than the graph:",
		st.ClosureSize > 10*int64(st.Arcs))
	// Output:
	// H and W are positive: true
	// closure is much larger than the graph: true
}
