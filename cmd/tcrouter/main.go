// Command tcrouter fronts a fleet of stateless tcserve replicas with the
// scatter-gather routing tier: consistent hashing of source vertices
// assigns each source an owning replica, multi-source queries scatter to
// the owners and gather into one merged response, and replica health,
// transient-failure retries, and latency hedging keep the tier serving
// through individual replica trouble. Endpoints mirror tcserve:
//
//	POST /v1/query            scatter by source, gather + merge metric records
//	GET  /v1/reach?src=&dst=  routed to the source's owning replica
//	POST /v1/arc              mutation batch replicated to every enrolled replica
//	GET  /v1/plan             proxied to one healthy replica
//	GET  /healthz             router + per-replica enrollment state
//	GET  /metrics             Prometheus text format (shard/hedge/retry counters)
//
// Every replica must serve the same dataset: enrollment compares the
// /healthz fingerprint and refuses replicas serving a different graph.
//
// Against a mutable fleet (tcserve -mutable), POST /v1/arc fans each
// mutation batch to every enrolled replica and fails the batch unless all
// of them acknowledge with matching fingerprints; -maxgenlag holds
// replicas whose applied write sequence trails the fleet out of the read
// ring until they catch up. See docs/DYNAMIC.md.
//
// Example (three replicas of the same generated graph):
//
//	tcserve -addr :8081 -n 2000 -seed 1 &
//	tcserve -addr :8082 -n 2000 -seed 1 &
//	tcserve -addr :8083 -n 2000 -seed 1 &
//	tcrouter -addr :8080 -replicas http://localhost:8081,http://localhost:8082,http://localhost:8083 -hedge 100ms
//
// See docs/ROUTER.md for the hashing, health, and hedging design.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"tcstudy/internal/router"
)

func main() {
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		replicas = flag.String("replicas", "", "comma-separated tcserve base URLs (required)")
		health   = flag.Duration("health", 2*time.Second, "replica health-check interval")
		failN    = flag.Int("failafter", 3, "consecutive health failures that mark a replica out")
		okN      = flag.Int("recoverafter", 2, "consecutive health successes that re-enroll a replica")
		retries  = flag.Int("retries", 2, "retry attempts for transient shard failures (503 + transport)")
		backoff  = flag.Duration("backoff", 25*time.Millisecond, "initial retry backoff (doubles per attempt)")
		hedge    = flag.Duration("hedge", 0, "hedge a shard request to another replica after this latency (0 disables)")
		timeout  = flag.Duration("timeout", 30*time.Second, "per-shard sub-request deadline including retries")
		vnodes   = flag.Int("vnodes", 64, "consistent-hash points per replica")
		expect   = flag.String("fingerprint", "", "require this dataset fingerprint (default: first healthy replica pins it)")
		maxLag   = flag.Int("maxgenlag", 0, "exclude replicas whose write sequence trails the fleet by more than this from the read ring (0 disables)")
	)
	flag.Parse()
	if *replicas == "" {
		fatal(fmt.Errorf("-replicas is required (comma-separated tcserve base URLs)"))
	}
	var urls []string
	for _, u := range strings.Split(*replicas, ",") {
		if u = strings.TrimSpace(u); u != "" {
			urls = append(urls, strings.TrimRight(u, "/"))
		}
	}

	rt, err := router.New(router.Options{
		Replicas:          urls,
		HealthInterval:    *health,
		FailThreshold:     *failN,
		RecoverThreshold:  *okN,
		Retries:           *retries,
		Backoff:           *backoff,
		HedgeAfter:        *hedge,
		ShardTimeout:      *timeout,
		Vnodes:            *vnodes,
		ExpectFingerprint: *expect,
		MaxGenerationLag:  *maxLag,
	})
	if err != nil {
		fatal(err)
	}
	// One synchronous sweep before listening, so a fleet that is already
	// up serves from the first request instead of the first tick.
	rt.CheckNow(context.Background())
	rt.Start()

	httpSrv := &http.Server{Addr: *addr, Handler: rt}
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	log.Printf("tcrouter listening on %s fronting %d replica(s) (health=%s retries=%d hedge=%s)",
		*addr, len(urls), *health, *retries, *hedge)

	select {
	case err := <-errc:
		fatal(err)
	case <-ctx.Done():
	}
	log.Printf("shutting down: draining in-flight requests")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		log.Printf("http shutdown: %v", err)
	}
	rt.Close()
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		fatal(err)
	}
	log.Printf("tcrouter stopped cleanly")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tcrouter:", err)
	os.Exit(1)
}
