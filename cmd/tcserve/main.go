// Command tcserve serves reachability queries over HTTP/JSON. It loads or
// generates a database at startup, then exposes the engine through the
// internal/server pipeline: bounded-queue admission into a worker pool,
// an LRU result cache with single-flight deduplication, per-request
// deadlines, and live metrics. Endpoints:
//
//	POST /v1/query            run one closure query, full metric record
//	GET  /v1/reach?src=&dst=  boolean reachability fast path
//	POST /v1/arc              mutate the graph (-mutable): insert/delete arc batches
//	GET  /v1/plan             planner ranking for the loaded graph
//	GET  /healthz             liveness + graph shape
//	GET  /metrics             Prometheus text format (?format=json for the JSON snapshot)
//	GET  /debug/traces        span trees of recent requests, newest first
//
// Examples:
//
//	tcserve -addr :8080 -n 2000 -f 5 -l 200
//	tcserve -addr :8080 -db /var/lib/tc/db -workers 16 -cache 1024
//	tcserve -addr :8080 -n 2000 -index g.idx   # O(1) /v1/reach via tcindex build
//	tcserve -addr :8080 -n 2000 -mutable       # read/write graph service
//	tcserve -addr :8080 -graphs social=/var/lib/tc/social,citations=/var/lib/tc/cite
//	tcserve -addr :8080 -pprof localhost:6060 -parallelism 4
//	tcserve -addr :8080 -n 2000 -slowlog 250ms -tracebuf 256
//
// With -graphs, one process hosts several named graphs: requests pick a
// tenant with the graph= query parameter (or the "graph" body field), each
// tenant gets its own result-cache quota, admission queue and adaptive
// planner, and /metrics carries tenant labels. The first listed graph is
// the default tenant. -db/-index/-mutable are single-graph flags and
// conflict with -graphs.
//
// /v1/plan is adaptive by default: the static cost model blended with
// per-tenant execution observations (decayed by -decay, explored with
// probability -explore). -adaptive=false restores the pure static
// ranking. See docs/PLANNER.md.
//
// With -index, GET /v1/reach is answered from the prebuilt reachability
// index (zero page I/O, no engine work); the engine path remains the
// fallback while the index is absent or stale.
//
// With -mutable, the server becomes a read/write graph service: POST
// /v1/arc accepts insert/delete batches, cycle-creating inserts merge SCCs
// in the live index, closure-shrinking deletes trigger background
// generational rebuilds while a delta overlay keeps answers exact, and
// /healthz carries the live fingerprint, sequence and generation so
// tcrouter can replicate writes and exclude lagging replicas. See
// docs/DYNAMIC.md.
//
// Requests are traced by default (-tracebuf 64 recent span trees behind
// /debug/traces; 0 disables). With -slowlog, every request over the
// threshold is logged with its phase I/O split and a tcquery command line
// that replays the same engine work offline. See docs/OBSERVABILITY.md.
//
// SIGINT/SIGTERM shut the server down gracefully: listeners close first,
// then in-flight and queued queries drain.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	_ "net/http/pprof" // profiling endpoints on the separate -pprof listener
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"tcstudy/internal/core"
	"tcstudy/internal/dynamic"
	"tcstudy/internal/graph"
	"tcstudy/internal/graphgen"
	"tcstudy/internal/index"
	"tcstudy/internal/planner"
	"tcstudy/internal/server"
)

func main() {
	var (
		addr       = flag.String("addr", ":8080", "listen address")
		n          = flag.Int("n", 2000, "number of nodes (generated input)")
		f          = flag.Int("f", 5, "average out-degree (generated input)")
		l          = flag.Int("l", 200, "generation locality (generated input)")
		seed       = flag.Int64("seed", 1, "generator seed")
		dbDir      = flag.String("db", "", "open a saved database directory instead of generating")
		workers    = flag.Int("workers", 8, "max queries executed concurrently per engine batch")
		queue      = flag.Int("queue", 64, "admission queue depth (full queue rejects with 429)")
		cacheSize  = flag.Int("cache", 256, "result cache entries")
		timeout    = flag.Duration("timeout", 30*time.Second, "default per-request deadline")
		m          = flag.Int("m", 10, "default buffer pool pages per query")
		pagePolicy = flag.String("pagepolicy", "lru", "default page replacement policy")
		listPolicy = flag.String("listpolicy", "smallest", "default list replacement policy")
		indexFile  = flag.String("index", "", "serve /v1/reach from this prebuilt reachability index (tcindex build)")
		par        = flag.Int("parallelism", 0, "default intra-query source parallelism (0 = serial)")
		pprofAddr  = flag.String("pprof", "", "expose net/http/pprof on this separate address (e.g. localhost:6060); empty disables")
		traceBuf   = flag.Int("tracebuf", 64, "recent request span trees kept for /debug/traces (0 disables tracing)")
		slowLog    = flag.Duration("slowlog", 0, "log requests slower than this with span tree and replay command (0 disables)")
		mutable    = flag.Bool("mutable", false, "accept POST /v1/arc mutations; /v1/reach serves the live graph")
		maxBatch   = flag.Int("maxbatch", 1024, "max ops per mutation batch (-mutable)")
		maxPending = flag.Int("maxpending", 256, "mutation batches allowed past the sealed index before 429 (-mutable)")
		graphsSpec = flag.String("graphs", "", "serve several named graphs: name=dbdir,name=dbdir,... (first is the default tenant)")
		adaptive   = flag.Bool("adaptive", true, "blend /v1/plan with per-tenant execution observations")
		explore    = flag.Float64("explore", 0, "adaptive planner exploration probability (epsilon-greedy, 0 disables)")
		decay      = flag.Float64("decay", 0, "adaptive planner observation decay (0 selects the default 0.9)")
	)
	flag.Parse()

	if *graphsSpec != "" {
		if *dbDir != "" || *indexFile != "" || *mutable {
			fatal(errors.New("-graphs conflicts with the single-graph flags -db, -index and -mutable"))
		}
		serveMulti(*graphsSpec, serveOptions{
			addr: *addr, workers: *workers, queue: *queue, cacheSize: *cacheSize,
			timeout: *timeout, m: *m, pagePolicy: *pagePolicy, listPolicy: *listPolicy,
			par: *par, pprofAddr: *pprofAddr, traceBuf: *traceBuf, slowLog: *slowLog,
			adaptive: *adaptive, explore: *explore, decay: *decay,
		})
		return
	}

	var db *core.Database
	if *dbDir != "" {
		var err error
		if db, err = core.OpenDatabase(*dbDir); err != nil {
			fatal(err)
		}
		log.Printf("opened database %s: n=%d |G|=%d", *dbDir, db.N(), db.NumArcs())
	} else {
		arcs, err := graphgen.Generate(graphgen.Params{Nodes: *n, OutDegree: *f, Locality: *l, Seed: *seed})
		if err != nil {
			fatal(err)
		}
		db = core.NewDatabase(*n, arcs)
		log.Printf("generated database: n=%d F=%d l=%d seed=%d |G|=%d", *n, *f, *l, *seed, db.NumArcs())
	}

	var idx *index.Index
	if *indexFile != "" {
		var err error
		if idx, err = index.LoadFile(*indexFile); err != nil {
			fatal(err)
		}
		if idx.N() != db.N() {
			fatal(fmt.Errorf("index %s covers %d nodes but the database has %d", *indexFile, idx.N(), db.N()))
		}
		if idx.Stale() {
			log.Printf("warning: index %s is stale; /v1/reach will use the engine path", *indexFile)
		} else {
			log.Printf("loaded index %s (%s decomposition, k=%d chains): /v1/reach served in O(1) with zero page I/O",
				*indexFile, idx.Builder(), idx.Chains())
		}
	}

	var dyn *dynamic.Service
	if *mutable {
		arcs, err := db.Arcs()
		if err != nil {
			fatal(err)
		}
		base := idx
		if base == nil || base.Stale() {
			// No (usable) prebuilt index: seal generation zero ourselves.
			if base, err = index.Build(graph.New(db.N(), arcs)); err != nil {
				fatal(err)
			}
		}
		fp, err := db.Fingerprint()
		if err != nil {
			fatal(err)
		}
		dyn, err = dynamic.New(db.N(), arcs, base, dynamic.Options{
			BaseFingerprint: fp,
			MaxBatchOps:     *maxBatch,
			MaxPending:      *maxPending,
		})
		if err != nil {
			fatal(err)
		}
		defer dyn.Close()
		log.Printf("mutable graph service: POST /v1/arc enabled (maxbatch=%d maxpending=%d)", *maxBatch, *maxPending)
	}

	// The replay fragment reconstructs the served graph for slow-query log
	// entries: tcquery <replayArgs> <request flags> -trace reruns the same
	// engine work offline.
	replayArgs := fmt.Sprintf("-n %d -f %d -l %d -seed %d", *n, *f, *l, *seed)
	if *dbDir != "" {
		replayArgs = fmt.Sprintf("-db %s", *dbDir)
	}

	srv := server.New(db, server.Options{
		Workers:        *workers,
		QueueDepth:     *queue,
		CacheEntries:   *cacheSize,
		DefaultTimeout: *timeout,
		DefaultConfig: core.Config{
			BufferPages: *m,
			PagePolicy:  *pagePolicy,
			ListPolicy:  *listPolicy,
			Parallelism: *par,
		},
		Index:       idx,
		Dynamic:     dyn,
		Planner:     planner.Config{Decay: *decay, Epsilon: *explore},
		StaticPlan:  !*adaptive,
		TraceBuffer: *traceBuf,
		SlowQuery:   *slowLog,
		ReplayArgs:  replayArgs,
	})
	log.Printf("tcserve listening on %s (workers=%d queue=%d cache=%d timeout=%s)",
		*addr, *workers, *queue, *cacheSize, *timeout)
	runHTTP(*addr, *pprofAddr, srv)
}

// serveOptions carries the flag values shared by the single- and
// multi-graph paths.
type serveOptions struct {
	addr, pagePolicy, listPolicy, pprofAddr string
	workers, queue, cacheSize, m, par       int
	traceBuf                                int
	timeout, slowLog                        time.Duration
	adaptive                                bool
	explore, decay                          float64
}

// serveMulti hosts several named graphs from one process: -graphs
// name=dbdir,... opened via core.OpenDatabase, first listed is the default
// tenant.
func serveMulti(spec string, o serveOptions) {
	var graphs []server.NamedGraph
	for _, part := range strings.Split(spec, ",") {
		name, dir, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok || name == "" || dir == "" {
			fatal(fmt.Errorf("-graphs entry %q is not name=dbdir", part))
		}
		db, err := core.OpenDatabase(dir)
		if err != nil {
			fatal(fmt.Errorf("graph %s: %w", name, err))
		}
		log.Printf("opened graph %s from %s: n=%d |G|=%d", name, dir, db.N(), db.NumArcs())
		graphs = append(graphs, server.NamedGraph{Name: name, DB: db})
	}
	srv, err := server.NewMulti(graphs, server.Options{
		Workers:        o.workers,
		QueueDepth:     o.queue,
		CacheEntries:   o.cacheSize,
		DefaultTimeout: o.timeout,
		DefaultConfig: core.Config{
			BufferPages: o.m,
			PagePolicy:  o.pagePolicy,
			ListPolicy:  o.listPolicy,
			Parallelism: o.par,
		},
		Planner:     planner.Config{Decay: o.decay, Epsilon: o.explore},
		StaticPlan:  !o.adaptive,
		TraceBuffer: o.traceBuf,
		SlowQuery:   o.slowLog,
	})
	if err != nil {
		fatal(err)
	}
	log.Printf("tcserve listening on %s serving %d graphs %v (default %s, workers=%d queue=%d/tenant cache=%d/tenant)",
		o.addr, len(graphs), srv.Graphs(), graphs[0].Name, o.workers, o.queue, o.cacheSize)
	runHTTP(o.addr, o.pprofAddr, srv)
}

// runHTTP runs the serving lifecycle: listen, optional pprof sidecar, and
// graceful SIGINT/SIGTERM shutdown draining in-flight queries.
func runHTTP(addr, pprofAddr string, srv *server.Server) {
	httpSrv := &http.Server{Addr: addr, Handler: srv}

	// pprof registers on http.DefaultServeMux; the main listener serves the
	// query mux only, so profiling never leaks onto the public address.
	if pprofAddr != "" {
		go func() {
			log.Printf("pprof listening on %s (/debug/pprof/)", pprofAddr)
			if err := http.ListenAndServe(pprofAddr, nil); err != nil {
				log.Printf("pprof listener: %v", err)
			}
		}()
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()

	select {
	case err := <-errc:
		fatal(err)
	case <-ctx.Done():
	}
	log.Printf("shutting down: draining in-flight queries")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		log.Printf("http shutdown: %v", err)
	}
	srv.Close()
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		fatal(err)
	}
	log.Printf("tcserve stopped cleanly")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tcserve:", err)
	os.Exit(1)
}
