// Command tcquery runs a single transitive closure query with one of the
// studied algorithms and prints the full metric record — the one-query
// microscope the experiments are built from.
//
// The input graph is either generated (-n/-f/-l/-seed) or read from a file
// of "src dst" lines (-input). Examples:
//
//	tcquery -alg btc -n 2000 -f 5 -l 200 -m 20
//	tcquery -alg jkb2 -n 2000 -f 5 -l 20 -sources 3,250,1999 -m 10
//	tcquery -alg srch -input graph.txt -sources 1 -show
//	tcquery -index graph.idx -sources 1 -show   # prebuilt index, zero page I/O
//	tcquery -alg hyb -n 2000 -sources 3,250 -trace   # append the span tree as JSON
//	tcquery -n 50 -mutate insert:1:40,delete:3:4 -sources 1 -show
//	tcquery -n 2000 -plan -planobs btc:5:120,srch:40:900   # adaptive ranking, seeded
//
// With -planobs, the static -plan table is followed by the adaptive
// planner's ranking after seeding its observation store with the given
// alg:latency_ms:page_io[:count] samples — an offline microscope on how
// much evidence it takes to overturn the paper's cost model for this
// graph shape (see docs/PLANNER.md).
//
// With -mutate, the graph is loaded into an offline copy of the dynamic
// mutation service (the same code path tcserve -mutable runs): the
// comma-separated insert:from:to / delete:from:to ops are applied as one
// batch, a generational rebuild folds in any closure-shrinking deletes,
// and the successor sets of -sources come from the mutated index. The
// printed fingerprint matches what a mutable server would report after
// the same batch, so offline runs can be diffed against a live fleet.
//
// With -trace the run carries a phase-span tracer and the nested span tree
// — query → restructure/compute → per-source or per-worker — is printed as
// JSON after the metric record, each span annotated with its page-I/O
// delta. This is the offline end of the server's slow-query log: the
// logged replay command is a tcquery -trace invocation.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"tcstudy/internal/core"
	"tcstudy/internal/dynamic"
	"tcstudy/internal/graph"
	"tcstudy/internal/graphgen"
	"tcstudy/internal/index"
	"tcstudy/internal/obsv"
	"tcstudy/internal/planner"
)

func main() {
	var (
		alg        = flag.String("alg", "btc", "algorithm: btc, hyb, bj, srch, spn, jkb, jkb2, seminaive, warren, schmitz, bitmatrix")
		n          = flag.Int("n", 2000, "number of nodes (generated input)")
		f          = flag.Int("f", 5, "average out-degree (generated input)")
		l          = flag.Int("l", 200, "generation locality (generated input)")
		seed       = flag.Int64("seed", 1, "generator seed")
		input      = flag.String("input", "", "read arcs from file of \"src dst\" lines instead of generating")
		dbDir      = flag.String("db", "", "open a saved database directory instead of building one")
		saveDir    = flag.String("savedb", "", "after building the database, save it to this directory")
		sources    = flag.String("sources", "", "comma-separated source nodes; empty = full closure")
		m          = flag.Int("m", 10, "buffer pool pages")
		pagePolicy = flag.String("pagepolicy", "lru", "page replacement policy")
		listPolicy = flag.String("listpolicy", "smallest", "list replacement policy")
		ilimit     = flag.Float64("ilimit", 0, "HYB diagonal block fraction of the pool")
		parallel   = flag.Int("parallel", 0, "intra-query source parallelism for multi-source queries (0 = serial)")
		indexFile  = flag.String("index", "", "answer from this prebuilt reachability index (tcindex build) instead of running the engine")
		show       = flag.Bool("show", false, "print the computed successor sets")
		plan       = flag.Bool("plan", false, "print the planner's cost estimates before running")
		planObs    = flag.String("planobs", "", "seed the adaptive planner with alg:lat_ms:io[:count],... observations and print its ranking after the -plan table")
		agg        = flag.String("agg", "", "run a generalized-closure aggregate instead: minhops, maxhops, pathcount")
		trace      = flag.Bool("trace", false, "record phase spans and print the span tree as JSON after the metric record")
		mutate     = flag.String("mutate", "", "apply comma-separated insert:from:to / delete:from:to ops through the dynamic service, then answer -sources from the mutated index")
	)
	flag.Parse()

	if *indexFile != "" {
		runIndexQuery(*indexFile, *sources, *show)
		return
	}

	var db *core.Database
	if *dbDir != "" {
		var err error
		if db, err = core.OpenDatabase(*dbDir); err != nil {
			fatal(err)
		}
	} else {
		var arcs []graph.Arc
		nodes := *n
		if *input != "" {
			var err error
			arcs, nodes, err = readArcs(*input)
			if err != nil {
				fatal(err)
			}
		} else {
			var err error
			arcs, err = graphgen.Generate(graphgen.Params{Nodes: *n, OutDegree: *f, Locality: *l, Seed: *seed})
			if err != nil {
				fatal(err)
			}
		}
		db = core.NewDatabase(nodes, arcs)
	}
	if *saveDir != "" {
		if err := core.SaveDatabase(db, *saveDir); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "database saved to %s\n", *saveDir)
	}

	var q core.Query
	if *sources != "" {
		for _, part := range strings.Split(*sources, ",") {
			v, err := strconv.ParseInt(strings.TrimSpace(part), 10, 32)
			if err != nil {
				fatal(fmt.Errorf("bad source %q: %v", part, err))
			}
			if v < 1 {
				fatal(fmt.Errorf("source node %d is not positive: nodes are numbered from 1", v))
			}
			if v > int64(db.N()) {
				fatal(fmt.Errorf("source node %d outside the graph: nodes are 1..%d", v, db.N()))
			}
			q.Sources = append(q.Sources, int32(v))
		}
	}

	if *mutate != "" {
		runMutateQuery(db, *mutate, q.Sources, *show)
		return
	}

	if *plan || *planObs != "" {
		arcs, err := db.Arcs()
		if err != nil {
			fatal(err)
		}
		prof, err := planner.BuildProfile(graph.New(db.N(), arcs), 16, 1)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("planner profile: H=%.1f W=%.1f reach~%.0f\n", prof.H, prof.W, prof.Reach)
		for _, e := range planner.Estimates(prof, len(q.Sources), *m) {
			fmt.Printf("  %-10s est. %8.0f I/O  (%s)\n", e.Alg, e.IO, e.Why)
		}
		if *planObs != "" {
			printAdaptivePlan(*planObs, prof, len(q.Sources), *m)
		}
		fmt.Println()
	}

	cfg := core.Config{
		BufferPages: *m,
		PagePolicy:  *pagePolicy,
		ListPolicy:  *listPolicy,
		ILIMIT:      *ilimit,
		Parallelism: *parallel,
	}
	var tracer *obsv.Tracer
	if *trace {
		tracer = obsv.NewTracer()
		cfg.Trace = tracer.Start("query", obsv.KV("algorithm", *alg))
	}

	if *agg != "" {
		pres, err := core.RunPaths(db, core.PathAggregate(*agg), q, cfg)
		if err != nil {
			fatal(err)
		}
		mt := pres.Metrics
		fmt.Printf("aggregate            %s\n", mt.Algorithm)
		fmt.Printf("graph                n=%d |G|=%d\n", db.N(), db.NumArcs())
		fmt.Printf("query                %s\n", describe(q))
		fmt.Printf("total page I/O       %d (%d restructuring + %d computation)\n",
			mt.TotalIO(), mt.Restructure.Total(), mt.Compute.Total())
		fmt.Printf("aggregate entries    %d over %d unions\n", mt.DistinctTuples, mt.ListUnions)
		if *show {
			var keys []int32
			for k := range pres.Values {
				keys = append(keys, k)
			}
			sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
			for _, k := range keys {
				fmt.Printf("%d -> %d reachable nodes\n", k, len(pres.Values[k]))
			}
		}
		printTrace(tracer, cfg.Trace)
		return
	}

	res, err := core.Run(db, core.Algorithm(*alg), q, cfg)
	if err != nil {
		fatal(err)
	}

	mt := res.Metrics
	fmt.Printf("algorithm            %s\n", mt.Algorithm)
	fmt.Printf("graph                n=%d |G|=%d\n", db.N(), db.NumArcs())
	fmt.Printf("query                %s\n", describe(q))
	fmt.Printf("buffer               M=%d page=%s list=%s\n", *m, *pagePolicy, *listPolicy)
	fmt.Printf("restructure I/O      %d reads + %d writes = %d (%s)\n",
		mt.Restructure.Reads, mt.Restructure.Writes, mt.Restructure.Total(), mt.RestructureTime.Round(1e6))
	fmt.Printf("compute I/O          %d reads + %d writes = %d (%s)\n",
		mt.Compute.Reads, mt.Compute.Writes, mt.Compute.Total(), mt.ComputeTime.Round(1e6))
	fmt.Printf("total page I/O       %d (estimated I/O time %s at 20ms/page)\n",
		mt.TotalIO(), mt.EstimatedIOTime().Round(1e6))
	fmt.Printf("buffer hit ratio     %.3f (computation phase)\n", mt.ComputeBuffer.HitRatio())
	fmt.Printf("tuples generated     %d (%d duplicates)\n", mt.TuplesGenerated, mt.Duplicates)
	fmt.Printf("tuples materialized  %d (source tuples %d, selection efficiency %.3f)\n",
		mt.DistinctTuples, mt.SourceTuples, mt.SelectionEfficiency())
	fmt.Printf("successors fetched   %d\n", mt.SuccessorsFetched)
	fmt.Printf("list unions          %d\n", mt.ListUnions)
	fmt.Printf("arcs considered      %d, marked %d (%.1f%%)\n",
		mt.ArcsConsidered, mt.ArcsMarked, mt.MarkingPct())
	fmt.Printf("unmarked locality    %.2f\n", mt.AvgUnmarkedLocality())
	fmt.Printf("page splits          %d (lists moved %d, entries moved %d, overflows %d)\n",
		mt.Store.Splits, mt.Store.ListsMoved, mt.Store.EntriesMoved, mt.Store.Overflows)
	if mt.MagicNodes > 0 {
		fmt.Printf("magic graph          %d nodes, %d arcs, H=%.1f W=%.1f (free from restructuring, Theorem 2)\n",
			mt.MagicNodes, mt.MagicArcs, mt.MagicH, mt.MagicW)
	}
	printTrace(tracer, cfg.Trace)

	if *show {
		var keys []int32
		for k := range res.Successors {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
		for _, k := range keys {
			succ := res.Successors[k]
			sort.Slice(succ, func(i, j int) bool { return succ[i] < succ[j] })
			fmt.Printf("%d -> %v\n", k, succ)
		}
	}
}

// printAdaptivePlan seeds a fresh adaptive planner with the -planobs
// observations and prints its blended ranking for this profile — the
// offline twin of tcserve's /v1/plan adaptive mode.
func printAdaptivePlan(spec string, prof planner.Profile, numSources, m int) {
	ad := planner.NewAdaptive(planner.Config{})
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		fields := strings.Split(part, ":")
		if len(fields) != 3 && len(fields) != 4 {
			fatal(fmt.Errorf("bad observation %q: want alg:lat_ms:io or alg:lat_ms:io:count", part))
		}
		latMS, err1 := strconv.ParseFloat(fields[1], 64)
		io, err2 := strconv.ParseInt(fields[2], 10, 64)
		count := 1
		var err3 error
		if len(fields) == 4 {
			count, err3 = strconv.Atoi(fields[3])
		}
		if err1 != nil || err2 != nil || err3 != nil || latMS < 0 || io < 0 || count < 1 {
			fatal(fmt.Errorf("bad observation %q: latency, I/O and count must be non-negative numbers", part))
		}
		lat := time.Duration(latMS * float64(time.Millisecond))
		for i := 0; i < count; i++ {
			ad.Observe(prof, numSources, m, core.Algorithm(fields[0]), lat, io)
		}
	}
	fmt.Println("adaptive ranking (seeded observations):")
	for _, d := range ad.Rank(prof, numSources, m) {
		line := fmt.Sprintf("  %-10s blended %8.0f  static %8.0f", d.Alg, d.Blended, d.IO)
		if d.Samples > 0 {
			line += fmt.Sprintf("  obs %.0f I/O / %s over %.1f samples",
				d.ObsIO, d.ObsLatency.Round(time.Millisecond), d.Samples)
		}
		fmt.Println(line)
	}
}

// runIndexQuery answers a source query from a prebuilt reachability index
// and prints the same summary shape as an engine run, so the two CLI paths
// compare apples to apples. Page I/O is zero by construction: the index
// answers entirely from its in-memory labels.
func runIndexQuery(path, sources string, show bool) {
	idx, err := index.LoadFile(path)
	if err != nil {
		fatal(err)
	}
	if idx.Stale() {
		fmt.Fprintln(os.Stderr, "tcquery: warning: index is stale; answers predate the violating insert")
	}
	var srcs []int32
	if sources != "" {
		for _, part := range strings.Split(sources, ",") {
			v, err := strconv.ParseInt(strings.TrimSpace(part), 10, 32)
			if err != nil {
				fatal(fmt.Errorf("bad source %q: %v", part, err))
			}
			if v < 1 || v > int64(idx.N()) {
				fatal(fmt.Errorf("source node %d outside the graph: nodes are 1..%d", v, idx.N()))
			}
			srcs = append(srcs, int32(v))
		}
	}
	q := core.Query{Sources: srcs}
	effective := srcs
	if q.IsFull() {
		effective = make([]int32, idx.N())
		for i := range effective {
			effective[i] = int32(i + 1)
		}
	}
	start := time.Now()
	succ := make(map[int32][]int32, len(effective))
	var tuples int64
	for _, s := range effective {
		succ[s] = idx.Successors(s)
		tuples += int64(len(succ[s]))
	}
	elapsed := time.Since(start)
	fmt.Printf("algorithm            index (%s)\n", path)
	fmt.Printf("graph                n=%d |G|=%d\n", idx.N(), idx.NumArcs())
	fmt.Printf("query                %s\n", describe(q))
	fmt.Printf("total page I/O       0 (index answers from memory, %s)\n", elapsed.Round(time.Microsecond))
	fmt.Printf("tuples materialized  %d\n", tuples)
	if show {
		var keys []int32
		for k := range succ {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
		for _, k := range keys {
			fmt.Printf("%d -> %v\n", k, succ[k])
		}
	}
}

// runMutateQuery feeds the loaded graph through the dynamic mutation
// service offline: one batch of parsed ops, a rebuild folding any
// closure-shrinking deletes, then the mutated index answers the sources.
func runMutateQuery(db *core.Database, spec string, sources []int32, show bool) {
	arcs, err := db.Arcs()
	if err != nil {
		fatal(err)
	}
	idx, err := index.Build(graph.New(db.N(), arcs))
	if err != nil {
		fatal(err)
	}
	fp, err := db.Fingerprint()
	if err != nil {
		fatal(err)
	}
	svc, err := dynamic.New(db.N(), arcs, idx, dynamic.Options{Manual: true, BaseFingerprint: fp})
	if err != nil {
		fatal(err)
	}
	defer svc.Close()

	ops, err := parseMutateSpec(spec, db.N())
	if err != nil {
		fatal(err)
	}
	start := time.Now()
	res, err := svc.Apply(ops)
	if err != nil {
		fatal(err)
	}
	if res.Dirty {
		if err := svc.RebuildNow(); err != nil {
			fatal(err)
		}
	}
	elapsed := time.Since(start)
	st := svc.Stats()

	fmt.Printf("mutation             %d ops: %d applied, %d no-ops (%s)\n",
		len(ops), res.Applied, res.Noops, elapsed.Round(time.Microsecond))
	if res.Merged > 0 {
		fmt.Printf("scc merges           %d components absorbed in place\n", res.Merged)
	}
	fmt.Printf("graph                n=%d |G|=%d\n", db.N(), st.NumArcs)
	fmt.Printf("generation           %d (seq %d)\n", st.Generation, st.Seq)
	fmt.Printf("fingerprint          %016x\n", st.Fingerprint)

	mutated := svc.Index()
	effective := sources
	if len(effective) == 0 {
		effective = make([]int32, db.N())
		for i := range effective {
			effective[i] = int32(i + 1)
		}
	}
	var tuples int64
	succ := make(map[int32][]int32, len(effective))
	for _, s := range effective {
		succ[s] = mutated.Successors(s)
		tuples += int64(len(succ[s]))
	}
	fmt.Printf("tuples materialized  %d\n", tuples)
	if show {
		var keys []int32
		for k := range succ {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
		for _, k := range keys {
			fmt.Printf("%d -> %v\n", k, succ[k])
		}
	}
}

// parseMutateSpec parses "insert:1:40,delete:3:4" into a mutation batch.
func parseMutateSpec(spec string, n int) ([]dynamic.Op, error) {
	var ops []dynamic.Op
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		fields := strings.Split(part, ":")
		if len(fields) != 3 {
			return nil, fmt.Errorf("bad mutation %q: want op:from:to", part)
		}
		kind := fields[0]
		if kind != dynamic.OpInsert && kind != dynamic.OpDelete {
			return nil, fmt.Errorf("bad mutation %q: op must be insert or delete", part)
		}
		from, err1 := strconv.ParseInt(fields[1], 10, 32)
		to, err2 := strconv.ParseInt(fields[2], 10, 32)
		if err1 != nil || err2 != nil {
			return nil, fmt.Errorf("bad mutation %q: from and to must be integers", part)
		}
		if from < 1 || from > int64(n) || to < 1 || to > int64(n) {
			return nil, fmt.Errorf("bad mutation %q: nodes are 1..%d", part, n)
		}
		ops = append(ops, dynamic.Op{Op: kind, From: int32(from), To: int32(to)})
	}
	if len(ops) == 0 {
		return nil, fmt.Errorf("-mutate %q contains no ops", spec)
	}
	return ops, nil
}

// printTrace finishes the root span and prints the span tree as indented
// JSON. A nil tracer (no -trace flag) is a no-op.
func printTrace(tracer *obsv.Tracer, root *obsv.Span) {
	if tracer == nil {
		return
	}
	root.Finish()
	fmt.Println("trace:")
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(tracer.Records()); err != nil {
		fatal(err)
	}
	if d := tracer.Dropped(); d > 0 {
		fmt.Fprintf(os.Stderr, "tcquery: %d spans dropped (cap %d)\n", d, obsv.DefaultMaxSpans)
	}
}

func describe(q core.Query) string {
	if q.IsFull() {
		return "full transitive closure"
	}
	return fmt.Sprintf("partial closure of %d source nodes %v", len(q.Sources), q.Sources)
}

func readArcs(path string) ([]graph.Arc, int, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, 0, err
	}
	defer f.Close()
	var arcs []graph.Arc
	maxNode := 0
	sc := bufio.NewScanner(f)
	for line := 1; sc.Scan(); line++ {
		fields := strings.Fields(sc.Text())
		if len(fields) == 0 || strings.HasPrefix(fields[0], "#") {
			continue
		}
		if len(fields) != 2 {
			return nil, 0, fmt.Errorf("%s:%d: want \"src dst\", got %q", path, line, sc.Text())
		}
		from, err1 := strconv.Atoi(fields[0])
		to, err2 := strconv.Atoi(fields[1])
		if err1 != nil || err2 != nil || from < 1 || to < 1 {
			return nil, 0, fmt.Errorf("%s:%d: bad arc %q", path, line, sc.Text())
		}
		if from > maxNode {
			maxNode = from
		}
		if to > maxNode {
			maxNode = to
		}
		arcs = append(arcs, graph.Arc{From: int32(from), To: int32(to)})
	}
	return arcs, maxNode, sc.Err()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tcquery:", err)
	os.Exit(1)
}
