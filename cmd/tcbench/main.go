// Command tcbench regenerates the tables and figures of the paper's
// evaluation section.
//
// Usage:
//
//	tcbench -exp table2          # one experiment
//	tcbench -exp all             # the full evaluation
//	tcbench -list                # list experiment IDs
//	tcbench -exp fig8 -markdown  # markdown output (for EXPERIMENTS.md)
//	tcbench -exp all -nodes 500 -reps 1 -v   # quick shape-preserving run
//	tcbench -json -nodes 500                 # machine-readable micro-benchmarks
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"tcstudy/internal/experiments"
)

func main() {
	var (
		exp      = flag.String("exp", "", "experiment ID to run, or \"all\"")
		list     = flag.Bool("list", false, "list experiment IDs and exit")
		nodes    = flag.Int("nodes", 2000, "graph size n (paper: 2000)")
		seed     = flag.Int64("seed", 1, "graph generator seed")
		reps     = flag.Int("reps", 3, "random source sets averaged per selection query (paper: 5)")
		markdown = flag.Bool("markdown", false, "render tables as markdown")
		verbose  = flag.Bool("v", false, "print progress while running")
		jsonOut  = flag.Bool("json", false, "run the micro-benchmark suite, one JSON record per line")
		m        = flag.Int("m", 10, "buffer pool pages per query (-json suite)")
	)
	flag.Parse()

	if *jsonOut {
		if err := runJSON(*nodes, 5, 200, *seed, *m); err != nil {
			fmt.Fprintln(os.Stderr, "tcbench:", err)
			os.Exit(1)
		}
		return
	}
	if *list {
		titles := experiments.Titles()
		for _, id := range experiments.IDs() {
			fmt.Printf("%-20s %s\n", id, titles[id])
		}
		return
	}
	if *exp == "" {
		flag.Usage()
		os.Exit(2)
	}

	s := experiments.NewSuite()
	s.Nodes = *nodes
	s.Seed = *seed
	s.QueryReps = *reps
	if *verbose {
		s.Progress = func(line string) { fmt.Fprintf(os.Stderr, "[%s] %s\n", time.Now().Format("15:04:05"), line) }
	}

	render := func(t *experiments.Table) {
		if *markdown {
			fmt.Println(t.Markdown())
		} else {
			fmt.Println(t.Render())
		}
	}

	start := time.Now()
	if *exp == "all" {
		tables, err := s.RunAll()
		for _, t := range tables {
			render(t)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "tcbench:", err)
			os.Exit(1)
		}
	} else {
		t, err := s.Run(*exp)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tcbench:", err)
			os.Exit(1)
		}
		render(t)
	}
	fmt.Fprintf(os.Stderr, "total time: %s\n", time.Since(start).Round(time.Millisecond))
}
