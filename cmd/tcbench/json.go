package main

import (
	"encoding/json"
	"fmt"
	"os"
	"testing"

	"tcstudy/internal/core"
	"tcstudy/internal/graphgen"
)

// Machine-readable micro-benchmarks. `tcbench -json` runs a fixed suite of
// single-query benchmarks through testing.Benchmark and prints one JSON
// record per line, so CI and scripts can track ns/op, allocation rate, and
// the simulated page traffic without scraping the human tables. The page
// counts come from the engine's own metric record and are deterministic
// for a given graph; the timing fields are the usual noisy wall-clock
// numbers testing.B reports.

// benchRecord is one emitted line of `tcbench -json`.
type benchRecord struct {
	Name         string  `json:"name"`
	Algorithm    string  `json:"algorithm"`
	Nodes        int     `json:"nodes"`
	Arcs         int64   `json:"arcs"`
	Sources      int     `json:"sources"`
	Iterations   int     `json:"iterations"`
	NsPerOp      float64 `json:"ns_per_op"`
	AllocsPerOp  int64   `json:"allocs_per_op"`
	BytesPerOp   int64   `json:"bytes_per_op"`
	PagesRead    int64   `json:"pages_read"`
	PagesWritten int64   `json:"pages_written"`
}

// jsonAlgorithms is the benchmarked suite: the paper's main contenders
// plus the adaptive hybrid, each run as an 8-source partial closure and
// once as a full closure for the two all-pairs algorithms.
var jsonAlgorithms = []struct {
	alg     core.Algorithm
	full    bool // full closure instead of the 8-source selection
	ilimit  float64
	variant string // suffix distinguishing query shapes of one algorithm
}{
	{alg: core.BTC},
	{alg: core.BJ},
	{alg: core.SRCH},
	{alg: core.SPN},
	{alg: core.JKB2},
	{alg: core.SCHMITZ},
	{alg: core.HYB, ilimit: 0.25},
	{alg: core.BTC, full: true, variant: "full"},
	{alg: core.HYB, full: true, ilimit: 0.25, variant: "full"},
}

const jsonSources = 8

// runJSON executes the suite and writes newline-delimited JSON to stdout.
func runJSON(nodes, outDegree, locality int, seed int64, bufferPages int) error {
	arcs, err := graphgen.Generate(graphgen.Params{
		Nodes: nodes, OutDegree: outDegree, Locality: locality, Seed: seed,
	})
	if err != nil {
		return err
	}
	db := core.NewDatabase(nodes, arcs)
	enc := json.NewEncoder(os.Stdout)
	for _, bc := range jsonAlgorithms {
		q := core.Query{}
		nsrc := nodes // full closure expands every node
		if !bc.full {
			q.Sources = graphgen.SourceSet(nodes, jsonSources, seed)
			nsrc = jsonSources
		}
		cfg := core.Config{BufferPages: bufferPages, ILIMIT: bc.ilimit}
		// One reference run pins down the deterministic page traffic and
		// checks the shape before the timed loop commits to it.
		ref, err := core.Run(db, bc.alg, q, cfg)
		if err != nil {
			return fmt.Errorf("%s: %w", bc.alg, err)
		}
		br := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := core.Run(db, bc.alg, q, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
		name := string(bc.alg)
		if bc.variant != "" {
			name += "/" + bc.variant
		}
		rec := benchRecord{
			Name:         "BenchmarkQuery/" + name,
			Algorithm:    string(bc.alg),
			Nodes:        nodes,
			Arcs:         int64(db.NumArcs()),
			Sources:      nsrc,
			Iterations:   br.N,
			NsPerOp:      float64(br.NsPerOp()),
			AllocsPerOp:  br.AllocsPerOp(),
			BytesPerOp:   br.AllocedBytesPerOp(),
			PagesRead:    ref.Metrics.Restructure.Reads + ref.Metrics.Compute.Reads,
			PagesWritten: ref.Metrics.Restructure.Writes + ref.Metrics.Compute.Writes,
		}
		if err := enc.Encode(rec); err != nil {
			return err
		}
	}
	return nil
}
