// Command tcindex builds, inspects and queries persistent reachability
// index files (the chain-decomposition fast path tcserve puts in front of
// the closure engine). Subcommands:
//
//	tcindex build -o graph.idx -input graph.txt         # from tcgen -dump output
//	tcindex build -o graph.idx -n 2000 -f 5 -l 200      # from the generator
//	tcindex build -o graph.idx -decomp=kt -par 4        # Kritikakis-Tollis chains
//	tcindex inspect graph.idx                           # shape, labels, generation, staleness
//	tcindex reach graph.idx 3 777                       # one reachability probe
//
// The input file format is the "src dst" line format tcgen -dump emits and
// tcquery -input consumes. reach exits 3 when the index is stale: the
// printed answer predates a closure-changing mutation and must not be
// trusted by scripts.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"tcstudy/internal/graph"
	"tcstudy/internal/graphgen"
	"tcstudy/internal/index"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "build":
		build(os.Args[2:])
	case "inspect":
		inspect(os.Args[2:])
	case "reach":
		reach(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  tcindex build -o <file> [-input arcs.txt | -n N -f F -l L -seed S] [-decomp greedy|kt] [-par P]
  tcindex inspect <file>
  tcindex reach <file> <src> <dst>`)
	os.Exit(2)
}

func build(args []string) {
	fs := flag.NewFlagSet("build", flag.ExitOnError)
	var (
		out    = fs.String("o", "", "output index file (required)")
		input  = fs.String("input", "", "read arcs from file of \"src dst\" lines instead of generating")
		n      = fs.Int("n", 2000, "number of nodes (generated input)")
		f      = fs.Int("f", 5, "average out-degree (generated input)")
		l      = fs.Int("l", 200, "generation locality (generated input)")
		seed   = fs.Int64("seed", 1, "generator seed")
		decomp = fs.String("decomp", index.BuilderGreedy, "chain decomposition: greedy or kt (Kritikakis-Tollis)")
		par    = fs.Int("par", 1, "worker pool size for the kt builder's label sweeps")
	)
	fs.Parse(args)
	if *out == "" {
		fatal(fmt.Errorf("build: -o is required"))
	}
	if *decomp != index.BuilderGreedy && *decomp != index.BuilderKT {
		fatal(fmt.Errorf("build: -decomp must be %q or %q, got %q", index.BuilderGreedy, index.BuilderKT, *decomp))
	}
	var (
		arcs  []graph.Arc
		nodes int
		err   error
	)
	if *input != "" {
		arcs, nodes, err = readArcs(*input)
	} else {
		nodes = *n
		arcs, err = graphgen.Generate(graphgen.Params{Nodes: *n, OutDegree: *f, Locality: *l, Seed: *seed})
	}
	if err != nil {
		fatal(err)
	}
	start := time.Now()
	var x *index.Index
	if *decomp == index.BuilderKT {
		x, err = index.BuildKT(graph.New(nodes, arcs), index.KTOptions{Parallelism: *par})
	} else {
		x, err = index.Build(graph.New(nodes, arcs))
	}
	if err != nil {
		fatal(err)
	}
	buildTime := time.Since(start)
	if err := x.SaveFile(*out); err != nil {
		fatal(err)
	}
	fi, err := os.Stat(*out)
	if err != nil {
		fatal(err)
	}
	st := x.ComputeStats()
	fmt.Printf("built %s in %s (%s decomposition)\n", *out, buildTime.Round(time.Millisecond), st.Builder)
	fmt.Printf("graph     n=%d |G|=%d components=%d\n", st.Nodes, st.Arcs, st.Components)
	fmt.Printf("chains    %d (avg label %.1f entries, %d total)\n", st.Chains, st.AvgLabel, st.LabelEntries)
	fmt.Printf("file      %d bytes (%.1f bytes/node)\n", fi.Size(), st.BytesPerNode)
}

func inspect(args []string) {
	if len(args) != 1 {
		usage()
	}
	x, err := index.LoadFile(args[0])
	if err != nil {
		fatal(err)
	}
	st := x.ComputeStats()
	fmt.Printf("graph          n=%d |G|=%d\n", st.Nodes, st.Arcs)
	fmt.Printf("builder        %s\n", st.Builder)
	fmt.Printf("components     %d\n", st.Components)
	fmt.Printf("chains         %d\n", st.Chains)
	fmt.Printf("label entries  %d (avg %.1f per component)\n", st.LabelEntries, st.AvgLabel)
	fmt.Printf("label size     p50=%d p95=%d max=%d entries per component\n", st.P50Label, st.P95Label, st.MaxLabel)
	fmt.Printf("file size      %d bytes (%.1f bytes/node)\n", st.FileBytes, st.BytesPerNode)
	fmt.Printf("chain overlap  %.2f (sampled label pairs sharing a chain)\n", st.ChainOverlap)
	fmt.Printf("generation     %d\n", st.Generation)
	fmt.Printf("merged comps   %d (SCC merges absorbed in place)\n", st.Merged)
	fmt.Printf("stale          %t\n", st.Stale)
}

func reach(args []string) {
	if len(args) != 3 {
		usage()
	}
	x, err := index.LoadFile(args[0])
	if err != nil {
		fatal(err)
	}
	src, err1 := strconv.ParseInt(args[1], 10, 32)
	dst, err2 := strconv.ParseInt(args[2], 10, 32)
	if err1 != nil || err2 != nil {
		fatal(fmt.Errorf("reach: src and dst must be integers"))
	}
	start := time.Now()
	ok := x.Reach(int32(src), int32(dst))
	elapsed := time.Since(start)
	fmt.Printf("%d -> %d: %t (%s)\n", src, dst, ok, elapsed)
	if x.Stale() {
		// The answer is printed for inspection, but scripts must not trust
		// it: a stale index predates a closure-changing mutation.
		fmt.Fprintln(os.Stderr, "tcindex: index is stale; answer predates the violating mutation")
		os.Exit(3)
	}
}

// readArcs parses "src dst" lines (tcgen -dump format, # comments allowed).
func readArcs(path string) ([]graph.Arc, int, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, 0, err
	}
	defer f.Close()
	var arcs []graph.Arc
	maxNode := 0
	sc := bufio.NewScanner(f)
	for line := 1; sc.Scan(); line++ {
		fields := strings.Fields(sc.Text())
		if len(fields) == 0 || strings.HasPrefix(fields[0], "#") {
			continue
		}
		if len(fields) != 2 {
			return nil, 0, fmt.Errorf("%s:%d: want \"src dst\", got %q", path, line, sc.Text())
		}
		from, err1 := strconv.Atoi(fields[0])
		to, err2 := strconv.Atoi(fields[1])
		if err1 != nil || err2 != nil || from < 1 || to < 1 {
			return nil, 0, fmt.Errorf("%s:%d: bad arc %q", path, line, sc.Text())
		}
		if from > maxNode {
			maxNode = from
		}
		if to > maxNode {
			maxNode = to
		}
		arcs = append(arcs, graph.Arc{From: int32(from), To: int32(to)})
	}
	return arcs, maxNode, sc.Err()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tcindex:", err)
	os.Exit(1)
}
