// Command tcgen generates one of the study's synthetic DAGs and prints its
// characterization (a single row of Table 2), optionally dumping the arc
// list as "src dst" lines for use by other tools.
//
// Usage:
//
//	tcgen -n 2000 -f 5 -l 200          # characterize a G5-family graph
//	tcgen -n 2000 -f 5 -l 200 -dump    # also print the arcs
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"tcstudy/internal/graph"
	"tcstudy/internal/graphgen"
)

func main() {
	var (
		n    = flag.Int("n", 2000, "number of nodes")
		f    = flag.Int("f", 5, "average out-degree F (per-node degree ~ U{0..2F})")
		l    = flag.Int("l", 200, "generation locality")
		seed = flag.Int64("seed", 1, "generator seed")
		dump = flag.Bool("dump", false, "print the arc list after the characterization")
	)
	flag.Parse()

	arcs, err := graphgen.Generate(graphgen.Params{Nodes: *n, OutDegree: *f, Locality: *l, Seed: *seed})
	if err != nil {
		fmt.Fprintln(os.Stderr, "tcgen:", err)
		os.Exit(1)
	}
	g := graph.New(*n, arcs)
	st, err := g.ComputeStats()
	if err != nil {
		fmt.Fprintln(os.Stderr, "tcgen:", err)
		os.Exit(1)
	}
	fmt.Printf("n=%d F=%d l=%d seed=%d\n", *n, *f, *l, *seed)
	fmt.Printf("|G|=%d  max level=%d  H=%.1f  W=%.1f\n", st.Arcs, st.MaxLevel, st.H, st.W)
	fmt.Printf("avg arc locality=%.1f  avg irredundant locality=%.1f  |TR|=%d\n",
		st.AvgLocality, st.AvgIrredLoc, st.IrredundArcs)
	fmt.Printf("|TC(G)|=%d\n", st.ClosureSize)

	if *dump {
		w := bufio.NewWriter(os.Stdout)
		defer w.Flush()
		for _, a := range arcs {
			fmt.Fprintf(w, "%d %d\n", a.From, a.To)
		}
	}
}
