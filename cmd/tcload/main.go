// Command tcload drives a running tcserve instance with a configurable
// open-loop query stream and reports throughput, latency percentiles and
// the server's own cache statistics. The mix interleaves boolean reach
// probes with partial-closure queries; the -sourcepool flag bounds how many
// distinct query shapes circulate, which directly sets the attainable
// cache hit rate.
//
// The reach workload is tunable for exercising the index fast path
// against the engine path: -reach sets the fraction of /v1/reach probes
// and -reachdist picks their src/dst distribution (uniform, zipf for hot
// sources, local for dst within -reachspan of src).
//
// Against a mutable server (tcserve -mutable, or a tcrouter fronting a
// mutable fleet), -writemix interleaves POST /v1/arc mutation batches into
// the stream: each write batch carries -writeops random insert/delete ops
// drawn from the same node space. Writes share the retry policy and the
// collector, so 429 backlog rejections count as admission control, not
// errors.
//
// Against a multi-graph server (tcserve -graphs, or a tcrouter fronting
// one), -graph names the tenants to drive: requests are spread across the
// listed graphs, each graph's queries are generated from its own node
// space (read from the healthz graphs block), and the run ends with one
// summary line per graph so per-tenant fairness and cache behaviour are
// visible at a glance. Mutations are single-graph only server-side, so
// -graph and -writemix conflict.
//
// Examples (against tcserve -n 2000, or tcserve -graphs a=dir1,b=dir2):
//
//	tcload -addr http://localhost:8080 -duration 10s -qps 200 -reach 0.5
//	tcload -addr http://localhost:8080 -reach 1 -reachdist zipf -qps 500
//	tcload -addr http://localhost:8080 -writemix 0.1 -writeops 4 -qps 100
//	tcload -addr http://localhost:8080 -graph a,b -qps 200
//
// Rejections (HTTP 429, admission control working as intended) are counted
// separately from errors. The exit status is nonzero if any request failed
// with a transport error or an unexpected HTTP status.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"tcstudy/internal/httpretry"
)

func main() {
	var (
		addr       = flag.String("addr", "http://localhost:8080", "tcserve base URL")
		targets    = flag.String("targets", "", "comma-separated base URLs driven round-robin (tcserve replicas or tcrouter instances); overrides -addr")
		duration   = flag.Duration("duration", 10*time.Second, "run length")
		qps        = flag.Float64("qps", 100, "target request rate")
		inflight   = flag.Int("inflight", 64, "max concurrent requests (arrivals beyond it are dropped)")
		reachFrac  = flag.Float64("reach", 0.5, "fraction of requests that are /v1/reach probes")
		reachDist  = flag.String("reachdist", "uniform", "reach src/dst distribution: uniform, zipf (hot low-numbered nodes), local (dst near src)")
		reachSpan  = flag.Int("reachspan", 50, "max |dst-src| for -reachdist local")
		algs       = flag.String("algs", "srch,bj,btc", "comma-separated algorithms for /v1/query requests")
		maxSources = flag.Int("maxsources", 4, "max sources per closure query")
		sourcePool = flag.Int("sourcepool", 16, "distinct query shapes in circulation (smaller = more cache hits)")
		m          = flag.Int("m", 0, "buffer pages per query (0 = server default)")
		seed       = flag.Int64("seed", 1, "workload seed")
		retries    = flag.Int("retries", 2, "retry attempts for transient 503 responses and transport errors")
		backoff    = flag.Duration("backoff", 25*time.Millisecond, "initial retry backoff (doubles per attempt)")
		writeMix   = flag.Float64("writemix", 0, "fraction of requests that are POST /v1/arc mutation batches (requires a mutable server)")
		writeOps   = flag.Int("writeops", 4, "insert/delete ops per mutation batch")
		deletePct  = flag.Int("deletepct", 30, "percentage of mutation ops that are deletes")
		graphList  = flag.String("graph", "", "comma-separated graph names to drive on a multi-graph server (empty = the default graph)")
	)
	flag.Parse()
	retryPolicy = httpretry.Policy{Max: *retries, Backoff: *backoff}

	endpoints := parseTargets(*targets, *addr)
	client := &http.Client{Timeout: 60 * time.Second}
	rng := rand.New(rand.NewSource(*seed))
	tenants, err := buildTenants(client, endpoints, *graphList, tenantParams{
		algs: *algs, maxSources: *maxSources, pool: *sourcePool, m: *m, seed: *seed,
		reachDist: *reachDist, reachSpan: *reachSpan, rng: rng,
	})
	if err != nil {
		fatal(err)
	}
	if *writeMix > 0 && tenants[0].name != "" {
		fatal(fmt.Errorf("-writemix drives POST /v1/arc, which is single-graph only: drop -graph or -writemix"))
	}
	nodes := tenants[0].nodes
	fmt.Printf("tcload: %d target(s), %s; driving %.0f qps for %s (reach mix %.0f%%)\n",
		len(endpoints), describeTenants(tenants), *qps, *duration, 100**reachFrac)
	next := newPicker(endpoints)

	var (
		wg      sync.WaitGroup
		sem     = make(chan struct{}, *inflight)
		dropped atomic.Int64
		stats   = newCollector()
	)
	interval := time.Duration(float64(time.Second) / *qps)
	if interval <= 0 {
		interval = time.Millisecond
	}
	deadline := time.Now().Add(*duration)
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for now := range ticker.C {
		if now.After(deadline) {
			break
		}
		var op func()
		base := next()
		tr := tenants[rng.Intn(len(tenants))]
		record := func(o outcome) {
			stats.observe(o)
			if tr.stats != nil {
				tr.stats.observe(o)
			}
		}
		if *writeMix > 0 && rng.Float64() < *writeMix {
			body := makeArcBatch(rng, nodes, *writeOps, *deletePct)
			url := base + "/v1/arc"
			op = func() { record(doPost(client, url, body)) }
		} else if rng.Float64() < *reachFrac {
			src, dst := tr.pickReach()
			url := fmt.Sprintf("%s/v1/reach?src=%d&dst=%d%s", base, src, dst, tr.reachParam)
			op = func() { record(doGet(client, url)) }
		} else {
			body := tr.shapes[rng.Intn(len(tr.shapes))]
			url := base + "/v1/query"
			op = func() { record(doPost(client, url, body)) }
		}
		select {
		case sem <- struct{}{}:
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer func() { <-sem }()
				op()
			}()
		default:
			dropped.Add(1)
		}
	}
	wg.Wait()

	stats.report(*duration, dropped.Load())
	for _, tr := range tenants {
		if tr.stats != nil {
			tr.stats.summary(tr.name)
		}
	}
	for _, base := range endpoints {
		printServerMetrics(client, base)
		printServerIndex(client, base)
	}
	if stats.errors.Load() > 0 {
		os.Exit(1)
	}
}

// parseTargets resolves the endpoint list: -targets (comma-separated) when
// given, otherwise the single -addr.
func parseTargets(targets, addr string) []string {
	if targets == "" {
		return []string{addr}
	}
	var out []string
	for _, t := range strings.Split(targets, ",") {
		if t = strings.TrimSpace(t); t != "" {
			out = append(out, strings.TrimRight(t, "/"))
		}
	}
	if len(out) == 0 {
		fatal(fmt.Errorf("-targets %q contains no endpoints", targets))
	}
	return out
}

// checkTargets verifies every endpoint is reachable and that all of them
// serve a graph of the same size — driving a mixed fleet would make the
// generated sources invalid on the smaller servers.
func checkTargets(c *http.Client, endpoints []string) (int, error) {
	nodes := 0
	for i, base := range endpoints {
		n, err := fetchNodes(c, base)
		if err != nil {
			return 0, fmt.Errorf("cannot reach server at %s: %w", base, err)
		}
		if i == 0 {
			nodes = n
		} else if n != nodes {
			return 0, fmt.Errorf("target %s has %d nodes but %s has %d: refusing mixed fleet",
				base, n, endpoints[0], nodes)
		}
	}
	return nodes, nil
}

// tenantRun is one graph's slice of the workload: its pre-built query
// shapes, its reach generator over its own node space, and (for named
// graphs) its own collector for the end-of-run per-tenant summary. A
// single-graph run is one tenantRun with an empty name and no collector —
// the global collector already tells the whole story.
type tenantRun struct {
	name       string
	nodes      int
	reachParam string // "&graph=<name>" or ""
	shapes     [][]byte
	pickReach  func() (int32, int32)
	stats      *collector
}

// tenantParams carries the workload knobs buildTenants needs per graph.
type tenantParams struct {
	algs                string
	maxSources, pool, m int
	seed                int64
	reachDist           string
	reachSpan           int
	rng                 *rand.Rand
}

// buildTenants resolves the -graph list into one tenantRun per graph,
// validating every target serves each named graph at the same size. An
// empty list produces the classic single-tenant run against the default
// graph.
func buildTenants(c *http.Client, endpoints []string, graphList string, p tenantParams) ([]*tenantRun, error) {
	var names []string
	for _, n := range strings.Split(graphList, ",") {
		if n = strings.TrimSpace(n); n != "" {
			names = append(names, n)
		}
	}
	if len(names) == 0 {
		nodes, err := checkTargets(c, endpoints)
		if err != nil {
			return nil, err
		}
		pick, err := reachPicker(p.reachDist, p.reachSpan, nodes, p.rng)
		if err != nil {
			return nil, err
		}
		return []*tenantRun{{
			nodes:     nodes,
			shapes:    buildShapes(p.algs, "", nodes, p.maxSources, p.pool, p.m, p.seed),
			pickReach: pick,
		}}, nil
	}

	sizes, err := checkGraphTargets(c, endpoints, names)
	if err != nil {
		return nil, err
	}
	tenants := make([]*tenantRun, 0, len(names))
	for i, name := range names {
		nodes := sizes[name]
		pick, err := reachPicker(p.reachDist, p.reachSpan, nodes, p.rng)
		if err != nil {
			return nil, err
		}
		tenants = append(tenants, &tenantRun{
			name:       name,
			nodes:      nodes,
			reachParam: "&graph=" + name,
			shapes:     buildShapes(p.algs, name, nodes, p.maxSources, p.pool, p.m, p.seed+int64(i)),
			pickReach:  pick,
			stats:      newCollector(),
		})
	}
	return tenants, nil
}

// checkGraphTargets verifies every endpoint serves every named graph and
// that each graph has the same node count fleet-wide, returning the sizes.
func checkGraphTargets(c *http.Client, endpoints, names []string) (map[string]int, error) {
	sizes := make(map[string]int)
	for i, base := range endpoints {
		graphs, err := fetchGraphs(c, base)
		if err != nil {
			return nil, fmt.Errorf("cannot reach server at %s: %w", base, err)
		}
		for _, name := range names {
			n, ok := graphs[name]
			if !ok {
				return nil, fmt.Errorf("server %s does not serve graph %q (it serves %s)",
					base, name, graphNames(graphs))
			}
			if i == 0 {
				sizes[name] = n
			} else if n != sizes[name] {
				return nil, fmt.Errorf("graph %q has %d nodes on %s but %d on %s: refusing mixed fleet",
					name, n, base, sizes[name], endpoints[0])
			}
		}
	}
	return sizes, nil
}

func graphNames(graphs map[string]int) string {
	names := make([]string, 0, len(graphs))
	for n := range graphs {
		names = append(names, n)
	}
	sort.Strings(names)
	return strings.Join(names, ", ")
}

// describeTenants renders the startup banner fragment for the graph set.
func describeTenants(tenants []*tenantRun) string {
	if len(tenants) == 1 && tenants[0].name == "" {
		return fmt.Sprintf("%d nodes", tenants[0].nodes)
	}
	parts := make([]string, len(tenants))
	for i, tr := range tenants {
		parts[i] = fmt.Sprintf("%s (%d nodes)", tr.name, tr.nodes)
	}
	return "graphs " + strings.Join(parts, ", ")
}

// newPicker returns a round-robin endpoint selector (trivial for one).
func newPicker(endpoints []string) func() string {
	if len(endpoints) == 1 {
		base := endpoints[0]
		return func() string { return base }
	}
	var i atomic.Int64
	return func() string {
		return endpoints[int(i.Add(1)-1)%len(endpoints)]
	}
}

// reachPicker returns the src/dst generator for /v1/reach probes. The
// distribution shapes how well the server's caches and the reachability
// index fast path fare: uniform gives no locality at all, zipf
// concentrates traffic on hot low-numbered sources (a power-law audience),
// and local keeps dst within -reachspan of src (probes that mostly hit,
// mimicking neighborhood queries).
func reachPicker(dist string, span, nodes int, rng *rand.Rand) (func() (int32, int32), error) {
	uniform := func() int32 { return int32(rng.Intn(nodes) + 1) }
	switch dist {
	case "uniform":
		return func() (int32, int32) { return uniform(), uniform() }, nil
	case "zipf":
		imax := uint64(nodes - 1)
		if nodes < 2 {
			return func() (int32, int32) { return 1, 1 }, nil
		}
		z := rand.NewZipf(rng, 1.2, 1, imax)
		return func() (int32, int32) {
			return int32(z.Uint64()) + 1, int32(z.Uint64()) + 1
		}, nil
	case "local":
		if span < 1 {
			return nil, fmt.Errorf("-reachspan must be positive, got %d", span)
		}
		return func() (int32, int32) {
			src := int(uniform())
			dst := src + rng.Intn(2*span+1) - span
			if dst < 1 {
				dst = 1
			}
			if dst > nodes {
				dst = nodes
			}
			return int32(src), int32(dst)
		}, nil
	default:
		return nil, fmt.Errorf("unknown -reachdist %q (have uniform, zipf, local)", dist)
	}
}

// buildShapes pre-builds the /v1/query bodies for one graph; a non-empty
// graph name is carried in every body so a multi-graph server routes the
// query to the right tenant.
func buildShapes(algs, graph string, nodes, maxSources, pool int, m int, seed int64) [][]byte {
	rng := rand.New(rand.NewSource(seed + 1))
	var algList []string
	for _, a := range bytes.Split([]byte(algs), []byte(",")) {
		if s := string(bytes.TrimSpace(a)); s != "" {
			algList = append(algList, s)
		}
	}
	if len(algList) == 0 {
		algList = []string{"srch"}
	}
	if pool < 1 {
		pool = 1
	}
	shapes := make([][]byte, 0, pool)
	for i := 0; i < pool; i++ {
		ns := rng.Intn(maxSources) + 1
		sources := make([]int32, ns)
		for j := range sources {
			sources[j] = int32(rng.Intn(nodes) + 1)
		}
		req := map[string]any{
			"algorithm": algList[i%len(algList)],
			"sources":   sources,
		}
		if graph != "" {
			req["graph"] = graph
		}
		if m > 0 {
			req["buffer_pages"] = m
		}
		b, err := json.Marshal(req)
		if err != nil {
			fatal(err)
		}
		shapes = append(shapes, b)
	}
	return shapes
}

// makeArcBatch builds one POST /v1/arc body of random insert/delete ops
// over the server's node space. Deletes pick arbitrary endpoints — a miss
// is a no-op server-side, which keeps the stream valid without tracking
// the live arc set client-side.
func makeArcBatch(rng *rand.Rand, nodes, ops, deletePct int) []byte {
	if ops < 1 {
		ops = 1
	}
	type arcOp struct {
		Op   string `json:"op"`
		From int32  `json:"from"`
		To   int32  `json:"to"`
	}
	batch := struct {
		Ops []arcOp `json:"ops"`
	}{Ops: make([]arcOp, ops)}
	for i := range batch.Ops {
		op := "insert"
		if rng.Intn(100) < deletePct {
			op = "delete"
		}
		batch.Ops[i] = arcOp{Op: op, From: int32(rng.Intn(nodes) + 1), To: int32(rng.Intn(nodes) + 1)}
	}
	b, err := json.Marshal(batch)
	if err != nil {
		fatal(err)
	}
	return b
}

// outcome classifies one request.
type outcome struct {
	latency time.Duration
	status  int
	retries int // retry attempts consumed before this outcome
	err     error
}

// retryPolicy retries transient failures (503 + transport errors, per the
// server's error contract) with exponential backoff; it is set from flags
// before any traffic is generated. See internal/httpretry.
var retryPolicy httpretry.Policy

func doGet(c *http.Client, url string) outcome {
	var o outcome
	_, retries, _ := retryPolicy.Do(context.Background(), func(int) (int, error) {
		start := time.Now()
		resp, err := c.Get(url)
		o = finish(start, resp, err)
		return o.status, o.err
	})
	o.retries = retries
	return o
}

func doPost(c *http.Client, url string, body []byte) outcome {
	var o outcome
	_, retries, _ := retryPolicy.Do(context.Background(), func(int) (int, error) {
		start := time.Now()
		resp, err := c.Post(url, "application/json", bytes.NewReader(body))
		o = finish(start, resp, err)
		return o.status, o.err
	})
	o.retries = retries
	return o
}

func finish(start time.Time, resp *http.Response, err error) outcome {
	o := outcome{err: err}
	if resp != nil {
		o.status = resp.StatusCode
		_, _ = io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	o.latency = time.Since(start)
	return o
}

type collector struct {
	mu        sync.Mutex
	latencies []time.Duration
	ok        atomic.Int64
	rejected  atomic.Int64 // 429: admission control
	timeouts  atomic.Int64 // 504: deadline expiry
	faults    atomic.Int64 // 503 after retries exhausted: storage faults
	retried   atomic.Int64 // retry attempts consumed (successful or not)
	errors    atomic.Int64 // transport errors + unexpected statuses
}

func newCollector() *collector { return &collector{} }

func (c *collector) observe(o outcome) {
	c.retried.Add(int64(o.retries))
	switch {
	case o.err != nil:
		c.errors.Add(1)
		return
	case o.status == http.StatusOK:
		c.ok.Add(1)
	case o.status == http.StatusTooManyRequests:
		c.rejected.Add(1)
	case o.status == http.StatusGatewayTimeout:
		c.timeouts.Add(1)
	case o.status == http.StatusServiceUnavailable:
		c.faults.Add(1)
		return
	default:
		c.errors.Add(1)
		return
	}
	c.mu.Lock()
	c.latencies = append(c.latencies, o.latency)
	c.mu.Unlock()
}

func (c *collector) report(d time.Duration, dropped int64) {
	c.mu.Lock()
	lats := append([]time.Duration(nil), c.latencies...)
	c.mu.Unlock()
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	total := c.ok.Load() + c.rejected.Load() + c.timeouts.Load() + c.faults.Load() + c.errors.Load()
	fmt.Printf("\nrequests      %d (%.1f/s achieved)\n", total, float64(total)/d.Seconds())
	fmt.Printf("ok            %d\n", c.ok.Load())
	fmt.Printf("rejected 429  %d\n", c.rejected.Load())
	fmt.Printf("timeout 504   %d\n", c.timeouts.Load())
	fmt.Printf("faulted 503   %d (after retries)\n", c.faults.Load())
	fmt.Printf("retried       %d attempts\n", c.retried.Load())
	fmt.Printf("errors        %d\n", c.errors.Load())
	fmt.Printf("dropped       %d (local inflight cap)\n", dropped)
	if len(lats) > 0 {
		q := func(p float64) time.Duration { return lats[int(p*float64(len(lats)-1))] }
		fmt.Printf("latency       p50 %s  p90 %s  p99 %s  max %s\n",
			q(0.50).Round(time.Microsecond), q(0.90).Round(time.Microsecond),
			q(0.99).Round(time.Microsecond), lats[len(lats)-1].Round(time.Microsecond))
	}
}

// fetchGraphs reads the per-tenant graphs block from a multi-graph
// server's /healthz (name -> node count).
func fetchGraphs(c *http.Client, addr string) (map[string]int, error) {
	resp, err := c.Get(addr + "/healthz")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var h struct {
		Graphs map[string]struct {
			Nodes int `json:"nodes"`
		} `json:"graphs"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		return nil, err
	}
	if len(h.Graphs) == 0 {
		return nil, fmt.Errorf("server reports no named graphs (-graph needs tcserve -graphs or a multi-graph fleet)")
	}
	out := make(map[string]int, len(h.Graphs))
	for name, g := range h.Graphs {
		out[name] = g.Nodes
	}
	return out, nil
}

// summary prints the end-of-run line for one named graph's slice of the
// load, so a multi-tenant run shows how the mix split per tenant.
func (c *collector) summary(name string) {
	c.mu.Lock()
	lats := append([]time.Duration(nil), c.latencies...)
	c.mu.Unlock()
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	line := fmt.Sprintf("graph %-10s ok %d, rejected %d, errors %d",
		name, c.ok.Load(), c.rejected.Load(), c.errors.Load())
	if len(lats) > 0 {
		q := func(p float64) time.Duration { return lats[int(p*float64(len(lats)-1))] }
		line += fmt.Sprintf(", p50 %s, p99 %s",
			q(0.50).Round(time.Microsecond), q(0.99).Round(time.Microsecond))
	}
	fmt.Println(line)
}

func fetchNodes(c *http.Client, addr string) (int, error) {
	resp, err := c.Get(addr + "/healthz")
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	var h struct {
		Nodes int `json:"nodes"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		return 0, err
	}
	if h.Nodes < 1 {
		return 0, fmt.Errorf("server reports %d nodes", h.Nodes)
	}
	return h.Nodes, nil
}

func printServerMetrics(c *http.Client, addr string) {
	resp, err := c.Get(addr + "/metrics?format=json")
	if err != nil {
		return
	}
	defer resp.Body.Close()
	var m struct {
		QPS          float64 `json:"qps"`
		CacheHits    int64   `json:"cache_hits"`
		CacheMisses  int64   `json:"cache_misses"`
		CacheHitRate float64 `json:"cache_hit_rate"`
		Deduplicated int64   `json:"deduplicated"`
		PagesServed  int64   `json:"pages_served"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		return
	}
	fmt.Printf("server        qps %.1f, cache %d hits / %d misses (%.0f%% hit rate), dedup %d, pages served %d\n",
		m.QPS, m.CacheHits, m.CacheMisses, 100*m.CacheHitRate, m.Deduplicated, m.PagesServed)
}

// printServerIndex reports which reachability index served the run —
// builder name, chain count and generation from /healthz — so fleet
// experiments can confirm every replica ran the intended decomposition.
// Servers without a loaded index (or routers that do not expose one) are
// silently skipped.
func printServerIndex(c *http.Client, addr string) {
	resp, err := c.Get(addr + "/healthz")
	if err != nil {
		return
	}
	defer resp.Body.Close()
	var h struct {
		Index *struct {
			Generation int64  `json:"generation"`
			Chains     int    `json:"chains"`
			Builder    string `json:"builder"`
			Stale      bool   `json:"stale"`
		} `json:"index"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil || h.Index == nil {
		return
	}
	fmt.Printf("index         %s decomposition, k=%d chains, generation %d, stale %t\n",
		h.Index.Builder, h.Index.Chains, h.Index.Generation, h.Index.Stale)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tcload:", err)
	os.Exit(1)
}
