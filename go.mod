module tcstudy

go 1.22
