package tcstudy

import (
	"sort"
	"testing"
)

func sorted(vals []int32) []int32 {
	out := append([]int32(nil), vals...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func TestQuickstartPath(t *testing.T) {
	g, err := Generate(200, 4, 30, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !g.IsAcyclic() {
		t.Fatal("generated graph not acyclic")
	}
	db := NewDB(g)
	res, err := db.FullClosure(BTC, Config{BufferPages: 10})
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.TotalIO() <= 0 {
		t.Fatal("no I/O measured")
	}
	var total int
	for _, s := range res.Successors {
		total += len(s)
	}
	st, err := g.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if int64(total) != st.ClosureSize {
		t.Fatalf("closure size %d != stats %d", total, st.ClosureSize)
	}
}

func TestSuccessorsAcrossAlgorithms(t *testing.T) {
	g, err := Generate(150, 3, 25, 2)
	if err != nil {
		t.Fatal(err)
	}
	db := NewDB(g)
	sources := SourceSet(150, 4, 7)
	var want map[int32][]int32
	for _, alg := range Algorithms() {
		res, err := db.Successors(alg, sources, Config{BufferPages: 8, ILIMIT: 0.2})
		if err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
		got := map[int32][]int32{}
		for k, v := range res.Successors {
			vv := append([]int32(nil), v...)
			sort.Slice(vv, func(i, j int) bool { return vv[i] < vv[j] })
			got[k] = vv
		}
		if want == nil {
			want = got
			continue
		}
		for k, w := range want {
			gv := got[k]
			if len(gv) != len(w) {
				t.Fatalf("%s: node %d: %d successors, want %d", alg, k, len(gv), len(w))
			}
			for i := range w {
				if gv[i] != w[i] {
					t.Fatalf("%s: node %d differs", alg, k)
				}
			}
		}
	}
}

func TestRunRejectsCyclicGraph(t *testing.T) {
	g := NewGraph(3, []Arc{{From: 1, To: 2}, {From: 2, To: 3}, {From: 3, To: 1}})
	if g.IsAcyclic() {
		t.Fatal("cycle not detected")
	}
	db := NewDB(g)
	if _, err := db.Run(BTC, Query{}, Config{BufferPages: 8}); err == nil {
		t.Fatal("cyclic graph accepted by Run")
	}
}

func TestClosureOfCyclic(t *testing.T) {
	// 1 <-> 2 -> 3, 3 -> 4 <-> 5.
	g := NewGraph(5, []Arc{
		{From: 1, To: 2}, {From: 2, To: 1}, {From: 2, To: 3},
		{From: 3, To: 4}, {From: 4, To: 5}, {From: 5, To: 4},
	})
	cc, err := ClosureOfCyclic(g, BTC, Config{BufferPages: 8})
	if err != nil {
		t.Fatal(err)
	}
	if cc.Components != 3 {
		t.Fatalf("components = %d, want 3", cc.Components)
	}
	want := map[int32][]int32{
		1: {1, 2, 3, 4, 5},
		2: {1, 2, 3, 4, 5},
		3: {4, 5},
		4: {4, 5},
		5: {4, 5},
	}
	for v, w := range want {
		got := append([]int32(nil), cc.Successors[v]...)
		sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
		if len(got) != len(w) {
			t.Fatalf("successors of %d = %v, want %v", v, got, w)
		}
		for i := range w {
			if got[i] != w[i] {
				t.Fatalf("successors of %d = %v, want %v", v, got, w)
			}
		}
	}
}

func TestAdvise(t *testing.T) {
	narrow := GraphStats{W: 50}
	wide := GraphStats{W: 500}
	n := 2000
	if got := Advise(narrow, n, 0); got != BTC {
		t.Fatalf("full closure advice = %s, want btc", got)
	}
	if got := Advise(narrow, n, 2); got != SRCH {
		t.Fatalf("2-source advice = %s, want srch", got)
	}
	if got := Advise(narrow, n, 50); got != JKB2 {
		t.Fatalf("narrow 50-source advice = %s, want jkb2", got)
	}
	if got := Advise(wide, n, 50); got != BTC {
		t.Fatalf("wide 50-source advice = %s, want btc", got)
	}
	if got := Advise(narrow, n, 1500); got != BTC {
		t.Fatalf("low-selectivity advice = %s, want btc", got)
	}
}

func TestAdviseAgreesWithMeasurement(t *testing.T) {
	// On a narrow deep graph with moderate selectivity, the advisor picks
	// JKB2 and JKB2 must indeed beat BTC on measured I/O (Table 4's
	// narrow end).
	g, err := Generate(1000, 5, 10, 3) // G4-like: narrow
	if err != nil {
		t.Fatal(err)
	}
	st, err := g.Stats()
	if err != nil {
		t.Fatal(err)
	}
	nSources := 30
	alg := Advise(st, g.N(), nSources)
	if alg != JKB2 {
		t.Skipf("advisor picked %s (W=%.0f); width threshold not hit on this instance", alg, st.W)
	}
	db := NewDB(g)
	sources := SourceSet(g.N(), nSources, 5)
	rj, err := db.Successors(JKB2, sources, Config{BufferPages: 10})
	if err != nil {
		t.Fatal(err)
	}
	rb, err := db.Successors(BTC, sources, Config{BufferPages: 10})
	if err != nil {
		t.Fatal(err)
	}
	if rj.Metrics.TotalIO() >= rb.Metrics.TotalIO() {
		t.Fatalf("advisor chose JKB2 but it cost %d vs BTC %d",
			rj.Metrics.TotalIO(), rb.Metrics.TotalIO())
	}
}

func TestPredecessors(t *testing.T) {
	g := NewGraph(5, []Arc{
		{From: 1, To: 3}, {From: 2, To: 3}, {From: 3, To: 4}, {From: 4, To: 5},
	})
	db := NewDB(g)
	res, err := db.Predecessors(BTC, []int32{4}, Config{BufferPages: 8})
	if err != nil {
		t.Fatal(err)
	}
	got := sorted(res.Successors[4])
	want := []int32{1, 2, 3}
	if len(got) != len(want) {
		t.Fatalf("predecessors of 4 = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("predecessors of 4 = %v, want %v", got, want)
		}
	}
	// The reversed database is cached and reused.
	if db.reversed == nil {
		t.Fatal("reversed DB not cached")
	}
	res2, err := db.Predecessors(SRCH, []int32{5}, Config{BufferPages: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(res2.Successors[5]) != 4 {
		t.Fatalf("predecessors of 5 = %v", res2.Successors[5])
	}
}

func TestPredecessorsAgreeWithSuccessors(t *testing.T) {
	g, err := Generate(120, 3, 30, 9)
	if err != nil {
		t.Fatal(err)
	}
	db := NewDB(g)
	full, err := db.FullClosure(BTC, Config{BufferPages: 10})
	if err != nil {
		t.Fatal(err)
	}
	// (u, v) in closure  <=>  u in predecessors(v).
	target := int32(60)
	pres, err := db.Predecessors(BTC, []int32{target}, Config{BufferPages: 10})
	if err != nil {
		t.Fatal(err)
	}
	predSet := map[int32]bool{}
	for _, p := range pres.Successors[target] {
		predSet[p] = true
	}
	for u := int32(1); u <= int32(g.N()); u++ {
		reaches := false
		for _, v := range full.Successors[u] {
			if v == target {
				reaches = true
				break
			}
		}
		if reaches != predSet[u] {
			t.Fatalf("disagreement at u=%d: forward says %v, backward says %v",
				u, reaches, predSet[u])
		}
	}
}

func TestSuccessorsOfCyclic(t *testing.T) {
	// 1 <-> 2 -> 3 -> 4 <-> 5, 6 isolated.
	g := NewGraph(6, []Arc{
		{From: 1, To: 2}, {From: 2, To: 1}, {From: 2, To: 3},
		{From: 3, To: 4}, {From: 4, To: 5}, {From: 5, To: 4},
	})
	out, m, err := SuccessorsOfCyclic(g, []int32{1, 2, 6}, BTC, Config{BufferPages: 8})
	if err != nil {
		t.Fatal(err)
	}
	if m.TotalIO() <= 0 {
		t.Fatal("no I/O recorded")
	}
	for _, s := range []int32{1, 2} {
		got := sorted(out[s])
		want := []int32{1, 2, 3, 4, 5}
		if len(got) != len(want) {
			t.Fatalf("reach(%d) = %v", s, got)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("reach(%d) = %v", s, got)
			}
		}
	}
	if len(out[6]) != 0 {
		t.Fatalf("isolated node reaches %v", out[6])
	}
}

func TestSuccessorsOfCyclicMatchesFull(t *testing.T) {
	g := NewGraph(7, []Arc{
		{From: 1, To: 2}, {From: 2, To: 3}, {From: 3, To: 1},
		{From: 3, To: 4}, {From: 4, To: 5}, {From: 5, To: 6}, {From: 6, To: 4},
		{From: 6, To: 7},
	})
	full, err := ClosureOfCyclic(g, BTC, Config{BufferPages: 8})
	if err != nil {
		t.Fatal(err)
	}
	part, _, err := SuccessorsOfCyclic(g, []int32{2, 5}, SRCH, Config{BufferPages: 8})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []int32{2, 5} {
		a := sorted(full.Successors[s])
		b := sorted(part[s])
		if len(a) != len(b) {
			t.Fatalf("node %d: partial %v vs full %v", s, b, a)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("node %d: partial %v vs full %v", s, b, a)
			}
		}
	}
}

func TestDBSaveOpenRoundTrip(t *testing.T) {
	g, err := Generate(120, 3, 25, 4)
	if err != nil {
		t.Fatal(err)
	}
	db := NewDB(g)
	dir := t.TempDir()
	if err := db.Save(dir); err != nil {
		t.Fatal(err)
	}
	re, err := OpenDB(dir)
	if err != nil {
		t.Fatal(err)
	}
	if re.Graph().N() != g.N() || re.Graph().NumArcs() != g.NumArcs() {
		t.Fatalf("restored graph %d/%d, want %d/%d",
			re.Graph().N(), re.Graph().NumArcs(), g.N(), g.NumArcs())
	}
	a, err := db.FullClosure(BTC, Config{BufferPages: 10})
	if err != nil {
		t.Fatal(err)
	}
	b, err := re.FullClosure(BTC, Config{BufferPages: 10})
	if err != nil {
		t.Fatal(err)
	}
	if a.Metrics.TotalIO() != b.Metrics.TotalIO() {
		t.Fatalf("I/O differs after reopen: %d vs %d",
			a.Metrics.TotalIO(), b.Metrics.TotalIO())
	}
	for k, v := range a.Successors {
		if len(b.Successors[k]) != len(v) {
			t.Fatalf("successors of %d differ after reopen", k)
		}
	}
	// Predecessors work on a restored DB (needs the reconstructed graph).
	if _, err := re.Predecessors(BTC, []int32{50}, Config{BufferPages: 8}); err != nil {
		t.Fatal(err)
	}
}

func TestSessionFacade(t *testing.T) {
	g, err := Generate(200, 4, 40, 6)
	if err != nil {
		t.Fatal(err)
	}
	db := NewDB(g)
	s, err := db.NewSession(Config{BufferPages: 30})
	if err != nil {
		t.Fatal(err)
	}
	cold, err := s.Successors(SRCH, []int32{3, 9})
	if err != nil {
		t.Fatal(err)
	}
	warm, err := s.Successors(SRCH, []int32{3, 9})
	if err != nil {
		t.Fatal(err)
	}
	if warm.Metrics.TotalIO() >= cold.Metrics.TotalIO() {
		t.Fatalf("warm I/O %d not below cold %d",
			warm.Metrics.TotalIO(), cold.Metrics.TotalIO())
	}
	if _, err := s.FullClosure(BTC); err != nil {
		t.Fatal(err)
	}
}

func TestMagicGraphStatsInMetrics(t *testing.T) {
	g, err := Generate(300, 4, 50, 8)
	if err != nil {
		t.Fatal(err)
	}
	db := NewDB(g)
	res, err := db.FullClosure(BTC, Config{BufferPages: 10})
	if err != nil {
		t.Fatal(err)
	}
	st, err := g.Stats()
	if err != nil {
		t.Fatal(err)
	}
	m := res.Metrics
	// For a full closure the magic graph is the whole graph: the free
	// rectangle model must match the analytic one.
	if m.MagicNodes != int64(g.N()) || m.MagicArcs != int64(g.NumArcs()) {
		t.Fatalf("magic graph %d/%d, want %d/%d", m.MagicNodes, m.MagicArcs, g.N(), g.NumArcs())
	}
	if diff := m.MagicH - st.H; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("MagicH %v != analytic H %v", m.MagicH, st.H)
	}
	if diff := m.MagicW - st.W; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("MagicW %v != analytic W %v", m.MagicW, st.W)
	}
	// A selection sees a smaller magic graph.
	sel, err := db.Successors(BTC, []int32{250}, Config{BufferPages: 10})
	if err != nil {
		t.Fatal(err)
	}
	if sel.Metrics.MagicNodes >= m.MagicNodes {
		t.Fatalf("selection magic graph %d nodes >= full graph %d",
			sel.Metrics.MagicNodes, m.MagicNodes)
	}
	// SRCH skips restructuring: no magic stats.
	srch, err := db.Successors(SRCH, []int32{250}, Config{BufferPages: 10})
	if err != nil {
		t.Fatal(err)
	}
	if srch.Metrics.MagicNodes != 0 {
		t.Fatalf("SRCH reported magic stats: %d", srch.Metrics.MagicNodes)
	}
}

func TestWeightedDBFacade(t *testing.T) {
	g := NewGraph(4, []Arc{
		{From: 1, To: 2}, {From: 1, To: 3}, {From: 2, To: 4}, {From: 3, To: 4},
	})
	db, err := NewWeightedDB(g, func(a Arc) int32 { return a.From + a.To })
	if err != nil {
		t.Fatal(err)
	}
	if !db.Weighted() {
		t.Fatal("Weighted() = false")
	}
	res, err := db.Paths(MinWeight, []int32{1}, Config{BufferPages: 8})
	if err != nil {
		t.Fatal(err)
	}
	// 1->2->4 costs 3+6=9; 1->3->4 costs 4+7=11.
	if res.Values[1][4] != 9 {
		t.Fatalf("minweight(1,4) = %d, want 9", res.Values[1][4])
	}
	// Reachability still works on the weighted DB.
	r2, err := db.FullClosure(BTC, Config{BufferPages: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(r2.Successors[1]) != 3 {
		t.Fatalf("successors of 1 = %v", r2.Successors[1])
	}
	// Unweighted DBs refuse weighted aggregates.
	plain := NewDB(g)
	if _, err := plain.Paths(MinWeight, nil, Config{BufferPages: 8}); err == nil {
		t.Fatal("MinWeight accepted on unweighted DB")
	}
}

func TestRunConcurrentFacade(t *testing.T) {
	g, err := Generate(200, 4, 30, 12)
	if err != nil {
		t.Fatal(err)
	}
	db := NewDB(g)
	reqs := []Request{
		{Alg: BTC, Query: Query{}, Cfg: Config{BufferPages: 8}},
		{Alg: SRCH, Query: Query{Sources: []int32{5}}, Cfg: Config{BufferPages: 8}},
		{Alg: JKB2, Query: Query{Sources: []int32{5, 9}}, Cfg: Config{BufferPages: 8}},
	}
	resps := db.RunConcurrent(reqs)
	for i, r := range resps {
		if r.Err != nil {
			t.Fatalf("request %d: %v", i, r.Err)
		}
	}
	// SRCH and JKB2 agree on node 5's successors.
	if len(resps[1].Result.Successors[5]) != len(resps[2].Result.Successors[5]) {
		t.Fatal("concurrent algorithms disagree")
	}
	// A cyclic DB fails every request, cleanly.
	cyc := NewDB(NewGraph(2, []Arc{{From: 1, To: 2}, {From: 2, To: 1}}))
	for _, r := range cyc.RunConcurrent(reqs[:1]) {
		if r.Err == nil {
			t.Fatal("cyclic batch succeeded")
		}
	}
}

func TestPlanFacade(t *testing.T) {
	g, err := Generate(500, 5, 10, 2) // narrow, deep
	if err != nil {
		t.Fatal(err)
	}
	db := NewDB(g)
	ests, err := db.Plan(3, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(ests) < 6 {
		t.Fatalf("only %d estimates", len(ests))
	}
	// A 500-node core fits the bit-matrix threshold outright, and its one
	// relation scan undercuts even a selective per-source search.
	if ests[0].Alg != BITM {
		t.Fatalf("3-source plan chose %s, expected bitmatrix on a core that fits the kernel", ests[0].Alg)
	}
	// SRCH must still lead the list-based candidates on a selective query.
	for _, e := range ests[1:] {
		if e.Alg == SRCH {
			break
		}
		if e.Alg != BITM {
			t.Fatalf("3-source plan ranks %s above srch", e.Alg)
		}
	}
	// The planner's choice must actually be competitive when measured.
	res, err := db.Successors(ests[0].Alg, SourceSet(500, 3, 1), Config{BufferPages: 10})
	if err != nil {
		t.Fatal(err)
	}
	resBTC, err := db.Successors(BTC, SourceSet(500, 3, 1), Config{BufferPages: 10})
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.TotalIO() > resBTC.Metrics.TotalIO() {
		t.Fatalf("planned algorithm cost %d, default BTC %d",
			res.Metrics.TotalIO(), resBTC.Metrics.TotalIO())
	}
	// Cyclic DBs refuse planning.
	cyc := NewDB(NewGraph(2, []Arc{{From: 1, To: 2}, {From: 2, To: 1}}))
	if _, err := cyc.Plan(1, 10); err == nil {
		t.Fatal("cyclic plan accepted")
	}
}

func TestSchmitzFacadeOnCyclicGraph(t *testing.T) {
	g := NewGraph(4, []Arc{
		{From: 1, To: 2}, {From: 2, To: 1}, {From: 2, To: 3}, {From: 3, To: 4},
	})
	db := NewDB(g)
	// Other algorithms refuse the cycle; SCHMITZ handles it.
	if _, err := db.Run(BTC, Query{}, Config{BufferPages: 8}); err == nil {
		t.Fatal("BTC accepted a cyclic graph")
	}
	res, err := db.Run(SCHMITZ, Query{}, Config{BufferPages: 8})
	if err != nil {
		t.Fatal(err)
	}
	got := sorted(res.Successors[1])
	want := []int32{1, 2, 3, 4}
	if len(got) != len(want) {
		t.Fatalf("successors of 1 = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("successors of 1 = %v, want %v", got, want)
		}
	}
	// And it agrees with the condensation pipeline.
	cc, err := ClosureOfCyclic(g, BTC, Config{BufferPages: 8})
	if err != nil {
		t.Fatal(err)
	}
	for x := int32(1); x <= 4; x++ {
		if len(cc.Successors[x]) != len(res.Successors[x]) {
			t.Fatalf("schmitz and condensation disagree at node %d", x)
		}
	}
}
