package tcstudy_test

// Documentation link checking: every relative markdown link in README and
// docs/ must resolve to a file in the repository, and every file in docs/
// must be reachable from the README — a new doc that nobody links to is a
// doc nobody finds. This is the test half of the CI docs job; the other
// half (gofmt, go vet) runs as commands.

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// mdLink matches inline markdown links [text](target). Reference-style
// links are not used in this repo.
var mdLink = regexp.MustCompile(`\]\(([^)\s]+)\)`)

func markdownFiles(t *testing.T) []string {
	t.Helper()
	files, err := filepath.Glob("*.md")
	if err != nil {
		t.Fatal(err)
	}
	docs, err := filepath.Glob(filepath.Join("docs", "*.md"))
	if err != nil {
		t.Fatal(err)
	}
	return append(files, docs...)
}

func TestMarkdownLinksResolve(t *testing.T) {
	for _, file := range markdownFiles(t) {
		raw, err := os.ReadFile(file)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range mdLink.FindAllStringSubmatch(string(raw), -1) {
			target := m[1]
			switch {
			case strings.HasPrefix(target, "http://"),
				strings.HasPrefix(target, "https://"),
				strings.HasPrefix(target, "mailto:"),
				strings.HasPrefix(target, "#"):
				continue // external links and same-page anchors: not checked
			}
			target = strings.SplitN(target, "#", 2)[0] // strip anchors
			resolved := filepath.Join(filepath.Dir(file), target)
			if _, err := os.Stat(resolved); err != nil {
				t.Errorf("%s: broken link %q (resolved %s)", file, m[1], resolved)
			}
		}
	}
}

// TestDocsReachableFromReadme keeps the README's doc list complete: every
// file under docs/ must be linked (or at least mentioned by name) in
// README.md.
func TestDocsReachableFromReadme(t *testing.T) {
	readme, err := os.ReadFile("README.md")
	if err != nil {
		t.Fatal(err)
	}
	docs, err := filepath.Glob(filepath.Join("docs", "*.md"))
	if err != nil {
		t.Fatal(err)
	}
	if len(docs) == 0 {
		t.Fatal("no docs found")
	}
	for _, d := range docs {
		rel := filepath.ToSlash(d)
		if !strings.Contains(string(readme), rel) {
			t.Errorf("README.md does not reference %s", rel)
		}
	}
}
