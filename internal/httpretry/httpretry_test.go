package httpretry

import (
	"context"
	"errors"
	"net/http"
	"testing"
	"time"
)

func TestRetryableClassification(t *testing.T) {
	cases := []struct {
		status int
		err    error
		want   bool
	}{
		{http.StatusOK, nil, false},
		{http.StatusBadRequest, nil, false},
		{http.StatusTooManyRequests, nil, false}, // overload: backoff would defeat admission control
		{http.StatusGatewayTimeout, nil, false},  // deadline: the work is too slow, not faulty
		{http.StatusServiceUnavailable, nil, true},
		{0, errors.New("connection refused"), true},
	}
	for _, c := range cases {
		if got := Retryable(c.status, c.err); got != c.want {
			t.Errorf("Retryable(%d, %v) = %v, want %v", c.status, c.err, got, c.want)
		}
	}
}

func TestDoRetriesTransientThenSucceeds(t *testing.T) {
	p := Policy{Max: 3, Backoff: time.Microsecond}
	var calls int
	status, retries, err := p.Do(context.Background(), func(try int) (int, error) {
		if try != calls {
			t.Errorf("attempt %d reported try %d", calls, try)
		}
		calls++
		if calls < 3 {
			return http.StatusServiceUnavailable, nil
		}
		return http.StatusOK, nil
	})
	if err != nil || status != http.StatusOK {
		t.Fatalf("Do = (%d, %v), want (200, nil)", status, err)
	}
	if calls != 3 || retries != 2 {
		t.Fatalf("calls=%d retries=%d, want 3 attempts / 2 retries", calls, retries)
	}
}

func TestDoExhaustsBudget(t *testing.T) {
	p := Policy{Max: 2, Backoff: time.Microsecond}
	var calls int
	status, retries, err := p.Do(context.Background(), func(int) (int, error) {
		calls++
		return http.StatusServiceUnavailable, nil
	})
	if status != http.StatusServiceUnavailable || err != nil {
		t.Fatalf("Do = (%d, %v), want 503 after exhaustion", status, err)
	}
	if calls != 3 || retries != 2 {
		t.Fatalf("calls=%d retries=%d, want 3/2", calls, retries)
	}
}

func TestDoDoesNotRetryNonTransient(t *testing.T) {
	for _, status := range []int{http.StatusOK, http.StatusTooManyRequests, http.StatusGatewayTimeout, http.StatusBadRequest} {
		p := Policy{Max: 5, Backoff: time.Microsecond}
		var calls int
		got, retries, _ := p.Do(context.Background(), func(int) (int, error) {
			calls++
			return status, nil
		})
		if got != status || calls != 1 || retries != 0 {
			t.Errorf("status %d: got (%d, calls=%d, retries=%d), want single attempt", status, got, calls, retries)
		}
	}
}

func TestDoZeroPolicyNeverRetries(t *testing.T) {
	var calls int
	var p Policy
	_, retries, err := p.Do(context.Background(), func(int) (int, error) {
		calls++
		return 0, errors.New("boom")
	})
	if calls != 1 || retries != 0 || err == nil {
		t.Fatalf("zero policy: calls=%d retries=%d err=%v", calls, retries, err)
	}
}

func TestDoStopsOnContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	p := Policy{Max: 10, Backoff: time.Hour} // would block forever without ctx
	var calls int
	start := time.Now()
	status, retries, err := p.Do(ctx, func(int) (int, error) {
		calls++
		cancel() // cancel while "in flight"; the backoff sleep must abort
		return http.StatusServiceUnavailable, nil
	})
	if time.Since(start) > 10*time.Second {
		t.Fatal("Do slept through context cancellation")
	}
	if calls != 1 || retries != 0 {
		t.Fatalf("calls=%d retries=%d, want the single pre-cancel attempt", calls, retries)
	}
	if status != http.StatusServiceUnavailable || err != nil {
		t.Fatalf("Do = (%d, %v), want the last real outcome", status, err)
	}
}

func TestDoBackoffDoubles(t *testing.T) {
	// Observe the sleeps indirectly: with a 5ms initial backoff and two
	// retries the total sleep is >= 5+10 ms.
	p := Policy{Max: 2, Backoff: 5 * time.Millisecond}
	start := time.Now()
	p.Do(context.Background(), func(int) (int, error) {
		return http.StatusServiceUnavailable, nil
	})
	if elapsed := time.Since(start); elapsed < 15*time.Millisecond {
		t.Fatalf("elapsed %v, want >= 15ms of doubled backoff", elapsed)
	}
}
