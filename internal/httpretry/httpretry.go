// Package httpretry is the shared retry policy for HTTP clients of the
// serving stack (tcload, the tcrouter scatter-gather tier). It retries
// exactly the outcomes the server's error contract declares transient —
// HTTP 503 (a storage fault under the engine, gone on the next attempt)
// and transport errors — with exponential backoff. 429 and 504 are never
// retried: they are the server's overload and deadline signals, and
// hammering them defeats admission control.
package httpretry

import (
	"context"
	"net/http"
	"time"
)

// Policy is one retry budget: up to Max retries after the first attempt,
// sleeping Backoff before the first retry and doubling per attempt. The
// zero value never retries.
type Policy struct {
	Max     int
	Backoff time.Duration
}

// Retryable reports whether an attempt's outcome is transient under the
// server's error contract: any transport error, or HTTP 503.
func Retryable(status int, err error) bool {
	return err != nil || status == http.StatusServiceUnavailable
}

// Do runs attempt at least once and retries transient outcomes until the
// budget is exhausted or ctx is done. attempt receives the zero-based
// attempt number and returns the HTTP status (0 on a transport error) and
// error of that attempt. Do returns the last attempt's outcome plus the
// number of retries consumed. Backoff sleeps respect ctx: cancellation
// during a sleep returns the previous outcome immediately, never a fresh
// attempt against a dead context.
func (p Policy) Do(ctx context.Context, attempt func(try int) (status int, err error)) (status, retries int, err error) {
	status, err = attempt(0)
	delay := p.Backoff
	for try := 1; try <= p.Max && Retryable(status, err); try++ {
		if !sleep(ctx, delay) {
			return status, retries, err
		}
		delay *= 2
		status, err = attempt(try)
		retries++
	}
	return status, retries, err
}

// sleep waits for d or until ctx is done, reporting whether the full wait
// elapsed. A non-positive d returns true immediately (still honouring a
// context that is already done).
func sleep(ctx context.Context, d time.Duration) bool {
	if d <= 0 {
		select {
		case <-ctx.Done():
			return false
		default:
			return true
		}
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}
