package buffer

import (
	"errors"
	"testing"

	"tcstudy/internal/pagedisk"
)

func newPool(t *testing.T, size int, policy string) (*Pool, *pagedisk.Disk, pagedisk.FileID) {
	t.Helper()
	d := pagedisk.New()
	f := d.CreateFile("data")
	pol, err := NewPolicy(policy, size)
	if err != nil {
		t.Fatal(err)
	}
	return New(d, size, pol), d, f
}

// fill writes n pages whose first byte is the page number, bypassing the pool.
func fill(t *testing.T, d *pagedisk.Disk, f pagedisk.FileID, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		p, _ := d.Allocate(f)
		var pg pagedisk.Page
		pg[0] = byte(i)
		if err := d.Write(f, p, &pg); err != nil {
			t.Fatal(err)
		}
	}
	d.ResetStats()
}

func TestGetHitAndMiss(t *testing.T) {
	p, d, f := newPool(t, 4, "lru")
	fill(t, d, f, 2)

	h, err := p.Get(f, 0)
	if err != nil {
		t.Fatal(err)
	}
	if h.Data()[0] != 0 {
		t.Fatalf("page 0 contents = %d", h.Data()[0])
	}
	p.Unpin(&h, false)

	h2, err := p.Get(f, 0) // hit
	if err != nil {
		t.Fatal(err)
	}
	p.Unpin(&h2, false)

	st := p.Stats()
	if st.Misses != 1 || st.Hits != 1 {
		t.Fatalf("stats = %+v, want 1 miss 1 hit", st)
	}
	if got := d.Stats().Reads; got != 1 {
		t.Fatalf("disk reads = %d, want 1", got)
	}
}

func TestEvictionWritesDirtyPages(t *testing.T) {
	p, d, f := newPool(t, 1, "lru")
	fill(t, d, f, 2)

	h, err := p.Get(f, 0)
	if err != nil {
		t.Fatal(err)
	}
	h.Data()[1] = 42
	p.Unpin(&h, true)

	// Bringing in page 1 must evict dirty page 0 and write it back.
	h1, err := p.Get(f, 1)
	if err != nil {
		t.Fatal(err)
	}
	p.Unpin(&h1, false)

	if d.Stats().Writes != 1 {
		t.Fatalf("disk writes = %d, want 1 (dirty eviction)", d.Stats().Writes)
	}
	var pg pagedisk.Page
	if err := d.Read(f, 0, &pg); err != nil {
		t.Fatal(err)
	}
	if pg[1] != 42 {
		t.Fatal("dirty page lost on eviction")
	}
}

func TestCleanEvictionDoesNotWrite(t *testing.T) {
	p, d, f := newPool(t, 1, "lru")
	fill(t, d, f, 2)
	h, _ := p.Get(f, 0)
	p.Unpin(&h, false)
	h1, _ := p.Get(f, 1)
	p.Unpin(&h1, false)
	if d.Stats().Writes != 0 {
		t.Fatalf("clean eviction wrote %d pages", d.Stats().Writes)
	}
}

func TestPinnedPagesAreNotEvicted(t *testing.T) {
	p, d, f := newPool(t, 2, "lru")
	fill(t, d, f, 3)

	h0, _ := p.Get(f, 0)
	h1, _ := p.Get(f, 1)
	// Pool full of pinned pages: Get must fail with ErrNoFrames.
	if _, err := p.Get(f, 2); !errors.Is(err, ErrNoFrames) {
		t.Fatalf("err = %v, want ErrNoFrames", err)
	}
	p.Unpin(&h1, false)
	h2, err := p.Get(f, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Resident(f, 0) {
		t.Fatal("pinned page 0 was evicted")
	}
	p.Unpin(&h0, false)
	p.Unpin(&h2, false)
}

func TestLRUEvictsLeastRecentlyUsed(t *testing.T) {
	p, d, f := newPool(t, 2, "lru")
	fill(t, d, f, 3)
	for _, pg := range []pagedisk.PageID{0, 1, 0} { // touch order: 0,1,0 -> LRU is 1
		h, _ := p.Get(f, pg)
		p.Unpin(&h, false)
	}
	h, _ := p.Get(f, 2)
	p.Unpin(&h, false)
	if p.Resident(f, 1) {
		t.Fatal("LRU kept page 1, should have evicted it")
	}
	if !p.Resident(f, 0) {
		t.Fatal("LRU evicted recently used page 0")
	}
}

func TestMRUEvictsMostRecentlyUsed(t *testing.T) {
	p, d, f := newPool(t, 2, "mru")
	fill(t, d, f, 3)
	for _, pg := range []pagedisk.PageID{0, 1} {
		h, _ := p.Get(f, pg)
		p.Unpin(&h, false)
	}
	h, _ := p.Get(f, 2)
	p.Unpin(&h, false)
	if p.Resident(f, 1) {
		t.Fatal("MRU kept most recently used page 1")
	}
	if !p.Resident(f, 0) {
		t.Fatal("MRU evicted page 0")
	}
}

func TestFIFOIgnoresTouches(t *testing.T) {
	p, d, f := newPool(t, 2, "fifo")
	fill(t, d, f, 3)
	for _, pg := range []pagedisk.PageID{0, 1, 0, 0} { // re-touching 0 must not save it
		h, _ := p.Get(f, pg)
		p.Unpin(&h, false)
	}
	h, _ := p.Get(f, 2)
	p.Unpin(&h, false)
	if p.Resident(f, 0) {
		t.Fatal("FIFO kept first-in page 0")
	}
}

func TestClockGivesSecondChance(t *testing.T) {
	p, d, f := newPool(t, 2, "clock")
	fill(t, d, f, 4)
	// Load 0 and 1; both have ref bits set. A new page clears bits in a
	// first sweep and evicts the first cleared frame in the second.
	for _, pg := range []pagedisk.PageID{0, 1} {
		h, _ := p.Get(f, pg)
		p.Unpin(&h, false)
	}
	h, _ := p.Get(f, 2)
	p.Unpin(&h, false)
	if p.Resident(f, 0) && p.Resident(f, 1) {
		t.Fatal("clock evicted nothing")
	}
}

func TestAllPoliciesServeWorkload(t *testing.T) {
	for _, name := range PolicyNames() {
		t.Run(name, func(t *testing.T) {
			p, d, f := newPool(t, 3, name)
			fill(t, d, f, 10)
			// Mixed access pattern; every Get must return correct contents.
			seq := []pagedisk.PageID{0, 1, 2, 3, 1, 4, 5, 0, 9, 8, 7, 1, 2, 2, 6, 0}
			for _, pg := range seq {
				h, err := p.Get(f, pg)
				if err != nil {
					t.Fatalf("Get(%d): %v", pg, err)
				}
				if h.Data()[0] != byte(pg) {
					t.Fatalf("page %d returned contents of page %d", pg, h.Data()[0])
				}
				p.Unpin(&h, false)
			}
			st := p.Stats()
			if st.Hits+st.Misses != int64(len(seq)) {
				t.Fatalf("hits+misses = %d, want %d", st.Hits+st.Misses, len(seq))
			}
		})
	}
}

func TestGetNewAndFlush(t *testing.T) {
	p, d, f := newPool(t, 2, "lru")
	pg, h, err := p.GetNew(f)
	if err != nil {
		t.Fatal(err)
	}
	h.Data()[0] = 7
	p.Unpin(&h, true)
	if d.Stats().Writes != 0 {
		t.Fatal("GetNew caused immediate write")
	}
	if err := p.FlushAll(); err != nil {
		t.Fatal(err)
	}
	if d.Stats().Writes != 1 {
		t.Fatalf("flush wrote %d pages, want 1", d.Stats().Writes)
	}
	var buf pagedisk.Page
	if err := d.Read(f, pg, &buf); err != nil {
		t.Fatal(err)
	}
	if buf[0] != 7 {
		t.Fatal("fresh page contents lost")
	}
	// Second flush: nothing dirty.
	before := d.Stats().Writes
	if err := p.FlushAll(); err != nil {
		t.Fatal(err)
	}
	if d.Stats().Writes != before {
		t.Fatal("flush of clean pool wrote pages")
	}
}

func TestFreshPageEvictionPersists(t *testing.T) {
	p, d, f := newPool(t, 1, "lru")
	pg, h, err := p.GetNew(f)
	if err != nil {
		t.Fatal(err)
	}
	h.Data()[0] = 9
	p.Unpin(&h, false) // not marked dirty, but fresh pages must still persist
	fill2, _ := d.Allocate(f)
	var z pagedisk.Page
	if err := d.Write(f, fill2, &z); err != nil {
		t.Fatal(err)
	}
	h2, err := p.Get(f, fill2) // evicts the fresh page
	if err != nil {
		t.Fatal(err)
	}
	p.Unpin(&h2, false)
	var buf pagedisk.Page
	if err := d.Read(f, pg, &buf); err != nil {
		t.Fatal(err)
	}
	if buf[0] != 9 {
		t.Fatal("fresh page dropped on eviction without write-back")
	}
}

func TestDiscardFile(t *testing.T) {
	p, d, f := newPool(t, 4, "lru")
	g := d.CreateFile("tmp")
	fill(t, d, f, 1)
	d.Allocate(g)
	var z pagedisk.Page
	_ = d.Write(g, 0, &z)

	hf, _ := p.Get(f, 0)
	p.Unpin(&hf, false)
	hg, _ := p.Get(g, 0)
	hg.Data()[0] = 5
	p.Unpin(&hg, true)

	d.ResetStats()
	p.DiscardFile(g)
	if d.Stats().Writes != 0 {
		t.Fatal("DiscardFile wrote pages")
	}
	if p.Resident(g, 0) {
		t.Fatal("discarded page still resident")
	}
	if !p.Resident(f, 0) {
		t.Fatal("DiscardFile dropped pages of another file")
	}
}

func TestFlushFile(t *testing.T) {
	p, d, f := newPool(t, 4, "lru")
	g := d.CreateFile("g")
	fill(t, d, f, 1)
	d.Allocate(g)
	var z pagedisk.Page
	_ = d.Write(g, 0, &z)
	d.ResetStats()

	hf, _ := p.Get(f, 0)
	hf.Data()[0] = 1
	p.Unpin(&hf, true)
	hg, _ := p.Get(g, 0)
	hg.Data()[0] = 2
	p.Unpin(&hg, true)

	if err := p.FlushFile(g); err != nil {
		t.Fatal(err)
	}
	if d.Stats().Writes != 1 {
		t.Fatalf("FlushFile wrote %d pages, want 1", d.Stats().Writes)
	}
}

func TestUnpinPanicsOnDoubleUnpin(t *testing.T) {
	p, d, f := newPool(t, 2, "lru")
	fill(t, d, f, 1)
	h, _ := p.Get(f, 0)
	p.Unpin(&h, false)
	defer func() {
		if recover() == nil {
			t.Fatal("double unpin did not panic")
		}
	}()
	p.Unpin(&h, false)
}

func TestPinCountsNested(t *testing.T) {
	p, d, f := newPool(t, 1, "lru")
	fill(t, d, f, 2)
	h1, _ := p.Get(f, 0)
	h2, _ := p.Get(f, 0) // second pin of same page
	if p.PinnedFrames() != 1 {
		t.Fatalf("PinnedFrames = %d, want 1", p.PinnedFrames())
	}
	p.Unpin(&h1, false)
	// Still pinned once: eviction must fail.
	if _, err := p.Get(f, 1); !errors.Is(err, ErrNoFrames) {
		t.Fatalf("err = %v, want ErrNoFrames", err)
	}
	p.Unpin(&h2, false)
	h3, err := p.Get(f, 1)
	if err != nil {
		t.Fatal(err)
	}
	p.Unpin(&h3, false)
}

func TestIOErrorPropagates(t *testing.T) {
	p, d, f := newPool(t, 1, "lru")
	fill(t, d, f, 2)
	d.FailAfter(0)
	if _, err := p.Get(f, 0); !errors.Is(err, pagedisk.ErrIOInjected) {
		t.Fatalf("err = %v, want injected failure", err)
	}
}

func TestHitRatio(t *testing.T) {
	var s Stats
	if s.HitRatio() != 0 {
		t.Fatal("empty stats hit ratio != 0")
	}
	s = Stats{Hits: 3, Misses: 1}
	if got := s.HitRatio(); got != 0.75 {
		t.Fatalf("HitRatio = %v, want 0.75", got)
	}
}

func TestNewPolicyUnknown(t *testing.T) {
	if _, err := NewPolicy("nope", 4); err == nil {
		t.Fatal("unknown policy accepted")
	}
}

func TestPoolIOCountersMatchDisk(t *testing.T) {
	// With a single pool on the disk, pool-attributed I/O must equal the
	// disk's own counters for every operation mix.
	p, d, f := newPool(t, 2, "lru")
	fill(t, d, f, 6)
	for _, pg := range []pagedisk.PageID{0, 1, 2, 0, 3, 4, 5, 1} {
		h, err := p.Get(f, pg)
		if err != nil {
			t.Fatal(err)
		}
		h.Data()[3] = byte(pg)
		p.Unpin(&h, true)
	}
	if err := p.FlushAll(); err != nil {
		t.Fatal(err)
	}
	st := p.Stats()
	dst := d.Stats()
	if st.Reads != dst.Reads || st.Writes != dst.Writes {
		t.Fatalf("pool I/O %d/%d, disk %d/%d", st.Reads, st.Writes, dst.Reads, dst.Writes)
	}
	if st.IO().Total() != dst.Total() {
		t.Fatalf("IO() total %d != disk total %d", st.IO().Total(), dst.Total())
	}
}

func TestTwoPoolsAttributeIOSeparately(t *testing.T) {
	d := pagedisk.New()
	f := d.CreateFile("data")
	for i := 0; i < 4; i++ {
		p, _ := d.Allocate(f)
		var pg pagedisk.Page
		if err := d.Write(f, p, &pg); err != nil {
			t.Fatal(err)
		}
	}
	d.ResetStats()
	polA, _ := NewPolicy("lru", 2)
	polB, _ := NewPolicy("lru", 2)
	a := New(d, 2, polA)
	b := New(d, 2, polB)
	// Pool a reads 3 pages; pool b reads 1.
	for _, pg := range []pagedisk.PageID{0, 1, 2} {
		h, err := a.Get(f, pg)
		if err != nil {
			t.Fatal(err)
		}
		a.Unpin(&h, false)
	}
	h, err := b.Get(f, 3)
	if err != nil {
		t.Fatal(err)
	}
	b.Unpin(&h, false)
	if a.Stats().Reads != 3 || b.Stats().Reads != 1 {
		t.Fatalf("attribution wrong: a=%d b=%d", a.Stats().Reads, b.Stats().Reads)
	}
	if d.Stats().Reads != 4 {
		t.Fatalf("disk total %d, want 4", d.Stats().Reads)
	}
}
