package buffer

import (
	"errors"
	"fmt"

	"tcstudy/internal/pagedisk"
)

// ErrNoFrames is returned by Get when every frame in the pool is pinned and
// a new page cannot be brought in. Callers that pin many pages at once (the
// Hybrid algorithm's diagonal block) treat this as the signal to reblock.
var ErrNoFrames = errors.New("buffer: all frames pinned")

type key struct {
	file pagedisk.FileID
	page pagedisk.PageID
}

type frame struct {
	key   key
	data  pagedisk.Page
	view  *pagedisk.Page // non-nil: zero-copy view of a sealed file's page
	pins  int
	dirty bool
	valid bool
	fresh bool // allocated but never yet written to disk
}

// Stats summarizes buffer pool activity, including the page I/O this pool
// issued against the disk. Counting I/O at the pool rather than the shared
// disk attributes cost exactly to the query that caused it, which is what
// permits concurrent queries over one database.
type Stats struct {
	Hits   int64
	Misses int64
	Evicts int64
	Reads  int64 // disk reads issued by this pool
	Writes int64 // disk writes issued by this pool
}

// IO returns the pool's disk traffic as a pagedisk.Stats value.
func (s Stats) IO() pagedisk.Stats {
	return pagedisk.Stats{Reads: s.Reads, Writes: s.Writes}
}

// HitRatio returns Hits / (Hits + Misses), or 0 when no accesses occurred.
func (s Stats) HitRatio() float64 {
	if s.Hits+s.Misses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Hits+s.Misses)
}

// Sub returns s - t, for attributing activity to a phase.
func (s Stats) Sub(t Stats) Stats {
	return Stats{
		Hits:   s.Hits - t.Hits,
		Misses: s.Misses - t.Misses,
		Evicts: s.Evicts - t.Evicts,
		Reads:  s.Reads - t.Reads,
		Writes: s.Writes - t.Writes,
	}
}

// Pool is a buffer pool of fixed size over a page store (the simulated
// disk, or a fault-injecting wrapper around it). Pages are pinned by Get
// and released by Unpin; pinned pages are never evicted.
// The pool is not safe for concurrent use.
type Pool struct {
	disk   pagedisk.Store
	viewer pagedisk.ReadOnlyViewer // non-nil when disk supports zero-copy views
	frames []frame
	table  map[key]int
	policy Policy
	stats  Stats
}

// New creates a pool of size frames over disk using the given replacement
// policy. Size must be at least 1. If disk implements
// pagedisk.ReadOnlyViewer, misses on sealed files fill frames with
// zero-copy views instead of page copies; the accounting (hits, misses,
// reads) is identical either way.
func New(disk pagedisk.Store, size int, policy Policy) *Pool {
	if size < 1 {
		panic("buffer: pool size must be at least 1")
	}
	viewer, _ := disk.(pagedisk.ReadOnlyViewer)
	return &Pool{
		disk:   disk,
		viewer: viewer,
		frames: make([]frame, size),
		table:  make(map[key]int, size),
		policy: policy,
	}
}

// Size reports the number of frames in the pool.
func (p *Pool) Size() int { return len(p.frames) }

// Disk returns the underlying page store.
func (p *Pool) Disk() pagedisk.Store { return p.disk }

// Stats returns cumulative hit/miss/eviction counters.
func (p *Pool) Stats() Stats { return p.stats }

// ResetStats zeroes the counters (the resident set is unaffected).
func (p *Pool) ResetStats() { p.stats = Stats{} }

// Policy returns the pool's replacement policy.
func (p *Pool) Policy() Policy { return p.policy }

// PinnedFrames reports how many frames currently have a nonzero pin count.
func (p *Pool) PinnedFrames() int {
	n := 0
	for i := range p.frames {
		if p.frames[i].valid && p.frames[i].pins > 0 {
			n++
		}
	}
	return n
}

// Handle is a pinned reference to a page resident in the pool.
type Handle struct {
	pool  *Pool
	idx   int
	key   key
	valid bool
}

// Data returns the page bytes. The pointer aliases the frame (or, for a
// sealed file, the shared immutable storage); it is valid only while the
// handle remains pinned, and pages of sealed files must not be written
// through it.
func (h *Handle) Data() *pagedisk.Page {
	if !h.valid {
		panic("buffer: use of unpinned handle")
	}
	fr := &h.pool.frames[h.idx]
	if fr.view != nil {
		return fr.view
	}
	return &fr.data
}

// Page reports the page identity behind the handle.
func (h *Handle) Page() (pagedisk.FileID, pagedisk.PageID) { return h.key.file, h.key.page }

// evict writes frame i back if dirty and removes it from the table.
func (p *Pool) evict(i int) error {
	fr := &p.frames[i]
	if fr.dirty || fr.fresh {
		if err := p.disk.Write(fr.key.file, fr.key.page, &fr.data); err != nil {
			return err
		}
		p.stats.Writes++
	}
	delete(p.table, fr.key)
	p.policy.Removed(i)
	fr.valid = false
	fr.dirty = false
	fr.fresh = false
	fr.view = nil
	p.stats.Evicts++
	return nil
}

// freeFrame finds a frame to hold a new page, evicting if necessary.
func (p *Pool) freeFrame() (int, error) {
	for i := range p.frames {
		if !p.frames[i].valid {
			return i, nil
		}
	}
	i := p.policy.Victim(func(i int) bool { return p.frames[i].pins == 0 })
	if i < 0 {
		return -1, ErrNoFrames
	}
	if err := p.evict(i); err != nil {
		return -1, err
	}
	return i, nil
}

// Get pins page pg of file f, reading it from disk on a miss, and returns a
// handle. Every successful Get must be balanced by exactly one Unpin.
func (p *Pool) Get(f pagedisk.FileID, pg pagedisk.PageID) (Handle, error) {
	k := key{f, pg}
	if i, ok := p.table[k]; ok {
		p.frames[i].pins++
		p.policy.Touched(i)
		p.stats.Hits++
		return Handle{pool: p, idx: i, key: k, valid: true}, nil
	}
	i, err := p.freeFrame()
	if err != nil {
		return Handle{}, err
	}
	fr := &p.frames[i]
	if p.viewer != nil && p.viewer.Sealed(f) {
		// Sealed files are immutable: the frame holds a view into the
		// shared storage instead of a private copy. A view is charged as
		// one read, so the cost model is unchanged.
		v, err := p.viewer.View(f, pg)
		if err != nil {
			return Handle{}, err
		}
		fr.view = v
	} else {
		if err := p.disk.Read(f, pg, &fr.data); err != nil {
			return Handle{}, err
		}
		fr.view = nil
	}
	p.stats.Misses++
	p.stats.Reads++
	fr.key = k
	fr.pins = 1
	fr.valid = true
	fr.dirty = false
	fr.fresh = false
	p.table[k] = i
	p.policy.Admitted(i)
	return Handle{pool: p, idx: i, key: k, valid: true}, nil
}

// GetNew allocates a fresh page in file f, pins it with zeroed contents,
// and returns its ID with the handle. No read I/O is charged; the page is
// written when flushed or evicted.
func (p *Pool) GetNew(f pagedisk.FileID) (pagedisk.PageID, Handle, error) {
	pg, err := p.disk.Allocate(f)
	if err != nil {
		return pagedisk.InvalidPage, Handle{}, err
	}
	i, err := p.freeFrame()
	if err != nil {
		return pagedisk.InvalidPage, Handle{}, err
	}
	fr := &p.frames[i]
	fr.data = pagedisk.Page{}
	fr.view = nil
	k := key{f, pg}
	fr.key = k
	fr.pins = 1
	fr.valid = true
	fr.dirty = true
	fr.fresh = true
	p.table[k] = i
	p.policy.Admitted(i)
	return pg, Handle{pool: p, idx: i, key: k, valid: true}, nil
}

// Unpin releases the handle, optionally marking the page dirty.
func (p *Pool) Unpin(h *Handle, dirty bool) {
	if !h.valid {
		panic("buffer: double unpin")
	}
	fr := &p.frames[h.idx]
	if fr.pins <= 0 || fr.key != h.key {
		panic(fmt.Sprintf("buffer: unbalanced unpin of page %d/%d", h.key.file, h.key.page))
	}
	if dirty {
		if fr.view != nil {
			panic(fmt.Sprintf("buffer: dirty unpin of sealed page %d/%d", h.key.file, h.key.page))
		}
		fr.dirty = true
	}
	fr.pins--
	h.valid = false
}

// FlushAll writes all dirty pages back to disk, leaving them resident and
// clean. Used at the end of a computation whose result must persist (the
// "write the expanded lists out to disk" step of the paper).
func (p *Pool) FlushAll() error {
	for i := range p.frames {
		fr := &p.frames[i]
		if fr.valid && (fr.dirty || fr.fresh) {
			if err := p.disk.Write(fr.key.file, fr.key.page, &fr.data); err != nil {
				return err
			}
			p.stats.Writes++
			fr.dirty = false
			fr.fresh = false
		}
	}
	return nil
}

// FlushPage writes page pg of file f back to disk if it is resident and
// dirty; otherwise it is a no-op. Used to persist selected result pages
// (the "write out the expanded lists of the source nodes" step).
func (p *Pool) FlushPage(f pagedisk.FileID, pg pagedisk.PageID) error {
	i, ok := p.table[key{f, pg}]
	if !ok {
		return nil
	}
	fr := &p.frames[i]
	if !fr.dirty && !fr.fresh {
		return nil
	}
	if err := p.disk.Write(fr.key.file, fr.key.page, &fr.data); err != nil {
		return err
	}
	p.stats.Writes++
	fr.dirty = false
	fr.fresh = false
	return nil
}

// FlushFile writes back dirty pages belonging to file f only.
func (p *Pool) FlushFile(f pagedisk.FileID) error {
	for i := range p.frames {
		fr := &p.frames[i]
		if fr.valid && fr.key.file == f && (fr.dirty || fr.fresh) {
			if err := p.disk.Write(fr.key.file, fr.key.page, &fr.data); err != nil {
				return err
			}
			p.stats.Writes++
			fr.dirty = false
			fr.fresh = false
		}
	}
	return nil
}

// DiscardFile invalidates resident pages of file f without writing them
// back. It models dropping a temporary file whose contents are no longer
// needed (e.g. non-source expanded lists after a selection query). Pinned
// pages of the file must not exist.
func (p *Pool) DiscardFile(f pagedisk.FileID) {
	for i := range p.frames {
		fr := &p.frames[i]
		if !fr.valid || fr.key.file != f {
			continue
		}
		if fr.pins > 0 {
			panic("buffer: DiscardFile with pinned page")
		}
		delete(p.table, fr.key)
		p.policy.Removed(i)
		fr.valid = false
		fr.dirty = false
		fr.fresh = false
		fr.view = nil
	}
}

// Reset discards every frame — pinned, dirty or clean — without any
// write-back, returning the pool to its freshly-created state. It exists
// for fault recovery: after a storage error aborts a computation mid-run,
// pins may be outstanding and dirty frames may hold pages of temporary
// files the caller is about to drop. Any handle obtained before Reset is
// invalid afterwards and must not be used.
func (p *Pool) Reset() {
	for i := range p.frames {
		if p.frames[i].valid {
			delete(p.table, p.frames[i].key)
			p.policy.Removed(i)
		}
		p.frames[i] = frame{}
	}
}

// Resident reports whether a page is currently in the pool (for tests and
// for the locality analysis in the experiments).
func (p *Pool) Resident(f pagedisk.FileID, pg pagedisk.PageID) bool {
	_, ok := p.table[key{f, pg}]
	return ok
}
