// Package buffer implements the simulated buffer manager of the study:
// a pool of M page frames over the simulated disk, with pluggable page
// replacement policies (Section 5.1 of the paper). The pool counts hits and
// misses; all disk traffic it generates is counted by the underlying
// pagedisk.Disk, giving the paper's primary cost metric, page I/O.
package buffer

import (
	"fmt"
	"math/rand"
)

// Policy chooses a victim frame when the pool must evict. Implementations
// receive frame lifecycle events so they can maintain recency or arrival
// order. Frames are identified by their index in the pool.
//
// Victim must return the index of an evictable frame (one for which
// evictable(i) reports true) or -1 if no frame qualifies (all pinned).
type Policy interface {
	// Name reports the policy's short name (e.g. "lru").
	Name() string
	// Admitted is called when a page is loaded into frame i.
	Admitted(i int)
	// Touched is called on every access to the page in frame i.
	Touched(i int)
	// Removed is called when frame i is evicted or invalidated.
	Removed(i int)
	// Victim returns an evictable frame index, or -1.
	Victim(evictable func(int) bool) int
}

// NewPolicy constructs a policy by name for a pool of n frames.
// Known names: "lru", "mru", "fifo", "clock", "random".
func NewPolicy(name string, n int) (Policy, error) {
	switch name {
	case "lru":
		return newRecency(n, false), nil
	case "mru":
		return newRecency(n, true), nil
	case "fifo":
		return newFIFO(n), nil
	case "clock":
		return newClock(n), nil
	case "random":
		return newRandom(n, 1), nil
	}
	return nil, fmt.Errorf("buffer: unknown page replacement policy %q", name)
}

// PolicyNames lists the built-in page replacement policies.
func PolicyNames() []string { return []string{"lru", "mru", "fifo", "clock", "random"} }

// recency implements LRU and MRU with an intrusive doubly-linked list over
// frame indices. head is least recently used, tail most recently used.
type recency struct {
	mru        bool
	prev, next []int
	head, tail int
	present    []bool
}

func newRecency(n int, mru bool) *recency {
	r := &recency{mru: mru, prev: make([]int, n), next: make([]int, n), head: -1, tail: -1, present: make([]bool, n)}
	for i := range r.prev {
		r.prev[i], r.next[i] = -1, -1
	}
	return r
}

func (r *recency) Name() string {
	if r.mru {
		return "mru"
	}
	return "lru"
}

func (r *recency) unlink(i int) {
	if !r.present[i] {
		return
	}
	p, n := r.prev[i], r.next[i]
	if p >= 0 {
		r.next[p] = n
	} else {
		r.head = n
	}
	if n >= 0 {
		r.prev[n] = p
	} else {
		r.tail = p
	}
	r.prev[i], r.next[i] = -1, -1
	r.present[i] = false
}

func (r *recency) pushTail(i int) {
	r.prev[i], r.next[i] = r.tail, -1
	if r.tail >= 0 {
		r.next[r.tail] = i
	} else {
		r.head = i
	}
	r.tail = i
	r.present[i] = true
}

func (r *recency) Admitted(i int) { r.unlink(i); r.pushTail(i) }
func (r *recency) Touched(i int)  { r.unlink(i); r.pushTail(i) }
func (r *recency) Removed(i int)  { r.unlink(i) }

func (r *recency) Victim(evictable func(int) bool) int {
	if r.mru {
		for i := r.tail; i >= 0; i = r.prev[i] {
			if evictable(i) {
				return i
			}
		}
		return -1
	}
	for i := r.head; i >= 0; i = r.next[i] {
		if evictable(i) {
			return i
		}
	}
	return -1
}

// fifo evicts in order of admission, ignoring subsequent touches.
type fifo struct {
	r *recency
}

func newFIFO(n int) *fifo { return &fifo{r: newRecency(n, false)} }

func (f *fifo) Name() string   { return "fifo" }
func (f *fifo) Admitted(i int) { f.r.Admitted(i) }
func (f *fifo) Touched(int)    {} // arrival order only
func (f *fifo) Removed(i int)  { f.r.Removed(i) }
func (f *fifo) Victim(ev func(int) bool) int {
	return f.r.Victim(ev)
}

// clock implements the classic second-chance algorithm.
type clock struct {
	ref  []bool
	used []bool
	hand int
}

func newClock(n int) *clock {
	return &clock{ref: make([]bool, n), used: make([]bool, n)}
}

func (c *clock) Name() string   { return "clock" }
func (c *clock) Admitted(i int) { c.used[i] = true; c.ref[i] = true }
func (c *clock) Touched(i int)  { c.ref[i] = true }
func (c *clock) Removed(i int)  { c.used[i] = false; c.ref[i] = false }

func (c *clock) Victim(evictable func(int) bool) int {
	n := len(c.ref)
	if n == 0 {
		return -1
	}
	// Two sweeps suffice: the first clears reference bits, the second must
	// find a victim among evictable frames if any exists.
	for pass := 0; pass < 2*n; pass++ {
		i := c.hand
		c.hand = (c.hand + 1) % n
		if !c.used[i] || !evictable(i) {
			continue
		}
		if c.ref[i] {
			c.ref[i] = false
			continue
		}
		return i
	}
	// Everything evictable kept its reference bit set across both sweeps
	// only if it was re-touched, which cannot happen inside Victim; fall
	// back to any evictable frame.
	for i := 0; i < n; i++ {
		if c.used[i] && evictable(i) {
			return i
		}
	}
	return -1
}

// random picks a uniformly random evictable frame using a fixed seed so
// runs are reproducible.
type random struct {
	rng  *rand.Rand
	used []bool
	cand []int // scratch reused across Victim calls (eviction is a hot path)
}

func newRandom(n int, seed int64) *random {
	return &random{
		rng:  rand.New(rand.NewSource(seed)),
		used: make([]bool, n),
		cand: make([]int, 0, n),
	}
}

func (r *random) Name() string   { return "random" }
func (r *random) Admitted(i int) { r.used[i] = true }
func (r *random) Touched(int)    {}
func (r *random) Removed(i int)  { r.used[i] = false }

func (r *random) Victim(evictable func(int) bool) int {
	cand := r.cand[:0]
	for i, u := range r.used {
		if u && evictable(i) {
			cand = append(cand, i)
		}
	}
	if len(cand) == 0 {
		return -1
	}
	return cand[r.rng.Intn(len(cand))]
}
