package buffer

import (
	"strings"
	"testing"

	"tcstudy/internal/pagedisk"
)

// TestSealedGetIsZeroCopy pins a page of a sealed file and checks the
// handle aliases the disk's storage rather than a frame-private copy,
// while the accounting stays identical to the copying path.
func TestSealedGetIsZeroCopy(t *testing.T) {
	p, d, f := newPool(t, 4, "lru")
	fill(t, d, f, 3)
	d.Seal(f)

	h, err := p.Get(f, 1)
	if err != nil {
		t.Fatal(err)
	}
	v, err := d.View(f, 1)
	if err != nil {
		t.Fatal(err)
	}
	if h.Data() != v {
		t.Fatal("sealed Get did not hand out the shared immutable page")
	}
	if h.Data()[0] != 1 {
		t.Fatalf("page contents = %d, want 1", h.Data()[0])
	}
	st := p.Stats()
	if st.Misses != 1 || st.Reads != 1 {
		t.Fatalf("stats = %+v, want 1 miss and 1 read", st)
	}
	p.Unpin(&h, false)

	// Hit path: same frame, same shared storage, no extra read.
	h2, err := p.Get(f, 1)
	if err != nil {
		t.Fatal(err)
	}
	if h2.Data() != v {
		t.Fatal("hit on sealed page lost the shared view")
	}
	if st := p.Stats(); st.Hits != 1 || st.Reads != 1 {
		t.Fatalf("stats = %+v, want 1 hit and still 1 pool read", st)
	}
	p.Unpin(&h2, false)
}

// TestSealedDirtyUnpinPanics: a sealed page must never be marked dirty —
// that would write back into storage other queries are reading.
func TestSealedDirtyUnpinPanics(t *testing.T) {
	p, d, f := newPool(t, 2, "lru")
	fill(t, d, f, 1)
	d.Seal(f)
	h, err := p.Get(f, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("dirty unpin of a sealed page did not panic")
		}
		if !strings.Contains(r.(string), "sealed") {
			t.Fatalf("panic %q does not mention sealing", r)
		}
	}()
	p.Unpin(&h, true)
}

// TestSealedEvictionIsFree: view frames are never dirty, so evicting them
// writes nothing and a later re-Get re-views.
func TestSealedEvictionIsFree(t *testing.T) {
	p, d, f := newPool(t, 1, "lru")
	fill(t, d, f, 2)
	d.Seal(f)
	for _, pg := range []pagedisk.PageID{0, 1, 0} {
		h, err := p.Get(f, pg)
		if err != nil {
			t.Fatal(err)
		}
		if h.Data()[0] != byte(pg) {
			t.Fatalf("page %d contents = %d", pg, h.Data()[0])
		}
		p.Unpin(&h, false)
	}
	st := p.Stats()
	if st.Writes != 0 {
		t.Fatalf("evicting view frames wrote %d pages", st.Writes)
	}
	if st.Evicts != 2 || st.Reads != 3 {
		t.Fatalf("stats = %+v, want 2 evicts and 3 reads", st)
	}
	if dst := d.Stats(); dst.Writes != 0 {
		t.Fatalf("disk writes = %d, want 0", dst.Writes)
	}
}

// TestViewFrameReusedForUnsealedPage: a frame that held a view must not
// leak it when reused for a mutable page of another file.
func TestViewFrameReusedForUnsealedPage(t *testing.T) {
	d := pagedisk.New()
	base := d.CreateFile("base")
	tmp := d.CreateFile("tmp")
	for i := 0; i < 2; i++ {
		p, _ := d.Allocate(base)
		var pg pagedisk.Page
		pg[0] = byte(10 + i)
		if err := d.Write(base, p, &pg); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := d.Allocate(tmp); err != nil {
		t.Fatal(err)
	}
	d.Seal(base)
	pol, _ := NewPolicy("lru", 1)
	p := New(d, 1, pol)

	h, err := p.Get(base, 0)
	if err != nil {
		t.Fatal(err)
	}
	p.Unpin(&h, false)

	// Reuse the single frame for the mutable temp page and dirty it.
	h, err = p.Get(tmp, 0)
	if err != nil {
		t.Fatal(err)
	}
	h.Data()[0] = 99
	p.Unpin(&h, true)
	if err := p.FlushAll(); err != nil {
		t.Fatal(err)
	}
	var pg pagedisk.Page
	if err := d.Read(tmp, 0, &pg); err != nil {
		t.Fatal(err)
	}
	if pg[0] != 99 {
		t.Fatalf("temp page byte = %d, want 99", pg[0])
	}
	// The sealed file is untouched.
	v, err := d.View(base, 0)
	if err != nil {
		t.Fatal(err)
	}
	if v[0] != 10 {
		t.Fatalf("sealed page byte = %d, want 10", v[0])
	}
}

// BenchmarkGetSealed measures the zero-copy hit/miss path; with a sealed
// file the miss fill is pointer assignment, not a 2 KiB copy.
func BenchmarkGetSealed(b *testing.B) {
	for _, sealed := range []bool{false, true} {
		name := "copy"
		if sealed {
			name = "view"
		}
		b.Run(name, func(b *testing.B) {
			d := pagedisk.New()
			f := d.CreateFile("base")
			const pages = 64
			for i := 0; i < pages; i++ {
				p, _ := d.Allocate(f)
				var pg pagedisk.Page
				if err := d.Write(f, p, &pg); err != nil {
					b.Fatal(err)
				}
			}
			if sealed {
				d.Seal(f)
			}
			pol, _ := NewPolicy("lru", 8)
			pool := New(d, 8, pol)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				h, err := pool.Get(f, pagedisk.PageID(i%pages))
				if err != nil {
					b.Fatal(err)
				}
				_ = h.Data()[0]
				pool.Unpin(&h, false)
			}
		})
	}
}
