// Package obsv is the observability layer of the transitive closure stack:
// phase-span tracing for individual queries, and the hand-rolled Prometheus
// primitives (histograms, text exposition writer, exposition parser) the
// serving layer builds its /metrics endpoint from.
//
// # Tracing
//
// The paper explains every headline result by decomposing page I/O into
// per-phase counters; a Tracer turns that offline decomposition into an
// online one. A trace is a tree of spans — query → restructuring /
// computation phase → per-source expansion or per-worker partition — and
// every span carries, besides wall-clock timing, the page-I/O delta
// (reads, writes, buffer hits/misses/evicts) the spanned work performed.
// Because the engine fills each span's IO from the very counter deltas it
// adds to its metric record, span I/O reconciles exactly with the record
// (asserted against the golden metric files by the core tests).
//
// Tracing is strictly opt-in and zero-cost when off: the engine consults a
// single nil check per phase, and every Tracer and Span method is safe to
// call on a nil receiver, so call sites need no guards of their own.
//
//	tr := obsv.NewTracer()
//	root := tr.Start("query", obsv.KV("algorithm", "btc"))
//	cfg.Trace = root            // the engine hangs phase spans under it
//	res, err := core.Run(db, alg, q, cfg)
//	root.Finish()
//	json.Marshal(tr.Records()) // the span tree, IO deltas and all
//
// A tracer caps the spans it will hold (DefaultMaxSpans) so a
// full-closure query over a large graph cannot balloon a trace; spans
// beyond the cap are counted in Dropped and silently elided.
//
// # Prometheus primitives
//
// prom.go provides the other half of the layer: a fixed-bucket Histogram
// safe for concurrent observation, an Exposition builder that renders
// counter/gauge/histogram families in the Prometheus text exposition
// format, and ParseExposition, a minimal format checker the tests (and any
// scrape-debugging session) can validate an endpoint's output with. No
// external dependency is involved anywhere.
package obsv

import (
	"sync"
	"time"
)

// DefaultMaxSpans bounds the spans one tracer retains. A serial query
// produces a handful of spans; per-source expansion of a large source set
// produces one per source, which is what the cap is for.
const DefaultMaxSpans = 4096

// Attr is one key/value annotation on a span.
type Attr struct {
	Key   string
	Value any
}

// KV builds an Attr.
func KV(key string, value any) Attr { return Attr{Key: key, Value: value} }

// IO is the page-I/O delta attributed to one span: disk transfers and
// buffer pool behaviour between span open and close, counted at the
// query's private buffer pool so concurrent queries cannot pollute each
// other's spans.
type IO struct {
	Reads  int64 `json:"reads"`
	Writes int64 `json:"writes"`
	Hits   int64 `json:"hits"`
	Misses int64 `json:"misses"`
	Evicts int64 `json:"evicts"`
}

// Total returns reads plus writes — the paper's page-I/O cost of the span.
func (io IO) Total() int64 { return io.Reads + io.Writes }

// Add returns the element-wise sum io + other.
func (io IO) Add(other IO) IO {
	return IO{
		Reads:  io.Reads + other.Reads,
		Writes: io.Writes + other.Writes,
		Hits:   io.Hits + other.Hits,
		Misses: io.Misses + other.Misses,
		Evicts: io.Evicts + other.Evicts,
	}
}

// Tracer collects one trace: a forest of spans (normally a single root).
// All span mutation goes through the tracer's lock, so concurrent workers
// may open and finish child spans freely. The zero value is not usable;
// call NewTracer. A nil *Tracer is valid and inert.
type Tracer struct {
	mu      sync.Mutex
	max     int
	spans   int
	dropped int64
	roots   []*Span
}

// NewTracer returns an empty tracer retaining at most DefaultMaxSpans
// spans.
func NewTracer() *Tracer { return &Tracer{max: DefaultMaxSpans} }

// Start opens a root span. On a nil tracer, or once the span cap is
// reached, it returns nil (which every Span method accepts).
func (t *Tracer) Start(name string, attrs ...Attr) *Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	s := t.newSpanLocked(name, attrs)
	if s != nil {
		t.roots = append(t.roots, s)
	}
	return s
}

// newSpanLocked allocates a span under the cap. Callers hold t.mu.
func (t *Tracer) newSpanLocked(name string, attrs []Attr) *Span {
	if t.spans >= t.max {
		t.dropped++
		return nil
	}
	t.spans++
	return &Span{tracer: t, name: name, attrs: attrs, start: time.Now()}
}

// Dropped reports how many spans were elided by the span cap.
func (t *Tracer) Dropped() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// Records snapshots the tracer's span forest as JSON-ready records.
func (t *Tracer) Records() []Record {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	recs := make([]Record, 0, len(t.roots))
	for _, s := range t.roots {
		recs = append(recs, s.recordLocked())
	}
	return recs
}

// Span is one node of a trace: a named, timed slice of work with an
// attributed page-I/O delta and child spans. Spans are created by
// Tracer.Start and Span.Child and closed by Finish. A nil *Span is valid
// and inert, so disabled tracing costs callers a nil check at most.
type Span struct {
	tracer   *Tracer
	name     string
	attrs    []Attr
	start    time.Time
	end      time.Time
	io       IO
	children []*Span
}

// Child opens a sub-span. On a nil span, or once the tracer's span cap is
// reached, it returns nil.
func (s *Span) Child(name string, attrs ...Attr) *Span {
	if s == nil {
		return nil
	}
	t := s.tracer
	t.mu.Lock()
	defer t.mu.Unlock()
	c := t.newSpanLocked(name, attrs)
	if c != nil {
		s.children = append(s.children, c)
	}
	return c
}

// Annotate appends attributes to the span.
func (s *Span) Annotate(attrs ...Attr) {
	if s == nil {
		return
	}
	s.tracer.mu.Lock()
	defer s.tracer.mu.Unlock()
	s.attrs = append(s.attrs, attrs...)
}

// SetIO records the span's page-I/O delta, replacing any previous value.
func (s *Span) SetIO(io IO) {
	if s == nil {
		return
	}
	s.tracer.mu.Lock()
	defer s.tracer.mu.Unlock()
	s.io = io
}

// AddIO folds a further delta into the span's page-I/O.
func (s *Span) AddIO(io IO) {
	if s == nil {
		return
	}
	s.tracer.mu.Lock()
	defer s.tracer.mu.Unlock()
	s.io = s.io.Add(io)
}

// Finish closes the span, fixing its duration. Finishing twice keeps the
// first end time.
func (s *Span) Finish() {
	if s == nil {
		return
	}
	s.tracer.mu.Lock()
	defer s.tracer.mu.Unlock()
	if s.end.IsZero() {
		s.end = time.Now()
	}
}

// Record is the JSON-ready snapshot of a span tree.
type Record struct {
	Name       string         `json:"name"`
	Attrs      map[string]any `json:"attrs,omitempty"`
	Start      time.Time      `json:"start"`
	DurationMS float64        `json:"duration_ms"`
	IO         IO             `json:"io"`
	Children   []Record       `json:"children,omitempty"`
}

// Record snapshots the span and its subtree.
func (s *Span) Record() Record {
	if s == nil {
		return Record{}
	}
	s.tracer.mu.Lock()
	defer s.tracer.mu.Unlock()
	return s.recordLocked()
}

func (s *Span) recordLocked() Record {
	r := Record{Name: s.name, Start: s.start, IO: s.io}
	end := s.end
	if end.IsZero() {
		end = time.Now() // still open: report elapsed so far
	}
	r.DurationMS = float64(end.Sub(s.start)) / float64(time.Millisecond)
	if len(s.attrs) > 0 {
		r.Attrs = make(map[string]any, len(s.attrs))
		for _, a := range s.attrs {
			r.Attrs[a.Key] = a.Value
		}
	}
	for _, c := range s.children {
		r.Children = append(r.Children, c.recordLocked())
	}
	return r
}

// Visit walks the record and its subtree in depth-first order.
func (r Record) Visit(fn func(Record)) {
	fn(r)
	for _, c := range r.Children {
		c.Visit(fn)
	}
}

// SumIO returns the summed IO of every span in the tree whose name equals
// one of the given names. Summing the phase spans ("restructure",
// "compute") of a trace reproduces the query's metric-record page I/O
// exactly.
func (r Record) SumIO(names ...string) IO {
	var sum IO
	r.Visit(func(rec Record) {
		for _, n := range names {
			if rec.Name == n {
				sum = sum.Add(rec.IO)
				break
			}
		}
	})
	return sum
}
