package obsv

import (
	"math"
	"strings"
	"testing"
)

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram(0.1, 1, 10)
	for _, v := range []float64{0.05, 0.1, 0.5, 2, 100} {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != 5 {
		t.Fatalf("count = %d, want 5", s.Count)
	}
	// 0.05 and 0.1 land in le=0.1 (upper-inclusive), 0.5 in le=1, 2 in
	// le=10, 100 in +Inf.
	want := []int64{2, 1, 1, 1}
	for i, w := range want {
		if s.Counts[i] != w {
			t.Fatalf("bucket %d = %d, want %d (all: %v)", i, s.Counts[i], w, s.Counts)
		}
	}
	if math.Abs(s.Sum-102.65) > 1e-9 {
		t.Fatalf("sum = %v", s.Sum)
	}
}

func TestHistogramBadBounds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on non-increasing bounds")
		}
	}()
	NewHistogram(1, 1)
}

// buildExposition assembles a payload exercising every family kind.
func buildExposition() string {
	e := NewExposition()
	e.Counter("tc_queries_total", "Queries accepted for processing.", 42)
	e.Gauge(`tc_in_flight`, "Requests currently being processed.", 3)
	e.CounterFamily("tc_requests_total", "Requests by endpoint.")
	e.Sample("tc_requests_total", []Label{{"endpoint", "query"}}, 40)
	e.Sample("tc_requests_total", []Label{{"endpoint", "reach"}}, 2)
	h := NewHistogram(0.01, 0.1, 1)
	h.Observe(0.004)
	h.Observe(0.2)
	e.HistogramFamily("tc_request_duration_seconds", "Request latency.")
	e.Histogram("tc_request_duration_seconds", []Label{{"endpoint", "query"}}, h.Snapshot())
	return e.String()
}

func TestExpositionRoundTrip(t *testing.T) {
	text := buildExposition()
	fams, err := ParseExposition(text)
	if err != nil {
		t.Fatalf("own exposition does not parse: %v\n%s", err, text)
	}
	if len(fams) != 4 {
		t.Fatalf("got %d families, want 4", len(fams))
	}
	if v, ok := CounterValue(fams, "tc_queries_total"); !ok || v != 42 {
		t.Fatalf("tc_queries_total = %v, %v", v, ok)
	}
	if v, ok := CounterValue(fams, "tc_requests_total"); !ok || v != 42 {
		t.Fatalf("summed tc_requests_total = %v, %v", v, ok)
	}
	hist := fams["tc_request_duration_seconds"]
	if hist.Type != "histogram" {
		t.Fatalf("type = %q", hist.Type)
	}
	// buckets are cumulative: le=0.01 -> 1, le=0.1 -> 1, le=1 -> 1, +Inf -> 2.
	var infSeen bool
	for _, s := range hist.Samples {
		if strings.HasSuffix(s.Name, "_bucket") && strings.Contains(s.Labels, `le="+Inf"`) {
			infSeen = true
			if s.Value != 2 {
				t.Fatalf("+Inf bucket = %v, want 2", s.Value)
			}
		}
		if strings.HasSuffix(s.Name, "_count") && s.Value != 2 {
			t.Fatalf("count = %v, want 2", s.Value)
		}
	}
	if !infSeen {
		t.Fatal("no +Inf bucket emitted")
	}
}

func TestExpositionRejectsDuplicateFamily(t *testing.T) {
	e := NewExposition()
	e.Counter("x_total", "x", 1)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on duplicate family")
		}
	}()
	e.Counter("x_total", "x again", 2)
}

func TestParseRejects(t *testing.T) {
	cases := map[string]string{
		"sample without family": "loose_metric 1\n",
		"family without TYPE":   "# HELP x_total help text\nx_total 1\n",
		"family without HELP":   "# TYPE x_total counter\nx_total 1\n",
		"duplicate TYPE":        "# HELP x x\n# TYPE x counter\n# TYPE x counter\nx 1\n",
		"duplicate HELP":        "# HELP x x\n# HELP x x\n# TYPE x counter\nx 1\n",
		"sample before TYPE":    "# HELP x x\nx 1\n# TYPE x counter\n",
		"bad value":             "# HELP x x\n# TYPE x counter\nx one\n",
		"negative counter":      "# HELP x x\n# TYPE x counter\nx -4\n",
		"unknown type":          "# HELP x x\n# TYPE x flooble\nx 1\n",
	}
	for name, text := range cases {
		if _, err := ParseExposition(text); err == nil {
			t.Errorf("%s: accepted invalid payload", name)
		}
	}
	// Hmm-free baseline: the same shapes, valid, must parse.
	ok := "# HELP x_total fine\n# TYPE x_total counter\nx_total 1\nx_total{a=\"b\"} 2\n\n# some comment\n"
	if _, err := ParseExposition(ok); err != nil {
		t.Fatalf("valid payload rejected: %v", err)
	}
}

func TestParseTypeAfterSamplesOfOtherFamilyOK(t *testing.T) {
	text := "# HELP a a\n# TYPE a counter\na 1\n# HELP b b\n# TYPE b gauge\nb 2\n"
	if _, err := ParseExposition(text); err != nil {
		t.Fatalf("sequential families rejected: %v", err)
	}
}
