package obsv

// Hand-rolled Prometheus primitives: a fixed-bucket histogram, a text
// exposition builder, and a minimal exposition-format parser used by the
// tests to validate /metrics output. The subset implemented is exactly
// what the serving layer emits — counter, gauge and histogram families
// with optional labels — in the text format Prometheus scrapes
// (version 0.0.4). No third-party client library is involved.

import (
	"fmt"
	"math"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Histogram is a fixed-bucket histogram safe for concurrent observation.
// Bucket bounds are upper-inclusive, matching Prometheus `le` semantics;
// an implicit +Inf bucket catches everything beyond the last bound.
type Histogram struct {
	mu     sync.Mutex
	bounds []float64
	counts []int64 // len(bounds)+1; the last element is the +Inf bucket
	sum    float64
}

// NewHistogram builds a histogram over the given bucket upper bounds,
// which must be strictly increasing.
func NewHistogram(bounds ...float64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obsv: histogram bounds not increasing at %v", bounds[i]))
		}
	}
	return &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]int64, len(bounds)+1),
	}
}

// DurationBuckets returns the default latency buckets, in seconds, spanning
// sub-millisecond cache hits to multi-second full closures.
func DurationBuckets() []float64 {
	return []float64{0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10}
}

// RatioBuckets returns the default buckets for quantities in [0, 1], such
// as buffer pool hit ratios.
func RatioBuckets() []float64 {
	return []float64{0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1}
}

// Observe adds one sample.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i]++
	h.sum += v
}

// HistogramSnapshot is a point-in-time copy of a histogram's state.
// Counts are per-bucket (not cumulative); the exposition builder
// accumulates them into Prometheus's cumulative `le` form.
type HistogramSnapshot struct {
	Bounds []float64
	Counts []int64 // len(Bounds)+1; last is the +Inf bucket
	Sum    float64
	Count  int64
}

// Snapshot copies the histogram's current state.
func (h *Histogram) Snapshot() HistogramSnapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	s := HistogramSnapshot{
		Bounds: append([]float64(nil), h.bounds...),
		Counts: append([]int64(nil), h.counts...),
		Sum:    h.sum,
	}
	for _, c := range s.Counts {
		s.Count += c
	}
	return s
}

// Label is one name="value" pair on a sample.
type Label struct {
	Name  string
	Value string
}

// Exposition builds a Prometheus text-format (version 0.0.4) payload.
// Families must be declared (Counter/Gauge for single-sample families,
// CounterFamily/GaugeFamily/HistogramFamily for labeled ones) before
// samples are written; declaring a family twice panics, as duplicate
// families make an exposition invalid.
type Exposition struct {
	b     strings.Builder
	types map[string]string // family name -> TYPE
}

// NewExposition returns an empty builder.
func NewExposition() *Exposition {
	return &Exposition{types: make(map[string]string)}
}

func (e *Exposition) family(name, typ, help string) {
	if _, dup := e.types[name]; dup {
		panic("obsv: duplicate metric family " + name)
	}
	e.types[name] = typ
	fmt.Fprintf(&e.b, "# HELP %s %s\n", name, escapeHelp(help))
	fmt.Fprintf(&e.b, "# TYPE %s %s\n", name, typ)
}

// Counter declares a counter family and writes its single unlabeled sample.
func (e *Exposition) Counter(name, help string, value float64) {
	e.family(name, "counter", help)
	e.Sample(name, nil, value)
}

// Gauge declares a gauge family and writes its single unlabeled sample.
func (e *Exposition) Gauge(name, help string, value float64) {
	e.family(name, "gauge", help)
	e.Sample(name, nil, value)
}

// CounterFamily declares a labeled counter family; write its samples with
// Sample.
func (e *Exposition) CounterFamily(name, help string) {
	e.family(name, "counter", help)
}

// GaugeFamily declares a labeled gauge family; write its samples with
// Sample.
func (e *Exposition) GaugeFamily(name, help string) {
	e.family(name, "gauge", help)
}

// HistogramFamily declares a histogram family; write its per-label-set
// snapshots with Histogram.
func (e *Exposition) HistogramFamily(name, help string) {
	e.family(name, "histogram", help)
}

// Sample writes one sample line for a previously declared family.
func (e *Exposition) Sample(name string, labels []Label, value float64) {
	typ, ok := e.types[name]
	if !ok {
		panic("obsv: sample for undeclared family " + name)
	}
	if typ == "histogram" {
		panic("obsv: raw sample for histogram family " + name + " (use Histogram)")
	}
	e.sampleLine(name, labels, value)
}

// Histogram writes the bucket/sum/count series of one histogram snapshot
// under a previously declared histogram family.
func (e *Exposition) Histogram(name string, labels []Label, snap HistogramSnapshot) {
	if e.types[name] != "histogram" {
		panic("obsv: Histogram on non-histogram family " + name)
	}
	var cum int64
	for i, bound := range snap.Bounds {
		cum += snap.Counts[i]
		e.sampleLine(name+"_bucket", append(labels[:len(labels):len(labels)],
			Label{"le", formatFloat(bound)}), float64(cum))
	}
	e.sampleLine(name+"_bucket", append(labels[:len(labels):len(labels)],
		Label{"le", "+Inf"}), float64(snap.Count))
	e.sampleLine(name+"_sum", labels, snap.Sum)
	e.sampleLine(name+"_count", labels, float64(snap.Count))
}

func (e *Exposition) sampleLine(name string, labels []Label, value float64) {
	e.b.WriteString(name)
	if len(labels) > 0 {
		e.b.WriteByte('{')
		for i, l := range labels {
			if i > 0 {
				e.b.WriteByte(',')
			}
			fmt.Fprintf(&e.b, "%s=%q", l.Name, escapeLabel(l.Value))
		}
		e.b.WriteByte('}')
	}
	e.b.WriteByte(' ')
	e.b.WriteString(formatFloat(value))
	e.b.WriteByte('\n')
}

// String renders the exposition payload.
func (e *Exposition) String() string { return e.b.String() }

func formatFloat(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// escapeLabel escapes backslash and newline; the %q in sampleLine handles
// the double quote.
func escapeLabel(s string) string {
	return strings.ReplaceAll(s, "\n", " ")
}

// Family is one parsed metric family of an exposition payload.
type Family struct {
	Name    string
	Type    string
	Help    string
	Samples []PromSample
}

// PromSample is one parsed sample line.
type PromSample struct {
	Name   string // full sample name, e.g. tc_request_duration_seconds_bucket
	Labels string // raw label text between the braces, "" if unlabeled
	Value  float64
}

var (
	metricNameRE = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	sampleRE     = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{([^}]*)\})?\s+(\S+)(\s+\d+)?$`)
)

// ParseExposition parses a Prometheus text-format payload and validates
// the invariants a scraper relies on: every family is declared at most
// once, every family with samples carries both HELP and TYPE (TYPE before
// the samples), sample names belong to a declared family (allowing the
// _bucket/_sum/_count series of histograms and summaries), and values
// parse as floats. It returns the families keyed by name.
func ParseExposition(text string) (map[string]*Family, error) {
	fams := make(map[string]*Family)
	get := func(name string) *Family {
		f, ok := fams[name]
		if !ok {
			f = &Family{Name: name}
			fams[name] = f
		}
		return f
	}
	for i, line := range strings.Split(text, "\n") {
		ln := i + 1
		line = strings.TrimRight(line, "\r")
		if line == "" {
			continue
		}
		switch {
		case strings.HasPrefix(line, "# HELP "):
			rest := strings.TrimPrefix(line, "# HELP ")
			name, help, _ := strings.Cut(rest, " ")
			if !metricNameRE.MatchString(name) {
				return nil, fmt.Errorf("line %d: bad metric name %q in HELP", ln, name)
			}
			f := get(name)
			if f.Help != "" {
				return nil, fmt.Errorf("line %d: duplicate HELP for family %s", ln, name)
			}
			if help == "" {
				return nil, fmt.Errorf("line %d: empty HELP text for family %s", ln, name)
			}
			f.Help = help
		case strings.HasPrefix(line, "# TYPE "):
			fields := strings.Fields(strings.TrimPrefix(line, "# TYPE "))
			if len(fields) != 2 {
				return nil, fmt.Errorf("line %d: malformed TYPE line", ln)
			}
			name, typ := fields[0], fields[1]
			switch typ {
			case "counter", "gauge", "histogram", "summary", "untyped":
			default:
				return nil, fmt.Errorf("line %d: unknown metric type %q", ln, typ)
			}
			f := get(name)
			if f.Type != "" {
				return nil, fmt.Errorf("line %d: duplicate TYPE for family %s", ln, name)
			}
			if len(f.Samples) > 0 {
				return nil, fmt.Errorf("line %d: TYPE for %s after its samples", ln, name)
			}
			f.Type = typ
		case strings.HasPrefix(line, "#"):
			// Free-form comment: legal, ignored.
		default:
			m := sampleRE.FindStringSubmatch(line)
			if m == nil {
				return nil, fmt.Errorf("line %d: unparseable sample line %q", ln, line)
			}
			name, labels, raw := m[1], m[3], m[4]
			value, err := parseSampleValue(raw)
			if err != nil {
				return nil, fmt.Errorf("line %d: bad sample value %q: %v", ln, raw, err)
			}
			fam, ok := sampleFamily(fams, name)
			if !ok {
				return nil, fmt.Errorf("line %d: sample %s has no declared family", ln, name)
			}
			fam.Samples = append(fam.Samples, PromSample{Name: name, Labels: labels, Value: value})
		}
	}
	for name, f := range fams {
		if f.Type == "" {
			return nil, fmt.Errorf("family %s has no TYPE", name)
		}
		if f.Help == "" {
			return nil, fmt.Errorf("family %s has no HELP", name)
		}
		if f.Type == "counter" {
			for _, s := range f.Samples {
				if s.Value < 0 || math.IsNaN(s.Value) {
					return nil, fmt.Errorf("counter %s has invalid value %v", name, s.Value)
				}
			}
		}
	}
	return fams, nil
}

// sampleFamily resolves a sample name to its family, allowing the
// _bucket/_sum/_count suffixes of histogram and summary families.
func sampleFamily(fams map[string]*Family, sample string) (*Family, bool) {
	if f, ok := fams[sample]; ok && f.Type != "" {
		return f, true
	}
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		base := strings.TrimSuffix(sample, suffix)
		if base == sample {
			continue
		}
		if f, ok := fams[base]; ok && (f.Type == "histogram" || f.Type == "summary") {
			return f, true
		}
	}
	return nil, false
}

func parseSampleValue(raw string) (float64, error) {
	switch raw {
	case "+Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	}
	return strconv.ParseFloat(raw, 64)
}

// CounterValue sums the sample values of a counter family — the scalar a
// monotonicity check compares across scrapes.
func CounterValue(fams map[string]*Family, name string) (float64, bool) {
	f, ok := fams[name]
	if !ok || f.Type != "counter" {
		return 0, false
	}
	var sum float64
	for _, s := range f.Samples {
		sum += s.Value
	}
	return sum, true
}
