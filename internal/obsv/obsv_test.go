package obsv

import (
	"encoding/json"
	"sync"
	"testing"
	"time"
)

func TestSpanTree(t *testing.T) {
	tr := NewTracer()
	root := tr.Start("query", KV("algorithm", "btc"))
	if root == nil {
		t.Fatal("Start returned nil on a live tracer")
	}
	restr := root.Child("restructure")
	restr.SetIO(IO{Reads: 10, Writes: 4})
	restr.Finish()
	comp := root.Child("compute")
	comp.SetIO(IO{Reads: 7, Writes: 3, Hits: 100, Misses: 10, Evicts: 6})
	src := comp.Child("source", KV("node", int32(5)))
	src.SetIO(IO{Reads: 2})
	src.Finish()
	comp.Finish()
	root.Finish()

	recs := tr.Records()
	if len(recs) != 1 {
		t.Fatalf("got %d roots, want 1", len(recs))
	}
	r := recs[0]
	if r.Name != "query" || r.Attrs["algorithm"] != "btc" {
		t.Fatalf("bad root record %+v", r)
	}
	if len(r.Children) != 2 {
		t.Fatalf("got %d children, want 2", len(r.Children))
	}
	sum := r.SumIO("restructure", "compute")
	want := IO{Reads: 17, Writes: 7, Hits: 100, Misses: 10, Evicts: 6}
	if sum != want {
		t.Fatalf("SumIO = %+v, want %+v", sum, want)
	}
	if got := sum.Total(); got != 24 {
		t.Fatalf("Total = %d, want 24", got)
	}
	// Nested spans are excluded from a name-filtered sum unless named.
	if s := r.SumIO("source"); (s != IO{Reads: 2}) {
		t.Fatalf("source SumIO = %+v", s)
	}

	// The records marshal cleanly (the tcquery -trace / /debug/traces shape).
	if _, err := json.Marshal(recs); err != nil {
		t.Fatalf("marshal: %v", err)
	}
}

// TestNilSafety pins the zero-cost-when-disabled contract: every method is
// a no-op on nil receivers, so call sites need no guards.
func TestNilSafety(t *testing.T) {
	var tr *Tracer
	s := tr.Start("query")
	if s != nil {
		t.Fatal("nil tracer started a span")
	}
	c := s.Child("phase", KV("k", 1))
	if c != nil {
		t.Fatal("nil span produced a child")
	}
	s.SetIO(IO{Reads: 1})
	s.AddIO(IO{Writes: 1})
	s.Annotate(KV("a", "b"))
	s.Finish()
	if rec := s.Record(); rec.Name != "" {
		t.Fatalf("nil span record = %+v", rec)
	}
	if tr.Records() != nil || tr.Dropped() != 0 {
		t.Fatal("nil tracer reported state")
	}
}

func TestSpanCap(t *testing.T) {
	tr := NewTracer()
	root := tr.Start("query")
	made := 1
	for i := 0; i < DefaultMaxSpans+10; i++ {
		if root.Child("source") != nil {
			made++
		}
	}
	if made != DefaultMaxSpans {
		t.Fatalf("made %d spans, want %d", made, DefaultMaxSpans)
	}
	if d := tr.Dropped(); d != 11 {
		t.Fatalf("dropped = %d, want 11", d)
	}
}

// TestConcurrentChildren exercises parallel workers hanging spans under one
// parent, the shape intra-query source parallelism produces.
func TestConcurrentChildren(t *testing.T) {
	tr := NewTracer()
	root := tr.Start("query")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ws := root.Child("worker", KV("worker", w))
			for i := 0; i < 16; i++ {
				c := ws.Child("compute")
				c.AddIO(IO{Reads: 1})
				c.Finish()
			}
			ws.Finish()
		}(w)
	}
	wg.Wait()
	root.Finish()
	rec := tr.Records()[0]
	if len(rec.Children) != 8 {
		t.Fatalf("got %d workers, want 8", len(rec.Children))
	}
	if sum := rec.SumIO("compute"); sum.Reads != 8*16 {
		t.Fatalf("summed reads = %d, want %d", sum.Reads, 8*16)
	}
}

func TestOpenSpanReportsElapsed(t *testing.T) {
	tr := NewTracer()
	s := tr.Start("query")
	time.Sleep(time.Millisecond)
	if rec := s.Record(); rec.DurationMS <= 0 {
		t.Fatalf("open span duration = %v, want > 0", rec.DurationMS)
	}
	s.Finish()
	rec := s.Record()
	time.Sleep(time.Millisecond)
	if again := s.Record(); again.DurationMS != rec.DurationMS {
		t.Fatal("finished span duration not frozen")
	}
}
