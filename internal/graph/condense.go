package graph

import (
	"fmt"

	"tcstudy/internal/bitset"
)

// Condensation support. The paper restricts its study to acyclic graphs on
// the standard ground (Section 1) that a cyclic graph's strongly connected
// components can be merged cheaply into an acyclic condensation graph
// before closure computation. This file supplies that preprocessing so the
// library handles arbitrary directed graphs end to end.

// Condensation maps a directed graph onto its DAG of strongly connected
// components.
type Condensation struct {
	// DAG is the condensation graph; its nodes are component numbers 1..K.
	DAG *Graph
	// Component[v] is the DAG node that original node v belongs to
	// (index 0 unused).
	Component []int32
	// Members[c] lists the original nodes of component c (index 0 unused).
	Members [][]int32
}

// tarjanComponents is the iterative Tarjan SCC core shared by Condense and
// SCC: children(v) yields v's successors; comp[v] is v's component,
// numbered 1..nComp in reverse topological discovery order (for an arc
// u→v across components, comp[v] < comp[u]).
func tarjanComponents(n int, children func(int32) []int32) (comp []int32, nComp int32) {
	index := make([]int32, n+1) // 0 = unvisited; else discovery index+1
	lowlink := make([]int32, n+1)
	onStack := make([]bool, n+1)
	comp = make([]int32, n+1)
	var tarjanStack []int32
	var next int32 = 1

	type frame struct {
		node  int32
		child int
	}
	var stack []frame

	visit := func(root int32) {
		index[root] = next
		lowlink[root] = next
		next++
		tarjanStack = append(tarjanStack, root)
		onStack[root] = true
		stack = append(stack, frame{node: root})
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			v := f.node
			if ch := children(v); f.child < len(ch) {
				c := ch[f.child]
				f.child++
				if index[c] == 0 {
					index[c] = next
					lowlink[c] = next
					next++
					tarjanStack = append(tarjanStack, c)
					onStack[c] = true
					stack = append(stack, frame{node: c})
				} else if onStack[c] && index[c] < lowlink[v] {
					lowlink[v] = index[c]
				}
				continue
			}
			// Post-visit: pop a complete component if v is a root.
			if lowlink[v] == index[v] {
				nComp++
				for {
					w := tarjanStack[len(tarjanStack)-1]
					tarjanStack = tarjanStack[:len(tarjanStack)-1]
					onStack[w] = false
					comp[w] = nComp
					if w == v {
						break
					}
				}
			}
			stack = stack[:len(stack)-1]
			if len(stack) > 0 {
				p := stack[len(stack)-1].node
				if lowlink[v] < lowlink[p] {
					lowlink[p] = lowlink[v]
				}
			}
		}
	}
	for v := int32(1); v <= int32(n); v++ {
		if index[v] == 0 {
			visit(v)
		}
	}
	return comp, nComp
}

// SCC computes the strongly connected components over nodes 1..n directly
// from an arc list, without materializing a Graph (no per-node sorting or
// deduplication — duplicate arcs and self-arcs are harmless). comp[v] is
// v's component, numbered 1..k in reverse topological order. Arcs
// mentioning nodes outside 1..n cause a panic, as in New.
func SCC(n int, arcs []Arc) (comp []int32, k int) {
	// Compact CSR adjacency: one counting pass, one fill pass.
	off := make([]int32, n+2)
	for _, a := range arcs {
		if a.From < 1 || a.From > int32(n) || a.To < 1 || a.To > int32(n) {
			panic(fmt.Sprintf("graph: arc (%d,%d) outside 1..%d", a.From, a.To, n))
		}
		off[a.From+1]++
	}
	for v := 1; v <= n; v++ {
		off[v+1] += off[v]
	}
	flat := make([]int32, len(arcs))
	cur := make([]int32, n+1)
	for _, a := range arcs {
		flat[off[a.From]+cur[a.From]] = a.To
		cur[a.From]++
	}
	c, nc := tarjanComponents(n, func(v int32) []int32 {
		return flat[off[v]:off[v+1]]
	})
	return c, int(nc)
}

// Condense computes the strongly connected components of g with Tarjan's
// algorithm (iterative, so recursion depth is not a limit) and returns the
// condensation. Components are numbered in reverse topological discovery
// order and the returned DAG is acyclic by construction; self-arcs and
// duplicate inter-component arcs are dropped.
func (g *Graph) Condense() *Condensation {
	n := g.n
	comp, nComp := tarjanComponents(n, g.Children)

	members := make([][]int32, nComp+1)
	for v := int32(1); v <= int32(n); v++ {
		members[comp[v]] = append(members[comp[v]], v)
	}
	var arcs []Arc
	for v := int32(1); v <= int32(n); v++ {
		for _, c := range g.adj[v] {
			if comp[v] != comp[c] {
				arcs = append(arcs, Arc{comp[v], comp[c]})
			}
		}
	}
	return &Condensation{
		DAG:       New(int(nComp), arcs),
		Component: comp,
		Members:   members,
	}
}

// ExpandClosure translates a closure over condensation components back to
// the original node space: node u reaches node v iff comp(u) reaches
// comp(v) in the DAG closure, or they share a non-trivial component.
// succ is the DAG closure as returned by Closure on the condensation DAG.
// The result maps each original node to its successors (unsorted).
func (c *Condensation) ExpandClosure(succ []*bitset.Set) [][]int32 {
	n := len(c.Component) - 1
	out := make([][]int32, n+1)
	for u := int32(1); u <= int32(n); u++ {
		cu := c.Component[u]
		var res []int32
		// Nodes in the same (cyclic) component are mutual successors.
		if len(c.Members[cu]) > 1 {
			res = append(res, c.Members[cu]...)
		}
		succ[cu].ForEach(func(cv int32) {
			res = append(res, c.Members[cv]...)
		})
		out[u] = res
	}
	return out
}
