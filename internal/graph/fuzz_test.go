package graph

import (
	"testing"
)

// FuzzCondense decodes an arbitrary directed graph (cycles included) from
// fuzz input, condenses it, and checks the structural invariants: the
// condensation is acyclic, components partition the nodes, and every
// original arc maps to a same-component pair or a condensation arc.
func FuzzCondense(f *testing.F) {
	f.Add([]byte{1, 2, 2, 3, 3, 1})
	f.Add([]byte{1, 1, 2, 2})
	f.Add([]byte{5, 1, 4, 2, 3, 3, 2, 4, 1, 5, 1, 3, 3, 5})

	f.Fuzz(func(t *testing.T, raw []byte) {
		const n = 12
		var arcs []Arc
		for i := 0; i+1 < len(raw); i += 2 {
			from := int32(raw[i]%n) + 1
			to := int32(raw[i+1]%n) + 1
			if from != to {
				arcs = append(arcs, Arc{From: from, To: to})
			}
		}
		g := New(n, arcs)
		c := g.Condense()

		if _, err := c.DAG.TopoSort(); err != nil {
			t.Fatalf("condensation cyclic: %v", err)
		}
		// Components partition 1..n.
		seen := map[int32]bool{}
		for comp := int32(1); comp <= int32(c.DAG.N()); comp++ {
			for _, v := range c.Members[comp] {
				if seen[v] {
					t.Fatalf("node %d in two components", v)
				}
				seen[v] = true
				if c.Component[v] != comp {
					t.Fatalf("membership inconsistent for node %d", v)
				}
			}
		}
		if len(seen) != n {
			t.Fatalf("components cover %d of %d nodes", len(seen), n)
		}
		// Arc preservation.
		dagArc := map[Arc]bool{}
		for _, a := range c.DAG.Arcs() {
			dagArc[a] = true
		}
		for _, a := range g.Arcs() {
			cf, ct := c.Component[a.From], c.Component[a.To]
			if cf == ct {
				continue
			}
			if !dagArc[Arc{From: cf, To: ct}] {
				t.Fatalf("arc (%d,%d) lost in condensation", a.From, a.To)
			}
		}
	})
}

// FuzzClosureReductionDuality checks TC(TR(G)) = TC(G) on fuzz-generated
// DAGs (arcs forced forward to guarantee acyclicity).
func FuzzClosureReductionDuality(f *testing.F) {
	f.Add([]byte{1, 2, 2, 3, 1, 3})
	f.Add([]byte{0, 9, 3, 4, 4, 9, 0, 1})

	f.Fuzz(func(t *testing.T, raw []byte) {
		const n = 10
		var arcs []Arc
		for i := 0; i+1 < len(raw); i += 2 {
			a := int32(raw[i]%n) + 1
			b := int32(raw[i+1]%n) + 1
			if a == b {
				continue
			}
			if a > b {
				a, b = b, a
			}
			arcs = append(arcs, Arc{From: a, To: b})
		}
		g := New(n, arcs)
		tr, redundant, err := g.Reduction()
		if err != nil {
			t.Fatal(err)
		}
		a, err := g.Closure()
		if err != nil {
			t.Fatal(err)
		}
		b, err := tr.Closure()
		if err != nil {
			t.Fatal(err)
		}
		for v := 1; v <= n; v++ {
			if !a[v].Equal(b[v]) {
				t.Fatalf("closure changed by reduction at node %d", v)
			}
		}
		// No irredundant arc may be dropped: count consistency.
		kept := 0
		for _, arc := range g.Arcs() {
			if !redundant(arc) {
				kept++
			}
		}
		if kept != tr.NumArcs() {
			t.Fatalf("reduction kept %d arcs, predicate says %d", tr.NumArcs(), kept)
		}
	})
}
