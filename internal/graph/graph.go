// Package graph provides the in-memory graph model and analytics of the
// study: topological sorting, node levels and arc locality, transitive
// reduction, the rectangle model (height and width) of Section 5.3, a
// reference transitive closure used to validate the disk-based algorithms,
// and strongly-connected-component condensation (the standard preprocessing
// for cyclic inputs the paper cites in its introduction).
//
// Nodes are numbered 1..N; 0 is never a node.
package graph

import (
	"fmt"
	"sort"

	"tcstudy/internal/bitset"
)

// Arc is a directed edge.
type Arc struct {
	From, To int32
}

// Graph is an immutable in-memory directed graph in adjacency-list form.
// Children lists are sorted ascending and free of duplicates.
type Graph struct {
	n   int
	adj [][]int32
}

// New builds a graph over nodes 1..n from arcs, sorting children and
// removing duplicate arcs (the paper's generator eliminates duplicates).
// Arcs mentioning nodes outside 1..n cause a panic: they indicate a bug in
// the caller, not an input condition.
func New(n int, arcs []Arc) *Graph {
	g := &Graph{n: n, adj: make([][]int32, n+1)}
	for _, a := range arcs {
		if a.From < 1 || a.From > int32(n) || a.To < 1 || a.To > int32(n) {
			panic(fmt.Sprintf("graph: arc (%d,%d) outside 1..%d", a.From, a.To, n))
		}
		g.adj[a.From] = append(g.adj[a.From], a.To)
	}
	for i := 1; i <= n; i++ {
		ch := g.adj[i]
		sort.Slice(ch, func(a, b int) bool { return ch[a] < ch[b] })
		out := ch[:0]
		for j, c := range ch {
			if j == 0 || c != ch[j-1] {
				out = append(out, c)
			}
		}
		g.adj[i] = out
	}
	return g
}

// N reports the number of nodes.
func (g *Graph) N() int { return g.n }

// Children returns the sorted immediate successors of node i. The slice is
// shared; callers must not modify it.
func (g *Graph) Children(i int32) []int32 { return g.adj[i] }

// NumArcs reports the number of (distinct) arcs.
func (g *Graph) NumArcs() int {
	n := 0
	for i := 1; i <= g.n; i++ {
		n += len(g.adj[i])
	}
	return n
}

// Arcs returns all arcs in (From, To) order.
func (g *Graph) Arcs() []Arc {
	out := make([]Arc, 0, g.NumArcs())
	for i := int32(1); i <= int32(g.n); i++ {
		for _, c := range g.adj[i] {
			out = append(out, Arc{i, c})
		}
	}
	return out
}

// Reverse returns the arc-reversed graph.
func (g *Graph) Reverse() *Graph {
	arcs := g.Arcs()
	for i := range arcs {
		arcs[i].From, arcs[i].To = arcs[i].To, arcs[i].From
	}
	return New(g.n, arcs)
}

// ErrCyclic is reported by TopoSort on cyclic input.
type ErrCyclic struct{ Node int32 }

func (e ErrCyclic) Error() string {
	return fmt.Sprintf("graph: cycle through node %d", e.Node)
}

// TopoSort returns the nodes in a topological order (every arc goes from an
// earlier to a later position). It fails with ErrCyclic on cyclic graphs.
// The order is the reverse DFS postorder, the order the restructuring phase
// produces (Section 4).
func (g *Graph) TopoSort() ([]int32, error) {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make([]uint8, g.n+1)
	order := make([]int32, 0, g.n)
	// Iterative DFS with an explicit stack of (node, child index) frames so
	// deep graphs (height up to n) cannot overflow the goroutine stack.
	type frame struct {
		node int32
		next int
	}
	var stack []frame
	for s := int32(1); s <= int32(g.n); s++ {
		if color[s] != white {
			continue
		}
		color[s] = gray
		stack = append(stack, frame{node: s})
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			if f.next < len(g.adj[f.node]) {
				c := g.adj[f.node][f.next]
				f.next++
				switch color[c] {
				case white:
					color[c] = gray
					stack = append(stack, frame{node: c})
				case gray:
					return nil, ErrCyclic{Node: c}
				}
				continue
			}
			color[f.node] = black
			order = append(order, f.node)
			stack = stack[:len(stack)-1]
		}
	}
	// order is postorder (descendants first); reverse it.
	for i, j := 0, len(order)-1; i < j; i, j = i+1, j-1 {
		order[i], order[j] = order[j], order[i]
	}
	return order, nil
}

// Levels computes the node level of every node per Section 5.3:
// level(i) = 1 for sinks, else 1 + max over children of level(child).
// The graph must be acyclic. Index 0 of the result is unused.
func (g *Graph) Levels() ([]int32, error) {
	order, err := g.TopoSort()
	if err != nil {
		return nil, err
	}
	level := make([]int32, g.n+1)
	// Walk in reverse topological order so children are leveled first.
	for i := len(order) - 1; i >= 0; i-- {
		v := order[i]
		best := int32(0)
		for _, c := range g.adj[v] {
			if level[c] > best {
				best = level[c]
			}
		}
		level[v] = best + 1
	}
	return level, nil
}

// Closure computes the reference transitive closure as per-node successor
// bitsets. Used for validation and for Table 2's |TC(G)| column.
func (g *Graph) Closure() ([]*bitset.Set, error) {
	order, err := g.TopoSort()
	if err != nil {
		return nil, err
	}
	succ := make([]*bitset.Set, g.n+1)
	for i := len(order) - 1; i >= 0; i-- {
		v := order[i]
		s := bitset.New(g.n + 1)
		for _, c := range g.adj[v] {
			s.Add(c)
			s.Or(succ[c])
		}
		succ[v] = s
	}
	return succ, nil
}

// ClosureSize reports the number of tuples in the transitive closure.
func (g *Graph) ClosureSize() (int64, error) {
	succ, err := g.Closure()
	if err != nil {
		return 0, err
	}
	var n int64
	for i := 1; i <= g.n; i++ {
		n += int64(succ[i].Count())
	}
	return n, nil
}

// ClosureGraph materializes the transitive closure as a graph.
func (g *Graph) ClosureGraph() (*Graph, error) {
	succ, err := g.Closure()
	if err != nil {
		return nil, err
	}
	var arcs []Arc
	for i := int32(1); i <= int32(g.n); i++ {
		succ[i].ForEach(func(v int32) { arcs = append(arcs, Arc{i, v}) })
	}
	return New(g.n, arcs), nil
}

// Reduction computes the transitive reduction: the unique minimal subgraph
// of an acyclic G with the same closure (Section 5.3, citing Aho et al.).
// It returns the reduction and a redundancy predicate over arcs.
func (g *Graph) Reduction() (*Graph, func(Arc) bool, error) {
	succ, err := g.Closure()
	if err != nil {
		return nil, nil, err
	}
	// Arc (i,j) is redundant iff some other child c of i reaches j.
	redundant := func(a Arc) bool {
		for _, c := range g.adj[a.From] {
			if c != a.To && succ[c].Has(a.To) {
				return true
			}
		}
		return false
	}
	var arcs []Arc
	for _, a := range g.Arcs() {
		if !redundant(a) {
			arcs = append(arcs, a)
		}
	}
	return New(g.n, arcs), redundant, nil
}

// MagicGraph returns the subgraph of nodes and arcs reachable from the
// source set (the "magic" subgraph identified in the restructuring phase
// for selection queries, Section 4), as a graph over the same node space.
func (g *Graph) MagicGraph(sources []int32) *Graph {
	reach := bitset.New(g.n + 1)
	var stack []int32
	for _, s := range sources {
		if !reach.TestAndAdd(s) {
			stack = append(stack, s)
		}
	}
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, c := range g.adj[v] {
			if !reach.TestAndAdd(c) {
				stack = append(stack, c)
			}
		}
	}
	var arcs []Arc
	reach.ForEach(func(v int32) {
		for _, c := range g.adj[v] {
			arcs = append(arcs, Arc{v, c})
		}
	})
	return New(g.n, arcs)
}

// Reachable reports the nodes reachable from the sources (excluding the
// sources themselves unless re-reached).
func (g *Graph) Reachable(sources []int32) *bitset.Set {
	reach := bitset.New(g.n + 1)
	var stack []int32
	for _, s := range sources {
		stack = append(stack, s)
	}
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, c := range g.adj[v] {
			if !reach.TestAndAdd(c) {
				stack = append(stack, c)
			}
		}
	}
	return reach
}
