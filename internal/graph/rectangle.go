package graph

// The rectangle model of Section 5.3 maps a DAG G to a rectangle of height
// H(G) and width W(G):
//
//	H(G) = mean node level over all nodes
//	W(G) = |G| / H(G)
//
// (The printed formulas are illegible in the available copy of the paper;
// this reconstruction reproduces every H/W pair printed in Table 2 and
// satisfies both halves of Theorem 1 — see DESIGN.md.)
//
// Intuitively H measures how deep paths run, W how much redundancy the arc
// set carries: Theorem 1 shows H is invariant under transitive reduction
// and closure while W(TR(G)) <= W(G) <= W(TC(G)).

// Rectangle is the rectangle-model characterization of a DAG.
type Rectangle struct {
	H float64
	W float64
}

// RectangleModel computes H(G) and W(G). Per Theorem 2, the statistics
// need only the node levels, which a single DFS traversal provides; the
// engine computes them during the restructuring phase at no extra I/O.
func (g *Graph) RectangleModel() (Rectangle, error) {
	levels, err := g.Levels()
	if err != nil {
		return Rectangle{}, err
	}
	return rectangleFromLevels(levels, g.n, g.NumArcs()), nil
}

func rectangleFromLevels(levels []int32, n, arcs int) Rectangle {
	if n == 0 {
		return Rectangle{}
	}
	var sum int64
	for i := 1; i <= n; i++ {
		sum += int64(levels[i])
	}
	h := float64(sum) / float64(n)
	w := 0.0
	if h > 0 {
		w = float64(arcs) / h
	}
	return Rectangle{H: h, W: w}
}

// Stats is one row of Table 2: the characterization of a study graph.
type Stats struct {
	Arcs         int     // |G|
	MaxLevel     int32   // maximum node level
	H            float64 // rectangle-model height
	W            float64 // rectangle-model width
	AvgLocality  float64 // average locality over all arcs
	AvgIrredLoc  float64 // average locality over irredundant arcs
	IrredundArcs int     // number of irredundant arcs (|TR(G)|)
	ClosureSize  int64   // |TC(G)|
}

// ComputeStats derives the full Table 2 characterization of the graph.
func (g *Graph) ComputeStats() (Stats, error) {
	levels, err := g.Levels()
	if err != nil {
		return Stats{}, err
	}
	_, redundant, err := g.Reduction()
	if err != nil {
		return Stats{}, err
	}
	tc, err := g.ClosureSize()
	if err != nil {
		return Stats{}, err
	}
	st := Stats{Arcs: g.NumArcs(), ClosureSize: tc}
	for i := 1; i <= g.n; i++ {
		if levels[i] > st.MaxLevel {
			st.MaxLevel = levels[i]
		}
	}
	rect := rectangleFromLevels(levels, g.n, st.Arcs)
	st.H, st.W = rect.H, rect.W
	var sumAll, sumIrr int64
	var nIrr int
	for _, a := range g.Arcs() {
		loc := int64(levels[a.From] - levels[a.To])
		sumAll += loc
		if !redundant(a) {
			sumIrr += loc
			nIrr++
		}
	}
	if st.Arcs > 0 {
		st.AvgLocality = float64(sumAll) / float64(st.Arcs)
	}
	if nIrr > 0 {
		st.AvgIrredLoc = float64(sumIrr) / float64(nIrr)
	}
	st.IrredundArcs = nIrr
	return st, nil
}

// ArcLocality returns level(from) - level(to) for one arc given the levels
// slice (Section 5.3: the "distance" an arc spans, which predicts whether
// the child's successor list is still buffered when the arc is processed).
func ArcLocality(levels []int32, a Arc) int32 { return levels[a.From] - levels[a.To] }
