package graph

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

// paperGraph is the example DAG of Figure 1(a) in the paper, as far as its
// arcs can be read from the text: d has children f and j; f reaches j via g;
// g has children j and k; j has child l; k has children l and m. Node IDs:
// a=1 b=2 d=3 e=4 f=5 g=6 j=7 k=8 l=9 m=10.
func paperGraph() *Graph {
	return New(10, []Arc{
		{1, 3},         // a -> d
		{3, 5}, {3, 7}, // d -> f, d -> j (the marked arc)
		{5, 6},         // f -> g
		{6, 7}, {6, 8}, // g -> j, g -> k
		{7, 9},          // j -> l
		{8, 9}, {8, 10}, // k -> l, k -> m
		{2, 4}, // b -> e
	})
}

func TestNewSortsAndDedups(t *testing.T) {
	g := New(4, []Arc{{1, 3}, {1, 2}, {1, 3}, {2, 4}})
	ch := g.Children(1)
	if len(ch) != 2 || ch[0] != 2 || ch[1] != 3 {
		t.Fatalf("Children(1) = %v", ch)
	}
	if g.NumArcs() != 3 {
		t.Fatalf("NumArcs = %d, want 3", g.NumArcs())
	}
}

func TestNewPanicsOnOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for out-of-range arc")
		}
	}()
	New(3, []Arc{{1, 4}})
}

func TestTopoSort(t *testing.T) {
	g := paperGraph()
	order, err := g.TopoSort()
	if err != nil {
		t.Fatal(err)
	}
	if len(order) != 10 {
		t.Fatalf("order has %d nodes", len(order))
	}
	pos := make(map[int32]int)
	for i, v := range order {
		pos[v] = i
	}
	for _, a := range g.Arcs() {
		if pos[a.From] >= pos[a.To] {
			t.Fatalf("arc (%d,%d) violates topological order", a.From, a.To)
		}
	}
}

func TestTopoSortCyclic(t *testing.T) {
	g := New(3, []Arc{{1, 2}, {2, 3}, {3, 1}})
	_, err := g.TopoSort()
	var ce ErrCyclic
	if !errors.As(err, &ce) {
		t.Fatalf("err = %v, want ErrCyclic", err)
	}
}

func TestTopoSortDeepGraphNoOverflow(t *testing.T) {
	// A 200k-node chain would overflow a recursive DFS.
	n := 200000
	arcs := make([]Arc, 0, n-1)
	for i := 1; i < n; i++ {
		arcs = append(arcs, Arc{int32(i), int32(i + 1)})
	}
	g := New(n, arcs)
	if _, err := g.TopoSort(); err != nil {
		t.Fatal(err)
	}
	lv, err := g.Levels()
	if err != nil {
		t.Fatal(err)
	}
	if lv[1] != int32(n) {
		t.Fatalf("level(head of chain) = %d, want %d", lv[1], n)
	}
}

func TestLevels(t *testing.T) {
	g := paperGraph()
	lv, err := g.Levels()
	if err != nil {
		t.Fatal(err)
	}
	// Sinks l(9), m(10), e(4) have level 1.
	for _, sink := range []int32{9, 10, 4} {
		if lv[sink] != 1 {
			t.Fatalf("level(%d) = %d, want 1", sink, lv[sink])
		}
	}
	// a(1) -> d -> f -> g -> j -> l is the longest path: level(a) = 6.
	if lv[1] != 6 {
		t.Fatalf("level(a) = %d, want 6", lv[1])
	}
	if lv[7] != 2 { // j -> l
		t.Fatalf("level(j) = %d, want 2", lv[7])
	}
}

func TestClosureAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		n := rng.Intn(40) + 2
		var arcs []Arc
		for i := 1; i < n; i++ {
			for j := i + 1; j <= n; j++ {
				if rng.Intn(4) == 0 {
					arcs = append(arcs, Arc{int32(i), int32(j)})
				}
			}
		}
		g := New(n, arcs)
		succ, err := g.Closure()
		if err != nil {
			t.Fatal(err)
		}
		// Brute force: repeated relaxation.
		reach := make([][]bool, n+1)
		for i := range reach {
			reach[i] = make([]bool, n+1)
		}
		for _, a := range arcs {
			reach[a.From][a.To] = true
		}
		for changed := true; changed; {
			changed = false
			for i := 1; i <= n; i++ {
				for j := 1; j <= n; j++ {
					if !reach[i][j] {
						continue
					}
					for k := 1; k <= n; k++ {
						if reach[j][k] && !reach[i][k] {
							reach[i][k] = true
							changed = true
						}
					}
				}
			}
		}
		for i := 1; i <= n; i++ {
			for j := 1; j <= n; j++ {
				if reach[i][j] != succ[i].Has(int32(j)) {
					t.Fatalf("n=%d: closure disagrees at (%d,%d)", n, i, j)
				}
			}
		}
	}
}

func TestReductionMinimalAndClosurePreserving(t *testing.T) {
	g := paperGraph()
	tr, redundant, err := g.Reduction()
	if err != nil {
		t.Fatal(err)
	}
	// The arc (d,j) = (3,7) is redundant: d -> f -> g -> j.
	if !redundant(Arc{3, 7}) {
		t.Fatal("(d,j) not detected as redundant")
	}
	if redundant(Arc{3, 5}) {
		t.Fatal("(d,f) wrongly redundant")
	}
	if tr.NumArcs() != g.NumArcs()-1 {
		t.Fatalf("reduction has %d arcs, want %d", tr.NumArcs(), g.NumArcs()-1)
	}
	// Closure preserved.
	a, _ := g.Closure()
	b, _ := tr.Closure()
	for i := 1; i <= g.N(); i++ {
		if !a[i].Equal(b[i]) {
			t.Fatalf("closure changed at node %d", i)
		}
	}
}

func TestRectangleModelTheorem1(t *testing.T) {
	// On random DAGs: H(G) = H(TR) = H(TC); W(TR) <= W(G) <= W(TC).
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(30) + 3
		var arcs []Arc
		for i := 1; i < n; i++ {
			for j := i + 1; j <= n; j++ {
				if rng.Intn(3) == 0 {
					arcs = append(arcs, Arc{int32(i), int32(j)})
				}
			}
		}
		g := New(n, arcs)
		if g.NumArcs() == 0 {
			return true
		}
		tr, _, err := g.Reduction()
		if err != nil {
			return false
		}
		tc, err := g.ClosureGraph()
		if err != nil {
			return false
		}
		rg, _ := g.RectangleModel()
		rtr, _ := tr.RectangleModel()
		rtc, _ := tc.RectangleModel()
		const eps = 1e-9
		if abs(rg.H-rtr.H) > eps || abs(rg.H-rtc.H) > eps {
			return false
		}
		return rtr.W <= rg.W+eps && rg.W <= rtc.W+eps
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func TestClosureIdempotent(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(25) + 2
		var arcs []Arc
		for i := 1; i < n; i++ {
			for j := i + 1; j <= n; j++ {
				if rng.Intn(3) == 0 {
					arcs = append(arcs, Arc{int32(i), int32(j)})
				}
			}
		}
		g := New(n, arcs)
		tc, err := g.ClosureGraph()
		if err != nil {
			return false
		}
		tc2, err := tc.ClosureGraph()
		if err != nil {
			return false
		}
		return tc.NumArcs() == tc2.NumArcs()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestClosureOfReductionEqualsClosure(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(25) + 2
		var arcs []Arc
		for i := 1; i < n; i++ {
			for j := i + 1; j <= n; j++ {
				if rng.Intn(3) == 0 {
					arcs = append(arcs, Arc{int32(i), int32(j)})
				}
			}
		}
		g := New(n, arcs)
		tr, _, err := g.Reduction()
		if err != nil {
			return false
		}
		a, _ := g.Closure()
		b, _ := tr.Closure()
		for i := 1; i <= n; i++ {
			if !a[i].Equal(b[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestMagicGraph(t *testing.T) {
	g := paperGraph()
	// From source b=2 only e=4 is reachable.
	m := g.MagicGraph([]int32{2})
	if m.NumArcs() != 1 {
		t.Fatalf("magic graph of {b} has %d arcs, want 1", m.NumArcs())
	}
	// From {a,b,e} everything except nothing... a reaches d,f,g,j,k,l,m.
	m2 := g.MagicGraph([]int32{1, 2, 4})
	if m2.NumArcs() != g.NumArcs() {
		t.Fatalf("magic graph of {a,b,e} has %d arcs, want %d", m2.NumArcs(), g.NumArcs())
	}
}

func TestReachable(t *testing.T) {
	g := paperGraph()
	r := g.Reachable([]int32{3}) // d reaches f,g,j,k,l,m
	want := []int32{5, 6, 7, 8, 9, 10}
	if r.Count() != len(want) {
		t.Fatalf("reachable(d) count = %d, want %d", r.Count(), len(want))
	}
	for _, v := range want {
		if !r.Has(v) {
			t.Fatalf("reachable(d) missing %d", v)
		}
	}
}

func TestReverse(t *testing.T) {
	g := paperGraph()
	rev := g.Reverse()
	if rev.NumArcs() != g.NumArcs() {
		t.Fatal("reverse changed arc count")
	}
	ch := rev.Children(9) // predecessors of l: j, k
	if len(ch) != 2 || ch[0] != 7 || ch[1] != 8 {
		t.Fatalf("Reverse children of l = %v", ch)
	}
}

func TestCondenseAcyclicIsIdentityShaped(t *testing.T) {
	g := paperGraph()
	c := g.Condense()
	if c.DAG.N() != g.N() {
		t.Fatalf("acyclic condensation has %d components, want %d", c.DAG.N(), g.N())
	}
	if c.DAG.NumArcs() != g.NumArcs() {
		t.Fatalf("acyclic condensation has %d arcs, want %d", c.DAG.NumArcs(), g.NumArcs())
	}
	if _, err := c.DAG.TopoSort(); err != nil {
		t.Fatalf("condensation not acyclic: %v", err)
	}
}

func TestCondenseCycle(t *testing.T) {
	// 1 <-> 2 -> 3 <-> 4, plus 3 -> 5.
	g := New(5, []Arc{{1, 2}, {2, 1}, {2, 3}, {3, 4}, {4, 3}, {3, 5}})
	c := g.Condense()
	if c.DAG.N() != 3 {
		t.Fatalf("components = %d, want 3", c.DAG.N())
	}
	if c.Component[1] != c.Component[2] || c.Component[3] != c.Component[4] {
		t.Fatal("cycle members in different components")
	}
	if c.Component[1] == c.Component[3] || c.Component[5] == c.Component[3] {
		t.Fatal("distinct components merged")
	}
	if _, err := c.DAG.TopoSort(); err != nil {
		t.Fatalf("condensation cyclic: %v", err)
	}
}

func TestCondensationClosureMatchesBruteForce(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(20) + 2
		var arcs []Arc
		for i := 1; i <= n; i++ {
			for j := 1; j <= n; j++ {
				if i != j && rng.Intn(6) == 0 {
					arcs = append(arcs, Arc{int32(i), int32(j)})
				}
			}
		}
		g := New(n, arcs)
		c := g.Condense()
		succ, err := c.DAG.Closure()
		if err != nil {
			return false
		}
		got := c.ExpandClosure(succ)
		// Brute force reachability on the cyclic graph.
		reach := make([][]bool, n+1)
		for i := range reach {
			reach[i] = make([]bool, n+1)
		}
		for _, a := range arcs {
			reach[a.From][a.To] = true
		}
		for changed := true; changed; {
			changed = false
			for i := 1; i <= n; i++ {
				for j := 1; j <= n; j++ {
					if !reach[i][j] {
						continue
					}
					for k := 1; k <= n; k++ {
						if reach[j][k] && !reach[i][k] {
							reach[i][k] = true
							changed = true
						}
					}
				}
			}
		}
		for u := 1; u <= n; u++ {
			set := map[int32]bool{}
			for _, v := range got[u] {
				set[v] = true
			}
			for v := 1; v <= n; v++ {
				if reach[u][v] != set[int32(v)] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestComputeStats(t *testing.T) {
	g := paperGraph()
	st, err := g.ComputeStats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Arcs != 10 {
		t.Fatalf("Arcs = %d", st.Arcs)
	}
	if st.MaxLevel != 6 {
		t.Fatalf("MaxLevel = %d, want 6", st.MaxLevel)
	}
	if st.IrredundArcs != 9 {
		t.Fatalf("IrredundArcs = %d, want 9", st.IrredundArcs)
	}
	// W = |G| / H and H > 0.
	if st.H <= 0 || abs(st.W-float64(st.Arcs)/st.H) > 1e-9 {
		t.Fatalf("rectangle model inconsistent: H=%v W=%v", st.H, st.W)
	}
	// Closure of the example graph: count via reference.
	tc, _ := g.ClosureSize()
	if st.ClosureSize != tc {
		t.Fatalf("ClosureSize = %d, want %d", st.ClosureSize, tc)
	}
	// Irredundant arcs have lower average locality than all arcs
	// (the redundant (d,j) spans levels 5 -> 2).
	if st.AvgIrredLoc > st.AvgLocality {
		t.Fatalf("irredundant locality %v > overall %v", st.AvgIrredLoc, st.AvgLocality)
	}
}

// TestLevelsMatchBruteForceLongestPath: level(v) is one plus the longest
// path length from v to any sink.
func TestLevelsMatchBruteForceLongestPath(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(25) + 2
		var arcs []Arc
		for i := 1; i < n; i++ {
			for j := i + 1; j <= n; j++ {
				if rng.Intn(3) == 0 {
					arcs = append(arcs, Arc{int32(i), int32(j)})
				}
			}
		}
		g := New(n, arcs)
		lv, err := g.Levels()
		if err != nil {
			return false
		}
		// Brute force longest path by memoized recursion.
		memo := make([]int32, n+1)
		var longest func(v int32) int32
		longest = func(v int32) int32 {
			if memo[v] != 0 {
				return memo[v]
			}
			best := int32(0)
			for _, c := range g.Children(v) {
				if d := longest(c); d > best {
					best = d
				}
			}
			memo[v] = best + 1
			return memo[v]
		}
		for v := int32(1); v <= int32(n); v++ {
			if lv[v] != longest(v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestMagicGraphIsReachabilityClosedSubgraph: the magic graph contains
// exactly the arcs whose tails are reachable (or are sources).
func TestMagicGraphProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(40) + 3
		var arcs []Arc
		for i := 1; i < n; i++ {
			for j := i + 1; j <= n; j++ {
				if rng.Intn(4) == 0 {
					arcs = append(arcs, Arc{int32(i), int32(j)})
				}
			}
		}
		g := New(n, arcs)
		sources := []int32{int32(rng.Intn(n) + 1), int32(rng.Intn(n) + 1)}
		m := g.MagicGraph(sources)
		inMagic := map[int32]bool{}
		for _, s := range sources {
			inMagic[s] = true
		}
		g.Reachable(sources).ForEach(func(v int32) { inMagic[v] = true })
		// Every magic arc's tail is a source or reachable; every arc of a
		// magic node is in the magic graph.
		magicArcs := map[Arc]bool{}
		for _, a := range m.Arcs() {
			magicArcs[a] = true
			if !inMagic[a.From] {
				return false
			}
		}
		for _, a := range g.Arcs() {
			if inMagic[a.From] && !magicArcs[a] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
