// Package relation implements the tuple-format storage of the input graph
// relation (Section 4 and 5.1 of the paper): 8-byte (key, value) tuples, 256
// per 2048-byte page, clustered (sorted) on the key attribute, with a sparse
// clustered index kept in memory.
//
// The forward representation stores arcs as (source, destination) clustered
// on source; the dual representation used by JKB2 stores the same arcs as
// (destination, source) clustered on destination. Both are instances of the
// same Relation type: Key is the clustering attribute, Val the other one.
package relation

import (
	"encoding/binary"
	"fmt"
	"sort"

	"tcstudy/internal/buffer"
	"tcstudy/internal/pagedisk"
)

// TuplesPerPage is the tuple capacity of a page: two 4-byte integers per
// tuple, 2048-byte pages (Section 5.1).
const TuplesPerPage = pagedisk.PageSize / 8

// Tuple is one arc of the stored graph. Key is the clustering attribute.
type Tuple struct {
	Key, Val int32
}

// Relation is an immutable relation stored on the simulated disk, clustered
// on Key, with an in-memory sparse index (first and last key of every page
// plus per-page tuple counts). The paper assumes a clustered index on the
// clustering attribute and does not charge I/O for index interior pages;
// we follow that model.
type Relation struct {
	file      pagedisk.FileID
	numPages  int
	count     []uint16 // tuples on each page
	firstKey  []int32  // smallest key on each page
	lastKey   []int32  // largest key on each page
	pageStart []int32  // global index of each page's first tuple
	nTuples   int
	maxNode   int32
}

// Build sorts tuples on (Key, Val), removes exact duplicates, writes them to
// a new file on disk, and returns the relation. Building bypasses the buffer
// pool and is excluded from measured I/O (the database pre-exists the
// query); callers reset disk stats afterwards via the harness.
func Build(disk pagedisk.Store, name string, tuples []Tuple) *Relation {
	ts := make([]Tuple, len(tuples))
	copy(ts, tuples)
	sort.Slice(ts, func(i, j int) bool {
		if ts[i].Key != ts[j].Key {
			return ts[i].Key < ts[j].Key
		}
		return ts[i].Val < ts[j].Val
	})
	// Duplicate-arc elimination, as done by the paper's graph generator.
	dedup := ts[:0]
	for i, t := range ts {
		if i == 0 || t != ts[i-1] {
			dedup = append(dedup, t)
		}
	}
	ts = dedup

	r := &Relation{file: disk.CreateFile(name), nTuples: len(ts)}
	var pg pagedisk.Page
	n := 0
	written := int32(0)
	flush := func() {
		if n == 0 {
			return
		}
		id, err := disk.Allocate(r.file)
		if err == nil {
			err = disk.Write(r.file, id, &pg)
		}
		if err != nil {
			// The in-memory disk only fails under injection, which is not
			// armed during setup.
			panic(fmt.Sprintf("relation: build write failed: %v", err))
		}
		r.count = append(r.count, uint16(n))
		r.pageStart = append(r.pageStart, written)
		written += int32(n)
		r.numPages++
		pg = pagedisk.Page{}
		n = 0
	}
	for _, t := range ts {
		if t.Key > r.maxNode {
			r.maxNode = t.Key
		}
		if t.Val > r.maxNode {
			r.maxNode = t.Val
		}
		if n == 0 {
			r.firstKey = append(r.firstKey, t.Key)
			r.lastKey = append(r.lastKey, t.Key)
		} else {
			r.lastKey[len(r.lastKey)-1] = t.Key
		}
		off := n * 8
		binary.LittleEndian.PutUint32(pg[off:], uint32(t.Key))
		binary.LittleEndian.PutUint32(pg[off+4:], uint32(t.Val))
		n++
		if n == TuplesPerPage {
			flush()
		}
	}
	flush()
	return r
}

// BuildInverse builds the dual representation: the same arcs with key and
// value swapped, clustered on the original value attribute. Used by JKB2.
func BuildInverse(disk pagedisk.Store, name string, tuples []Tuple) *Relation {
	inv := make([]Tuple, len(tuples))
	for i, t := range tuples {
		inv[i] = Tuple{Key: t.Val, Val: t.Key}
	}
	return Build(disk, name, inv)
}

// File returns the disk file holding the relation.
func (r *Relation) File() pagedisk.FileID { return r.file }

// NumPages reports the relation's size in pages.
func (r *Relation) NumPages() int { return r.numPages }

// NumTuples reports the number of (distinct) stored tuples.
func (r *Relation) NumTuples() int { return r.nTuples }

// MaxNode reports the largest node ID appearing in any tuple.
func (r *Relation) MaxNode() int32 { return r.maxNode }

func decode(pg *pagedisk.Page, i int) Tuple {
	off := i * 8
	return Tuple{
		Key: int32(binary.LittleEndian.Uint32(pg[off:])),
		Val: int32(binary.LittleEndian.Uint32(pg[off+4:])),
	}
}

// Scan reads the relation sequentially through the pool, invoking fn for
// every tuple. It stops early if fn returns false.
func (r *Relation) Scan(pool *buffer.Pool, fn func(Tuple) bool) error {
	for p := 0; p < r.numPages; p++ {
		h, err := pool.Get(r.file, pagedisk.PageID(p))
		if err != nil {
			return err
		}
		data := h.Data()
		n := int(r.count[p])
		stop := false
		for i := 0; i < n; i++ {
			if !fn(decode(data, i)) {
				stop = true
				break
			}
		}
		pool.Unpin(&h, false)
		if stop {
			return nil
		}
	}
	return nil
}

// firstPageFor returns the index of the first page that may contain key,
// using the in-memory sparse index, or numPages if no page can.
func (r *Relation) firstPageFor(key int32) int {
	return sort.Search(r.numPages, func(p int) bool { return r.lastKey[p] >= key })
}

// Probe reads, through the pool, every tuple whose Key equals key, calling
// fn for each Val. This is the clustered-index lookup used to walk the
// graph node by node; because the relation is clustered, a probe touches
// one page in the common case. It returns the values visited count.
func (r *Relation) Probe(pool *buffer.Pool, key int32, fn func(val int32) bool) (int, error) {
	visited := 0
	for p := r.firstPageFor(key); p < r.numPages; p++ {
		if r.firstKey[p] > key {
			break
		}
		h, err := pool.Get(r.file, pagedisk.PageID(p))
		if err != nil {
			return visited, err
		}
		data := h.Data()
		n := int(r.count[p])
		// Binary search for the first tuple with this key on the page.
		i := sort.Search(n, func(i int) bool { return decode(data, i).Key >= key })
		stop := false
		for ; i < n; i++ {
			t := decode(data, i)
			if t.Key != key {
				break
			}
			visited++
			if !fn(t.Val) {
				stop = true
				break
			}
		}
		pool.Unpin(&h, false)
		if stop {
			break
		}
	}
	return visited, nil
}

// Meta is the relation's in-memory catalog — the sparse clustered index
// and size counters — in a serializable form, used by database snapshots.
type Meta struct {
	File      pagedisk.FileID
	NumPages  int
	Count     []uint16
	FirstKey  []int32
	LastKey   []int32
	PageStart []int32
	NTuples   int
	MaxNode   int32
}

// Meta exports the relation's catalog.
func (r *Relation) Meta() Meta {
	return Meta{
		File:      r.file,
		NumPages:  r.numPages,
		Count:     r.count,
		FirstKey:  r.firstKey,
		LastKey:   r.lastKey,
		PageStart: r.pageStart,
		NTuples:   r.nTuples,
		MaxNode:   r.maxNode,
	}
}

// Restore reconstructs a relation from its catalog; the page data must
// already be present in the referenced disk file (e.g. via pagedisk.Load).
func Restore(m Meta) *Relation {
	return &Relation{
		file:      m.File,
		numPages:  m.NumPages,
		count:     m.Count,
		firstKey:  m.FirstKey,
		lastKey:   m.LastKey,
		pageStart: m.PageStart,
		nTuples:   m.NTuples,
		maxNode:   m.MaxNode,
	}
}

// PagesFor reports how many pages hold tuples with the given key; used by
// cost accounting in tests.
func (r *Relation) PagesFor(key int32) int {
	n := 0
	for p := r.firstPageFor(key); p < r.numPages; p++ {
		if r.firstKey[p] > key {
			break
		}
		n++
	}
	return n
}
