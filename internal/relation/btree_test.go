package relation

import (
	"math/rand"
	"testing"
)

func TestBTreeProbeMatchesSparseIndex(t *testing.T) {
	d := newDiskPool(t)
	rng := rand.New(rand.NewSource(21))
	var ts []Tuple
	for i := 0; i < 20000; i++ {
		ts = append(ts, Tuple{Key: int32(rng.Intn(3000) + 1), Val: int32(rng.Intn(3000) + 1)})
	}
	r := Build(d.disk, "rel", ts)
	bt, err := BuildBTree(d.disk, "rel-index", r)
	if err != nil {
		t.Fatal(err)
	}
	if bt.Levels() < 1 {
		t.Fatalf("tree has %d levels for %d pages", bt.Levels(), r.NumPages())
	}
	for key := int32(0); key <= 3001; key++ {
		var a, b []int32
		if _, err := r.Probe(d.pool, key, func(v int32) bool { a = append(a, v); return true }); err != nil {
			t.Fatal(err)
		}
		if _, err := r.ProbeIndexed(d.pool, bt, key, func(v int32) bool { b = append(b, v); return true }); err != nil {
			t.Fatal(err)
		}
		if len(a) != len(b) {
			t.Fatalf("key %d: sparse %d values, btree %d", key, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("key %d: value %d differs", key, i)
			}
		}
	}
}

func TestBTreeChargesInteriorIO(t *testing.T) {
	d := newDiskPool(t)
	var ts []Tuple
	for i := int32(1); i <= 2000; i++ {
		ts = append(ts, Tuple{Key: i, Val: i + 1}, Tuple{Key: i, Val: i + 2})
	}
	r := Build(d.disk, "rel", ts)
	bt, err := BuildBTree(d.disk, "idx", r)
	if err != nil {
		t.Fatal(err)
	}
	d.disk.ResetStats()
	d.pool.ResetStats()
	if _, err := r.ProbeIndexed(d.pool, bt, 1500, func(int32) bool { return true }); err != nil {
		t.Fatal(err)
	}
	// Interior descent + leaf: at least levels+1 reads on a cold pool.
	if got := d.pool.Stats().Reads; got < int64(bt.Levels())+1 {
		t.Fatalf("cold indexed probe read %d pages, want >= %d", got, bt.Levels()+1)
	}
	// A second probe hits the cached interior pages.
	before := d.pool.Stats().Reads
	if _, err := r.ProbeIndexed(d.pool, bt, 1501, func(int32) bool { return true }); err != nil {
		t.Fatal(err)
	}
	extra := d.pool.Stats().Reads - before
	if extra > 1 {
		t.Fatalf("warm indexed probe read %d new pages, want <= 1", extra)
	}
}

func TestBTreeMultiLevel(t *testing.T) {
	// Force >255 leaf pages so the tree needs two interior levels:
	// 256 tuples per page, so 300*255 distinct keys with one tuple each
	// gives ~300 pages... use 80000 single-tuple keys -> 313 pages.
	d := newDiskPool(t)
	var ts []Tuple
	for i := int32(1); i <= 80000; i++ {
		ts = append(ts, Tuple{Key: i, Val: i})
	}
	r := Build(d.disk, "rel", ts)
	if r.NumPages() <= btreeFanout {
		t.Skipf("only %d leaf pages; need > %d", r.NumPages(), btreeFanout)
	}
	bt, err := BuildBTree(d.disk, "idx", r)
	if err != nil {
		t.Fatal(err)
	}
	if bt.Levels() != 2 {
		t.Fatalf("levels = %d, want 2", bt.Levels())
	}
	for _, key := range []int32{1, 255, 256, 40000, 79999, 80000} {
		n, err := r.ProbeIndexed(d.pool, bt, key, func(v int32) bool {
			if v != key {
				t.Fatalf("key %d returned value %d", key, v)
			}
			return true
		})
		if err != nil {
			t.Fatal(err)
		}
		if n != 1 {
			t.Fatalf("key %d matched %d tuples", key, n)
		}
	}
	if n, _ := r.ProbeIndexed(d.pool, bt, 80001, func(int32) bool { return true }); n != 0 {
		t.Fatalf("missing key matched %d tuples", n)
	}
}

func TestBTreeEmptyAndTinyRelations(t *testing.T) {
	d := newDiskPool(t)
	empty := Build(d.disk, "e", nil)
	bt, err := BuildBTree(d.disk, "ei", empty)
	if err != nil {
		t.Fatal(err)
	}
	if n, _ := empty.ProbeIndexed(d.pool, bt, 5, func(int32) bool { return true }); n != 0 {
		t.Fatal("empty relation matched")
	}
	one := Build(d.disk, "o", []Tuple{{Key: 3, Val: 4}})
	bt1, err := BuildBTree(d.disk, "oi", one)
	if err != nil {
		t.Fatal(err)
	}
	if bt1.Levels() != 0 {
		t.Fatalf("single-page relation has %d levels", bt1.Levels())
	}
	n, _ := one.ProbeIndexed(d.pool, bt1, 3, func(v int32) bool { return v == 4 })
	if n != 1 {
		t.Fatalf("single-page probe matched %d", n)
	}
}
