package relation

import (
	"encoding/binary"
	"fmt"
	"sort"

	"tcstudy/internal/buffer"
	"tcstudy/internal/pagedisk"
)

// Weighted storage for the generalized transitive closure extension: arc
// weights live in a separate column file aligned with the relation's tuple
// order — one 4-byte weight per tuple, 512 per page. A weighted probe
// reads the tuple page and the corresponding weight page(s), both charged
// through the buffer pool, exactly like a column store would.

// WeightsPerPage is the weight capacity of one column page.
const WeightsPerPage = pagedisk.PageSize / 4

// WeightColumn is the arc-weight column aligned with a Relation.
type WeightColumn struct {
	file pagedisk.FileID
}

// BuildWeighted builds a relation together with its weight column. The
// tuples are sorted and deduplicated as in Build; weights follow their
// tuples, and a duplicated arc keeps its smallest weight (the natural
// choice for shortest-path semantics; documented behaviour).
func BuildWeighted(disk pagedisk.Store, name string, tuples []Tuple, weights []int32) (*Relation, *WeightColumn, error) {
	if len(tuples) != len(weights) {
		return nil, nil, fmt.Errorf("relation: %d tuples but %d weights", len(tuples), len(weights))
	}
	type wt struct {
		t Tuple
		w int32
	}
	ws := make([]wt, len(tuples))
	for i := range tuples {
		ws[i] = wt{t: tuples[i], w: weights[i]}
	}
	sort.Slice(ws, func(i, j int) bool {
		a, b := ws[i], ws[j]
		if a.t.Key != b.t.Key {
			return a.t.Key < b.t.Key
		}
		if a.t.Val != b.t.Val {
			return a.t.Val < b.t.Val
		}
		return a.w < b.w // duplicates: smallest weight first, kept by dedup
	})
	dedup := ws[:0]
	for i, x := range ws {
		if i == 0 || x.t != ws[i-1].t {
			dedup = append(dedup, x)
		}
	}
	ws = dedup

	ts := make([]Tuple, len(ws))
	for i, x := range ws {
		ts[i] = x.t
	}
	// Build writes the (already sorted, deduplicated) tuples; its own sort
	// is a no-op re-sort of identical data, keeping one code path.
	r := Build(disk, name, ts)

	col := &WeightColumn{file: disk.CreateFile(name + "-weights")}
	var pg pagedisk.Page
	n := 0
	flush := func() error {
		if n == 0 {
			return nil
		}
		id, err := disk.Allocate(col.file)
		if err != nil {
			return err
		}
		if err := disk.Write(col.file, id, &pg); err != nil {
			return err
		}
		pg = pagedisk.Page{}
		n = 0
		return nil
	}
	for _, x := range ws {
		binary.LittleEndian.PutUint32(pg[n*4:], uint32(x.w))
		n++
		if n == WeightsPerPage {
			if err := flush(); err != nil {
				return nil, nil, err
			}
		}
	}
	if err := flush(); err != nil {
		return nil, nil, err
	}
	return r, col, nil
}

// File returns the column's disk file.
func (c *WeightColumn) File() pagedisk.FileID { return c.file }

// RestoreWeightColumn reattaches a weight column to its disk file (e.g.
// after pagedisk.Load).
func RestoreWeightColumn(f pagedisk.FileID) *WeightColumn { return &WeightColumn{file: f} }

// weightAt reads the weight of the tuple with the given global index.
func (c *WeightColumn) weightAt(pool *buffer.Pool, idx int32) (int32, error) {
	page := pagedisk.PageID(idx / WeightsPerPage)
	off := int(idx%WeightsPerPage) * 4
	h, err := pool.Get(c.file, page)
	if err != nil {
		return 0, err
	}
	w := int32(binary.LittleEndian.Uint32(h.Data()[off:]))
	pool.Unpin(&h, false)
	return w, nil
}

// ProbeWeighted reads every (Val, weight) pair for the given key: the
// clustered tuple lookup plus the aligned column reads.
func (r *Relation) ProbeWeighted(pool *buffer.Pool, key int32, col *WeightColumn, fn func(val, weight int32) bool) (int, error) {
	visited := 0
	for p := r.firstPageFor(key); p < r.numPages; p++ {
		if r.firstKey[p] > key {
			break
		}
		h, err := pool.Get(r.file, pagedisk.PageID(p))
		if err != nil {
			return visited, err
		}
		data := h.Data()
		n := int(r.count[p])
		i := sort.Search(n, func(i int) bool { return decode(data, i).Key >= key })
		stop := false
		for ; i < n; i++ {
			t := decode(data, i)
			if t.Key != key {
				break
			}
			w, err := col.weightAt(pool, r.pageStart[p]+int32(i))
			if err != nil {
				pool.Unpin(&h, false)
				return visited, err
			}
			visited++
			if !fn(t.Val, w) {
				stop = true
				break
			}
		}
		pool.Unpin(&h, false)
		if stop {
			break
		}
	}
	return visited, nil
}
