package relation

import (
	"errors"
	"testing"

	"tcstudy/internal/buffer"
	"tcstudy/internal/pagedisk"
)

func heapPool(t *testing.T, frames int) *buffer.Pool {
	t.Helper()
	d := pagedisk.New()
	pol, err := buffer.NewPolicy("lru", frames)
	if err != nil {
		t.Fatal(err)
	}
	return buffer.New(d, frames, pol)
}

func TestHeapAppendScanRoundTrip(t *testing.T) {
	p := heapPool(t, 4)
	h := NewHeap(p, "h")
	var want []Tuple
	for i := int32(0); i < 1000; i++ {
		tu := Tuple{Key: i, Val: i * 2}
		want = append(want, tu)
		if err := h.Append(tu); err != nil {
			t.Fatal(err)
		}
	}
	if h.Len() != 1000 {
		t.Fatalf("Len = %d", h.Len())
	}
	var got []Tuple
	if err := h.Scan(func(tu Tuple) bool { got = append(got, tu); return true }); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("scanned %d tuples", len(got))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("tuple %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestHeapPageCapacity(t *testing.T) {
	if HeapTuplesPerPage != 255 {
		t.Fatalf("HeapTuplesPerPage = %d, want 255 (4-byte header + 8-byte tuples)", HeapTuplesPerPage)
	}
	p := heapPool(t, 4)
	h := NewHeap(p, "h")
	for i := 0; i < 255; i++ {
		if err := h.Append(Tuple{Key: 1, Val: int32(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if n := p.Disk().NumPages(h.File()); n != 1 {
		t.Fatalf("255 tuples occupy %d pages", n)
	}
	if err := h.Append(Tuple{Key: 2, Val: 2}); err != nil {
		t.Fatal(err)
	}
	if n := p.Disk().NumPages(h.File()); n != 2 {
		t.Fatalf("256 tuples occupy %d pages", n)
	}
}

func TestHeapCursor(t *testing.T) {
	p := heapPool(t, 4)
	h := NewHeap(p, "h")
	for i := int32(0); i < 600; i++ {
		if err := h.Append(Tuple{Key: i, Val: -0 + i}); err != nil {
			t.Fatal(err)
		}
	}
	c := h.Cursor()
	n := int32(0)
	for {
		tu, ok := c.Next()
		if !ok {
			break
		}
		if tu.Key != n {
			t.Fatalf("cursor tuple %d has key %d", n, tu.Key)
		}
		n++
	}
	c.Close()
	if n != 600 {
		t.Fatalf("cursor visited %d tuples", n)
	}
	if c.Err() != nil {
		t.Fatal(c.Err())
	}
	if p.PinnedFrames() != 0 {
		t.Fatal("cursor leaked pins")
	}
}

func TestHeapCursorHoldsOnePin(t *testing.T) {
	p := heapPool(t, 4)
	h := NewHeap(p, "h")
	for i := int32(0); i < 600; i++ {
		if err := h.Append(Tuple{Key: i}); err != nil {
			t.Fatal(err)
		}
	}
	c := h.Cursor()
	c.Next()
	if got := p.PinnedFrames(); got != 1 {
		t.Fatalf("pinned = %d, want 1", got)
	}
	// Cross a page boundary: still exactly one pin.
	for i := 0; i < 300; i++ {
		c.Next()
	}
	if got := p.PinnedFrames(); got != 1 {
		t.Fatalf("pinned after page crossing = %d, want 1", got)
	}
	c.Close()
	if got := p.PinnedFrames(); got != 0 {
		t.Fatalf("pinned after close = %d", got)
	}
}

func TestHeapDiscardAndReuse(t *testing.T) {
	p := heapPool(t, 4)
	h := NewHeap(p, "h")
	for i := int32(0); i < 300; i++ {
		if err := h.Append(Tuple{Key: i}); err != nil {
			t.Fatal(err)
		}
	}
	h.Discard()
	if h.Len() != 0 {
		t.Fatalf("Len after discard = %d", h.Len())
	}
	if n := p.Disk().NumPages(h.File()); n != 0 {
		t.Fatalf("pages after discard = %d", n)
	}
	// The heap is reusable after Discard.
	if err := h.Append(Tuple{Key: 7, Val: 8}); err != nil {
		t.Fatal(err)
	}
	var got []Tuple
	if err := h.Scan(func(tu Tuple) bool { got = append(got, tu); return true }); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != (Tuple{Key: 7, Val: 8}) {
		t.Fatalf("reused heap scan = %v", got)
	}
}

func TestHeapFlushPersists(t *testing.T) {
	p := heapPool(t, 4)
	h := NewHeap(p, "h")
	if err := h.Append(Tuple{Key: 1, Val: 2}); err != nil {
		t.Fatal(err)
	}
	p.Disk().ResetStats()
	if err := h.Flush(); err != nil {
		t.Fatal(err)
	}
	if p.Disk().Stats().Writes != 1 {
		t.Fatalf("flush wrote %d pages", p.Disk().Stats().Writes)
	}
}

func TestHeapScanEarlyStop(t *testing.T) {
	p := heapPool(t, 4)
	h := NewHeap(p, "h")
	for i := int32(0); i < 600; i++ {
		if err := h.Append(Tuple{Key: i}); err != nil {
			t.Fatal(err)
		}
	}
	n := 0
	if err := h.Scan(func(Tuple) bool { n++; return n < 5 }); err != nil {
		t.Fatal(err)
	}
	if n != 5 {
		t.Fatalf("early stop visited %d", n)
	}
	if p.PinnedFrames() != 0 {
		t.Fatal("scan leaked pins")
	}
}

func TestHeapIOErrorPropagates(t *testing.T) {
	p := heapPool(t, 1)
	h := NewHeap(p, "h")
	for i := int32(0); i < 600; i++ {
		if err := h.Append(Tuple{Key: i}); err != nil {
			t.Fatal(err)
		}
	}
	p.Disk().(*pagedisk.Disk).FailAfter(0)
	defer p.Disk().(*pagedisk.Disk).FailAfter(-1)
	err := h.Scan(func(Tuple) bool { return true })
	if !errors.Is(err, pagedisk.ErrIOInjected) {
		t.Fatalf("scan err = %v", err)
	}
	c := h.Cursor()
	if _, ok := c.Next(); ok {
		t.Fatal("cursor returned tuple under injected failure")
	}
	if !errors.Is(c.Err(), pagedisk.ErrIOInjected) {
		t.Fatalf("cursor err = %v", c.Err())
	}
	c.Close()
}
