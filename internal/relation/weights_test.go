package relation

import (
	"math/rand"
	"testing"

	"tcstudy/internal/buffer"
	"tcstudy/internal/pagedisk"
)

type diskPool struct {
	disk *pagedisk.Disk
	pool *buffer.Pool
}

func newDiskPool(t *testing.T) diskPool {
	t.Helper()
	d := pagedisk.New()
	pol, err := buffer.NewPolicy("lru", 6)
	if err != nil {
		t.Fatal(err)
	}
	return diskPool{disk: d, pool: buffer.New(d, 6, pol)}
}

func TestBuildWeightedRoundTrip(t *testing.T) {
	d := newDiskPool(t)
	ts := []Tuple{{Key: 2, Val: 3}, {Key: 1, Val: 2}, {Key: 1, Val: 5}}
	ws := []int32{30, 12, 15}
	r, col, err := BuildWeighted(d.disk, "w", ts, ws)
	if err != nil {
		t.Fatal(err)
	}
	want := map[[2]int32]int32{{1, 2}: 12, {1, 5}: 15, {2, 3}: 30}
	for key := int32(1); key <= 2; key++ {
		_, err := r.ProbeWeighted(d.pool, key, col, func(val, w int32) bool {
			expect, ok := want[[2]int32{key, val}]
			if !ok {
				t.Fatalf("unexpected tuple (%d,%d)", key, val)
			}
			if w != expect {
				t.Fatalf("weight(%d,%d) = %d, want %d", key, val, w, expect)
			}
			delete(want, [2]int32{key, val})
			return true
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	if len(want) != 0 {
		t.Fatalf("missing tuples: %v", want)
	}
}

func TestBuildWeightedLengthMismatch(t *testing.T) {
	d := newDiskPool(t)
	if _, _, err := BuildWeighted(d.disk, "w", []Tuple{{Key: 1, Val: 2}}, nil); err == nil {
		t.Fatal("length mismatch accepted")
	}
}

func TestBuildWeightedDuplicateKeepsSmallest(t *testing.T) {
	d := newDiskPool(t)
	ts := []Tuple{{Key: 1, Val: 2}, {Key: 1, Val: 2}, {Key: 1, Val: 2}}
	ws := []int32{9, 3, 7}
	r, col, err := BuildWeighted(d.disk, "w", ts, ws)
	if err != nil {
		t.Fatal(err)
	}
	if r.NumTuples() != 1 {
		t.Fatalf("NumTuples = %d", r.NumTuples())
	}
	n, err := r.ProbeWeighted(d.pool, 1, col, func(val, w int32) bool {
		if w != 3 {
			t.Fatalf("weight = %d, want smallest (3)", w)
		}
		return true
	})
	if err != nil || n != 1 {
		t.Fatalf("probe n=%d err=%v", n, err)
	}
}

func TestWeightedColumnSpansPages(t *testing.T) {
	d := newDiskPool(t)
	rng := rand.New(rand.NewSource(4))
	var ts []Tuple
	var ws []int32
	want := map[[2]int32]int32{}
	for i := 0; i < 3000; i++ {
		tu := Tuple{Key: int32(rng.Intn(200) + 1), Val: int32(rng.Intn(500) + 1)}
		w := rng.Int31n(1000) - 500
		if _, dup := want[[2]int32{tu.Key, tu.Val}]; dup {
			continue // keep the reference simple: skip duplicates
		}
		want[[2]int32{tu.Key, tu.Val}] = w
		ts = append(ts, tu)
		ws = append(ws, w)
	}
	r, col, err := BuildWeighted(d.disk, "w", ts, ws)
	if err != nil {
		t.Fatal(err)
	}
	if d.disk.NumPages(col.File()) < 2 {
		t.Skip("column did not span pages; enlarge the workload")
	}
	seen := 0
	for key := int32(1); key <= 200; key++ {
		_, err := r.ProbeWeighted(d.pool, key, col, func(val, w int32) bool {
			if want[[2]int32{key, val}] != w {
				t.Fatalf("weight(%d,%d) = %d, want %d", key, val, w, want[[2]int32{key, val}])
			}
			seen++
			return true
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	if seen != len(ts) {
		t.Fatalf("visited %d weighted tuples, want %d", seen, len(ts))
	}
}

func TestWeightedProbeChargesColumnIO(t *testing.T) {
	d := newDiskPool(t)
	var ts []Tuple
	var ws []int32
	for i := int32(0); i < 1000; i++ {
		ts = append(ts, Tuple{Key: i + 1, Val: i + 2})
		ws = append(ws, i)
	}
	r, col, err := BuildWeighted(d.disk, "w", ts, ws)
	if err != nil {
		t.Fatal(err)
	}
	d.disk.ResetStats()
	if _, err := r.ProbeWeighted(d.pool, 500, col, func(int32, int32) bool { return true }); err != nil {
		t.Fatal(err)
	}
	// One tuple page plus one column page.
	if got := d.disk.Stats().Reads; got != 2 {
		t.Fatalf("weighted probe read %d pages, want 2", got)
	}
}
