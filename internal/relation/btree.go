package relation

import (
	"encoding/binary"
	"fmt"

	"tcstudy/internal/buffer"
	"tcstudy/internal/pagedisk"
)

// A disk-resident B+-tree over the relation's clustering key. The paper
// assumes a clustered index whose interior pages cost no I/O (our default
// Probe uses the equivalent in-memory sparse index); this access path
// stores the interior levels on disk and charges their traversal through
// the buffer pool, so the assumption can be measured rather than taken on
// faith (the `ablation-index` experiment).
//
// The relation is immutable, so the tree is bulk-loaded bottom-up: the
// relation's own sorted pages are the leaves, and each interior page holds
// (separator key, child page) entries — 255 per 2048-byte page. Interior
// page layout: count int32, level int32, then (key int32, child int32)
// pairs. Level 1 children are leaf (relation) page numbers; higher levels
// point into the index file itself.

// btreeFanout is the entry capacity of one interior page.
const btreeFanout = (pagedisk.PageSize - 8) / 8

// BTree is the disk-resident index of one relation.
type BTree struct {
	file   pagedisk.FileID
	root   pagedisk.PageID
	levels int // interior levels (0 = relation fits without an index)
}

// BuildBTree bulk-loads the index from the relation's page summaries.
// Building bypasses the buffer pool (database construction is not charged
// to queries).
func BuildBTree(disk pagedisk.Store, name string, r *Relation) (*BTree, error) {
	bt := &BTree{file: disk.CreateFile(name), root: pagedisk.InvalidPage}
	if r.numPages <= 1 {
		return bt, nil // zero or one leaf: no interior level needed
	}
	// Level 1: separators over the relation's leaf pages.
	type entry struct {
		key   int32
		child int32
	}
	level := make([]entry, r.numPages)
	for p := 0; p < r.numPages; p++ {
		level[p] = entry{key: r.firstKey[p], child: int32(p)}
	}
	writeNode := func(lv int, ents []entry) (int32, error) {
		var pg pagedisk.Page
		binary.LittleEndian.PutUint32(pg[0:], uint32(len(ents)))
		binary.LittleEndian.PutUint32(pg[4:], uint32(lv))
		for i, e := range ents {
			binary.LittleEndian.PutUint32(pg[8+i*8:], uint32(e.key))
			binary.LittleEndian.PutUint32(pg[12+i*8:], uint32(e.child))
		}
		id, err := disk.Allocate(bt.file)
		if err != nil {
			return 0, err
		}
		if err := disk.Write(bt.file, id, &pg); err != nil {
			return 0, err
		}
		return int32(id), nil
	}
	lv := 1
	for len(level) > 1 || lv == 1 {
		var next []entry
		for lo := 0; lo < len(level); lo += btreeFanout {
			hi := lo + btreeFanout
			if hi > len(level) {
				hi = len(level)
			}
			id, err := writeNode(lv, level[lo:hi])
			if err != nil {
				return nil, err
			}
			next = append(next, entry{key: level[lo].key, child: id})
		}
		level = next
		bt.levels = lv
		if len(level) == 1 {
			bt.root = pagedisk.PageID(level[0].child)
			break
		}
		lv++
	}
	return bt, nil
}

// Levels reports the number of interior levels.
func (bt *BTree) Levels() int { return bt.levels }

// File returns the index's disk file.
func (bt *BTree) File() pagedisk.FileID { return bt.file }

// lookupLeaf descends from the root to the leaf (relation) page that may
// contain key, charging every interior page through the pool.
func (bt *BTree) lookupLeaf(pool *buffer.Pool, key int32) (int, error) {
	if bt.root == pagedisk.InvalidPage {
		return 0, nil
	}
	page := bt.root
	for {
		h, err := pool.Get(bt.file, page)
		if err != nil {
			return 0, err
		}
		pg := h.Data()
		count := int(binary.LittleEndian.Uint32(pg[0:]))
		level := int(binary.LittleEndian.Uint32(pg[4:]))
		if count == 0 {
			pool.Unpin(&h, false)
			return 0, fmt.Errorf("relation: empty btree node %d", page)
		}
		// Rightmost entry whose separator is strictly below the key: a
		// key's duplicates can start on the page before the first
		// separator equal to it, so the descent biases left and the leaf
		// scan advances forward past any too-early page.
		lo, hi := 0, count-1
		pick := 0
		for lo <= hi {
			mid := (lo + hi) / 2
			k := int32(binary.LittleEndian.Uint32(pg[8+mid*8:]))
			if k < key {
				pick = mid
				lo = mid + 1
			} else {
				hi = mid - 1
			}
		}
		child := int32(binary.LittleEndian.Uint32(pg[12+pick*8:]))
		pool.Unpin(&h, false)
		if level == 1 {
			return int(child), nil
		}
		page = pagedisk.PageID(child)
	}
}

// ProbeIndexed is Probe with the clustered index's interior pages charged:
// the descent reads index pages through the pool before the leaf scan.
func (r *Relation) ProbeIndexed(pool *buffer.Pool, bt *BTree, key int32, fn func(val int32) bool) (int, error) {
	if r.numPages == 0 {
		return 0, nil
	}
	start, err := bt.lookupLeaf(pool, key)
	if err != nil {
		return 0, err
	}
	visited := 0
	for p := start; p < r.numPages; p++ {
		// The separator descent can land one page early when the key
		// falls between pages; skip forward, and stop past the key range.
		if r.lastKey[p] < key {
			continue
		}
		if r.firstKey[p] > key {
			break
		}
		h, err := pool.Get(r.file, pagedisk.PageID(p))
		if err != nil {
			return visited, err
		}
		data := h.Data()
		n := int(r.count[p])
		i := 0
		for ; i < n; i++ {
			if decode(data, i).Key >= key {
				break
			}
		}
		stop := false
		for ; i < n; i++ {
			t := decode(data, i)
			if t.Key != key {
				break
			}
			visited++
			if !fn(t.Val) {
				stop = true
				break
			}
		}
		pool.Unpin(&h, false)
		if stop {
			break
		}
	}
	return visited, nil
}
