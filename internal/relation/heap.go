package relation

import (
	"encoding/binary"

	"tcstudy/internal/buffer"
	"tcstudy/internal/pagedisk"
)

// Heap is an appendable, scannable temporary tuple file: the working
// storage of the iterative (Seminaive) baseline algorithm, which
// materializes delta and result relations between iterations. Appends fill
// pages sequentially through the buffer pool; scans read them back in
// order. Unlike Relation, a Heap is unclustered and unindexed.
//
// Page layout: a 4-byte tuple count followed by 8-byte (Key, Val) pairs —
// 255 tuples per 2048-byte page.
type Heap struct {
	pool    *buffer.Pool
	file    pagedisk.FileID
	last    pagedisk.PageID // page currently being filled
	lastN   int             // tuples on the last page
	nTuples int64
}

// HeapTuplesPerPage is the capacity of one heap page.
const HeapTuplesPerPage = (pagedisk.PageSize - 4) / 8

// NewHeap creates an empty heap in a fresh file.
func NewHeap(pool *buffer.Pool, name string) *Heap {
	return &Heap{
		pool: pool,
		file: pool.Disk().CreateFile(name),
		last: pagedisk.InvalidPage,
	}
}

// Len reports the number of stored tuples.
func (h *Heap) Len() int64 { return h.nTuples }

// File returns the backing disk file.
func (h *Heap) File() pagedisk.FileID { return h.file }

// Append adds one tuple at the end of the heap.
func (h *Heap) Append(t Tuple) error {
	if h.last == pagedisk.InvalidPage || h.lastN == HeapTuplesPerPage {
		pid, hd, err := h.pool.GetNew(h.file)
		if err != nil {
			return err
		}
		h.pool.Unpin(&hd, true)
		h.last = pid
		h.lastN = 0
	}
	hd, err := h.pool.Get(h.file, h.last)
	if err != nil {
		return err
	}
	pg := hd.Data()
	off := 4 + h.lastN*8
	binary.LittleEndian.PutUint32(pg[off:], uint32(t.Key))
	binary.LittleEndian.PutUint32(pg[off+4:], uint32(t.Val))
	h.lastN++
	binary.LittleEndian.PutUint32(pg[0:], uint32(h.lastN))
	h.pool.Unpin(&hd, true)
	h.nTuples++
	return nil
}

// Scan reads every tuple in append order, stopping early if fn returns
// false.
func (h *Heap) Scan(fn func(Tuple) bool) error {
	n := h.pool.Disk().NumPages(h.file)
	for p := 0; p < n; p++ {
		hd, err := h.pool.Get(h.file, pagedisk.PageID(p))
		if err != nil {
			return err
		}
		pg := hd.Data()
		cnt := int(binary.LittleEndian.Uint32(pg[0:]))
		stop := false
		for i := 0; i < cnt; i++ {
			off := 4 + i*8
			t := Tuple{
				Key: int32(binary.LittleEndian.Uint32(pg[off:])),
				Val: int32(binary.LittleEndian.Uint32(pg[off+4:])),
			}
			if !fn(t) {
				stop = true
				break
			}
		}
		h.pool.Unpin(&hd, false)
		if stop {
			break
		}
	}
	return nil
}

// Cursor is a sequential reader over a heap that holds one page pinned
// between Next calls — the building block of external merge sort, where
// many heaps are read in lockstep.
type Cursor struct {
	h      *Heap
	page   int
	idx    int
	cnt    int
	hd     buffer.Handle
	pinned bool
	err    error
}

// Cursor returns a cursor positioned before the first tuple.
func (h *Heap) Cursor() *Cursor { return &Cursor{h: h, page: -1} }

// Next returns the next tuple; ok is false at the end or on error (Err).
func (c *Cursor) Next() (Tuple, bool) {
	for {
		if c.err != nil {
			return Tuple{}, false
		}
		if c.pinned && c.idx < c.cnt {
			pg := c.hd.Data()
			off := 4 + c.idx*8
			c.idx++
			return Tuple{
				Key: int32(binary.LittleEndian.Uint32(pg[off:])),
				Val: int32(binary.LittleEndian.Uint32(pg[off+4:])),
			}, true
		}
		c.release()
		c.page++
		if c.page >= c.h.pool.Disk().NumPages(c.h.file) {
			return Tuple{}, false
		}
		hd, err := c.h.pool.Get(c.h.file, pagedisk.PageID(c.page))
		if err != nil {
			c.err = err
			return Tuple{}, false
		}
		c.hd = hd
		c.pinned = true
		c.cnt = int(binary.LittleEndian.Uint32(hd.Data()[0:]))
		c.idx = 0
	}
}

// Err reports the first error the cursor hit.
func (c *Cursor) Err() error { return c.err }

func (c *Cursor) release() {
	if c.pinned {
		c.h.pool.Unpin(&c.hd, false)
		c.pinned = false
	}
}

// Close releases any pinned page. Safe to call repeatedly.
func (c *Cursor) Close() { c.release() }

// Flush writes the heap's dirty pages out.
func (h *Heap) Flush() error { return h.pool.FlushFile(h.file) }

// Discard drops the heap's buffered pages without writing and empties the
// file, releasing the temporary storage.
func (h *Heap) Discard() {
	h.pool.DiscardFile(h.file)
	h.pool.Disk().Truncate(h.file)
	h.last = pagedisk.InvalidPage
	h.lastN = 0
	h.nTuples = 0
}
