package relation

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"tcstudy/internal/buffer"
	"tcstudy/internal/pagedisk"
)

func pool(t *testing.T, d *pagedisk.Disk, size int) *buffer.Pool {
	t.Helper()
	pol, err := buffer.NewPolicy("lru", size)
	if err != nil {
		t.Fatal(err)
	}
	return buffer.New(d, size, pol)
}

func TestBuildSortsAndDedups(t *testing.T) {
	d := pagedisk.New()
	r := Build(d, "rel", []Tuple{{3, 4}, {1, 2}, {3, 4}, {1, 5}, {1, 2}})
	if r.NumTuples() != 3 {
		t.Fatalf("NumTuples = %d, want 3", r.NumTuples())
	}
	var got []Tuple
	p := pool(t, d, 4)
	if err := r.Scan(p, func(tu Tuple) bool { got = append(got, tu); return true }); err != nil {
		t.Fatal(err)
	}
	want := []Tuple{{1, 2}, {1, 5}, {3, 4}}
	if len(got) != len(want) {
		t.Fatalf("scan returned %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("tuple %d = %v, want %v", i, got[i], want[i])
		}
	}
	if r.MaxNode() != 5 {
		t.Fatalf("MaxNode = %d, want 5", r.MaxNode())
	}
}

func TestPageCapacityMatchesPaper(t *testing.T) {
	if TuplesPerPage != 256 {
		t.Fatalf("TuplesPerPage = %d, paper says 256", TuplesPerPage)
	}
	d := pagedisk.New()
	var ts []Tuple
	for i := int32(0); i < 256*3+10; i++ {
		ts = append(ts, Tuple{Key: i, Val: i + 1})
	}
	r := Build(d, "rel", ts)
	if r.NumPages() != 4 {
		t.Fatalf("NumPages = %d, want 4 (3 full + 1 partial)", r.NumPages())
	}
}

func TestScanCountsSequentialReads(t *testing.T) {
	d := pagedisk.New()
	var ts []Tuple
	for i := int32(0); i < 1000; i++ {
		ts = append(ts, Tuple{Key: i, Val: i + 1})
	}
	r := Build(d, "rel", ts)
	d.ResetStats()
	p := pool(t, d, 2)
	n := 0
	if err := r.Scan(p, func(Tuple) bool { n++; return true }); err != nil {
		t.Fatal(err)
	}
	if n != 1000 {
		t.Fatalf("scanned %d tuples", n)
	}
	if got, want := d.Stats().Reads, int64(r.NumPages()); got != want {
		t.Fatalf("reads = %d, want %d", got, want)
	}
}

func TestScanEarlyStop(t *testing.T) {
	d := pagedisk.New()
	var ts []Tuple
	for i := int32(0); i < 1000; i++ {
		ts = append(ts, Tuple{Key: i, Val: i + 1})
	}
	r := Build(d, "rel", ts)
	p := pool(t, d, 2)
	n := 0
	if err := r.Scan(p, func(Tuple) bool { n++; return n < 10 }); err != nil {
		t.Fatal(err)
	}
	if n != 10 {
		t.Fatalf("early stop scanned %d tuples", n)
	}
}

func TestProbe(t *testing.T) {
	d := pagedisk.New()
	rng := rand.New(rand.NewSource(7))
	want := map[int32][]int32{}
	var ts []Tuple
	for i := 0; i < 5000; i++ {
		k := int32(rng.Intn(300) + 1)
		v := int32(rng.Intn(1000) + 1)
		ts = append(ts, Tuple{k, v})
	}
	// Build the expected probe results from the dedup'd sorted view.
	sort.Slice(ts, func(i, j int) bool {
		if ts[i].Key != ts[j].Key {
			return ts[i].Key < ts[j].Key
		}
		return ts[i].Val < ts[j].Val
	})
	for i, tu := range ts {
		if i > 0 && tu == ts[i-1] {
			continue
		}
		want[tu.Key] = append(want[tu.Key], tu.Val)
	}
	r := Build(d, "rel", ts)
	p := pool(t, d, 4)
	for k := int32(0); k <= 301; k++ {
		var got []int32
		if _, err := r.Probe(p, k, func(v int32) bool { got = append(got, v); return true }); err != nil {
			t.Fatal(err)
		}
		w := want[k]
		if len(got) != len(w) {
			t.Fatalf("probe(%d) = %v, want %v", k, got, w)
		}
		for i := range w {
			if got[i] != w[i] {
				t.Fatalf("probe(%d)[%d] = %d, want %d", k, i, got[i], w[i])
			}
		}
	}
}

func TestProbeSpanningPages(t *testing.T) {
	d := pagedisk.New()
	var ts []Tuple
	// One key with 600 values spans 3 pages.
	for v := int32(1); v <= 600; v++ {
		ts = append(ts, Tuple{Key: 5, Val: v})
	}
	ts = append(ts, Tuple{Key: 1, Val: 1}, Tuple{Key: 9, Val: 9})
	r := Build(d, "rel", ts)
	p := pool(t, d, 4)
	n, err := r.Probe(p, 5, func(int32) bool { return true })
	if err != nil {
		t.Fatal(err)
	}
	if n != 600 {
		t.Fatalf("probe visited %d values, want 600", n)
	}
	if got := r.PagesFor(5); got != 3 {
		t.Fatalf("PagesFor(5) = %d, want 3", got)
	}
}

func TestProbeMissingKey(t *testing.T) {
	d := pagedisk.New()
	r := Build(d, "rel", []Tuple{{1, 2}, {5, 6}})
	p := pool(t, d, 2)
	n, err := r.Probe(p, 3, func(int32) bool { return true })
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Fatalf("probe of missing key visited %d", n)
	}
}

func TestEmptyRelation(t *testing.T) {
	d := pagedisk.New()
	r := Build(d, "rel", nil)
	if r.NumPages() != 0 || r.NumTuples() != 0 {
		t.Fatalf("empty relation: pages=%d tuples=%d", r.NumPages(), r.NumTuples())
	}
	p := pool(t, d, 2)
	if err := r.Scan(p, func(Tuple) bool { t.Fatal("callback on empty relation"); return false }); err != nil {
		t.Fatal(err)
	}
	if n, _ := r.Probe(p, 1, func(int32) bool { return true }); n != 0 {
		t.Fatal("probe on empty relation returned tuples")
	}
}

func TestBuildInverse(t *testing.T) {
	d := pagedisk.New()
	arcs := []Tuple{{1, 2}, {1, 3}, {2, 3}, {4, 3}}
	inv := BuildInverse(d, "inv", arcs)
	p := pool(t, d, 4)
	var preds []int32
	if _, err := inv.Probe(p, 3, func(v int32) bool { preds = append(preds, v); return true }); err != nil {
		t.Fatal(err)
	}
	want := []int32{1, 2, 4}
	if len(preds) != len(want) {
		t.Fatalf("predecessors of 3 = %v, want %v", preds, want)
	}
	for i := range want {
		if preds[i] != want[i] {
			t.Fatalf("preds = %v, want %v", preds, want)
		}
	}
}

// TestScanProbeAgreeProperty: for random relations, the union of all probes
// over the key range equals the scan.
func TestScanProbeAgreeProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var ts []Tuple
		n := rng.Intn(2000)
		for i := 0; i < n; i++ {
			ts = append(ts, Tuple{Key: int32(rng.Intn(50) + 1), Val: int32(rng.Intn(50) + 1)})
		}
		d := pagedisk.New()
		r := Build(d, "rel", ts)
		pol, _ := buffer.NewPolicy("lru", 3)
		p := buffer.New(d, 3, pol)
		scanned := 0
		_ = r.Scan(p, func(Tuple) bool { scanned++; return true })
		probed := 0
		for k := int32(1); k <= 50; k++ {
			m, _ := r.Probe(p, k, func(int32) bool { return true })
			probed += m
		}
		return scanned == probed && scanned == r.NumTuples()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
