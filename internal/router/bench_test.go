package router

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"tcstudy/internal/core"
	"tcstudy/internal/graphgen"
	"tcstudy/internal/server"
)

// Router benchmarks: aggregate query throughput through the scatter-gather
// tier at different fleet sizes. Replicas are in-process httptest servers,
// so these numbers measure the routing tier's overhead and concurrency
// behavior, not cross-machine scaling — the useful comparison is the qps
// metric between the replicas=1 and replicas=3 sub-benchmarks on the same
// run.

var (
	routerBenchOnce sync.Once
	routerBenchDB   *core.Database
)

func routerBenchFleet(b *testing.B, n int) string {
	b.Helper()
	routerBenchOnce.Do(func() {
		arcs, err := graphgen.Generate(graphgen.Params{Nodes: 500, OutDegree: 5, Locality: 50, Seed: 11})
		if err != nil {
			b.Fatal(err)
		}
		routerBenchDB = core.NewDatabase(500, arcs)
	})
	urls := make([]string, n)
	for i := range urls {
		s := server.New(routerBenchDB, server.Options{CacheEntries: 4096})
		ts := httptest.NewServer(s)
		b.Cleanup(func() {
			ts.Close()
			s.Close()
		})
		urls[i] = ts.URL
	}
	rt, err := New(Options{Replicas: urls, HealthInterval: -1})
	if err != nil {
		b.Fatal(err)
	}
	rt.CheckNow(context.Background())
	front := httptest.NewServer(rt)
	b.Cleanup(func() {
		front.Close()
		rt.Close()
	})
	return front.URL
}

// BenchmarkRouterScaling drives concurrent multi-source queries through
// the router. Source sets rotate so most requests miss the replica result
// caches and exercise the engines; the reported qps is the aggregate
// across all client goroutines.
func BenchmarkRouterScaling(b *testing.B) {
	for _, replicas := range []int{1, 3} {
		b.Run(fmt.Sprintf("replicas=%d", replicas), func(b *testing.B) {
			url := routerBenchFleet(b, replicas)
			client := &http.Client{}
			var seq atomic.Int64
			b.ResetTimer()
			start := time.Now()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					i := seq.Add(1)
					sources := []int32{
						int32(i*7%500) + 1,
						int32(i*13%500) + 1,
						int32(i*29%500) + 1,
						int32(i*43%500) + 1,
					}
					body, _ := json.Marshal(map[string]any{"algorithm": "srch", "sources": sources})
					resp, err := client.Post(url+"/v1/query", "application/json", bytes.NewReader(body))
					if err != nil {
						b.Fatal(err)
					}
					resp.Body.Close()
					if resp.StatusCode != http.StatusOK {
						b.Fatalf("status %d", resp.StatusCode)
					}
				}
			})
			elapsed := time.Since(start)
			if elapsed > 0 {
				b.ReportMetric(float64(b.N)/elapsed.Seconds(), "qps")
			}
		})
	}
}

// BenchmarkRouterCachedQuery measures the pure routing overhead: the same
// query repeated, served from every shard's result cache.
func BenchmarkRouterCachedQuery(b *testing.B) {
	url := routerBenchFleet(b, 3)
	client := &http.Client{}
	body, _ := json.Marshal(map[string]any{"algorithm": "srch", "sources": []int32{7, 42, 99, 250}})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := client.Post(url+"/v1/query", "application/json", bytes.NewReader(body))
		if err != nil {
			b.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			b.Fatalf("status %d", resp.StatusCode)
		}
	}
}
