// Package router is the scatter-gather serving tier in front of a fleet
// of stateless tcserve replicas. The paper's partitioned algorithms
// already decompose a closure query into independent per-source work, so
// horizontal sharding is routing, not rework: every replica holds a full
// copy of the sealed database (and index) files, a consistent-hash ring
// assigns each source vertex an owning replica — keeping that replica's
// result cache warm for the sources it owns — and a multi-source query
// scatters one sub-query per owning replica, gathering the answers into a
// single response whose metric record merges per-shard records with the
// same additive-counters/max-phase-times semantics as core's parallel
// worker merge.
//
// Three defenses keep the tier serving under replica trouble:
//
//   - health: replicas are enrolled only while /healthz answers with the
//     fleet's dataset fingerprint; consecutive failures mark a replica
//     out, consecutive successes re-enroll it, and a mismatched
//     fingerprint (a replica serving the wrong graph) is refused outright.
//   - retries: transient sub-request outcomes (503, transport errors) are
//     retried with the tcload backoff policy (internal/httpretry),
//     rotating to the next healthy replica — any replica can answer any
//     sub-query, ownership is only an affinity.
//   - hedging: a sub-request that exceeds a latency threshold triggers a
//     second request to the next healthy replica; the first useful answer
//     wins and the loser is cancelled through its context.
//
// The router exposes its own Prometheus /metrics through internal/obsv.
// See docs/ROUTER.md.
package router

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"

	"tcstudy/internal/httpretry"
)

// Options configures a Router. Zero values select the defaults.
type Options struct {
	// Replicas are the tcserve base URLs fronted by this router.
	Replicas []string
	// HealthInterval is the period of the background /healthz sweep
	// started by Start (default 2s; <= 0 disables the loop — tests drive
	// CheckNow directly).
	HealthInterval time.Duration
	// HealthTimeout bounds one /healthz probe (default 2s).
	HealthTimeout time.Duration
	// FailThreshold is how many consecutive health-check failures mark a
	// healthy replica out (default 3).
	FailThreshold int
	// RecoverThreshold is how many consecutive successes re-enroll a
	// replica that was marked out (default 2).
	RecoverThreshold int
	// Retries and Backoff set the shared transient-retry policy for shard
	// sub-requests (defaults 2 and 25ms, tcload's defaults).
	Retries int
	Backoff time.Duration
	// HedgeAfter sends a hedged second sub-request to the next healthy
	// replica when the first has not answered within this threshold
	// (default 0: hedging disabled).
	HedgeAfter time.Duration
	// ShardTimeout bounds one scattered sub-request including its retries
	// (default 30s).
	ShardTimeout time.Duration
	// Vnodes is the number of consistent-hash points per replica
	// (default 64).
	Vnodes int
	// ExpectFingerprint pins the fleet's dataset fingerprint. Empty means
	// the first healthy replica's fingerprint becomes the fleet's.
	ExpectFingerprint string
	// MaxGenerationLag, when positive, excludes a healthy mutable replica
	// from the read ring while its applied mutation sequence trails the
	// fleet's most advanced replica by more than this many batches. The
	// replica keeps its enrollment — write fan-outs still reach it — so it
	// rejoins the ring as soon as it catches up. 0 disables lag exclusion.
	MaxGenerationLag int
	// Client is the HTTP client for all replica traffic (default: a
	// dedicated client; per-request contexts carry the deadlines).
	Client *http.Client
}

func (o Options) withDefaults() Options {
	if o.HealthInterval == 0 {
		o.HealthInterval = 2 * time.Second
	}
	if o.HealthTimeout == 0 {
		o.HealthTimeout = 2 * time.Second
	}
	if o.FailThreshold == 0 {
		o.FailThreshold = 3
	}
	if o.RecoverThreshold == 0 {
		o.RecoverThreshold = 2
	}
	if o.Retries == 0 {
		o.Retries = 2
	}
	if o.Backoff == 0 {
		o.Backoff = 25 * time.Millisecond
	}
	if o.ShardTimeout == 0 {
		o.ShardTimeout = 30 * time.Second
	}
	if o.Vnodes == 0 {
		o.Vnodes = 64
	}
	if o.Client == nil {
		o.Client = &http.Client{}
	}
	return o
}

// Router fans queries out over a replica fleet and gathers the answers.
type Router struct {
	opts   Options
	client *http.Client
	retry  httpretry.Policy
	met    *Metrics
	mux    *http.ServeMux

	// writeMu serializes mutation fan-outs: batches must land on every
	// replica in the same order or their logs (and index states) diverge.
	writeMu sync.Mutex

	mu          sync.RWMutex
	replicas    []*replica
	ring        *ring                    // healthy replicas only; nil while none are enrolled
	expect      string                   // fleet dataset fingerprint ("" until first enrollment)
	nodes       int                      // fleet node count, from the enrolling healthz
	fleetGraphs map[string]graphIdentity // per-tenant identities (multi-graph fleets)

	stop     chan struct{}
	stopOnce sync.Once
	loopWG   sync.WaitGroup
}

// New builds a router over the given replica URLs. All replicas start
// unenrolled; call CheckNow (or Start) to take the fleet's health.
func New(opts Options) (*Router, error) {
	opts = opts.withDefaults()
	if len(opts.Replicas) == 0 {
		return nil, fmt.Errorf("router: no replicas configured")
	}
	rt := &Router{
		opts:   opts,
		client: opts.Client,
		retry:  httpretry.Policy{Max: opts.Retries, Backoff: opts.Backoff},
		met:    NewMetrics(),
		mux:    http.NewServeMux(),
		expect: opts.ExpectFingerprint,
		stop:   make(chan struct{}),
	}
	seen := make(map[string]bool)
	for _, url := range opts.Replicas {
		if seen[url] {
			return nil, fmt.Errorf("router: duplicate replica %s", url)
		}
		seen[url] = true
		rt.replicas = append(rt.replicas, &replica{url: url})
	}
	rt.mux.HandleFunc("POST /v1/query", rt.handleQuery)
	rt.mux.HandleFunc("POST /v1/arc", rt.handleArc)
	rt.mux.HandleFunc("GET /v1/reach", rt.handleReach)
	rt.mux.HandleFunc("GET /v1/plan", rt.handlePlan)
	rt.mux.HandleFunc("GET /healthz", rt.handleHealthz)
	rt.mux.HandleFunc("GET /metrics", rt.handleMetrics)
	return rt, nil
}

// ServeHTTP implements http.Handler.
func (rt *Router) ServeHTTP(w http.ResponseWriter, r *http.Request) { rt.mux.ServeHTTP(w, r) }

// Metrics exposes the live counters (for tests and embedding).
func (rt *Router) Metrics() *Metrics { return rt.met }

// snapshot returns the current ring (nil when no replica is healthy).
func (rt *Router) snapshot() *ring {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	return rt.ring
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

// queryRequest mirrors tcserve's POST /v1/query body; the router rewrites
// only the source list when scattering, every other field is forwarded
// untouched.
type queryRequest struct {
	Algorithm         string  `json:"algorithm"`
	Sources           []int32 `json:"sources"`
	Graph             string  `json:"graph,omitempty"`
	BufferPages       int     `json:"buffer_pages,omitempty"`
	PagePolicy        string  `json:"page_policy,omitempty"`
	ListPolicy        string  `json:"list_policy,omitempty"`
	ILIMIT            float64 `json:"ilimit,omitempty"`
	Parallelism       int     `json:"parallelism,omitempty"`
	TimeoutMS         int     `json:"timeout_ms,omitempty"`
	IncludeSuccessors bool    `json:"include_successors,omitempty"`
}

// shardResponse mirrors tcserve's POST /v1/query reply.
type shardResponse struct {
	Algorithm       string            `json:"algorithm"`
	Sources         []int32           `json:"sources,omitempty"`
	Cached          bool              `json:"cached"`
	Deduplicated    bool              `json:"deduplicated"`
	ElapsedMS       float64           `json:"elapsed_ms"`
	Metrics         Record            `json:"metrics"`
	SuccessorCounts map[int32]int     `json:"successor_counts"`
	Successors      map[int32][]int32 `json:"successors,omitempty"`
}

// queryResponse is the router's gathered reply: the same shape a single
// tcserve serves, plus the scatter accounting fields.
type queryResponse struct {
	Algorithm       string            `json:"algorithm"`
	Sources         []int32           `json:"sources,omitempty"`
	Cached          bool              `json:"cached"`       // every shard answered from its cache
	Deduplicated    bool              `json:"deduplicated"` // any shard coalesced in flight
	ElapsedMS       float64           `json:"elapsed_ms"`
	Shards          int               `json:"shards"`
	Retries         int               `json:"retries,omitempty"`
	Hedges          int               `json:"hedges,omitempty"`
	Metrics         Record            `json:"metrics"`
	SuccessorCounts map[int32]int     `json:"successor_counts"`
	Successors      map[int32][]int32 `json:"successors,omitempty"`
}

// shardGroup is the work for one owning replica: the sources it owns plus
// the retry/hedge rotation starting at it.
type shardGroup struct {
	sources  []int32
	rotation []*replica
}

// tenantSalt folds a tenant name into a ring-key perturbation, so the same
// source vertex of different tenants lands on different owners: each
// tenant's working set spreads independently over the fleet, and one
// tenant's hot sources do not pile onto the replicas owning another
// tenant's identical vertex ids. The default tenant's salt is zero, which
// keeps single-graph routing (and its warm caches) byte-identical.
func tenantSalt(graph string) int32 {
	if graph == "" {
		return 0
	}
	f := fnv.New32a()
	f.Write([]byte(graph))
	return int32(f.Sum32())
}

// partition groups a query's sources by owning replica, preserving the
// request's source order inside each group so replicas see canonical
// sub-queries. Ring keys are salted by the tenant so each tenant's
// ownership map is independent. An empty source list (full closure) is one
// group routed by the tenant's fixed key: the whole fleet holds the whole
// graph, so any owner works, and pinning the key keeps the full-closure
// cache warm on one replica per tenant.
func partition(rg *ring, sources []int32, salt int32) []shardGroup {
	if len(sources) == 0 {
		return []shardGroup{{sources: nil, rotation: rg.rotation(salt)}}
	}
	order := make([]*replica, 0, 4)
	groups := make(map[*replica]*shardGroup, 4)
	for _, s := range sources {
		rep := rg.owner(s ^ salt)
		g := groups[rep]
		if g == nil {
			g = &shardGroup{rotation: rg.rotation(s ^ salt)}
			groups[rep] = g
			order = append(order, rep)
		}
		g.sources = append(g.sources, s)
	}
	out := make([]shardGroup, 0, len(order))
	for _, rep := range order {
		out = append(out, *groups[rep])
	}
	return out
}

// shardOutcome is the final result of one scattered sub-request after
// retries and hedging.
type shardOutcome struct {
	status  int
	body    []byte
	err     error
	retries int
	hedges  int
}

// sendResult is one wire attempt's result.
type sendResult struct {
	status int
	body   []byte
	err    error
	rep    *replica
}

// send performs one HTTP exchange with one replica and charges the
// per-shard counters.
func (rt *Router) send(ctx context.Context, rep *replica, method, path string, body []byte) sendResult {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, rep.url+path, rd)
	if err != nil {
		rt.met.ShardRequest(rep.url, false)
		return sendResult{err: err, rep: rep}
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := rt.client.Do(req)
	if err != nil {
		rt.met.ShardRequest(rep.url, false)
		return sendResult{err: err, rep: rep}
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		rt.met.ShardRequest(rep.url, false)
		return sendResult{err: err, rep: rep}
	}
	rt.met.ShardRequest(rep.url, resp.StatusCode == http.StatusOK)
	return sendResult{status: resp.StatusCode, body: b, rep: rep}
}

// hedgedSend races one attempt against a hedge: the primary goes out
// immediately; if it has not answered within HedgeAfter, the same request
// is sent to alt, and the first useful (non-transient) answer wins while
// the loser's context is cancelled. With hedging disabled or no alternate
// replica available it is a plain send.
func (rt *Router) hedgedSend(ctx context.Context, primary, alt *replica, method, path string, body []byte) (sendResult, int) {
	pctx, pcancel := context.WithCancel(ctx)
	defer pcancel()
	ch := make(chan sendResult, 2)
	go func() { ch <- rt.send(pctx, primary, method, path, body) }()
	if rt.opts.HedgeAfter <= 0 || alt == nil {
		return <-ch, 0
	}
	timer := time.NewTimer(rt.opts.HedgeAfter)
	defer timer.Stop()
	select {
	case r := <-ch:
		return r, 0
	case <-timer.C:
	}
	rt.met.Hedges.Add(1)
	actx, acancel := context.WithCancel(ctx)
	defer acancel()
	go func() { ch <- rt.send(actx, alt, method, path, body) }()
	first := <-ch
	if !httpretry.Retryable(first.status, first.err) {
		if first.rep == alt {
			rt.met.HedgeWins.Add(1)
		}
		return first, 1 // deferred cancels abort the loser in flight
	}
	// The first leg to answer failed transiently. Give the surviving leg
	// one more hedge window rather than waiting it out: HedgeAfter is the
	// patience threshold, and the retry layer can rotate to a different
	// replica faster than a stuck leg can answer.
	grace := time.NewTimer(rt.opts.HedgeAfter)
	defer grace.Stop()
	select {
	case second := <-ch:
		if !httpretry.Retryable(second.status, second.err) {
			if second.rep == alt {
				rt.met.HedgeWins.Add(1)
			}
			return second, 1
		}
		// Both failed transiently; report the primary's outcome and let
		// the retry layer rotate.
		if first.rep == primary {
			return first, 1
		}
		return second, 1
	case <-grace.C:
		return first, 1
	}
}

// doShard runs one scattered sub-request to completion: attempts rotate
// through the healthy replicas starting at the owner, transient outcomes
// retry with exponential backoff, and each attempt may hedge to the next
// replica in the rotation.
func (rt *Router) doShard(ctx context.Context, rot []*replica, method, path string, body []byte) shardOutcome {
	ctx, cancel := context.WithTimeout(ctx, rt.opts.ShardTimeout)
	defer cancel()
	var out shardOutcome
	_, retries, _ := rt.retry.Do(ctx, func(try int) (int, error) {
		primary := rot[try%len(rot)]
		var alt *replica
		if len(rot) > 1 {
			alt = rot[(try+1)%len(rot)]
		}
		r, hedges := rt.hedgedSend(ctx, primary, alt, method, path, body)
		out.status, out.body, out.err = r.status, r.body, r.err
		out.hedges += hedges
		return r.status, r.err
	})
	out.retries = retries
	rt.met.Retries.Add(int64(retries))
	return out
}

// failShard translates a failed shard outcome into the router's response:
// a replica's HTTP failure passes through verbatim (the bodies carry the
// server's own error contract — retry hints and all), a transport failure
// after retries is a 502.
func (rt *Router) failShard(w http.ResponseWriter, out shardOutcome) {
	rt.met.Errors.Add(1)
	if out.err != nil {
		writeJSON(w, http.StatusBadGateway, map[string]any{
			"error":     fmt.Sprintf("replica unreachable after %d retries: %v", out.retries, out.err),
			"transient": true,
		})
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(out.status)
	_, _ = w.Write(out.body)
}

// noReplicas rejects a request when the ring is empty.
func (rt *Router) noReplicas(w http.ResponseWriter) {
	rt.met.Unavailable.Add(1)
	w.Header().Set("Retry-After", "1")
	writeJSON(w, http.StatusServiceUnavailable, map[string]any{
		"error":     "no healthy replicas",
		"transient": true,
	})
}

func (rt *Router) handleQuery(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	rt.met.Queries.Add(1)
	var qr queryRequest
	if err := json.NewDecoder(r.Body).Decode(&qr); err != nil {
		rt.met.Errors.Add(1)
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": fmt.Sprintf("bad request body: %v", err)})
		return
	}
	rg := rt.snapshot()
	if rg == nil {
		rt.noReplicas(w)
		return
	}
	if qr.Graph == "" {
		qr.Graph = r.URL.Query().Get("graph")
	}
	rt.met.TenantRequest(qr.Graph)
	groups := partition(rg, qr.Sources, tenantSalt(qr.Graph))
	rt.met.ObserveFanout(len(groups))

	outcomes := make([]shardOutcome, len(groups))
	var wg sync.WaitGroup
	for i, g := range groups {
		sub := qr
		sub.Sources = g.sources
		body, err := json.Marshal(sub)
		if err != nil {
			rt.met.Errors.Add(1)
			writeJSON(w, http.StatusInternalServerError, map[string]string{"error": err.Error()})
			return
		}
		wg.Add(1)
		go func(i int, rot []*replica, body []byte) {
			defer wg.Done()
			outcomes[i] = rt.doShard(r.Context(), rot, http.MethodPost, "/v1/query", body)
		}(i, g.rotation, body)
	}
	wg.Wait()

	resp := queryResponse{
		Algorithm: qr.Algorithm,
		Sources:   qr.Sources,
		Cached:    true,
		Shards:    len(groups),
	}
	records := make([]Record, 0, len(groups))
	for _, out := range outcomes {
		resp.Retries += out.retries
		resp.Hedges += out.hedges
	}
	// A deterministic client error (4xx) wins over transient failures:
	// the request itself is wrong and retrying elsewhere cannot help.
	var failed *shardOutcome
	for i := range outcomes {
		out := &outcomes[i]
		if out.err == nil && out.status == http.StatusOK {
			continue
		}
		if failed == nil || (out.err == nil && out.status >= 400 && out.status < 500 &&
			!(failed.err == nil && failed.status >= 400 && failed.status < 500)) {
			failed = out
		}
	}
	if failed != nil {
		rt.failShard(w, *failed)
		return
	}
	var shards []shardResponse
	for _, out := range outcomes {
		var sr shardResponse
		if err := json.Unmarshal(out.body, &sr); err != nil {
			rt.met.Errors.Add(1)
			writeJSON(w, http.StatusBadGateway, map[string]string{"error": fmt.Sprintf("bad replica response: %v", err)})
			return
		}
		shards = append(shards, sr)
	}
	resp.SuccessorCounts = make(map[int32]int)
	for _, sr := range shards {
		records = append(records, sr.Metrics)
		resp.Cached = resp.Cached && sr.Cached
		resp.Deduplicated = resp.Deduplicated || sr.Deduplicated
		for node, n := range sr.SuccessorCounts {
			resp.SuccessorCounts[node] = n
		}
		if sr.Successors != nil {
			if resp.Successors == nil {
				resp.Successors = make(map[int32][]int32)
			}
			for node, succ := range sr.Successors {
				resp.Successors[node] = succ
			}
		}
	}
	resp.Metrics = MergeRecords(records)
	resp.ElapsedMS = float64(time.Since(start)) / float64(time.Millisecond)
	rt.met.ObserveLatency(time.Since(start))
	writeJSON(w, http.StatusOK, resp)
}

func (rt *Router) handleReach(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	rt.met.Reaches.Add(1)
	src, err := strconv.ParseInt(r.URL.Query().Get("src"), 10, 32)
	if err != nil {
		rt.met.Errors.Add(1)
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": "reach needs integer src and dst parameters"})
		return
	}
	rg := rt.snapshot()
	if rg == nil {
		rt.noReplicas(w)
		return
	}
	tenant := r.URL.Query().Get("graph")
	rt.met.TenantRequest(tenant)
	out := rt.doShard(r.Context(), rg.rotation(int32(src)^tenantSalt(tenant)),
		http.MethodGet, "/v1/reach?"+r.URL.RawQuery, nil)
	if out.err != nil || out.status != http.StatusOK {
		rt.failShard(w, out)
		return
	}
	rt.met.ObserveLatency(time.Since(start))
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(out.body)
}

// handlePlan proxies the planner ranking to one healthy replica — every
// replica serves the same graphs, so any profile is the fleet's profile.
// The rotation is pinned per tenant: a tenant's plan requests keep landing
// on the replica whose adaptive observation store that tenant's queries
// feed most (its full-closure owner), so the served ranking reflects the
// densest evidence available.
func (rt *Router) handlePlan(w http.ResponseWriter, r *http.Request) {
	rt.met.Plans.Add(1)
	rg := rt.snapshot()
	if rg == nil {
		rt.noReplicas(w)
		return
	}
	tenant := r.URL.Query().Get("graph")
	rt.met.TenantRequest(tenant)
	path := "/v1/plan"
	if r.URL.RawQuery != "" {
		path += "?" + r.URL.RawQuery
	}
	out := rt.doShard(r.Context(), rg.rotation(tenantSalt(tenant)), http.MethodGet, path, nil)
	if out.err != nil || out.status != http.StatusOK {
		rt.failShard(w, out)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(out.body)
}

// replicaStatus is one replica's entry in the router's /healthz.
type replicaStatus struct {
	URL                 string            `json:"url"`
	State               string            `json:"state"`
	Fingerprint         string            `json:"fingerprint,omitempty"`
	Nodes               int               `json:"nodes,omitempty"`
	Arcs                int               `json:"arcs,omitempty"`
	Graphs              map[string]string `json:"graphs,omitempty"` // tenant -> fingerprint
	IndexGeneration     int               `json:"index_generation,omitempty"`
	Seq                 int64             `json:"seq,omitempty"`
	Pending             int               `json:"pending,omitempty"`
	Lagging             bool              `json:"lagging,omitempty"`
	ConsecutiveFailures int               `json:"consecutive_failures,omitempty"`
	LastError           string            `json:"last_error,omitempty"`
}

// handleHealthz reports the router's own health: the fleet fingerprint,
// how many replicas are enrolled, and each replica's state. The "nodes"
// field mirrors tcserve's healthz so load generators can point at a
// router and a replica interchangeably.
func (rt *Router) handleHealthz(w http.ResponseWriter, r *http.Request) {
	rt.mu.RLock()
	statuses := make([]replicaStatus, 0, len(rt.replicas))
	healthy := 0
	for _, rep := range rt.replicas {
		if rep.state == stateHealthy {
			healthy++
		}
		st := replicaStatus{
			URL:                 rep.url,
			State:               rep.state.String(),
			Fingerprint:         rep.fingerprint,
			Nodes:               rep.nodes,
			Arcs:                rep.arcs,
			ConsecutiveFailures: rep.consecFails,
			LastError:           rep.lastErr,
		}
		if rep.hasIndex {
			st.IndexGeneration = rep.indexGen
		}
		if rep.hasDyn {
			st.Seq = rep.dynSeq
			st.Pending = rep.dynPending
			st.Lagging = rep.lagExcluded
		}
		if len(rep.graphs) > 0 {
			st.Graphs = make(map[string]string, len(rep.graphs))
			for name, g := range rep.graphs {
				st.Graphs[name] = g.Fingerprint
			}
		}
		statuses = append(statuses, st)
	}
	expect, nodes := rt.expect, rt.nodes
	var fleetGraphs map[string]graphIdentity
	if len(rt.fleetGraphs) > 0 {
		fleetGraphs = make(map[string]graphIdentity, len(rt.fleetGraphs))
		for name, g := range rt.fleetGraphs {
			fleetGraphs[name] = g
		}
	}
	rt.mu.RUnlock()
	sort.Slice(statuses, func(i, j int) bool { return statuses[i].URL < statuses[j].URL })
	status := "ok"
	code := http.StatusOK
	if healthy == 0 {
		status = "unavailable"
		code = http.StatusServiceUnavailable
	}
	resp := map[string]any{
		"status":           status,
		"fingerprint":      expect,
		"nodes":            nodes,
		"healthy_replicas": healthy,
		"replicas":         statuses,
	}
	if fleetGraphs != nil {
		resp["graphs"] = fleetGraphs
	}
	writeJSON(w, code, resp)
}

// healthSnapshot extracts the per-replica health bits for /metrics.
func (rt *Router) healthSnapshot() []replicaHealth {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	out := make([]replicaHealth, len(rt.replicas))
	for i, rep := range rt.replicas {
		out[i] = replicaHealth{url: rep.url, healthy: rep.state == stateHealthy}
	}
	return out
}

func (rt *Router) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_, _ = w.Write([]byte(rt.met.Prometheus(rt.healthSnapshot())))
}
