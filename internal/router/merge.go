package router

// Record is the JSON shape of the paper's full metric record as served by
// tcserve (internal/server's metricRecord). The router merges one Record
// per shard into a single fleet-wide record with the same semantics as
// core's parallel worker merge (internal/core/parallel.go): additive
// counters sum — the merged record is honest about the total work the
// fleet performed — and per-phase wall times take the maximum, because
// the shards ran concurrently. Derived ratios are recomputed from the
// merged counters rather than averaged, so they remain exact.
type Record struct {
	RestructureReads  int64   `json:"restructure_reads"`
	RestructureWrites int64   `json:"restructure_writes"`
	ComputeReads      int64   `json:"compute_reads"`
	ComputeWrites     int64   `json:"compute_writes"`
	TotalIO           int64   `json:"total_io"`
	BufferHits        int64   `json:"buffer_hits"`
	BufferMisses      int64   `json:"buffer_misses"`
	BufferEvicts      int64   `json:"buffer_evicts"`
	BufferHitRatio    float64 `json:"buffer_hit_ratio"`

	TuplesGenerated   int64 `json:"tuples_generated"`
	Duplicates        int64 `json:"duplicates"`
	DistinctTuples    int64 `json:"distinct_tuples"`
	SourceTuples      int64 `json:"source_tuples"`
	SuccessorsFetched int64 `json:"successors_fetched"`
	ListUnions        int64 `json:"list_unions"`
	ArcsConsidered    int64 `json:"arcs_considered"`
	ArcsMarked        int64 `json:"arcs_marked"`

	MarkingPct          float64 `json:"marking_pct"`
	SelectionEfficiency float64 `json:"selection_efficiency"`
	UnmarkedLocality    float64 `json:"unmarked_locality"`

	MagicNodes int64   `json:"magic_nodes,omitempty"`
	MagicArcs  int64   `json:"magic_arcs,omitempty"`
	MagicH     float64 `json:"magic_h,omitempty"`
	MagicW     float64 `json:"magic_w,omitempty"`

	PageSplits   int64 `json:"page_splits"`
	ListsMoved   int64 `json:"lists_moved"`
	EntriesMoved int64 `json:"entries_moved"`
	Overflows    int64 `json:"overflows"`

	RestructureMS float64 `json:"restructure_ms"`
	ComputeMS     float64 `json:"compute_ms"`
	EstimatedIOMS float64 `json:"estimated_io_ms"`
}

// MergeRecords folds the per-shard records into one fleet record. It is a
// pure function of its inputs so a differential test can apply it to
// records obtained from a single server and compare byte-for-byte.
func MergeRecords(records []Record) Record {
	if len(records) == 0 {
		return Record{}
	}
	m := records[0]
	// locWeight carries the numerator of the unmarked-locality weighted
	// mean (see below).
	locSum := m.UnmarkedLocality * float64(m.ListUnions)
	for _, r := range records[1:] {
		m.RestructureReads += r.RestructureReads
		m.RestructureWrites += r.RestructureWrites
		m.ComputeReads += r.ComputeReads
		m.ComputeWrites += r.ComputeWrites
		m.BufferHits += r.BufferHits
		m.BufferMisses += r.BufferMisses
		m.BufferEvicts += r.BufferEvicts

		m.TuplesGenerated += r.TuplesGenerated
		m.Duplicates += r.Duplicates
		m.DistinctTuples += r.DistinctTuples
		m.SourceTuples += r.SourceTuples
		m.SuccessorsFetched += r.SuccessorsFetched
		m.ListUnions += r.ListUnions
		m.ArcsConsidered += r.ArcsConsidered
		m.ArcsMarked += r.ArcsMarked
		locSum += r.UnmarkedLocality * float64(r.ListUnions)

		m.MagicNodes += r.MagicNodes
		m.MagicArcs += r.MagicArcs
		if r.MagicH > m.MagicH {
			m.MagicH = r.MagicH
		}
		if r.MagicW > m.MagicW {
			m.MagicW = r.MagicW
		}

		m.PageSplits += r.PageSplits
		m.ListsMoved += r.ListsMoved
		m.EntriesMoved += r.EntriesMoved
		m.Overflows += r.Overflows

		if r.RestructureMS > m.RestructureMS {
			m.RestructureMS = r.RestructureMS
		}
		if r.ComputeMS > m.ComputeMS {
			m.ComputeMS = r.ComputeMS
		}
	}
	// Derived fields, recomputed exactly from the merged counters (the
	// same formulas as core.Metrics).
	m.TotalIO = m.RestructureReads + m.RestructureWrites + m.ComputeReads + m.ComputeWrites
	m.EstimatedIOMS = float64(m.TotalIO) * 20 // the paper's 20 ms per I/O
	m.BufferHitRatio = 0
	if m.BufferHits+m.BufferMisses > 0 {
		m.BufferHitRatio = float64(m.BufferHits) / float64(m.BufferHits+m.BufferMisses)
	}
	m.MarkingPct = 0
	if m.ArcsConsidered > 0 {
		m.MarkingPct = 100 * float64(m.ArcsMarked) / float64(m.ArcsConsidered)
	}
	m.SelectionEfficiency = 0
	if m.DistinctTuples > 0 {
		m.SelectionEfficiency = float64(m.SourceTuples) / float64(m.DistinctTuples)
	}
	// Unmarked locality is a per-union mean whose sample count is not part
	// of the wire record; the union count is its closest proxy, so the
	// merge takes the union-weighted mean (exact when every union touched
	// an unmarked arc, the common case).
	m.UnmarkedLocality = 0
	if m.ListUnions > 0 {
		m.UnmarkedLocality = locSum / float64(m.ListUnions)
	}
	return m
}
