package router

import (
	"hash/fnv"
	"sort"
)

// ring is a consistent-hash ring over the currently healthy replicas.
// Each replica contributes vnodes points (FNV-1a of "url#i", finished
// through a splitmix64 avalanche so nearby inputs land far apart); a
// source vertex belongs to the first point clockwise of its own hash.
// Consistent hashing is what keeps shard ownership — and therefore each
// replica's warm result cache — stable when one replica leaves or
// rejoins: only the keys owned by the departed replica move.
//
// A ring is immutable once built; the router swaps in a fresh ring under
// its lock whenever health state changes, and requests in flight keep the
// snapshot they started with.
type ring struct {
	points []ringPoint
	reps   []*replica // the distinct healthy replicas on the ring
}

type ringPoint struct {
	h   uint64
	rep *replica
}

// buildRing places every replica on the ring. A nil return means no
// replicas are available.
func buildRing(reps []*replica, vnodes int) *ring {
	if len(reps) == 0 {
		return nil
	}
	if vnodes < 1 {
		vnodes = 1
	}
	r := &ring{
		points: make([]ringPoint, 0, len(reps)*vnodes),
		reps:   append([]*replica(nil), reps...),
	}
	for _, rep := range reps {
		for i := 0; i < vnodes; i++ {
			r.points = append(r.points, ringPoint{h: pointHash(rep.url, i), rep: rep})
		}
	}
	sort.Slice(r.points, func(i, j int) bool { return r.points[i].h < r.points[j].h })
	return r
}

// owner returns the replica owning a source vertex.
func (r *ring) owner(key int32) *replica {
	i := r.search(keyHash(key))
	return r.points[i].rep
}

// rotation returns the distinct replicas in clockwise order starting at
// the key's owner. It is the retry/hedge order for work on that key: the
// owner first (its cache is warm for the key), then the other replicas as
// fallbacks.
func (r *ring) rotation(key int32) []*replica {
	out := make([]*replica, 0, len(r.reps))
	seen := make(map[*replica]bool, len(r.reps))
	start := r.search(keyHash(key))
	for i := 0; i < len(r.points) && len(out) < len(r.reps); i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.rep] {
			seen[p.rep] = true
			out = append(out, p.rep)
		}
	}
	return out
}

// search finds the first point at or clockwise of h.
func (r *ring) search(h uint64) int {
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].h >= h })
	if i == len(r.points) {
		i = 0
	}
	return i
}

func pointHash(url string, vnode int) uint64 {
	f := fnv.New64a()
	f.Write([]byte(url))
	f.Write([]byte{'#', byte(vnode), byte(vnode >> 8)})
	return mix(f.Sum64())
}

func keyHash(key int32) uint64 {
	return mix(uint64(uint32(key)) * 0x9e3779b97f4a7c15)
}

// mix is the splitmix64 finisher: a cheap avalanche so sequential vertex
// ids spread uniformly around the ring.
func mix(z uint64) uint64 {
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return z
}
