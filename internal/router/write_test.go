package router

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"tcstudy/internal/core"
	"tcstudy/internal/dynamic"
	"tcstudy/internal/graph"
	"tcstudy/internal/graphgen"
	"tcstudy/internal/index"
	"tcstudy/internal/server"
)

// newDynamicReplica spins one mutable tcserve stack: the same generated
// graph as newReplicaServer, fronted by a dynamic mutation service in
// manual-rebuild mode (deterministic tests; overlay answers stay correct).
func newDynamicReplica(t *testing.T, nodes int, seed int64) *httptest.Server {
	t.Helper()
	arcs, err := graphgen.Generate(graphgen.Params{Nodes: nodes, OutDegree: 4, Locality: 40, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	db := core.NewDatabase(nodes, arcs)
	idx, err := index.Build(graph.New(nodes, arcs))
	if err != nil {
		t.Fatal(err)
	}
	fp, err := db.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	dyn, err := dynamic.New(nodes, arcs, idx, dynamic.Options{Manual: true, BaseFingerprint: fp})
	if err != nil {
		t.Fatal(err)
	}
	s := server.New(db, server.Options{Dynamic: dyn})
	ts := httptest.NewServer(s)
	t.Cleanup(func() {
		ts.Close()
		s.Close()
		dyn.Close()
	})
	return ts
}

// postArcDirect sends one mutation batch straight to a replica.
func postArcDirect(t *testing.T, base, body string) (int, replicaArcResponse) {
	t.Helper()
	resp, err := http.Post(base+"/v1/arc", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var ar replicaArcResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&ar); err != nil {
			t.Fatal(err)
		}
	}
	return resp.StatusCode, ar
}

func fetchFingerprint(t *testing.T, base string) string {
	t.Helper()
	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var h struct {
		Fingerprint string `json:"fingerprint"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	return h.Fingerprint
}

func fetchReach(t *testing.T, base string, src, dst int32) bool {
	t.Helper()
	resp, err := http.Get(fmt.Sprintf("%s/v1/reach?src=%d&dst=%d", base, src, dst))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("reach %d->%d: status %d", src, dst, resp.StatusCode)
	}
	var rr struct {
		Reachable bool `json:"reachable"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&rr); err != nil {
		t.Fatal(err)
	}
	return rr.Reachable
}

// TestRouterWriteFanout proves the write path is invisible to consistency:
// every mutation batch fanned through the router leaves all three replicas
// with matching dataset fingerprints, and the routed fleet answers every
// reach probe identically to a single mutated tcserve fed the same batch
// sequence directly.
func TestRouterWriteFanout(t *testing.T) {
	const nodes = 120
	a := newDynamicReplica(t, nodes, 7)
	b := newDynamicReplica(t, nodes, 7)
	c := newDynamicReplica(t, nodes, 7)
	single := newDynamicReplica(t, nodes, 7)
	rt, ts := newFleetRouter(t, Options{}, a.URL, b.URL, c.URL)

	rng := uint64(99)
	next := func(n int32) int32 {
		rng = rng*6364136223846793005 + 1442695040888963407
		return int32(rng>>33)%n + 1
	}
	for step := 0; step < 15; step++ {
		var ops []string
		for k := 0; k < 3; k++ {
			op := "insert"
			if (step+k)%3 == 2 {
				op = "delete"
			}
			ops = append(ops, fmt.Sprintf(`{"op":%q,"from":%d,"to":%d}`, op, next(nodes), next(nodes)))
		}
		body := fmt.Sprintf(`{"ops":[%s]}`, strings.Join(ops, ","))

		resp, err := http.Post(ts.URL+"/v1/arc", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		var ar arcRouterResponse
		if err := json.NewDecoder(resp.Body).Decode(&ar); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("step %d: router write status %d", step, resp.StatusCode)
		}
		if ar.Replicas != 3 {
			t.Fatalf("step %d: batch acknowledged by %d replicas, want 3", step, ar.Replicas)
		}
		if code, sr := postArcDirect(t, single.URL, body); code != http.StatusOK {
			t.Fatalf("step %d: single write status %d", step, code)
		} else if sr.Fingerprint != ar.Fingerprint {
			t.Fatalf("step %d: router fleet fingerprint %s, single server %s", step, ar.Fingerprint, sr.Fingerprint)
		}

		// All replicas must agree with each other and with the single server.
		fps := map[string]string{
			"a": fetchFingerprint(t, a.URL), "b": fetchFingerprint(t, b.URL),
			"c": fetchFingerprint(t, c.URL), "single": fetchFingerprint(t, single.URL),
		}
		for name, fp := range fps {
			if fp != ar.Fingerprint {
				t.Fatalf("step %d: replica %s fingerprint %s, fleet reports %s", step, name, fp, ar.Fingerprint)
			}
		}

		// Routed reach answers match the single mutated server.
		for p := 0; p < 10; p++ {
			src, dst := next(nodes), next(nodes)
			if got, want := fetchReach(t, ts.URL, src, dst), fetchReach(t, single.URL, src, dst); got != want {
				t.Fatalf("step %d: routed reach(%d,%d)=%t, single server says %t", step, src, dst, got, want)
			}
		}
	}
	// The router's pinned fleet fingerprint tracked the writes: a health
	// sweep right now keeps all three replicas enrolled.
	rt.CheckNow(context.Background())
	if _, h := routerHealthz(t, ts.URL); h["healthy_replicas"].(float64) != 3 {
		t.Fatalf("post-write sweep dropped replicas: %v", h)
	}
}

// TestRouterWriteValidationPassthrough: a batch every replica rejects as
// malformed surfaces the replica's own 400, not a 502.
func TestRouterWriteValidationPassthrough(t *testing.T) {
	a := newDynamicReplica(t, 50, 7)
	b := newDynamicReplica(t, 50, 7)
	_, ts := newFleetRouter(t, Options{}, a.URL, b.URL)

	resp, err := http.Post(ts.URL+"/v1/arc", "application/json",
		strings.NewReader(`{"ops":[{"op":"upsert","from":1,"to":2}]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("invalid batch: status %d, want 400", resp.StatusCode)
	}
}

// TestRouterWritePartialFailure: a write missing any ack fails the whole
// batch with a retryable error and counts a write failure.
func TestRouterWritePartialFailure(t *testing.T) {
	a := newDynamicReplica(t, 50, 7)
	b := newDynamicReplica(t, 50, 7)
	rt, ts := newFleetRouter(t, Options{Retries: 1}, a.URL, b.URL)

	b.Close() // enrolled but now unreachable: the ack can never arrive

	resp, err := http.Post(ts.URL+"/v1/arc", "application/json",
		strings.NewReader(`{"ops":[{"op":"insert","from":1,"to":50}]}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("partial write: status %d, want 502", resp.StatusCode)
	}
	var e struct {
		Error     string `json:"error"`
		Transient bool   `json:"transient"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
		t.Fatal(err)
	}
	if !e.Transient || !strings.Contains(e.Error, "1/2") {
		t.Fatalf("partial write error %+v", e)
	}
	if rt.Metrics().WriteFailures.Load() != 1 {
		t.Fatalf("write failures %d, want 1", rt.Metrics().WriteFailures.Load())
	}

	// The acked replica holds the batch and the router adopted its
	// fingerprint: the sweeps must keep it enrolled (and drop only the
	// dead one, after FailThreshold misses) instead of wedging the whole
	// fleet as mismatched.
	for i := 0; i < 3; i++ {
		rt.CheckNow(context.Background())
	}
	_, h := routerHealthz(t, ts.URL)
	if got := h["healthy_replicas"].(float64); got != 1 {
		t.Fatalf("healthy replicas after partial write + sweep: %v, want 1:\n%v", got, h)
	}
	if !fetchReach(t, ts.URL, 1, 50) {
		t.Fatal("routed reach(1,50) should see the half-acked insert via the surviving replica")
	}
}

// TestRouterLagExclusion: replicas whose applied write sequence trails the
// fleet's most advanced replica beyond MaxGenerationLag are held out of
// the read ring (they would answer without recent writes) but stay
// enrolled, and rejoin once they catch up.
func TestRouterLagExclusion(t *testing.T) {
	a := newDynamicReplica(t, 50, 7)
	b := newDynamicReplica(t, 50, 7)
	c := newDynamicReplica(t, 50, 7)
	rt, ts := newFleetRouter(t, Options{MaxGenerationLag: 2}, a.URL, b.URL, c.URL)

	// Three fingerprint-neutral batches applied only to replica a: insert
	// then delete the same arc leaves the dataset identity untouched, so b
	// and c still match the fleet — they have just missed 6 sequence
	// numbers' worth of writes.
	noop := []string{
		`{"ops":[{"op":"insert","from":1,"to":49}]}`,
		`{"ops":[{"op":"delete","from":1,"to":49}]}`,
	}
	catchUp := func(base string) {
		for i := 0; i < 3; i++ {
			for _, body := range noop {
				if code, _ := postArcDirect(t, base, body); code != http.StatusOK {
					t.Fatalf("direct write to %s: status %d", base, code)
				}
			}
		}
	}
	catchUp(a.URL)
	rt.CheckNow(context.Background())

	rg := rt.snapshot()
	if rg == nil {
		t.Fatal("ring empty after lag exclusion")
	}
	owners := map[string]bool{}
	for s := int32(1); s <= 50; s++ {
		owners[rg.owner(s).url] = true
	}
	if len(owners) != 1 || !owners[a.URL] {
		t.Fatalf("read ring owners %v, want only the caught-up replica %s", owners, a.URL)
	}
	_, h := routerHealthz(t, ts.URL)
	lagging := 0
	for _, v := range h["replicas"].([]any) {
		if v.(map[string]any)["lagging"] == true {
			lagging++
		}
	}
	if lagging != 2 {
		t.Fatalf("healthz reports %d lagging replicas, want 2:\n%v", lagging, h)
	}

	// Replay the same batches on b and c: the gap closes and the next sweep
	// restores the full ring.
	catchUp(b.URL)
	catchUp(c.URL)
	rt.CheckNow(context.Background())
	owners = map[string]bool{}
	for s := int32(1); s <= 50; s++ {
		owners[rt.snapshot().owner(s).url] = true
	}
	if len(owners) != 3 {
		t.Fatalf("ring owners after catch-up %v, want all 3 replicas", owners)
	}
}
