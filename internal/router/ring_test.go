package router

import "testing"

func testReplicas(urls ...string) []*replica {
	reps := make([]*replica, len(urls))
	for i, u := range urls {
		reps[i] = &replica{url: u, state: stateHealthy}
	}
	return reps
}

func TestRingDeterministicOwnership(t *testing.T) {
	reps := testReplicas("http://a", "http://b", "http://c")
	r1 := buildRing(reps, 64)
	r2 := buildRing(reps, 64)
	for key := int32(1); key <= 500; key++ {
		if r1.owner(key) != r2.owner(key) {
			t.Fatalf("key %d owned differently by identical rings", key)
		}
	}
}

func TestRingSpreadsKeys(t *testing.T) {
	reps := testReplicas("http://a", "http://b", "http://c")
	r := buildRing(reps, 64)
	counts := make(map[*replica]int)
	const keys = 3000
	for key := int32(1); key <= keys; key++ {
		counts[r.owner(key)]++
	}
	if len(counts) != 3 {
		t.Fatalf("only %d replicas own keys, want 3", len(counts))
	}
	for rep, n := range counts {
		// With 64 vnodes each replica should own a meaningful share; a
		// replica under 10% means the hash is clumping.
		if n < keys/10 {
			t.Errorf("replica %s owns only %d/%d keys", rep.url, n, keys)
		}
	}
}

func TestRingConsistency(t *testing.T) {
	// Removing one replica may only move the keys it owned; everything
	// else keeps its owner. That is the property that keeps replica
	// caches warm across membership churn.
	all := testReplicas("http://a", "http://b", "http://c", "http://d")
	full := buildRing(all, 64)
	without := buildRing(all[:3], 64)
	moved := 0
	const keys = 2000
	for key := int32(1); key <= keys; key++ {
		was, is := full.owner(key), without.owner(key)
		if was == all[3] {
			continue // its owner left; it must move somewhere
		}
		if was != is {
			moved++
		}
	}
	if moved != 0 {
		t.Fatalf("%d keys not owned by the departed replica changed owner", moved)
	}
}

func TestRingRotation(t *testing.T) {
	reps := testReplicas("http://a", "http://b", "http://c")
	r := buildRing(reps, 32)
	for key := int32(1); key <= 100; key++ {
		rot := r.rotation(key)
		if len(rot) != 3 {
			t.Fatalf("rotation(%d) has %d replicas, want all 3", key, len(rot))
		}
		if rot[0] != r.owner(key) {
			t.Fatalf("rotation(%d) does not start at the owner", key)
		}
		seen := map[*replica]bool{}
		for _, rep := range rot {
			if seen[rep] {
				t.Fatalf("rotation(%d) repeats replica %s", key, rep.url)
			}
			seen[rep] = true
		}
	}
}

func TestRingSingleReplica(t *testing.T) {
	r := buildRing(testReplicas("http://only"), 64)
	for key := int32(1); key <= 50; key++ {
		if r.owner(key).url != "http://only" {
			t.Fatal("single-replica ring misroutes")
		}
	}
	if buildRing(nil, 64) != nil {
		t.Fatal("empty ring should be nil")
	}
}
