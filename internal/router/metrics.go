package router

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"tcstudy/internal/obsv"
)

// Metrics is the router's live counter set, served by GET /metrics in
// Prometheus text exposition format through the internal/obsv primitives.
// Per-shard traffic is labeled by replica URL so a scraper can see the
// consistent-hash spread; hedges and retries get their own counters
// because they are the router's two tail-latency defenses and their rates
// are the first thing to look at when p99 moves.
type Metrics struct {
	start time.Time

	Queries   atomic.Int64 // POST /v1/query requests accepted
	Reaches   atomic.Int64 // GET /v1/reach requests accepted
	Plans     atomic.Int64 // GET /v1/plan requests proxied
	ArcWrites atomic.Int64 // POST /v1/arc batches accepted for fan-out

	Errors      atomic.Int64 // requests failed at the router (after retries)
	Unavailable atomic.Int64 // requests refused because no replica was healthy

	Retries   atomic.Int64 // shard sub-request retries (transient outcomes)
	Hedges    atomic.Int64 // hedged second requests launched
	HedgeWins atomic.Int64 // hedges that beat the primary

	WriteFailures atomic.Int64 // write batches not acknowledged by the whole fleet

	Excluded      atomic.Int64 // replicas marked out by consecutive health failures
	Mismatched    atomic.Int64 // replicas refused enrollment on fingerprint mismatch
	LagExclusions atomic.Int64 // ring rebuilds that held a replica out for write lag
	HealthChecks  atomic.Int64 // health sweeps performed

	lat    *obsv.Histogram // end-to-end router latency, seconds
	fanout *obsv.Histogram // shards contacted per scattered query

	mu      sync.Mutex
	shards  map[string]*shardCounters // by replica URL
	tenants map[string]*atomic.Int64  // routed requests by tenant name
}

type shardCounters struct {
	requests atomic.Int64 // sub-requests sent (including retries and hedges)
	failures atomic.Int64 // sub-requests that did not return 200
}

// fanoutBuckets covers scatter widths from a single shard to a large fleet.
func fanoutBuckets() []float64 { return []float64{1, 2, 3, 4, 6, 8, 12, 16, 24, 32} }

// NewMetrics returns a zeroed metric set with the clock started.
func NewMetrics() *Metrics {
	return &Metrics{
		start:   time.Now(),
		lat:     obsv.NewHistogram(obsv.DurationBuckets()...),
		fanout:  obsv.NewHistogram(fanoutBuckets()...),
		shards:  make(map[string]*shardCounters),
		tenants: make(map[string]*atomic.Int64),
	}
}

// TenantRequest counts one routed read by tenant name; requests without a
// graph selector are the default tenant's.
func (m *Metrics) TenantRequest(tenant string) {
	if tenant == "" {
		tenant = "default"
	}
	m.mu.Lock()
	c := m.tenants[tenant]
	if c == nil {
		c = &atomic.Int64{}
		m.tenants[tenant] = c
	}
	m.mu.Unlock()
	c.Add(1)
}

// ObserveLatency records one completed router request.
func (m *Metrics) ObserveLatency(d time.Duration) { m.lat.Observe(d.Seconds()) }

// ObserveFanout records how many shards one query scattered to.
func (m *Metrics) ObserveFanout(shards int) { m.fanout.Observe(float64(shards)) }

// Shard returns the counter pair for one replica, creating it on first use.
func (m *Metrics) Shard(url string) *shardCounters {
	m.mu.Lock()
	defer m.mu.Unlock()
	c := m.shards[url]
	if c == nil {
		c = &shardCounters{}
		m.shards[url] = c
	}
	return c
}

// ShardRequest counts one sub-request to a replica and, when it failed,
// the failure.
func (m *Metrics) ShardRequest(url string, ok bool) {
	c := m.Shard(url)
	c.requests.Add(1)
	if !ok {
		c.failures.Add(1)
	}
}

// replicaHealth is the health snapshot Prometheus needs; the router passes
// it in because replica state belongs to the router's lock, not to Metrics.
type replicaHealth struct {
	url     string
	healthy bool
}

// Prometheus renders the metric set in text exposition format.
func (m *Metrics) Prometheus(health []replicaHealth) string {
	e := obsv.NewExposition()
	e.Gauge("tcr_uptime_seconds", "Seconds since the router started.",
		time.Since(m.start).Seconds())

	e.CounterFamily("tcr_requests_total", "Requests accepted for routing, by endpoint.")
	e.Sample("tcr_requests_total", []obsv.Label{{Name: "endpoint", Value: "query"}},
		float64(m.Queries.Load()))
	e.Sample("tcr_requests_total", []obsv.Label{{Name: "endpoint", Value: "reach"}},
		float64(m.Reaches.Load()))
	e.Sample("tcr_requests_total", []obsv.Label{{Name: "endpoint", Value: "plan"}},
		float64(m.Plans.Load()))
	e.Sample("tcr_requests_total", []obsv.Label{{Name: "endpoint", Value: "arc"}},
		float64(m.ArcWrites.Load()))

	e.Counter("tcr_errors_total", "Requests failed at the router after retries.",
		float64(m.Errors.Load()))
	e.Counter("tcr_unavailable_total", "Requests refused because no replica was healthy.",
		float64(m.Unavailable.Load()))
	e.Counter("tcr_retries_total", "Shard sub-request retries on transient failures.",
		float64(m.Retries.Load()))
	e.Counter("tcr_hedges_total", "Hedged second requests launched for slow shards.",
		float64(m.Hedges.Load()))
	e.Counter("tcr_hedge_wins_total", "Hedged requests that beat the primary.",
		float64(m.HedgeWins.Load()))
	e.Counter("tcr_replicas_excluded_total",
		"Replicas marked out after consecutive health-check failures.",
		float64(m.Excluded.Load()))
	e.Counter("tcr_replicas_mismatched_total",
		"Replicas refused enrollment because their dataset fingerprint differs from the fleet's.",
		float64(m.Mismatched.Load()))
	e.Counter("tcr_write_failures_total",
		"Mutation batches not acknowledged by every enrolled replica.",
		float64(m.WriteFailures.Load()))
	e.Counter("tcr_lag_exclusions_total",
		"Ring rebuilds that held a replica out of the read ring for trailing the fleet's write sequence.",
		float64(m.LagExclusions.Load()))
	e.Counter("tcr_health_checks_total", "Health sweeps performed across the fleet.",
		float64(m.HealthChecks.Load()))

	m.mu.Lock()
	urls := make([]string, 0, len(m.shards))
	for u := range m.shards {
		urls = append(urls, u)
	}
	sort.Strings(urls)
	reqs := make([]int64, len(urls))
	fails := make([]int64, len(urls))
	for i, u := range urls {
		reqs[i] = m.shards[u].requests.Load()
		fails[i] = m.shards[u].failures.Load()
	}
	m.mu.Unlock()
	m.mu.Lock()
	tnames := make([]string, 0, len(m.tenants))
	for n := range m.tenants {
		tnames = append(tnames, n)
	}
	sort.Strings(tnames)
	tvals := make([]int64, len(tnames))
	for i, n := range tnames {
		tvals[i] = m.tenants[n].Load()
	}
	m.mu.Unlock()
	if len(tnames) > 0 {
		e.CounterFamily("tcr_tenant_requests_total", "Reads routed per tenant (query, reach and plan).")
		for i, n := range tnames {
			e.Sample("tcr_tenant_requests_total", []obsv.Label{{Name: "tenant", Value: n}}, float64(tvals[i]))
		}
	}

	e.CounterFamily("tcr_shard_requests_total", "Sub-requests sent to each replica, including retries and hedges.")
	for i, u := range urls {
		e.Sample("tcr_shard_requests_total", []obsv.Label{{Name: "replica", Value: u}}, float64(reqs[i]))
	}
	e.CounterFamily("tcr_shard_failures_total", "Sub-requests per replica that did not return 200.")
	for i, u := range urls {
		e.Sample("tcr_shard_failures_total", []obsv.Label{{Name: "replica", Value: u}}, float64(fails[i]))
	}

	e.GaugeFamily("tcr_replica_healthy", "1 when the replica is enrolled and healthy, 0 otherwise.")
	healthy := 0
	for _, h := range health {
		v := 0.0
		if h.healthy {
			v = 1
			healthy++
		}
		e.Sample("tcr_replica_healthy", []obsv.Label{{Name: "replica", Value: h.url}}, v)
	}
	e.GaugeFamily("tcr_healthy_replicas", "Number of replicas currently enrolled and healthy.")
	e.Sample("tcr_healthy_replicas", nil, float64(healthy))

	e.HistogramFamily("tcr_request_duration_seconds", "End-to-end router request latency.")
	e.Histogram("tcr_request_duration_seconds", nil, m.lat.Snapshot())
	e.HistogramFamily("tcr_scatter_fanout_shards", "Shards contacted per scattered query.")
	e.Histogram("tcr_scatter_fanout_shards", nil, m.fanout.Snapshot())
	return e.String()
}
