package router

import (
	"bytes"
	"encoding/json"
	"net/http"
	"sort"
	"testing"
)

// postShardQuery sends one tcserve-shaped query directly to a replica and
// decodes the raw shard response.
func postShardQuery(t *testing.T, base string, body any) shardResponse {
	t.Helper()
	resp, err := http.Post(base+"/v1/query", "application/json", bytes.NewReader(mustJSON(t, body)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("direct query status %d", resp.StatusCode)
	}
	var sr shardResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		t.Fatal(err)
	}
	return sr
}

// canonical returns a copy of a successor map with each list sorted, the
// order-free encoding of the reachable sets.
func canonical(m map[int32][]int32) map[int32][]int32 {
	out := make(map[int32][]int32, len(m))
	for node, succ := range m {
		s := append([]int32(nil), succ...)
		sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
		out[node] = s
	}
	return out
}

// zeroWallClock clears the fields a merge cannot reproduce across runs:
// measured wall times differ between processes even on identical work.
// Everything else in a record — counters, I/O totals, derived ratios,
// the estimated (model-based) I/O time — is deterministic.
func zeroWallClock(r Record) Record {
	r.RestructureMS = 0
	r.ComputeMS = 0
	return r
}

// TestRouterDifferential proves the scatter-gather tier is invisible to
// correctness: for seeded graphs served by three shards, the router's
// gathered answer is byte-identical to a single tcserve's answer for the
// same multi-source query, and the router's merged metric record equals
// MergeRecords applied to the per-shard records a single server produces
// for exactly the router's shard sub-queries.
func TestRouterDifferential(t *testing.T) {
	const nodes = 300
	for _, seed := range []int64{7, 23} {
		a := newReplicaServer(t, nodes, seed)
		b := newReplicaServer(t, nodes, seed)
		c := newReplicaServer(t, nodes, seed)
		single := newReplicaServer(t, nodes, seed)
		rt, ts := newFleetRouter(t, Options{}, a.URL, b.URL, c.URL)

		// Choose sources that provably cover all three replicas: the ring
		// depends on the ephemeral httptest URLs, so fixed vertex IDs
		// cannot guarantee a three-way scatter.
		var sources []int32
		perOwner := map[*replica]int{}
		for s := int32(1); s <= int32(nodes) && len(sources) < 6; s++ {
			rep := rt.snapshot().owner(s)
			if perOwner[rep] < 2 {
				perOwner[rep]++
				sources = append(sources, s)
			}
		}
		if len(perOwner) != 3 {
			t.Fatalf("seed %d: sources cover %d replicas, want 3", seed, len(perOwner))
		}

		for _, alg := range []string{"srch", "bj", "btc"} {
			body := map[string]any{"algorithm": alg, "sources": sources, "include_successors": true}

			resp, got := postRouterQuery(t, ts.URL, body)
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("seed %d alg %s: router status %d", seed, alg, resp.StatusCode)
			}
			if got.Shards != 3 {
				t.Fatalf("seed %d alg %s: query scattered to %d shards, want 3 for the differential to mean anything", seed, alg, got.Shards)
			}
			want := postShardQuery(t, single.URL, body)

			// Answers must be byte-identical: encoding/json writes map
			// keys sorted, so equal content means equal bytes.
			gotCounts, wantCounts := mustJSON(t, got.SuccessorCounts), mustJSON(t, want.SuccessorCounts)
			if !bytes.Equal(gotCounts, wantCounts) {
				t.Fatalf("seed %d alg %s: successor_counts differ\nrouter: %s\nsingle: %s", seed, alg, gotCounts, wantCounts)
			}
			// Successor lists are laid out in processing order (see
			// core/metrics.go), which legitimately depends on how the
			// query was partitioned; the SET is the answer, so compare
			// the canonical sorted encoding.
			gotSucc, wantSucc := mustJSON(t, canonical(got.Successors)), mustJSON(t, canonical(want.Successors))
			if !bytes.Equal(gotSucc, wantSucc) {
				t.Fatalf("seed %d alg %s: successor sets differ", seed, alg)
			}

			// The merged metric record must be exactly MergeRecords over
			// the per-shard records: replay the router's own shard
			// sub-queries against the single server and merge those.
			rg := rt.snapshot()
			var shardRecords []Record
			for _, g := range partition(rg, sources, 0) {
				sub := map[string]any{"algorithm": alg, "sources": g.sources, "include_successors": true}
				shardRecords = append(shardRecords, postShardQuery(t, single.URL, sub).Metrics)
			}
			if len(shardRecords) != got.Shards {
				t.Fatalf("seed %d alg %s: replayed %d shard groups, router reported %d", seed, alg, len(shardRecords), got.Shards)
			}
			gotRec := mustJSON(t, zeroWallClock(got.Metrics))
			wantRec := mustJSON(t, zeroWallClock(MergeRecords(shardRecords)))
			if !bytes.Equal(gotRec, wantRec) {
				t.Fatalf("seed %d alg %s: merged metric records differ\nrouter: %s\nreplay: %s", seed, alg, gotRec, wantRec)
			}
		}

		// Full closure (empty source list) routes as a single shard and
		// must also match the single server bit for bit.
		body := map[string]any{"algorithm": "srch", "include_successors": true}
		resp, got := postRouterQuery(t, ts.URL, body)
		if resp.StatusCode != http.StatusOK || got.Shards != 1 {
			t.Fatalf("seed %d: full closure status %d shards %d", seed, resp.StatusCode, got.Shards)
		}
		want := postShardQuery(t, single.URL, body)
		if !bytes.Equal(mustJSON(t, got.SuccessorCounts), mustJSON(t, want.SuccessorCounts)) {
			t.Fatalf("seed %d: full-closure successor_counts differ", seed)
		}
		if !bytes.Equal(mustJSON(t, zeroWallClock(got.Metrics)), mustJSON(t, zeroWallClock(want.Metrics))) {
			t.Fatalf("seed %d: full-closure metric record differs", seed)
		}

		ts.Close()
		rt.Close()
		a.Close()
		b.Close()
		c.Close()
		single.Close()
	}
}
