package router

import (
	"math"
	"testing"
)

func TestMergeRecordsSemantics(t *testing.T) {
	a := Record{
		RestructureReads: 10, RestructureWrites: 4, ComputeReads: 20, ComputeWrites: 6,
		BufferHits: 30, BufferMisses: 10, BufferEvicts: 5,
		TuplesGenerated: 100, Duplicates: 20, DistinctTuples: 80, SourceTuples: 40,
		SuccessorsFetched: 15, ListUnions: 10, ArcsConsidered: 50, ArcsMarked: 25,
		UnmarkedLocality: 2.0,
		MagicNodes:       12, MagicArcs: 30, MagicH: 4, MagicW: 3,
		PageSplits: 1, ListsMoved: 2, EntriesMoved: 3, Overflows: 1,
		RestructureMS: 5, ComputeMS: 9,
	}
	b := Record{
		RestructureReads: 2, RestructureWrites: 1, ComputeReads: 5, ComputeWrites: 2,
		BufferHits: 10, BufferMisses: 30, BufferEvicts: 2,
		TuplesGenerated: 50, Duplicates: 10, DistinctTuples: 40, SourceTuples: 40,
		SuccessorsFetched: 5, ListUnions: 30, ArcsConsidered: 50, ArcsMarked: 50,
		UnmarkedLocality: 6.0,
		MagicNodes:       8, MagicArcs: 10, MagicH: 7, MagicW: 1,
		RestructureMS: 11, ComputeMS: 3,
	}
	m := MergeRecords([]Record{a, b})

	// Additive counters sum.
	if m.RestructureReads != 12 || m.ComputeReads != 25 || m.TuplesGenerated != 150 ||
		m.DistinctTuples != 120 || m.ArcsMarked != 75 || m.MagicNodes != 20 || m.PageSplits != 1 {
		t.Fatalf("additive counters wrong: %+v", m)
	}
	// Phase times max (workers ran concurrently); magic dimensions max.
	if m.RestructureMS != 11 || m.ComputeMS != 9 || m.MagicH != 7 || m.MagicW != 3 {
		t.Fatalf("max fields wrong: rms=%v cms=%v h=%v w=%v", m.RestructureMS, m.ComputeMS, m.MagicH, m.MagicW)
	}
	// Derived ratios recomputed from merged counters, not averaged.
	if m.TotalIO != 12+5+25+8 {
		t.Fatalf("total_io %d", m.TotalIO)
	}
	if want := float64(40) / 80; m.BufferHitRatio != want {
		t.Fatalf("buffer_hit_ratio %v, want %v", m.BufferHitRatio, want)
	}
	if want := 100 * float64(75) / 100; m.MarkingPct != want {
		t.Fatalf("marking_pct %v, want %v", m.MarkingPct, want)
	}
	if want := float64(80) / 120; m.SelectionEfficiency != want {
		t.Fatalf("selection_efficiency %v, want %v", m.SelectionEfficiency, want)
	}
	if m.EstimatedIOMS != float64(m.TotalIO)*20 {
		t.Fatalf("estimated_io_ms %v", m.EstimatedIOMS)
	}
	// Unmarked locality: union-weighted mean.
	if want := (2.0*10 + 6.0*30) / 40; math.Abs(m.UnmarkedLocality-want) > 1e-12 {
		t.Fatalf("unmarked_locality %v, want %v", m.UnmarkedLocality, want)
	}
}

func TestMergeRecordsIdentity(t *testing.T) {
	// Merging a single record recomputes its derived fields but changes
	// no counters: a one-shard scatter must look exactly like a direct
	// server answer.
	r := Record{
		RestructureReads: 3, ComputeReads: 7, ComputeWrites: 2,
		BufferHits: 9, BufferMisses: 1,
		DistinctTuples: 10, SourceTuples: 5,
		ArcsConsidered: 8, ArcsMarked: 2,
		ListUnions: 4, UnmarkedLocality: 1.5,
		RestructureMS: 2.5, ComputeMS: 1.25,
	}
	r.TotalIO = 12
	r.EstimatedIOMS = 240
	r.BufferHitRatio = 0.9
	r.MarkingPct = 25
	r.SelectionEfficiency = 0.5
	m := MergeRecords([]Record{r})
	if m != r {
		t.Fatalf("single-record merge changed the record:\n got %+v\nwant %+v", m, r)
	}
	if got := MergeRecords(nil); got != (Record{}) {
		t.Fatalf("empty merge = %+v", got)
	}
}
