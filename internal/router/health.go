package router

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"time"
)

// replicaState is one replica's enrollment state.
type replicaState int

const (
	// stateUnknown: never successfully health-checked; not routed to.
	stateUnknown replicaState = iota
	// stateHealthy: enrolled, fingerprint-matched, receiving traffic.
	stateHealthy
	// stateDown: marked out after FailThreshold consecutive failures (or
	// never up); re-enrolls after RecoverThreshold consecutive successes.
	stateDown
	// stateMismatched: answering /healthz but serving a different dataset
	// than the fleet; never routed to until its fingerprint matches.
	stateMismatched
)

func (s replicaState) String() string {
	switch s {
	case stateHealthy:
		return "healthy"
	case stateDown:
		return "down"
	case stateMismatched:
		return "mismatched"
	default:
		return "unknown"
	}
}

// replica is the router's view of one tcserve instance. All mutable
// fields are guarded by the router's mu.
type replica struct {
	url string

	state       replicaState
	consecFails int
	consecOK    int
	lastErr     string

	// Last successful /healthz observation.
	fingerprint string
	nodes       int
	arcs        int
	indexGen    int
	hasIndex    bool
	// graphs is the per-tenant identity block of a multi-graph replica
	// (nil when the replica serves a single unnamed graph).
	graphs map[string]graphIdentity

	// Dynamic (mutable) replica state, from healthz's dynamic block or
	// refreshed by a write fan-out. lagExcluded marks a healthy replica
	// held out of the read ring because its applied sequence trails the
	// fleet beyond Options.MaxGenerationLag; it still receives writes.
	hasDyn      bool
	dynSeq      int64
	dynGen      int64
	dynPending  int
	lagExcluded bool
}

// graphIdentity is one named graph's dataset identity as reported by a
// replica's /healthz graphs block.
type graphIdentity struct {
	Nodes       int    `json:"nodes"`
	Arcs        int    `json:"arcs"`
	Fingerprint string `json:"fingerprint"`
}

// replicaHealthz is the subset of tcserve's /healthz body the router
// consumes.
type replicaHealthz struct {
	Status      string `json:"status"`
	Nodes       int    `json:"nodes"`
	Arcs        int    `json:"arcs"`
	Fingerprint string `json:"fingerprint"`
	Index       *struct {
		Generation int  `json:"generation"`
		Stale      bool `json:"stale"`
	} `json:"index"`
	Dynamic *struct {
		Seq        int64 `json:"seq"`
		Generation int64 `json:"generation"`
		Pending    int   `json:"pending"`
	} `json:"dynamic"`
	// Graphs carries per-tenant identities on a multi-graph replica. The
	// top-level fingerprint folds them, so the top-level comparison still
	// decides enrollment; the per-tenant block names which graph diverged.
	Graphs map[string]graphIdentity `json:"graphs"`
}

// CheckNow sweeps every replica's /healthz once, synchronously, and
// applies the state transitions: FailThreshold consecutive failures mark
// a replica out, RecoverThreshold consecutive successes re-enroll it, and
// a fingerprint that differs from the fleet's refuses enrollment
// outright. The fleet fingerprint is pinned by the first replica to
// answer healthy (or by Options.ExpectFingerprint). The ring is rebuilt
// if membership changed.
func (rt *Router) CheckNow(ctx context.Context) {
	rt.met.HealthChecks.Add(1)
	rt.mu.RLock()
	reps := append([]*replica(nil), rt.replicas...)
	rt.mu.RUnlock()

	type probe struct {
		h   replicaHealthz
		err error
	}
	results := make([]probe, len(reps))
	var wg sync.WaitGroup
	for i, rep := range reps {
		wg.Add(1)
		go func(i int, url string) {
			defer wg.Done()
			results[i].h, results[i].err = rt.fetchHealthz(ctx, url)
		}(i, rep.url)
	}
	wg.Wait()

	rt.mu.Lock()
	defer rt.mu.Unlock()
	changed := false
	for i, rep := range reps {
		if rt.applyProbe(rep, results[i].h, results[i].err) {
			changed = true
		}
	}
	// With lag exclusion on, replica sequence numbers move without any
	// enrollment transition, so the ring membership must be recomputed on
	// every sweep, not only on state changes.
	if changed || rt.ring == nil || rt.opts.MaxGenerationLag > 0 {
		rt.rebuildRingLocked()
	}
}

// applyProbe folds one health observation into a replica's state,
// reporting whether its enrollment changed. Caller holds rt.mu.
func (rt *Router) applyProbe(rep *replica, h replicaHealthz, err error) bool {
	wasHealthy := rep.state == stateHealthy
	if err != nil {
		rep.consecOK = 0
		rep.consecFails++
		rep.lastErr = err.Error()
		if wasHealthy && rep.consecFails >= rt.opts.FailThreshold {
			rep.state = stateDown
			rt.met.Excluded.Add(1)
			return true
		}
		if rep.state == stateUnknown && rep.consecFails >= rt.opts.FailThreshold {
			rep.state = stateDown
		}
		return false
	}

	rep.consecFails = 0
	rep.lastErr = ""
	rep.fingerprint = h.Fingerprint
	rep.nodes = h.Nodes
	rep.arcs = h.Arcs
	rep.hasIndex = h.Index != nil
	if h.Index != nil {
		rep.indexGen = h.Index.Generation
	}
	rep.hasDyn = h.Dynamic != nil
	if h.Dynamic != nil {
		rep.dynSeq = h.Dynamic.Seq
		rep.dynGen = h.Dynamic.Generation
		rep.dynPending = h.Dynamic.Pending
	}
	rep.graphs = h.Graphs

	// Enrollment gate: the first healthy replica pins the fleet's dataset
	// identity — the top-level fingerprint (which on a multi-graph replica
	// folds every tenant's identity) plus the per-tenant block; everyone
	// after must match it exactly, tenant by tenant.
	if rt.expect == "" {
		rt.expect = h.Fingerprint
		rt.nodes = h.Nodes
		rt.fleetGraphs = h.Graphs
	}
	if h.Fingerprint != rt.expect {
		rep.consecOK = 0
		rep.lastErr = rt.mismatchReason(h)
		if rep.state != stateMismatched {
			rep.state = stateMismatched
			rt.met.Mismatched.Add(1)
			return wasHealthy
		}
		return false
	}
	if rep.state == stateMismatched {
		// The replica was redeployed onto the right dataset: treat the
		// match as a fresh recovery streak.
		rep.state = stateDown
	}

	rep.consecOK++
	if rep.state == stateHealthy {
		return false
	}
	// A replica that was never enrolled joins on its first clean answer;
	// one that was marked out must prove RecoverThreshold consecutive
	// successes before taking traffic again.
	need := rt.opts.RecoverThreshold
	if rep.state == stateUnknown {
		need = 1
	}
	if rep.consecOK >= need {
		rep.state = stateHealthy
		return true
	}
	return false
}

// mismatchReason explains a fingerprint mismatch. When both the fleet and
// the probed replica expose per-tenant identities, the reason names the
// exact graph that diverged (or is missing) — on a multi-graph fleet the
// folded top-level fingerprint alone cannot tell the operator which tenant
// to redeploy. Caller holds rt.mu.
func (rt *Router) mismatchReason(h replicaHealthz) string {
	if len(rt.fleetGraphs) > 0 && len(h.Graphs) > 0 {
		for name, want := range rt.fleetGraphs {
			got, ok := h.Graphs[name]
			if !ok {
				return fmt.Sprintf("graph %q missing (fleet serves it with fingerprint %s)", name, want.Fingerprint)
			}
			if got.Fingerprint != want.Fingerprint {
				return fmt.Sprintf("graph %q fingerprint %s does not match fleet %s",
					name, got.Fingerprint, want.Fingerprint)
			}
		}
		for name := range h.Graphs {
			if _, ok := rt.fleetGraphs[name]; !ok {
				return fmt.Sprintf("graph %q not served by the fleet", name)
			}
		}
	}
	return fmt.Sprintf("dataset fingerprint %s does not match fleet %s", h.Fingerprint, rt.expect)
}

// rebuildRingLocked rebuilds the consistent-hash ring over the healthy
// replicas. With MaxGenerationLag set, a healthy mutable replica whose
// applied mutation sequence trails the fleet's most advanced replica by
// more than the allowance is held out of the read ring — it would serve
// answers missing recent writes — but keeps its healthy enrollment so
// write fan-outs still reach it and let it catch up. Caller holds rt.mu.
func (rt *Router) rebuildRingLocked() {
	var maxSeq int64
	if rt.opts.MaxGenerationLag > 0 {
		for _, rep := range rt.replicas {
			if rep.state == stateHealthy && rep.hasDyn && rep.dynSeq > maxSeq {
				maxSeq = rep.dynSeq
			}
		}
	}
	var healthy []*replica
	for _, rep := range rt.replicas {
		rep.lagExcluded = false
		if rep.state != stateHealthy {
			continue
		}
		if rt.opts.MaxGenerationLag > 0 && rep.hasDyn &&
			maxSeq-rep.dynSeq > int64(rt.opts.MaxGenerationLag) {
			rep.lagExcluded = true
			rt.met.LagExclusions.Add(1)
			continue
		}
		healthy = append(healthy, rep)
	}
	rt.ring = buildRing(healthy, rt.opts.Vnodes)
}

func (rt *Router) fetchHealthz(ctx context.Context, url string) (replicaHealthz, error) {
	ctx, cancel := context.WithTimeout(ctx, rt.opts.HealthTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url+"/healthz", nil)
	if err != nil {
		return replicaHealthz{}, err
	}
	resp, err := rt.client.Do(req)
	if err != nil {
		return replicaHealthz{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return replicaHealthz{}, fmt.Errorf("healthz status %d", resp.StatusCode)
	}
	var h replicaHealthz
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		return replicaHealthz{}, fmt.Errorf("healthz decode: %w", err)
	}
	if h.Status != "ok" {
		return replicaHealthz{}, fmt.Errorf("healthz status %q", h.Status)
	}
	if h.Fingerprint == "" {
		return replicaHealthz{}, fmt.Errorf("healthz carries no dataset fingerprint (old tcserve?)")
	}
	return h, nil
}

// Start launches the background health loop at Options.HealthInterval.
// It is a no-op when the interval is zero (tests drive CheckNow
// directly). Close stops the loop.
func (rt *Router) Start() {
	if rt.opts.HealthInterval <= 0 {
		return
	}
	rt.loopWG.Add(1)
	go func() {
		defer rt.loopWG.Done()
		t := time.NewTicker(rt.opts.HealthInterval)
		defer t.Stop()
		for {
			select {
			case <-rt.stop:
				return
			case <-t.C:
				rt.CheckNow(context.Background())
			}
		}
	}()
}

// Close stops the health loop. Safe to call multiple times.
func (rt *Router) Close() {
	rt.stopOnce.Do(func() { close(rt.stop) })
	rt.loopWG.Wait()
}
