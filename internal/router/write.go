package router

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"
)

// maxArcBody mirrors tcserve's mutation-batch body bound.
const maxArcBody = 1 << 20

// replicaArcResponse mirrors tcserve's POST /v1/arc reply.
type replicaArcResponse struct {
	Seq         int64  `json:"seq"`
	Applied     int    `json:"applied"`
	Noops       int    `json:"noops"`
	Merged      int    `json:"merged_components,omitempty"`
	Rebuilding  bool   `json:"rebuilding"`
	Generation  int64  `json:"generation"`
	Pending     int    `json:"pending"`
	Fingerprint string `json:"fingerprint"`
}

// arcRouterResponse is the router's gathered write reply: the replicas'
// (agreeing) batch outcome plus the fan-out accounting.
type arcRouterResponse struct {
	Seq         int64   `json:"seq"`
	Applied     int     `json:"applied"`
	Noops       int     `json:"noops"`
	Merged      int     `json:"merged_components,omitempty"`
	Rebuilding  bool    `json:"rebuilding"` // any replica still folding the batch in
	Fingerprint string  `json:"fingerprint"`
	Replicas    int     `json:"replicas"` // replicas that acknowledged the batch
	Retries     int     `json:"retries,omitempty"`
	ElapsedMS   float64 `json:"elapsed_ms"`
}

// handleArc fans one mutation batch out to EVERY enrolled replica — reads
// scatter for throughput, writes replicate for consistency. The batch
// succeeds only when all replicas acknowledge it with matching post-batch
// fingerprints; any missing ack fails the whole batch with a retryable
// error (mutations are idempotent, so the client resends the batch until
// every replica converges). Batches are serialized through writeMu so all
// replicas see the same mutation order. Retries stay on the same replica:
// a write is not fungible across the fleet the way a read is.
func (rt *Router) handleArc(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	rt.met.ArcWrites.Add(1)
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxArcBody))
	if err != nil {
		rt.met.Errors.Add(1)
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": fmt.Sprintf("read mutation batch: %v", err)})
		return
	}

	rt.writeMu.Lock()
	defer rt.writeMu.Unlock()

	rt.mu.RLock()
	targets := make([]*replica, 0, len(rt.replicas))
	for _, rep := range rt.replicas {
		if rep.state == stateHealthy {
			targets = append(targets, rep)
		}
	}
	rt.mu.RUnlock()
	if len(targets) == 0 {
		rt.noReplicas(w)
		return
	}

	outcomes := make([]shardOutcome, len(targets))
	var wg sync.WaitGroup
	for i, rep := range targets {
		wg.Add(1)
		go func(i int, rep *replica) {
			defer wg.Done()
			outcomes[i] = rt.doShard(r.Context(), []*replica{rep}, http.MethodPost, "/v1/arc", body)
		}(i, rep)
	}
	wg.Wait()

	resp := arcRouterResponse{Replicas: len(targets)}
	acks := make([]replicaArcResponse, len(targets))
	okCount, failedIdx := 0, -1
	for i, out := range outcomes {
		resp.Retries += out.retries
		if out.err != nil || out.status != http.StatusOK {
			if failedIdx < 0 {
				failedIdx = i
			}
			continue
		}
		if err := json.Unmarshal(out.body, &acks[i]); err != nil {
			rt.met.Errors.Add(1)
			rt.met.WriteFailures.Add(1)
			writeJSON(w, http.StatusBadGateway, map[string]string{
				"error": fmt.Sprintf("bad write ack from %s: %v", targets[i].url, err),
			})
			return
		}
		okCount++
	}
	if failedIdx >= 0 {
		rt.met.WriteFailures.Add(1)
		out := outcomes[failedIdx]
		// Every replica rejected the batch the same deterministic way (a
		// validation 4xx) — relay the replica's own error. Anything else is
		// a partial write: some replicas may hold the batch, so report it
		// retryable and let idempotent resends converge the fleet.
		if okCount == 0 && out.err == nil && out.status >= 400 && out.status < 500 {
			rt.failShard(w, out)
			return
		}
		rt.met.Errors.Add(1)
		// The acked replicas hold the batch; pin the fleet identity to them
		// so the next health sweep keeps the up-to-date majority serving and
		// excludes only the replica that missed the write. Skip the re-pin if
		// the acks themselves disagree — that is divergence, not lag.
		rt.adoptAcks(targets, acks)
		detail := fmt.Sprintf("replica %s: status %d", targets[failedIdx].url, out.status)
		if out.err != nil {
			detail = fmt.Sprintf("replica %s: %v", targets[failedIdx].url, out.err)
		}
		writeJSON(w, http.StatusBadGateway, map[string]any{
			"error": fmt.Sprintf("write acknowledged by %d/%d replicas (%s); resend the batch",
				okCount, len(targets), detail),
			"transient": true,
		})
		return
	}

	// All replicas acked: their post-batch fingerprints must agree, or the
	// fleet has diverged and routing reads to it would be a lottery.
	fp := acks[0].Fingerprint
	for i, ack := range acks {
		if ack.Fingerprint != fp {
			rt.met.Errors.Add(1)
			rt.met.WriteFailures.Add(1)
			writeJSON(w, http.StatusBadGateway, map[string]any{
				"error": fmt.Sprintf("fleet diverged after write: %s reports fingerprint %s, %s reports %s",
					targets[0].url, fp, targets[i].url, ack.Fingerprint),
			})
			return
		}
		if ack.Seq > resp.Seq {
			resp.Seq = ack.Seq
		}
		resp.Rebuilding = resp.Rebuilding || ack.Rebuilding
	}
	resp.Applied, resp.Noops, resp.Merged = acks[0].Applied, acks[0].Noops, acks[0].Merged
	resp.Fingerprint = fp

	// The fleet's dataset identity just changed in lockstep; refresh the
	// pinned fingerprint and each replica's write position so the next
	// health sweep does not mistake the mutated fleet for a mismatch.
	rt.adoptAcks(targets, acks)

	resp.ElapsedMS = float64(time.Since(start)) / float64(time.Millisecond)
	rt.met.ObserveLatency(time.Since(start))
	writeJSON(w, http.StatusOK, resp)
}

// adoptAcks re-pins the fleet fingerprint and per-replica write positions
// from the replicas that acknowledged a batch. Acks are adopted only when
// every acking replica reports the same fingerprint; an empty ack slot
// (the replica's sub-request failed) is skipped.
func (rt *Router) adoptAcks(targets []*replica, acks []replicaArcResponse) {
	fp := ""
	for _, ack := range acks {
		if ack.Fingerprint == "" {
			continue
		}
		if fp == "" {
			fp = ack.Fingerprint
		} else if ack.Fingerprint != fp {
			return // acked replicas disagree: nothing safe to pin
		}
	}
	if fp == "" {
		return
	}
	rt.mu.Lock()
	rt.expect = fp
	for i, rep := range targets {
		if acks[i].Fingerprint == "" {
			continue
		}
		rep.fingerprint = fp
		rep.hasDyn = true
		rep.dynSeq = acks[i].Seq
		rep.dynPending = acks[i].Pending
	}
	if rt.opts.MaxGenerationLag > 0 {
		rt.rebuildRingLocked()
	}
	rt.mu.Unlock()
}
