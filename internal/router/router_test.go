package router

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"tcstudy/internal/core"
	"tcstudy/internal/graphgen"
	"tcstudy/internal/obsv"
	"tcstudy/internal/server"
)

// newReplicaServer spins one real tcserve stack over a generated graph.
func newReplicaServer(t *testing.T, nodes int, seed int64) *httptest.Server {
	t.Helper()
	arcs, err := graphgen.Generate(graphgen.Params{Nodes: nodes, OutDegree: 4, Locality: 40, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	db := core.NewDatabase(nodes, arcs)
	s := server.New(db, server.Options{})
	ts := httptest.NewServer(s)
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return ts
}

// newFleetRouter builds a router over the given replica URLs with health
// driven manually (no background loop) and runs one enrollment sweep.
func newFleetRouter(t *testing.T, opts Options, urls ...string) (*Router, *httptest.Server) {
	t.Helper()
	opts.Replicas = urls
	opts.HealthInterval = -1 // tests call CheckNow explicitly
	rt, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	rt.CheckNow(context.Background())
	ts := httptest.NewServer(rt)
	t.Cleanup(func() {
		ts.Close()
		rt.Close()
	})
	return rt, ts
}

func postRouterQuery(t *testing.T, url string, body any) (*http.Response, queryResponse) {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/v1/query", "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var qr queryResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
			t.Fatal(err)
		}
	}
	return resp, qr
}

func routerHealthz(t *testing.T, url string) (int, map[string]any) {
	t.Helper()
	resp, err := http.Get(url + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var h map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, h
}

// replicaStates summarizes the router healthz replica list as url->state.
func replicaStates(h map[string]any) map[string]string {
	out := map[string]string{}
	reps, _ := h["replicas"].([]any)
	for _, r := range reps {
		m := r.(map[string]any)
		out[m["url"].(string)] = m["state"].(string)
	}
	return out
}

func TestRouterScatterGather(t *testing.T) {
	const nodes, seed = 300, int64(7)
	a := newReplicaServer(t, nodes, seed)
	b := newReplicaServer(t, nodes, seed)
	c := newReplicaServer(t, nodes, seed)
	single := newReplicaServer(t, nodes, seed)
	rt, ts := newFleetRouter(t, Options{}, a.URL, b.URL, c.URL)

	if _, h := routerHealthz(t, ts.URL); h["healthy_replicas"].(float64) != 3 {
		t.Fatalf("healthz: %v", h)
	}

	sources := []int32{3, 41, 97, 150, 222, 288}
	body := map[string]any{"algorithm": "srch", "sources": sources, "include_successors": true}
	resp, got := postRouterQuery(t, ts.URL, body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("router query status %d", resp.StatusCode)
	}
	if got.Shards < 2 {
		t.Fatalf("6 sources over 3 replicas scattered to %d shard(s); want >= 2", got.Shards)
	}
	if got.Cached {
		t.Fatal("first query reported cached")
	}

	// The gathered answer must equal a single server's answer for the
	// same query: sharding may never change what is reachable.
	wresp, err := http.Post(single.URL+"/v1/query", "application/json",
		bytes.NewReader(mustJSON(t, body)))
	if err != nil {
		t.Fatal(err)
	}
	defer wresp.Body.Close()
	var want shardResponse
	if err := json.NewDecoder(wresp.Body).Decode(&want); err != nil {
		t.Fatal(err)
	}
	if len(got.SuccessorCounts) != len(want.SuccessorCounts) {
		t.Fatalf("successor count maps differ: %d vs %d entries", len(got.SuccessorCounts), len(want.SuccessorCounts))
	}
	for node, n := range want.SuccessorCounts {
		if got.SuccessorCounts[node] != n {
			t.Fatalf("node %d: router says %d successors, single server %d", node, got.SuccessorCounts[node], n)
		}
	}
	for node, succ := range want.Successors {
		if !equalInt32(got.Successors[node], succ) {
			t.Fatalf("node %d successor set differs", node)
		}
	}
	// Distinct tuples are partition-additive for disjoint source sets, so
	// the merged record's total must match the single run.
	if got.Metrics.DistinctTuples != want.Metrics.DistinctTuples {
		t.Fatalf("merged distinct_tuples %d, single server %d", got.Metrics.DistinctTuples, want.Metrics.DistinctTuples)
	}

	// A repeat of the same query hits every shard's result cache.
	if _, again := postRouterQuery(t, ts.URL, body); !again.Cached {
		t.Fatal("repeat query not served from the shard caches")
	}
	if rt.Metrics().Queries.Load() != 2 {
		t.Fatalf("query counter %d, want 2", rt.Metrics().Queries.Load())
	}
}

func TestRouterReachRoutesBySource(t *testing.T) {
	const nodes, seed = 200, int64(7)
	a := newReplicaServer(t, nodes, seed)
	b := newReplicaServer(t, nodes, seed)
	single := newReplicaServer(t, nodes, seed)
	_, ts := newFleetRouter(t, Options{}, a.URL, b.URL)

	for src := int32(1); src <= 40; src++ {
		dst := (src % int32(nodes)) + 1
		got := getReach(t, ts.URL, src, dst)
		want := getReach(t, single.URL, src, dst)
		if got != want {
			t.Fatalf("reach(%d,%d): router %v, single server %v", src, dst, got, want)
		}
	}
}

func getReach(t *testing.T, base string, src, dst int32) bool {
	t.Helper()
	resp, err := http.Get(fmt.Sprintf("%s/v1/reach?src=%d&dst=%d", base, src, dst))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("reach status %d", resp.StatusCode)
	}
	var r struct {
		Reachable bool `json:"reachable"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&r); err != nil {
		t.Fatal(err)
	}
	return r.Reachable
}

func TestRouterFingerprintMismatchRefusedEnrollment(t *testing.T) {
	good := newReplicaServer(t, 200, 7)
	wrong := newReplicaServer(t, 200, 8) // same size, different graph
	rt, ts := newFleetRouter(t, Options{}, good.URL, wrong.URL)

	_, h := routerHealthz(t, ts.URL)
	states := replicaStates(h)
	if states[good.URL] != "healthy" || states[wrong.URL] != "mismatched" {
		t.Fatalf("states %v, want good=healthy wrong=mismatched", states)
	}
	if h["healthy_replicas"].(float64) != 1 {
		t.Fatalf("healthy_replicas %v", h["healthy_replicas"])
	}
	if rt.Metrics().Mismatched.Load() != 1 {
		t.Fatalf("mismatched counter %d", rt.Metrics().Mismatched.Load())
	}
	// Queries still work, served entirely by the matching replica.
	resp, qr := postRouterQuery(t, ts.URL, map[string]any{"algorithm": "srch", "sources": []int32{1, 50, 120}})
	if resp.StatusCode != http.StatusOK || qr.Shards != 1 {
		t.Fatalf("status %d shards %d, want 200/1", resp.StatusCode, qr.Shards)
	}
	// Repeated sweeps must not re-count the same mismatch.
	rt.CheckNow(context.Background())
	if rt.Metrics().Mismatched.Load() != 1 {
		t.Fatalf("mismatch re-counted: %d", rt.Metrics().Mismatched.Load())
	}
}

// flakyProxy fronts a replica and fails the first n /v1/query requests
// with 503, then forwards everything.
type flakyProxy struct {
	backend *httptest.Server
	fails   atomic.Int64
}

func (f *flakyProxy) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path == "/v1/query" && f.fails.Add(-1) >= 0 {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, `{"error":"injected transient fault","transient":true}`)
		return
	}
	var resp *http.Response
	var err error
	if r.Method == http.MethodPost {
		resp, err = http.Post(f.backend.URL+r.URL.Path, r.Header.Get("Content-Type"), r.Body)
	} else {
		resp, err = http.Get(f.backend.URL + r.URL.Path + "?" + r.URL.RawQuery)
	}
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadGateway)
		return
	}
	defer resp.Body.Close()
	w.Header().Set("Content-Type", resp.Header.Get("Content-Type"))
	w.WriteHeader(resp.StatusCode)
	buf := new(bytes.Buffer)
	buf.ReadFrom(resp.Body)
	w.Write(buf.Bytes())
}

func TestRouterRetriesTransientShardFailure(t *testing.T) {
	backend := newReplicaServer(t, 200, 7)
	flaky := &flakyProxy{backend: backend}
	flaky.fails.Store(2)
	proxy := httptest.NewServer(flaky)
	t.Cleanup(proxy.Close)

	rt, ts := newFleetRouter(t, Options{Retries: 3, Backoff: time.Millisecond}, proxy.URL)
	resp, qr := postRouterQuery(t, ts.URL, map[string]any{"algorithm": "srch", "sources": []int32{5, 9}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query through flaky replica: status %d", resp.StatusCode)
	}
	if qr.Retries != 2 {
		t.Fatalf("response records %d retries, want 2", qr.Retries)
	}
	if rt.Metrics().Retries.Load() != 2 {
		t.Fatalf("retry counter %d, want 2", rt.Metrics().Retries.Load())
	}
}

func TestRouterRetriesExhaustedPassThrough503(t *testing.T) {
	backend := newReplicaServer(t, 200, 7)
	flaky := &flakyProxy{backend: backend}
	flaky.fails.Store(1 << 30) // fails forever
	proxy := httptest.NewServer(flaky)
	t.Cleanup(proxy.Close)

	rt, ts := newFleetRouter(t, Options{Retries: 1, Backoff: time.Millisecond}, proxy.URL)
	resp, _ := postRouterQuery(t, ts.URL, map[string]any{"algorithm": "srch", "sources": []int32{5}})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want the replica's 503 passed through", resp.StatusCode)
	}
	if rt.Metrics().Errors.Load() != 1 {
		t.Fatalf("error counter %d", rt.Metrics().Errors.Load())
	}
}

func TestRouterValidationErrorPassThrough(t *testing.T) {
	a := newReplicaServer(t, 200, 7)
	_, ts := newFleetRouter(t, Options{}, a.URL)
	resp, _ := postRouterQuery(t, ts.URL, map[string]any{"algorithm": "nope", "sources": []int32{1}})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown algorithm through router: status %d, want 400", resp.StatusCode)
	}
}

func TestRouterHealthMarksReplicaOutAndBack(t *testing.T) {
	stable := newReplicaServer(t, 200, 7)
	wobbly := newReplicaServer(t, 200, 7)
	var broken atomic.Bool
	gate := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if broken.Load() {
			http.Error(w, "down for maintenance", http.StatusInternalServerError)
			return
		}
		resp, err := http.Get(wobbly.URL + r.URL.Path + "?" + r.URL.RawQuery)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadGateway)
			return
		}
		defer resp.Body.Close()
		w.Header().Set("Content-Type", resp.Header.Get("Content-Type"))
		w.WriteHeader(resp.StatusCode)
		buf := new(bytes.Buffer)
		buf.ReadFrom(resp.Body)
		w.Write(buf.Bytes())
	}))
	t.Cleanup(gate.Close)

	rt, ts := newFleetRouter(t, Options{FailThreshold: 2, RecoverThreshold: 2}, stable.URL, gate.URL)
	ctx := context.Background()
	if _, h := routerHealthz(t, ts.URL); h["healthy_replicas"].(float64) != 2 {
		t.Fatalf("enrollment: %v", h)
	}

	// Fail the replica: one bad sweep is not enough, FailThreshold is 2.
	broken.Store(true)
	rt.CheckNow(ctx)
	if _, h := routerHealthz(t, ts.URL); h["healthy_replicas"].(float64) != 2 {
		t.Fatal("replica marked out after a single failure")
	}
	rt.CheckNow(ctx)
	_, h := routerHealthz(t, ts.URL)
	if h["healthy_replicas"].(float64) != 1 || replicaStates(h)[gate.URL] != "down" {
		t.Fatalf("replica not marked out after %d failures: %v", 2, h)
	}
	if rt.Metrics().Excluded.Load() != 1 {
		t.Fatalf("excluded counter %d", rt.Metrics().Excluded.Load())
	}
	// Queries keep flowing to the survivor.
	if resp, _ := postRouterQuery(t, ts.URL, map[string]any{"algorithm": "srch", "sources": []int32{1, 99}}); resp.StatusCode != http.StatusOK {
		t.Fatalf("query with one replica out: status %d", resp.StatusCode)
	}

	// Recovery: RecoverThreshold consecutive clean sweeps re-enroll it.
	broken.Store(false)
	rt.CheckNow(ctx)
	if _, h := routerHealthz(t, ts.URL); h["healthy_replicas"].(float64) != 1 {
		t.Fatal("replica re-enrolled after a single success")
	}
	rt.CheckNow(ctx)
	if _, h := routerHealthz(t, ts.URL); h["healthy_replicas"].(float64) != 2 {
		t.Fatalf("replica not re-enrolled: %v", h)
	}
}

func TestRouterNoHealthyReplicas(t *testing.T) {
	dead := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "nope", http.StatusInternalServerError)
	}))
	t.Cleanup(dead.Close)
	rt, ts := newFleetRouter(t, Options{}, dead.URL)
	resp, _ := postRouterQuery(t, ts.URL, map[string]any{"algorithm": "srch", "sources": []int32{1}})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503 with no healthy replicas", resp.StatusCode)
	}
	if rt.Metrics().Unavailable.Load() != 1 {
		t.Fatalf("unavailable counter %d", rt.Metrics().Unavailable.Load())
	}
	if code, _ := routerHealthz(t, ts.URL); code != http.StatusServiceUnavailable {
		t.Fatalf("router healthz %d with empty ring, want 503", code)
	}
}

// slowProxy delays /v1/query and /v1/reach responses; healthz stays fast
// so the replica remains enrolled.
func slowProxy(t *testing.T, backend *httptest.Server, delay time.Duration) *httptest.Server {
	t.Helper()
	p := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/v1/query" || r.URL.Path == "/v1/reach" {
			select {
			case <-r.Context().Done():
				return
			case <-time.After(delay):
			}
		}
		var resp *http.Response
		var err error
		if r.Method == http.MethodPost {
			resp, err = http.Post(backend.URL+r.URL.Path, r.Header.Get("Content-Type"), r.Body)
		} else {
			resp, err = http.Get(backend.URL + r.URL.Path + "?" + r.URL.RawQuery)
		}
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadGateway)
			return
		}
		defer resp.Body.Close()
		w.Header().Set("Content-Type", resp.Header.Get("Content-Type"))
		w.WriteHeader(resp.StatusCode)
		buf := new(bytes.Buffer)
		buf.ReadFrom(resp.Body)
		w.Write(buf.Bytes())
	}))
	t.Cleanup(p.Close)
	return p
}

func TestRouterHedgesSlowShard(t *testing.T) {
	const nodes, seed = 200, int64(7)
	fast := newReplicaServer(t, nodes, seed)
	slow := slowProxy(t, newReplicaServer(t, nodes, seed), 3*time.Second)

	rt, ts := newFleetRouter(t, Options{HedgeAfter: 30 * time.Millisecond}, fast.URL, slow.URL)

	// Find a source the slow replica owns, so the primary request stalls
	// and the hedge must win.
	rg := rt.snapshot()
	var src int32
	for s := int32(1); s <= int32(nodes); s++ {
		if rg.owner(s).url == slow.URL {
			src = s
			break
		}
	}
	if src == 0 {
		t.Fatal("slow replica owns no sources")
	}

	start := time.Now()
	resp, qr := postRouterQuery(t, ts.URL, map[string]any{"algorithm": "srch", "sources": []int32{src}})
	elapsed := time.Since(start)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("hedged query status %d", resp.StatusCode)
	}
	if elapsed >= 3*time.Second {
		t.Fatalf("hedge did not rescue the query: took %v", elapsed)
	}
	if qr.Hedges < 1 {
		t.Fatalf("response records %d hedges, want >= 1", qr.Hedges)
	}
	if rt.Metrics().Hedges.Load() < 1 || rt.Metrics().HedgeWins.Load() < 1 {
		t.Fatalf("hedge counters: launched=%d won=%d", rt.Metrics().Hedges.Load(), rt.Metrics().HedgeWins.Load())
	}
}

// TestRouterPartialFailureMatrix is the scatter-gather stress from the
// issue: a fleet where one replica always 503s its queries, one is so
// slow it would time out, and one serves the wrong dataset. The router
// must exclude the mismatch at enrollment, absorb the 503s with retries,
// rescue the slow shard with a hedge, and still answer correctly.
func TestRouterPartialFailureMatrix(t *testing.T) {
	const nodes, seed = 250, int64(7)
	healthy := newReplicaServer(t, nodes, seed)
	faulty := &flakyProxy{backend: newReplicaServer(t, nodes, seed)}
	faulty.fails.Store(1 << 30) // every query 503s; healthz stays clean
	faultyFront := httptest.NewServer(faulty)
	t.Cleanup(faultyFront.Close)
	slow := slowProxy(t, newReplicaServer(t, nodes, seed), 3*time.Second)
	mismatched := newReplicaServer(t, nodes, seed+1)

	rt, ts := newFleetRouter(t, Options{
		Retries:    2,
		Backoff:    time.Millisecond,
		HedgeAfter: 30 * time.Millisecond,
	}, healthy.URL, faultyFront.URL, slow.URL, mismatched.URL)

	_, h := routerHealthz(t, ts.URL)
	states := replicaStates(h)
	if states[mismatched.URL] != "mismatched" {
		t.Fatalf("mismatched replica enrolled: %v", states)
	}
	if h["healthy_replicas"].(float64) != 3 {
		t.Fatalf("healthy_replicas %v, want 3 (healthz of faulty/slow replicas is clean)", h["healthy_replicas"])
	}

	// Sources spread across all three enrolled replicas.
	rg := rt.snapshot()
	var sources []int32
	owners := map[string]bool{}
	for s := int32(1); s <= int32(nodes) && len(sources) < 9; s++ {
		u := rg.owner(s).url
		if !owners[u] || len(sources) < 6 {
			owners[u] = true
			sources = append(sources, s)
		}
	}
	if len(owners) != 3 {
		t.Fatalf("sources cover %d replicas, want 3", len(owners))
	}

	single := newReplicaServer(t, nodes, seed)
	body := map[string]any{"algorithm": "srch", "sources": sources}
	start := time.Now()
	resp, got := postRouterQuery(t, ts.URL, body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("matrix query status %d", resp.StatusCode)
	}
	if time.Since(start) >= 3*time.Second {
		t.Fatal("matrix query waited out the slow replica; hedge failed")
	}
	if got.Retries < 1 {
		t.Fatalf("no retries recorded against the 503 replica (got %d)", got.Retries)
	}
	if got.Hedges < 1 {
		t.Fatalf("no hedges recorded against the slow replica (got %d)", got.Hedges)
	}

	wresp, err := http.Post(single.URL+"/v1/query", "application/json", bytes.NewReader(mustJSON(t, body)))
	if err != nil {
		t.Fatal(err)
	}
	defer wresp.Body.Close()
	var want shardResponse
	if err := json.NewDecoder(wresp.Body).Decode(&want); err != nil {
		t.Fatal(err)
	}
	for node, n := range want.SuccessorCounts {
		if got.SuccessorCounts[node] != n {
			t.Fatalf("node %d: %d successors via router, %d via single server", node, got.SuccessorCounts[node], n)
		}
	}
}

func TestRouterMetricsExposition(t *testing.T) {
	a := newReplicaServer(t, 200, 7)
	_, ts := newFleetRouter(t, Options{}, a.URL)
	postRouterQuery(t, ts.URL, map[string]any{"algorithm": "srch", "sources": []int32{1, 2, 3}})
	getReach(t, ts.URL, 1, 2)

	scrape := func() map[string]*obsv.Family {
		resp, err := http.Get(ts.URL + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		buf := new(bytes.Buffer)
		buf.ReadFrom(resp.Body)
		fams, err := obsv.ParseExposition(buf.String())
		if err != nil {
			t.Fatalf("exposition invalid: %v", err)
		}
		return fams
	}
	fams := scrape()
	for _, name := range []string{
		"tcr_requests_total", "tcr_shard_requests_total", "tcr_shard_failures_total",
		"tcr_retries_total", "tcr_hedges_total", "tcr_hedge_wins_total",
		"tcr_replicas_excluded_total", "tcr_replicas_mismatched_total",
		"tcr_replica_healthy", "tcr_healthy_replicas",
		"tcr_request_duration_seconds", "tcr_scatter_fanout_shards",
	} {
		if fams[name] == nil {
			t.Errorf("family %s missing from /metrics", name)
		}
	}
	if v, ok := obsv.CounterValue(fams, "tcr_requests_total"); !ok || v < 2 {
		t.Fatalf("tcr_requests_total = %v", v)
	}
	before, _ := obsv.CounterValue(fams, "tcr_shard_requests_total")
	postRouterQuery(t, ts.URL, map[string]any{"algorithm": "srch", "sources": []int32{9}})
	after, _ := obsv.CounterValue(scrape(), "tcr_shard_requests_total")
	if after <= before {
		t.Fatalf("shard request counter not monotonic: %v -> %v", before, after)
	}
}

func mustJSON(t *testing.T, v any) []byte {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func equalInt32(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
