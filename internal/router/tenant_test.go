package router

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"tcstudy/internal/core"
	"tcstudy/internal/graphgen"
	"tcstudy/internal/server"
)

// tenantDBs builds the two named graphs every replica of a multi-tenant
// fleet serves.
func tenantDBs(t *testing.T) (*core.Database, *core.Database) {
	t.Helper()
	wideArcs, err := graphgen.Generate(graphgen.Params{Nodes: 300, OutDegree: 2, Locality: 300, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	deepArcs, err := graphgen.Generate(graphgen.Params{Nodes: 200, OutDegree: 6, Locality: 20, Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	return core.NewDatabase(300, wideArcs), core.NewDatabase(200, deepArcs)
}

// newTenantReplica spins one tcserve stack hosting wide+deep.
func newTenantReplica(t *testing.T) *httptest.Server {
	t.Helper()
	wide, deep := tenantDBs(t)
	s, err := server.NewMulti([]server.NamedGraph{
		{Name: "wide", DB: wide},
		{Name: "deep", DB: deep},
	}, server.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return ts
}

// TestRouterMultiTenantFleet pins the router's per-tenant behaviour: a
// fleet of multi-graph replicas enrolls on the folded fingerprint, reads
// carry their graph selector through to the replicas, answers match a
// standalone replica per tenant, and the router's health surfaces
// per-tenant fingerprints.
func TestRouterMultiTenantFleet(t *testing.T) {
	a := newTenantReplica(t)
	b := newTenantReplica(t)
	solo := newTenantReplica(t)
	rt, ts := newFleetRouter(t, Options{}, a.URL, b.URL)

	code, h := routerHealthz(t, ts.URL)
	if code != http.StatusOK || h["healthy_replicas"].(float64) != 2 {
		t.Fatalf("healthz: code %d %v", code, h)
	}
	graphs, ok := h["graphs"].(map[string]any)
	if !ok || len(graphs) != 2 {
		t.Fatalf("router healthz carries no per-tenant graphs block: %v", h)
	}
	wideID := graphs["wide"].(map[string]any)["fingerprint"].(string)
	deepID := graphs["deep"].(map[string]any)["fingerprint"].(string)
	if wideID == "" || deepID == "" || wideID == deepID {
		t.Fatalf("per-tenant fleet fingerprints degenerate: wide=%q deep=%q", wideID, deepID)
	}

	// Reads per tenant match a standalone multi-tenant replica.
	sources := []int32{3, 41, 97, 150}
	for _, tenant := range []string{"wide", "deep"} {
		body := map[string]any{"algorithm": "btc", "sources": sources,
			"graph": tenant, "include_successors": true}
		resp, got := postRouterQuery(t, ts.URL, body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("tenant %s: router query status %d", tenant, resp.StatusCode)
		}
		want := postShardQuery(t, solo.URL, body)
		for node, n := range want.SuccessorCounts {
			if got.SuccessorCounts[node] != n {
				t.Fatalf("tenant %s: successor count of %d: router %d != replica %d",
					tenant, node, got.SuccessorCounts[node], n)
			}
		}
	}

	// The plan proxy forwards the tenant selector.
	var plan struct {
		Graph string `json:"graph"`
		Mode  string `json:"mode"`
	}
	resp, err := http.Get(ts.URL + "/v1/plan?graph=deep")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("plan status %d", resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(&plan); err != nil {
		t.Fatal(err)
	}
	if plan.Graph != "deep" || plan.Mode != "adaptive" {
		t.Fatalf("routed plan graph=%q mode=%q, want deep/adaptive", plan.Graph, plan.Mode)
	}

	// Tenant-labeled routing counters appear in the router's scrape.
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	raw, err := io.ReadAll(mresp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(raw)
	for _, label := range []string{`tenant="wide"`, `tenant="deep"`} {
		if !strings.Contains(text, "tcr_tenant_requests_total{"+label+"}") {
			t.Errorf("router scrape missing tcr_tenant_requests_total{%s}:\n%s", label, text)
		}
	}

	// Salted routing: the same source set routes independently per tenant,
	// and both tenants' plans stay pinned (same rotation every time).
	rg := rt.snapshot()
	wideOwner := rg.owner(7 ^ tenantSalt("wide"))
	deepOwner := rg.owner(7 ^ tenantSalt("deep"))
	if wideOwner == nil || deepOwner == nil {
		t.Fatal("ring has no owners")
	}
	if tenantSalt("wide") == tenantSalt("deep") {
		t.Fatal("distinct tenants share a routing salt")
	}
	if tenantSalt("") != 0 {
		t.Fatal("default tenant's salt must be zero (single-graph routing unchanged)")
	}
}

// TestRouterRefusesTenantMismatch pins the enrollment rule: a replica
// whose named graph diverges from the fleet's is refused, and the refusal
// names the diverging tenant.
func TestRouterRefusesTenantMismatch(t *testing.T) {
	good := newTenantReplica(t)

	// The rogue replica serves the same tenant names but a different "deep"
	// graph.
	wide, _ := tenantDBs(t)
	otherArcs, err := graphgen.Generate(graphgen.Params{Nodes: 200, OutDegree: 6, Locality: 20, Seed: 99})
	if err != nil {
		t.Fatal(err)
	}
	rogueSrv, err := server.NewMulti([]server.NamedGraph{
		{Name: "wide", DB: wide},
		{Name: "deep", DB: core.NewDatabase(200, otherArcs)},
	}, server.Options{})
	if err != nil {
		t.Fatal(err)
	}
	rogue := httptest.NewServer(rogueSrv)
	defer func() { rogue.Close(); rogueSrv.Close() }()

	rt, ts := newFleetRouter(t, Options{}, good.URL, rogue.URL)
	rt.CheckNow(context.Background())

	_, h := routerHealthz(t, ts.URL)
	states := replicaStates(h)
	if states[good.URL] != "healthy" || states[rogue.URL] != "mismatched" {
		t.Fatalf("states %v: want good healthy, rogue mismatched", states)
	}
	var lastErr string
	for _, r := range h["replicas"].([]any) {
		m := r.(map[string]any)
		if m["url"] == rogue.URL {
			lastErr, _ = m["last_error"].(string)
		}
	}
	if !strings.Contains(lastErr, `"deep"`) {
		t.Fatalf("mismatch reason %q does not name the diverging tenant", lastErr)
	}
}
