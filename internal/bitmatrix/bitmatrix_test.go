package bitmatrix

import (
	"math/rand"
	"testing"
)

// naiveClosure is the reference: repeated relational squaring over a bool
// matrix until fixpoint. Deliberately shares nothing with the kernels —
// not even the bit packing — so agreement means the answer is right.
func naiveClosure(n int, has func(i, j int) bool) [][]bool {
	reach := make([][]bool, n)
	for i := range reach {
		reach[i] = make([]bool, n)
		for j := 0; j < n; j++ {
			reach[i][j] = has(i, j)
		}
	}
	for changed := true; changed; {
		changed = false
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if !reach[i][j] {
					continue
				}
				for k := 0; k < n; k++ {
					if reach[j][k] && !reach[i][k] {
						reach[i][k] = true
						changed = true
					}
				}
			}
		}
	}
	return reach
}

// randomMatrix fills an n×n matrix with the given arc probability.
func randomMatrix(n int, prob float64, seed int64) *Matrix {
	m := New(n)
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j && rng.Float64() < prob {
				m.Set(i, j)
			}
		}
	}
	return m
}

func checkAgainstNaive(t *testing.T, m *Matrix, closed *Matrix, label string) {
	t.Helper()
	want := naiveClosure(m.N(), m.Has)
	for i := 0; i < m.N(); i++ {
		for j := 0; j < m.N(); j++ {
			if closed.Has(i, j) != want[i][j] {
				t.Fatalf("%s: n=%d: closure bit (%d,%d)=%t, reference says %t",
					label, m.N(), i, j, closed.Has(i, j), want[i][j])
			}
		}
	}
}

// TestClosureAgainstNaive pins both kernels against the bool-matrix
// reference over a grid of sizes and densities, including cyclic inputs
// (the kernel's callers feed it DAG condensations, but the kernel itself
// is exact on any digraph).
func TestClosureAgainstNaive(t *testing.T) {
	sizes := []int{0, 1, 2, 3, 17, 63, 64, 65, 130}
	probs := []float64{0, 0.03, 0.15, 0.5}
	for _, n := range sizes {
		for _, p := range probs {
			base := randomMatrix(n, p, int64(n)*1000+int64(p*100))
			for _, workers := range []int{1, 2, 4} {
				m := base.Clone()
				m.Closure(workers)
				checkAgainstNaive(t, base, m, "workers="+itoa(workers))
			}
		}
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [8]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

// TestSerialParallelIdentical: the Warren sweep and the Floyd–Warshall
// column kernel must compute the identical closure bits for any input and
// any worker count.
func TestSerialParallelIdentical(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		n := 10 + int(seed)*13
		base := randomMatrix(n, 0.08, seed)
		serial := base.Clone()
		serial.Closure(1)
		for _, workers := range []int{2, 3, 7, 16, 1000} {
			par := base.Clone()
			par.Closure(workers)
			if !par.Equal(serial) {
				t.Fatalf("seed=%d n=%d workers=%d: parallel closure differs from serial", seed, n, workers)
			}
		}
	}
}

// randomDAGMatrix fills only the strict upper triangle, so ascending index
// is a topological order (every bit points forward).
func randomDAGMatrix(n int, prob float64, seed int64) *Matrix {
	m := New(n)
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < prob {
				m.Set(i, j)
			}
		}
	}
	return m
}

// TestClosureDAGAgainstWarren pins the one-union-per-arc DAG sweep to the
// general Warren kernel on random acyclic matrices, through an explicit
// reverse-topological order, through nil order on backward-pointing
// matrices, and with diagonal self-loop bits present.
func TestClosureDAGAgainstWarren(t *testing.T) {
	for seed := int64(0); seed < 15; seed++ {
		n := 5 + int(seed)*17
		for _, p := range []float64{0.02, 0.1, 0.4} {
			base := randomDAGMatrix(n, p, seed*10+int64(p*100))
			if seed%3 == 0 {
				base.Set(int(seed)%n, int(seed)%n) // a self-loop survives closure
			}
			want := base.Clone()
			want.Closure(1)

			// Upper-triangular bits point forward, so descending index is
			// reverse-topological.
			order := make([]int, n)
			for i := range order {
				order[i] = n - 1 - i
			}
			got := base.Clone()
			st := got.ClosureDAG(order)
			if !got.Equal(want) {
				t.Fatalf("seed=%d n=%d p=%.2f: ClosureDAG differs from Warren closure", seed, n, p)
			}
			if st.RowUnions > base.Count() {
				t.Fatalf("seed=%d n=%d: DAG sweep did %d unions for %d arcs — more than one per arc",
					seed, n, st.RowUnions, base.Count())
			}

			// The transpose's bits all point backward: nil order (ascending
			// rows) must close it; compare through the transpose identity.
			tGot := base.Transpose()
			tGot.ClosureDAG(nil)
			if !tGot.Equal(want.Transpose()) {
				t.Fatalf("seed=%d n=%d p=%.2f: ClosureDAG(nil) on transpose differs", seed, n, p)
			}
		}
	}
}

// TestClosureStatsDeterministic: repeated runs of the same kernel on the
// same matrix must report identical work counters (the engine folds them
// into its deterministic metric record).
func TestClosureStatsDeterministic(t *testing.T) {
	base := randomMatrix(100, 0.1, 7)
	for _, workers := range []int{1, 4} {
		a, b := base.Clone(), base.Clone()
		sa, sb := a.Closure(workers), b.Closure(workers)
		if sa != sb {
			t.Fatalf("workers=%d: stats differ between identical runs: %+v vs %+v", workers, sa, sb)
		}
		if sa.RowUnions == 0 || sa.BitsDriving == 0 {
			t.Fatalf("workers=%d: stats empty (%+v) on a matrix that needs unions", workers, sa)
		}
	}
}

// TestWordBoundaries exercises the block/word indexing math at the exact
// 64-bit word seams, mirroring internal/bitset's boundary battery: set the
// last and first bits around every boundary of n = 63, 64, 65 and check
// round-trips, row counts and transposes.
func TestWordBoundaries(t *testing.T) {
	for _, n := range []int{63, 64, 65, 127, 128, 129} {
		m := New(n)
		var edge []int
		seen := map[int]bool{}
		for _, c := range []int{0, 62, 63, 64, n - 1} {
			if c >= 0 && c < n && !seen[c] {
				seen[c] = true
				edge = append(edge, c)
			}
		}
		for _, i := range edge {
			for _, j := range edge {
				if m.Has(i, j) {
					t.Fatalf("n=%d: bit (%d,%d) set in empty matrix", n, i, j)
				}
				m.Set(i, j)
				if !m.Has(i, j) {
					t.Fatalf("n=%d: bit (%d,%d) lost after Set", n, i, j)
				}
			}
		}
		if got, want := m.Count(), int64(len(edge)*len(edge)); got != want {
			t.Fatalf("n=%d: Count=%d after %d sets", n, got, want)
		}
		tr := m.Transpose()
		for _, i := range edge {
			for _, j := range edge {
				if !tr.Has(j, i) {
					t.Fatalf("n=%d: transpose lost bit (%d,%d)", n, i, j)
				}
			}
		}
		if !tr.Transpose().Equal(m) {
			t.Fatalf("n=%d: double transpose is not the identity", n)
		}
	}
}

// TestClosureTransposeCommutes: closing the transpose equals transposing
// the closure (successor sets vs predecessor sets of the same reachability
// relation).
func TestClosureTransposeCommutes(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		n := 30 + int(seed)*11
		base := randomMatrix(n, 0.07, 100+seed)

		viaTranspose := base.Transpose()
		viaTranspose.Closure(1)

		closed := base.Clone()
		closed.Closure(1)

		if !viaTranspose.Equal(closed.Transpose()) {
			t.Fatalf("seed=%d n=%d: closure(transpose) != transpose(closure)", seed, n)
		}
	}
}

// TestRowAliasing: Row hands out views into the matrix storage; writing
// through Set must be visible in a previously fetched row slice.
func TestRowAliasing(t *testing.T) {
	m := New(70)
	row := m.Row(3)
	m.Set(3, 68)
	if row[1]&(1<<4) == 0 {
		t.Fatal("Row slice does not alias matrix storage")
	}
}

// TestFitsThreshold pins the selection rule's boundary behaviour on every
// edge the planner and engine rely on.
func TestFitsThreshold(t *testing.T) {
	cases := []struct {
		n, arcs int
		want    bool
	}{
		{0, 0, false},                         // empty graph never fits
		{1, 0, true},                          // single node: trivial core fits
		{SmallN, 0, true},                     // at the small bound: always fits, any density
		{SmallN + 1, 0, false},                // just over: now density-gated, 0 arcs fail
		{SmallN + 1, 300000, true},            // just over but dense (>= MinDensity)
		{MaxNodes, MaxNodes * MaxNodes, true}, // at the hard cap, fully dense
		{MaxNodes + 1, (MaxNodes + 1) * (MaxNodes + 1), false}, // over the cap: never
	}
	for _, c := range cases {
		if got := Fits(c.n, c.arcs); got != c.want {
			t.Errorf("Fits(%d, %d)=%t, want %t", c.n, c.arcs, got, c.want)
		}
	}
	// The density gate itself, straddled tightly at a mid-sized core.
	n := 1000
	just := int(MinDensity * float64(n) * float64(n))
	if !Fits(n, just) {
		t.Errorf("Fits(%d, %d) at exactly MinDensity should fit", n, just)
	}
	if Fits(n, just-n) {
		t.Errorf("Fits(%d, %d) below MinDensity should not fit", n, just-n)
	}
}

func BenchmarkKernelClosure(b *testing.B) {
	base := randomMatrix(512, 0.1, 1)
	b.Run("warren-serial", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			base.Clone().Closure(1)
		}
	})
	b.Run("fw-parallel-4", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			base.Clone().Closure(4)
		}
	})
	dag := randomDAGMatrix(512, 0.1, 1)
	order := make([]int, dag.N())
	for i := range order {
		order[i] = dag.N() - 1 - i
	}
	b.Run("dag-serial", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			dag.Clone().ClosureDAG(order)
		}
	})
}
