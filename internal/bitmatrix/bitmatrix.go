// Package bitmatrix is the dense-core transitive closure kernel: a
// word-parallel bit matrix (64 reachability bits per uint64) closed
// entirely in memory with bit-skipping sweeps over cache-resident rows.
//
// It targets the regime the successor-list engine handles worst — small,
// dense SCC condensation cores — where the n²-bit representation turns a
// closure into a stream of word ORs over contiguous cache lines. The
// serial kernel is Warren's two-pass sweep (the in-memory analogue of the
// engine's Blocked Warren baseline, with the buffer pool's paging replaced
// by rows that fit whole cache lines); the parallel kernel is the
// Floyd–Warshall column variant, whose per-pivot row updates are
// independent and partition cleanly across a bounded worker budget.
//
// Both kernels compute the exact transitive closure (paths of length ≥ 1,
// so a node reaches itself only through a cycle) and are pinned against
// each other, against the BFS oracle and against the engine's BTC by the
// differential battery in this package and internal/core.
package bitmatrix

import (
	"fmt"
	"math/bits"
	"sync"
)

// Matrix is a dense n×n reachability bit matrix. Row i holds the successor
// bits of node i: bit j of row i means "i reaches j". Rows and columns are
// 0-based; callers with 1-based node spaces allocate n+1 and ignore row 0.
type Matrix struct {
	n     int
	words int      // uint64 words per row
	bits  []uint64 // n*words, row-major
}

// New returns the empty n×n matrix.
func New(n int) *Matrix {
	if n < 0 {
		panic(fmt.Sprintf("bitmatrix: negative dimension %d", n))
	}
	w := (n + 63) / 64
	return &Matrix{n: n, words: w, bits: make([]uint64, n*w)}
}

// N reports the matrix dimension.
func (m *Matrix) N() int { return m.n }

// WordsPerRow reports the row stride in uint64 words.
func (m *Matrix) WordsPerRow() int { return m.words }

// Row returns the word slice of row i, aliasing the matrix storage.
func (m *Matrix) Row(i int) []uint64 {
	return m.bits[i*m.words : (i+1)*m.words : (i+1)*m.words]
}

// Set sets bit (i, j).
func (m *Matrix) Set(i, j int) {
	m.bits[i*m.words+j>>6] |= 1 << uint(j&63)
}

// Has reports bit (i, j).
func (m *Matrix) Has(i, j int) bool {
	return m.bits[i*m.words+j>>6]&(1<<uint(j&63)) != 0
}

// Count reports the number of set bits (the closure size once closed).
func (m *Matrix) Count() int64 {
	var c int64
	for _, w := range m.bits {
		c += int64(bits.OnesCount64(w))
	}
	return c
}

// CountRow reports the number of set bits in row i.
func (m *Matrix) CountRow(i int) int {
	c := 0
	for _, w := range m.Row(i) {
		c += bits.OnesCount64(w)
	}
	return c
}

// Clone returns an independent copy.
func (m *Matrix) Clone() *Matrix {
	c := New(m.n)
	copy(c.bits, m.bits)
	return c
}

// Equal reports whether the matrices have identical dimension and bits.
func (m *Matrix) Equal(o *Matrix) bool {
	if m.n != o.n {
		return false
	}
	for i, w := range m.bits {
		if o.bits[i] != w {
			return false
		}
	}
	return true
}

// Transpose returns the transposed matrix: bit (i, j) of the result is bit
// (j, i) of m. The closure of the transpose is the transpose of the
// closure (predecessor sets), an invariant the fuzz battery leans on.
func (m *Matrix) Transpose() *Matrix {
	t := New(m.n)
	for i := 0; i < m.n; i++ {
		row := m.Row(i)
		for wi, w := range row {
			for w != 0 {
				b := bits.TrailingZeros64(w)
				t.Set(wi*64+b, i)
				w &= w - 1
			}
		}
	}
	return t
}

// Stats reports the logical work of one closure computation, feeding the
// engine's metric record: RowUnions counts row-OR operations (the matrix
// analogue of list unions) and BitsDriving counts the set bits that
// triggered them (the matrix analogue of arcs considered).
type Stats struct {
	RowUnions   int64
	BitsDriving int64
}

// orInto folds src into dst word by word; a plain indexed loop with the
// bounds check hoisted, so the compiler keeps it branch-free.
func orInto(dst, src []uint64) {
	_ = dst[len(src)-1]
	for i, w := range src {
		dst[i] |= w
	}
}

// Closure replaces m with its transitive closure. workers bounds the
// kernel's parallelism: 0 or 1 selects the serial Warren two-pass sweep,
// anything higher the Floyd–Warshall column kernel partitioned over
// min(workers, rows) goroutines. Both produce the identical closure; the
// returned Stats differ between the two sweeps (they perform different —
// equally exact — update schedules) but are deterministic for a given
// matrix and worker count.
func (m *Matrix) Closure(workers int) Stats {
	if m.n == 0 {
		return Stats{}
	}
	if workers > 1 {
		return m.closureParallel(workers)
	}
	return m.closureWarren()
}

// ClosureDAG replaces m with its transitive closure, given that the matrix
// is acyclic (save for harmless diagonal self-loop bits) and that order is
// a reverse-topological row order: every row must appear after all rows
// its initial bits point to. Passing nil uses ascending row index, which
// is correct whenever every set bit (i, j) has j < i — the natural shape
// of a Tarjan condensation, whose component numbering puts every arc's
// target before its source.
//
// Where Warren's sweep performs one row union per closure bit, the DAG
// sweep performs one per direct arc: each row is closed by absorbing the
// already-final rows of its initial successors. On dense cores the closure
// holds many times more bits than arcs, so this is the serial kernel of
// choice when the caller can certify acyclicity; Closure makes no such
// demand and stays the general entry point.
func (m *Matrix) ClosureDAG(order []int) Stats {
	var st Stats
	words := m.words
	buf := make([]uint64, words)
	row := func(i int) []uint64 { return m.bits[i*words : (i+1)*words : (i+1)*words] }
	process := func(i int) {
		rowI := row(i)
		// Snapshot the direct bits: the unions below must not feed the
		// closure bits they add back into the iteration.
		copy(buf, rowI)
		for wi, w := range buf {
			for w != 0 {
				j := wi*64 + bits.TrailingZeros64(w)
				w &= w - 1
				if j == i {
					continue // diagonal self-loop bit: already in the row
				}
				st.BitsDriving++
				st.RowUnions++
				orInto(rowI, row(j))
			}
		}
	}
	if order == nil {
		for i := 0; i < m.n; i++ {
			process(i)
		}
	} else {
		for _, i := range order {
			process(i)
		}
	}
	return st
}

// closureWarren is the serial kernel: Warren's two-pass sweep,
//
//	pass 1: for i ascending, for j < i ascending:  if M[i][j] then row_i |= row_j
//	pass 2: for i ascending, for j > i ascending:  if M[i][j] then row_i |= row_j
//
// driven row-centrically with bit-skipping word iteration: instead of
// probing every (i, j) cell, each row's words are scanned and only set
// bits trigger a union. Warren's schedule tests M[i][j] at the moment j is
// reached, so after every union the current word is re-read with bits ≤ j
// masked off — newly arrived bits above j are picked up exactly as the
// strict cell-by-cell sweep would. The sweep therefore costs O(n·words)
// word reads plus one streamed row union per driving bit, instead of n²
// strided column probes per pass.
func (m *Matrix) closureWarren() Stats {
	var st Stats
	words := m.words
	for pass := 1; pass <= 2; pass++ {
		for i := 0; i < m.n; i++ {
			rowI := m.bits[i*words : (i+1)*words : (i+1)*words]
			// The word range holding this pass's columns: [0, i) for pass
			// 1, (i, n) for pass 2; the word containing column i itself is
			// trimmed with a partial mask.
			wLo, wHi := 0, i>>6
			if pass == 2 {
				wLo, wHi = i>>6, words-1
			}
			for wi := wLo; wi <= wHi; wi++ {
				mask := ^uint64(0)
				if wi == i>>6 {
					if pass == 1 {
						mask = (uint64(1) << uint(i&63)) - 1 // bits j < i
					} else {
						mask = ^((uint64(2) << uint(i&63)) - 1) // bits j > i
					}
				}
				w := rowI[wi] & mask
				for w != 0 {
					b := bits.TrailingZeros64(w)
					j := wi*64 + b
					st.BitsDriving++
					st.RowUnions++
					orInto(rowI, m.bits[j*words:(j+1)*words])
					// Re-read: the union may have set bits above j in this
					// word; bits at or below j are done.
					w = rowI[wi] & mask &^ ((uint64(2) << uint(b)) - 1)
				}
			}
		}
	}
	return st
}

// closureParallel is the parallel kernel: the Floyd–Warshall column
// variant. For each pivot k ascending, every row i with bit k set absorbs
// row k. Within one pivot step the updates write disjoint rows and read
// only the pivot row (row k never absorbs itself — i == k is skipped), so
// the row space partitions across persistent workers with one barrier per
// pivot.
func (m *Matrix) closureParallel(workers int) Stats {
	if workers > m.n {
		workers = m.n
	}
	// Contiguous row chunks of near-equal height.
	type chunk struct{ lo, hi int }
	chunks := make([]chunk, workers)
	for w := 0; w < workers; w++ {
		chunks[w] = chunk{lo: w * m.n / workers, hi: (w + 1) * m.n / workers}
	}
	stats := make([]Stats, workers)
	pivot := make([]chan int, workers)
	var wg sync.WaitGroup
	done := make(chan struct{}, workers)
	for w := range pivot {
		pivot[w] = make(chan int)
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := chunks[w]
			st := &stats[w]
			words := m.words
			for k := range pivot[w] {
				rowK := m.Row(k)
				maskK := uint64(1) << uint(k&63)
				idx := c.lo*words + k>>6
				for i := c.lo; i < c.hi; i++ {
					if i != k && m.bits[idx]&maskK != 0 {
						st.BitsDriving++
						st.RowUnions++
						orInto(m.bits[i*words:(i+1)*words], rowK)
					}
					idx += words
				}
				done <- struct{}{}
			}
		}(w)
	}
	for k := 0; k < m.n; k++ {
		for w := range pivot {
			pivot[w] <- k
		}
		for range pivot {
			<-done
		}
	}
	for w := range pivot {
		close(pivot[w])
	}
	wg.Wait()
	var total Stats
	for _, st := range stats {
		total.RowUnions += st.RowUnions
		total.BitsDriving += st.BitsDriving
	}
	return total
}

// Threshold constants of the planner/engine selection rule. The kernel is
// a dense-core specialist: the matrix costs n² bits of memory and the
// sweep O(n³/64) word ops regardless of sparsity, so it wins exactly when
// the condensed graph is small, or mid-sized and dense enough that
// successor-list expansion would churn the buffer pool harder.
const (
	// SmallN is the core size at or below which the kernel always fits:
	// the matrix is at most 32 KiB (512 rows × 64 bytes), cheaper to
	// close than to second-guess.
	SmallN = 512
	// MaxNodes bounds the matrix outright; above it the n² memory and
	// n³ sweep are no longer competitive with list-based expansion
	// (8192 rows × 1 KiB = 8 MiB).
	MaxNodes = 8192
	// MinDensity is the arc density |A|/n² a mid-sized core (SmallN <
	// n ≤ MaxNodes) must reach for the kernel to be selected.
	MinDensity = 0.02
)

// Density returns the arc density |A|/n² of an n-node graph.
func Density(n, arcs int) float64 {
	if n <= 0 {
		return 0
	}
	return float64(arcs) / (float64(n) * float64(n))
}

// Fits is the selection threshold shared by the planner and the engine:
// whether an n-node, arcs-arc condensed graph is in the kernel's regime.
// Callers fall back to BTC when it reports false.
func Fits(n, arcs int) bool {
	if n < 1 || n > MaxNodes {
		return false
	}
	if n <= SmallN {
		return true
	}
	return Density(n, arcs) >= MinDensity
}
