package bitmatrix

import "testing"

// FuzzBitMatrixRows fuzzes the block/word indexing math: from a byte
// string of (i, j) coordinate pairs over a fuzzed dimension, build a
// matrix and check round-trip, row-count, transpose and closure
// invariants. The dimension is steered across word boundaries so the
// corpus concentrates on the seams.
func FuzzBitMatrixRows(f *testing.F) {
	f.Add(uint16(64), []byte{0, 0, 1, 1})
	f.Add(uint16(63), []byte{62, 0, 0, 62})
	f.Add(uint16(65), []byte{64, 64, 63, 64, 64, 63})
	f.Add(uint16(1), []byte{0, 0})
	f.Add(uint16(300), []byte{255, 44, 13, 200, 99, 99})
	f.Fuzz(func(t *testing.T, dim uint16, coords []byte) {
		n := int(dim) % 300
		if n == 0 {
			n = 1
		}
		m := New(n)
		type pt struct{ i, j int }
		set := make(map[pt]bool)
		for k := 0; k+1 < len(coords); k += 2 {
			i, j := int(coords[k])%n, int(coords[k+1])%n
			m.Set(i, j)
			set[pt{i, j}] = true
		}

		// Round-trip: exactly the set coordinates read back.
		for p := range set {
			if !m.Has(p.i, p.j) {
				t.Fatalf("n=%d: bit (%d,%d) lost", n, p.i, p.j)
			}
		}
		if got, want := m.Count(), int64(len(set)); got != want {
			t.Fatalf("n=%d: Count=%d, want %d", n, got, want)
		}
		rowTotal := 0
		for i := 0; i < n; i++ {
			rowTotal += m.CountRow(i)
		}
		if rowTotal != len(set) {
			t.Fatalf("n=%d: row counts sum to %d, want %d", n, rowTotal, len(set))
		}

		// Transpose: a bijection on bits, an involution on matrices.
		tr := m.Transpose()
		if tr.Count() != m.Count() {
			t.Fatalf("n=%d: transpose changed bit count %d -> %d", n, m.Count(), tr.Count())
		}
		for p := range set {
			if !tr.Has(p.j, p.i) {
				t.Fatalf("n=%d: transpose lost bit (%d,%d)", n, p.i, p.j)
			}
		}
		if !tr.Transpose().Equal(m) {
			t.Fatalf("n=%d: double transpose is not the identity", n)
		}

		// Closure invariants that hold for any digraph without computing a
		// reference: idempotence (closing a closure changes nothing),
		// growth (no set bit is ever cleared), and serial/parallel
		// agreement.
		serial := m.Clone()
		serial.Closure(1)
		for p := range set {
			if !serial.Has(p.i, p.j) {
				t.Fatalf("n=%d: closure cleared input bit (%d,%d)", n, p.i, p.j)
			}
		}
		again := serial.Clone()
		again.Closure(1)
		if !again.Equal(serial) {
			t.Fatalf("n=%d: closure is not idempotent", n)
		}
		par := m.Clone()
		par.Closure(3)
		if !par.Equal(serial) {
			t.Fatalf("n=%d: parallel closure differs from serial", n)
		}

		// The DAG sweep on the pattern's strict upper triangle (acyclic by
		// construction, descending index reverse-topological) must match the
		// general kernel and spend at most one union per arc.
		upper := New(n)
		for p := range set {
			if p.j > p.i {
				upper.Set(p.i, p.j)
			}
		}
		wantUpper := upper.Clone()
		wantUpper.Closure(1)
		order := make([]int, n)
		for i := range order {
			order[i] = n - 1 - i
		}
		gotUpper := upper.Clone()
		st := gotUpper.ClosureDAG(order)
		if !gotUpper.Equal(wantUpper) {
			t.Fatalf("n=%d: ClosureDAG differs from Warren closure on the upper triangle", n)
		}
		if st.RowUnions > upper.Count() {
			t.Fatalf("n=%d: DAG sweep did %d unions for %d arcs", n, st.RowUnions, upper.Count())
		}
	})
}
