package core

import (
	"fmt"

	"tcstudy/internal/buffer"
	"tcstudy/internal/pagedisk"
	"tcstudy/internal/relation"
)

// The Blocked Warren baseline: the best of the matrix-based ("Direct")
// algorithms in the earlier studies the paper's related-work section
// builds on ([1, 3, 19, 26]). Warren's algorithm computes the closure of
// an adjacency bit matrix in two row passes:
//
//	pass 1: for i ascending, for j < i:  if M[i][j] then row_i |= row_j
//	pass 2: for i ascending, for j > i:  if M[i][j] then row_i |= row_j
//
// The blocked variant processes a block of rows at a time — the block's
// pages are pinned in the buffer pool and each outside row is fetched once
// per block — which is what made the matrix family competitive on disk.
//
// The matrix always covers all n nodes, so a selection query costs as much
// as the full closure (only the source rows are written out) — exactly the
// weakness that made the matrix algorithms lose at high selectivity in the
// earlier studies and motivated the paper's focus on graph-based
// algorithms.

// matrixFile is the paged bit matrix: rows of ceil(n/8) bytes (rounded to
// 8) packed row-major, rowsPerPage = PageSize / rowBytes.
type matrixFile struct {
	pool     *buffer.Pool
	file     pagedisk.FileID
	n        int
	rowBytes int
	perPage  int
}

func newMatrixFile(pool *buffer.Pool, n int) (*matrixFile, error) {
	rowBytes := (n + 8) / 8 // bit 0 unused; nodes are 1-based
	if rem := rowBytes % 8; rem != 0 {
		rowBytes += 8 - rem
	}
	if rowBytes > pagedisk.PageSize {
		return nil, fmt.Errorf("core: warren supports at most %d nodes, got %d",
			pagedisk.PageSize*8-8, n)
	}
	m := &matrixFile{
		pool:     pool,
		file:     pool.Disk().CreateFile("adjacency-matrix"),
		n:        n,
		rowBytes: rowBytes,
		perPage:  pagedisk.PageSize / rowBytes,
	}
	pages := (n + m.perPage) / m.perPage // row 0 unused but allocated
	for p := 0; p < pages; p++ {
		_, h, err := pool.GetNew(m.file)
		if err != nil {
			return nil, err
		}
		pool.Unpin(&h, true)
	}
	return m, nil
}

func (m *matrixFile) pageOf(row int32) (pagedisk.PageID, int) {
	return pagedisk.PageID(int(row) / m.perPage), (int(row) % m.perPage) * m.rowBytes
}

// row returns the byte slice of one row inside a pinned page handle.
func (m *matrixFile) row(h *buffer.Handle, off int) []byte {
	return h.Data()[off : off+m.rowBytes]
}

func rowHas(row []byte, col int32) bool {
	return row[col>>3]&(1<<uint(col&7)) != 0
}

func rowSet(row []byte, col int32) {
	row[col>>3] |= 1 << uint(col&7)
}

// orRows folds src into dst and reports whether dst changed.
func orRows(dst, src []byte) {
	for i := range src {
		dst[i] |= src[i]
	}
}

// runWarren executes Blocked Warren end to end. The restructuring phase
// scans the relation and builds the matrix; the computation phase runs the
// two blocked passes; finally the requested rows are flushed.
func (e *engine) runWarren() error {
	n := e.db.n
	var mf *matrixFile
	if err := e.timedPhase(true, func() error {
		var err error
		mf, err = newMatrixFile(e.pool, n)
		if err != nil {
			return err
		}
		return e.db.rel.Scan(e.pool, func(t relation.Tuple) bool {
			pid, off := mf.pageOf(t.Key)
			h, err2 := e.pool.Get(mf.file, pid)
			if err2 != nil {
				err = err2
				return false
			}
			rowSet(mf.row(&h, off), t.Val)
			e.pool.Unpin(&h, true)
			return true
		})
	}); err != nil {
		return err
	}

	if err := e.timedPhase(false, func() error {
		if err := e.warrenPass(mf, 1); err != nil {
			return err
		}
		if err := e.warrenPass(mf, 2); err != nil {
			return err
		}
		// Write the result out: every row for a full closure, the source
		// rows' pages for a selection.
		if e.q.IsFull() {
			return e.pool.FlushFile(mf.file)
		}
		for _, s := range e.q.Sources {
			pid, _ := mf.pageOf(s)
			if err := e.pool.FlushPage(mf.file, pid); err != nil {
				return err
			}
		}
		e.pool.DiscardFile(mf.file)
		return nil
	}); err != nil {
		return err
	}

	// Collect the answer after measurement. The matrix algorithm works in
	// whole bit rows, so the tuple-generation counters stay at zero and
	// its logical work appears in ArcsConsidered (bits driving unions) and
	// ListUnions (row ORs) instead.
	e.answer = make(map[int32][]int32)
	for _, s := range e.sources() {
		pid, off := mf.pageOf(s)
		h, err := e.pool.Get(mf.file, pid)
		if err != nil {
			return err
		}
		row := mf.row(&h, off)
		var succ []int32
		for c := int32(1); c <= int32(n); c++ {
			if rowHas(row, c) {
				succ = append(succ, c)
			}
		}
		e.pool.Unpin(&h, false)
		e.answer[s] = succ
		e.met.SourceTuples += int64(len(succ))
	}
	e.met.DistinctTuples = e.met.SourceTuples
	return nil
}

// warrenPass runs one of Warren's two passes with row blocking: the
// current block of matrix pages is pinned and every outside row is applied
// to all of the block's rows before moving on.
func (e *engine) warrenPass(mf *matrixFile, pass int) error {
	n := int32(e.db.n)
	// Reserve most of the pool for the block, keeping frames for the
	// outside row and working pages.
	blockPages := e.pool.Size() - 3
	if blockPages < 1 {
		blockPages = 1
	}
	totalPages := e.pool.Disk().NumPages(mf.file)
	for lo := 0; lo < totalPages; lo += blockPages {
		hi := lo + blockPages
		if hi > totalPages {
			hi = totalPages
		}
		handles := make([]buffer.Handle, 0, hi-lo)
		for p := lo; p < hi; p++ {
			h, err := e.pool.Get(mf.file, pagedisk.PageID(p))
			if err != nil {
				for i := range handles {
					e.pool.Unpin(&handles[i], true)
				}
				return err
			}
			handles = append(handles, h)
		}
		firstRow := int32(lo * mf.perPage)
		lastRow := int32(hi*mf.perPage - 1)
		if firstRow < 1 {
			firstRow = 1
		}
		if lastRow > n {
			lastRow = n
		}
		// For each column j in pass order, apply row_j to every block row
		// i that has bit j set. Outside rows are fetched once per (j,
		// block) pair — the blocking payoff.
		apply := func(i int32, rowJ []byte) {
			pid, off := mf.pageOf(i)
			h := &handles[int(pid)-lo]
			ri := mf.row(h, off)
			e.met.ListUnions++
			orRows(ri, rowJ)
		}
		for j := int32(1); j <= n; j++ {
			// Determine the block rows this column feeds in this pass.
			var needs []int32
			for i := firstRow; i <= lastRow; i++ {
				if pass == 1 && j >= i {
					continue
				}
				if pass == 2 && j <= i {
					continue
				}
				pid, off := mf.pageOf(i)
				ri := mf.row(&handles[int(pid)-lo], off)
				if rowHas(ri, j) {
					e.met.ArcsConsidered++
					needs = append(needs, i)
				}
			}
			if len(needs) == 0 {
				continue
			}
			jp, joff := mf.pageOf(j)
			if int(jp) >= lo && int(jp) < hi {
				// Row j is inside the pinned block.
				rowJ := mf.row(&handles[int(jp)-lo], joff)
				for _, i := range needs {
					apply(i, rowJ)
				}
				continue
			}
			hj, err := e.pool.Get(mf.file, jp)
			if err != nil {
				for i := range handles {
					e.pool.Unpin(&handles[i], true)
				}
				return err
			}
			rowJ := make([]byte, mf.rowBytes)
			copy(rowJ, mf.row(&hj, joff))
			e.pool.Unpin(&hj, false)
			for _, i := range needs {
				apply(i, rowJ)
			}
		}
		for i := range handles {
			e.pool.Unpin(&handles[i], true)
		}
	}
	return nil
}
