package core

// runBJ executes Jiang's BFS algorithm (Section 3.3): identical to BTC
// except that the restructuring phase applies the single-parent
// optimization to the magic graph before the successor lists are built.
// For a full closure no non-source node can be eliminated and BJ degrades
// to exactly BTC, as the paper notes in Section 6.2.
func (e *engine) runBJ() error {
	if err := e.timedPhase(true, func() error {
		adj, err := e.discover()
		if err != nil {
			return err
		}
		if !e.q.IsFull() {
			adj = e.singleParentReduce(adj)
		}
		return e.buildLists(adj)
	}); err != nil {
		return err
	}
	if err := e.timedPhase(false, func() error {
		exp := newExpander(e.db.n)
		for i := len(e.order) - 1; i >= 0; i-- {
			if err := e.expandNode(e.order[i], exp); err != nil {
				return err
			}
		}
		return e.finalizeFlat()
	}); err != nil {
		return err
	}
	return e.collectFlatAnswer()
}
