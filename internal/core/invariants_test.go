package core

import (
	"testing"

	"tcstudy/internal/graphgen"
)

// TestJKBVariantsDifferOnlyInPreprocessing: JKB and JKB2 share the
// computation phase; only the predecessor-list construction differs, so
// their logical counters must be identical and only restructuring I/O may
// diverge.
func TestJKBVariantsDifferOnlyInPreprocessing(t *testing.T) {
	_, db := randomDAG(t, 901, 250, 5, 40)
	sources := graphgen.SourceSet(250, 6, 4)
	a, err := Run(db, JKB, Query{Sources: sources}, Config{BufferPages: 10})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(db, JKB2, Query{Sources: sources}, Config{BufferPages: 10})
	if err != nil {
		t.Fatal(err)
	}
	if a.Metrics.ListUnions != b.Metrics.ListUnions ||
		a.Metrics.ArcsMarked != b.Metrics.ArcsMarked ||
		a.Metrics.DistinctTuples != b.Metrics.DistinctTuples ||
		a.Metrics.SourceTuples != b.Metrics.SourceTuples {
		t.Fatalf("JKB and JKB2 logical work diverged:\n%+v\n%+v", a.Metrics, b.Metrics)
	}
}

// TestJKBPreprocessingExplodesAtHighOutDegree: the paper's Section 6.2
// observation — without the dual representation, building predecessor
// lists from the source-clustered relation scatters appends across lists
// and becomes very expensive as the out-degree grows.
func TestJKBPreprocessingExplodesAtHighOutDegree(t *testing.T) {
	_, db := randomDAG(t, 907, 800, 20, 80)
	sources := graphgen.SourceSet(800, 6, 4)
	a, err := Run(db, JKB, Query{Sources: sources}, Config{BufferPages: 10})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(db, JKB2, Query{Sources: sources}, Config{BufferPages: 10})
	if err != nil {
		t.Fatal(err)
	}
	if a.Metrics.Restructure.Total() < 4*b.Metrics.Restructure.Total() {
		t.Fatalf("JKB preprocessing I/O %d not clearly above JKB2's %d at F=20",
			a.Metrics.Restructure.Total(), b.Metrics.Restructure.Total())
	}
}

// TestBJReducesWorkOnSelectiveQueries: the single-parent optimization can
// only remove unions relative to BTC.
func TestBJNeverExceedsBTCUnions(t *testing.T) {
	_, db := randomDAG(t, 902, 300, 3, 20)
	for _, s := range []int{2, 5, 15} {
		sources := graphgen.SourceSet(300, s, int64(s))
		rb, err := Run(db, BTC, Query{Sources: sources}, Config{BufferPages: 8})
		if err != nil {
			t.Fatal(err)
		}
		rj, err := Run(db, BJ, Query{Sources: sources}, Config{BufferPages: 8})
		if err != nil {
			t.Fatal(err)
		}
		if rj.Metrics.ListUnions > rb.Metrics.ListUnions {
			t.Fatalf("s=%d: BJ unions %d exceed BTC's %d",
				s, rj.Metrics.ListUnions, rb.Metrics.ListUnions)
		}
		if rj.Metrics.DistinctTuples > rb.Metrics.DistinctTuples {
			t.Fatalf("s=%d: BJ materialized more tuples than BTC", s)
		}
	}
}

// TestSRCHIOGrowsWithSelectivity: the defining SRCH trade-off.
func TestSRCHIOGrowsWithSelectivity(t *testing.T) {
	_, db := randomDAG(t, 903, 400, 4, 60)
	var prev int64 = -1
	for _, s := range []int{1, 8, 64} {
		sources := graphgen.SourceSet(400, s, 7)
		res, err := Run(db, SRCH, Query{Sources: sources}, Config{BufferPages: 10})
		if err != nil {
			t.Fatal(err)
		}
		if res.Metrics.TotalIO() <= prev {
			t.Fatalf("SRCH I/O did not grow: %d after %d", res.Metrics.TotalIO(), prev)
		}
		prev = res.Metrics.TotalIO()
		// Unions equal the number of nodes searched, summed per source.
		if res.Metrics.ArcsMarked != 0 {
			t.Fatal("SRCH marked arcs")
		}
	}
}

// TestSPNStoresMoreEntriesThanBTC: successor trees pay for structure with
// parent markers, the mechanism behind Figure 7(a).
func TestSPNStoresMoreEntriesThanBTC(t *testing.T) {
	_, db := randomDAG(t, 904, 250, 5, 50)
	rb, err := Run(db, BTC, Query{}, Config{BufferPages: 10})
	if err != nil {
		t.Fatal(err)
	}
	rs, err := Run(db, SPN, Query{}, Config{BufferPages: 10})
	if err != nil {
		t.Fatal(err)
	}
	// Same result tuples...
	if rs.Metrics.DistinctTuples != rb.Metrics.DistinctTuples {
		t.Fatalf("SPN distinct tuples %d != BTC's %d",
			rs.Metrics.DistinctTuples, rb.Metrics.DistinctTuples)
	}
	// ...but fewer duplicates generated and fewer successors fetched.
	if rs.Metrics.Duplicates >= rb.Metrics.Duplicates {
		t.Fatalf("SPN duplicates %d not below BTC's %d",
			rs.Metrics.Duplicates, rb.Metrics.Duplicates)
	}
	if rs.Metrics.SuccessorsFetched >= rb.Metrics.SuccessorsFetched {
		t.Fatalf("SPN fetched %d successors, BTC %d",
			rs.Metrics.SuccessorsFetched, rb.Metrics.SuccessorsFetched)
	}
}

// TestComputePhaseDominatesCTC: Table 3's structural observation holds on
// random inputs — for full closures the computation phase dwarfs
// restructuring.
func TestComputePhaseDominatesCTC(t *testing.T) {
	_, db := randomDAG(t, 905, 400, 5, 80)
	res, err := Run(db, BTC, Query{}, Config{BufferPages: 10})
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.Compute.Total() <= res.Metrics.Restructure.Total() {
		t.Fatalf("compute I/O %d not above restructure I/O %d",
			res.Metrics.Compute.Total(), res.Metrics.Restructure.Total())
	}
}

// TestPagePolicySecondaryEffect: the paper's Section 5.1 claim, asserted
// loosely — sane policies (excluding MRU, which is anti-optimal for this
// access pattern) stay within 2x of each other.
func TestPagePolicySecondaryEffect(t *testing.T) {
	_, db := randomDAG(t, 906, 300, 4, 50)
	var lo, hi int64
	for _, pp := range []string{"lru", "fifo", "clock", "random"} {
		res, err := Run(db, BTC, Query{}, Config{BufferPages: 8, PagePolicy: pp})
		if err != nil {
			t.Fatal(err)
		}
		io := res.Metrics.TotalIO()
		if lo == 0 || io < lo {
			lo = io
		}
		if io > hi {
			hi = io
		}
	}
	if hi > 2*lo {
		t.Fatalf("policy spread too wide: %d .. %d", lo, hi)
	}
}
