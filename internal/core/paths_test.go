package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"tcstudy/internal/graph"
	"tcstudy/internal/graphgen"
)

// refPathAgg computes the reference aggregate by dynamic programming over
// a topological order.
func refPathAgg(t *testing.T, g *graph.Graph, agg PathAggregate) []map[int32]int64 {
	t.Helper()
	order, err := g.TopoSort()
	if err != nil {
		t.Fatal(err)
	}
	out := make([]map[int32]int64, g.N()+1)
	for i := len(order) - 1; i >= 0; i-- {
		v := order[i]
		acc := map[int32]int64{}
		for _, c := range g.Children(v) {
			combineArc(agg, acc, c, 1)
			for u, val := range out[c] {
				combinePath(agg, acc, u, val, 1)
			}
		}
		out[v] = acc
	}
	return out
}

func checkPathValues(t *testing.T, agg PathAggregate, got map[int32]map[int32]int64, want []map[int32]int64, nodes []int32) {
	t.Helper()
	for _, s := range nodes {
		w := want[s]
		gv := got[s]
		if len(gv) != len(w) {
			t.Fatalf("%s: node %d has %d entries, want %d", agg, s, len(gv), len(w))
		}
		for u, val := range w {
			if gv[u] != val {
				t.Fatalf("%s: value(%d, %d) = %d, want %d", agg, s, u, gv[u], val)
			}
		}
	}
}

func TestPathAggregatesAgainstReference(t *testing.T) {
	for _, agg := range []PathAggregate{MinHops, MaxHops, PathCount} {
		t.Run(string(agg), func(t *testing.T) {
			g, db := randomDAG(t, 801, 150, 4, 30)
			want := refPathAgg(t, g, agg)
			// Full closure.
			res, err := RunPaths(db, agg, Query{}, Config{BufferPages: 8})
			if err != nil {
				t.Fatal(err)
			}
			var all []int32
			for v := int32(1); v <= int32(g.N()); v++ {
				all = append(all, v)
			}
			checkPathValues(t, agg, res.Values, want, all)
			// Selection.
			sources := graphgen.SourceSet(150, 5, 2)
			sel, err := RunPaths(db, agg, Query{Sources: sources}, Config{BufferPages: 8})
			if err != nil {
				t.Fatal(err)
			}
			checkPathValues(t, agg, sel.Values, want, sources)
			if sel.Metrics.TotalIO() <= 0 {
				t.Fatal("no I/O recorded")
			}
		})
	}
}

func TestPathAggregatesKnownGraph(t *testing.T) {
	// 1 -> 2 -> 4, 1 -> 3 -> 4, 4 -> 5: two paths 1~>4 (len 2), one 1~>5
	// continuation each.
	db := NewDatabase(5, []graph.Arc{
		{From: 1, To: 2}, {From: 1, To: 3}, {From: 2, To: 4}, {From: 3, To: 4}, {From: 4, To: 5},
	})
	min, err := RunPaths(db, MinHops, Query{Sources: []int32{1}}, Config{BufferPages: 8})
	if err != nil {
		t.Fatal(err)
	}
	wantMin := map[int32]int64{2: 1, 3: 1, 4: 2, 5: 3}
	for u, d := range wantMin {
		if min.Values[1][u] != d {
			t.Fatalf("minhops(1,%d) = %d, want %d", u, min.Values[1][u], d)
		}
	}
	cnt, err := RunPaths(db, PathCount, Query{Sources: []int32{1}}, Config{BufferPages: 8})
	if err != nil {
		t.Fatal(err)
	}
	if cnt.Values[1][4] != 2 || cnt.Values[1][5] != 2 {
		t.Fatalf("pathcount(1,4)=%d pathcount(1,5)=%d, want 2, 2",
			cnt.Values[1][4], cnt.Values[1][5])
	}
	max, err := RunPaths(db, MaxHops, Query{Sources: []int32{1}}, Config{BufferPages: 8})
	if err != nil {
		t.Fatal(err)
	}
	if max.Values[1][5] != 3 {
		t.Fatalf("maxhops(1,5) = %d, want 3", max.Values[1][5])
	}
}

func TestMaxHopsMatchesLevels(t *testing.T) {
	// level(v) - 1 is the longest path from v to any sink: the maximum
	// MaxHops value of v's row.
	g, db := randomDAG(t, 802, 120, 4, 25)
	levels, err := g.Levels()
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunPaths(db, MaxHops, Query{}, Config{BufferPages: 8})
	if err != nil {
		t.Fatal(err)
	}
	for v := int32(1); v <= int32(g.N()); v++ {
		var best int64
		for _, d := range res.Values[v] {
			if d > best {
				best = d
			}
		}
		if best != int64(levels[v])-1 {
			t.Fatalf("node %d: max hops %d, level-1 = %d", v, best, levels[v]-1)
		}
	}
}

func TestMinHopsNeverExceedsMaxHops(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(60) + 5
		var arcs []graph.Arc
		for i := 1; i < n; i++ {
			for j := i + 1; j <= n; j++ {
				if rng.Intn(4) == 0 {
					arcs = append(arcs, graph.Arc{From: int32(i), To: int32(j)})
				}
			}
		}
		db := NewDatabase(n, arcs)
		min, err := RunPaths(db, MinHops, Query{}, Config{BufferPages: 8})
		if err != nil {
			return false
		}
		max, err := RunPaths(db, MaxHops, Query{}, Config{BufferPages: 8})
		if err != nil {
			return false
		}
		for v, row := range min.Values {
			for u, d := range row {
				if max.Values[v][u] < d {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestPathReachabilityMatchesBTC(t *testing.T) {
	// The keys of every aggregate row are exactly the successor set.
	g, db := randomDAG(t, 803, 100, 4, 25)
	want := refSuccessors(t, g, nil)
	res, err := RunPaths(db, MinHops, Query{}, Config{BufferPages: 8})
	if err != nil {
		t.Fatal(err)
	}
	for v, w := range want {
		row := res.Values[v]
		if len(row) != len(w) {
			t.Fatalf("node %d: %d aggregate entries, %d successors", v, len(row), len(w))
		}
		for _, u := range w {
			if _, ok := row[u]; !ok {
				t.Fatalf("node %d: successor %d missing from aggregate row", v, u)
			}
		}
	}
}

func TestPathCountSaturates(t *testing.T) {
	// A ladder of diamonds doubles the path count per stage: 2^40 paths
	// overflow int32 storage and must saturate, not wrap.
	var arcs []graph.Arc
	n := int32(1)
	for stage := 0; stage < 40; stage++ {
		a, b, c := n+1, n+2, n+3
		arcs = append(arcs, graph.Arc{From: n, To: a}, graph.Arc{From: n, To: b},
			graph.Arc{From: a, To: c}, graph.Arc{From: b, To: c})
		n = c
	}
	db := NewDatabase(int(n), arcs)
	res, err := RunPaths(db, PathCount, Query{Sources: []int32{1}}, Config{BufferPages: 8})
	if err != nil {
		t.Fatal(err)
	}
	got := res.Values[1][n]
	if got <= 0 {
		t.Fatalf("path count wrapped negative: %d", got)
	}
	if got < int64(1)<<31-1 {
		t.Fatalf("path count %d below the saturation bound", got)
	}
}

func TestRunPathsValidation(t *testing.T) {
	_, db := randomDAG(t, 804, 50, 2, 10)
	if _, err := RunPaths(db, PathAggregate("nope"), Query{}, Config{BufferPages: 8}); err == nil {
		t.Fatal("unknown aggregate accepted")
	}
	if _, err := RunPaths(db, MinHops, Query{}, Config{BufferPages: 2}); err == nil {
		t.Fatal("tiny pool accepted")
	}
	if _, err := RunPaths(db, MinHops, Query{Sources: []int32{99}}, Config{BufferPages: 8}); err == nil {
		t.Fatal("bad source accepted")
	}
}
