package core

import (
	"tcstudy/internal/extsort"
	"tcstudy/internal/relation"
)

// The Seminaive baseline: the classic iterative (delta) evaluation of
// recursive queries that the earlier studies the paper builds on ([1, 3,
// 19] in its related-work section) compared the graph-based algorithms
// against. It is implemented here so the library carries the baseline the
// paper's conclusions rest on.
//
// Evaluation: T := Δ := R restricted to the source rows; then repeat
//
//	C  := π(Δ ⋈ R)             join output, with duplicates
//	Cs := sort(C)              external merge sort, duplicates dropped
//	Δ' := Cs − T,  T := T ∪ Cs one sorted co-merge producing both
//
// until Δ' is empty. As in the original studies, duplicate elimination is
// sort-based and the accumulated result is rescanned and rewritten every
// iteration — the characteristic I/O profile that loses to the graph-based
// algorithms on full closures. For selective queries the iteration
// restricts itself to source rows (selection efficiency 1), the regime
// where Kabler et al. found Seminaive most competitive.
func (e *engine) runSeminaive() error {
	srcs := e.sources()
	workPages := e.cfg.BufferPages - 4
	if workPages < 2 {
		workPages = 2
	}

	T := relation.NewHeap(e.pool, "seminaive-T")
	delta := relation.NewHeap(e.pool, "seminaive-delta")

	err := e.timedPhase(false, func() error {
		// Seed: the source rows of R, sorted and deduplicated.
		seed := relation.NewHeap(e.pool, "seminaive-seed")
		for _, s := range srcs {
			var appendErr error
			if _, err := e.probeRel(s, func(c int32) bool {
				e.met.TuplesGenerated++
				appendErr = seed.Append(relation.Tuple{Key: s, Val: c})
				return appendErr == nil
			}); err != nil {
				return err
			}
			if appendErr != nil {
				return appendErr
			}
		}
		sorted, err := extsort.Sort(e.pool, seed, workPages, "seminaive-seed-sorted")
		if err != nil {
			return err
		}
		seed.Discard()
		// T and Δ both start as the sorted seed.
		var copyErr error
		if err := sorted.Scan(func(t relation.Tuple) bool {
			e.met.DistinctTuples++
			if copyErr = T.Append(t); copyErr != nil {
				return false
			}
			copyErr = delta.Append(t)
			return copyErr == nil
		}); err != nil {
			return err
		}
		if copyErr != nil {
			return copyErr
		}
		sorted.Discard()

		for delta.Len() > 0 {
			e.met.ListUnions++ // one join pass per iteration

			// C := π(Δ ⋈ R).
			c := relation.NewHeap(e.pool, "seminaive-C")
			var joinErr error
			if err := delta.Scan(func(t relation.Tuple) bool {
				if _, err := e.probeRel(t.Val, func(z int32) bool {
					e.met.TuplesGenerated++
					e.met.SuccessorsFetched++
					joinErr = c.Append(relation.Tuple{Key: t.Key, Val: z})
					return joinErr == nil
				}); err != nil {
					joinErr = err
				}
				return joinErr == nil
			}); err != nil {
				return err
			}
			if joinErr != nil {
				return joinErr
			}

			// Cs := sort(C) with duplicate elimination.
			cs, err := extsort.Sort(e.pool, c, workPages, "seminaive-Cs")
			if err != nil {
				return err
			}
			c.Discard()

			// Co-merge: T' := T ∪ Cs, Δ' := Cs − T.
			newT := relation.NewHeap(e.pool, "seminaive-T2")
			newDelta := relation.NewHeap(e.pool, "seminaive-delta2")
			if err := e.seminaiveMerge(T, cs, newT, newDelta); err != nil {
				return err
			}
			cs.Discard()
			T.Discard()
			delta.Discard()
			T, delta = newT, newDelta
		}
		e.met.SourceTuples = e.met.DistinctTuples
		return T.Flush()
	})
	if err != nil {
		return err
	}

	// Collect the answer after measurement.
	e.answer = make(map[int32][]int32, len(srcs))
	for _, s := range srcs {
		e.answer[s] = nil
	}
	return T.Scan(func(t relation.Tuple) bool {
		e.answer[t.Key] = append(e.answer[t.Key], t.Val)
		return true
	})
}

// seminaiveMerge co-merges the sorted result T with the sorted,
// deduplicated join output cs: every tuple lands in newT, and the tuples
// new to T also land in newDelta.
func (e *engine) seminaiveMerge(T, cs, newT, newDelta *relation.Heap) error {
	tl := func(a, b relation.Tuple) bool {
		if a.Key != b.Key {
			return a.Key < b.Key
		}
		return a.Val < b.Val
	}
	ct := T.Cursor()
	cc := cs.Cursor()
	defer ct.Close()
	defer cc.Close()
	tv, tok := ct.Next()
	cv, cok := cc.Next()
	for tok || cok {
		switch {
		case tok && (!cok || tl(tv, cv)):
			if err := newT.Append(tv); err != nil {
				return err
			}
			tv, tok = ct.Next()
		case cok && (!tok || tl(cv, tv)):
			e.met.DistinctTuples++
			if err := newT.Append(cv); err != nil {
				return err
			}
			if err := newDelta.Append(cv); err != nil {
				return err
			}
			cv, cok = cc.Next()
		default: // equal: already in T
			e.met.Duplicates++
			if err := newT.Append(tv); err != nil {
				return err
			}
			tv, tok = ct.Next()
			cv, cok = cc.Next()
		}
	}
	if err := ct.Err(); err != nil {
		return err
	}
	return cc.Err()
}
