package core

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"tcstudy/internal/graph"
	"tcstudy/internal/graphgen"
)

// refSuccessors computes the expected answer with the in-memory reference
// closure.
func refSuccessors(t *testing.T, g *graph.Graph, sources []int32) map[int32][]int32 {
	t.Helper()
	succ, err := g.Closure()
	if err != nil {
		t.Fatal(err)
	}
	want := map[int32][]int32{}
	var nodes []int32
	if len(sources) == 0 {
		for v := int32(1); v <= int32(g.N()); v++ {
			nodes = append(nodes, v)
		}
	} else {
		nodes = sources
	}
	for _, v := range nodes {
		var s []int32
		succ[v].ForEach(func(u int32) { s = append(s, u) })
		want[v] = s
	}
	return want
}

func sorted(vals []int32) []int32 {
	out := make([]int32, len(vals))
	copy(out, vals)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func checkAnswer(t *testing.T, alg Algorithm, got, want map[int32][]int32, full bool, g *graph.Graph) {
	t.Helper()
	for v, w := range want {
		gv := sorted(got[v])
		// For a full closure, flat algorithms report every node of the
		// magic graph; nodes with no successors may be absent from got if
		// they were never discovered (isolated nodes are roots too, so
		// they are present with empty lists). Compare contents.
		if len(gv) != len(w) {
			t.Fatalf("%s: successors of %d: got %d (%v), want %d (%v)",
				alg, v, len(gv), trim(gv), len(w), trim(w))
		}
		for i := range w {
			if gv[i] != w[i] {
				t.Fatalf("%s: successors of %d differ at %d: got %d, want %d",
					alg, v, i, gv[i], w[i])
			}
		}
	}
}

func trim(v []int32) []int32 {
	if len(v) > 20 {
		return v[:20]
	}
	return v
}

func randomDAG(t *testing.T, seed int64, n, f, l int) (*graph.Graph, *Database) {
	t.Helper()
	arcs, err := graphgen.Generate(graphgen.Params{Nodes: n, OutDegree: f, Locality: l, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	g := graph.New(n, arcs)
	return g, NewDatabase(n, arcs)
}

// TestAllAlgorithmsFullClosure is the central integration test: every
// algorithm must produce the reference closure on a spread of graph shapes.
func TestAllAlgorithmsFullClosure(t *testing.T) {
	shapes := []struct{ n, f, l int }{
		{60, 2, 10},  // deep, sparse
		{60, 5, 60},  // shallow, denser
		{120, 3, 25}, // medium
		{40, 8, 40},  // dense
	}
	for si, sh := range shapes {
		g, db := randomDAG(t, int64(100+si), sh.n, sh.f, sh.l)
		want := refSuccessors(t, g, nil)
		for _, alg := range Algorithms() {
			t.Run(fmt.Sprintf("%s/n%d-f%d-l%d", alg, sh.n, sh.f, sh.l), func(t *testing.T) {
				cfg := Config{BufferPages: 8}
				if alg == HYB {
					cfg.ILIMIT = 0.3
				}
				res, err := Run(db, alg, Query{}, cfg)
				if err != nil {
					t.Fatal(err)
				}
				checkAnswer(t, alg, res.Successors, want, true, g)
			})
		}
	}
}

// TestAllAlgorithmsPartialClosure validates PTC answers for every algorithm
// across selectivities.
func TestAllAlgorithmsPartialClosure(t *testing.T) {
	g, db := randomDAG(t, 7, 150, 4, 30)
	for _, s := range []int{1, 3, 10, 40} {
		sources := graphgen.SourceSet(150, s, int64(s))
		want := refSuccessors(t, g, sources)
		for _, alg := range Algorithms() {
			t.Run(fmt.Sprintf("%s/s%d", alg, s), func(t *testing.T) {
				cfg := Config{BufferPages: 8}
				if alg == HYB {
					cfg.ILIMIT = 0.25
				}
				res, err := Run(db, alg, Query{Sources: sources}, cfg)
				if err != nil {
					t.Fatal(err)
				}
				checkAnswer(t, alg, res.Successors, want, false, g)
			})
		}
	}
}

// TestAllBufferSizesAndPolicies stresses the paging machinery: answers must
// be identical under every page/list replacement policy and tiny pools.
func TestAllBufferSizesAndPolicies(t *testing.T) {
	g, db := randomDAG(t, 21, 100, 4, 20)
	sources := graphgen.SourceSet(100, 5, 5)
	want := refSuccessors(t, g, sources)
	wantFull := refSuccessors(t, g, nil)
	for _, m := range []int{4, 7, 16} {
		for _, pp := range []string{"lru", "mru", "fifo", "clock", "random"} {
			for _, lp := range []string{"smallest", "largest", "lru", "random"} {
				cfg := Config{BufferPages: m, PagePolicy: pp, ListPolicy: lp}
				name := fmt.Sprintf("m%d-%s-%s", m, pp, lp)
				t.Run(name, func(t *testing.T) {
					res, err := Run(db, BTC, Query{Sources: sources}, cfg)
					if err != nil {
						t.Fatal(err)
					}
					checkAnswer(t, BTC, res.Successors, want, false, g)
					resF, err := Run(db, BTC, Query{}, cfg)
					if err != nil {
						t.Fatal(err)
					}
					checkAnswer(t, BTC, resF.Successors, wantFull, true, g)
				})
			}
		}
	}
}

// TestHYBILimitSweep checks correctness across blocking factors, including
// blocks larger than the pool allows (forcing dynamic reblocking).
func TestHYBILimitSweep(t *testing.T) {
	g, db := randomDAG(t, 33, 120, 5, 40)
	want := refSuccessors(t, g, nil)
	for _, il := range []float64{0, 0.1, 0.2, 0.3, 0.5, 0.9} {
		t.Run(fmt.Sprintf("ilimit%.1f", il), func(t *testing.T) {
			res, err := Run(db, HYB, Query{}, Config{BufferPages: 6, ILIMIT: il})
			if err != nil {
				t.Fatal(err)
			}
			checkAnswer(t, HYB, res.Successors, want, true, g)
		})
	}
}

func TestHYBZeroILimitEqualsBTC(t *testing.T) {
	_, db := randomDAG(t, 40, 100, 4, 25)
	rb, err := Run(db, BTC, Query{}, Config{BufferPages: 8})
	if err != nil {
		t.Fatal(err)
	}
	rh, err := Run(db, HYB, Query{}, Config{BufferPages: 8, ILIMIT: 0})
	if err != nil {
		t.Fatal(err)
	}
	if rb.Metrics.TotalIO() != rh.Metrics.TotalIO() {
		t.Fatalf("HYB(ILIMIT=0) I/O %d != BTC I/O %d",
			rh.Metrics.TotalIO(), rb.Metrics.TotalIO())
	}
	if rb.Metrics.ListUnions != rh.Metrics.ListUnions {
		t.Fatalf("unions differ: %d vs %d", rh.Metrics.ListUnions, rb.Metrics.ListUnions)
	}
}

func TestBJEqualsBTCOnFullClosure(t *testing.T) {
	// Section 6.2: for CTC, BJ is identical to BTC since no non-source
	// node can be eliminated.
	_, db := randomDAG(t, 50, 100, 4, 25)
	rb, err := Run(db, BTC, Query{}, Config{BufferPages: 8})
	if err != nil {
		t.Fatal(err)
	}
	rj, err := Run(db, BJ, Query{}, Config{BufferPages: 8})
	if err != nil {
		t.Fatal(err)
	}
	if rb.Metrics.TotalIO() != rj.Metrics.TotalIO() ||
		rb.Metrics.ListUnions != rj.Metrics.ListUnions ||
		rb.Metrics.TuplesGenerated != rj.Metrics.TuplesGenerated {
		t.Fatalf("BJ and BTC diverge on CTC: %+v vs %+v", rj.Metrics, rb.Metrics)
	}
}

func TestErrorPaths(t *testing.T) {
	_, db := randomDAG(t, 60, 30, 2, 10)
	if _, err := Run(db, BTC, Query{}, Config{BufferPages: 2}); err == nil {
		t.Fatal("accepted a 2-page buffer pool")
	}
	if _, err := Run(db, Algorithm("nope"), Query{}, Config{BufferPages: 8}); err == nil {
		t.Fatal("accepted unknown algorithm")
	}
	if _, err := Run(db, BTC, Query{Sources: []int32{0}}, Config{BufferPages: 8}); err == nil {
		t.Fatal("accepted source node 0")
	}
	if _, err := Run(db, BTC, Query{Sources: []int32{31}}, Config{BufferPages: 8}); err == nil {
		t.Fatal("accepted out-of-range source")
	}
	if _, err := Run(db, BTC, Query{}, Config{BufferPages: 8, PagePolicy: "zzz"}); err == nil {
		t.Fatal("accepted unknown page policy")
	}
	if _, err := Run(db, BTC, Query{}, Config{BufferPages: 8, ListPolicy: "zzz"}); err == nil {
		t.Fatal("accepted unknown list policy")
	}
}

func TestEmptyAndTinyGraphs(t *testing.T) {
	// A graph with no arcs at all.
	db := NewDatabase(5, nil)
	for _, alg := range Algorithms() {
		res, err := Run(db, alg, Query{}, Config{BufferPages: 8})
		if err != nil {
			t.Fatalf("%s on empty graph: %v", alg, err)
		}
		for v, s := range res.Successors {
			if len(s) != 0 {
				t.Fatalf("%s: node %d has successors %v on empty graph", alg, v, s)
			}
		}
	}
	// A single arc.
	db1 := NewDatabase(2, []graph.Arc{{From: 1, To: 2}})
	for _, alg := range Algorithms() {
		res, err := Run(db1, alg, Query{Sources: []int32{1}}, Config{BufferPages: 8})
		if err != nil {
			t.Fatalf("%s on single arc: %v", alg, err)
		}
		if got := sorted(res.Successors[1]); len(got) != 1 || got[0] != 2 {
			t.Fatalf("%s: successors of 1 = %v, want [2]", alg, got)
		}
	}
}

func TestMarkingEqualsTransitiveReduction(t *testing.T) {
	// Section 3.1: with children expanded in topological order, the
	// unmarked arcs are exactly the transitive reduction.
	for seed := int64(0); seed < 5; seed++ {
		g, db := randomDAG(t, 70+seed, 80, 4, 20)
		tr, _, err := g.Reduction()
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(db, BTC, Query{}, Config{BufferPages: 8})
		if err != nil {
			t.Fatal(err)
		}
		m := res.Metrics
		if m.ArcsConsidered != int64(g.NumArcs()) {
			t.Fatalf("considered %d arcs, graph has %d", m.ArcsConsidered, g.NumArcs())
		}
		unmarked := m.ArcsConsidered - m.ArcsMarked
		if unmarked != int64(tr.NumArcs()) {
			t.Fatalf("unmarked arcs = %d, |TR| = %d", unmarked, tr.NumArcs())
		}
		if m.ListUnions != unmarked {
			t.Fatalf("unions %d != unmarked arcs %d", m.ListUnions, unmarked)
		}
	}
}

func TestMarkingAblationStillCorrect(t *testing.T) {
	g, db := randomDAG(t, 81, 80, 4, 20)
	want := refSuccessors(t, g, nil)
	res, err := Run(db, BTC, Query{}, Config{BufferPages: 8, DisableMarking: true})
	if err != nil {
		t.Fatal(err)
	}
	checkAnswer(t, BTC, res.Successors, want, true, g)
	if res.Metrics.ArcsMarked != 0 {
		t.Fatal("marking disabled but arcs were marked")
	}
	// Without marking every arc is a union.
	if res.Metrics.ListUnions != res.Metrics.ArcsConsidered {
		t.Fatalf("unions %d != arcs %d with marking off",
			res.Metrics.ListUnions, res.Metrics.ArcsConsidered)
	}
}

func TestClusteringAblationStillCorrect(t *testing.T) {
	g, db := randomDAG(t, 82, 80, 4, 20)
	want := refSuccessors(t, g, nil)
	res, err := Run(db, BTC, Query{}, Config{BufferPages: 8, DisableClustering: true})
	if err != nil {
		t.Fatal(err)
	}
	checkAnswer(t, BTC, res.Successors, want, true, g)
}

func TestMetricsInvariants(t *testing.T) {
	g, db := randomDAG(t, 90, 120, 5, 30)
	sources := graphgen.SourceSet(120, 8, 9)
	want := refSuccessors(t, g, sources)
	answerSize := 0
	for _, s := range want {
		answerSize += len(s)
	}
	for _, alg := range Algorithms() {
		res, err := Run(db, alg, Query{Sources: sources}, Config{BufferPages: 8, ILIMIT: 0.25})
		if err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
		m := res.Metrics
		if m.TotalIO() != m.Restructure.Total()+m.Compute.Total() {
			t.Fatalf("%s: TotalIO mismatch", alg)
		}
		if m.TotalIO() <= 0 {
			t.Fatalf("%s: no I/O recorded", alg)
		}
		if m.ArcsMarked > m.ArcsConsidered {
			t.Fatalf("%s: marked > considered", alg)
		}
		if eff := m.SelectionEfficiency(); eff < 0 || eff > 1+1e-9 {
			t.Fatalf("%s: selection efficiency %v out of range", alg, eff)
		}
		if m.MarkingPct() < 0 || m.MarkingPct() > 100 {
			t.Fatalf("%s: marking pct %v", alg, m.MarkingPct())
		}
		if alg == SRCH && m.SelectionEfficiency() != 1 {
			t.Fatalf("SRCH selection efficiency = %v, want 1", m.SelectionEfficiency())
		}
		if m.Duplicates != m.TuplesGenerated-(m.TuplesGenerated-m.Duplicates) {
			t.Fatalf("%s: duplicate arithmetic broken", alg)
		}
		// Source tuples must equal the answer size for every algorithm.
		if m.SourceTuples != int64(answerSize) {
			t.Fatalf("%s: SourceTuples = %d, answer size = %d", alg, m.SourceTuples, answerSize)
		}
	}
}

func TestSelectionEfficiencyOrdering(t *testing.T) {
	// Section 6.3.2: SRCH is optimal (1.0); JKB2 is far better than BTC;
	// BJ at least as good as BTC.
	_, db := randomDAG(t, 91, 400, 5, 40)
	sources := graphgen.SourceSet(400, 4, 3)
	effs := map[Algorithm]float64{}
	for _, alg := range []Algorithm{BTC, BJ, JKB2, SRCH} {
		res, err := Run(db, alg, Query{Sources: sources}, Config{BufferPages: 8})
		if err != nil {
			t.Fatal(err)
		}
		effs[alg] = res.Metrics.SelectionEfficiency()
	}
	if effs[SRCH] != 1 {
		t.Fatalf("SRCH eff = %v", effs[SRCH])
	}
	if effs[JKB2] <= effs[BTC] {
		t.Fatalf("JKB2 eff %v <= BTC eff %v", effs[JKB2], effs[BTC])
	}
	if effs[BJ] < effs[BTC]-1e-9 {
		t.Fatalf("BJ eff %v < BTC eff %v", effs[BJ], effs[BTC])
	}
}

func TestDeterministicRuns(t *testing.T) {
	_, db := randomDAG(t, 95, 100, 4, 25)
	sources := graphgen.SourceSet(100, 5, 1)
	a, err := Run(db, BTC, Query{Sources: sources}, Config{BufferPages: 8})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(db, BTC, Query{Sources: sources}, Config{BufferPages: 8})
	if err != nil {
		t.Fatal(err)
	}
	if a.Metrics.TotalIO() != b.Metrics.TotalIO() ||
		a.Metrics.TuplesGenerated != b.Metrics.TuplesGenerated {
		t.Fatal("repeated runs differ")
	}
}

func TestResultPersistedToDisk(t *testing.T) {
	// After a run the expanded source lists must be on disk, not just in
	// the buffer pool: re-reading from a fresh pool must succeed. This is
	// implicit in Run (answers are collected through a pool whose pages
	// may have been evicted), but check writes happened at all.
	_, db := randomDAG(t, 96, 100, 4, 25)
	res, err := Run(db, BTC, Query{Sources: []int32{1, 2, 3}}, Config{BufferPages: 8})
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.Compute.Writes == 0 && res.Metrics.Restructure.Writes == 0 {
		t.Fatal("no pages were ever written")
	}
}

func TestRandomizedCrossValidation(t *testing.T) {
	// Randomized sweep: random shapes, random sources, random configs.
	rng := rand.New(rand.NewSource(1234))
	for trial := 0; trial < 8; trial++ {
		n := rng.Intn(150) + 20
		f := rng.Intn(6) + 1
		l := rng.Intn(n) + 5
		g, db := randomDAG(t, int64(1000+trial), n, f, l)
		var sources []int32
		if rng.Intn(2) == 0 {
			sources = graphgen.SourceSet(n, rng.Intn(5)+1, int64(trial))
		}
		want := refSuccessors(t, g, sources)
		cfg := Config{
			BufferPages: rng.Intn(12) + 4,
			PagePolicy:  []string{"lru", "clock", "fifo"}[rng.Intn(3)],
			ListPolicy:  []string{"smallest", "largest"}[rng.Intn(2)],
			ILIMIT:      float64(rng.Intn(4)) * 0.1,
		}
		for _, alg := range Algorithms() {
			res, err := Run(db, alg, Query{Sources: sources}, cfg)
			if err != nil {
				t.Fatalf("trial %d %s: %v", trial, alg, err)
			}
			checkAnswer(t, alg, res.Successors, want, len(sources) == 0, g)
		}
	}
}

// TestChargeIndexIOAblation: routing probes through the disk-resident
// B+-tree must preserve every answer and may only add I/O; with a warm
// root the overhead should be modest — the measured form of the paper's
// "interior index pages are free" assumption.
func TestChargeIndexIOAblation(t *testing.T) {
	g, db := randomDAG(t, 1101, 300, 4, 40)
	sources := graphgen.SourceSet(300, 5, 3)
	want := refSuccessors(t, g, sources)
	wantFull := refSuccessors(t, g, nil)
	for _, alg := range []Algorithm{BTC, BJ, SRCH, SEMI, JKB, JKB2} {
		free, err := Run(db, alg, Query{Sources: sources}, Config{BufferPages: 10})
		if err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
		charged, err := Run(db, alg, Query{Sources: sources}, Config{BufferPages: 10, ChargeIndexIO: true})
		if err != nil {
			t.Fatalf("%s charged: %v", alg, err)
		}
		checkAnswer(t, alg, charged.Successors, want, false, g)
		if charged.Metrics.TotalIO() < free.Metrics.TotalIO() {
			t.Errorf("%s: charging index I/O reduced cost (%d < %d)",
				alg, charged.Metrics.TotalIO(), free.Metrics.TotalIO())
		}
		if charged.Metrics.TotalIO() > 3*free.Metrics.TotalIO()+50 {
			t.Errorf("%s: index overhead implausibly large (%d vs %d)",
				alg, charged.Metrics.TotalIO(), free.Metrics.TotalIO())
		}
	}
	full, err := Run(db, BTC, Query{}, Config{BufferPages: 10, ChargeIndexIO: true})
	if err != nil {
		t.Fatal(err)
	}
	checkAnswer(t, BTC, full.Successors, wantFull, true, g)
}
