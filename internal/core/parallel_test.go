package core

import (
	"fmt"
	"reflect"
	"sort"
	"testing"

	"tcstudy/internal/graphgen"
)

func TestPartitionSources(t *testing.T) {
	src := []int32{1, 2, 3, 4, 5, 6, 7}
	cases := []struct {
		workers int
		want    [][]int32
	}{
		{2, [][]int32{{1, 2, 3}, {4, 5, 6, 7}}},
		{3, [][]int32{{1, 2}, {3, 4}, {5, 6, 7}}},
		{7, [][]int32{{1}, {2}, {3}, {4}, {5}, {6}, {7}}},
		{20, [][]int32{{1}, {2}, {3}, {4}, {5}, {6}, {7}}},
	}
	for _, c := range cases {
		got := partitionSources(src, c.workers)
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("partitionSources(7 sources, %d workers) = %v, want %v", c.workers, got, c.want)
		}
		total := 0
		for _, p := range got {
			if len(p) == 0 {
				t.Errorf("workers=%d produced an empty partition", c.workers)
			}
			total += len(p)
		}
		if total != len(src) {
			t.Errorf("workers=%d covered %d of %d sources", c.workers, total, len(src))
		}
	}
}

// TestParallelSourcesMatchAnswers: a partitioned run must return exactly
// the serial run's successor sets, for every algorithm that supports PTC.
func TestParallelSourcesMatchAnswers(t *testing.T) {
	_, db := randomDAG(t, 2001, 300, 4, 30)
	sources := graphgen.SourceSet(300, 8, 7)
	for _, alg := range []Algorithm{BTC, BJ, SRCH, SPN, JKB2, HYB, SEMI, SCHMITZ} {
		serial, err := Run(db, alg, Query{Sources: sources}, Config{BufferPages: 8, ILIMIT: 0.25})
		if err != nil {
			t.Fatalf("%s serial: %v", alg, err)
		}
		par, err := Run(db, alg, Query{Sources: sources}, Config{BufferPages: 8, ILIMIT: 0.25, Parallelism: 4})
		if err != nil {
			t.Fatalf("%s parallel: %v", alg, err)
		}
		if len(par.Successors) != len(serial.Successors) {
			t.Fatalf("%s: parallel answered %d sources, serial %d", alg, len(par.Successors), len(serial.Successors))
		}
		for s, want := range serial.Successors {
			got := par.Successors[s]
			if !sameSet(got, want) {
				t.Errorf("%s: successors of %d differ: parallel %v, serial %v", alg, s, got, want)
			}
		}
		// The answer-bearing tuple count is partition-invariant: every
		// source's expanded list is produced by exactly one worker.
		if par.Metrics.SourceTuples != serial.Metrics.SourceTuples {
			t.Errorf("%s: parallel SourceTuples %d != serial %d",
				alg, par.Metrics.SourceTuples, serial.Metrics.SourceTuples)
		}
	}
}

func sameSet(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	as := append([]int32(nil), a...)
	bs := append([]int32(nil), b...)
	sort.Slice(as, func(i, j int) bool { return as[i] < as[j] })
	sort.Slice(bs, func(i, j int) bool { return bs[i] < bs[j] })
	return reflect.DeepEqual(as, bs)
}

// TestParallelismIgnoredWhenIneligible: CTC and single-source queries run
// the serial engine bit-for-bit no matter what Parallelism asks for.
func TestParallelismIgnoredWhenIneligible(t *testing.T) {
	_, db := randomDAG(t, 2002, 120, 3, 20)
	for _, q := range []Query{{}, {Sources: []int32{7}}} {
		serial, err := Run(db, BTC, q, Config{BufferPages: 8})
		if err != nil {
			t.Fatal(err)
		}
		par, err := Run(db, BTC, q, Config{BufferPages: 8, Parallelism: 8})
		if err != nil {
			t.Fatal(err)
		}
		if !metricsEqualModuloTime(serial.Metrics, par.Metrics) {
			t.Errorf("query %v: Parallelism changed an ineligible run's metrics:\nserial   %+v\nparallel %+v",
				q, serial.Metrics, par.Metrics)
		}
	}
}

// metricsEqualModuloTime compares two metric records byte-for-byte except
// the wall-clock fields, which legitimately vary run to run.
func metricsEqualModuloTime(a, b Metrics) bool {
	a.RestructureTime, b.RestructureTime = 0, 0
	a.ComputeTime, b.ComputeTime = 0, 0
	return a == b
}

// TestParallelTempFilesReleased: every worker's temporary files are
// reclaimed when the parallel run returns.
func TestParallelTempFilesReleased(t *testing.T) {
	_, db := randomDAG(t, 2003, 200, 4, 25)
	baseFiles := db.disk.NumFiles()
	if _, err := Run(db, BTC, Query{Sources: graphgen.SourceSet(200, 10, 1)},
		Config{BufferPages: 8, Parallelism: 4}); err != nil {
		t.Fatal(err)
	}
	for id := baseFiles; id < db.disk.NumFiles(); id++ {
		if n := db.disk.NumPages(fileID(id)); n != 0 {
			t.Fatalf("temp file %d still holds %d pages", id, n)
		}
	}
}

// TestConcurrentStatsByteIdentical is the striping contract of this PR,
// meant for -race: a flood of concurrent queries (including parallel
// multi-source ones) must produce metric records byte-identical to their
// solo-run references — striping, sealing and zero-copy views may not
// perturb a single counter.
func TestConcurrentStatsByteIdentical(t *testing.T) {
	_, db := randomDAG(t, 2004, 300, 4, 30)
	shapes := []Request{
		{Alg: BTC, Query: Query{Sources: graphgen.SourceSet(300, 4, 1)}, Cfg: Config{BufferPages: 6}},
		{Alg: SPN, Query: Query{Sources: graphgen.SourceSet(300, 3, 2)}, Cfg: Config{BufferPages: 8}},
		{Alg: SRCH, Query: Query{Sources: graphgen.SourceSet(300, 2, 3)}, Cfg: Config{BufferPages: 5}},
		{Alg: BTC, Query: Query{Sources: graphgen.SourceSet(300, 6, 4)}, Cfg: Config{BufferPages: 6, Parallelism: 3}},
		{Alg: HYB, Query: Query{}, Cfg: Config{BufferPages: 10, ILIMIT: 0.25}},
	}
	want := make([]Metrics, len(shapes))
	for i, sh := range shapes {
		res, err := Run(db, sh.Alg, sh.Query, sh.Cfg)
		if err != nil {
			t.Fatalf("solo %s: %v", sh.Alg, err)
		}
		want[i] = res.Metrics
	}
	const copies = 4
	var reqs []Request
	for c := 0; c < copies; c++ {
		reqs = append(reqs, shapes...)
	}
	resps := RunConcurrent(db, reqs)
	for i, r := range resps {
		ref := want[i%len(shapes)]
		if r.Err != nil {
			t.Fatalf("request %d: %v", i, r.Err)
		}
		if !metricsEqualModuloTime(r.Result.Metrics, ref) {
			t.Errorf("request %d (%s): concurrent metrics differ from solo:\nconcurrent %+v\nsolo       %+v",
				i, reqs[i].Alg, r.Result.Metrics, ref)
		}
	}
}

// BenchmarkConcurrentScaling measures batch throughput as the goroutine
// count grows over one shared database. With striped, sealed storage the
// queries share no mutable state, so throughput should scale with cores
// (the pre-striping global mutex kept this flat). Run with
// -cpu matching the host and compare ns/op across the goroutine counts.
func BenchmarkConcurrentScaling(b *testing.B) {
	arcs, err := graphgen.Generate(graphgen.Params{Nodes: 400, OutDegree: 4, Locality: 30, Seed: 42})
	if err != nil {
		b.Fatal(err)
	}
	db := NewDatabase(400, arcs)
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("goroutines=%d", workers), func(b *testing.B) {
			// Each iteration runs `workers` identical queries concurrently
			// and is charged for all of them, so ns/op divided by workers is
			// the per-query latency; if throughput scales, ns/op stays ~flat
			// as workers grow.
			reqs := make([]Request, workers)
			for i := range reqs {
				reqs[i] = Request{
					Alg:   BTC,
					Query: Query{Sources: graphgen.SourceSet(400, 4, int64(i))},
					Cfg:   Config{BufferPages: 8},
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for _, r := range RunConcurrent(db, reqs) {
					if r.Err != nil {
						b.Fatal(r.Err)
					}
				}
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*workers), "ns/query")
		})
	}
}
