package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"tcstudy/internal/graph"
	"tcstudy/internal/graphgen"
)

// Property tests over the whole engine, driven by testing/quick. Each
// property builds a random database and checks a cross-algorithm or
// cross-configuration invariant end to end.

func quickDAG(rng *rand.Rand) (int, []graph.Arc) {
	n := rng.Intn(120) + 10
	f := rng.Intn(5) + 1
	l := rng.Intn(n-2) + 2
	arcs, _ := graphgen.Generate(graphgen.Params{
		Nodes: n, OutDegree: f, Locality: l, Seed: rng.Int63(),
	})
	return n, arcs
}

// Property: every algorithm pair agrees on every source's successor count.
func TestPropertyAlgorithmsAgree(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n, arcs := quickDAG(rng)
		db := NewDatabase(n, arcs)
		sources := graphgen.SourceSet(n, rng.Intn(4)+1, seed)
		algs := Algorithms()
		a, b := algs[rng.Intn(len(algs))], algs[rng.Intn(len(algs))]
		cfg := Config{BufferPages: rng.Intn(10) + 4, ILIMIT: float64(rng.Intn(4)) * 0.1}
		ra, err := Run(db, a, Query{Sources: sources}, cfg)
		if err != nil {
			return false
		}
		rb, err := Run(db, b, Query{Sources: sources}, cfg)
		if err != nil {
			return false
		}
		for _, s := range sources {
			sa := map[int32]bool{}
			for _, v := range ra.Successors[s] {
				sa[v] = true
			}
			if len(sa) != len(rb.Successors[s]) {
				return false
			}
			for _, v := range rb.Successors[s] {
				if !sa[v] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}

// Property: page I/O is deterministic — identical runs produce identical
// metric records regardless of what ran in between.
func TestPropertyDeterministicMetrics(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n, arcs := quickDAG(rng)
		db := NewDatabase(n, arcs)
		alg := Algorithms()[rng.Intn(len(Algorithms()))]
		cfg := Config{BufferPages: rng.Intn(8) + 4, ILIMIT: 0.2}
		q := Query{Sources: graphgen.SourceSet(n, 2, seed)}
		a, err := Run(db, alg, q, cfg)
		if err != nil {
			return false
		}
		// Interleave an unrelated run.
		if _, err := Run(db, BTC, Query{}, Config{BufferPages: 5}); err != nil {
			return false
		}
		b, err := Run(db, alg, q, cfg)
		if err != nil {
			return false
		}
		return a.Metrics.TotalIO() == b.Metrics.TotalIO() &&
			a.Metrics.TuplesGenerated == b.Metrics.TuplesGenerated &&
			a.Metrics.ListUnions == b.Metrics.ListUnions &&
			a.Metrics.ArcsMarked == b.Metrics.ArcsMarked
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

// Property: the answer never depends on the buffer pool size or the
// replacement policies — only the cost does.
func TestPropertyAnswerIndependentOfBuffering(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n, arcs := quickDAG(rng)
		db := NewDatabase(n, arcs)
		q := Query{Sources: graphgen.SourceSet(n, 3, seed)}
		ref, err := Run(db, BTC, q, Config{BufferPages: 64})
		if err != nil {
			return false
		}
		cfg := Config{
			BufferPages: rng.Intn(8) + 4,
			PagePolicy:  []string{"lru", "mru", "fifo", "clock", "random"}[rng.Intn(5)],
			ListPolicy:  []string{"smallest", "largest", "lru", "random"}[rng.Intn(4)],
		}
		small, err := Run(db, BTC, q, cfg)
		if err != nil {
			return false
		}
		for s, want := range ref.Successors {
			if len(small.Successors[s]) != len(want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}

// Property: a subset of sources yields a subset of the answer, with
// matching per-source sets (monotonicity of selections).
func TestPropertySelectionMonotone(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n, arcs := quickDAG(rng)
		db := NewDatabase(n, arcs)
		big := graphgen.SourceSet(n, 6, seed)
		small := big[:3]
		rb, err := Run(db, BTC, Query{Sources: big}, Config{BufferPages: 8})
		if err != nil {
			return false
		}
		rs, err := Run(db, BTC, Query{Sources: small}, Config{BufferPages: 8})
		if err != nil {
			return false
		}
		for _, s := range small {
			if len(rs.Successors[s]) != len(rb.Successors[s]) {
				return false
			}
		}
		// And the small query can only touch a smaller magic graph.
		return rs.Metrics.MagicNodes <= rb.Metrics.MagicNodes
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}

// Property: union of single-source answers equals the multi-source answer
// (queries decompose).
func TestPropertyQueryDecomposition(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n, arcs := quickDAG(rng)
		db := NewDatabase(n, arcs)
		sources := graphgen.SourceSet(n, 3, seed)
		multi, err := Run(db, SRCH, Query{Sources: sources}, Config{BufferPages: 8})
		if err != nil {
			return false
		}
		for _, s := range sources {
			single, err := Run(db, SRCH, Query{Sources: []int32{s}}, Config{BufferPages: 8})
			if err != nil {
				return false
			}
			if len(single.Successors[s]) != len(multi.Successors[s]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

// Property: the closure answer of the whole engine equals the reference
// bitset closure, for a random algorithm (full closure).
func TestPropertyFullClosureReference(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n, arcs := quickDAG(rng)
		g := graph.New(n, arcs)
		succ, err := g.Closure()
		if err != nil {
			return false
		}
		db := NewDatabase(n, arcs)
		alg := Algorithms()[rng.Intn(len(Algorithms()))]
		res, err := Run(db, alg, Query{}, Config{BufferPages: 8, ILIMIT: 0.2})
		if err != nil {
			return false
		}
		for v := int32(1); v <= int32(n); v++ {
			if len(res.Successors[v]) != succ[v].Count() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}
