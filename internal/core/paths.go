package core

import (
	"fmt"
	"math"
	"sort"

	"tcstudy/internal/buffer"
	"tcstudy/internal/slist"
)

// Generalized transitive closure: path aggregates over the same paged
// framework. The paper's companion work — Dar's thesis, its reference [7],
// "Augmenting Databases with Generalized Transitive Closure" — extends
// reachability to path problems; this file implements the unit-weight
// aggregates on top of the study's storage engine:
//
//	MinHops    shortest path length in arcs
//	MaxHops    longest path length (critical path on a DAG)
//	PathCount  number of distinct paths (saturating)
//
// The computation mirrors BTC — reverse topological expansion with the
// immediate successor optimization — but with two necessary departures,
// both documented in DESIGN.md: the marking optimization must stay off
// (a transitively redundant arc is redundant for reachability, not for
// path aggregation), and successor entries carry an aggregate value that
// can be *updated* by later unions, so each node's list is accumulated in
// memory during its own expansion and written once complete, rather than
// expanded in place.

// PathAggregate selects a generalized-closure aggregate.
type PathAggregate string

// The supported aggregates. MinWeight and MaxWeight require a weighted
// database (NewDatabaseWeighted); the others treat every arc as one hop.
const (
	MinHops   PathAggregate = "minhops"
	MaxHops   PathAggregate = "maxhops"
	PathCount PathAggregate = "pathcount"
	MinWeight PathAggregate = "minweight"
	MaxWeight PathAggregate = "maxweight"
)

// weightedAgg reports whether the aggregate consults arc weights.
func weightedAgg(agg PathAggregate) bool {
	return agg == MinWeight || agg == MaxWeight
}

// PathResult is the outcome of a generalized closure computation: for each
// requested source, the aggregate value per reachable node.
type PathResult struct {
	Metrics Metrics
	Values  map[int32]map[int32]int64
}

// pathCountCap saturates path counts; dense DAGs have exponentially many
// paths.
const pathCountCap = math.MaxInt64 / 4

// RunPaths executes a generalized closure query.
func RunPaths(db *Database, agg PathAggregate, q Query, cfg Config) (*PathResult, error) {
	switch agg {
	case MinHops, MaxHops, PathCount:
	case MinWeight, MaxWeight:
		if !db.Weighted() {
			return nil, fmt.Errorf("core: aggregate %q needs a weighted database (NewDatabaseWeighted)", agg)
		}
	default:
		return nil, fmt.Errorf("core: unknown path aggregate %q", agg)
	}
	cfg = cfg.withDefaults()
	res := &PathResult{}
	runner := func(e *engine) error { return e.runPathAgg(agg, res) }
	met, err := runEngine(db, q, cfg, runner)
	if err != nil {
		return nil, err
	}
	res.Metrics = *met
	return res, nil
}

// runEngine is a narrow harness used by the generalized-closure entry
// point: it validates the configuration, builds a fresh pool, runs fn and
// returns the collected metrics.
func runEngine(db *Database, q Query, cfg Config, fn func(*engine) error) (*Metrics, error) {
	if cfg.BufferPages < 4 {
		return nil, fmt.Errorf("core: buffer pool must have at least 4 pages, got %d", cfg.BufferPages)
	}
	pagePol, err := newPagePolicy(cfg)
	if err != nil {
		return nil, err
	}
	listPol, err := slist.NewListPolicy(cfg.ListPolicy)
	if err != nil {
		return nil, err
	}
	for _, s := range q.Sources {
		if s < 1 || s > int32(db.n) {
			return nil, fmt.Errorf("core: source node %d outside 1..%d", s, db.n)
		}
	}
	db.disk.ResetStats()
	tracker := newTempTracker(db.disk)
	defer tracker.release()
	e := &engine{
		db:         db,
		cfg:        cfg,
		pool:       buffer.New(tracker, cfg.BufferPages, pagePol),
		q:          q,
		listPolicy: listPol,
	}
	if err := fn(e); err != nil {
		return nil, err
	}
	if e.store != nil {
		e.met.Store = e.store.Stats()
	}
	return &e.met, nil
}

// runPathAgg performs the two phases of a generalized closure.
func (e *engine) runPathAgg(agg PathAggregate, out *PathResult) error {
	e.met.Algorithm = Algorithm("paths-" + string(agg))
	weighted := weightedAgg(agg)
	e.needWeights = weighted
	var adj [][]int32
	if err := e.timedPhase(true, func() error {
		var err error
		adj, err = e.discover()
		if err != nil {
			return err
		}
		if weighted {
			return e.buildWeightedLists(adj)
		}
		return e.buildLists(adj)
	}); err != nil {
		return err
	}

	// Aggregate lists live beside the immediate-successor lists: entry
	// pairs (node, value), written once per node after its expansion.
	aggStore := slist.NewStore(e.pool, "aggregate-lists", e.db.n+1, e.listPolicy)
	if e.cfg.DisableClustering {
		aggStore.SetClustering(false)
	}

	if err := e.timedPhase(false, func() error {
		acc := make(map[int32]int64)
		var flat []int32
		var it slist.Iterator // reused across the hot loop
		for i := len(e.order) - 1; i >= 0; i-- {
			v := e.order[i]
			for k := range acc {
				delete(acc, k)
			}
			// Immediate successors contribute the single-arc path.
			children, weights, err := e.readChildrenPairs(v, weighted)
			if err != nil {
				return err
			}
			for ci, c := range children {
				w := int64(1)
				if weighted {
					w = int64(weights[ci])
				}
				e.met.ArcsConsidered++
				e.met.ListUnions++
				e.met.noteUnmarked(e.levels[v] - e.levels[c])
				combineArc(agg, acc, c, w)
				// Union with the child's aggregate list.
				it.Reset(aggStore, c)
				for {
					u, ok := it.Next()
					if !ok {
						break
					}
					val, ok := it.Next()
					if !ok {
						it.Close()
						return fmt.Errorf("core: malformed aggregate list for node %d", c)
					}
					e.met.SuccessorsFetched += 2
					e.met.TuplesGenerated++
					combinePath(agg, acc, u, int64(val), w)
				}
				it.Close()
				if err := it.Err(); err != nil {
					return err
				}
			}
			// Write the completed list: pairs in ascending node order for
			// determinism.
			flat = flat[:0]
			keys := make([]int32, 0, len(acc))
			for u := range acc {
				keys = append(keys, u)
			}
			sort.Slice(keys, func(a, b int) bool { return keys[a] < keys[b] })
			for _, u := range keys {
				flat = append(flat, u, clamp32(acc[u]))
				e.met.DistinctTuples++
			}
			if err := aggStore.AppendAll(v, flat); err != nil {
				return err
			}
		}
		// Write the requested lists out.
		if e.q.IsFull() {
			return e.pool.FlushFile(aggStore.File())
		}
		for _, s := range e.q.Sources {
			e.met.SourceTuples += int64(aggStore.Len(s) / 2)
			if err := aggStore.FlushList(s); err != nil {
				return err
			}
		}
		aggStore.DiscardAll()
		return nil
	}); err != nil {
		return err
	}

	// Extract the answer after measurement.
	out.Values = make(map[int32]map[int32]int64)
	nodes := e.q.Sources
	if e.q.IsFull() {
		nodes = e.order
	}
	for _, s := range nodes {
		pairs, err := aggStore.ReadAll(s)
		if err != nil {
			return err
		}
		m := make(map[int32]int64, len(pairs)/2)
		for i := 0; i+1 < len(pairs); i += 2 {
			m[pairs[i]] = int64(pairs[i+1])
		}
		out.Values[s] = m
	}
	if e.q.IsFull() {
		e.met.SourceTuples = e.met.DistinctTuples
	}
	return nil
}

// readChildrenPairs fetches node v's immediate successors from its list:
// flat entries in the unweighted layout, (child, weight) pairs in the
// weighted one.
func (e *engine) readChildrenPairs(v int32, weighted bool) ([]int32, []int32, error) {
	k := e.childCount[v]
	children := make([]int32, 0, k)
	var weights []int32
	if weighted {
		weights = make([]int32, 0, k)
	}
	it := e.store.NewIterator(v)
	for int32(len(children)) < k {
		c, ok := it.Next()
		if !ok {
			break
		}
		e.met.SuccessorsFetched++
		children = append(children, c)
		if weighted {
			w, ok := it.Next()
			if !ok {
				it.Close()
				return nil, nil, fmt.Errorf("core: malformed weighted list for node %d", v)
			}
			e.met.SuccessorsFetched++
			weights = append(weights, w)
		}
	}
	it.Close()
	return children, weights, it.Err()
}

// combineArc folds the direct arc v -> c (of weight w, which is 1 for the
// hop aggregates) into the accumulator.
func combineArc(agg PathAggregate, acc map[int32]int64, c int32, w int64) {
	switch agg {
	case MinHops, MinWeight:
		if d, ok := acc[c]; !ok || d > w {
			acc[c] = w
		}
	case MaxHops, MaxWeight:
		if d, ok := acc[c]; !ok || d < w {
			acc[c] = w
		}
	case PathCount:
		acc[c] = satAdd(acc[c], 1)
	}
}

// combinePath folds a path v -> c ~> u (child c's aggregate val for u,
// extended by the arc v -> c of weight w) into the accumulator.
func combinePath(agg PathAggregate, acc map[int32]int64, u int32, val, w int64) {
	switch agg {
	case MinHops, MinWeight:
		cand := val + w
		if d, ok := acc[u]; !ok || d > cand {
			acc[u] = cand
		}
	case MaxHops, MaxWeight:
		cand := val + w
		if d, ok := acc[u]; !ok || d < cand {
			acc[u] = cand
		}
	case PathCount:
		acc[u] = satAdd(acc[u], val)
	}
}

// clamp32 saturates an aggregate value into the stored 32-bit entry.
func clamp32(v int64) int32 {
	if v > math.MaxInt32 {
		return math.MaxInt32
	}
	if v < math.MinInt32 {
		return math.MinInt32
	}
	return int32(v)
}

func satAdd(a, b int64) int64 {
	s := a + b
	if s > pathCountCap || s < 0 {
		return pathCountCap
	}
	return s
}
