package core

import (
	"encoding/binary"
	"hash/crc64"
)

// fpTable is the CRC-64 polynomial used for dataset fingerprints. ECMA
// matches the widespread crc64 tooling; the choice only has to be stable
// across processes, not cryptographic.
var fpTable = crc64.MakeTable(crc64.ECMA)

// Fingerprint returns a stable CRC-64 digest of the stored graph: the
// node count followed by every arc of the base relation in clustered
// order. Two databases built from the same input (the same snapshot
// files, or the same generator parameters) fingerprint identically, which
// is what lets a routing tier refuse to mix replicas serving different
// graphs. Arc weights do not participate — reachability answers depend
// only on the arc structure. The value is computed once — the base
// relation is immutable after construction — and the scan is not charged
// to queries (Arcs resets the I/O counters, like all
// database-construction work).
func (db *Database) Fingerprint() (uint64, error) {
	db.fpOnce.Do(func() {
		arcs, err := db.Arcs()
		if err != nil {
			db.fpErr = err
			return
		}
		buf := make([]byte, 8, 8+8*len(arcs))
		binary.LittleEndian.PutUint64(buf, uint64(db.n))
		for _, a := range arcs {
			buf = binary.LittleEndian.AppendUint32(buf, uint32(a.From))
			buf = binary.LittleEndian.AppendUint32(buf, uint32(a.To))
		}
		db.fp = crc64.Checksum(buf, fpTable)
	})
	return db.fp, db.fpErr
}
