// Package core implements the paper's uniform two-phase framework for
// transitive closure computation (Section 4) and the seven algorithm
// implementations it studies: BTC, HYB, BJ, SRCH, SPN, JKB and JKB2
// (Section 4.1). All algorithms share the restructuring phase — the input
// relation is walked node by node, the (magic) subgraph is topologically
// sorted, and successor lists are laid out on disk in processing order —
// and differ only in the computation phase that expands the lists.
//
// Every cost metric the paper reports is collected: page I/O split by
// phase (the primary metric), buffer hit ratio, tuples generated with and
// without duplicates, successor/tuple I/O, list unions, marking counts and
// unmarked-arc locality, and selection efficiency (Sections 6 and 7).
package core

import (
	"time"

	"tcstudy/internal/buffer"
	"tcstudy/internal/slist"
)

// PhaseIO is the page traffic attributed to one execution phase.
type PhaseIO struct {
	Reads  int64
	Writes int64
}

// Total returns reads plus writes.
func (p PhaseIO) Total() int64 { return p.Reads + p.Writes }

// Metrics is the full measurement record of one query execution.
type Metrics struct {
	Algorithm Algorithm

	// Page I/O, the paper's primary cost metric (Section 6.1), split into
	// the restructuring (preprocessing) and computation (expansion) phases.
	Restructure PhaseIO
	Compute     PhaseIO

	// Buffer pool behaviour during the computation phase only, matching
	// Figure 13's definition of hit ratio ("the percentage of successor
	// list page requests during the computation phase that were satisfied
	// from the buffer pool"). For SRCH, which has no computation phase,
	// the whole run is reported.
	ComputeBuffer buffer.Stats

	// Logical work counters (Sections 6.3.2–6.3.3 and 7).
	TuplesGenerated   int64 // successor insertions attempted, incl. duplicates
	Duplicates        int64 // insertions rejected by duplicate elimination
	DistinctTuples    int64 // entries materialized in lists/trees (tc)
	SourceTuples      int64 // entries belonging to source-node answers (stc)
	SuccessorsFetched int64 // successor entries read from lists ("tuple I/O")
	ListUnions        int64 // successor list/tree unions performed
	ArcsConsidered    int64 // arcs examined during expansion
	ArcsMarked        int64 // arcs skipped by the marking optimization

	// Locality of the arcs whose unions were actually performed
	// (Figure 12: average locality of unmarked arcs).
	unmarkedLocSum   int64
	unmarkedLocCount int64

	// Magic-graph characterization, computed during the restructuring DFS
	// at no extra I/O (Theorem 2: the rectangle model falls out of the
	// same traversal). Zero for the algorithms that skip restructuring
	// (SRCH, Seminaive, Warren).
	MagicNodes int64
	MagicArcs  int64
	MagicH     float64 // rectangle-model height of the magic graph
	MagicW     float64 // rectangle-model width of the magic graph

	// Storage engine events (page splits and list moves, Section 5.1).
	Store slist.Stats

	// Wall-clock CPU time per phase (Table 3's user-time analogue).
	RestructureTime time.Duration
	ComputeTime     time.Duration
}

// TotalIO returns the total page I/O of the run.
func (m *Metrics) TotalIO() int64 { return m.Restructure.Total() + m.Compute.Total() }

// MarkingPct returns the percentage of considered arcs that the marking
// optimization eliminated (Figure 11).
func (m *Metrics) MarkingPct() float64 {
	if m.ArcsConsidered == 0 {
		return 0
	}
	return 100 * float64(m.ArcsMarked) / float64(m.ArcsConsidered)
}

// SelectionEfficiency returns stc/tc: the fraction of materialized tuples
// that belong to the expanded successor lists of the query's source nodes
// (Section 6.3.2). SRCH achieves the optimum of 1.
func (m *Metrics) SelectionEfficiency() float64 {
	if m.DistinctTuples == 0 {
		return 0
	}
	return float64(m.SourceTuples) / float64(m.DistinctTuples)
}

// AvgUnmarkedLocality returns the mean arc locality (level difference)
// over the arcs whose unions were performed (Figure 12).
func (m *Metrics) AvgUnmarkedLocality() float64 {
	if m.unmarkedLocCount == 0 {
		return 0
	}
	return float64(m.unmarkedLocSum) / float64(m.unmarkedLocCount)
}

// EstimatedIOTime converts page I/O to time at the paper's calibrated 20 ms
// per I/O (Table 3).
func (m *Metrics) EstimatedIOTime() time.Duration {
	return time.Duration(m.TotalIO()) * 20 * time.Millisecond
}

func (m *Metrics) noteUnmarked(locality int32) {
	m.unmarkedLocSum += int64(locality)
	m.unmarkedLocCount++
}

// phaseSplit snapshots the pool's counters so a phase's traffic can be
// attributed by difference. I/O is counted at the pool, not the shared
// disk, so concurrent queries cannot pollute each other's accounting.
type phaseSplit struct {
	buf buffer.Stats
}

func snapshot(pool *buffer.Pool) phaseSplit {
	return phaseSplit{buf: pool.Stats()}
}

func (s phaseSplit) delta(pool *buffer.Pool) (PhaseIO, buffer.Stats) {
	b := pool.Stats().Sub(s.buf)
	return PhaseIO{Reads: b.Reads, Writes: b.Writes}, b
}
