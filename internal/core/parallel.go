package core

// Intra-query source parallelism. A multi-source PTC query's sources are
// partitioned into contiguous slices, and each slice runs as an
// independent sub-query — the full serial two-phase engine with its own
// buffer pool and its own temporary files — on its own goroutine. The
// answers are disjoint by construction (each source's successor set is
// produced by exactly one worker), so merging is a union; the metric
// records are summed, which makes the parallel record honest about the
// extra total work (every worker restructures its own magic subgraph).
//
// This is deliberately scatter-gather, not a shared-state parallel
// algorithm: the paper's engine stays byte-for-byte sequential inside each
// worker, which is what keeps per-worker accounting identical to a solo
// run of the same sub-query.

import "tcstudy/internal/obsv"

// parallelEligible reports whether the query and configuration ask for
// source partitioning: an explicit Parallelism of at least 2 and a PTC
// query with at least two sources to split. CTC (empty source set) always
// runs serially. BITM is excluded: the bit-matrix kernel computes the full
// closure of the condensed core once regardless of the source set —
// partitioning sources would duplicate the whole matrix per worker — and
// instead spends the same Parallelism budget inside the kernel's per-pivot
// row updates.
func parallelEligible(alg Algorithm, q Query, cfg Config) bool {
	return alg != BITM && cfg.Parallelism > 1 && len(q.Sources) > 1
}

// partitionSources splits sources into at most workers contiguous,
// non-empty slices of near-equal size.
func partitionSources(sources []int32, workers int) [][]int32 {
	if workers > len(sources) {
		workers = len(sources)
	}
	parts := make([][]int32, 0, workers)
	for w := 0; w < workers; w++ {
		lo := w * len(sources) / workers
		hi := (w + 1) * len(sources) / workers
		parts = append(parts, sources[lo:hi])
	}
	return parts
}

// runParallelSources fans a validated multi-source query out over a
// bounded worker group and merges the sub-results. The first worker error
// wins; the remaining workers still run to completion (they own private
// pools and temp files, so there is nothing to cancel — each releases its
// storage on return).
func runParallelSources(db *Database, alg Algorithm, q Query, cfg Config) (*Result, error) {
	parts := partitionSources(q.Sources, cfg.Parallelism)
	subCfg := cfg
	subCfg.Parallelism = 0 // workers are serial; no recursive fan-out
	subCfg.Trace = nil     // each worker gets its own span below

	results := make([]*Result, len(parts))
	errs := make([]error, len(parts))
	done := make(chan int, len(parts))
	for w := range parts {
		wcfg := subCfg
		if cfg.Trace != nil {
			// Worker spans are opened here, in partition order, so the
			// trace lists workers deterministically; each worker's engine
			// then hangs its own restructure/compute spans underneath.
			wcfg.Trace = cfg.Trace.Child("worker",
				obsv.KV("worker", w), obsv.KV("sources", len(parts[w])))
		}
		go func(w int, wcfg Config) {
			results[w], errs[w] = runOwned(db, alg, Query{Sources: parts[w]}, wcfg)
			wcfg.Trace.Finish()
			done <- w
		}(w, wcfg)
	}
	for range parts {
		<-done
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	merged := results[0]
	for _, r := range results[1:] {
		mergeResult(merged, r)
	}
	return merged, nil
}

// mergeResult folds src into dst: successor sets union (keys are disjoint
// across workers), additive counters sum, per-phase times take the
// maximum (workers ran concurrently), and the rectangle-model dimensions
// take the maximum (each worker saw its own magic subgraph).
func mergeResult(dst, src *Result) {
	if dst.Successors == nil && len(src.Successors) > 0 {
		dst.Successors = make(map[int32][]int32, len(src.Successors))
	}
	for s, succ := range src.Successors {
		dst.Successors[s] = succ
	}
	dm, sm := &dst.Metrics, &src.Metrics

	dm.Restructure.Reads += sm.Restructure.Reads
	dm.Restructure.Writes += sm.Restructure.Writes
	dm.Compute.Reads += sm.Compute.Reads
	dm.Compute.Writes += sm.Compute.Writes

	dm.ComputeBuffer.Hits += sm.ComputeBuffer.Hits
	dm.ComputeBuffer.Misses += sm.ComputeBuffer.Misses
	dm.ComputeBuffer.Evicts += sm.ComputeBuffer.Evicts
	dm.ComputeBuffer.Reads += sm.ComputeBuffer.Reads
	dm.ComputeBuffer.Writes += sm.ComputeBuffer.Writes

	dm.TuplesGenerated += sm.TuplesGenerated
	dm.Duplicates += sm.Duplicates
	dm.DistinctTuples += sm.DistinctTuples
	dm.SourceTuples += sm.SourceTuples
	dm.SuccessorsFetched += sm.SuccessorsFetched
	dm.ListUnions += sm.ListUnions
	dm.ArcsConsidered += sm.ArcsConsidered
	dm.ArcsMarked += sm.ArcsMarked
	dm.unmarkedLocSum += sm.unmarkedLocSum
	dm.unmarkedLocCount += sm.unmarkedLocCount

	dm.MagicNodes += sm.MagicNodes
	dm.MagicArcs += sm.MagicArcs
	if sm.MagicH > dm.MagicH {
		dm.MagicH = sm.MagicH
	}
	if sm.MagicW > dm.MagicW {
		dm.MagicW = sm.MagicW
	}

	dm.Store.Splits += sm.Store.Splits
	dm.Store.ListsMoved += sm.Store.ListsMoved
	dm.Store.EntriesMoved += sm.Store.EntriesMoved
	dm.Store.Overflows += sm.Store.Overflows

	if sm.RestructureTime > dm.RestructureTime {
		dm.RestructureTime = sm.RestructureTime
	}
	if sm.ComputeTime > dm.ComputeTime {
		dm.ComputeTime = sm.ComputeTime
	}
}
