package core

import (
	"testing"

	"tcstudy/internal/graph"
	"tcstudy/internal/graphgen"
)

// Behavioural tests specific to the related-work baselines (Seminaive and
// Blocked Warren); their answer correctness is covered by the shared
// cross-validation tests, which iterate Algorithms().

func TestSeminaiveSelectionEfficiencyIsOne(t *testing.T) {
	_, db := randomDAG(t, 301, 200, 4, 30)
	sources := graphgen.SourceSet(200, 5, 1)
	res, err := Run(db, SEMI, Query{Sources: sources}, Config{BufferPages: 8})
	if err != nil {
		t.Fatal(err)
	}
	if eff := res.Metrics.SelectionEfficiency(); eff != 1 {
		t.Fatalf("Seminaive selection efficiency = %v, want 1 (it only derives source rows)", eff)
	}
}

func TestSeminaiveIterationsTrackDepth(t *testing.T) {
	// One join pass per iteration; iterations are bounded by the longest
	// path from any source (level of the deepest source).
	g, db := randomDAG(t, 302, 150, 3, 20)
	levels, err := g.Levels()
	if err != nil {
		t.Fatal(err)
	}
	var maxLevel int32
	for v := 1; v <= g.N(); v++ {
		if levels[v] > maxLevel {
			maxLevel = levels[v]
		}
	}
	res, err := Run(db, SEMI, Query{}, Config{BufferPages: 8})
	if err != nil {
		t.Fatal(err)
	}
	// Iterations = path-length rounds; the last produces an empty delta.
	if res.Metrics.ListUnions > int64(maxLevel) {
		t.Fatalf("join passes = %d exceed max level %d", res.Metrics.ListUnions, maxLevel)
	}
	if res.Metrics.ListUnions < 2 {
		t.Fatalf("suspiciously few join passes: %d", res.Metrics.ListUnions)
	}
}

func TestSeminaiveLosesFullClosureToBTC(t *testing.T) {
	// The related-work claim at test scale: iterating and re-sorting the
	// accumulated result costs Seminaive far more I/O than BTC.
	_, db := randomDAG(t, 303, 300, 4, 40)
	rb, err := Run(db, BTC, Query{}, Config{BufferPages: 10})
	if err != nil {
		t.Fatal(err)
	}
	rs, err := Run(db, SEMI, Query{}, Config{BufferPages: 10})
	if err != nil {
		t.Fatal(err)
	}
	if rs.Metrics.TotalIO() < 2*rb.Metrics.TotalIO() {
		t.Fatalf("Seminaive CTC I/O %d not clearly above BTC's %d",
			rs.Metrics.TotalIO(), rb.Metrics.TotalIO())
	}
}

func TestWarrenPaysFullClosureOnSelections(t *testing.T) {
	// The matrix covers all rows regardless of the query: once it exceeds
	// the pool, a 2-source selection must cost on the order of the full
	// closure (only the final flush differs).
	_, db := randomDAG(t, 304, 1200, 4, 100)
	full, err := Run(db, WARREN, Query{}, Config{BufferPages: 6})
	if err != nil {
		t.Fatal(err)
	}
	sel, err := Run(db, WARREN, Query{Sources: []int32{3, 9}}, Config{BufferPages: 6})
	if err != nil {
		t.Fatal(err)
	}
	if sel.Metrics.TotalIO() < full.Metrics.TotalIO()/2 {
		t.Fatalf("Warren selection I/O %d unexpectedly below full-closure I/O %d",
			sel.Metrics.TotalIO(), full.Metrics.TotalIO())
	}
	// Contrast: SRCH exploits the selectivity by orders of magnitude.
	srch, err := Run(db, SRCH, Query{Sources: []int32{3, 9}}, Config{BufferPages: 6})
	if err != nil {
		t.Fatal(err)
	}
	if srch.Metrics.TotalIO()*4 > sel.Metrics.TotalIO() {
		t.Fatalf("SRCH I/O %d not clearly below Warren's %d on a selective query",
			srch.Metrics.TotalIO(), sel.Metrics.TotalIO())
	}
}

func TestWarrenRejectsOversizedGraphs(t *testing.T) {
	// One matrix row must fit a page: at most PageSize*8-8 nodes.
	n := 17000
	db := NewDatabase(n, []graph.Arc{{From: 1, To: 2}})
	if _, err := Run(db, WARREN, Query{}, Config{BufferPages: 8}); err == nil {
		t.Fatal("oversized matrix accepted")
	}
	// The graph algorithms handle the same input fine.
	if _, err := Run(db, BTC, Query{}, Config{BufferPages: 8}); err != nil {
		t.Fatalf("BTC on 17000 nodes: %v", err)
	}
}

func TestWarrenBlockedAcrossPoolSizes(t *testing.T) {
	// Different pool sizes change the blocking but never the answer.
	g, db := randomDAG(t, 305, 250, 4, 50)
	want := refSuccessors(t, g, nil)
	for _, m := range []int{4, 6, 12, 40} {
		res, err := Run(db, WARREN, Query{}, Config{BufferPages: m})
		if err != nil {
			t.Fatalf("M=%d: %v", m, err)
		}
		checkAnswer(t, WARREN, res.Successors, want, true, g)
	}
}

func TestBaselinesOnEmptyGraph(t *testing.T) {
	db := NewDatabase(4, nil)
	for _, alg := range []Algorithm{SEMI, WARREN} {
		res, err := Run(db, alg, Query{Sources: []int32{1}}, Config{BufferPages: 8})
		if err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
		if len(res.Successors[1]) != 0 {
			t.Fatalf("%s produced successors on empty graph", alg)
		}
	}
}
