package core

import (
	"errors"
	"sort"

	"tcstudy/internal/buffer"
	"tcstudy/internal/pagedisk"
)

// runHYB executes the Hybrid algorithm (Sections 3.2 and 4.1): successor
// lists are expanded a block at a time. The next ILIMIT·M pages worth of
// lists (in reverse topological order) form the diagonal block, whose pages
// are fixed in the buffer pool. Each off-diagonal child list brought into
// memory is unioned with every diagonal list that has it as an unmarked
// child — the payoff of blocking — and only then are the diagonal-diagonal
// unions performed, in reverse topological order. Processing the
// off-diagonal part first costs marking opportunities, one of the three
// reasons the paper gives for blocking's poor showing (Section 6.2).
// When the pool runs short of frames the block is dynamically shrunk by
// releasing the most recently pinned lists ("dynamic reblocking").
//
// With ILIMIT = 0 no blocking is used and the algorithm is identical to
// BTC, the configuration the paper found best (Figure 6).
func (e *engine) runHYB() error {
	if err := e.timedPhase(true, func() error {
		adj, err := e.discover()
		if err != nil {
			return err
		}
		return e.buildLists(adj)
	}); err != nil {
		return err
	}
	if err := e.timedPhase(false, func() error {
		if e.cfg.ILIMIT <= 0 {
			exp := newExpander(e.db.n)
			for i := len(e.order) - 1; i >= 0; i-- {
				if err := e.expandNode(e.order[i], exp); err != nil {
					return err
				}
			}
			return e.finalizeFlat()
		}
		if err := e.expandBlocked(); err != nil {
			return err
		}
		return e.finalizeFlat()
	}); err != nil {
		return err
	}
	return e.collectFlatAnswer()
}

// diagonalPin tracks the pinned pages of one diagonal list.
type diagonalPin struct {
	node    int32
	handles []buffer.Handle
}

const hybWorkFrames = 4 // frames kept free for iterators, appends and splits

func (e *engine) expandBlocked() error {
	m := e.pool.Size()
	budget := int(e.cfg.ILIMIT * float64(m))
	if budget < 1 {
		budget = 1
	}
	if budget > m-hybWorkFrames {
		budget = m - hybWorkFrames
	}
	if budget < 1 {
		budget = 1
	}

	rev := make([]int32, len(e.order))
	for i, v := range e.order {
		rev[len(e.order)-1-i] = v
	}

	inBatch := make([]bool, e.db.n+1)
	ptr := 0
	for ptr < len(rev) {
		// --- Form the diagonal block -----------------------------------
		var pins []diagonalPin
		distinct := map[pagedisk.PageID]bool{}
		var batch []int32
		for ptr < len(rev) && len(distinct) < budget {
			v := rev[ptr]
			handles, err := e.store.PinList(v)
			if errors.Is(err, buffer.ErrNoFrames) {
				break
			}
			if err != nil {
				return err
			}
			pins = append(pins, diagonalPin{node: v, handles: handles})
			for i := range handles {
				_, pg := handles[i].Page()
				distinct[pg] = true
			}
			batch = append(batch, v)
			inBatch[v] = true
			ptr++
		}
		if len(batch) == 0 {
			// Not even one list could be pinned: expand the next node the
			// plain BTC way and move on.
			exp := newExpander(e.db.n)
			if err := e.expandNode(rev[ptr], exp); err != nil {
				return err
			}
			ptr++
			continue
		}

		// reblock releases the most recently pinned diagonal list when the
		// pool runs short of work frames (dynamic reblocking). The list
		// stays in the batch; it simply loses its residency guarantee.
		reblock := func() {
			for e.pool.PinnedFrames() > m-hybWorkFrames && len(pins) > 0 {
				last := pins[len(pins)-1]
				pins = pins[:len(pins)-1]
				e.store.UnpinAll(last.handles)
			}
		}
		reblock()

		// --- Load each diagonal list's children ------------------------
		exps := make(map[int32]*expander, len(batch))
		children := make(map[int32][]int32, len(batch))
		for _, v := range batch {
			exp := newExpander(e.db.n)
			ch, err := e.loadChildren(v, exp)
			if err != nil {
				return err
			}
			exps[v] = exp
			children[v] = ch
		}

		// --- Phase A: off-diagonal unions, grouped by child ------------
		// One fetch of an off-diagonal list serves every diagonal list
		// that needs it (Figure 2).
		requests := map[int32][]int32{}
		var offDiag []int32
		for _, v := range batch {
			for _, j := range children[v] {
				if inBatch[j] {
					continue
				}
				if len(requests[j]) == 0 {
					offDiag = append(offDiag, j)
				}
				requests[j] = append(requests[j], v)
			}
		}
		sort.Slice(offDiag, func(a, b int) bool {
			return e.topoPos[offDiag[a]] < e.topoPos[offDiag[b]]
		})
		for _, j := range offDiag {
			for _, v := range requests[j] {
				e.met.ArcsConsidered++
				exp := exps[v]
				if !e.cfg.DisableMarking && exp.marked.Has(j) {
					e.met.ArcsMarked++
					continue
				}
				reblock()
				if err := e.unionInto(v, j, exp); err != nil {
					return err
				}
			}
		}

		// --- Phase B: diagonal-diagonal unions, reverse topological ----
		for _, v := range batch {
			exp := exps[v]
			for _, j := range children[v] {
				if !inBatch[j] {
					continue
				}
				e.met.ArcsConsidered++
				if !e.cfg.DisableMarking && exp.marked.Has(j) {
					e.met.ArcsMarked++
					continue
				}
				reblock()
				if err := e.unionInto(v, j, exp); err != nil {
					return err
				}
			}
		}

		// --- Release the block ------------------------------------------
		for _, p := range pins {
			e.store.UnpinAll(p.handles)
		}
		for _, v := range batch {
			inBatch[v] = false
		}
	}
	return nil
}
