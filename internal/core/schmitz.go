package core

import (
	"sort"

	"tcstudy/internal/bitset"
	"tcstudy/internal/slist"
)

// Schmitz's algorithm ([23] in the paper; one of the graph-based
// algorithms Ioannidis et al. [12] compared BTC against): a single Tarjan
// depth-first search computes strongly connected components and closes
// them as they pop, so cyclic graphs are handled natively — no separate
// condensation pass. Components pop in reverse topological order of the
// condensation, so each popped component can union the *complete* closed
// successor sets of its external children, with the marking optimization
// applying at the component level.
//
// One successor list is kept per component, holding the component's
// closed successor set S'(C): every node reachable from C's members,
// including the members themselves when the component is cyclic (a node
// in a cycle reaches itself). The answer for node x is S'(comp(x)).
//
// The paper restricts its own study to DAGs (where Schmitz degenerates to
// a BTC-like pass over singleton components, and [12] found BTC better);
// this implementation exists so the library computes cyclic closures
// end-to-end with full I/O accounting, and so the condensation-pipeline
// alternative can be measured against it.
func (e *engine) runSchmitz() error {
	n := e.db.n

	// ---- Phase 1 (restructuring): Tarjan DFS over relation probes ------
	var (
		adj     = make([][]int32, n+1)
		index   = make([]int32, n+1) // 0 = unvisited
		lowlink = make([]int32, n+1)
		onStack = make([]bool, n+1)
		comp    = make([]int32, n+1)
		cyclic  []bool // per component: more than one member or self-loop
		members [][]int32
		tstack  []int32
		next    int32 = 1
	)
	e.isSource = make([]bool, n+1)
	for _, s := range e.q.Sources {
		e.isSource[s] = true
	}

	var popOrder []int32 // component ids in pop (reverse topological) order

	if err := e.timedPhase(true, func() error {
		probe := func(v int32) error {
			var children []int32
			_, err := e.probeRel(v, func(c int32) bool {
				children = append(children, c)
				return true
			})
			adj[v] = children
			return err
		}
		type frame struct {
			node  int32
			child int
		}
		var stack []frame
		visit := func(root int32) error {
			if index[root] != 0 {
				return nil
			}
			index[root], lowlink[root] = next, next
			next++
			if err := probe(root); err != nil {
				return err
			}
			tstack = append(tstack, root)
			onStack[root] = true
			stack = append(stack, frame{node: root})
			for len(stack) > 0 {
				f := &stack[len(stack)-1]
				v := f.node
				if f.child < len(adj[v]) {
					c := adj[v][f.child]
					f.child++
					if index[c] == 0 {
						index[c], lowlink[c] = next, next
						next++
						if err := probe(c); err != nil {
							return err
						}
						tstack = append(tstack, c)
						onStack[c] = true
						stack = append(stack, frame{node: c})
					} else if onStack[c] && index[c] < lowlink[v] {
						lowlink[v] = index[c]
					}
					continue
				}
				if lowlink[v] == index[v] {
					// Pop a complete component.
					id := int32(len(members))
					var ms []int32
					for {
						w := tstack[len(tstack)-1]
						tstack = tstack[:len(tstack)-1]
						onStack[w] = false
						comp[w] = id
						ms = append(ms, w)
						if w == v {
							break
						}
					}
					selfLoop := false
					if len(ms) == 1 {
						for _, c := range adj[ms[0]] {
							if c == ms[0] {
								selfLoop = true
							}
						}
					}
					members = append(members, ms)
					cyclic = append(cyclic, len(ms) > 1 || selfLoop)
					popOrder = append(popOrder, id)
				}
				stack = stack[:len(stack)-1]
				if len(stack) > 0 {
					p := stack[len(stack)-1].node
					if lowlink[v] < lowlink[p] {
						lowlink[p] = lowlink[v]
					}
				}
			}
			return nil
		}
		var roots []int32
		if e.q.IsFull() {
			roots = make([]int32, n)
			for i := range roots {
				roots[i] = int32(i + 1)
			}
		} else {
			roots = e.q.Sources
		}
		for _, r := range roots {
			if err := visit(r); err != nil {
				return err
			}
		}
		e.met.MagicNodes = 0
		for _, ms := range members {
			e.met.MagicNodes += int64(len(ms))
		}
		return nil
	}); err != nil {
		return err
	}

	// ---- Phase 2 (computation): close components in pop order ----------
	store := slist.NewStore(e.pool, "component-lists", len(members)+1, e.listPolicy)
	if e.cfg.DisableClustering {
		store.SetClustering(false)
	}
	e.store = store

	if err := e.timedPhase(false, func() error {
		member := bitset.New(n + 1)   // nodes in the list being built
		childSet := bitset.New(n + 1) // external child nodes of the component
		marked := bitset.New(n + 1)
		var appendBuf []int32

		for _, id := range popOrder {
			member.Clear()
			childSet.Clear()
			marked.Clear()
			appendBuf = appendBuf[:0]
			add := func(u int32) {
				if !member.TestAndAdd(u) {
					appendBuf = append(appendBuf, u)
				} else {
					e.met.Duplicates++
				}
			}
			// A cyclic component's members reach themselves.
			if cyclic[id] {
				for _, m := range members[id] {
					e.met.TuplesGenerated++
					add(m)
				}
			}
			// Distinct external children, ordered by component pop index
			// descending (nearest components first) then node id, so
			// marking mirrors BTC's topological child order.
			var external []int32
			seen := bitset.New(n + 1)
			for _, m := range members[id] {
				for _, c := range adj[m] {
					if comp[c] == id {
						continue // internal arc
					}
					if !seen.TestAndAdd(c) {
						external = append(external, c)
						childSet.Add(c)
					}
				}
			}
			sort.Slice(external, func(a, b int) bool {
				ca, cb := comp[external[a]], comp[external[b]]
				if ca != cb {
					return ca > cb
				}
				return external[a] < external[b]
			})
			var it slist.Iterator // reused across the child unions
			for _, c := range external {
				e.met.ArcsConsidered++
				if !e.cfg.DisableMarking && marked.Has(c) {
					e.met.ArcsMarked++
					continue
				}
				e.met.ListUnions++
				e.met.TuplesGenerated++
				add(c)
				it.Reset(store, comp[c])
				for {
					u, ok := it.Next()
					if !ok {
						break
					}
					e.met.SuccessorsFetched++
					e.met.TuplesGenerated++
					if childSet.Has(u) {
						marked.Add(u)
					}
					add(u)
				}
				it.Close()
				if err := it.Err(); err != nil {
					return err
				}
			}
			if err := store.AppendAll(id, appendBuf); err != nil {
				return err
			}
			e.met.DistinctTuples += int64(len(appendBuf)) * int64(len(members[id]))
		}

		// Write the result out.
		if e.q.IsFull() {
			e.met.SourceTuples = e.met.DistinctTuples
			return e.pool.FlushFile(store.File())
		}
		flushed := map[int32]bool{}
		for _, s := range e.q.Sources {
			e.met.SourceTuples += int64(store.Len(comp[s]))
			if !flushed[comp[s]] {
				flushed[comp[s]] = true
				if err := store.FlushList(comp[s]); err != nil {
					return err
				}
			}
		}
		store.DiscardAll()
		return nil
	}); err != nil {
		return err
	}

	// ---- Answer extraction (post-measurement) --------------------------
	e.answer = make(map[int32][]int32)
	fill := func(x int32) error {
		vals, err := store.ReadAll(comp[x])
		if err != nil {
			return err
		}
		e.answer[x] = vals
		return nil
	}
	if e.q.IsFull() {
		for _, ms := range members {
			for _, m := range ms {
				if err := fill(m); err != nil {
					return err
				}
			}
		}
		return nil
	}
	for _, s := range e.q.Sources {
		if err := fill(s); err != nil {
			return err
		}
	}
	return nil
}
