package core

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files with current output")

// goldenRecord renders every deterministic field of a metric record.
// Wall-clock times are excluded; everything else — page I/O by phase,
// buffer behaviour, tuple and duplicate counts, magic-graph shape,
// storage-engine events — is pinned exactly.
func goldenRecord(m Metrics) string {
	var b strings.Builder
	fmt.Fprintf(&b, "[%s]\n", m.Algorithm)
	fmt.Fprintf(&b, "restructure_io   reads=%d writes=%d\n", m.Restructure.Reads, m.Restructure.Writes)
	fmt.Fprintf(&b, "compute_io       reads=%d writes=%d\n", m.Compute.Reads, m.Compute.Writes)
	fmt.Fprintf(&b, "compute_buffer   hits=%d misses=%d evicts=%d\n",
		m.ComputeBuffer.Hits, m.ComputeBuffer.Misses, m.ComputeBuffer.Evicts)
	fmt.Fprintf(&b, "tuples           generated=%d duplicates=%d distinct=%d source=%d\n",
		m.TuplesGenerated, m.Duplicates, m.DistinctTuples, m.SourceTuples)
	fmt.Fprintf(&b, "expansion        fetched=%d unions=%d considered=%d marked=%d\n",
		m.SuccessorsFetched, m.ListUnions, m.ArcsConsidered, m.ArcsMarked)
	fmt.Fprintf(&b, "magic            nodes=%d arcs=%d h=%.4f w=%.4f\n",
		m.MagicNodes, m.MagicArcs, m.MagicH, m.MagicW)
	fmt.Fprintf(&b, "store            splits=%d moved=%d entries=%d overflows=%d\n",
		m.Store.Splits, m.Store.ListsMoved, m.Store.EntriesMoved, m.Store.Overflows)
	fmt.Fprintf(&b, "derived          marking_pct=%.4f selection=%.4f unmarked_loc=%.4f\n",
		m.MarkingPct(), m.SelectionEfficiency(), m.AvgUnmarkedLocality())
	return b.String()
}

// TestGoldenMetrics pins the complete metric record of every algorithm on
// a fixed graph and configuration. Any behaviour change in the engine —
// an extra page read, a different split decision, a changed duplicate
// count — shows up as a golden diff and must be a deliberate choice
// (regenerate with `go test ./internal/core -run Golden -update`).
func TestGoldenMetrics(t *testing.T) {
	const seed, n, f, l = 424242, 120, 4, 30
	_, db := randomDAG(t, seed, n, f, l)
	cfg := Config{BufferPages: 10, ILIMIT: 0.4}

	var b strings.Builder
	fmt.Fprintf(&b, "# Metric record per algorithm: seed=%d n=%d f=%d l=%d m=%d ilimit=%g\n",
		seed, n, f, l, cfg.BufferPages, cfg.ILIMIT)
	fmt.Fprintf(&b, "# Regenerate: go test ./internal/core -run Golden -update\n\n")
	for _, alg := range Algorithms() {
		res, err := Run(db, alg, Query{}, cfg)
		if err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
		b.WriteString(goldenRecord(res.Metrics))
		b.WriteString("\n")

		// The record itself must be deterministic run to run, or the
		// golden file would flap.
		again, err := Run(db, alg, Query{}, cfg)
		if err != nil {
			t.Fatalf("%s rerun: %v", alg, err)
		}
		if goldenRecord(again.Metrics) != goldenRecord(res.Metrics) {
			t.Fatalf("%s: metric record differs between identical runs", alg)
		}
	}
	got := b.String()

	path := filepath.Join("testdata", "metrics.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", path)
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("metric records diverge from %s.\nIf the change is intentional, regenerate with -update.\n%s",
			path, diffLines(string(want), got))
	}
}

// diffLines reports the first few differing lines between two texts.
func diffLines(want, got string) string {
	w, g := strings.Split(want, "\n"), strings.Split(got, "\n")
	var b strings.Builder
	shown := 0
	for i := 0; i < len(w) || i < len(g); i++ {
		var wl, gl string
		if i < len(w) {
			wl = w[i]
		}
		if i < len(g) {
			gl = g[i]
		}
		if wl != gl {
			fmt.Fprintf(&b, "line %d:\n  golden: %s\n  got:    %s\n", i+1, wl, gl)
			if shown++; shown == 8 {
				b.WriteString("  ...\n")
				break
			}
		}
	}
	return b.String()
}
