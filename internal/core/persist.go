package core

import (
	"encoding/gob"
	"fmt"
	"os"
	"path/filepath"

	"tcstudy/internal/pagedisk"
	"tcstudy/internal/relation"
)

// Database snapshots: a built database — the graph relation, its dual
// representation, and both catalogs — can be written to a directory and
// reopened later, skipping relation construction. Queries over a restored
// database behave identically: the cost model counts simulated page I/O,
// which is unaffected by where the snapshot came from.

const manifestName = "manifest.gob"

// manifest is the serialized database catalog.
type manifest struct {
	Version int
	N       int
	Rel     relation.Meta
	Inv     relation.Meta
	// Weighted databases also record the weight column's file.
	HasWeights bool
	WeightFile pagedisk.FileID
}

const manifestVersion = 1

// SaveDatabase writes the database into dir (created if needed). The
// database must be backed by the plain simulated disk: snapshotting a
// fault-wrapped store would capture whatever the wrapper let through.
func SaveDatabase(db *Database, dir string) error {
	disk, ok := db.disk.(*pagedisk.Disk)
	if !ok {
		return fmt.Errorf("core: cannot snapshot a database on a %T store; swap the plain disk back first", db.disk)
	}
	if err := disk.Save(dir); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, manifestName))
	if err != nil {
		return err
	}
	defer f.Close()
	m := manifest{
		Version: manifestVersion,
		N:       db.n,
		Rel:     db.rel.Meta(),
		Inv:     db.inv.Meta(),
	}
	if db.wcol != nil {
		m.HasWeights = true
		m.WeightFile = db.wcol.File()
	}
	if err := gob.NewEncoder(f).Encode(m); err != nil {
		return err
	}
	return f.Sync()
}

// OpenDatabase restores a database previously written by SaveDatabase.
func OpenDatabase(dir string) (*Database, error) {
	f, err := os.Open(filepath.Join(dir, manifestName))
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var m manifest
	if err := gob.NewDecoder(f).Decode(&m); err != nil {
		return nil, fmt.Errorf("core: corrupt manifest in %s: %w", dir, err)
	}
	if m.Version != manifestVersion {
		return nil, fmt.Errorf("core: snapshot version %d, this build reads %d", m.Version, manifestVersion)
	}
	disk, err := pagedisk.Load(dir)
	if err != nil {
		return nil, err
	}
	if int(m.Rel.File) >= disk.NumFiles() || int(m.Inv.File) >= disk.NumFiles() {
		return nil, fmt.Errorf("core: manifest references missing snapshot files")
	}
	db := &Database{
		disk: disk,
		rel:  relation.Restore(m.Rel),
		inv:  relation.Restore(m.Inv),
		n:    m.N,
	}
	if m.HasWeights {
		if int(m.WeightFile) >= disk.NumFiles() {
			return nil, fmt.Errorf("core: manifest references missing weight column")
		}
		db.wcol = relation.RestoreWeightColumn(m.WeightFile)
	}
	// The B+-trees are derived structures; rebuild them from the restored
	// catalogs rather than persisting them.
	db.buildIndexes()
	// As in NewDatabase: the base files are immutable once the indexes
	// exist, so seal them for lock-free, copy-free concurrent reads.
	disk.SealAll()
	return db, nil
}
