package core

import "tcstudy/internal/bitset"

// The Spanning Tree algorithm (Sections 3.5 and 4.1): successor lists carry
// structure — each parent (internal node) is stored once, negated, followed
// by a list of its children. When the tree of child j is unioned into the
// tree of node v, a group whose parent's subtree is already known to be
// present in S_v is skipped: its successors are not fetched and no
// duplicates are generated for them. As the paper observes (Section 6.2),
// the skipped *successor fetches* rarely translate into skipped *page*
// reads, because the group's page is almost always touched anyway; our
// encoding makes that explicit — skipped entries are scanned past on
// already-resident pages and simply not counted as tuple I/O.

// treeExpander augments the flat expander with the set of nodes whose
// complete subtree is known to be present in the list under expansion.
type treeExpander struct {
	*expander
	complete *bitset.Set
	touched  []int32 // nodes reached by the current union, completed after it
}

func newTreeExpander(n int) *treeExpander {
	return &treeExpander{expander: newExpander(n), complete: bitset.New(n + 1)}
}

func (x *treeExpander) reset() {
	x.expander.reset()
	x.complete.Clear()
}

// loadTreeChildren primes the expander from the initial tree of v, which is
// the single group (-v, children...).
func (e *engine) loadTreeChildren(v int32, exp *treeExpander) ([]int32, error) {
	exp.reset()
	k := e.childCount[v]
	children := exp.childBuf[:0]
	it := &exp.it
	it.Reset(e.store, v)
	for int32(len(children)) < k {
		c, ok := it.Next()
		if !ok {
			break
		}
		e.met.SuccessorsFetched++
		if c < 0 { // the root marker -v
			continue
		}
		children = append(children, c)
		exp.member.Add(c)
		exp.childSet.Add(c)
	}
	it.Close()
	exp.childBuf = children
	return children, it.Err()
}

// unionTree merges the successor tree of child j into the tree of v.
func (e *engine) unionTree(v, j int32, exp *treeExpander) error {
	e.met.ListUnions++
	e.met.noteUnmarked(e.levels[v] - e.levels[j])
	exp.appendBuf = exp.appendBuf[:0]
	exp.touched = exp.touched[:0]

	it := &exp.it
	it.Reset(e.store, j)
	skipping := false   // inside a group whose parent's subtree is present
	groupOpen := false  // a group marker was emitted to appendBuf
	var curParent int32 // parent of the group being read
	for {
		raw, ok := it.Next()
		if !ok {
			break
		}
		if raw < 0 {
			// New group. Skip it if the parent's subtree was already
			// present before this union began (the paper's "no need to
			// read any successors of j in S_g" saving).
			curParent = -raw
			skipping = exp.complete.Has(curParent)
			if !skipping {
				exp.touched = append(exp.touched, curParent)
			}
			groupOpen = false
			continue
		}
		if skipping {
			continue // scanned past, not fetched: no tuple I/O counted
		}
		e.met.SuccessorsFetched++
		e.met.TuplesGenerated++
		u := raw
		if exp.childSet.Has(u) {
			exp.marked.Add(u)
		}
		exp.touched = append(exp.touched, u)
		if exp.member.TestAndAdd(u) {
			e.met.Duplicates++
			continue
		}
		e.posCount[v]++
		if !groupOpen {
			exp.appendBuf = append(exp.appendBuf, -curParent)
			groupOpen = true
		}
		exp.appendBuf = append(exp.appendBuf, u)
	}
	it.Close()
	if err := it.Err(); err != nil {
		return err
	}
	if err := e.store.AppendAll(v, exp.appendBuf); err != nil {
		return err
	}
	// Every node the union visited (and every node it skipped over) now
	// has its full subtree in S_v. Completion is recorded only after the
	// union so that groups within S_j itself were not wrongly skipped.
	for _, u := range exp.touched {
		exp.complete.Add(u)
	}
	exp.complete.Add(j)
	return nil
}

// expandTreeNode expands node v's successor tree.
func (e *engine) expandTreeNode(v int32, exp *treeExpander) error {
	children, err := e.loadTreeChildren(v, exp)
	if err != nil {
		return err
	}
	e.posCount[v] += int32(len(children))
	for _, j := range children {
		e.met.ArcsConsidered++
		// A child whose subtree arrived through an earlier union is
		// exactly a marked (redundant) arc.
		if !e.cfg.DisableMarking && exp.complete.Has(j) {
			e.met.ArcsMarked++
			continue
		}
		if err := e.unionTree(v, j, exp); err != nil {
			return err
		}
	}
	return nil
}

// runSPN executes the Spanning Tree algorithm.
func (e *engine) runSPN() error {
	if err := e.timedPhase(true, func() error {
		adj, err := e.discover()
		if err != nil {
			return err
		}
		return e.buildListsMode(adj, true)
	}); err != nil {
		return err
	}
	e.posCount = make([]int32, e.db.n+1)
	if err := e.timedPhase(false, func() error {
		exp := newTreeExpander(e.db.n)
		for i := len(e.order) - 1; i >= 0; i-- {
			if err := e.expandTreeNode(e.order[i], exp); err != nil {
				return err
			}
		}
		return e.finalizeTree()
	}); err != nil {
		return err
	}
	return e.collectTreeAnswer()
}

// finalizeTree mirrors finalizeFlat with tree-aware tuple accounting: the
// materialized result tuples are the positive entries; parent markers are
// the structural overhead that makes the trees larger than flat lists.
func (e *engine) finalizeTree() error {
	for _, v := range e.order {
		e.met.DistinctTuples += int64(e.posCount[v])
	}
	if e.q.IsFull() {
		e.met.SourceTuples = e.met.DistinctTuples
		return e.pool.FlushFile(e.store.File())
	}
	for _, s := range e.q.Sources {
		e.met.SourceTuples += int64(e.posCount[s])
		if err := e.store.FlushList(s); err != nil {
			return err
		}
	}
	e.store.DiscardAll()
	return nil
}

// collectTreeAnswer extracts successor sets from the stored trees: every
// node of the tree appears exactly once as a positive entry.
func (e *engine) collectTreeAnswer() error {
	e.answer = make(map[int32][]int32)
	var nodes []int32
	if e.q.IsFull() {
		nodes = e.order
	} else {
		nodes = e.q.Sources
	}
	for _, v := range nodes {
		raw, err := e.store.ReadAll(v)
		if err != nil {
			return err
		}
		succ := make([]int32, 0, len(raw))
		for _, u := range raw {
			if u > 0 {
				succ = append(succ, u)
			}
		}
		e.answer[v] = succ
	}
	return nil
}
