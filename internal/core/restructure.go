package core

import (
	"sort"

	"tcstudy/internal/slist"
)

// The restructuring phase (Section 4): starting from the query's source
// nodes (or every node for CTC), the relation is walked through its
// clustered index, the magic subgraph is identified, the nodes are
// topologically sorted, node levels (and with them the rectangle model,
// Theorem 2) are computed, and the tuples are converted into successor
// lists laid out in processing order. The I/O this performs — index probes
// into the relation plus successor-list page writes — is the phase's cost.

// probeRel reads node v's tuples through the configured access path: the
// paper's free in-memory sparse index by default, or the disk-resident
// B+-tree with its interior pages charged (Config.ChargeIndexIO).
func (e *engine) probeRel(v int32, fn func(int32) bool) (int, error) {
	if e.cfg.ChargeIndexIO {
		return e.db.rel.ProbeIndexed(e.pool, e.db.btree, v, fn)
	}
	return e.db.rel.Probe(e.pool, v, fn)
}

// probeInv is probeRel over the destination-clustered dual representation.
func (e *engine) probeInv(v int32, fn func(int32) bool) (int, error) {
	if e.cfg.ChargeIndexIO {
		return e.db.inv.ProbeIndexed(e.pool, e.db.invBtree, v, fn)
	}
	return e.db.inv.Probe(e.pool, v, fn)
}

// discover performs the DFS. It fills e.order (topological order of the
// magic graph), e.topoPos, e.levels and e.isSource, and returns the magic
// graph's adjacency (children per node; nil for nodes outside it).
func (e *engine) discover() ([][]int32, error) {
	n := e.db.n
	adj := make([][]int32, n+1)
	if e.needWeights {
		e.adjW = make([][]int32, n+1)
	}
	visited := make([]bool, n+1)
	e.levels = make([]int32, n+1)
	e.topoPos = make([]int32, n+1)
	for i := range e.topoPos {
		e.topoPos[i] = -1
	}
	e.isSource = make([]bool, n+1)
	for _, s := range e.q.Sources {
		e.isSource[s] = true
	}

	post := make([]int32, 0, n)
	type frame struct {
		node int32
		next int
	}
	var stack []frame

	probe := func(v int32) error {
		var children []int32
		if e.needWeights {
			var weights []int32
			_, err := e.db.rel.ProbeWeighted(e.pool, v, e.db.wcol, func(c, w int32) bool {
				children = append(children, c)
				weights = append(weights, w)
				return true
			})
			adj[v] = children
			e.adjW[v] = weights
			return err
		}
		_, err := e.probeRel(v, func(c int32) bool {
			children = append(children, c)
			return true
		})
		adj[v] = children
		return err
	}

	visit := func(root int32) error {
		if visited[root] {
			return nil
		}
		visited[root] = true
		if err := probe(root); err != nil {
			return err
		}
		stack = append(stack, frame{node: root})
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			if f.next < len(adj[f.node]) {
				c := adj[f.node][f.next]
				f.next++
				if !visited[c] {
					visited[c] = true
					if err := probe(c); err != nil {
						return err
					}
					stack = append(stack, frame{node: c})
				}
				continue
			}
			// Node finished: level is one more than the deepest child.
			var best int32
			for _, c := range adj[f.node] {
				if e.levels[c] > best {
					best = e.levels[c]
				}
			}
			e.levels[f.node] = best + 1
			post = append(post, f.node)
			stack = stack[:len(stack)-1]
		}
		return nil
	}

	var roots []int32
	if e.q.IsFull() {
		roots = make([]int32, n)
		for i := range roots {
			roots[i] = int32(i + 1)
		}
	} else {
		roots = e.q.Sources
	}
	for _, r := range roots {
		if err := visit(r); err != nil {
			return nil, err
		}
	}

	// Topological order is the reverse postorder.
	e.order = make([]int32, len(post))
	for i, v := range post {
		pos := int32(len(post) - 1 - i)
		e.order[pos] = v
		e.topoPos[v] = pos
	}

	// The rectangle model of the magic graph falls out of the traversal
	// for free (Theorem 2): H is the mean node level, W = |G_m| / H.
	var levelSum, arcs int64
	for _, v := range e.order {
		levelSum += int64(e.levels[v])
		arcs += int64(len(adj[v]))
	}
	e.met.MagicNodes = int64(len(e.order))
	e.met.MagicArcs = arcs
	if e.met.MagicNodes > 0 {
		e.met.MagicH = float64(levelSum) / float64(e.met.MagicNodes)
		if e.met.MagicH > 0 {
			e.met.MagicW = float64(arcs) / e.met.MagicH
		}
	}
	return adj, nil
}

// buildLists converts the adjacency into successor lists on disk. Lists are
// written in reverse topological order — the order the computation phase
// expands them — which gives the inter-list clustering of Section 4, and
// each node's children are sorted by topological position so the marking
// optimization achieves the transitive reduction (Section 3.1).
func (e *engine) buildLists(adj [][]int32) error { return e.buildListsMode(adj, false) }

// buildListsMode builds flat successor lists, or — for the spanning tree
// algorithm — initial successor trees: the node's children under a single
// group whose parent marker is the (negated) node itself (Section 4.1:
// "successor spanning trees are represented by storing each parent once,
// followed by a list of its children; parent nodes are distinguished by
// negating their values").
func (e *engine) buildListsMode(adj [][]int32, tree bool) error {
	e.store = slist.NewStore(e.pool, "successor-lists", e.db.n+1, e.listPolicy)
	if e.cfg.DisableClustering {
		e.store.SetClustering(false)
	}
	e.childCount = make([]int32, e.db.n+1)
	buf := make([]int32, 0, 64)
	for i := len(e.order) - 1; i >= 0; i-- {
		v := e.order[i]
		buf = buf[:0]
		if tree {
			buf = append(buf, -v)
		}
		buf = append(buf, adj[v]...)
		kids := buf
		if tree {
			kids = buf[1:]
		}
		sort.Slice(kids, func(a, b int) bool { return e.topoPos[kids[a]] < e.topoPos[kids[b]] })
		e.childCount[v] = int32(len(kids))
		if err := e.store.AppendAll(v, buf); err != nil {
			return err
		}
	}
	return nil
}

// buildWeightedLists lays out (child, weight) pair lists in reverse
// topological order for the weighted path aggregates. Children are sorted
// by topological position as in buildLists.
func (e *engine) buildWeightedLists(adj [][]int32) error {
	e.store = slist.NewStore(e.pool, "successor-lists", e.db.n+1, e.listPolicy)
	if e.cfg.DisableClustering {
		e.store.SetClustering(false)
	}
	e.childCount = make([]int32, e.db.n+1)
	type cw struct{ c, w int32 }
	var buf []cw
	var flat []int32
	for i := len(e.order) - 1; i >= 0; i-- {
		v := e.order[i]
		buf = buf[:0]
		for k, c := range adj[v] {
			buf = append(buf, cw{c: c, w: e.adjW[v][k]})
		}
		sort.Slice(buf, func(a, b int) bool { return e.topoPos[buf[a].c] < e.topoPos[buf[b].c] })
		e.childCount[v] = int32(len(buf))
		flat = flat[:0]
		for _, x := range buf {
			flat = append(flat, x.c, x.w)
		}
		if err := e.store.AppendAll(v, flat); err != nil {
			return err
		}
	}
	return nil
}

// singleParentReduce applies Jiang's single-parent optimization (Section
// 3.3): a non-source node of the magic graph with exactly one parent is
// reduced to a sink, its children adopted by the parent. Reductions are
// applied in topological order so chains of single-parent nodes collapse
// in one pass. The returned adjacency replaces the input.
func (e *engine) singleParentReduce(adj [][]int32) [][]int32 {
	n := e.db.n
	parents := make([]int32, n+1) // in-degree within the magic graph
	for _, v := range e.order {
		for _, c := range adj[v] {
			parents[c]++
		}
	}
	// soleParent keeps the last recorded parent; it is only consulted for
	// nodes whose in-degree is exactly 1, where it is exact.
	soleParent := make([]int32, n+1)
	for _, v := range e.order {
		for _, c := range adj[v] {
			soleParent[c] = v
		}
	}
	reduced := make([]bool, n+1)
	for _, v := range e.order { // topological order: parents before children
		if e.isSource[v] || parents[v] != 1 {
			continue
		}
		p := soleParent[v]
		if reduced[v] || p == 0 {
			continue
		}
		// Adopt v's children into p, then make v a sink. The adopted
		// children keep v as a second potential parent only on paper; the
		// arc (v, c) is deleted, so their in-degree is unchanged and the
		// sole parent becomes p.
		for _, c := range adj[v] {
			soleParent[c] = p
		}
		adj[p] = mergeAdopted(adj[p], adj[v])
		adj[v] = nil
		reduced[v] = true
	}
	return adj
}

// mergeAdopted appends the orphaned children to the parent's child list,
// dropping duplicates (the arc parent -> reduced stays: the reduced node
// is still a successor, now a sink).
func mergeAdopted(parent, adopted []int32) []int32 {
	have := make(map[int32]bool, len(parent))
	for _, c := range parent {
		have[c] = true
	}
	for _, c := range adopted {
		if !have[c] {
			have[c] = true
			parent = append(parent, c)
		}
	}
	return parent
}

// buildPredLists builds the immediate-predecessor lists of the magic graph
// needed by Compute_Tree (Section 3.6). Predecessors are appended in
// descending topological position so the nearest predecessors are
// processed first.
//
// With dual=false (JKB) only the source-clustered relation exists, so the
// magic graph's tuple pages are probed a second time and each arc is routed
// to its head's predecessor list — appends interleave across many lists,
// which is exactly the expensive pattern the paper observed for high
// out-degrees. With dual=true (JKB2) the destination-clustered inverse
// relation is probed once per magic node, appending each list in full
// (Section 4.1: roughly twice the restructuring cost of BTC).
func (e *engine) buildPredLists(dual bool) (*slist.Store, error) {
	preds := slist.NewStore(e.pool, "predecessor-lists", e.db.n+1, e.listPolicy)
	if e.cfg.DisableClustering {
		preds.SetClustering(false)
	}
	if dual {
		// One probe of the inverse relation per magic node, filtered to
		// magic-graph predecessors, appended in one run per list.
		var buf []int32
		for i := len(e.order) - 1; i >= 0; i-- {
			v := e.order[i]
			buf = buf[:0]
			_, err := e.probeInv(v, func(p int32) bool {
				if e.topoPos[p] >= 0 {
					buf = append(buf, p)
				}
				return true
			})
			if err != nil {
				return nil, err
			}
			sort.Slice(buf, func(a, b int) bool { return e.topoPos[buf[a]] > e.topoPos[buf[b]] })
			if err := preds.AppendAll(v, buf); err != nil {
				return nil, err
			}
		}
		return preds, nil
	}
	// Single-relation variant: re-probe each magic node's tuples in
	// reverse topological order and scatter the arcs to the heads'
	// predecessor lists.
	for i := len(e.order) - 1; i >= 0; i-- {
		v := e.order[i]
		var children []int32
		if _, err := e.probeRel(v, func(c int32) bool {
			children = append(children, c)
			return true
		}); err != nil {
			return nil, err
		}
		for _, c := range children {
			if e.topoPos[c] < 0 {
				continue
			}
			if err := preds.Append(c, v); err != nil {
				return nil, err
			}
		}
	}
	return preds, nil
}
