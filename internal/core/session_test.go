package core

import (
	"errors"
	"testing"

	"tcstudy/internal/graphgen"
	"tcstudy/internal/pagedisk"
)

func TestSessionWarmBufferReducesIO(t *testing.T) {
	_, db := randomDAG(t, 701, 300, 4, 50)
	s, err := NewSession(db, Config{BufferPages: 40})
	if err != nil {
		t.Fatal(err)
	}
	q := Query{Sources: []int32{5, 9, 20}}
	first, err := s.Run(SRCH, q)
	if err != nil {
		t.Fatal(err)
	}
	second, err := s.Run(SRCH, q)
	if err != nil {
		t.Fatal(err)
	}
	if second.Metrics.TotalIO() >= first.Metrics.TotalIO() {
		t.Fatalf("warm rerun I/O %d not below cold run %d",
			second.Metrics.TotalIO(), first.Metrics.TotalIO())
	}
	// And a fresh cold Run matches the first query's cost.
	cold, err := Run(db, SRCH, q, Config{BufferPages: 40})
	if err != nil {
		t.Fatal(err)
	}
	if cold.Metrics.TotalIO() != first.Metrics.TotalIO() {
		t.Fatalf("session first query I/O %d != cold run %d",
			first.Metrics.TotalIO(), cold.Metrics.TotalIO())
	}
}

func TestSessionAnswersMatchRun(t *testing.T) {
	g, db := randomDAG(t, 702, 150, 4, 30)
	sources := graphgen.SourceSet(150, 5, 3)
	want := refSuccessors(t, g, sources)
	s, err := NewSession(db, Config{BufferPages: 10})
	if err != nil {
		t.Fatal(err)
	}
	for _, alg := range Algorithms() {
		res, err := s.Run(alg, Query{Sources: sources})
		if err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
		checkAnswer(t, alg, res.Successors, want, false, g)
	}
	// Full closures also work mid-session.
	res, err := s.Run(BTC, Query{})
	if err != nil {
		t.Fatal(err)
	}
	checkAnswer(t, BTC, res.Successors, refSuccessors(t, g, nil), true, g)
}

func TestSessionReleasesTemporaryStorage(t *testing.T) {
	_, db := randomDAG(t, 703, 150, 4, 30)
	s, err := NewSession(db, Config{BufferPages: 10})
	if err != nil {
		t.Fatal(err)
	}
	base := db.disk.NumFiles()
	for i := 0; i < 4; i++ {
		if _, err := s.Run(BTC, Query{}); err != nil {
			t.Fatal(err)
		}
	}
	for id := base; id < db.disk.NumFiles(); id++ {
		if n := db.disk.NumPages(pagedisk.FileID(id)); n != 0 {
			t.Fatalf("session left %d pages in temp file %d", n, id)
		}
	}
}

func TestSessionRecoversFromStorageFault(t *testing.T) {
	g, db := randomDAG(t, 704, 150, 4, 30)
	disk := db.Store().(*pagedisk.Disk)
	s, err := NewSession(db, Config{BufferPages: 8})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(BTC, Query{}); err != nil {
		t.Fatal(err)
	}
	disk.FailAfter(10)
	if _, err := s.Run(BTC, Query{}); !errors.Is(err, pagedisk.ErrIOInjected) {
		t.Fatalf("injected failure not surfaced: %v", err)
	}
	disk.FailAfter(-1)
	if got := s.Faults(); got != 1 {
		t.Fatalf("session recorded %d faults, want 1", got)
	}
	// The same session keeps working after the fault: the failed run's
	// pins were dropped with the pool reset, so the very next query must
	// succeed and be correct.
	got, err := s.Run(BTC, Query{})
	if err != nil {
		t.Fatalf("session unusable after recovered fault: %v", err)
	}
	checkAnswer(t, BTC, got.Successors, refSuccessors(t, g, nil), true, g)
	// Recovery resets the pool, so the post-fault query runs cold: its
	// cost matches a fresh cold run exactly.
	cold, err := Run(db, BTC, Query{}, Config{BufferPages: 8})
	if err != nil {
		t.Fatal(err)
	}
	if got.Metrics.TotalIO() != cold.Metrics.TotalIO() {
		t.Fatalf("post-fault session I/O %d != cold run %d",
			got.Metrics.TotalIO(), cold.Metrics.TotalIO())
	}
	// Faults do not leak temporary storage.
	base := db.disk.NumFiles()
	disk.FailAfter(25)
	_, _ = s.Run(SPN, Query{})
	disk.FailAfter(-1)
	for id := base; id < db.disk.NumFiles(); id++ {
		if n := db.disk.NumPages(pagedisk.FileID(id)); n != 0 {
			t.Fatalf("recovered fault left %d pages in temp file %d", n, id)
		}
	}
	// Other query shapes keep working too.
	if _, err := s.Run(SRCH, Query{Sources: []int32{1}}); err != nil {
		t.Fatalf("session refused a later query: %v", err)
	}
}

func TestSessionValidation(t *testing.T) {
	_, db := randomDAG(t, 705, 50, 2, 10)
	if _, err := NewSession(db, Config{BufferPages: 2}); err == nil {
		t.Fatal("tiny pool accepted")
	}
	if _, err := NewSession(db, Config{BufferPages: 8, PagePolicy: "zzz"}); err == nil {
		t.Fatal("bad page policy accepted")
	}
	if _, err := NewSession(db, Config{BufferPages: 8, ListPolicy: "zzz"}); err == nil {
		t.Fatal("bad list policy accepted")
	}
	s, err := NewSession(db, Config{BufferPages: 8})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(Algorithm("nope"), Query{}); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
	if _, err := s.Run(BTC, Query{Sources: []int32{99}}); err == nil {
		t.Fatal("out-of-range source accepted")
	}
}
