package core

import (
	"fmt"
	"math/bits"

	"tcstudy/internal/bitmatrix"
	"tcstudy/internal/graph"
	"tcstudy/internal/obsv"
	"tcstudy/internal/relation"
)

// The dense-core bit-matrix strategy (ROADMAP item: the raw-speed lever).
//
// BITM condenses the stored graph into its DAG of strongly connected
// components, and when that condensation fits the internal/bitmatrix
// size/density threshold it closes the core with the in-memory
// word-parallel kernel — 64 reachability bits per uint64, cache-blocked
// Warren sweep, Floyd–Warshall column kernel under Config.Parallelism —
// and expands the answer back through SCC membership. Oversized or
// too-sparse condensations fall back to the engine's list-based
// algorithms: BTC on acyclic input, Schmitz (the cyclic-native algorithm)
// when the input has cycles, since BTC's restructuring cannot
// topologically sort a cyclic graph.
//
// The restructuring phase is the one relation scan that builds the
// condensation (charged through the buffer pool like every algorithm's
// restructuring); the computation phase is the kernel itself, which
// performs no page I/O at all — its logical work is reported through
// ListUnions (row ORs) and ArcsConsidered (set bits driving them), the
// same convention as the Blocked Warren baseline. Like the matrix family,
// the kernel always computes the full closure of the core, so a selection
// query costs as much as CTC (only the source rows are expanded).
//
// Unlike the source-partitioning algorithms, BITM consumes
// Config.Parallelism *inside* the kernel: the matrix is closed once and
// its per-pivot row updates are partitioned across the worker budget, so
// Run never scatter-gathers BITM queries over source slices.

// runBitMatrix executes the dense-core strategy end to end.
func (e *engine) runBitMatrix() error {
	n := e.db.n
	var (
		mat      *bitmatrix.Matrix
		fits     bool
		trivial  bool // every component is a single node: matrix rows are node ids
		cyclic   bool // a multi-node component or a self-loop exists
		comp     []int32
		members  [][]int32
		loopComp []bool // components containing a self-loop arc
	)
	if err := e.timedPhase(true, func() error {
		arcs := make([]graph.Arc, 0, e.db.rel.NumTuples())
		var selfLoops []int32
		var bad *relation.Tuple
		err := e.db.rel.Scan(e.pool, func(t relation.Tuple) bool {
			if t.Key < 1 || t.Key > int32(n) || t.Val < 1 || t.Val > int32(n) {
				bad = &t
				return false
			}
			if t.Key == t.Val {
				selfLoops = append(selfLoops, t.Key)
			}
			arcs = append(arcs, graph.Arc{From: t.Key, To: t.Val})
			return true
		})
		if err != nil {
			return err
		}
		if bad != nil {
			return fmt.Errorf("bitmatrix: relation tuple (%d,%d) outside node space 1..%d", bad.Key, bad.Val, n)
		}
		var k int
		comp, k = graph.SCC(n, arcs)
		trivial = k == n
		cyclic = !trivial || len(selfLoops) > 0
		// The condensation is the graph the kernel computes over; report
		// its shape where the list algorithms report their magic graph.
		e.met.MagicNodes = int64(k)

		if trivial {
			// The component DAG is the graph itself, so the matrix is built
			// over node ids directly (the relation's tuples are distinct, so
			// the tuple count is the arc count) and answers need no
			// component translation at all.
			e.met.MagicArcs = int64(len(arcs))
			fits = bitmatrix.Fits(k, len(arcs))
			if !fits {
				return nil
			}
			mat = bitmatrix.New(n + 1)
			for _, a := range arcs {
				mat.Set(int(a.From), int(a.To))
			}
			return nil
		}

		if k > bitmatrix.MaxNodes {
			// Too large for the kernel under any density; report the raw
			// inter-component arc count (parallel arcs between big
			// components may be counted more than once — deduplicating a
			// core this size is exactly the work we are declining).
			condArcs := int64(0)
			for _, a := range arcs {
				if comp[a.From] != comp[a.To] {
					condArcs++
				}
			}
			e.met.MagicArcs = condArcs
			return nil
		}
		// Components are numbered 1..K; allocate K+1 rows and leave row 0
		// empty so component ids index the matrix directly. The matrix
		// doubles as the deduplicator: its popcount is the distinct
		// inter-component arc count the density gate needs.
		mat = bitmatrix.New(k + 1)
		for _, a := range arcs {
			if cu, cv := comp[a.From], comp[a.To]; cu != cv {
				mat.Set(int(cu), int(cv))
			}
		}
		condArcs := int(mat.Count())
		e.met.MagicArcs = int64(condArcs)
		fits = bitmatrix.Fits(k, condArcs)
		if !fits {
			mat = nil
			return nil
		}
		members = make([][]int32, k+1)
		for v := int32(1); v <= int32(n); v++ {
			members[comp[v]] = append(members[comp[v]], v)
		}
		loopComp = make([]bool, k+1)
		for _, v := range selfLoops {
			loopComp[comp[v]] = true
		}
		return nil
	}); err != nil {
		return err
	}

	if !fits {
		// Out of the kernel's regime: hand the query to the list engine.
		// The scan above stays charged to restructuring — it is the honest
		// cost of deciding.
		if cyclic {
			return e.runSchmitz()
		}
		return e.runBTC()
	}

	if err := e.timedPhase(false, func() error {
		if e.phaseSpan != nil {
			sp := e.phaseSpan.Child("kernel",
				obsv.KV("rows", mat.N()-1), obsv.KV("workers", e.cfg.Parallelism))
			defer sp.Finish()
		}
		var st bitmatrix.Stats
		if e.cfg.Parallelism > 1 {
			// Spend the worker budget inside the Floyd–Warshall column
			// kernel; pays off on large cores.
			st = mat.Closure(e.cfg.Parallelism)
		} else if trivial {
			// The matrix is row-indexed by node id; Tarjan's component
			// numbering is a reverse-topological order of those nodes.
			order := make([]int, n)
			for v := 1; v <= n; v++ {
				order[comp[v]-1] = v
			}
			st = mat.ClosureDAG(order)
		} else {
			// Component ids are already reverse-topological: every
			// inter-component arc points to a smaller id.
			st = mat.ClosureDAG(nil)
		}
		e.met.ListUnions += st.RowUnions
		e.met.ArcsConsidered += st.BitsDriving
		return nil
	}); err != nil {
		return err
	}

	// Expand the source rows after measurement ends, exactly like the other
	// algorithms' answer materialization.
	e.answer = make(map[int32][]int32)
	if trivial {
		// Rows are node ids: each answer is the row's set bits, already in
		// ascending node order. A self-loop put its own bit in the row, so
		// v reaches v exactly when the input says so.
		for _, s := range e.sources() {
			row := mat.Row(int(s))
			count := 0
			for _, w := range row {
				count += bits.OnesCount64(w)
			}
			succ := make([]int32, 0, count)
			for wi, w := range row {
				base := int32(wi * 64)
				for w != 0 {
					succ = append(succ, base+int32(bits.TrailingZeros64(w)))
					w &= w - 1
				}
			}
			e.answer[s] = succ
			e.met.SourceTuples += int64(len(succ))
		}
	} else {
		// A node in a cyclic component reaches every member of its own
		// component, itself included (a multi-node component is a cycle; a
		// singleton is cyclic only via a self-loop, tracked in loopComp).
		// Walking original node ids in ascending order and bit-testing
		// their component produces each row already sorted and
		// duplicate-free, and every source in one component shares the same
		// expansion.
		expanded := make(map[int32][]int32)
		// Hoist each node's component word index and bit mask so the
		// per-row expansion test is two loads and a mask.
		wordIdx := make([]int32, n+1)
		mask := make([]uint64, n+1)
		for v := 1; v <= n; v++ {
			cv := comp[v]
			wordIdx[v] = cv >> 6
			mask[v] = 1 << (uint(cv) & 63)
		}
		for _, s := range e.sources() {
			cu := comp[s]
			succ, ok := expanded[cu]
			if !ok {
				row := mat.Row(int(cu))
				selfReach := len(members[cu]) > 1 || loopComp[cu]
				// Size the row exactly — members of every reachable
				// component, plus the source's own component when it is
				// cyclic — so the fill loop never regrows.
				count := 0
				if selfReach {
					count = len(members[cu])
				}
				for wi, w := range row {
					for w != 0 {
						cv := int32(wi*64 + bits.TrailingZeros64(w))
						count += len(members[cv])
						w &= w - 1
					}
				}
				succ = make([]int32, 0, count)
				for v := int32(1); v <= int32(n); v++ {
					if comp[v] == cu {
						if selfReach {
							succ = append(succ, v)
						}
					} else if row[wordIdx[v]]&mask[v] != 0 {
						succ = append(succ, v)
					}
				}
				expanded[cu] = succ
			}
			e.answer[s] = succ
			e.met.SourceTuples += int64(len(succ))
		}
	}
	// Whole-row computation generates no per-tuple traffic; as with
	// Warren, the materialized answer is the distinct-tuple count.
	e.met.DistinctTuples = e.met.SourceTuples
	return nil
}
