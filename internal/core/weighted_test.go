package core

import (
	"math/rand"
	"testing"

	"tcstudy/internal/graph"
	"tcstudy/internal/graphgen"
)

// weightOf derives a deterministic pseudo-random weight from the arc
// itself, so references and the engine agree without shared state.
func weightOf(a graph.Arc) int32 {
	x := uint32(a.From)*2654435761 + uint32(a.To)*40503
	return int32(x%97) + 1 // 1..97
}

// refWeighted computes reference weighted aggregates by DP over a
// topological order.
func refWeighted(t *testing.T, g *graph.Graph, agg PathAggregate) []map[int32]int64 {
	t.Helper()
	order, err := g.TopoSort()
	if err != nil {
		t.Fatal(err)
	}
	out := make([]map[int32]int64, g.N()+1)
	for i := len(order) - 1; i >= 0; i-- {
		v := order[i]
		acc := map[int32]int64{}
		for _, c := range g.Children(v) {
			w := int64(weightOf(graph.Arc{From: v, To: c}))
			combineArc(agg, acc, c, w)
			for u, val := range out[c] {
				combinePath(agg, acc, u, val, w)
			}
		}
		out[v] = acc
	}
	return out
}

func weightedDB(t *testing.T, seed int64, n, f, l int) (*graph.Graph, *Database) {
	t.Helper()
	arcs, err := graphgen.Generate(graphgen.Params{Nodes: n, OutDegree: f, Locality: l, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	g := graph.New(n, arcs)
	db, err := NewDatabaseWeighted(n, arcs, weightOf)
	if err != nil {
		t.Fatal(err)
	}
	return g, db
}

func TestWeightedAggregatesAgainstReference(t *testing.T) {
	for _, agg := range []PathAggregate{MinWeight, MaxWeight} {
		t.Run(string(agg), func(t *testing.T) {
			g, db := weightedDB(t, 811, 150, 4, 30)
			want := refWeighted(t, g, agg)
			res, err := RunPaths(db, agg, Query{}, Config{BufferPages: 8})
			if err != nil {
				t.Fatal(err)
			}
			var all []int32
			for v := int32(1); v <= int32(g.N()); v++ {
				all = append(all, v)
			}
			checkPathValues(t, agg, res.Values, want, all)
			sources := graphgen.SourceSet(150, 4, 6)
			sel, err := RunPaths(db, agg, Query{Sources: sources}, Config{BufferPages: 8})
			if err != nil {
				t.Fatal(err)
			}
			checkPathValues(t, agg, sel.Values, want, sources)
		})
	}
}

func TestWeightedKnownGraph(t *testing.T) {
	// 1 -> 2 (w), 1 -> 3, 2 -> 4, 3 -> 4: min route through the lighter
	// branch, max through the heavier.
	arcs := []graph.Arc{{From: 1, To: 2}, {From: 1, To: 3}, {From: 2, To: 4}, {From: 3, To: 4}}
	weights := map[graph.Arc]int32{
		{From: 1, To: 2}: 10, {From: 1, To: 3}: 1,
		{From: 2, To: 4}: 10, {From: 3, To: 4}: 1,
	}
	db, err := NewDatabaseWeighted(4, arcs, func(a graph.Arc) int32 { return weights[a] })
	if err != nil {
		t.Fatal(err)
	}
	min, err := RunPaths(db, MinWeight, Query{Sources: []int32{1}}, Config{BufferPages: 8})
	if err != nil {
		t.Fatal(err)
	}
	if min.Values[1][4] != 2 {
		t.Fatalf("minweight(1,4) = %d, want 2", min.Values[1][4])
	}
	max, err := RunPaths(db, MaxWeight, Query{Sources: []int32{1}}, Config{BufferPages: 8})
	if err != nil {
		t.Fatal(err)
	}
	if max.Values[1][4] != 20 {
		t.Fatalf("maxweight(1,4) = %d, want 20", max.Values[1][4])
	}
}

func TestWeightedNegativeWeightsOnDAG(t *testing.T) {
	// DAG dynamic programming handles negative weights (no cycles).
	arcs := []graph.Arc{{From: 1, To: 2}, {From: 2, To: 3}, {From: 1, To: 3}}
	weights := map[graph.Arc]int32{
		{From: 1, To: 2}: -5, {From: 2, To: 3}: -5, {From: 1, To: 3}: 1,
	}
	db, err := NewDatabaseWeighted(3, arcs, func(a graph.Arc) int32 { return weights[a] })
	if err != nil {
		t.Fatal(err)
	}
	min, err := RunPaths(db, MinWeight, Query{Sources: []int32{1}}, Config{BufferPages: 8})
	if err != nil {
		t.Fatal(err)
	}
	if min.Values[1][3] != -10 {
		t.Fatalf("minweight(1,3) = %d, want -10", min.Values[1][3])
	}
}

func TestWeightedAggregateRequiresWeightedDB(t *testing.T) {
	_, db := randomDAG(t, 812, 50, 2, 10)
	if _, err := RunPaths(db, MinWeight, Query{}, Config{BufferPages: 8}); err == nil {
		t.Fatal("MinWeight accepted on an unweighted database")
	}
}

func TestWeightedDBRunsReachabilityUnchanged(t *testing.T) {
	// Every reachability algorithm works on a weighted database — the
	// weight column sits beside the relation without disturbing it.
	g, db := weightedDB(t, 813, 120, 3, 25)
	want := refSuccessors(t, g, nil)
	for _, alg := range Algorithms() {
		res, err := Run(db, alg, Query{}, Config{BufferPages: 8, ILIMIT: 0.2})
		if err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
		checkAnswer(t, alg, res.Successors, want, true, g)
	}
}

func TestWeightedDedupKeepsSmallestWeight(t *testing.T) {
	// Duplicate arcs keep the smallest weight (shortest-path semantics).
	arcs := []graph.Arc{{From: 1, To: 2}, {From: 1, To: 2}}
	first := true
	db, err := NewDatabaseWeighted(2, arcs, func(graph.Arc) int32 {
		if first {
			first = false
			return 7
		}
		return 3
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunPaths(db, MinWeight, Query{Sources: []int32{1}}, Config{BufferPages: 8})
	if err != nil {
		t.Fatal(err)
	}
	if res.Values[1][2] != 3 {
		t.Fatalf("deduplicated weight = %d, want 3", res.Values[1][2])
	}
}

func TestWeightedHopAggregatesIgnoreWeights(t *testing.T) {
	// MinHops on a weighted database equals MinHops on the plain one.
	arcs, err := graphgen.Generate(graphgen.Params{Nodes: 80, OutDegree: 3, Locality: 20, Seed: 814})
	if err != nil {
		t.Fatal(err)
	}
	plain := NewDatabase(80, arcs)
	weighted, err := NewDatabaseWeighted(80, arcs, weightOf)
	if err != nil {
		t.Fatal(err)
	}
	a, err := RunPaths(plain, MinHops, Query{}, Config{BufferPages: 8})
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunPaths(weighted, MinHops, Query{}, Config{BufferPages: 8})
	if err != nil {
		t.Fatal(err)
	}
	for v, row := range a.Values {
		for u, d := range row {
			if b.Values[v][u] != d {
				t.Fatalf("minhops(%d,%d) differs: %d vs %d", v, u, b.Values[v][u], d)
			}
		}
	}
}

func TestWeightedRandomizedSweep(t *testing.T) {
	rng := rand.New(rand.NewSource(815))
	for trial := 0; trial < 5; trial++ {
		n := rng.Intn(100) + 20
		g, db := weightedDB(t, int64(900+trial), n, rng.Intn(4)+1, rng.Intn(n)+5)
		for _, agg := range []PathAggregate{MinWeight, MaxWeight} {
			want := refWeighted(t, g, agg)
			res, err := RunPaths(db, agg, Query{}, Config{BufferPages: rng.Intn(8) + 4})
			if err != nil {
				t.Fatal(err)
			}
			var all []int32
			for v := int32(1); v <= int32(g.N()); v++ {
				all = append(all, v)
			}
			checkPathValues(t, agg, res.Values, want, all)
		}
	}
}
