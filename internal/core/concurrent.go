package core

import (
	"sync"

	"tcstudy/internal/buffer"
	"tcstudy/internal/pagedisk"
	"tcstudy/internal/slist"
)

// Concurrent query execution. The stored relations are immutable (sealed,
// so the striped disk serves them lock-free and the pools read them
// zero-copy), and every query creates its temporary files through its own
// tempTracker, so independent queries run in parallel without sharing any
// mutable storage. Page I/O is counted per pool, so every query's metric
// record is exactly what a solo run would report (verified by
// TestConcurrentMatchesSerial).
//
// This extends the paper's single-threaded engine without changing it:
// each individual query still executes the study's sequential two-phase
// algorithm (unless Config.Parallelism asks a multi-source query to
// partition its sources, see parallel.go).

// Request is one query of a concurrent batch.
type Request struct {
	Alg   Algorithm
	Query Query
	Cfg   Config
}

// Response carries one request's outcome.
type Response struct {
	Result *Result
	Err    error
}

// tempTracker wraps the database's store and records every file created
// through it, so the query that owns the tracker can release exactly its
// own temporary files the moment it finishes — file IDs from concurrent
// queries interleave, so a range sweep cannot attribute them.
//
// The embedded Store only promotes pagedisk.Store's method set; Sealed and
// View are forwarded explicitly below, because losing them would silently
// turn the zero-copy read path back into per-Get page copies for every
// tracked query.
type tempTracker struct {
	pagedisk.Store
	owned []pagedisk.FileID
}

func newTempTracker(s pagedisk.Store) *tempTracker { return &tempTracker{Store: s} }

// CreateFile records the new file as owned by this tracker's query.
func (t *tempTracker) CreateFile(name string) pagedisk.FileID {
	id := t.Store.CreateFile(name)
	t.owned = append(t.owned, id)
	return id
}

// Sealed reports whether the wrapped store exposes f as sealed.
func (t *tempTracker) Sealed(f pagedisk.FileID) bool {
	v, ok := t.Store.(pagedisk.ReadOnlyViewer)
	return ok && v.Sealed(f)
}

// View delegates to the wrapped store's zero-copy read path.
func (t *tempTracker) View(f pagedisk.FileID, p pagedisk.PageID) (*pagedisk.Page, error) {
	return t.Store.(pagedisk.ReadOnlyViewer).View(f, p)
}

var _ pagedisk.ReadOnlyViewer = (*tempTracker)(nil)

// release truncates every file the tracker's query created. Storage is
// reclaimed immediately; the (now empty) catalog entries remain, as the
// simulated disk never reuses file IDs.
func (t *tempTracker) release() {
	for _, id := range t.owned {
		t.Store.Truncate(id)
	}
	t.owned = t.owned[:0]
}

// runOwned executes one query with a private buffer pool and a private
// temp-file tracker, releasing the query's temporary files when it
// returns. It is the shared worker under Run, RunConcurrent and the
// intra-query source partitioning.
func runOwned(db *Database, alg Algorithm, q Query, cfg Config) (*Result, error) {
	pagePol, err := newPagePolicy(cfg)
	if err != nil {
		return nil, err
	}
	listPol, err := slist.NewListPolicy(cfg.ListPolicy)
	if err != nil {
		return nil, err
	}
	tracker := newTempTracker(db.disk)
	defer tracker.release()
	pool := buffer.New(tracker, cfg.BufferPages, pagePol)
	return execute(db, pool, listPol, alg, q, cfg)
}

// RunConcurrent executes the requests in parallel over one database and
// returns the responses in request order. Each request's temporary files
// are released as that request finishes, so a large batch's temp storage
// is bounded by the number of in-flight queries, not the batch size.
func RunConcurrent(db *Database, reqs []Request) []Response {
	out := make([]Response, len(reqs))
	var wg sync.WaitGroup
	for i := range reqs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			out[i] = runOne(db, reqs[i])
		}(i)
	}
	wg.Wait()
	return out
}

func runOne(db *Database, r Request) Response {
	cfg := r.Cfg.withDefaults()
	if err := validate(db, r.Query, cfg); err != nil {
		return Response{Err: err}
	}
	var res *Result
	var err error
	if parallelEligible(r.Alg, r.Query, cfg) {
		res, err = runParallelSources(db, r.Alg, r.Query, cfg)
	} else {
		res, err = runOwned(db, r.Alg, r.Query, cfg)
	}
	return Response{Result: res, Err: err}
}
