package core

import (
	"fmt"
	"sync"

	"tcstudy/internal/slist"
)

// Concurrent query execution. The stored relations are immutable and the
// simulated disk is mutex-guarded, so independent queries can run in
// parallel, each with its own buffer pool and its own temporary files.
// Page I/O is counted per pool, so every query's metric record is exactly
// what a solo run would report (verified by TestConcurrentMatchesSerial).
//
// This extends the paper's single-threaded engine without changing it:
// each individual query still executes the study's sequential two-phase
// algorithm.

// Request is one query of a concurrent batch.
type Request struct {
	Alg   Algorithm
	Query Query
	Cfg   Config
}

// Response carries one request's outcome.
type Response struct {
	Result *Result
	Err    error
}

// RunConcurrent executes the requests in parallel over one database and
// returns the responses in request order. Temporary files created by the
// batch are released after every request finishes.
func RunConcurrent(db *Database, reqs []Request) []Response {
	baseFiles := db.disk.NumFiles()
	out := make([]Response, len(reqs))
	var wg sync.WaitGroup
	for i := range reqs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			out[i] = runOne(db, reqs[i])
		}(i)
	}
	wg.Wait()
	// Release the batch's temporary storage. Individual truncation must
	// wait for the whole batch: file IDs from different queries
	// interleave.
	for id := baseFiles; id < db.disk.NumFiles(); id++ {
		db.disk.Truncate(fileID(id))
	}
	return out
}

func runOne(db *Database, r Request) Response {
	cfg := r.Cfg.withDefaults()
	if cfg.BufferPages < 4 {
		return Response{Err: fmt.Errorf("core: buffer pool must have at least 4 pages, got %d", cfg.BufferPages)}
	}
	pagePol, err := newPagePolicy(cfg)
	if err != nil {
		return Response{Err: err}
	}
	listPol, err := slist.NewListPolicy(cfg.ListPolicy)
	if err != nil {
		return Response{Err: err}
	}
	for _, s := range r.Query.Sources {
		if s < 1 || s > int32(db.n) {
			return Response{Err: fmt.Errorf("core: source node %d outside 1..%d", s, db.n)}
		}
	}
	res, err := execute(db, newPool(db, cfg, pagePol), listPol, r.Alg, r.Query, cfg)
	return Response{Result: res, Err: err}
}
