package core

import (
	"tcstudy/internal/bitset"
	"tcstudy/internal/slist"
)

// The BTC computation phase (Section 3.1): successor lists are expanded in
// reverse topological order; each node's list is unioned with the *full*
// lists of its immediate successors only (the immediate successor
// optimization), and a child already reachable through an earlier child is
// marked and skipped (the marking optimization — on topologically ordered
// children, equivalent to the transitive reduction).

// expander bundles the per-node bit vectors, allocated once per run and
// cleared between nodes (the paper's cheap bit-vector duplicate
// elimination, Section 6.1).
type expander struct {
	member    *bitset.Set // current members of the list under expansion
	childSet  *bitset.Set // immediate children of the node
	marked    *bitset.Set // children marked redundant by earlier unions
	appendBuf []int32
	childBuf  []int32        // reused child-prefix buffer
	it        slist.Iterator // reused list iterator
}

func newExpander(n int) *expander {
	return &expander{
		member:   bitset.New(n + 1),
		childSet: bitset.New(n + 1),
		marked:   bitset.New(n + 1),
	}
}

func (x *expander) reset() {
	x.member.Clear()
	x.childSet.Clear()
	x.marked.Clear()
}

// loadChildren reads the immediate-successor prefix of node v's list (the
// first childCount entries, which appends never disturb) and primes the
// expander's member and child sets.
func (e *engine) loadChildren(v int32, exp *expander) ([]int32, error) {
	exp.reset()
	k := e.childCount[v]
	children := exp.childBuf[:0]
	it := &exp.it
	it.Reset(e.store, v)
	for int32(len(children)) < k {
		c, ok := it.Next()
		if !ok {
			break
		}
		e.met.SuccessorsFetched++
		children = append(children, c)
		exp.member.Add(c)
		exp.childSet.Add(c)
	}
	it.Close()
	exp.childBuf = children
	return children, it.Err()
}

// unionInto unions the full successor list of child j into node v's list.
// It reads every entry of S_j (counting successor fetches and generated
// tuples), eliminates duplicates with the member bit vector, marks any
// not-yet-processed children of v that the union reaches, and appends the
// new successors to S_v.
func (e *engine) unionInto(v, j int32, exp *expander) error {
	e.met.ListUnions++
	e.met.noteUnmarked(e.levels[v] - e.levels[j])
	exp.appendBuf = exp.appendBuf[:0]
	it := &exp.it
	it.Reset(e.store, j)
	for {
		u, ok := it.Next()
		if !ok {
			break
		}
		e.met.SuccessorsFetched++
		e.met.TuplesGenerated++
		if exp.childSet.Has(u) {
			exp.marked.Add(u)
		}
		if exp.member.TestAndAdd(u) {
			e.met.Duplicates++
			continue
		}
		exp.appendBuf = append(exp.appendBuf, u)
	}
	it.Close()
	if err := it.Err(); err != nil {
		return err
	}
	return e.store.AppendAll(v, exp.appendBuf)
}

// expandNode runs the BTC expansion of one node: children are considered
// in topological order (their stored order); marked children are skipped.
func (e *engine) expandNode(v int32, exp *expander) error {
	children, err := e.loadChildren(v, exp)
	if err != nil {
		return err
	}
	for _, j := range children {
		e.met.ArcsConsidered++
		if !e.cfg.DisableMarking && exp.marked.Has(j) {
			e.met.ArcsMarked++
			continue
		}
		if err := e.unionInto(v, j, exp); err != nil {
			return err
		}
	}
	return nil
}

// runBTC executes the base algorithm end to end.
func (e *engine) runBTC() error {
	if err := e.timedPhase(true, func() error {
		adj, err := e.discover()
		if err != nil {
			return err
		}
		return e.buildLists(adj)
	}); err != nil {
		return err
	}
	if err := e.timedPhase(false, func() error {
		exp := newExpander(e.db.n)
		for i := len(e.order) - 1; i >= 0; i-- {
			if err := e.expandNode(e.order[i], exp); err != nil {
				return err
			}
		}
		return e.finalizeFlat()
	}); err != nil {
		return err
	}
	return e.collectFlatAnswer()
}

// finalizeFlat tallies the tuple counts and writes the result out: for a
// full closure every expanded list is flushed; for a selection only the
// source-node lists are written and the rest of the intermediate store is
// dropped (Section 4: "only the expanded lists of the query source nodes
// are written out").
func (e *engine) finalizeFlat() error {
	for _, v := range e.order {
		e.met.DistinctTuples += int64(e.store.Len(v))
	}
	if e.q.IsFull() {
		e.met.SourceTuples = e.met.DistinctTuples
		return e.pool.FlushFile(e.store.File())
	}
	for _, s := range e.q.Sources {
		e.met.SourceTuples += int64(e.store.Len(s))
		if err := e.store.FlushList(s); err != nil {
			return err
		}
	}
	e.store.DiscardAll()
	return nil
}

// collectFlatAnswer materializes the answer sets after measurement ends.
// For a full closure every magic node's list is the answer; for a
// selection the source lists are. Entries are already duplicate-free.
func (e *engine) collectFlatAnswer() error {
	e.answer = make(map[int32][]int32)
	var nodes []int32
	if e.q.IsFull() {
		nodes = e.order
	} else {
		nodes = e.q.Sources
	}
	for _, v := range nodes {
		vals, err := e.store.ReadAll(v)
		if err != nil {
			return err
		}
		e.answer[v] = vals
	}
	return nil
}
