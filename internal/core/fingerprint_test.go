package core

import (
	"testing"

	"tcstudy/internal/graphgen"
)

func fingerprintOf(t *testing.T, nodes int, seed int64) uint64 {
	t.Helper()
	arcs, err := graphgen.Generate(graphgen.Params{Nodes: nodes, OutDegree: 4, Locality: 40, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	fp, err := NewDatabase(nodes, arcs).Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	return fp
}

func TestFingerprintIdentifiesDataset(t *testing.T) {
	a := fingerprintOf(t, 300, 7)
	b := fingerprintOf(t, 300, 7)
	if a != b {
		t.Fatalf("same generator parameters fingerprint differently: %016x vs %016x", a, b)
	}
	if a == 0 {
		t.Fatal("fingerprint is zero")
	}
	if c := fingerprintOf(t, 300, 8); c == a {
		t.Fatalf("different graphs share fingerprint %016x", a)
	}
	if d := fingerprintOf(t, 301, 7); d == a {
		t.Fatalf("different node counts share fingerprint %016x", a)
	}
}

func TestFingerprintStableAcrossCalls(t *testing.T) {
	arcs, err := graphgen.Generate(graphgen.Params{Nodes: 200, OutDegree: 4, Locality: 40, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	db := NewDatabase(200, arcs)
	first, err := db.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	// Run a query between calls: serving work must not disturb the digest.
	if _, err := Run(db, SRCH, Query{Sources: []int32{1}}, Config{BufferPages: 8}); err != nil {
		t.Fatal(err)
	}
	again, err := db.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	if first != again {
		t.Fatalf("fingerprint drifted: %016x then %016x", first, again)
	}
}
