package core

import (
	"fmt"

	"tcstudy/internal/buffer"
	"tcstudy/internal/pagedisk"
	"tcstudy/internal/slist"
)

// Session runs a sequence of queries over one database through a shared,
// warm buffer pool. The paper's experiments are deliberately cold — every
// measurement starts from an empty pool — but a library user issuing many
// reachability queries benefits from keeping the relation's hot pages
// resident. Each query still gets its own full metric record (attributed
// by counter deltas, so the shared pool does not blur accounting).
//
// A session is not safe for concurrent use. A query that fails with a
// storage error does not poison the session: the pool is reset (dropping
// any pins and dirty pages the aborted run left behind — they belong to
// its temporary files), the temporaries are released, and the next query
// runs from a cold pool against the intact database. The only cost of a
// fault is the lost warmth.
type Session struct {
	db   *Database
	cfg  Config
	pool *buffer.Pool
	// faults counts queries that failed with a storage error and were
	// recovered from (for tests and operational visibility).
	faults int64
}

// NewSession validates the configuration and opens a session.
func NewSession(db *Database, cfg Config) (*Session, error) {
	cfg = cfg.withDefaults()
	if cfg.BufferPages < 4 {
		return nil, fmt.Errorf("core: buffer pool must have at least 4 pages, got %d", cfg.BufferPages)
	}
	pagePol, err := buffer.NewPolicy(cfg.PagePolicy, cfg.BufferPages)
	if err != nil {
		return nil, err
	}
	if _, err := slist.NewListPolicy(cfg.ListPolicy); err != nil {
		return nil, err
	}
	return &Session{
		db:   db,
		cfg:  cfg,
		pool: buffer.New(db.disk, cfg.BufferPages, pagePol),
	}, nil
}

// Pool exposes the session's buffer pool (for tests and instrumentation).
func (s *Session) Pool() *buffer.Pool { return s.pool }

// Faults reports how many queries failed with an error and were recovered
// from.
func (s *Session) Faults() int64 { return s.faults }

// Run executes one query within the session.
func (s *Session) Run(alg Algorithm, q Query) (*Result, error) {
	listPol, err := slist.NewListPolicy(s.cfg.ListPolicy)
	if err != nil {
		return nil, err
	}
	for _, src := range q.Sources {
		if src < 1 || src > int32(s.db.n) {
			return nil, fmt.Errorf("core: source node %d outside 1..%d", src, s.db.n)
		}
	}
	baseFiles := s.db.disk.NumFiles()
	res, err := execute(s.db, s.pool, listPol, alg, q, s.cfg)
	if err != nil {
		// The aborted run can leave pages pinned and dirty frames holding
		// its temporaries. Drop every frame — the base relations are
		// read-only during queries, so nothing durable is lost — and
		// release the temporary files. The session stays usable; the next
		// query simply starts cold.
		s.faults++
		s.pool.Reset()
		for id := baseFiles; id < s.db.disk.NumFiles(); id++ {
			s.db.disk.Truncate(pagedisk.FileID(id))
		}
		return nil, err
	}
	// Release this query's temporary files: drop their buffered pages,
	// then their storage.
	for id := baseFiles; id < s.db.disk.NumFiles(); id++ {
		s.pool.DiscardFile(pagedisk.FileID(id))
		s.db.disk.Truncate(pagedisk.FileID(id))
	}
	return res, nil
}

// execute is the engine entry shared by Run and Session.Run: it performs
// one query on the given pool.
func execute(db *Database, pool *buffer.Pool, listPol slist.ListPolicy, alg Algorithm, q Query, cfg Config) (*Result, error) {
	e := &engine{
		db:         db,
		cfg:        cfg,
		pool:       pool,
		q:          q,
		met:        Metrics{Algorithm: alg},
		listPolicy: listPol,
	}
	var run func() error
	switch alg {
	case BTC:
		run = e.runBTC
	case HYB:
		run = e.runHYB
	case BJ:
		run = e.runBJ
	case SRCH:
		run = e.runSRCH
	case SPN:
		run = e.runSPN
	case JKB:
		run = func() error { return e.runJKB(false) }
	case JKB2:
		run = func() error { return e.runJKB(true) }
	case SEMI:
		run = e.runSeminaive
	case WARREN:
		run = e.runWarren
	case SCHMITZ:
		run = e.runSchmitz
	case BITM:
		run = e.runBitMatrix
	default:
		return nil, fmt.Errorf("core: unknown algorithm %q", alg)
	}
	if err := run(); err != nil {
		return nil, fmt.Errorf("core: %s: %w", alg, err)
	}
	if e.store != nil {
		e.met.Store = e.store.Stats()
	}
	return &Result{Metrics: e.met, Successors: e.answer}, nil
}
