package core

import (
	"errors"
	"fmt"
	"testing"

	"tcstudy/internal/graph"
	"tcstudy/internal/graphgen"
	"tcstudy/internal/pagedisk"
)

// TestInjectedIOFailuresSurface drives every algorithm into injected I/O
// failures at many points of its execution and checks that each failure is
// returned as an error (never a panic, never a silent wrong answer).
func TestInjectedIOFailuresSurface(t *testing.T) {
	_, db := randomDAG(t, 601, 120, 4, 25)
	sources := graphgen.SourceSet(120, 4, 3)
	for _, alg := range Algorithms() {
		t.Run(string(alg), func(t *testing.T) {
			// Find the failure-free I/O volume first.
			db.disk.(*pagedisk.Disk).FailAfter(-1)
			res, err := Run(db, alg, Query{Sources: sources}, Config{BufferPages: 8, ILIMIT: 0.3})
			if err != nil {
				t.Fatal(err)
			}
			total := res.Metrics.TotalIO()
			if total < 4 {
				t.Skipf("only %d I/Os, nothing to inject into", total)
			}
			// Inject failures at a spread of points, including during
			// answer extraction (beyond the measured I/O count).
			points := []int64{0, 1, total / 4, total / 2, total - 1, total + 2}
			for _, p := range points {
				db.disk.(*pagedisk.Disk).FailAfter(p)
				_, err := Run(db, alg, Query{Sources: sources}, Config{BufferPages: 8, ILIMIT: 0.3})
				db.disk.(*pagedisk.Disk).FailAfter(-1)
				if err == nil {
					// Extraction I/O past `total` may legitimately
					// succeed if fewer post-run reads were needed.
					if p <= total-1 {
						t.Fatalf("failure at I/O %d of %d not surfaced", p, total)
					}
					continue
				}
				if !errors.Is(err, pagedisk.ErrIOInjected) {
					t.Fatalf("failure at I/O %d: got %v, want injected error", p, err)
				}
			}
		})
	}
	db.disk.(*pagedisk.Disk).FailAfter(-1)
}

// TestFailureDuringFullClosure exercises the CTC paths under injection.
func TestFailureDuringFullClosure(t *testing.T) {
	_, db := randomDAG(t, 602, 100, 4, 25)
	for _, alg := range Algorithms() {
		db.disk.(*pagedisk.Disk).FailAfter(-1)
		res, err := Run(db, alg, Query{}, Config{BufferPages: 8, ILIMIT: 0.2})
		if err != nil {
			t.Fatal(err)
		}
		mid := res.Metrics.TotalIO() / 2
		db.disk.(*pagedisk.Disk).FailAfter(mid)
		if _, err := Run(db, alg, Query{}, Config{BufferPages: 8, ILIMIT: 0.2}); !errors.Is(err, pagedisk.ErrIOInjected) {
			t.Fatalf("%s: mid-run failure returned %v", alg, err)
		}
		db.disk.(*pagedisk.Disk).FailAfter(-1)
	}
}

// TestRecoveryAfterFailure checks a database remains usable after a failed
// run: the next run must produce the correct answer.
func TestRecoveryAfterFailure(t *testing.T) {
	g, db := randomDAG(t, 603, 100, 4, 25)
	want := refSuccessors(t, g, nil)
	for _, alg := range []Algorithm{BTC, SPN, JKB2, SEMI, WARREN} {
		db.disk.(*pagedisk.Disk).FailAfter(50)
		_, _ = Run(db, alg, Query{}, Config{BufferPages: 8})
		db.disk.(*pagedisk.Disk).FailAfter(-1)
		res, err := Run(db, alg, Query{}, Config{BufferPages: 8})
		if err != nil {
			t.Fatalf("%s after failed run: %v", alg, err)
		}
		checkAnswer(t, alg, res.Successors, want, true, g)
	}
}

// TestHYBForcedReblocking uses a pool barely above the minimum with a large
// ILIMIT so the diagonal block must shed pages mid-expansion, and verifies
// the answer survives.
func TestHYBForcedReblocking(t *testing.T) {
	g, db := randomDAG(t, 604, 200, 6, 60)
	want := refSuccessors(t, g, nil)
	for _, m := range []int{4, 5, 6} {
		res, err := Run(db, HYB, Query{}, Config{BufferPages: m, ILIMIT: 0.95})
		if err != nil {
			t.Fatalf("M=%d: %v", m, err)
		}
		checkAnswer(t, HYB, res.Successors, want, true, g)
	}
}

// TestHYBBlockingReducesChildFetches verifies blocking's one benefit is
// real in the implementation: with a diagonal block, an off-diagonal child
// shared by several diagonal lists is fetched once per block rather than
// once per list, so compute-phase buffer misses per union cannot exceed
// plain BTC's.
func TestHYBBlockingCorrectAtEveryILIMIT(t *testing.T) {
	g, db := randomDAG(t, 605, 150, 5, 40)
	want := refSuccessors(t, g, nil)
	for ilimit := 0.05; ilimit <= 1.0; ilimit += 0.16 {
		res, err := Run(db, HYB, Query{}, Config{BufferPages: 12, ILIMIT: ilimit})
		if err != nil {
			t.Fatalf("ILIMIT %.2f: %v", ilimit, err)
		}
		checkAnswer(t, HYB, res.Successors, want, true, g)
		if res.Metrics.ArcsConsidered != int64(g.NumArcs()) {
			t.Fatalf("ILIMIT %.2f considered %d arcs, graph has %d",
				ilimit, res.Metrics.ArcsConsidered, g.NumArcs())
		}
	}
}

// TestHYBLosesMarkingsVersusBTC reproduces the paper's mechanism: the
// off-diagonal-first union order can only lose marking opportunities.
func TestHYBLosesMarkingsVersusBTC(t *testing.T) {
	_, db := randomDAG(t, 606, 400, 6, 80)
	rb, err := Run(db, BTC, Query{}, Config{BufferPages: 10})
	if err != nil {
		t.Fatal(err)
	}
	rh, err := Run(db, HYB, Query{}, Config{BufferPages: 10, ILIMIT: 0.4})
	if err != nil {
		t.Fatal(err)
	}
	if rh.Metrics.ArcsMarked > rb.Metrics.ArcsMarked {
		t.Fatalf("HYB marked more arcs (%d) than BTC (%d)",
			rh.Metrics.ArcsMarked, rb.Metrics.ArcsMarked)
	}
}

// TestAllAlgorithmsLeaveNoPins runs every algorithm and then checks the
// engine released every buffer pin (indirectly: a fresh run with a minimal
// pool must not fail with ErrNoFrames caused by leaked pins).
func TestAllAlgorithmsLeaveNoPins(t *testing.T) {
	_, db := randomDAG(t, 607, 120, 4, 25)
	for _, alg := range Algorithms() {
		for i := 0; i < 2; i++ {
			if _, err := Run(db, alg, Query{Sources: []int32{1, 7}}, Config{BufferPages: 4, ILIMIT: 0.5}); err != nil {
				t.Fatalf("%s run %d with minimal pool: %v", alg, i, err)
			}
		}
	}
}

func ExampleRun() {
	db := NewDatabase(4, []graph.Arc{{From: 1, To: 2}, {From: 2, To: 3}, {From: 3, To: 4}})
	res, _ := Run(db, BTC, Query{Sources: []int32{1}}, Config{BufferPages: 8})
	fmt.Println(len(res.Successors[1]))
	// Output: 3
}
