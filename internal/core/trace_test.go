package core

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"tcstudy/internal/obsv"
)

// goldenPhaseIO is the per-phase page I/O parsed back out of
// testdata/metrics.golden for one algorithm.
type goldenPhaseIO struct {
	restructure PhaseIO
	compute     PhaseIO
}

// parseGoldenIO extracts the restructure_io/compute_io lines of the golden
// metric records, keyed by algorithm.
func parseGoldenIO(t *testing.T) map[Algorithm]goldenPhaseIO {
	t.Helper()
	raw, err := os.ReadFile(filepath.Join("testdata", "metrics.golden"))
	if err != nil {
		t.Fatalf("reading golden metrics: %v", err)
	}
	out := make(map[Algorithm]goldenPhaseIO)
	var cur Algorithm
	for _, line := range strings.Split(string(raw), "\n") {
		line = strings.TrimSpace(line)
		switch {
		case strings.HasPrefix(line, "[") && strings.HasSuffix(line, "]"):
			cur = Algorithm(strings.Trim(line, "[]"))
		case strings.HasPrefix(line, "restructure_io"):
			g := out[cur]
			if _, err := fmt.Sscanf(line, "restructure_io   reads=%d writes=%d",
				&g.restructure.Reads, &g.restructure.Writes); err != nil {
				t.Fatalf("parsing %q: %v", line, err)
			}
			out[cur] = g
		case strings.HasPrefix(line, "compute_io"):
			g := out[cur]
			if _, err := fmt.Sscanf(line, "compute_io       reads=%d writes=%d",
				&g.compute.Reads, &g.compute.Writes); err != nil {
				t.Fatalf("parsing %q: %v", line, err)
			}
			out[cur] = g
		}
	}
	return out
}

// TestSpanIOReconcilesWithGolden pins the tracing layer's core guarantee:
// for every algorithm, the page-I/O deltas captured on the phase spans sum
// to exactly the phase totals of the metric record — and both match the
// golden records committed in testdata/metrics.golden. A span that missed
// a page, double-counted one, or snapshotted the wrong pool would break
// this equality.
func TestSpanIOReconcilesWithGolden(t *testing.T) {
	const seed, n, f, l = 424242, 120, 4, 30 // the golden test's graph
	_, db := randomDAG(t, seed, n, f, l)
	golden := parseGoldenIO(t)
	if len(golden) == 0 {
		t.Fatal("no records parsed from metrics.golden")
	}

	for _, alg := range Algorithms() {
		want, ok := golden[alg]
		if !ok {
			t.Fatalf("%s: no golden record", alg)
		}
		tr := obsv.NewTracer()
		root := tr.Start("query", obsv.KV("algorithm", string(alg)))
		cfg := Config{BufferPages: 10, ILIMIT: 0.4, Trace: root}
		res, err := Run(db, alg, Query{}, cfg)
		if err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
		root.Finish()

		rec := tr.Records()[0]
		restr := rec.SumIO("restructure")
		comp := rec.SumIO("compute")

		// Spans vs the live metric record.
		m := res.Metrics
		if restr.Reads != m.Restructure.Reads || restr.Writes != m.Restructure.Writes {
			t.Errorf("%s: restructure spans %+v != record %+v", alg, restr, m.Restructure)
		}
		if comp.Reads != m.Compute.Reads || comp.Writes != m.Compute.Writes {
			t.Errorf("%s: compute spans %+v != record %+v", alg, comp, m.Compute)
		}
		if comp.Hits != m.ComputeBuffer.Hits || comp.Misses != m.ComputeBuffer.Misses ||
			comp.Evicts != m.ComputeBuffer.Evicts {
			t.Errorf("%s: compute span buffer stats (%d/%d/%d) != record (%d/%d/%d)",
				alg, comp.Hits, comp.Misses, comp.Evicts,
				m.ComputeBuffer.Hits, m.ComputeBuffer.Misses, m.ComputeBuffer.Evicts)
		}

		// Spans vs the committed golden file.
		if restr.Reads != want.restructure.Reads || restr.Writes != want.restructure.Writes {
			t.Errorf("%s: restructure spans reads=%d writes=%d, golden reads=%d writes=%d",
				alg, restr.Reads, restr.Writes, want.restructure.Reads, want.restructure.Writes)
		}
		if comp.Reads != want.compute.Reads || comp.Writes != want.compute.Writes {
			t.Errorf("%s: compute spans reads=%d writes=%d, golden reads=%d writes=%d",
				alg, comp.Reads, comp.Writes, want.compute.Reads, want.compute.Writes)
		}

		// The trace changes nothing about the work: the traced run's record
		// must equal the untraced run's.
		plain, err := Run(db, alg, Query{}, Config{BufferPages: 10, ILIMIT: 0.4})
		if err != nil {
			t.Fatalf("%s untraced: %v", alg, err)
		}
		if goldenRecord(plain.Metrics) != goldenRecord(res.Metrics) {
			t.Errorf("%s: traced and untraced runs produced different records", alg)
		}
	}
}

// TestSpanIOReconcilesParallel extends the reconciliation to intra-query
// source parallelism: each worker's phase spans hang under a "worker"
// span, and their sum must equal the merged (summed) metric record.
func TestSpanIOReconcilesParallel(t *testing.T) {
	_, db := randomDAG(t, 7, 200, 4, 40)
	sources := []int32{3, 17, 40, 77, 103, 150, 180, 199}
	tr := obsv.NewTracer()
	root := tr.Start("query")
	res, err := Run(db, BTC, Query{Sources: sources},
		Config{BufferPages: 10, Parallelism: 3, Trace: root})
	if err != nil {
		t.Fatal(err)
	}
	root.Finish()

	rec := tr.Records()[0]
	if len(rec.Children) != 3 {
		t.Fatalf("got %d worker spans, want 3", len(rec.Children))
	}
	restr := rec.SumIO("restructure")
	comp := rec.SumIO("compute")
	m := res.Metrics
	if restr.Reads != m.Restructure.Reads || restr.Writes != m.Restructure.Writes {
		t.Errorf("restructure spans %+v != merged record %+v", restr, m.Restructure)
	}
	if comp.Reads != m.Compute.Reads || comp.Writes != m.Compute.Writes {
		t.Errorf("compute spans %+v != merged record %+v", comp, m.Compute)
	}
}

// TestSRCHSourceSpans checks the per-source expansion spans: one per
// source, nested in the compute phase, their I/O summing to the phase's.
func TestSRCHSourceSpans(t *testing.T) {
	_, db := randomDAG(t, 11, 150, 4, 30)
	sources := []int32{5, 60, 120}
	tr := obsv.NewTracer()
	root := tr.Start("query")
	_, err := Run(db, SRCH, Query{Sources: sources},
		Config{BufferPages: 10, Trace: root})
	if err != nil {
		t.Fatal(err)
	}
	root.Finish()

	rec := tr.Records()[0]
	var srcSpans []obsv.Record
	rec.Visit(func(r obsv.Record) {
		if r.Name == "source" {
			srcSpans = append(srcSpans, r)
		}
	})
	if len(srcSpans) != len(sources) {
		t.Fatalf("got %d source spans, want %d", len(srcSpans), len(sources))
	}
	perSource := rec.SumIO("source")
	phase := rec.SumIO("compute")
	// The compute phase does slightly more than the per-source loops (the
	// final flush of source lists), so the nested spans are bounded by it.
	if perSource.Reads > phase.Reads || perSource.Writes > phase.Writes {
		t.Errorf("source spans %+v exceed compute phase %+v", perSource, phase)
	}
	for i, s := range srcSpans {
		if s.Attrs["node"] != sources[i] {
			t.Errorf("source span %d annotates node %v, want %d", i, s.Attrs["node"], sources[i])
		}
	}
}
