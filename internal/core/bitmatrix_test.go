package core

import (
	"testing"

	"tcstudy/internal/bitmatrix"
	"tcstudy/internal/graph"
	"tcstudy/internal/graphgen"
)

// rowsEqual asserts two successor maps agree row for row over nodes 1..n.
func rowsEqual(t *testing.T, label string, n int, got, want map[int32][]int32) {
	t.Helper()
	for v := int32(1); v <= int32(n); v++ {
		g, w := sorted(got[v]), sorted(want[v])
		if len(g) != len(w) {
			t.Fatalf("%s: node %d has %d successors, want %d", label, v, len(g), len(w))
		}
		for i := range w {
			if g[i] != w[i] {
				t.Fatalf("%s: successors of node %d differ at rank %d: got %d, want %d",
					label, v, i, g[i], w[i])
			}
		}
	}
}

// TestBitMatrixDenseCoreVsBTC is the property battery the kernel ships
// inside: for 50 seeded dense-core DAGs (high out-degree relative to node
// count, so the condensation equals the graph and sits well above the
// density gate), the bit-matrix closure must equal BTC's row for row —
// full closure and a selection query both.
func TestBitMatrixDenseCoreVsBTC(t *testing.T) {
	nSeeds := 50
	if testing.Short() {
		nSeeds = 8
	}
	for i := 0; i < nSeeds; i++ {
		seed := int64(9000 + i)
		n := 40 + (i%7)*25 // 40..190 nodes: inside the always-fits bound
		f := 6 + i%5       // out-degree 6..10: dense cores
		l := n             // full locality, the densest shape the generator makes
		_, db := randomDAG(t, seed, n, f, l)

		btc, err := Run(db, BTC, Query{}, Config{BufferPages: 10})
		if err != nil {
			t.Fatalf("seed=%d: btc: %v", seed, err)
		}
		bitm, err := Run(db, BITM, Query{}, Config{BufferPages: 10})
		if err != nil {
			t.Fatalf("seed=%d: bitmatrix: %v", seed, err)
		}
		if bitm.Metrics.TuplesGenerated != 0 {
			t.Fatalf("seed=%d: dense core should run the kernel, but tuple counters show list work", seed)
		}
		rowsEqual(t, "full closure", n, bitm.Successors, btc.Successors)

		srcs := []int32{1, int32(n/2) + 1, int32(n)}
		btcSel, err := Run(db, BTC, Query{Sources: srcs}, Config{BufferPages: 10})
		if err != nil {
			t.Fatalf("seed=%d: btc selection: %v", seed, err)
		}
		bitmSel, err := Run(db, BITM, Query{Sources: srcs}, Config{BufferPages: 10})
		if err != nil {
			t.Fatalf("seed=%d: bitmatrix selection: %v", seed, err)
		}
		for _, s := range srcs {
			g, w := sorted(bitmSel.Successors[s]), sorted(btcSel.Successors[s])
			if len(g) != len(w) {
				t.Fatalf("seed=%d: source %d has %d successors, BTC says %d", seed, s, len(g), len(w))
			}
			for j := range w {
				if g[j] != w[j] {
					t.Fatalf("seed=%d: source %d rank %d: got %d, BTC says %d", seed, s, j, g[j], w[j])
				}
			}
		}
	}
}

// TestBitMatrixDegenerateCores covers the degenerate ends of the SCC
// spectrum: a single-node graph (one trivial component, empty closure)
// and a graph whose nodes all share one strongly connected component
// (the condensation is a single node; every node reaches every node,
// itself included).
func TestBitMatrixDegenerateCores(t *testing.T) {
	// Single node, no arcs.
	db := NewDatabase(1, nil)
	res, err := Run(db, BITM, Query{}, Config{BufferPages: 10})
	if err != nil {
		t.Fatalf("single node: %v", err)
	}
	if len(res.Successors[1]) != 0 {
		t.Fatalf("single node: got successors %v, want none", res.Successors[1])
	}

	// All nodes in one SCC: a ring with chords. Cyclic, so the reference
	// is Schmitz (the engine's cyclic-native algorithm) and the BFS oracle
	// semantics: every node reaches all n nodes including itself.
	const n = 60
	var arcs []graph.Arc
	for i := int32(1); i <= n; i++ {
		next := i%n + 1
		arcs = append(arcs, graph.Arc{From: i, To: next})
		if i%7 == 0 {
			arcs = append(arcs, graph.Arc{From: i, To: (i+13)%n + 1})
		}
	}
	db = NewDatabase(n, arcs)
	bitm, err := Run(db, BITM, Query{}, Config{BufferPages: 10})
	if err != nil {
		t.Fatalf("one-scc: bitmatrix: %v", err)
	}
	schmitz, err := Run(db, SCHMITZ, Query{}, Config{BufferPages: 10})
	if err != nil {
		t.Fatalf("one-scc: schmitz: %v", err)
	}
	rowsEqual(t, "one-scc", n, bitm.Successors, schmitz.Successors)
	for v := int32(1); v <= n; v++ {
		if len(bitm.Successors[v]) != n {
			t.Fatalf("one-scc: node %d reaches %d nodes, want %d", v, len(bitm.Successors[v]), n)
		}
	}
	if bitm.Metrics.MagicNodes != 1 {
		t.Fatalf("one-scc: condensation has %d nodes, want 1", bitm.Metrics.MagicNodes)
	}
}

// TestBitMatrixThresholdBoundary pins the engine-side selection on shapes
// just under and just over the kernel's fit threshold: both sides must be
// exact, and the metric record must show which path ran (the kernel does
// whole-row work and generates no tuples; the list fallback does).
func TestBitMatrixThresholdBoundary(t *testing.T) {
	if bitmatrix.SmallN != 512 {
		t.Fatalf("test assumes SmallN=512, got %d", bitmatrix.SmallN)
	}
	// Just under: 512 sparse nodes always fit the kernel.
	underN := bitmatrix.SmallN
	_, under := randomDAG(t, 31, underN, 2, 16)
	resUnder, err := Run(under, BITM, Query{}, Config{BufferPages: 10})
	if err != nil {
		t.Fatalf("under: %v", err)
	}
	if resUnder.Metrics.TuplesGenerated != 0 {
		t.Fatal("under threshold: expected the kernel, metric record shows list work")
	}

	// Just over: 513 nodes at the same sparse shape miss the density gate
	// and must fall back to BTC — still exact.
	overN := bitmatrix.SmallN + 1
	gOver, over := randomDAG(t, 32, overN, 2, 16)
	if bitmatrix.Fits(overN, gOver.NumArcs()) {
		t.Fatalf("shape error: %d nodes %d arcs should not fit", overN, gOver.NumArcs())
	}
	resOver, err := Run(over, BITM, Query{}, Config{BufferPages: 10})
	if err != nil {
		t.Fatalf("over: %v", err)
	}
	if resOver.Metrics.TuplesGenerated == 0 {
		t.Fatal("over threshold: expected the BTC fallback, metric record shows no list work")
	}
	btcOver, err := Run(over, BTC, Query{}, Config{BufferPages: 10})
	if err != nil {
		t.Fatalf("over: btc: %v", err)
	}
	rowsEqual(t, "over-threshold fallback", overN, resOver.Successors, btcOver.Successors)

	// Both sides against the BFS reference, so the boundary cannot hide a
	// shared engine bug.
	gUnder, _ := randomDAG(t, 31, underN, 2, 16)
	rowsEqual(t, "under vs bfs", underN, resUnder.Successors, bfsReference(underN, gUnder.Arcs()))
	rowsEqual(t, "over vs bfs", overN, resOver.Successors, bfsReference(overN, gOver.Arcs()))
}

// TestBitMatrixOversizedCyclicFallsBackToSchmitz: an over-threshold input
// with cycles cannot take the BTC fallback (BTC's restructuring requires a
// DAG); the engine must route it to Schmitz and stay exact.
func TestBitMatrixOversizedCyclicFallsBackToSchmitz(t *testing.T) {
	n := bitmatrix.SmallN + 200
	arcs, err := graphgen.Generate(graphgen.Params{Nodes: n, OutDegree: 2, Locality: 16, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	// A few short back arcs create small cycles without densifying the
	// graph or collapsing the condensation below the always-fit bound.
	for i := 1; i+5 <= n; i += 97 {
		arcs = append(arcs, graph.Arc{From: int32(i + 5), To: int32(i)})
	}
	g := graph.New(n, arcs)
	cond := g.Condense()
	if bitmatrix.Fits(cond.DAG.N(), cond.DAG.NumArcs()) {
		t.Fatalf("shape error: condensation %d nodes %d arcs should not fit",
			cond.DAG.N(), cond.DAG.NumArcs())
	}
	db := NewDatabase(n, arcs)
	res, err := Run(db, BITM, Query{}, Config{BufferPages: 10})
	if err != nil {
		t.Fatalf("bitmatrix on oversized cyclic input: %v", err)
	}
	rowsEqual(t, "oversized cyclic", n, res.Successors, bfsReference(n, arcs))
}

// TestBitMatrixParallelKernel: Config.Parallelism drives the kernel's row
// partitioning (never source partitioning), and the answer must be
// identical to the serial run's for CTC and multi-source PTC alike.
func TestBitMatrixParallelKernel(t *testing.T) {
	_, db := randomDAG(t, 17, 150, 8, 150)
	serial, err := Run(db, BITM, Query{}, Config{BufferPages: 10})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 8} {
		par, err := Run(db, BITM, Query{}, Config{BufferPages: 10, Parallelism: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		rowsEqual(t, "parallel CTC", 150, par.Successors, serial.Successors)
	}
	srcs := []int32{2, 30, 77, 149}
	ser, err := Run(db, BITM, Query{Sources: srcs}, Config{BufferPages: 10})
	if err != nil {
		t.Fatal(err)
	}
	par, err := Run(db, BITM, Query{Sources: srcs}, Config{BufferPages: 10, Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range srcs {
		g, w := sorted(par.Successors[s]), sorted(ser.Successors[s])
		if len(g) != len(w) {
			t.Fatalf("source %d: parallel has %d successors, serial %d", s, len(g), len(w))
		}
		for i := range w {
			if g[i] != w[i] {
				t.Fatalf("source %d rank %d: parallel %d, serial %d", s, i, g[i], w[i])
			}
		}
	}
	// The parallel run is one kernel execution, not a scatter-gather: its
	// restructuring scan must match the serial run's, not a multiple of it.
	if par.Metrics.Restructure.Reads != ser.Metrics.Restructure.Reads {
		t.Fatalf("parallel BITM rescanned the relation per worker: %d reads vs serial %d",
			par.Metrics.Restructure.Reads, ser.Metrics.Restructure.Reads)
	}
}
