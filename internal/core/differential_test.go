package core

import (
	"sort"
	"testing"

	"tcstudy/internal/graph"
)

// bfsReference computes every node's successor set by plain breadth-first
// search over an adjacency list. It deliberately shares nothing with the
// engine or with graph.Closure's bitset machinery: a third, independent
// implementation, so agreement means the answer is right rather than that
// two implementations share a bug.
func bfsReference(n int, arcs []graph.Arc) map[int32][]int32 {
	adj := make([][]int32, n+1)
	for _, a := range arcs {
		adj[a.From] = append(adj[a.From], a.To)
	}
	out := make(map[int32][]int32, n)
	seen := make([]int32, n+1)
	var stamp int32
	queue := make([]int32, 0, n)
	for src := int32(1); src <= int32(n); src++ {
		stamp++
		queue = append(queue[:0], src)
		var reach []int32
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			for _, w := range adj[v] {
				if seen[w] == stamp {
					continue
				}
				seen[w] = stamp
				reach = append(reach, w)
				queue = append(queue, w)
			}
		}
		sort.Slice(reach, func(i, j int) bool { return reach[i] < reach[j] })
		out[src] = reach
	}
	return out
}

// TestDifferentialAgainstBFS runs every implemented algorithm — the seven
// candidates and the related-work baselines — against the BFS reference on
// 50 seeded DAGs of varying shape, each at both a tiny (4-page) and the
// paper-default (10-page) buffer pool. Short mode caps the grid.
func TestDifferentialAgainstBFS(t *testing.T) {
	nSeeds := 50
	if testing.Short() {
		nSeeds = 8
	}
	pools := []int{4, 10}
	for i := 0; i < nSeeds; i++ {
		seed := int64(3000 + i)
		n := 50 + (i%5)*20 // 50..130 nodes
		f := 2 + i%4       // out-degree 2..5
		l := 10 + (i%3)*20 // locality 10, 30, 50
		g, db := randomDAG(t, seed, n, f, l)
		want := bfsReference(n, g.Arcs())
		for _, m := range pools {
			for _, alg := range Algorithms() {
				res, err := Run(db, alg, Query{}, Config{BufferPages: m})
				if err != nil {
					t.Fatalf("seed=%d n=%d f=%d l=%d m=%d: %s failed: %v", seed, n, f, l, m, alg, err)
				}
				for v := int32(1); v <= int32(n); v++ {
					got := sorted(res.Successors[v])
					w := want[v]
					if len(got) != len(w) {
						t.Fatalf("seed=%d n=%d f=%d l=%d m=%d: %s: node %d has %d successors, BFS says %d",
							seed, n, f, l, m, alg, v, len(got), len(w))
					}
					for j := range w {
						if got[j] != w[j] {
							t.Fatalf("seed=%d n=%d f=%d l=%d m=%d: %s: successors of %d differ at rank %d: got %d, want %d",
								seed, n, f, l, m, alg, v, j, got[j], w[j])
						}
					}
				}
			}
		}
	}
}
