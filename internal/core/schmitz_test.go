package core

import (
	"math/rand"
	"sort"
	"testing"

	"tcstudy/internal/graph"
)

// refCyclic computes cyclic reachability by brute force: x reaches y iff
// a path of >= 1 arcs exists (so a node in a cycle reaches itself).
func refCyclic(n int, arcs []graph.Arc) [][]bool {
	reach := make([][]bool, n+1)
	for i := range reach {
		reach[i] = make([]bool, n+1)
	}
	for _, a := range arcs {
		reach[a.From][a.To] = true
	}
	for changed := true; changed; {
		changed = false
		for i := 1; i <= n; i++ {
			for j := 1; j <= n; j++ {
				if !reach[i][j] {
					continue
				}
				for k := 1; k <= n; k++ {
					if reach[j][k] && !reach[i][k] {
						reach[i][k] = true
						changed = true
					}
				}
			}
		}
	}
	return reach
}

func checkCyclicAnswer(t *testing.T, res *Result, reach [][]bool, nodes []int32, n int) {
	t.Helper()
	for _, x := range nodes {
		got := map[int32]bool{}
		for _, v := range res.Successors[x] {
			got[v] = true
		}
		for y := 1; y <= n; y++ {
			if reach[x][y] != got[int32(y)] {
				t.Fatalf("schmitz: reach(%d,%d) = %v, reference %v", x, y, got[int32(y)], reach[x][y])
			}
		}
	}
}

func TestSchmitzCyclicKnownGraph(t *testing.T) {
	// 1 <-> 2 -> 3, 3 -> 4 <-> 5, 6 with a self-loop, 7 isolated.
	arcs := []graph.Arc{
		{From: 1, To: 2}, {From: 2, To: 1}, {From: 2, To: 3},
		{From: 3, To: 4}, {From: 4, To: 5}, {From: 5, To: 4},
		{From: 6, To: 6},
	}
	db := NewDatabase(7, arcs)
	res, err := Run(db, SCHMITZ, Query{}, Config{BufferPages: 8})
	if err != nil {
		t.Fatal(err)
	}
	want := map[int32][]int32{
		1: {1, 2, 3, 4, 5},
		2: {1, 2, 3, 4, 5},
		3: {4, 5},
		4: {4, 5},
		5: {4, 5},
		6: {6}, // self-loop: reaches itself
		7: nil,
	}
	for x, w := range want {
		got := append([]int32(nil), res.Successors[x]...)
		sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
		if len(got) != len(w) {
			t.Fatalf("successors of %d = %v, want %v", x, got, w)
		}
		for i := range w {
			if got[i] != w[i] {
				t.Fatalf("successors of %d = %v, want %v", x, got, w)
			}
		}
	}
}

func TestSchmitzCyclicRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 10; trial++ {
		n := rng.Intn(40) + 5
		var arcs []graph.Arc
		for i := 1; i <= n; i++ {
			for j := 1; j <= n; j++ {
				if i != j && rng.Intn(7) == 0 {
					arcs = append(arcs, graph.Arc{From: int32(i), To: int32(j)})
				}
			}
		}
		db := NewDatabase(n, arcs)
		reach := refCyclic(n, arcs)

		// Full closure.
		res, err := Run(db, SCHMITZ, Query{}, Config{BufferPages: 6})
		if err != nil {
			t.Fatal(err)
		}
		var all []int32
		for v := int32(1); v <= int32(n); v++ {
			all = append(all, v)
		}
		checkCyclicAnswer(t, res, reach, all, n)

		// Selection.
		sources := []int32{int32(rng.Intn(n) + 1), int32(rng.Intn(n) + 1)}
		sel, err := Run(db, SCHMITZ, Query{Sources: sources}, Config{BufferPages: 6})
		if err != nil {
			t.Fatal(err)
		}
		checkCyclicAnswer(t, sel, reach, sources, n)
	}
}

func TestSchmitzMatchesCondensationPipeline(t *testing.T) {
	// Same cyclic graph: Schmitz end-to-end vs condense-then-BTC must
	// agree on reachability.
	rng := rand.New(rand.NewSource(88))
	n := 120
	var arcs []graph.Arc
	for i := 1; i <= n; i++ {
		deg := rng.Intn(4)
		for k := 0; k < deg; k++ {
			j := rng.Intn(n) + 1
			if j != i {
				arcs = append(arcs, graph.Arc{From: int32(i), To: int32(j)})
			}
		}
	}
	g := graph.New(n, arcs)
	cond := g.Condense()
	succ, err := cond.DAG.Closure()
	if err != nil {
		t.Fatal(err)
	}
	expanded := cond.ExpandClosure(succ)

	db := NewDatabase(n, arcs)
	res, err := Run(db, SCHMITZ, Query{}, Config{BufferPages: 8})
	if err != nil {
		t.Fatal(err)
	}
	for x := int32(1); x <= int32(n); x++ {
		a := append([]int32(nil), res.Successors[x]...)
		b := append([]int32(nil), expanded[x]...)
		sort.Slice(a, func(i, j int) bool { return a[i] < a[j] })
		sort.Slice(b, func(i, j int) bool { return b[i] < b[j] })
		if len(a) != len(b) {
			t.Fatalf("node %d: schmitz %d successors, condensation %d", x, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("node %d: answers differ", x)
			}
		}
	}
}

func TestSchmitzSharedCycleListsAreShared(t *testing.T) {
	// All members of one big cycle share a single component list, so the
	// storage cost is one list, not n copies.
	n := 100
	var arcs []graph.Arc
	for i := 1; i <= n; i++ {
		next := i%n + 1
		arcs = append(arcs, graph.Arc{From: int32(i), To: int32(next)})
	}
	db := NewDatabase(n, arcs)
	res, err := Run(db, SCHMITZ, Query{}, Config{BufferPages: 8})
	if err != nil {
		t.Fatal(err)
	}
	for x := int32(1); x <= int32(n); x++ {
		if len(res.Successors[x]) != n {
			t.Fatalf("cycle member %d reaches %d nodes, want %d", x, len(res.Successors[x]), n)
		}
	}
	// One component list of n entries: two slist pages, far below n lists.
	if res.Metrics.Compute.Writes > 10 {
		t.Fatalf("cycle closure wrote %d pages; component sharing broken?",
			res.Metrics.Compute.Writes)
	}
}
