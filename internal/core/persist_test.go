package core

import (
	"os"
	"path/filepath"
	"testing"

	"tcstudy/internal/graphgen"
	"tcstudy/internal/pagedisk"
)

func TestSaveOpenRoundTrip(t *testing.T) {
	g, db := randomDAG(t, 501, 150, 4, 30)
	dir := t.TempDir()

	// Run a query first so temporary files existed and were released; the
	// snapshot must still round-trip cleanly.
	if _, err := Run(db, BTC, Query{}, Config{BufferPages: 8}); err != nil {
		t.Fatal(err)
	}
	if err := SaveDatabase(db, dir); err != nil {
		t.Fatal(err)
	}
	re, err := OpenDatabase(dir)
	if err != nil {
		t.Fatal(err)
	}
	if re.N() != db.N() || re.NumArcs() != db.NumArcs() {
		t.Fatalf("restored n=%d arcs=%d, want n=%d arcs=%d",
			re.N(), re.NumArcs(), db.N(), db.NumArcs())
	}

	// Queries over the restored database give the reference answers and
	// identical I/O accounting.
	sources := graphgen.SourceSet(150, 5, 2)
	want := refSuccessors(t, g, sources)
	for _, alg := range []Algorithm{BTC, SRCH, JKB2, WARREN} {
		orig, err := Run(db, alg, Query{Sources: sources}, Config{BufferPages: 8})
		if err != nil {
			t.Fatal(err)
		}
		rest, err := Run(re, alg, Query{Sources: sources}, Config{BufferPages: 8})
		if err != nil {
			t.Fatal(err)
		}
		checkAnswer(t, alg, rest.Successors, want, false, g)
		if orig.Metrics.TotalIO() != rest.Metrics.TotalIO() {
			t.Fatalf("%s: restored I/O %d != original %d",
				alg, rest.Metrics.TotalIO(), orig.Metrics.TotalIO())
		}
	}
}

func TestOpenDatabaseErrors(t *testing.T) {
	if _, err := OpenDatabase(t.TempDir()); err == nil {
		t.Fatal("opened an empty directory")
	}
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "manifest.gob"), []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenDatabase(dir); err == nil {
		t.Fatal("opened a corrupt manifest")
	}
}

func TestRunReleasesTemporaryFiles(t *testing.T) {
	_, db := randomDAG(t, 502, 150, 4, 30)
	before := db.disk.NumFiles()
	if _, err := Run(db, BTC, Query{}, Config{BufferPages: 8}); err != nil {
		t.Fatal(err)
	}
	// New file slots may exist but must hold no pages.
	for id := before; id < db.disk.NumFiles(); id++ {
		if n := db.disk.NumPages(pagedisk.FileID(id)); n != 0 {
			t.Fatalf("temporary file %d still holds %d pages", id, n)
		}
	}
	// Repeated runs must not accumulate page storage.
	for i := 0; i < 3; i++ {
		if _, err := Run(db, SEMI, Query{Sources: []int32{1}}, Config{BufferPages: 8}); err != nil {
			t.Fatal(err)
		}
	}
	for id := before; id < db.disk.NumFiles(); id++ {
		if n := db.disk.NumPages(pagedisk.FileID(id)); n != 0 {
			t.Fatalf("after repeated runs, file %d holds %d pages", id, n)
		}
	}
}

func TestDatabaseArcsRoundTrip(t *testing.T) {
	arcs, err := graphgen.Generate(graphgen.Params{Nodes: 80, OutDegree: 3, Locality: 15, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	db := NewDatabase(80, arcs)
	got, err := db.Arcs()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != db.NumArcs() {
		t.Fatalf("Arcs returned %d, relation has %d", len(got), db.NumArcs())
	}
	seen := map[[2]int32]bool{}
	for _, a := range got {
		seen[[2]int32{a.From, a.To}] = true
	}
	for _, a := range arcs {
		if !seen[[2]int32{a.From, a.To}] {
			t.Fatalf("arc %v missing from Arcs()", a)
		}
	}
	if db.disk.Stats().Total() != 0 {
		t.Fatal("Arcs() left charged I/O behind")
	}
}

func TestWeightedSaveOpenRoundTrip(t *testing.T) {
	g, db := weightedDB(t, 510, 120, 3, 25)
	want := refWeighted(t, g, MinWeight)
	dir := t.TempDir()
	if err := SaveDatabase(db, dir); err != nil {
		t.Fatal(err)
	}
	re, err := OpenDatabase(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !re.Weighted() {
		t.Fatal("weight column lost in snapshot")
	}
	res, err := RunPaths(re, MinWeight, Query{}, Config{BufferPages: 8})
	if err != nil {
		t.Fatal(err)
	}
	var all []int32
	for v := int32(1); v <= int32(g.N()); v++ {
		all = append(all, v)
	}
	checkPathValues(t, MinWeight, res.Values, want, all)
}
