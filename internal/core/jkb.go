package core

import "tcstudy/internal/slist"

// Jakobsson's Compute_Tree algorithm (Sections 3.6, 4.1 and 6.3):
// the magic graph is processed in forward topological order over
// *immediate predecessor* lists, maintaining for each node x a predecessor
// tree that contains only the nodes special with respect to x — source
// nodes, and nodes where paths from unrelated sources first meet — so each
// tree holds at most about 2|S| nodes. When a source s appears in the tree
// of x, the answer tuple (s, x) is produced and appended to s's output
// list.
//
// The marking analogue (skip a parent already present in the tree being
// built) almost never applies, because a parent appears in the tree only if
// it is itself special; the paper identifies this poor marking utilization,
// and the resulting excess of unions over low-locality arcs, as the
// algorithm's weakness on wide graphs (Sections 6.3.3–6.3.4).
//
// Trees are stored as (node, parent) pairs in parent-before-child order;
// a parent value of zero marks a root.
//
// JKB builds the predecessor lists from the source-clustered relation
// alone; JKB2 probes the dual destination-clustered relation
// (see buildPredLists). Everything after that is identical.
func (e *engine) runJKB(dual bool) error {
	var preds *slist.Store
	if err := e.timedPhase(true, func() error {
		// discover() identifies the magic graph; Compute_Tree needs no
		// successor lists, only the predecessor lists built below.
		if _, err := e.discover(); err != nil {
			return err
		}
		// Compute_Tree treats a full closure as a selection with S = all
		// nodes: every node is then special and the trees grow to the
		// full predecessor sets, which is why the paper finds it
		// uncompetitive for CTC (Figure 7).
		if e.q.IsFull() {
			for v := 1; v <= e.db.n; v++ {
				e.isSource[v] = true
			}
		}
		var err error
		preds, err = e.buildPredLists(dual)
		return err
	}); err != nil {
		return err
	}

	trees := slist.NewStore(e.pool, "predecessor-trees", e.db.n+1, e.listPolicy)
	if e.cfg.DisableClustering {
		trees.SetClustering(false)
	}
	e.store = trees

	if err := e.timedPhase(false, func() error {
		return e.computeTrees(preds, trees)
	}); err != nil {
		return err
	}

	// Extract the answer from the stored trees after measurement ends:
	// (s, x) holds for every source s in the tree of x. The trees are the
	// algorithm's materialized result (the paper notes their "extra parent
	// information" as JKB's residual overhead at s = n, Section 6.3.6).
	e.answer = make(map[int32][]int32)
	for _, s := range e.q.Sources {
		e.answer[s] = nil
	}
	if e.q.IsFull() {
		for _, x := range e.order {
			e.answer[x] = nil
		}
	}
	for _, x := range e.order {
		pairs, err := trees.ReadAll(x)
		if err != nil {
			return err
		}
		for i := 0; i+1 < len(pairs); i += 2 {
			u := pairs[i]
			if e.isSource[u] && u != x {
				e.answer[u] = append(e.answer[u], x)
			}
		}
	}
	return nil
}

// treeNode is one entry of an in-memory predecessor tree under
// construction.
type treeNode struct {
	node   int32
	parent int32 // 0 for roots
}

func (e *engine) computeTrees(preds, trees *slist.Store) error {
	n := e.db.n
	// rootCount[v] is the number of roots of v's finalized tree; a node is
	// special if it is a source or its tree has at least two roots (paths
	// from unrelated sources meet there).
	rootCount := make([]int32, n+1)
	special := func(v int32) bool { return e.isSource[v] || rootCount[v] >= 2 }

	present := make(map[int32]int32) // node -> parent, tree under construction
	var ordered []treeNode
	var predBuf []int32
	var flat []int32
	var it, tit slist.Iterator // reused across the hot loop

	for _, x := range e.order { // forward topological order
		for k := range present {
			delete(present, k)
		}
		ordered = ordered[:0]

		// Read x's immediate predecessors (stored nearest-first).
		predBuf = predBuf[:0]
		it.Reset(preds, x)
		for {
			p, ok := it.Next()
			if !ok {
				break
			}
			e.met.SuccessorsFetched++
			predBuf = append(predBuf, p)
		}
		it.Close()
		if err := it.Err(); err != nil {
			return err
		}

		for _, p := range predBuf {
			e.met.ArcsConsidered++
			if _, ok := present[p]; ok && !e.cfg.DisableMarking {
				// p is already in the tree: its rooted contribution came
				// along with an earlier parent's tree. This is the marking
				// analogue, and it fires only for special parents.
				e.met.ArcsMarked++
				continue
			}
			e.met.ListUnions++
			e.met.noteUnmarked(e.levels[p] - e.levels[x])

			// Merge p's contribution: its own tree, rooted under p when p
			// is special.
			rooted := special(p)
			if rooted {
				e.met.TuplesGenerated++
				if _, ok := present[p]; !ok {
					present[p] = 0
					ordered = append(ordered, treeNode{node: p, parent: 0})
				} else {
					e.met.Duplicates++
				}
			}
			tit.Reset(trees, p)
			for {
				u, ok := tit.Next()
				if !ok {
					break
				}
				par, ok := tit.Next()
				if !ok {
					tit.Close()
					return errMalformedTree(p)
				}
				e.met.SuccessorsFetched += 2
				e.met.TuplesGenerated++
				if par == 0 && rooted {
					par = p
				}
				if _, dup := present[u]; dup {
					e.met.Duplicates++
					continue
				}
				present[u] = par
				ordered = append(ordered, treeNode{node: u, parent: par})
			}
			tit.Close()
			if err := tit.Err(); err != nil {
				return err
			}
		}

		// Prune subtrees that carry no source: they cannot answer any
		// reachability question and, left in place, would let join nodes
		// proliferate past the 2|S| bound of [15]. A kept node's parent is
		// always kept (its subtree contains the kept child's source), so
		// pruning preserves tree connectivity. Entries are parent-first,
		// so one reverse sweep propagates "contains a source" upward.
		if len(ordered) > 0 {
			keep := make(map[int32]bool, len(ordered))
			for i := len(ordered) - 1; i >= 0; i-- {
				tn := ordered[i]
				if e.isSource[tn.node] || keep[tn.node] {
					keep[tn.node] = true
					if tn.parent != 0 {
						keep[tn.parent] = true
					}
				}
			}
			kept := ordered[:0]
			for _, tn := range ordered {
				if keep[tn.node] {
					kept = append(kept, tn)
				} else {
					delete(present, tn.node)
				}
			}
			ordered = kept
		}

		// If x is a source it becomes the single root of its own tree.
		roots := int32(0)
		for _, tn := range ordered {
			if tn.parent == 0 {
				roots++
			}
		}
		if e.isSource[x] {
			for i := range ordered {
				if ordered[i].parent == 0 {
					ordered[i].parent = x
				}
			}
			ordered = append([]treeNode{{node: x, parent: 0}}, ordered...)
			roots = 1
		}
		rootCount[x] = roots

		// Materialize T_x. Every source in the tree yields one answer
		// tuple (s, x); the stored trees are the result representation.
		flat = flat[:0]
		for _, tn := range ordered {
			flat = append(flat, tn.node, tn.parent)
			e.met.DistinctTuples++
			if e.isSource[tn.node] && tn.node != x {
				e.met.SourceTuples++
			}
		}
		if err := trees.AppendAll(x, flat); err != nil {
			return err
		}
	}

	// Write the result trees out to disk.
	return e.pool.FlushFile(trees.File())
}

type errMalformedTree int32

func (e errMalformedTree) Error() string {
	return "core: malformed predecessor tree (odd entry count)"
}
