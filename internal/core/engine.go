package core

import (
	"fmt"
	"sync"
	"time"

	"tcstudy/internal/buffer"
	"tcstudy/internal/graph"
	"tcstudy/internal/graphgen"
	"tcstudy/internal/obsv"
	"tcstudy/internal/pagedisk"
	"tcstudy/internal/relation"
	"tcstudy/internal/slist"
)

// Algorithm names one of the studied transitive closure algorithms.
type Algorithm string

// The candidate algorithms of the study (Section 3).
const (
	BTC  Algorithm = "btc"  // basic graph-based algorithm [12]
	HYB  Algorithm = "hyb"  // Hybrid with successor-list blocking [2]
	BJ   Algorithm = "bj"   // Jiang's BFS with the single-parent optimization [18]
	SRCH Algorithm = "srch" // per-source search [14, 15]
	SPN  Algorithm = "spn"  // Dar/Jagadish spanning tree algorithm [6]
	JKB  Algorithm = "jkb"  // Jakobsson's Compute_Tree, single relation [15]
	JKB2 Algorithm = "jkb2" // Compute_Tree over the dual representation [15]

	// The baseline families the paper's related-work section reports the
	// graph-based algorithms beating (Section 8): the iterative Seminaive
	// evaluation and the matrix-based Blocked Warren algorithm.
	SEMI   Algorithm = "seminaive"
	WARREN Algorithm = "warren"

	// SCHMITZ is Schmitz's SCC-based algorithm ([23], studied against BTC
	// in [12]): one Tarjan pass closes components as they pop, handling
	// cyclic graphs natively.
	SCHMITZ Algorithm = "schmitz"

	// BITM is the dense-core bit-matrix strategy: the SCC condensation is
	// closed by the in-memory word-parallel kernel (internal/bitmatrix)
	// when it fits the size/density threshold, with answers expanded back
	// through component membership; oversized condensations fall back to
	// BTC (Schmitz when cyclic). Cyclic-native, like SCHMITZ.
	BITM Algorithm = "bitmatrix"
)

// Algorithms lists every implemented algorithm: the paper's seven
// candidates, the two related-work baselines, and this repository's
// additions (Schmitz and the dense-core bit-matrix strategy).
func Algorithms() []Algorithm {
	return []Algorithm{BTC, HYB, BJ, SRCH, SPN, JKB, JKB2, SEMI, WARREN, SCHMITZ, BITM}
}

// Config carries the system parameters of an experiment (Section 5.1).
type Config struct {
	// BufferPages is M, the buffer pool size in pages (10, 20 or 50 in the
	// study). Must be at least 4.
	BufferPages int
	// PagePolicy is the page replacement policy name (default "lru").
	PagePolicy string
	// ListPolicy is the list replacement policy name (default "smallest").
	ListPolicy string
	// ILIMIT is the fraction of the buffer pool reserved for the Hybrid
	// algorithm's diagonal block (Figure 6). Zero makes HYB identical to
	// BTC, the configuration the paper found best.
	ILIMIT float64
	// DisableMarking turns off the marking optimization (ablation).
	DisableMarking bool
	// ChargeIndexIO routes relation probes through the disk-resident
	// B+-tree, charging index interior pages — the cost the paper's model
	// treats as free (ablation).
	ChargeIndexIO bool
	// DisableClustering turns off inter-list clustering (ablation).
	DisableClustering bool
	// Parallelism bounds the worker goroutines a multi-source PTC query may
	// partition its sources across (0 or 1 runs the paper's serial engine).
	// Each worker executes the full two-phase engine over its slice of the
	// sources with a private buffer pool of BufferPages frames and private
	// temporary files; the merged metric record is the sum of the workers'
	// records (restructuring work repeats per worker, so parallel runs
	// report more total I/O than a serial run — they trade pages for
	// wall-clock time). CTC and single-source queries ignore the setting.
	Parallelism int
	// Trace, when non-nil, is the parent span the engine hangs its phase
	// spans under: "restructure" and "compute" spans carrying the exact
	// page-I/O deltas of the metric record, with per-source expansion spans
	// (SRCH) and per-worker partition spans (Parallelism) nested inside.
	// Tracing costs one nil check per phase when disabled. The field never
	// participates in behaviour, caching or persistence — two runs differing
	// only in Trace perform identical work.
	Trace *obsv.Span
}

func (c Config) withDefaults() Config {
	if c.BufferPages == 0 {
		c.BufferPages = 10
	}
	if c.PagePolicy == "" {
		c.PagePolicy = "lru"
	}
	if c.ListPolicy == "" {
		c.ListPolicy = "smallest"
	}
	return c
}

// Database is the stored input: the graph relation clustered and indexed on
// the source attribute, and the dual (inverse) relation clustered and
// indexed on the destination attribute used by JKB2 (Section 4.1). Both
// live on one page store — normally the simulated disk, optionally wrapped
// with fault injection via SwapStore; building them is not charged to
// queries.
type Database struct {
	disk pagedisk.Store
	rel  *relation.Relation
	inv  *relation.Relation
	// wcol is the arc-weight column of a weighted database (nil for the
	// paper's unweighted reachability databases); used by the weighted
	// generalized-closure aggregates.
	wcol *relation.WeightColumn
	// btree/invBtree are disk-resident clustered indexes used when a run
	// asks for index interior I/O to be charged (Config.ChargeIndexIO);
	// the default probes use the paper's free in-memory sparse index.
	btree    *relation.BTree
	invBtree *relation.BTree
	n        int

	// Dataset fingerprint, computed lazily on first use (the stored
	// relation is immutable once built). See Fingerprint.
	fpOnce sync.Once
	fp     uint64
	fpErr  error
}

// NewDatabase stores the arcs of a graph over nodes 1..n.
func NewDatabase(n int, arcs []graph.Arc) *Database {
	disk := pagedisk.New()
	ts := graphgen.Tuples(arcs)
	db := &Database{
		disk: disk,
		rel:  relation.Build(disk, "graph", ts),
		inv:  relation.BuildInverse(disk, "graph-inverse", ts),
		n:    n,
	}
	db.buildIndexes()
	// The base relations and indexes are complete and immutable from here
	// on: seal them so concurrent queries read them lock-free and copy-free.
	disk.SealAll()
	return db
}

// buildIndexes bulk-loads the disk-resident B+-trees (database
// construction, not charged to queries).
func (db *Database) buildIndexes() {
	var err error
	if db.btree, err = relation.BuildBTree(db.disk, "graph-btree", db.rel); err != nil {
		panic(fmt.Sprintf("core: btree build failed: %v", err))
	}
	if db.invBtree, err = relation.BuildBTree(db.disk, "graph-inverse-btree", db.inv); err != nil {
		panic(fmt.Sprintf("core: inverse btree build failed: %v", err))
	}
}

// NewDatabaseWeighted stores a weighted graph: weight is consulted once
// per arc at build time and the weights land in a column file aligned with
// the relation. All reachability algorithms work unchanged; the weighted
// path aggregates (MinWeight, MaxWeight) become available.
func NewDatabaseWeighted(n int, arcs []graph.Arc, weight func(graph.Arc) int32) (*Database, error) {
	disk := pagedisk.New()
	ts := graphgen.Tuples(arcs)
	ws := make([]int32, len(arcs))
	for i, a := range arcs {
		ws[i] = weight(a)
	}
	rel, wcol, err := relation.BuildWeighted(disk, "graph", ts, ws)
	if err != nil {
		return nil, err
	}
	db := &Database{
		disk: disk,
		rel:  rel,
		inv:  relation.BuildInverse(disk, "graph-inverse", ts),
		wcol: wcol,
		n:    n,
	}
	db.buildIndexes()
	disk.SealAll()
	return db, nil
}

// Weighted reports whether the database carries arc weights.
func (db *Database) Weighted() bool { return db.wcol != nil }

// Store exposes the page store queries run against.
func (db *Database) Store() pagedisk.Store { return db.disk }

// SwapStore replaces the database's page store and returns the previous
// one. Its intended use is layering fault injection over an already-built
// database (wrap the current store with faultdisk, swap it in, and swap
// the original back to return to clean operation); the replacement must
// present the same files and pages. Swapping while queries are in flight
// is the caller's race to avoid.
func (db *Database) SwapStore(s pagedisk.Store) pagedisk.Store {
	old := db.disk
	db.disk = s
	return old
}

// N reports the number of nodes in the stored graph.
func (db *Database) N() int { return db.n }

// NumArcs reports the number of stored (distinct) arcs.
func (db *Database) NumArcs() int { return db.rel.NumTuples() }

// Relation exposes the forward relation (for tools and tests).
func (db *Database) Relation() *relation.Relation { return db.rel }

// Arcs reads the stored arc list back out of the relation (e.g. after
// OpenDatabase). The scan is a catalog operation and is not charged to any
// query: disk statistics are reset afterwards.
func (db *Database) Arcs() ([]graph.Arc, error) {
	pol, err := buffer.NewPolicy("lru", 8)
	if err != nil {
		return nil, err
	}
	pool := buffer.New(db.disk, 8, pol)
	arcs := make([]graph.Arc, 0, db.rel.NumTuples())
	if err := db.rel.Scan(pool, func(t relation.Tuple) bool {
		arcs = append(arcs, graph.Arc{From: t.Key, To: t.Val})
		return true
	}); err != nil {
		return nil, err
	}
	db.disk.ResetStats()
	return arcs, nil
}

// Query specifies a transitive closure computation. An empty source set
// requests the complete transitive closure (CTC); otherwise the partial
// transitive closure (PTC) of the given source nodes is computed.
type Query struct {
	Sources []int32
}

// IsFull reports whether the query asks for the complete closure.
func (q Query) IsFull() bool { return len(q.Sources) == 0 }

// Result is the outcome of a run: the metrics record and the computed
// successor sets (for CTC, of every node; for PTC, of the source nodes).
// Successor extraction happens after measurement ends and is not charged.
type Result struct {
	Metrics    Metrics
	Successors map[int32][]int32
}

// newPagePolicy is the shared construction helper of the Run, Session and
// RunPaths entry points.
func newPagePolicy(cfg Config) (buffer.Policy, error) {
	return buffer.NewPolicy(cfg.PagePolicy, cfg.BufferPages)
}

func fileID(id int) pagedisk.FileID { return pagedisk.FileID(id) }

// validate checks a query/config pair against the database. Shared by the
// Run, RunConcurrent and parallel-worker entry points.
func validate(db *Database, q Query, cfg Config) error {
	if cfg.BufferPages < 4 {
		return fmt.Errorf("core: buffer pool must have at least 4 pages, got %d", cfg.BufferPages)
	}
	if _, err := buffer.NewPolicy(cfg.PagePolicy, cfg.BufferPages); err != nil {
		return err
	}
	if _, err := slist.NewListPolicy(cfg.ListPolicy); err != nil {
		return err
	}
	for _, s := range q.Sources {
		if s < 1 || s > int32(db.n) {
			return fmt.Errorf("core: source node %d outside 1..%d", s, db.n)
		}
	}
	return nil
}

// Run executes one query with one algorithm under the given configuration.
func Run(db *Database, alg Algorithm, q Query, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	if err := validate(db, q, cfg); err != nil {
		return nil, err
	}
	// Each run measures from a cold buffer pool and a clean counter state,
	// exactly as in the paper's per-query experiments. Temporary files the
	// run creates (successor lists, trees, sort runs) are released when it
	// finishes — the answer has been materialized by then.
	db.disk.ResetStats()
	if parallelEligible(alg, q, cfg) {
		return runParallelSources(db, alg, q, cfg)
	}
	return runOwned(db, alg, q, cfg)
}

// engine is the per-run state shared by the algorithm implementations.
type engine struct {
	db         *Database
	cfg        Config
	pool       *buffer.Pool
	q          Query
	met        Metrics
	listPolicy slist.ListPolicy

	// Restructuring-phase outputs (see restructure.go).
	store      *slist.Store // successor lists / trees, expanded in place
	order      []int32      // magic-graph nodes in topological order
	topoPos    []int32      // node -> position in order; -1 if outside
	levels     []int32      // node levels within the magic graph
	childCount []int32      // immediate-successor count per node
	isSource   []bool
	posCount   []int32 // SPN: result entries (positive values) per tree

	// Weighted generalized closure support: when needWeights is set the
	// restructuring probes also read the weight column into adjW.
	needWeights bool
	adjW        [][]int32

	// answer collects the final successor sets for validation; it is
	// filled after metrics are frozen (flat algorithms) or as a free
	// by-product (JKB), never with charged I/O beyond what the paper's
	// algorithms perform.
	answer map[int32][]int32

	// phaseSpan is the open span of the phase currently under timedPhase
	// (nil when tracing is off), so algorithms can nest finer-grained spans
	// — SRCH's per-source expansions — inside it.
	phaseSpan *obsv.Span
}

// sources returns the effective source set: the query's sources for PTC, or
// every node for CTC (the paper treats CTC as s = n, cf. Figure 14 where
// the curves converge at s = 2000).
func (e *engine) sources() []int32 {
	if !e.q.IsFull() {
		return e.q.Sources
	}
	all := make([]int32, e.db.n)
	for i := range all {
		all[i] = int32(i + 1)
	}
	return all
}

// timedPhase runs fn, attributing elapsed time and I/O to the given phase.
// Under tracing it additionally opens a phase span whose I/O delta is set
// from the very same counter difference added to the metric record, which
// is what makes span I/O reconcile byte-exactly with the record.
func (e *engine) timedPhase(restructure bool, fn func() error) error {
	var sp *obsv.Span
	if e.cfg.Trace != nil {
		name := "compute"
		if restructure {
			name = "restructure"
		}
		sp = e.cfg.Trace.Child(name, obsv.KV("algorithm", string(e.met.Algorithm)))
		e.phaseSpan = sp
	}
	snap := snapshot(e.pool)
	start := time.Now()
	err := fn()
	elapsed := time.Since(start)
	io, buf := snap.delta(e.pool)
	if sp != nil {
		sp.SetIO(obsv.IO{Reads: buf.Reads, Writes: buf.Writes,
			Hits: buf.Hits, Misses: buf.Misses, Evicts: buf.Evicts})
		sp.Finish()
		e.phaseSpan = nil
	}
	if restructure {
		e.met.Restructure.Reads += io.Reads
		e.met.Restructure.Writes += io.Writes
		e.met.RestructureTime += elapsed
	} else {
		e.met.Compute.Reads += io.Reads
		e.met.Compute.Writes += io.Writes
		e.met.ComputeTime += elapsed
		e.met.ComputeBuffer.Hits += buf.Hits
		e.met.ComputeBuffer.Misses += buf.Misses
		e.met.ComputeBuffer.Evicts += buf.Evicts
	}
	return err
}
