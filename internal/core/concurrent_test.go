package core

import (
	"testing"

	"tcstudy/internal/graphgen"
)

func TestConcurrentMatchesSerial(t *testing.T) {
	g, db := randomDAG(t, 1001, 250, 4, 40)
	baseFiles := db.disk.NumFiles() // persistent files: relations + indexes
	var reqs []Request
	type expectation struct {
		io      int64
		tuples  int64
		sources []int32
	}
	var want []expectation
	algs := []Algorithm{BTC, BJ, SRCH, SPN, JKB2, SEMI, WARREN, HYB}
	for i, alg := range algs {
		sources := graphgen.SourceSet(250, 3+i, int64(i))
		cfg := Config{BufferPages: 6 + i, ILIMIT: 0.25}
		// Serial reference first.
		res, err := Run(db, alg, Query{Sources: sources}, cfg)
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, expectation{
			io:      res.Metrics.TotalIO(),
			tuples:  res.Metrics.DistinctTuples,
			sources: sources,
		})
		reqs = append(reqs, Request{Alg: alg, Query: Query{Sources: sources}, Cfg: cfg})
	}

	resps := RunConcurrent(db, reqs)
	if len(resps) != len(reqs) {
		t.Fatalf("got %d responses", len(resps))
	}
	wantSets := refSuccessors(t, g, nil) // superset reference per node
	for i, r := range resps {
		if r.Err != nil {
			t.Fatalf("request %d (%s): %v", i, reqs[i].Alg, r.Err)
		}
		m := r.Result.Metrics
		if m.TotalIO() != want[i].io {
			t.Errorf("request %d (%s): concurrent I/O %d != serial %d",
				i, reqs[i].Alg, m.TotalIO(), want[i].io)
		}
		if m.DistinctTuples != want[i].tuples {
			t.Errorf("request %d (%s): tuples %d != serial %d",
				i, reqs[i].Alg, m.DistinctTuples, want[i].tuples)
		}
		for _, s := range want[i].sources {
			if len(r.Result.Successors[s]) != len(wantSets[s]) {
				t.Errorf("request %d (%s): wrong successor count for %d",
					i, reqs[i].Alg, s)
			}
		}
	}

	// The batch's temporary files are gone.
	for id := baseFiles; id < db.disk.NumFiles(); id++ {
		if n := db.disk.NumPages(fileID(id)); n != 0 {
			t.Fatalf("temp file %d still holds %d pages", id, n)
		}
	}
}

func TestConcurrentErrorsIsolated(t *testing.T) {
	_, db := randomDAG(t, 1002, 100, 3, 20)
	resps := RunConcurrent(db, []Request{
		{Alg: BTC, Query: Query{}, Cfg: Config{BufferPages: 8}},
		{Alg: Algorithm("nope"), Query: Query{}, Cfg: Config{BufferPages: 8}},
		{Alg: BTC, Query: Query{Sources: []int32{999}}, Cfg: Config{BufferPages: 8}},
		{Alg: SRCH, Query: Query{Sources: []int32{5}}, Cfg: Config{BufferPages: 2}},
	})
	if resps[0].Err != nil {
		t.Fatalf("valid request failed: %v", resps[0].Err)
	}
	for i := 1; i < 4; i++ {
		if resps[i].Err == nil {
			t.Fatalf("invalid request %d succeeded", i)
		}
	}
}

func TestConcurrentEmptyBatch(t *testing.T) {
	_, db := randomDAG(t, 1003, 20, 2, 5)
	if resps := RunConcurrent(db, nil); len(resps) != 0 {
		t.Fatalf("empty batch returned %d responses", len(resps))
	}
}

func TestConcurrentManyIdenticalQueries(t *testing.T) {
	// Hammer one database with identical queries: all must agree.
	_, db := randomDAG(t, 1004, 200, 4, 30)
	q := Query{Sources: []int32{3, 50, 120}}
	cfg := Config{BufferPages: 8}
	var reqs []Request
	for i := 0; i < 16; i++ {
		reqs = append(reqs, Request{Alg: BTC, Query: q, Cfg: cfg})
	}
	resps := RunConcurrent(db, reqs)
	first := resps[0]
	if first.Err != nil {
		t.Fatal(first.Err)
	}
	for i, r := range resps[1:] {
		if r.Err != nil {
			t.Fatalf("run %d: %v", i+1, r.Err)
		}
		if r.Result.Metrics.TotalIO() != first.Result.Metrics.TotalIO() {
			t.Fatalf("run %d I/O %d differs from run 0's %d",
				i+1, r.Result.Metrics.TotalIO(), first.Result.Metrics.TotalIO())
		}
		for s, succ := range first.Result.Successors {
			if len(r.Result.Successors[s]) != len(succ) {
				t.Fatalf("run %d disagrees on node %d", i+1, s)
			}
		}
	}
}

// TestConcurrentStressSmallBuffers floods the engine with far more
// simultaneous requests than any single batch the study ran — a mixed
// algorithm load over deliberately tiny buffer pools, the regime where
// page replacement churns hardest — and checks every per-request metric
// record against its solo-run reference. Run under -race (CI does) it also
// stresses the shared disk, catalog and temp-file paths for data races.
func TestConcurrentStressSmallBuffers(t *testing.T) {
	_, db := randomDAG(t, 1005, 400, 4, 30)
	baseFiles := db.disk.NumFiles()

	// A pool of distinct request shapes; each is solo-run first to pin the
	// reference record.
	type shape struct {
		req    Request
		io     int64
		tuples int64
		gen    int64
	}
	algs := []Algorithm{BTC, BJ, SRCH, SPN, JKB2, HYB, SEMI, SCHMITZ}
	var shapes []shape
	for i, alg := range algs {
		req := Request{
			Alg:   alg,
			Query: Query{Sources: graphgen.SourceSet(400, 2+i%4, int64(i))},
			Cfg:   Config{BufferPages: 4 + i%3, ILIMIT: 0.25},
		}
		res, err := Run(db, req.Alg, req.Query, req.Cfg)
		if err != nil {
			t.Fatalf("solo %s: %v", alg, err)
		}
		shapes = append(shapes, shape{
			req:    req,
			io:     res.Metrics.TotalIO(),
			tuples: res.Metrics.DistinctTuples,
			gen:    res.Metrics.TuplesGenerated,
		})
	}

	// 6 simultaneous instances of every shape in one batch.
	const copies = 6
	var reqs []Request
	for c := 0; c < copies; c++ {
		for _, sh := range shapes {
			reqs = append(reqs, sh.req)
		}
	}
	resps := RunConcurrent(db, reqs)
	for i, r := range resps {
		sh := shapes[i%len(shapes)]
		if r.Err != nil {
			t.Fatalf("request %d (%s): %v", i, sh.req.Alg, r.Err)
		}
		m := r.Result.Metrics
		if m.TotalIO() != sh.io {
			t.Errorf("request %d (%s): I/O %d != solo %d", i, sh.req.Alg, m.TotalIO(), sh.io)
		}
		if m.DistinctTuples != sh.tuples {
			t.Errorf("request %d (%s): tuples %d != solo %d", i, sh.req.Alg, m.DistinctTuples, sh.tuples)
		}
		if m.TuplesGenerated != sh.gen {
			t.Errorf("request %d (%s): generated %d != solo %d", i, sh.req.Alg, m.TuplesGenerated, sh.gen)
		}
	}

	// The flood's temporary storage is fully released.
	for id := baseFiles; id < db.disk.NumFiles(); id++ {
		if n := db.disk.NumPages(fileID(id)); n != 0 {
			t.Fatalf("temp file %d still holds %d pages", id, n)
		}
	}
}
