package core

import (
	"tcstudy/internal/bitset"
	"tcstudy/internal/buffer"
	"tcstudy/internal/obsv"
	"tcstudy/internal/slist"
)

// runSRCH executes the Search algorithm (Section 3.4): each source node is
// expanded independently by a depth-first search over the base relation.
// There is no restructuring of non-source nodes and no immediate-successor
// optimization — the source's list is unioned with the *immediate*
// successor list of every node reachable from it, so a multi-source query
// with k sources behaves like k single-source queries. Per Section 4.1 the
// search replaces the preprocessing phase and no computation phase remains;
// following Figure 13 we report the whole run under the computation-phase
// buffer statistics so its hit ratio is comparable.
func (e *engine) runSRCH() error {
	n := e.db.n
	e.store = slist.NewStore(e.pool, "source-lists", n+1, e.listPolicy)
	if e.cfg.DisableClustering {
		e.store.SetClustering(false)
	}
	e.answer = make(map[int32][]int32)

	srcs := e.sources() // every node when a full closure is requested
	err := e.timedPhase(false, func() error {
		member := bitset.New(n + 1) // reused visited/member set
		var stack []int32
		var childBuf []int32
		for _, s := range srcs {
			// Per-source expansion span: SRCH is the one algorithm whose
			// work decomposes naturally per source, so a trace shows which
			// source paid which pages.
			var srcSpan *obsv.Span
			var srcBase buffer.Stats
			if e.phaseSpan != nil {
				srcSpan = e.phaseSpan.Child("source", obsv.KV("node", s))
				srcBase = e.pool.Stats()
			}
			member.Clear()
			member.Add(s) // a node is not its own successor in a DAG
			stack = append(stack[:0], s)
			for len(stack) > 0 {
				y := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				// Union S_s with the immediate successor list of y, read
				// from the relation through the clustered index.
				e.met.ListUnions++
				childBuf = childBuf[:0]
				if _, err := e.probeRel(y, func(c int32) bool {
					childBuf = append(childBuf, c)
					return true
				}); err != nil {
					return err
				}
				exp := childBuf[:0]
				for _, c := range childBuf {
					e.met.ArcsConsidered++
					e.met.SuccessorsFetched++
					e.met.TuplesGenerated++
					if member.TestAndAdd(c) {
						e.met.Duplicates++
						continue
					}
					exp = append(exp, c)
				}
				if err := e.store.AppendAll(s, exp); err != nil {
					return err
				}
				// Depth-first continuation from the newly found successors.
				for i := len(exp) - 1; i >= 0; i-- {
					stack = append(stack, exp[i])
				}
			}
			e.met.DistinctTuples += int64(e.store.Len(s))
			if srcSpan != nil {
				d := e.pool.Stats().Sub(srcBase)
				srcSpan.SetIO(obsv.IO{Reads: d.Reads, Writes: d.Writes,
					Hits: d.Hits, Misses: d.Misses, Evicts: d.Evicts})
				srcSpan.Annotate(obsv.KV("successors", e.store.Len(s)))
				srcSpan.Finish()
			}
		}
		// Write the source lists out. Flushing must happen after the last
		// append: growing a later source's list can split a page and
		// relocate an earlier list onto fresh pages.
		for _, s := range srcs {
			if err := e.store.FlushList(s); err != nil {
				return err
			}
		}
		// Search expands only source lists: selection efficiency is 1.
		e.met.SourceTuples = e.met.DistinctTuples
		e.store.DiscardAll()
		return nil
	})
	if err != nil {
		return err
	}
	for _, s := range srcs {
		vals, err := e.store.ReadAll(s)
		if err != nil {
			return err
		}
		e.answer[s] = vals
	}
	return nil
}
