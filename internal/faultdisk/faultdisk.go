// Package faultdisk wraps any pagedisk.Store with deterministic,
// seed-driven fault injection.
//
// The simulated disk behaves perfectly; production storage does not. This
// package provides the failpoints the chaos harness (internal/chaos) and
// the robustness tests drive:
//
//   - probabilistic per-op failures: each read/write/alloc fails
//     independently with a configured probability, drawn from a seeded
//     PRNG, so a run is exactly reproducible from (seed, probabilities);
//   - scripted failures: a Schedule names exact operations to fail
//     ("read@17" fails the 17th read), for replaying a failure found by a
//     randomized run and for pinning precise error paths in tests;
//   - simulated latency: per-op tick charges accumulate in a counter, so
//     tests can assert cost models without real sleeping.
//
// Injected failures are transient in the sense of pagedisk.IsTransient:
// the wrapped store is intact and the same operation succeeds once the
// failpoint has fired. Torn and partial writes for the OS-file persist
// paths (pagedisk snapshots, index files) live in torn.go.
package faultdisk

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"sync"

	"tcstudy/internal/pagedisk"
)

// Op names a store operation kind subject to injection.
type Op uint8

// The injectable operation kinds.
const (
	OpRead Op = iota
	OpWrite
	OpAlloc
	numOps
)

func (o Op) String() string {
	switch o {
	case OpRead:
		return "read"
	case OpWrite:
		return "write"
	case OpAlloc:
		return "alloc"
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// parseOp is the inverse of Op.String.
func parseOp(s string) (Op, error) {
	switch s {
	case "read":
		return OpRead, nil
	case "write":
		return OpWrite, nil
	case "alloc":
		return OpAlloc, nil
	}
	return 0, fmt.Errorf("faultdisk: unknown op %q (have read, write, alloc)", s)
}

// Fault is one scripted failpoint: the Seq'th operation (0-based, counted
// separately per kind) of kind Op fails.
type Fault struct {
	Op  Op
	Seq int64
}

func (f Fault) String() string { return fmt.Sprintf("%s@%d", f.Op, f.Seq) }

// Schedule is a scripted set of failpoints. Its string form
// ("read@17,write@3") is what failing chaos runs print for replay.
type Schedule []Fault

func (s Schedule) String() string {
	parts := make([]string, len(s))
	for i, f := range s {
		parts[i] = f.String()
	}
	return strings.Join(parts, ",")
}

// ParseSchedule parses the string form produced by Schedule.String.
// An empty string is the empty schedule.
func ParseSchedule(s string) (Schedule, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, nil
	}
	var out Schedule
	for _, part := range strings.Split(s, ",") {
		op, seqStr, ok := strings.Cut(strings.TrimSpace(part), "@")
		if !ok {
			return nil, fmt.Errorf("faultdisk: bad failpoint %q (want op@seq)", part)
		}
		o, err := parseOp(op)
		if err != nil {
			return nil, err
		}
		seq, err := strconv.ParseInt(seqStr, 10, 64)
		if err != nil || seq < 0 {
			return nil, fmt.Errorf("faultdisk: bad sequence number in %q", part)
		}
		out = append(out, Fault{Op: o, Seq: seq})
	}
	return out, nil
}

// Options configures a wrapped store. The zero value injects nothing.
type Options struct {
	// Seed drives the probabilistic failure draws. Two stores wrapped with
	// equal Options inject faults at identical operation sequences.
	Seed int64
	// ReadFailProb, WriteFailProb and AllocFailProb are independent per-op
	// failure probabilities in [0, 1].
	ReadFailProb  float64
	WriteFailProb float64
	AllocFailProb float64
	// Schedule names exact operations to fail, on top of any probabilistic
	// injection.
	Schedule Schedule
	// ReadLatency and WriteLatency are simulated ticks charged per
	// successful operation, accumulated in Counters.Latency. No real time
	// passes; the counter exists so tests can assert latency accounting.
	ReadLatency  int64
	WriteLatency int64
}

// String renders the options compactly for replay instructions.
func (o Options) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "seed=%d", o.Seed)
	if o.ReadFailProb > 0 {
		fmt.Fprintf(&b, " pread=%g", o.ReadFailProb)
	}
	if o.WriteFailProb > 0 {
		fmt.Fprintf(&b, " pwrite=%g", o.WriteFailProb)
	}
	if o.AllocFailProb > 0 {
		fmt.Fprintf(&b, " palloc=%g", o.AllocFailProb)
	}
	if len(o.Schedule) > 0 {
		fmt.Fprintf(&b, " schedule=%s", o.Schedule)
	}
	return b.String()
}

// Counters reports a wrapped store's activity.
type Counters struct {
	Reads, Writes, Allocs int64 // operations attempted, injected or not
	Injected              int64 // operations failed by injection
	Latency               int64 // simulated ticks accumulated
}

// ErrInjected is the sentinel every injected failure matches with
// errors.Is. It also matches pagedisk.ErrIOInjected consumers via
// pagedisk.IsTransient, which reports true for these errors.
var ErrInjected = errors.New("faultdisk: injected storage fault")

// Error is one injected failure, carrying the operation identity for
// diagnostics and replay.
type Error struct {
	Op  Op
	Seq int64 // per-kind operation sequence number that failed
}

func (e *Error) Error() string {
	return fmt.Sprintf("faultdisk: injected %s failure at %s@%d", e.Op, e.Op, e.Seq)
}

// Is makes errors.Is(err, ErrInjected) succeed.
func (e *Error) Is(target error) bool { return target == ErrInjected }

// TransientStorageFault marks injected faults retryable for
// pagedisk.IsTransient.
func (e *Error) TransientStorageFault() bool { return true }

// Store wraps an inner pagedisk.Store with fault injection. It is safe for
// concurrent use; injection draws are serialized, so a single-threaded
// operation sequence is exactly reproducible from Options.
type Store struct {
	inner pagedisk.Store

	mu    sync.Mutex
	opts  Options
	rng   *rand.Rand
	seq   [numOps]int64
	sched [numOps]map[int64]bool
	cnt   Counters
}

var _ pagedisk.Store = (*Store)(nil)

// Wrap returns a fault-injecting view of inner.
func Wrap(inner pagedisk.Store, opts Options) *Store {
	s := &Store{
		inner: inner,
		opts:  opts,
		rng:   rand.New(rand.NewSource(opts.Seed)),
	}
	for _, f := range opts.Schedule {
		if f.Op >= numOps {
			continue
		}
		if s.sched[f.Op] == nil {
			s.sched[f.Op] = make(map[int64]bool)
		}
		s.sched[f.Op][f.Seq] = true
	}
	return s
}

// Inner returns the wrapped store.
func (s *Store) Inner() pagedisk.Store { return s.inner }

// Options returns the injection configuration (for replay messages).
func (s *Store) Options() Options { return s.opts }

// Counters returns the activity counters.
func (s *Store) Counters() Counters {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cnt
}

// before accounts one operation of kind op and decides whether it fails.
func (s *Store) before(op Op, prob float64, latency int64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	seq := s.seq[op]
	s.seq[op]++
	switch op {
	case OpRead:
		s.cnt.Reads++
	case OpWrite:
		s.cnt.Writes++
	case OpAlloc:
		s.cnt.Allocs++
	}
	fail := s.sched[op] != nil && s.sched[op][seq]
	if !fail && prob > 0 && s.rng.Float64() < prob {
		fail = true
	}
	if fail {
		s.cnt.Injected++
		return &Error{Op: op, Seq: seq}
	}
	s.cnt.Latency += latency
	return nil
}

// CreateFile delegates to the inner store.
func (s *Store) CreateFile(name string) pagedisk.FileID { return s.inner.CreateFile(name) }

// FileName delegates to the inner store.
func (s *Store) FileName(f pagedisk.FileID) string { return s.inner.FileName(f) }

// NumFiles delegates to the inner store.
func (s *Store) NumFiles() int { return s.inner.NumFiles() }

// NumPages delegates to the inner store.
func (s *Store) NumPages(f pagedisk.FileID) int { return s.inner.NumPages(f) }

// Truncate delegates to the inner store.
func (s *Store) Truncate(f pagedisk.FileID) { s.inner.Truncate(f) }

// Stats delegates to the inner store, so I/O accounting is unchanged by
// wrapping.
func (s *Store) Stats() pagedisk.Stats { return s.inner.Stats() }

// ResetStats delegates to the inner store.
func (s *Store) ResetStats() { s.inner.ResetStats() }

// Read injects, then delegates.
func (s *Store) Read(f pagedisk.FileID, p pagedisk.PageID, dst *pagedisk.Page) error {
	if err := s.before(OpRead, s.opts.ReadFailProb, s.opts.ReadLatency); err != nil {
		return err
	}
	return s.inner.Read(f, p, dst)
}

// Write injects, then delegates.
func (s *Store) Write(f pagedisk.FileID, p pagedisk.PageID, src *pagedisk.Page) error {
	if err := s.before(OpWrite, s.opts.WriteFailProb, s.opts.WriteLatency); err != nil {
		return err
	}
	return s.inner.Write(f, p, src)
}

// Allocate injects, then delegates.
func (s *Store) Allocate(f pagedisk.FileID) (pagedisk.PageID, error) {
	if err := s.before(OpAlloc, s.opts.AllocFailProb, 0); err != nil {
		return pagedisk.InvalidPage, err
	}
	return s.inner.Allocate(f)
}

// Sealed reports whether the inner store exposes f as sealed. A wrapped
// store only supports zero-copy views when its inner store does.
func (s *Store) Sealed(f pagedisk.FileID) bool {
	v, ok := s.inner.(pagedisk.ReadOnlyViewer)
	return ok && v.Sealed(f)
}

// View charges and injects exactly like Read — a view replaces a Read
// one-for-one at the same call site, so scripted "read@N" failpoints and
// read sequence numbers are unchanged by the zero-copy path — then
// delegates to the inner viewer.
func (s *Store) View(f pagedisk.FileID, p pagedisk.PageID) (*pagedisk.Page, error) {
	v, ok := s.inner.(pagedisk.ReadOnlyViewer)
	if !ok {
		return nil, fmt.Errorf("faultdisk: inner store %T does not support views", s.inner)
	}
	if err := s.before(OpRead, s.opts.ReadFailProb, s.opts.ReadLatency); err != nil {
		return nil, err
	}
	return v.View(f, p)
}

var _ pagedisk.ReadOnlyViewer = (*Store)(nil)

// sortFaults orders a schedule for stable printing (helper for harnesses
// that accumulate failpoints out of order).
func sortFaults(s Schedule) {
	sort.Slice(s, func(i, j int) bool {
		if s[i].Op != s[j].Op {
			return s[i].Op < s[j].Op
		}
		return s[i].Seq < s[j].Seq
	})
}

// Normalize sorts the schedule in place, drops duplicate failpoints (an
// operation can only fail once) and returns the result — a stable string
// form for replay messages.
func (s Schedule) Normalize() Schedule {
	sortFaults(s)
	out := s[:0]
	for i, f := range s {
		if i == 0 || f != s[i-1] {
			out = append(out, f)
		}
	}
	return out
}
