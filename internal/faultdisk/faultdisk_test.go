package faultdisk

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"tcstudy/internal/pagedisk"
)

func TestScheduleStringRoundTrip(t *testing.T) {
	for _, text := range []string{"", "read@7", "read@17,write@3", "alloc@0,read@2,write@900"} {
		s, err := ParseSchedule(text)
		if err != nil {
			t.Fatalf("ParseSchedule(%q): %v", text, err)
		}
		if got := s.String(); got != text {
			t.Errorf("round trip of %q produced %q", text, got)
		}
	}
	for _, bad := range []string{"read", "read@", "read@-1", "fsync@2", "read@x"} {
		if _, err := ParseSchedule(bad); err == nil {
			t.Errorf("ParseSchedule(%q) accepted malformed input", bad)
		}
	}
}

func TestScheduleNormalize(t *testing.T) {
	s, err := ParseSchedule("write@3,read@7,read@2,read@7")
	if err != nil {
		t.Fatal(err)
	}
	if got, want := s.Normalize().String(), "read@2,read@7,write@3"; got != want {
		t.Errorf("Normalize = %q, want %q", got, want)
	}
}

// opTrace exercises a fixed operation sequence against a wrapped store and
// returns which per-kind read sequence numbers failed.
func opTrace(t *testing.T, opts Options, reads int) []int64 {
	t.Helper()
	d := pagedisk.New()
	f := d.CreateFile("trace")
	p, err := d.Allocate(f)
	if err != nil {
		t.Fatal(err)
	}
	s := Wrap(d, opts)
	var failed []int64
	var pg pagedisk.Page
	for i := 0; i < reads; i++ {
		if err := s.Read(f, p, &pg); err != nil {
			var fe *Error
			if !errors.As(err, &fe) {
				t.Fatalf("read %d failed with a non-injected error: %v", i, err)
			}
			if fe.Op != OpRead || fe.Seq != int64(i) {
				t.Fatalf("read %d failed as %s@%d", i, fe.Op, fe.Seq)
			}
			failed = append(failed, int64(i))
		}
	}
	return failed
}

func TestScheduledInjection(t *testing.T) {
	sched, err := ParseSchedule("read@2,read@5")
	if err != nil {
		t.Fatal(err)
	}
	failed := opTrace(t, Options{Schedule: sched}, 10)
	if len(failed) != 2 || failed[0] != 2 || failed[1] != 5 {
		t.Fatalf("scheduled faults fired at %v, want [2 5]", failed)
	}
}

func TestProbabilisticInjectionIsDeterministic(t *testing.T) {
	opts := Options{Seed: 99, ReadFailProb: 0.3}
	first := opTrace(t, opts, 200)
	if len(first) == 0 {
		t.Fatal("p=0.3 over 200 reads injected nothing")
	}
	for run := 0; run < 3; run++ {
		again := opTrace(t, opts, 200)
		if len(again) != len(first) {
			t.Fatalf("run %d injected %d faults, first run %d", run, len(again), len(first))
		}
		for i := range first {
			if again[i] != first[i] {
				t.Fatalf("run %d fault %d at read %d, first run at %d", run, i, again[i], first[i])
			}
		}
	}
	if other := opTrace(t, Options{Seed: 100, ReadFailProb: 0.3}, 200); len(other) == len(first) {
		same := true
		for i := range first {
			if other[i] != first[i] {
				same = false
				break
			}
		}
		if same {
			t.Error("different seeds produced identical injection sequences")
		}
	}
}

func TestErrorIdentity(t *testing.T) {
	e := &Error{Op: OpWrite, Seq: 4}
	if !errors.Is(e, ErrInjected) {
		t.Error("Error does not match ErrInjected")
	}
	if !pagedisk.IsTransient(e) {
		t.Error("injected fault not classified transient")
	}
	if pagedisk.IsTransient(errors.New("disk on fire")) {
		t.Error("arbitrary error classified transient")
	}
}

func TestCountersAndLatency(t *testing.T) {
	d := pagedisk.New()
	f := d.CreateFile("c")
	s := Wrap(d, Options{ReadLatency: 3, WriteLatency: 5})
	p, err := s.Allocate(f)
	if err != nil {
		t.Fatal(err)
	}
	var pg pagedisk.Page
	if err := s.Write(f, p, &pg); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := s.Read(f, p, &pg); err != nil {
			t.Fatal(err)
		}
	}
	got := s.Counters()
	want := Counters{Reads: 4, Writes: 1, Allocs: 1, Latency: 4*3 + 5}
	if got != want {
		t.Errorf("counters = %+v, want %+v", got, want)
	}
}

func TestWrapDelegates(t *testing.T) {
	d := pagedisk.New()
	f := d.CreateFile("base")
	s := Wrap(d, Options{})
	if s.Inner() != pagedisk.Store(d) {
		t.Error("Inner does not return the wrapped store")
	}
	if s.FileName(f) != "base" || s.NumFiles() != 1 {
		t.Error("catalog queries not delegated")
	}
	p, err := s.Allocate(f)
	if err != nil {
		t.Fatal(err)
	}
	src := pagedisk.Page{1, 2, 3}
	if err := s.Write(f, p, &src); err != nil {
		t.Fatal(err)
	}
	var dst pagedisk.Page
	if err := d.Read(f, p, &dst); err != nil {
		t.Fatal(err)
	}
	if dst != src {
		t.Error("write did not reach the inner store")
	}
	s.Truncate(f)
	if s.NumPages(f) != 0 {
		t.Error("truncate not delegated")
	}
}

func TestTornWriter(t *testing.T) {
	var buf bytes.Buffer
	w := &TornWriter{W: &buf, Budget: 5}
	n, err := w.Write([]byte("hello, world"))
	if err != nil || n != 12 {
		t.Fatalf("Write = (%d, %v), want full acknowledged length 12", n, err)
	}
	if got := buf.String(); got != "hello" {
		t.Errorf("durable bytes = %q, want %q", got, "hello")
	}
	n, err = w.Write([]byte("more"))
	if err != nil || n != 4 {
		t.Fatalf("post-budget Write = (%d, %v), want (4, nil)", n, err)
	}
	if buf.Len() != 5 {
		t.Errorf("budget exceeded: %d bytes written", buf.Len())
	}
}

func TestTearFileAndFlipBit(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "victim")
	if err := os.WriteFile(path, []byte("abcdefgh"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := TearFile(path, 3); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(raw) != "abc" {
		t.Fatalf("torn file holds %q, want %q", raw, "abc")
	}
	if err := FlipBit(path, 0); err != nil {
		t.Fatal(err)
	}
	raw, _ = os.ReadFile(path)
	if raw[0] != 'a'^1 {
		t.Errorf("bit 0 not flipped: first byte %q", raw[0])
	}
}

func TestCorruptOneIsSeeded(t *testing.T) {
	dir := t.TempDir()
	for _, name := range []string{"a.pg", "b.pg", "c.pg"} {
		if err := os.WriteFile(filepath.Join(dir, name), bytes.Repeat([]byte{0xAA}, 64), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	pattern := filepath.Join(dir, "*.pg")
	cor, err := CorruptOne(pattern, 1)
	if err != nil {
		t.Fatal(err)
	}
	if cor.String() == "" {
		t.Error("corruption description is empty")
	}
	// Exactly one file must differ from the pristine contents.
	changed := 0
	for _, name := range []string{"a.pg", "b.pg", "c.pg"} {
		raw, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(raw, bytes.Repeat([]byte{0xAA}, 64)) {
			changed++
		}
	}
	if changed != 1 {
		t.Errorf("CorruptOne changed %d files, want exactly 1", changed)
	}
}

func TestViewInjectsLikeRead(t *testing.T) {
	d := pagedisk.New()
	f := d.CreateFile("base")
	if _, err := d.Allocate(f); err != nil {
		t.Fatal(err)
	}
	d.Seal(f)
	// read@1 must fire on the second read-kind operation whether it is a
	// Read or a View: views replace reads one-for-one in the sequence.
	sched, _ := ParseSchedule("read@1")
	s := Wrap(d, Options{Schedule: sched, ReadLatency: 3})
	if !s.Sealed(f) {
		t.Fatal("wrapped store does not report inner seal")
	}
	var pg pagedisk.Page
	if err := s.Read(f, 0, &pg); err != nil {
		t.Fatalf("read@0: %v", err)
	}
	if _, err := s.View(f, 0); !errors.Is(err, ErrInjected) {
		t.Fatalf("view at read-seq 1: err = %v, want ErrInjected", err)
	}
	if _, err := s.View(f, 0); err != nil {
		t.Fatalf("view at read-seq 2: %v", err)
	}
	c := s.Counters()
	if c.Reads != 3 || c.Injected != 1 {
		t.Fatalf("counters = %+v, want 3 reads with 1 injected", c)
	}
	// Latency charged for the two successful read-kind ops only.
	if c.Latency != 6 {
		t.Fatalf("latency = %d, want 6", c.Latency)
	}
}
