package faultdisk

import (
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
)

// Torn and partial writes for the OS-file persist paths. The simulated
// page store is in-memory; durability goes through real files (pagedisk
// snapshots written by Disk.Save, index files written by index.Save). A
// crash mid-write leaves a prefix, and a misbehaving device can corrupt
// bytes that were acknowledged. These helpers produce exactly those
// artifacts, deterministically, so the loaders' defenses (magic, CRC,
// structural validation) can be exercised and any failure replayed.

// TornWriter passes through to W until Budget bytes have been written,
// then silently discards the rest while still reporting success — the
// shape of a torn write the OS acknowledged before a crash. The caller
// observes no error; only the file is short.
type TornWriter struct {
	W      io.Writer
	Budget int64
}

func (t *TornWriter) Write(p []byte) (int, error) {
	if t.Budget <= 0 {
		return len(p), nil
	}
	keep := int64(len(p))
	if keep > t.Budget {
		keep = t.Budget
	}
	n, err := t.W.Write(p[:keep])
	t.Budget -= int64(n)
	if err != nil {
		return n, err
	}
	// The discarded suffix is reported as written.
	return len(p), nil
}

// TearFile truncates path to its first keep bytes, simulating a write torn
// by a crash. keep larger than the file is a no-op.
func TearFile(path string, keep int64) error {
	st, err := os.Stat(path)
	if err != nil {
		return err
	}
	if keep >= st.Size() {
		return nil
	}
	if keep < 0 {
		keep = 0
	}
	return os.Truncate(path, keep)
}

// FlipBit flips one bit of the file at path, simulating silent media
// corruption. bitOffset indexes bits from the start of the file and must
// lie within it.
func FlipBit(path string, bitOffset int64) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	if bitOffset < 0 || bitOffset >= int64(len(data))*8 {
		return fmt.Errorf("faultdisk: bit offset %d outside file of %d bytes", bitOffset, len(data))
	}
	data[bitOffset/8] ^= 1 << uint(bitOffset%8)
	return os.WriteFile(path, data, 0o644)
}

// Corruption describes one deterministic snapshot corruption for replay.
type Corruption struct {
	Path string // file corrupted
	Torn bool   // true: truncated to Keep bytes; false: bit Bit flipped
	Keep int64
	Bit  int64
}

func (c Corruption) String() string {
	if c.Torn {
		return fmt.Sprintf("tear %s at byte %d", filepath.Base(c.Path), c.Keep)
	}
	return fmt.Sprintf("flip bit %d of %s", c.Bit, filepath.Base(c.Path))
}

// CorruptOne applies one seed-determined corruption — a torn write or a
// single bit flip — to one of the files matching pattern (a filepath.Glob
// pattern) and reports what it did. Loaders confronted with the result
// must fail cleanly, never panic, and never return silently wrong data.
func CorruptOne(pattern string, seed int64) (Corruption, error) {
	paths, err := filepath.Glob(pattern)
	if err != nil {
		return Corruption{}, err
	}
	if len(paths) == 0 {
		return Corruption{}, fmt.Errorf("faultdisk: no files match %s", pattern)
	}
	sort.Strings(paths)
	rng := rand.New(rand.NewSource(seed))
	path := paths[rng.Intn(len(paths))]
	st, err := os.Stat(path)
	if err != nil {
		return Corruption{}, err
	}
	if st.Size() == 0 {
		return Corruption{}, fmt.Errorf("faultdisk: %s is empty", path)
	}
	c := Corruption{Path: path}
	if rng.Intn(2) == 0 {
		c.Torn = true
		c.Keep = rng.Int63n(st.Size())
		return c, TearFile(path, c.Keep)
	}
	c.Bit = rng.Int63n(st.Size() * 8)
	return c, FlipBit(path, c.Bit)
}
