package pagedisk

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// Snapshot persistence: the simulated disk can be written to and restored
// from a directory of page files, so a database built once (graph loading
// plus index construction) can be reopened later without repeating the
// work. Each simulated file becomes one operating-system file:
//
//	<dir>/file<NNNN>.pg :=  magic | name length | name | page count | pages
//
// Persistence is a snapshot operation, not a write-through page store: the
// study's cost model counts simulated page I/O, and that accounting stays
// exact whether the disk was freshly built or restored.

const snapshotMagic = "TCPG"

func snapshotPath(dir string, f FileID) string {
	return filepath.Join(dir, fmt.Sprintf("file%04d.pg", f))
}

// Save writes every file of the disk into dir, creating it if needed.
// Existing snapshot files in dir are overwritten. The disk is quiesced
// (its mutex held) for the duration, so snapshots are consistent even if
// other goroutines are querying.
func (d *Disk) Save(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	for id := range d.files {
		if err := d.saveFile(dir, FileID(id)); err != nil {
			return err
		}
	}
	return nil
}

func (d *Disk) saveFile(dir string, id FileID) error {
	fl := &d.files[id]
	f, err := os.Create(snapshotPath(dir, id))
	if err != nil {
		return err
	}
	defer f.Close()
	w := bufio.NewWriter(f)
	if _, err := w.WriteString(snapshotMagic); err != nil {
		return err
	}
	var lenBuf [4]byte
	binary.LittleEndian.PutUint32(lenBuf[:], uint32(len(fl.name)))
	if _, err := w.Write(lenBuf[:]); err != nil {
		return err
	}
	if _, err := w.WriteString(fl.name); err != nil {
		return err
	}
	binary.LittleEndian.PutUint32(lenBuf[:], uint32(len(fl.pages)))
	if _, err := w.Write(lenBuf[:]); err != nil {
		return err
	}
	for _, pg := range fl.pages {
		if _, err := w.Write(pg[:]); err != nil {
			return err
		}
	}
	if err := w.Flush(); err != nil {
		return err
	}
	return f.Sync()
}

// Load restores a disk previously written by Save. Files are restored in
// their original FileID order, so IDs recorded elsewhere remain valid.
func Load(dir string) (*Disk, error) {
	d := New()
	for id := 0; ; id++ {
		path := snapshotPath(dir, FileID(id))
		if _, err := os.Stat(path); err != nil {
			if os.IsNotExist(err) {
				break
			}
			return nil, err
		}
		if err := d.loadFile(path); err != nil {
			return nil, fmt.Errorf("pagedisk: loading %s: %w", path, err)
		}
	}
	if len(d.files) == 0 {
		return nil, fmt.Errorf("pagedisk: no snapshot files in %s", dir)
	}
	return d, nil
}

func (d *Disk) loadFile(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	r := bufio.NewReader(f)
	magic := make([]byte, len(snapshotMagic))
	if _, err := io.ReadFull(r, magic); err != nil {
		return err
	}
	if string(magic) != snapshotMagic {
		return fmt.Errorf("bad magic %q", magic)
	}
	var lenBuf [4]byte
	if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
		return err
	}
	nameLen := binary.LittleEndian.Uint32(lenBuf[:])
	if nameLen > 1<<16 {
		return fmt.Errorf("implausible name length %d", nameLen)
	}
	name := make([]byte, nameLen)
	if _, err := io.ReadFull(r, name); err != nil {
		return err
	}
	if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
		return err
	}
	nPages := binary.LittleEndian.Uint32(lenBuf[:])
	d.mu.Lock()
	d.files = append(d.files, file{name: string(name)})
	id := len(d.files) - 1
	for p := uint32(0); p < nPages; p++ {
		pg := new(Page)
		if _, err := io.ReadFull(r, pg[:]); err != nil {
			d.mu.Unlock()
			return fmt.Errorf("page %d: %w", p, err)
		}
		d.files[id].pages = append(d.files[id].pages, pg)
	}
	// Loading is catalog reconstruction, not simulated I/O.
	d.stats = Stats{}
	d.mu.Unlock()
	return nil
}
