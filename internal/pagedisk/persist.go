package pagedisk

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
)

// Snapshot persistence: the simulated disk can be written to and restored
// from a directory of page files, so a database built once (graph loading
// plus index construction) can be reopened later without repeating the
// work. Each simulated file becomes one operating-system file:
//
//	<dir>/file<NNNN>.pg := magic | version | name length | name |
//	                       page count | pages | crc32
//
// The trailing CRC32 (IEEE, over everything after the magic) is the
// defense against torn and partially-acknowledged writes: a snapshot cut
// short by a crash, or silently corrupted on media, fails loudly at load
// time instead of resurrecting a subtly wrong database.
//
// Persistence is a snapshot operation, not a write-through page store: the
// study's cost model counts simulated page I/O, and that accounting stays
// exact whether the disk was freshly built or restored.

const (
	snapshotMagic   = "TCPG"
	snapshotVersion = 2
)

func snapshotPath(dir string, f FileID) string {
	return filepath.Join(dir, fmt.Sprintf("file%04d.pg", f))
}

// Save writes every file of the disk into dir, creating it if needed.
// Existing snapshot files in dir are overwritten. Each file is quiesced
// (its stripe lock held, unless it is sealed and therefore immutable) while
// it is encoded, so snapshots are consistent even if other goroutines are
// querying.
func (d *Disk) Save(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	d.mu.RLock()
	files := append([]*file(nil), d.files...)
	d.mu.RUnlock()
	for id, fl := range files {
		if !fl.sealed.Load() {
			fl.mu.RLock()
		}
		err := saveFile(dir, FileID(id), fl)
		if !fl.sealed.Load() {
			fl.mu.RUnlock()
		}
		if err != nil {
			return err
		}
	}
	return nil
}

func saveFile(dir string, id FileID, fl *file) error {
	f, err := os.Create(snapshotPath(dir, id))
	if err != nil {
		return err
	}
	defer f.Close()
	w := bufio.NewWriter(f)
	if _, err := w.WriteString(snapshotMagic); err != nil {
		return err
	}
	// Everything after the magic participates in the checksum.
	sum := crc32.NewIEEE()
	write := func(b []byte) error {
		sum.Write(b)
		_, err := w.Write(b)
		return err
	}
	var lenBuf [4]byte
	binary.LittleEndian.PutUint32(lenBuf[:], snapshotVersion)
	if err := write(lenBuf[:]); err != nil {
		return err
	}
	binary.LittleEndian.PutUint32(lenBuf[:], uint32(len(fl.name)))
	if err := write(lenBuf[:]); err != nil {
		return err
	}
	if err := write([]byte(fl.name)); err != nil {
		return err
	}
	binary.LittleEndian.PutUint32(lenBuf[:], uint32(len(fl.pages)))
	if err := write(lenBuf[:]); err != nil {
		return err
	}
	for _, pg := range fl.pages {
		if err := write(pg[:]); err != nil {
			return err
		}
	}
	binary.LittleEndian.PutUint32(lenBuf[:], sum.Sum32())
	if _, err := w.Write(lenBuf[:]); err != nil {
		return err
	}
	if err := w.Flush(); err != nil {
		return err
	}
	return f.Sync()
}

// Load restores a disk previously written by Save. Files are restored in
// their original FileID order, so IDs recorded elsewhere remain valid.
func Load(dir string) (*Disk, error) {
	d := New()
	for id := 0; ; id++ {
		path := snapshotPath(dir, FileID(id))
		if _, err := os.Stat(path); err != nil {
			if os.IsNotExist(err) {
				break
			}
			return nil, err
		}
		if err := d.loadFile(path); err != nil {
			return nil, fmt.Errorf("pagedisk: loading %s: %w", path, err)
		}
	}
	if len(d.files) == 0 {
		return nil, fmt.Errorf("pagedisk: no snapshot files in %s", dir)
	}
	return d, nil
}

// loadFile parses one snapshot file, rejecting a bad magic, an unknown
// version, a checksum mismatch (torn write, bit flip), an implausible
// header and any trailing garbage.
func (d *Disk) loadFile(path string) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	f, err := parseSnapshot(raw)
	if err != nil {
		return err
	}
	d.mu.Lock()
	d.files = append(d.files, f)
	d.mu.Unlock()
	// Loading is catalog reconstruction, not simulated I/O.
	d.ResetStats()
	return nil
}

// parseSnapshot decodes the body of one snapshot file. It is the
// fuzz-exercised decoder: arbitrary input must produce an error or a valid
// file, never a panic and never unbounded allocation.
func parseSnapshot(raw []byte) (*file, error) {
	const headerLen = len(snapshotMagic) + 4 + 4 // magic, version, name length
	if len(raw) < headerLen+4+4 {                // + page count + crc
		return nil, fmt.Errorf("truncated snapshot (%d bytes)", len(raw))
	}
	if string(raw[:len(snapshotMagic)]) != snapshotMagic {
		return nil, fmt.Errorf("bad magic %q", raw[:len(snapshotMagic)])
	}
	body, trailer := raw[len(snapshotMagic):len(raw)-4], raw[len(raw)-4:]
	if got, want := crc32.ChecksumIEEE(body), binary.LittleEndian.Uint32(trailer); got != want {
		return nil, fmt.Errorf("checksum mismatch (file %08x, computed %08x): torn write or corruption", want, got)
	}
	if v := binary.LittleEndian.Uint32(body); v != snapshotVersion {
		return nil, fmt.Errorf("unsupported snapshot version %d (want %d)", v, snapshotVersion)
	}
	nameLen := binary.LittleEndian.Uint32(body[4:])
	if nameLen > 1<<16 {
		return nil, fmt.Errorf("implausible name length %d", nameLen)
	}
	rest := body[8:]
	if uint64(len(rest)) < uint64(nameLen)+4 {
		return nil, fmt.Errorf("name section truncated")
	}
	name := string(rest[:nameLen])
	rest = rest[nameLen:]
	nPages := binary.LittleEndian.Uint32(rest)
	rest = rest[4:]
	if uint64(len(rest)) != uint64(nPages)*PageSize {
		return nil, fmt.Errorf("header promises %d pages but %d bytes of page data follow", nPages, len(rest))
	}
	f := &file{name: name, pages: make([]*Page, 0, nPages)}
	for p := uint32(0); p < nPages; p++ {
		pg := new(Page)
		copy(pg[:], rest[uint64(p)*PageSize:])
		f.pages = append(f.pages, pg)
	}
	return f, nil
}
