package pagedisk

import (
	"errors"
	"sync"
	"testing"
)

func sealedFixture(t *testing.T) (*Disk, FileID) {
	t.Helper()
	d := New()
	f := d.CreateFile("base")
	for i := 0; i < 4; i++ {
		p, err := d.Allocate(f)
		if err != nil {
			t.Fatal(err)
		}
		var pg Page
		pg[0] = byte(i + 1)
		if err := d.Write(f, p, &pg); err != nil {
			t.Fatal(err)
		}
	}
	d.Seal(f)
	return d, f
}

func TestSealRejectsMutation(t *testing.T) {
	d, f := sealedFixture(t)
	var pg Page
	if err := d.Write(f, 0, &pg); !errors.Is(err, ErrSealed) {
		t.Fatalf("write to sealed file: err = %v, want ErrSealed", err)
	}
	if _, err := d.Allocate(f); !errors.Is(err, ErrSealed) {
		t.Fatalf("allocate on sealed file: err = %v, want ErrSealed", err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("truncate of sealed file did not panic")
		}
	}()
	d.Truncate(f)
}

func TestSealedReadAndViewAgree(t *testing.T) {
	d, f := sealedFixture(t)
	d.ResetStats()
	var buf Page
	if err := d.Read(f, 2, &buf); err != nil {
		t.Fatal(err)
	}
	v, err := d.View(f, 2)
	if err != nil {
		t.Fatal(err)
	}
	if *v != buf {
		t.Fatal("View and Read disagree on sealed page contents")
	}
	// Both paths charge exactly one page read.
	if st := d.Stats(); st.Reads != 2 {
		t.Fatalf("Reads = %d after one Read and one View, want 2", st.Reads)
	}
	// The view is stable: asking again returns the same storage.
	v2, err := d.View(f, 2)
	if err != nil {
		t.Fatal(err)
	}
	if v != v2 {
		t.Fatal("View returned a different pointer for the same sealed page")
	}
}

func TestViewRequiresSeal(t *testing.T) {
	d := New()
	f := d.CreateFile("tmp")
	if _, err := d.Allocate(f); err != nil {
		t.Fatal(err)
	}
	if _, err := d.View(f, 0); err == nil {
		t.Fatal("View of unsealed file succeeded")
	}
	if d.Sealed(f) {
		t.Fatal("unsealed file reports Sealed")
	}
	if _, err := d.View(f, 99); err == nil {
		t.Fatal("View of out-of-range page succeeded")
	}
	if _, err := d.View(FileID(42), 0); err == nil {
		t.Fatal("View of missing file succeeded")
	}
}

func TestViewHonoursFailureInjection(t *testing.T) {
	d, f := sealedFixture(t)
	d.FailAfter(1)
	if _, err := d.View(f, 0); err != nil {
		t.Fatalf("op 1: %v", err)
	}
	if _, err := d.View(f, 0); !errors.Is(err, ErrIOInjected) {
		t.Fatalf("op 2 err = %v, want ErrIOInjected", err)
	}
	d.FailAfter(-1)
	if _, err := d.View(f, 0); err != nil {
		t.Fatalf("after disarm: %v", err)
	}
}

// TestConcurrentSealedReadsAndTempWrites is the striping contract under
// -race: many goroutines read one sealed file lock-free while each also
// hammers its own private temp file, exactly the shape of a concurrent
// query batch.
func TestConcurrentSealedReadsAndTempWrites(t *testing.T) {
	d, f := sealedFixture(t)
	d.ResetStats()
	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			tmp := d.CreateFile("tmp")
			p, err := d.Allocate(tmp)
			if err != nil {
				t.Error(err)
				return
			}
			var buf Page
			for i := 0; i < 200; i++ {
				if err := d.Read(f, PageID(i%4), &buf); err != nil {
					t.Error(err)
					return
				}
				v, err := d.View(f, PageID(i%4))
				if err != nil {
					t.Error(err)
					return
				}
				if v[0] != byte(i%4+1) || buf[0] != byte(i%4+1) {
					t.Errorf("worker %d read wrong sealed contents", w)
					return
				}
				buf[1] = byte(w)
				if err := d.Write(tmp, p, &buf); err != nil {
					t.Error(err)
					return
				}
			}
			d.Truncate(tmp)
		}(w)
	}
	wg.Wait()
	st := d.Stats()
	if want := int64(workers * 200 * 2); st.Reads != want {
		t.Fatalf("Reads = %d, want %d", st.Reads, want)
	}
	if want := int64(workers * 200); st.Writes != want {
		t.Fatalf("Writes = %d, want %d", st.Writes, want)
	}
}
