// Package pagedisk implements the simulated disk underlying the study.
//
// The paper (Section 5.1, Section 6.1) measures the page I/O performed by a
// simulated buffer manager over 2048-byte pages. This package provides that
// disk: a set of files, each an extensible array of fixed-size pages, with
// per-operation read/write accounting. All data lives in memory; "I/O" is a
// counted event, exactly as in the paper's own experimental apparatus.
//
// The disk is safe for concurrent use and designed so that adding cores
// adds throughput:
//
//   - the catalog (the file table) is guarded by one RWMutex that is only
//     write-locked when a file is created;
//   - each file carries its own lock (lock striping), so queries touching
//     different files — which is the common case: every query owns its
//     temporary files exclusively — never contend;
//   - files can be sealed once fully built (Seal, SealAll). A sealed file
//     is immutable: reads take no lock at all, and the View method hands
//     out stable zero-copy pointers into the shared page storage, which
//     the buffer pool uses to pin base-relation pages without copying;
//   - I/O counters are atomics, so accounting never serializes readers.
//
// Each individual query engine remains single-threaded, as the paper's was.
package pagedisk

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
)

// PageSize is the size of a disk page in bytes (Section 5.1 of the paper).
const PageSize = 2048

// PageID identifies a page within a file. Valid IDs are non-negative.
type PageID int32

// InvalidPage is a sentinel PageID that refers to no page.
const InvalidPage PageID = -1

// FileID identifies a file on the disk.
type FileID int32

// Page is the unit of transfer between disk and buffer pool.
type Page [PageSize]byte

// Stats records cumulative I/O activity. Reads and Writes count page
// transfers; Allocs counts pages added to files (allocation itself is a
// catalog operation and is not charged as I/O — a fresh page is materialized
// in the buffer and charged as a write when it is first flushed).
type Stats struct {
	Reads  int64
	Writes int64
	Allocs int64
}

// Total returns the total number of page transfers (reads plus writes).
func (s Stats) Total() int64 { return s.Reads + s.Writes }

// Sub returns the difference s - t, used to attribute I/O to a phase by
// snapshotting before and after.
func (s Stats) Sub(t Stats) Stats {
	return Stats{Reads: s.Reads - t.Reads, Writes: s.Writes - t.Writes, Allocs: s.Allocs - t.Allocs}
}

// ErrIOInjected is returned by Read and Write after a test has armed
// failure injection with FailAfter.
var ErrIOInjected = errors.New("pagedisk: injected I/O failure")

// ErrSealed is returned by Write and Allocate on a sealed file.
var ErrSealed = errors.New("pagedisk: file is sealed")

// Store is the page-storage seam between the disk and everything above it
// (buffer pools, relations, successor-list stores). *Disk is the canonical
// implementation; internal/faultdisk wraps any Store with deterministic
// fault injection. Implementations must be safe for concurrent use.
type Store interface {
	// CreateFile adds a new, empty file and returns its ID.
	CreateFile(name string) FileID
	// FileName reports the name given to CreateFile.
	FileName(f FileID) string
	// NumFiles reports the number of files on the store.
	NumFiles() int
	// NumPages reports the current length of a file in pages.
	NumPages(f FileID) int
	// Allocate extends a file by one zeroed page and returns its ID.
	Allocate(f FileID) (PageID, error)
	// Truncate discards all pages of a file.
	Truncate(f FileID)
	// Read copies page p of file f into dst, counting one page read.
	Read(f FileID, p PageID, dst *Page) error
	// Write copies src into page p of file f, counting one page write.
	Write(f FileID, p PageID, src *Page) error
	// Stats returns the cumulative I/O counters.
	Stats() Stats
	// ResetStats zeroes the I/O counters.
	ResetStats()
}

// ReadOnlyViewer is the optional zero-copy capability of a Store: pages of
// a sealed (immutable) file can be handed out as stable pointers into the
// shared storage instead of being copied on every read. The buffer pool
// type-asserts for it and, when present, pins sealed pages without a copy.
//
// The contract: View is valid only for files on which Sealed reports true,
// the returned page must never be written through, and the pointer stays
// valid for the life of the store (a sealed file is never truncated,
// extended or mutated). A View counts as one page read, exactly like Read,
// so cost accounting is unchanged by the zero-copy path.
type ReadOnlyViewer interface {
	// Sealed reports whether file f is sealed (immutable).
	Sealed(f FileID) bool
	// View returns a stable read-only pointer to page p of sealed file f,
	// counting one page read.
	View(f FileID, p PageID) (*Page, error)
}

// transientFault is implemented by errors representing storage faults that
// may succeed on retry (injected failures, simulated device hiccups), as
// opposed to structural errors (out-of-range page, missing file) that will
// never stop failing.
type transientFault interface {
	TransientStorageFault() bool
}

// IsTransient reports whether err (anywhere in its chain) is a transient
// storage fault. Servers use this to answer 503-with-retry rather than 500,
// and clients use it to decide whether a retry is worthwhile.
func IsTransient(err error) bool {
	if errors.Is(err, ErrIOInjected) {
		return true
	}
	var tf transientFault
	return errors.As(err, &tf) && tf.TransientStorageFault()
}

// file is one striped disk file: its own lock guards the page array and
// page contents while the file is mutable. Once sealed, both the array and
// the contents are frozen and readers skip the lock entirely.
type file struct {
	mu     sync.RWMutex
	name   string
	sealed atomic.Bool
	pages  []*Page
}

// Disk is a simulated multi-file disk.
type Disk struct {
	mu    sync.RWMutex // catalog lock: guards the files slice itself
	files []*file

	reads  atomic.Int64
	writes atomic.Int64
	allocs atomic.Int64

	// Failure injection. The armed flag keeps the hot path lock-free; the
	// countdown itself is exact under injectMu so tests can pin precise
	// failure points even under concurrency.
	armed     atomic.Bool
	injectMu  sync.Mutex
	failAfter int64
}

var _ Store = (*Disk)(nil)
var _ ReadOnlyViewer = (*Disk)(nil)

// New returns an empty disk.
func New() *Disk {
	return &Disk{failAfter: -1}
}

// CreateFile adds a new, empty file and returns its ID. The name is used
// only for diagnostics.
func (d *Disk) CreateFile(name string) FileID {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.files = append(d.files, &file{name: name})
	return FileID(len(d.files) - 1)
}

// lookup resolves a FileID to its striped file under the catalog read lock.
// The returned pointer stays valid after the lock is released: files are
// never removed and the structs are heap-allocated.
func (d *Disk) lookup(f FileID) (*file, error) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if int(f) < 0 || int(f) >= len(d.files) {
		return nil, fmt.Errorf("pagedisk: no such file %d", f)
	}
	return d.files[f], nil
}

// mustLookup is lookup for the methods whose signatures predate error
// returns (catalog queries on invalid IDs are programming errors).
func (d *Disk) mustLookup(f FileID) *file {
	fl, err := d.lookup(f)
	if err != nil {
		panic(err.Error())
	}
	return fl
}

// FileName reports the name given to CreateFile.
func (d *Disk) FileName(f FileID) string {
	return d.mustLookup(f).name
}

// NumFiles reports the number of files on the disk.
func (d *Disk) NumFiles() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return len(d.files)
}

// NumPages reports the current length of a file in pages.
func (d *Disk) NumPages(f FileID) int {
	fl := d.mustLookup(f)
	if fl.sealed.Load() {
		return len(fl.pages)
	}
	fl.mu.RLock()
	defer fl.mu.RUnlock()
	return len(fl.pages)
}

// Allocate extends a file by one zeroed page and returns its ID. The
// in-memory disk never fails an allocation on a mutable file; the error
// return also serves Store implementations that do (fault injection,
// future bounded disks).
func (d *Disk) Allocate(f FileID) (PageID, error) {
	fl, err := d.lookup(f)
	if err != nil {
		return InvalidPage, err
	}
	if fl.sealed.Load() {
		return InvalidPage, fmt.Errorf("pagedisk: allocate on sealed file %q: %w", fl.name, ErrSealed)
	}
	fl.mu.Lock()
	defer fl.mu.Unlock()
	fl.pages = append(fl.pages, new(Page))
	d.allocs.Add(1)
	return PageID(len(fl.pages) - 1), nil
}

// Truncate discards all pages of a file. It models dropping a temporary
// file; no I/O is charged. Truncating a sealed file is a programming error.
func (d *Disk) Truncate(f FileID) {
	fl := d.mustLookup(f)
	if fl.sealed.Load() {
		panic(fmt.Sprintf("pagedisk: truncate of sealed file %q", fl.name))
	}
	fl.mu.Lock()
	defer fl.mu.Unlock()
	fl.pages = fl.pages[:0]
}

// Seal marks file f immutable. From this point its pages can be read with
// no locking and handed out as zero-copy views; writes, allocations and
// truncation are rejected. Sealing is one-way and happens at database
// construction time, before any concurrent access.
func (d *Disk) Seal(f FileID) {
	d.mustLookup(f).sealed.Store(true)
}

// SealAll seals every file currently on the disk — the "database is built,
// serving starts now" transition.
func (d *Disk) SealAll() {
	d.mu.RLock()
	files := d.files
	d.mu.RUnlock()
	for _, fl := range files {
		fl.sealed.Store(true)
	}
}

// Sealed reports whether file f is sealed. Unknown files report false.
func (d *Disk) Sealed(f FileID) bool {
	fl, err := d.lookup(f)
	return err == nil && fl.sealed.Load()
}

func checkPage(fl *file, p PageID) error {
	if p < 0 || int(p) >= len(fl.pages) {
		return fmt.Errorf("pagedisk: page %d out of range for file %q (%d pages)",
			p, fl.name, len(fl.pages))
	}
	return nil
}

func (d *Disk) inject() error {
	if !d.armed.Load() {
		return nil
	}
	d.injectMu.Lock()
	defer d.injectMu.Unlock()
	if d.failAfter == 0 {
		return ErrIOInjected
	}
	d.failAfter--
	return nil
}

// Read copies page p of file f into dst and counts one page read. Sealed
// files are read without taking any lock.
func (d *Disk) Read(f FileID, p PageID, dst *Page) error {
	fl, err := d.lookup(f)
	if err != nil {
		return err
	}
	if fl.sealed.Load() {
		if err := checkPage(fl, p); err != nil {
			return err
		}
		if err := d.inject(); err != nil {
			return err
		}
		*dst = *fl.pages[p]
		d.reads.Add(1)
		return nil
	}
	fl.mu.RLock()
	defer fl.mu.RUnlock()
	if err := checkPage(fl, p); err != nil {
		return err
	}
	if err := d.inject(); err != nil {
		return err
	}
	*dst = *fl.pages[p]
	d.reads.Add(1)
	return nil
}

// View returns a stable zero-copy pointer to page p of sealed file f,
// counting one page read (the cost model is indifferent to whether the
// transfer copied). It implements ReadOnlyViewer; callers must not write
// through the returned page.
func (d *Disk) View(f FileID, p PageID) (*Page, error) {
	fl, err := d.lookup(f)
	if err != nil {
		return nil, err
	}
	if !fl.sealed.Load() {
		return nil, fmt.Errorf("pagedisk: zero-copy view of unsealed file %q", fl.name)
	}
	if err := checkPage(fl, p); err != nil {
		return nil, err
	}
	if err := d.inject(); err != nil {
		return nil, err
	}
	d.reads.Add(1)
	return fl.pages[p], nil
}

// Write copies src into page p of file f and counts one page write.
func (d *Disk) Write(f FileID, p PageID, src *Page) error {
	fl, err := d.lookup(f)
	if err != nil {
		return err
	}
	if fl.sealed.Load() {
		return fmt.Errorf("pagedisk: write to sealed file %q: %w", fl.name, ErrSealed)
	}
	fl.mu.Lock()
	defer fl.mu.Unlock()
	if err := checkPage(fl, p); err != nil {
		return err
	}
	if err := d.inject(); err != nil {
		return err
	}
	*fl.pages[p] = *src
	d.writes.Add(1)
	return nil
}

// Stats returns the cumulative I/O counters.
func (d *Disk) Stats() Stats {
	return Stats{
		Reads:  d.reads.Load(),
		Writes: d.writes.Load(),
		Allocs: d.allocs.Load(),
	}
}

// ResetStats zeroes the I/O counters. Harnesses call this after loading the
// input relation so that database-construction I/O is not charged to the
// query, mirroring the paper's setup where the relation pre-exists.
func (d *Disk) ResetStats() {
	d.reads.Store(0)
	d.writes.Store(0)
	d.allocs.Store(0)
}

// FailAfter arms failure injection: after n further successful page
// transfers, every Read, View and Write fails with ErrIOInjected. A
// negative n disarms injection.
func (d *Disk) FailAfter(n int64) {
	d.injectMu.Lock()
	d.failAfter = n
	d.injectMu.Unlock()
	d.armed.Store(n >= 0)
}
