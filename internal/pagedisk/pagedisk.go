// Package pagedisk implements the simulated disk underlying the study.
//
// The paper (Section 5.1, Section 6.1) measures the page I/O performed by a
// simulated buffer manager over 2048-byte pages. This package provides that
// disk: a set of files, each an extensible array of fixed-size pages, with
// per-operation read/write accounting. All data lives in memory; "I/O" is a
// counted event, exactly as in the paper's own experimental apparatus.
//
// The disk is safe for concurrent use: the catalog and page array are
// guarded by a mutex, so multiple buffer pools (one per concurrent query)
// can share one disk. Each individual query engine remains
// single-threaded, as the paper's was.
package pagedisk

import (
	"errors"
	"fmt"
	"sync"
)

// PageSize is the size of a disk page in bytes (Section 5.1 of the paper).
const PageSize = 2048

// PageID identifies a page within a file. Valid IDs are non-negative.
type PageID int32

// InvalidPage is a sentinel PageID that refers to no page.
const InvalidPage PageID = -1

// FileID identifies a file on the disk.
type FileID int32

// Page is the unit of transfer between disk and buffer pool.
type Page [PageSize]byte

// Stats records cumulative I/O activity. Reads and Writes count page
// transfers; Allocs counts pages added to files (allocation itself is a
// catalog operation and is not charged as I/O — a fresh page is materialized
// in the buffer and charged as a write when it is first flushed).
type Stats struct {
	Reads  int64
	Writes int64
	Allocs int64
}

// Total returns the total number of page transfers (reads plus writes).
func (s Stats) Total() int64 { return s.Reads + s.Writes }

// Sub returns the difference s - t, used to attribute I/O to a phase by
// snapshotting before and after.
func (s Stats) Sub(t Stats) Stats {
	return Stats{Reads: s.Reads - t.Reads, Writes: s.Writes - t.Writes, Allocs: s.Allocs - t.Allocs}
}

// ErrIOInjected is returned by Read and Write after a test has armed
// failure injection with FailAfter.
var ErrIOInjected = errors.New("pagedisk: injected I/O failure")

// Store is the page-storage seam between the disk and everything above it
// (buffer pools, relations, successor-list stores). *Disk is the canonical
// implementation; internal/faultdisk wraps any Store with deterministic
// fault injection. Implementations must be safe for concurrent use.
type Store interface {
	// CreateFile adds a new, empty file and returns its ID.
	CreateFile(name string) FileID
	// FileName reports the name given to CreateFile.
	FileName(f FileID) string
	// NumFiles reports the number of files on the store.
	NumFiles() int
	// NumPages reports the current length of a file in pages.
	NumPages(f FileID) int
	// Allocate extends a file by one zeroed page and returns its ID.
	Allocate(f FileID) (PageID, error)
	// Truncate discards all pages of a file.
	Truncate(f FileID)
	// Read copies page p of file f into dst, counting one page read.
	Read(f FileID, p PageID, dst *Page) error
	// Write copies src into page p of file f, counting one page write.
	Write(f FileID, p PageID, src *Page) error
	// Stats returns the cumulative I/O counters.
	Stats() Stats
	// ResetStats zeroes the I/O counters.
	ResetStats()
}

// transientFault is implemented by errors representing storage faults that
// may succeed on retry (injected failures, simulated device hiccups), as
// opposed to structural errors (out-of-range page, missing file) that will
// never stop failing.
type transientFault interface {
	TransientStorageFault() bool
}

// IsTransient reports whether err (anywhere in its chain) is a transient
// storage fault. Servers use this to answer 503-with-retry rather than 500,
// and clients use it to decide whether a retry is worthwhile.
func IsTransient(err error) bool {
	if errors.Is(err, ErrIOInjected) {
		return true
	}
	var tf transientFault
	return errors.As(err, &tf) && tf.TransientStorageFault()
}

type file struct {
	name  string
	pages []*Page
}

// Disk is a simulated multi-file disk.
type Disk struct {
	mu    sync.Mutex
	files []file
	stats Stats

	// failAfter, when >= 0, makes every Read/Write past that many further
	// operations fail with ErrIOInjected. Used by failure-injection tests.
	failAfter int64
}

var _ Store = (*Disk)(nil)

// New returns an empty disk.
func New() *Disk {
	return &Disk{failAfter: -1}
}

// CreateFile adds a new, empty file and returns its ID. The name is used
// only for diagnostics.
func (d *Disk) CreateFile(name string) FileID {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.files = append(d.files, file{name: name})
	return FileID(len(d.files) - 1)
}

// FileName reports the name given to CreateFile.
func (d *Disk) FileName(f FileID) string {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.files[f].name
}

// NumFiles reports the number of files on the disk.
func (d *Disk) NumFiles() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.files)
}

// NumPages reports the current length of a file in pages.
func (d *Disk) NumPages(f FileID) int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.files[f].pages)
}

// Allocate extends a file by one zeroed page and returns its ID. The
// in-memory disk never fails an allocation; the error return exists for
// Store implementations that do (fault injection, future bounded disks).
func (d *Disk) Allocate(f FileID) (PageID, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	fl := &d.files[f]
	fl.pages = append(fl.pages, new(Page))
	d.stats.Allocs++
	return PageID(len(fl.pages) - 1), nil
}

// Truncate discards all pages of a file. It models dropping a temporary
// file; no I/O is charged.
func (d *Disk) Truncate(f FileID) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.files[f].pages = d.files[f].pages[:0]
}

func (d *Disk) check(f FileID, p PageID) error {
	if int(f) < 0 || int(f) >= len(d.files) {
		return fmt.Errorf("pagedisk: no such file %d", f)
	}
	if p < 0 || int(p) >= len(d.files[f].pages) {
		return fmt.Errorf("pagedisk: page %d out of range for file %q (%d pages)",
			p, d.files[f].name, len(d.files[f].pages))
	}
	return nil
}

func (d *Disk) inject() error {
	if d.failAfter < 0 {
		return nil
	}
	if d.failAfter == 0 {
		return ErrIOInjected
	}
	d.failAfter--
	return nil
}

// Read copies page p of file f into dst and counts one page read.
func (d *Disk) Read(f FileID, p PageID, dst *Page) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := d.check(f, p); err != nil {
		return err
	}
	if err := d.inject(); err != nil {
		return err
	}
	*dst = *d.files[f].pages[p]
	d.stats.Reads++
	return nil
}

// Write copies src into page p of file f and counts one page write.
func (d *Disk) Write(f FileID, p PageID, src *Page) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := d.check(f, p); err != nil {
		return err
	}
	if err := d.inject(); err != nil {
		return err
	}
	*d.files[f].pages[p] = *src
	d.stats.Writes++
	return nil
}

// Stats returns the cumulative I/O counters.
func (d *Disk) Stats() Stats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.stats
}

// ResetStats zeroes the I/O counters. Harnesses call this after loading the
// input relation so that database-construction I/O is not charged to the
// query, mirroring the paper's setup where the relation pre-exists.
func (d *Disk) ResetStats() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.stats = Stats{}
}

// FailAfter arms failure injection: after n further successful page
// transfers, every Read and Write fails with ErrIOInjected. A negative n
// disarms injection.
func (d *Disk) FailAfter(n int64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.failAfter = n
}
