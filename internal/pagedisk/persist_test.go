package pagedisk

import (
	"os"
	"path/filepath"
	"testing"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	d := New()
	a := d.CreateFile("alpha")
	b := d.CreateFile("beta")
	for i := 0; i < 3; i++ {
		p, _ := d.Allocate(a)
		var pg Page
		pg[0] = byte(i + 1)
		pg[PageSize-1] = byte(0xF0 + i)
		if err := d.Write(a, p, &pg); err != nil {
			t.Fatal(err)
		}
	}
	d.Allocate(b) // empty page in second file

	dir := t.TempDir()
	if err := d.Save(dir); err != nil {
		t.Fatal(err)
	}
	re, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if re.NumFiles() != 2 {
		t.Fatalf("restored %d files", re.NumFiles())
	}
	if re.FileName(0) != "alpha" || re.FileName(1) != "beta" {
		t.Fatalf("names = %q, %q", re.FileName(0), re.FileName(1))
	}
	if re.NumPages(0) != 3 || re.NumPages(1) != 1 {
		t.Fatalf("pages = %d, %d", re.NumPages(0), re.NumPages(1))
	}
	for i := 0; i < 3; i++ {
		var pg Page
		if err := re.Read(0, PageID(i), &pg); err != nil {
			t.Fatal(err)
		}
		if pg[0] != byte(i+1) || pg[PageSize-1] != byte(0xF0+i) {
			t.Fatalf("page %d contents corrupted", i)
		}
	}
}

func TestLoadResetsStats(t *testing.T) {
	d := New()
	f := d.CreateFile("x")
	p, _ := d.Allocate(f)
	var pg Page
	_ = d.Write(f, p, &pg)
	dir := t.TempDir()
	if err := d.Save(dir); err != nil {
		t.Fatal(err)
	}
	re, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if re.Stats() != (Stats{}) {
		t.Fatalf("restored disk has stats %+v", re.Stats())
	}
}

func TestLoadErrors(t *testing.T) {
	if _, err := Load(t.TempDir()); err == nil {
		t.Fatal("loaded an empty directory")
	}
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "file0000.pg"), []byte("NOPE"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(dir); err == nil {
		t.Fatal("loaded a corrupt snapshot")
	}
	// Truncated page data.
	d := New()
	f := d.CreateFile("x")
	d.Allocate(f)
	dir2 := t.TempDir()
	if err := d.Save(dir2); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir2, "file0000.pg")
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, raw[:len(raw)-100], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(dir2); err == nil {
		t.Fatal("loaded a truncated snapshot")
	}
}

func TestSaveOverwritesExistingSnapshot(t *testing.T) {
	d := New()
	f := d.CreateFile("x")
	p, _ := d.Allocate(f)
	var pg Page
	pg[0] = 1
	_ = d.Write(f, p, &pg)
	dir := t.TempDir()
	if err := d.Save(dir); err != nil {
		t.Fatal(err)
	}
	pg[0] = 2
	_ = d.Write(f, p, &pg)
	if err := d.Save(dir); err != nil {
		t.Fatal(err)
	}
	re, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	var got Page
	if err := re.Read(0, 0, &got); err != nil {
		t.Fatal(err)
	}
	if got[0] != 2 {
		t.Fatalf("second save not visible: got %d", got[0])
	}
}
