package pagedisk

import (
	"errors"
	"testing"
	"testing/quick"
)

func TestCreateFileAndAllocate(t *testing.T) {
	d := New()
	f := d.CreateFile("rel")
	if got := d.FileName(f); got != "rel" {
		t.Fatalf("FileName = %q, want rel", got)
	}
	if d.NumPages(f) != 0 {
		t.Fatalf("new file has %d pages, want 0", d.NumPages(f))
	}
	p0, _ := d.Allocate(f)
	p1, _ := d.Allocate(f)
	if p0 != 0 || p1 != 1 {
		t.Fatalf("Allocate returned %d,%d, want 0,1", p0, p1)
	}
	if d.NumPages(f) != 2 {
		t.Fatalf("NumPages = %d, want 2", d.NumPages(f))
	}
	if d.Stats().Allocs != 2 {
		t.Fatalf("Allocs = %d, want 2", d.Stats().Allocs)
	}
}

func TestReadWriteRoundTrip(t *testing.T) {
	d := New()
	f := d.CreateFile("x")
	p, _ := d.Allocate(f)
	var out, in Page
	for i := range out {
		out[i] = byte(i * 7)
	}
	if err := d.Write(f, p, &out); err != nil {
		t.Fatal(err)
	}
	if err := d.Read(f, p, &in); err != nil {
		t.Fatal(err)
	}
	if in != out {
		t.Fatal("page contents did not round-trip")
	}
	st := d.Stats()
	if st.Reads != 1 || st.Writes != 1 {
		t.Fatalf("stats = %+v, want 1 read 1 write", st)
	}
}

func TestWriteDoesNotAliasCallerPage(t *testing.T) {
	d := New()
	f := d.CreateFile("x")
	p, _ := d.Allocate(f)
	var buf Page
	buf[0] = 1
	if err := d.Write(f, p, &buf); err != nil {
		t.Fatal(err)
	}
	buf[0] = 99 // mutate caller's copy after the write
	var in Page
	if err := d.Read(f, p, &in); err != nil {
		t.Fatal(err)
	}
	if in[0] != 1 {
		t.Fatalf("disk page aliased caller buffer: got %d, want 1", in[0])
	}
}

func TestOutOfRangeErrors(t *testing.T) {
	d := New()
	f := d.CreateFile("x")
	var buf Page
	if err := d.Read(f, 0, &buf); err == nil {
		t.Fatal("Read of unallocated page succeeded")
	}
	if err := d.Write(f, 5, &buf); err == nil {
		t.Fatal("Write of unallocated page succeeded")
	}
	if err := d.Read(FileID(9), 0, &buf); err == nil {
		t.Fatal("Read of nonexistent file succeeded")
	}
	if err := d.Read(f, InvalidPage, &buf); err == nil {
		t.Fatal("Read of InvalidPage succeeded")
	}
}

func TestStatsSubAndReset(t *testing.T) {
	d := New()
	f := d.CreateFile("x")
	p, _ := d.Allocate(f)
	var buf Page
	before := d.Stats()
	_ = d.Write(f, p, &buf)
	_ = d.Read(f, p, &buf)
	delta := d.Stats().Sub(before)
	if delta.Reads != 1 || delta.Writes != 1 {
		t.Fatalf("delta = %+v", delta)
	}
	if delta.Total() != 2 {
		t.Fatalf("Total = %d, want 2", delta.Total())
	}
	d.ResetStats()
	if d.Stats() != (Stats{}) {
		t.Fatalf("after reset stats = %+v", d.Stats())
	}
}

func TestTruncate(t *testing.T) {
	d := New()
	f := d.CreateFile("tmp")
	d.Allocate(f)
	d.Allocate(f)
	d.Truncate(f)
	if d.NumPages(f) != 0 {
		t.Fatalf("NumPages after truncate = %d", d.NumPages(f))
	}
}

func TestFailureInjection(t *testing.T) {
	d := New()
	f := d.CreateFile("x")
	p, _ := d.Allocate(f)
	var buf Page
	d.FailAfter(2)
	if err := d.Write(f, p, &buf); err != nil {
		t.Fatalf("op 1: %v", err)
	}
	if err := d.Read(f, p, &buf); err != nil {
		t.Fatalf("op 2: %v", err)
	}
	if err := d.Read(f, p, &buf); !errors.Is(err, ErrIOInjected) {
		t.Fatalf("op 3 err = %v, want ErrIOInjected", err)
	}
	d.FailAfter(-1)
	if err := d.Read(f, p, &buf); err != nil {
		t.Fatalf("after disarm: %v", err)
	}
}

// TestRoundTripProperty checks that arbitrary page contents survive a
// write/read cycle at arbitrary allocated offsets.
func TestRoundTripProperty(t *testing.T) {
	d := New()
	f := d.CreateFile("prop")
	for i := 0; i < 16; i++ {
		d.Allocate(f)
	}
	prop := func(raw []byte, pg uint8) bool {
		p := PageID(int(pg) % 16)
		var out Page
		copy(out[:], raw)
		if err := d.Write(f, p, &out); err != nil {
			return false
		}
		var in Page
		if err := d.Read(f, p, &in); err != nil {
			return false
		}
		return in == out
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
