package pagedisk

import (
	"os"
	"path/filepath"
	"testing"
)

// FuzzParseSnapshot hammers the snapshot decoder with arbitrary bytes. The
// decoder's contract: any input yields either a structurally valid file or
// an error — never a panic, never an allocation the input's length does not
// pay for. Seeds include a genuine snapshot so mutation explores the format
// rather than only the magic check.
func FuzzParseSnapshot(f *testing.F) {
	d := New()
	fid := d.CreateFile("seed-relation")
	for i := 0; i < 3; i++ {
		p, err := d.Allocate(fid)
		if err != nil {
			f.Fatal(err)
		}
		var pg Page
		pg[0], pg[PageSize-1] = byte(i), 0xEE
		if err := d.Write(fid, p, &pg); err != nil {
			f.Fatal(err)
		}
	}
	dir := f.TempDir()
	if err := d.Save(dir); err != nil {
		f.Fatal(err)
	}
	raw, err := os.ReadFile(filepath.Join(dir, "file0000.pg"))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(raw)
	f.Add([]byte(snapshotMagic))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		fl, err := parseSnapshot(data)
		if err != nil {
			return
		}
		// A successful parse must be internally consistent and bounded by
		// the input: the page data was physically present in the snapshot.
		if got := len(fl.pages) * PageSize; got > len(data) {
			t.Fatalf("decoded %d page bytes from %d input bytes", got, len(data))
		}
		for i, pg := range fl.pages {
			if pg == nil {
				t.Fatalf("decoded page %d is nil", i)
			}
		}
	})
}

// TestSnapshotDetectsEveryByteFlip is the CRC trailer's guarantee made
// concrete: corrupting any single byte of a snapshot — header, name, page
// data or the checksum itself — must make the parse fail.
func TestSnapshotDetectsEveryByteFlip(t *testing.T) {
	d := New()
	fid := d.CreateFile("r")
	p, err := d.Allocate(fid)
	if err != nil {
		t.Fatal(err)
	}
	var pg Page
	pg[7] = 0x5A
	if err := d.Write(fid, p, &pg); err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := d.Save(dir); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(filepath.Join(dir, "file0000.pg"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := parseSnapshot(raw); err != nil {
		t.Fatalf("pristine snapshot does not parse: %v", err)
	}
	for i := range raw {
		mut := append([]byte(nil), raw...)
		mut[i] ^= 0x01
		if _, err := parseSnapshot(mut); err == nil {
			t.Fatalf("flipping byte %d of %d went undetected", i, len(raw))
		}
	}
}
