package bitset

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBasicOps(t *testing.T) {
	s := New(200)
	if s.Has(5) {
		t.Fatal("new set has 5")
	}
	s.Add(5)
	s.Add(63)
	s.Add(64)
	s.Add(199)
	for _, v := range []int32{5, 63, 64, 199} {
		if !s.Has(v) {
			t.Fatalf("missing %d", v)
		}
	}
	if s.Count() != 4 {
		t.Fatalf("Count = %d, want 4", s.Count())
	}
	s.Remove(63)
	if s.Has(63) || s.Count() != 3 {
		t.Fatal("Remove failed")
	}
	if s.Cap() < 200 {
		t.Fatalf("Cap = %d", s.Cap())
	}
}

func TestTestAndAdd(t *testing.T) {
	s := New(10)
	if s.TestAndAdd(3) {
		t.Fatal("first TestAndAdd reported present")
	}
	if !s.TestAndAdd(3) {
		t.Fatal("second TestAndAdd reported absent")
	}
}

func TestClearOrCloneEqual(t *testing.T) {
	a := New(128)
	a.Add(1)
	a.Add(100)
	b := a.Clone()
	if !a.Equal(b) {
		t.Fatal("clone not equal")
	}
	b.Add(50)
	if a.Equal(b) {
		t.Fatal("diverged sets equal")
	}
	a.Or(b)
	if !a.Has(50) {
		t.Fatal("Or missed element")
	}
	a.Clear()
	if a.Count() != 0 {
		t.Fatal("Clear left elements")
	}
	c := New(64)
	if a.Equal(c) {
		t.Fatal("different-capacity sets reported equal")
	}
}

func TestForEachAscending(t *testing.T) {
	s := New(300)
	want := []int32{0, 1, 63, 64, 65, 128, 299}
	for _, v := range want {
		s.Add(v)
	}
	var got []int32
	s.ForEach(func(v int32) { got = append(got, v) })
	if len(got) != len(want) {
		t.Fatalf("ForEach visited %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ForEach[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestMatchesMapProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := New(500)
		ref := map[int32]bool{}
		for i := 0; i < 1000; i++ {
			v := int32(rng.Intn(500))
			if rng.Intn(3) == 0 {
				s.Remove(v)
				delete(ref, v)
			} else {
				s.Add(v)
				ref[v] = true
			}
		}
		if s.Count() != len(ref) {
			return false
		}
		for v := range ref {
			if !s.Has(v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
