package bitset

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBasicOps(t *testing.T) {
	s := New(200)
	if s.Has(5) {
		t.Fatal("new set has 5")
	}
	s.Add(5)
	s.Add(63)
	s.Add(64)
	s.Add(199)
	for _, v := range []int32{5, 63, 64, 199} {
		if !s.Has(v) {
			t.Fatalf("missing %d", v)
		}
	}
	if s.Count() != 4 {
		t.Fatalf("Count = %d, want 4", s.Count())
	}
	s.Remove(63)
	if s.Has(63) || s.Count() != 3 {
		t.Fatal("Remove failed")
	}
	if s.Cap() < 200 {
		t.Fatalf("Cap = %d", s.Cap())
	}
}

func TestTestAndAdd(t *testing.T) {
	s := New(10)
	if s.TestAndAdd(3) {
		t.Fatal("first TestAndAdd reported present")
	}
	if !s.TestAndAdd(3) {
		t.Fatal("second TestAndAdd reported absent")
	}
}

func TestClearOrCloneEqual(t *testing.T) {
	a := New(128)
	a.Add(1)
	a.Add(100)
	b := a.Clone()
	if !a.Equal(b) {
		t.Fatal("clone not equal")
	}
	b.Add(50)
	if a.Equal(b) {
		t.Fatal("diverged sets equal")
	}
	a.Or(b)
	if !a.Has(50) {
		t.Fatal("Or missed element")
	}
	a.Clear()
	if a.Count() != 0 {
		t.Fatal("Clear left elements")
	}
	c := New(64)
	if a.Equal(c) {
		t.Fatal("different-capacity sets reported equal")
	}
}

func TestForEachAscending(t *testing.T) {
	s := New(300)
	want := []int32{0, 1, 63, 64, 65, 128, 299}
	for _, v := range want {
		s.Add(v)
	}
	var got []int32
	s.ForEach(func(v int32) { got = append(got, v) })
	if len(got) != len(want) {
		t.Fatalf("ForEach visited %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ForEach[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestMatchesMapProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := New(500)
		ref := map[int32]bool{}
		for i := 0; i < 1000; i++ {
			v := int32(rng.Intn(500))
			if rng.Intn(3) == 0 {
				s.Remove(v)
				delete(ref, v)
			} else {
				s.Add(v)
				ref[v] = true
			}
		}
		if s.Count() != len(ref) {
			return false
		}
		for v := range ref {
			if !s.Has(v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// The tests below cover the edge cases internal/index leans on: its
// per-node chain sets sit exactly at word boundaries for chain counts of
// 63/64/65, empty sets flow through intersection during label merges, and
// Intersects must short-circuit without touching overhang words.

func TestAndBasics(t *testing.T) {
	a := New(128)
	b := New(128)
	for _, v := range []int32{1, 63, 64, 100} {
		a.Add(v)
	}
	for _, v := range []int32{63, 64, 127} {
		b.Add(v)
	}
	a.And(b)
	var got []int32
	a.ForEach(func(v int32) { got = append(got, v) })
	if len(got) != 2 || got[0] != 63 || got[1] != 64 {
		t.Fatalf("And kept %v, want [63 64]", got)
	}
}

func TestAndEmptyAndDifferentCapacity(t *testing.T) {
	a := New(130)
	a.Add(0)
	a.Add(64)
	a.Add(129)
	empty := New(130)
	c := a.Clone()
	c.And(empty)
	if c.Count() != 0 {
		t.Fatalf("intersection with empty set has %d elements", c.Count())
	}
	// A shorter t removes everything beyond its capacity.
	short := New(64)
	short.Add(0)
	a.And(short)
	if !a.Has(0) || a.Has(64) || a.Has(129) || a.Count() != 1 {
		t.Fatalf("And with shorter set kept wrong elements (count %d)", a.Count())
	}
}

func TestIntersectsEmptyAndDisjoint(t *testing.T) {
	a := New(200)
	b := New(200)
	if a.Intersects(b) || b.Intersects(a) {
		t.Fatal("two empty sets intersect")
	}
	a.Add(5)
	if a.Intersects(b) || b.Intersects(a) {
		t.Fatal("empty set intersects non-empty")
	}
	b.Add(6)
	if a.Intersects(b) {
		t.Fatal("disjoint sets intersect")
	}
	b.Add(5)
	if !a.Intersects(b) || !b.Intersects(a) {
		t.Fatal("overlapping sets do not intersect")
	}
}

func TestIntersectsShortCircuitAndOverhang(t *testing.T) {
	// Overlap in the first word must be found regardless of later words;
	// overlap only in s's overhang beyond t's capacity must NOT count.
	a := New(512)
	b := New(512)
	a.Add(0)
	b.Add(0)
	a.Add(511)
	if !a.Intersects(b) {
		t.Fatal("first-word overlap missed")
	}
	short := New(64)
	longer := New(512)
	longer.Add(500) // lives past short's last word
	if longer.Intersects(short) || short.Intersects(longer) {
		t.Fatal("overhang-only element reported as intersection")
	}
	short.Add(63)
	longer.Add(63)
	if !longer.Intersects(short) || !short.Intersects(longer) {
		t.Fatal("boundary element 63 missed across capacities")
	}
}

func TestWordBoundarySizes(t *testing.T) {
	for _, n := range []int{63, 64, 65} {
		a := New(n)
		b := New(n)
		last := int32(n - 1)
		a.Add(0)
		a.Add(last)
		b.Add(last)
		if !a.Intersects(b) {
			t.Fatalf("n=%d: Intersects missed last element", n)
		}
		a.And(b)
		if a.Count() != 1 || !a.Has(last) {
			t.Fatalf("n=%d: And kept count=%d", n, a.Count())
		}
		b.Or(a)
		if !b.Has(last) || b.Count() != 1 {
			t.Fatalf("n=%d: Or broke at boundary", n)
		}
		b.Remove(last)
		if b.Intersects(a) {
			t.Fatalf("n=%d: emptied set still intersects", n)
		}
	}
}

func TestWordsFromWordsRoundTrip(t *testing.T) {
	a := New(130)
	for _, v := range []int32{0, 63, 64, 65, 129} {
		a.Add(v)
	}
	words := append([]uint64(nil), a.Words()...)
	b := FromWords(words)
	if !a.Equal(b) {
		t.Fatal("FromWords(Words()) round trip lost elements")
	}
	b.Add(1)
	if a.Equal(b) {
		t.Fatal("copies should be independent")
	}
}
