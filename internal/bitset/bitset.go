// Package bitset provides the fixed-size bit vectors the study uses for
// in-memory duplicate elimination (Section 6.1 of the paper reports that
// bit-vector duplicate elimination costs under 6% of CPU) and for the
// reference closure computation.
package bitset

import "math/bits"

// Set is a fixed-capacity bit vector over non-negative integers.
type Set struct {
	words []uint64
}

// New returns a set able to hold values 0..n-1.
func New(n int) *Set {
	return &Set{words: make([]uint64, (n+63)/64)}
}

// Cap reports the capacity in bits.
func (s *Set) Cap() int { return len(s.words) * 64 }

// Add inserts v.
func (s *Set) Add(v int32) { s.words[v>>6] |= 1 << uint(v&63) }

// Remove deletes v.
func (s *Set) Remove(v int32) { s.words[v>>6] &^= 1 << uint(v&63) }

// Has reports whether v is present.
func (s *Set) Has(v int32) bool { return s.words[v>>6]&(1<<uint(v&63)) != 0 }

// TestAndAdd inserts v and reports whether it was already present.
func (s *Set) TestAndAdd(v int32) bool {
	w, b := v>>6, uint64(1)<<uint(v&63)
	old := s.words[w]&b != 0
	s.words[w] |= b
	return old
}

// Clear removes all elements.
func (s *Set) Clear() {
	for i := range s.words {
		s.words[i] = 0
	}
}

// Or adds every element of t to s. The sets must have equal capacity.
func (s *Set) Or(t *Set) {
	for i, w := range t.words {
		s.words[i] |= w
	}
}

// Count reports the number of elements.
func (s *Set) Count() int {
	n := 0
	for _, w := range s.words {
		n += bits.OnesCount64(w)
	}
	return n
}

// Equal reports whether s and t contain the same elements.
func (s *Set) Equal(t *Set) bool {
	if len(s.words) != len(t.words) {
		return false
	}
	for i := range s.words {
		if s.words[i] != t.words[i] {
			return false
		}
	}
	return true
}

// Clone returns an independent copy.
func (s *Set) Clone() *Set {
	w := make([]uint64, len(s.words))
	copy(w, s.words)
	return &Set{words: w}
}

// ForEach calls fn for every element in ascending order.
func (s *Set) ForEach(fn func(v int32)) {
	for i, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			fn(int32(i*64 + b))
			w &= w - 1
		}
	}
}
