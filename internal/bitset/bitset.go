// Package bitset provides the fixed-size bit vectors the study uses for
// in-memory duplicate elimination (Section 6.1 of the paper reports that
// bit-vector duplicate elimination costs under 6% of CPU) and for the
// reference closure computation.
package bitset

import "math/bits"

// Set is a fixed-capacity bit vector over non-negative integers.
type Set struct {
	words []uint64
}

// New returns a set able to hold values 0..n-1.
func New(n int) *Set {
	return &Set{words: make([]uint64, (n+63)/64)}
}

// Cap reports the capacity in bits.
func (s *Set) Cap() int { return len(s.words) * 64 }

// Add inserts v.
func (s *Set) Add(v int32) { s.words[v>>6] |= 1 << uint(v&63) }

// Remove deletes v.
func (s *Set) Remove(v int32) { s.words[v>>6] &^= 1 << uint(v&63) }

// Has reports whether v is present.
func (s *Set) Has(v int32) bool { return s.words[v>>6]&(1<<uint(v&63)) != 0 }

// TestAndAdd inserts v and reports whether it was already present.
func (s *Set) TestAndAdd(v int32) bool {
	w, b := v>>6, uint64(1)<<uint(v&63)
	old := s.words[w]&b != 0
	s.words[w] |= b
	return old
}

// Clear removes all elements.
func (s *Set) Clear() {
	for i := range s.words {
		s.words[i] = 0
	}
}

// Or adds every element of t to s. The sets must have equal capacity.
func (s *Set) Or(t *Set) {
	for i, w := range t.words {
		s.words[i] |= w
	}
}

// And removes from s every element not in t (set intersection). The sets
// may have different capacities; elements of s beyond t's capacity are
// removed, matching intersection semantics.
func (s *Set) And(t *Set) {
	n := len(s.words)
	if len(t.words) < n {
		n = len(t.words)
	}
	for i := 0; i < n; i++ {
		s.words[i] &= t.words[i]
	}
	for i := n; i < len(s.words); i++ {
		s.words[i] = 0
	}
}

// Intersects reports whether s and t share at least one element. It
// short-circuits on the first common word and tolerates sets of different
// capacities (the overhang cannot intersect).
func (s *Set) Intersects(t *Set) bool {
	n := len(s.words)
	if len(t.words) < n {
		n = len(t.words)
	}
	for i := 0; i < n; i++ {
		if s.words[i]&t.words[i] != 0 {
			return true
		}
	}
	return false
}

// Count reports the number of elements.
func (s *Set) Count() int {
	n := 0
	for _, w := range s.words {
		n += bits.OnesCount64(w)
	}
	return n
}

// Equal reports whether s and t contain the same elements.
func (s *Set) Equal(t *Set) bool {
	if len(s.words) != len(t.words) {
		return false
	}
	for i := range s.words {
		if s.words[i] != t.words[i] {
			return false
		}
	}
	return true
}

// Clone returns an independent copy.
func (s *Set) Clone() *Set {
	w := make([]uint64, len(s.words))
	copy(w, s.words)
	return &Set{words: w}
}

// Words exposes the underlying word array (element i lives in word i/64,
// bit i%64). The slice is shared with the set; callers must treat it as
// read-only. It exists for serialization (internal/index's on-disk format).
func (s *Set) Words() []uint64 { return s.words }

// FromWords builds a set over the given word array. The slice is adopted,
// not copied; the capacity is len(words)*64 bits.
func FromWords(words []uint64) *Set { return &Set{words: words} }

// ForEach calls fn for every element in ascending order.
func (s *Set) ForEach(fn func(v int32)) {
	for i, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			fn(int32(i*64 + b))
			w &= w - 1
		}
	}
}
