package extsort

import (
	"math/rand"
	"testing"
	"testing/quick"

	"tcstudy/internal/buffer"
	"tcstudy/internal/pagedisk"
	"tcstudy/internal/relation"
)

func pool(t testing.TB, frames int) *buffer.Pool {
	t.Helper()
	d := pagedisk.New()
	pol, err := buffer.NewPolicy("lru", frames)
	if err != nil {
		t.Fatal(err)
	}
	return buffer.New(d, frames, pol)
}

func fillHeap(t *testing.T, p *buffer.Pool, tuples []relation.Tuple) *relation.Heap {
	t.Helper()
	h := relation.NewHeap(p, "in")
	for _, tu := range tuples {
		if err := h.Append(tu); err != nil {
			t.Fatal(err)
		}
	}
	return h
}

func readHeap(t *testing.T, h *relation.Heap) []relation.Tuple {
	t.Helper()
	var out []relation.Tuple
	if err := h.Scan(func(tu relation.Tuple) bool { out = append(out, tu); return true }); err != nil {
		t.Fatal(err)
	}
	return out
}

func isSortedUnique(ts []relation.Tuple) bool {
	for i := 1; i < len(ts); i++ {
		a, b := ts[i-1], ts[i]
		if a.Key > b.Key || (a.Key == b.Key && a.Val >= b.Val) {
			return false
		}
	}
	return true
}

func TestSortSmall(t *testing.T) {
	p := pool(t, 8)
	in := fillHeap(t, p, []relation.Tuple{{Key: 3, Val: 1}, {Key: 1, Val: 2}, {Key: 3, Val: 1}, {Key: 1, Val: 1}, {Key: 2, Val: 9}})
	out, err := Sort(p, in, 2, "out")
	if err != nil {
		t.Fatal(err)
	}
	got := readHeap(t, out)
	want := []relation.Tuple{{Key: 1, Val: 1}, {Key: 1, Val: 2}, {Key: 2, Val: 9}, {Key: 3, Val: 1}}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
	if out.Len() != 4 {
		t.Fatalf("Len = %d", out.Len())
	}
}

func TestSortEmpty(t *testing.T) {
	p := pool(t, 8)
	in := fillHeap(t, p, nil)
	out, err := Sort(p, in, 2, "out")
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 0 {
		t.Fatalf("empty sort produced %d tuples", out.Len())
	}
}

func TestSortRejectsTinyWorkPages(t *testing.T) {
	p := pool(t, 8)
	in := fillHeap(t, p, nil)
	if _, err := Sort(p, in, 1, "out"); err == nil {
		t.Fatal("workPages=1 accepted")
	}
}

func TestSortMultiRunMultiPass(t *testing.T) {
	// Force multiple runs and more runs than the fan-in, so multiple merge
	// passes happen: capacity per run = 2 pages * 255 = 510 tuples; 8000
	// tuples -> 16 runs -> fan-in 2 -> 4 merge passes.
	p := pool(t, 8)
	rng := rand.New(rand.NewSource(5))
	var ts []relation.Tuple
	for i := 0; i < 8000; i++ {
		ts = append(ts, relation.Tuple{Key: int32(rng.Intn(500)), Val: int32(rng.Intn(500))})
	}
	in := fillHeap(t, p, ts)
	out, err := Sort(p, in, 2, "out")
	if err != nil {
		t.Fatal(err)
	}
	got := readHeap(t, out)
	if !isSortedUnique(got) {
		t.Fatal("output not sorted-unique")
	}
	// Same distinct set as the input.
	want := map[relation.Tuple]bool{}
	for _, tu := range ts {
		want[tu] = true
	}
	if len(got) != len(want) {
		t.Fatalf("distinct count %d, want %d", len(got), len(want))
	}
	for _, tu := range got {
		if !want[tu] {
			t.Fatalf("unexpected tuple %v", tu)
		}
	}
}

func TestSortChargesIO(t *testing.T) {
	p := pool(t, 6)
	var ts []relation.Tuple
	for i := 0; i < 5000; i++ {
		ts = append(ts, relation.Tuple{Key: int32(5000 - i), Val: int32(i)})
	}
	in := fillHeap(t, p, ts)
	p.Disk().ResetStats()
	if _, err := Sort(p, in, 2, "out"); err != nil {
		t.Fatal(err)
	}
	st := p.Disk().Stats()
	if st.Reads == 0 || st.Writes == 0 {
		t.Fatalf("external sort did no I/O: %+v", st)
	}
}

func TestSortPropertyRandom(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := pool(t, 7)
		n := rng.Intn(3000)
		var ts []relation.Tuple
		for i := 0; i < n; i++ {
			ts = append(ts, relation.Tuple{Key: int32(rng.Intn(100)), Val: int32(rng.Intn(100))})
		}
		in := relation.NewHeap(p, "in")
		for _, tu := range ts {
			if err := in.Append(tu); err != nil {
				return false
			}
		}
		work := 2 + rng.Intn(3)
		out, err := Sort(p, in, work, "out")
		if err != nil {
			return false
		}
		var got []relation.Tuple
		_ = out.Scan(func(tu relation.Tuple) bool { got = append(got, tu); return true })
		if !isSortedUnique(got) {
			return false
		}
		distinct := map[relation.Tuple]bool{}
		for _, tu := range ts {
			distinct[tu] = true
		}
		return len(got) == len(distinct) && p.PinnedFrames() == 0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
