// Package extsort implements external merge sort over tuple heap files —
// the sort-based duplicate elimination machinery the iterative (Seminaive)
// baseline pays for on every iteration, as it did in the earlier studies
// the paper's related-work section draws on.
//
// Sorting proceeds classically: run generation fills a bounded number of
// buffer-pool pages worth of tuples, sorts them in memory and writes each
// run to its own temporary heap; runs are then merged with a bounded
// fan-in, multiple passes if needed. Every page touched flows through the
// buffer pool and is charged as I/O.
package extsort

import (
	"container/heap"
	"fmt"
	"sort"

	"tcstudy/internal/buffer"
	"tcstudy/internal/relation"
)

func less(a, b relation.Tuple) bool {
	if a.Key != b.Key {
		return a.Key < b.Key
	}
	return a.Val < b.Val
}

// Sort sorts the input heap by (Key, Val), removing exact duplicates, and
// returns a new sorted heap named name. workPages bounds both the run
// generation working set and the merge fan-in; it must be at least 2 and
// should leave headroom in the pool (run cursors pin one page each).
// The input heap is not modified; callers usually Discard it afterwards.
func Sort(pool *buffer.Pool, in *relation.Heap, workPages int, name string) (*relation.Heap, error) {
	if workPages < 2 {
		return nil, fmt.Errorf("extsort: need at least 2 work pages, got %d", workPages)
	}

	// --- Run generation -------------------------------------------------
	capacity := workPages * relation.HeapTuplesPerPage
	var runs []*relation.Heap
	buf := make([]relation.Tuple, 0, capacity)
	flush := func() error {
		if len(buf) == 0 {
			return nil
		}
		sort.Slice(buf, func(i, j int) bool { return less(buf[i], buf[j]) })
		run := relation.NewHeap(pool, fmt.Sprintf("%s-run%d", name, len(runs)))
		for i, t := range buf {
			if i > 0 && t == buf[i-1] {
				continue // in-run duplicate
			}
			if err := run.Append(t); err != nil {
				return err
			}
		}
		runs = append(runs, run)
		buf = buf[:0]
		return nil
	}
	var scanErr error
	if err := in.Scan(func(t relation.Tuple) bool {
		buf = append(buf, t)
		if len(buf) == capacity {
			if scanErr = flush(); scanErr != nil {
				return false
			}
		}
		return true
	}); err != nil {
		return nil, err
	}
	if scanErr != nil {
		return nil, scanErr
	}
	if err := flush(); err != nil {
		return nil, err
	}
	if len(runs) == 0 {
		return relation.NewHeap(pool, name), nil
	}

	// --- Merge passes ----------------------------------------------------
	pass := 0
	for len(runs) > 1 {
		fanIn := workPages
		var next []*relation.Heap
		for lo := 0; lo < len(runs); lo += fanIn {
			hi := lo + fanIn
			if hi > len(runs) {
				hi = len(runs)
			}
			outName := fmt.Sprintf("%s-p%d-%d", name, pass, len(next))
			if hi == len(runs) && lo == 0 {
				outName = name // final merge produces the result
			}
			merged, err := mergeRuns(pool, runs[lo:hi], outName)
			if err != nil {
				return nil, err
			}
			for _, r := range runs[lo:hi] {
				r.Discard()
			}
			next = append(next, merged)
		}
		runs = next
		pass++
	}
	return runs[0], nil
}

// mergeItem is one cursor's head tuple in the merge heap.
type mergeItem struct {
	t   relation.Tuple
	src int
}

type mergeHeap []mergeItem

func (m mergeHeap) Len() int           { return len(m) }
func (m mergeHeap) Less(i, j int) bool { return less(m[i].t, m[j].t) }
func (m mergeHeap) Swap(i, j int)      { m[i], m[j] = m[j], m[i] }
func (m *mergeHeap) Push(x any)        { *m = append(*m, x.(mergeItem)) }
func (m *mergeHeap) Pop() any          { old := *m; x := old[len(old)-1]; *m = old[:len(old)-1]; return x }

func mergeRuns(pool *buffer.Pool, runs []*relation.Heap, name string) (*relation.Heap, error) {
	out := relation.NewHeap(pool, name)
	cursors := make([]*relation.Cursor, len(runs))
	defer func() {
		for _, c := range cursors {
			if c != nil {
				c.Close()
			}
		}
	}()
	var mh mergeHeap
	for i, r := range runs {
		c := r.Cursor()
		cursors[i] = c
		if t, ok := c.Next(); ok {
			mh = append(mh, mergeItem{t: t, src: i})
		} else if c.Err() != nil {
			return nil, c.Err()
		}
	}
	heap.Init(&mh)
	var last relation.Tuple
	first := true
	for mh.Len() > 0 {
		item := mh[0]
		if t, ok := cursors[item.src].Next(); ok {
			mh[0] = mergeItem{t: t, src: item.src}
			heap.Fix(&mh, 0)
		} else {
			if err := cursors[item.src].Err(); err != nil {
				return nil, err
			}
			heap.Pop(&mh)
		}
		if first || item.t != last {
			if err := out.Append(item.t); err != nil {
				return nil, err
			}
			last = item.t
			first = false
		}
	}
	return out, nil
}
