package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"tcstudy/internal/core"
	"tcstudy/internal/graph"
	"tcstudy/internal/graphgen"
)

// newTestServer serves a generated DAG through httptest.
func newTestServer(t *testing.T, nodes int, opts Options) (*Server, *httptest.Server, *core.Database) {
	t.Helper()
	arcs, err := graphgen.Generate(graphgen.Params{Nodes: nodes, OutDegree: 4, Locality: 40, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	db := core.NewDatabase(nodes, arcs)
	s := New(db, opts)
	ts := httptest.NewServer(s)
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts, db
}

func postQuery(t *testing.T, url string, body any) (*http.Response, queryResponse) {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/v1/query", "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var qr queryResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
			t.Fatal(err)
		}
	}
	return resp, qr
}

func getJSON(t *testing.T, url string, v any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusOK && v != nil {
		if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
			t.Fatal(err)
		}
	}
	return resp.StatusCode
}

func TestQueryEndpointMatchesEngine(t *testing.T) {
	_, ts, db := newTestServer(t, 400, Options{})
	sources := []int32{3, 57, 200}
	want, err := core.Run(db, core.BJ, core.Query{Sources: sources}, core.Config{BufferPages: 10})
	if err != nil {
		t.Fatal(err)
	}

	resp, qr := postQuery(t, ts.URL, map[string]any{"algorithm": "bj", "sources": sources})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if qr.Cached {
		t.Fatal("first query reported cached")
	}
	if qr.Metrics.TotalIO != want.Metrics.TotalIO() {
		t.Fatalf("served I/O %d != engine %d", qr.Metrics.TotalIO, want.Metrics.TotalIO())
	}
	if qr.Metrics.DistinctTuples != want.Metrics.DistinctTuples {
		t.Fatalf("served tuples %d != engine %d", qr.Metrics.DistinctTuples, want.Metrics.DistinctTuples)
	}
	for _, src := range sources {
		if qr.SuccessorCounts[src] != len(want.Successors[src]) {
			t.Fatalf("successor count of %d: served %d != engine %d",
				src, qr.SuccessorCounts[src], len(want.Successors[src]))
		}
	}
}

func TestRepeatedQueryServedFromCacheWithoutIO(t *testing.T) {
	s, ts, _ := newTestServer(t, 400, Options{})
	body := map[string]any{"algorithm": "srch", "sources": []int32{5, 9}}

	resp, first := postQuery(t, ts.URL, body)
	if resp.StatusCode != http.StatusOK || first.Cached {
		t.Fatalf("first: status %d cached %t", resp.StatusCode, first.Cached)
	}
	pagesAfterMiss := s.Metrics().PagesServed.Load()
	if pagesAfterMiss == 0 {
		t.Fatal("miss served no page I/O")
	}

	resp, second := postQuery(t, ts.URL, body)
	if resp.StatusCode != http.StatusOK || !second.Cached {
		t.Fatalf("second: status %d cached %t", resp.StatusCode, second.Cached)
	}
	if second.Metrics.TotalIO != first.Metrics.TotalIO {
		t.Fatal("cached reply altered the metric record")
	}
	if got := s.Metrics().PagesServed.Load(); got != pagesAfterMiss {
		t.Fatalf("cache hit performed %d new page I/Os", got-pagesAfterMiss)
	}
	if s.Metrics().CacheHits.Load() != 1 || s.Metrics().CacheMisses.Load() != 1 {
		t.Fatalf("cache counters hits=%d misses=%d, want 1/1",
			s.Metrics().CacheHits.Load(), s.Metrics().CacheMisses.Load())
	}

	// Source order and duplicates canonicalize to the same entry.
	resp, third := postQuery(t, ts.URL, map[string]any{"algorithm": "srch", "sources": []int32{9, 5, 9}})
	if resp.StatusCode != http.StatusOK || !third.Cached {
		t.Fatalf("permuted sources missed the cache (status %d cached %t)", resp.StatusCode, third.Cached)
	}
}

func TestReachEndpoint(t *testing.T) {
	// A tiny graph with a known shape: 1->2->3, 4 isolated.
	db := core.NewDatabase(4, []graph.Arc{{From: 1, To: 2}, {From: 2, To: 3}})
	s := New(db, Options{})
	ts := httptest.NewServer(s)
	t.Cleanup(func() { ts.Close(); s.Close() })

	cases := []struct {
		src, dst int32
		want     bool
	}{
		{1, 3, true}, {1, 2, true}, {2, 3, true},
		{3, 1, false}, {4, 1, false}, {1, 1, false}, // acyclic: no self-reach
	}
	for _, c := range cases {
		var rr reachResponse
		if code := getJSON(t, fmt.Sprintf("%s/v1/reach?src=%d&dst=%d", ts.URL, c.src, c.dst), &rr); code != http.StatusOK {
			t.Fatalf("reach %d->%d: status %d", c.src, c.dst, code)
		}
		if rr.Reachable != c.want {
			t.Fatalf("reach %d->%d = %t, want %t", c.src, c.dst, rr.Reachable, c.want)
		}
	}
	// A repeated probe from a warm source is a cache hit with zero I/O.
	var rr reachResponse
	getJSON(t, ts.URL+"/v1/reach?src=1&dst=2", &rr)
	if !rr.Cached || rr.PageIO != 0 {
		t.Fatalf("warm reach: cached=%t io=%d", rr.Cached, rr.PageIO)
	}
}

func TestPlanEndpoint(t *testing.T) {
	_, ts, _ := newTestServer(t, 400, Options{})
	var pr planResponse
	if code := getJSON(t, ts.URL+"/v1/plan?sources=3&m=20", &pr); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if pr.Profile.Nodes != 400 || pr.Profile.Arcs == 0 {
		t.Fatalf("bad profile %+v", pr.Profile)
	}
	if pr.Sources != 3 || pr.BufferM != 20 {
		t.Fatalf("params not echoed: %+v", pr)
	}
	if len(pr.Estimates) < 5 {
		t.Fatalf("only %d estimates", len(pr.Estimates))
	}
	for i := 1; i < len(pr.Estimates); i++ {
		if pr.Estimates[i].IO < pr.Estimates[i-1].IO {
			t.Fatal("estimates not sorted cheapest-first")
		}
	}
	hasSRCH := false
	for _, e := range pr.Estimates {
		if e.Algorithm == string(core.SRCH) {
			hasSRCH = true
		}
	}
	if !hasSRCH {
		t.Fatal("selective plan omits srch")
	}
}

// TestPlanNamesBitMatrix: the 400-node test graph's condensation fits the
// dense-core kernel threshold, so /v1/plan must surface the condensation
// statistics and a bitmatrix estimate, and executing the strategy must
// label its phase histograms with the new algorithm name.
func TestPlanNamesBitMatrix(t *testing.T) {
	_, ts, _ := newTestServer(t, 400, Options{})
	var pr planResponse
	if code := getJSON(t, ts.URL+"/v1/plan?sources=0", &pr); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if pr.Profile.CondNodes != 400 || pr.Profile.CondArcs == 0 || pr.Profile.Density <= 0 {
		t.Fatalf("plan profile missing condensation stats: %+v", pr.Profile)
	}
	found := false
	for _, e := range pr.Estimates {
		if e.Algorithm == string(core.BITM) {
			found = true
			if !strings.Contains(e.Why, "kernel") {
				t.Errorf("bitmatrix why = %q", e.Why)
			}
		}
	}
	if !found {
		t.Fatalf("plan omits bitmatrix for a core that fits: %+v", pr.Estimates)
	}

	resp, qr := postQuery(t, ts.URL, map[string]any{"algorithm": "bitmatrix", "sources": []int32{1, 7}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("bitmatrix query status %d", resp.StatusCode)
	}
	if len(qr.SuccessorCounts) != 2 {
		t.Fatalf("bitmatrix query returned %d result rows", len(qr.SuccessorCounts))
	}
	text, _ := scrape(t, ts.URL)
	for _, phase := range []string{"restructure", "compute"} {
		want := `tc_engine_phase_seconds_count{algorithm="bitmatrix",phase="` + phase + `"}`
		if !strings.Contains(text, want) {
			t.Errorf("scrape missing %s", want)
		}
	}
}

func TestValidationErrors(t *testing.T) {
	_, ts, _ := newTestServer(t, 100, Options{})
	cases := []struct {
		name string
		body any
	}{
		{"unknown algorithm", map[string]any{"algorithm": "nope"}},
		{"zero source", map[string]any{"algorithm": "srch", "sources": []int32{0}}},
		{"negative source", map[string]any{"algorithm": "srch", "sources": []int32{-3}}},
		{"out of range source", map[string]any{"algorithm": "srch", "sources": []int32{101}}},
		{"tiny buffer", map[string]any{"algorithm": "srch", "sources": []int32{1}, "buffer_pages": 2}},
		{"bad page policy", map[string]any{"algorithm": "srch", "sources": []int32{1}, "page_policy": "zzz"}},
		{"bad list policy", map[string]any{"algorithm": "srch", "sources": []int32{1}, "list_policy": "zzz"}},
	}
	for _, c := range cases {
		if resp, _ := postQuery(t, ts.URL, c.body); resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", c.name, resp.StatusCode)
		}
	}
	// Malformed JSON.
	resp, err := http.Post(ts.URL+"/v1/query", "application/json", bytes.NewReader([]byte("{")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed body: status %d, want 400", resp.StatusCode)
	}
	// Bad reach parameters.
	if code := getJSON(t, ts.URL+"/v1/reach?src=x&dst=2", nil); code != http.StatusBadRequest {
		t.Errorf("bad reach src: status %d, want 400", code)
	}
	if code := getJSON(t, ts.URL+"/v1/reach?src=1&dst=9999", nil); code != http.StatusBadRequest {
		t.Errorf("out-of-range reach dst: status %d, want 400", code)
	}
}

func TestHealthzAndMetrics(t *testing.T) {
	_, ts, db := newTestServer(t, 200, Options{})
	var h struct {
		Status string `json:"status"`
		Nodes  int    `json:"nodes"`
		Arcs   int    `json:"arcs"`
	}
	if code := getJSON(t, ts.URL+"/healthz", &h); code != http.StatusOK {
		t.Fatalf("healthz status %d", code)
	}
	if h.Status != "ok" || h.Nodes != 200 || h.Arcs != db.NumArcs() {
		t.Fatalf("healthz %+v", h)
	}

	postQuery(t, ts.URL, map[string]any{"algorithm": "srch", "sources": []int32{1}})
	var snap Snapshot
	if code := getJSON(t, ts.URL+"/metrics?format=json", &snap); code != http.StatusOK {
		t.Fatalf("metrics status %d", code)
	}
	if snap.Queries != 1 || snap.CacheMisses != 1 || snap.PagesServed == 0 {
		t.Fatalf("metrics after one query: %+v", snap)
	}
	if snap.LatencyMS.Count != 1 {
		t.Fatalf("latency window has %d samples, want 1", snap.LatencyMS.Count)
	}
}

func TestConcurrentIdenticalQueriesRunOnce(t *testing.T) {
	s, ts, _ := newTestServer(t, 400, Options{Workers: 4})
	body, _ := json.Marshal(map[string]any{"algorithm": "btc", "sources": []int32{2, 11, 73}})
	const n = 12
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/v1/query", "application/json", bytes.NewReader(body))
			if err != nil {
				t.Error(err)
				return
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Errorf("status %d", resp.StatusCode)
			}
		}()
	}
	wg.Wait()
	if misses := s.Metrics().CacheMisses.Load(); misses != 1 {
		t.Fatalf("identical concurrent queries executed %d times, want 1", misses)
	}
	m := s.Metrics().Snapshot()
	if m.CacheHits+m.Deduplicated != n-1 {
		t.Fatalf("hits=%d dedup=%d over %d requests", m.CacheHits, m.Deduplicated, n)
	}
}

func TestServerCloseRefusesNewQueries(t *testing.T) {
	s, ts, _ := newTestServer(t, 100, Options{})
	postQuery(t, ts.URL, map[string]any{"algorithm": "srch", "sources": []int32{1}})
	s.Close()
	// Uncached queries are refused once the dispatcher is closed…
	resp, _ := postQuery(t, ts.URL, map[string]any{"algorithm": "srch", "sources": []int32{2}})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("closed server returned %d, want 503", resp.StatusCode)
	}
	// …but cached results still serve.
	resp, qr := postQuery(t, ts.URL, map[string]any{"algorithm": "srch", "sources": []int32{1}})
	if resp.StatusCode != http.StatusOK || !qr.Cached {
		t.Fatalf("cached read after close: status %d cached %t", resp.StatusCode, qr.Cached)
	}
}
