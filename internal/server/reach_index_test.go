package server

import (
	"fmt"
	"net/http"
	"testing"

	"tcstudy/internal/core"
	"tcstudy/internal/graph"
	"tcstudy/internal/graphgen"
	"tcstudy/internal/index"
)

// newIndexedServer builds a server whose /v1/reach is backed by a
// reachability index over the same generated graph.
func newIndexedServer(t *testing.T, nodes int) (*Server, string, *index.Index) {
	t.Helper()
	arcs, err := graphgen.Generate(graphgen.Params{Nodes: nodes, OutDegree: 4, Locality: 40, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	idx, err := index.Build(graph.New(nodes, arcs))
	if err != nil {
		t.Fatal(err)
	}
	s, ts, _ := newTestServer(t, nodes, Options{Index: idx})
	_ = s
	return s, ts.URL, idx
}

func TestReachIndexFastPath(t *testing.T) {
	const nodes = 200
	s, url, _ := newIndexedServer(t, nodes)

	// Engine-computed truth for a handful of sources.
	arcs, err := graphgen.Generate(graphgen.Params{Nodes: nodes, OutDegree: 4, Locality: 40, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	db := core.NewDatabase(nodes, arcs)
	probes := 0
	for _, src := range []int32{1, 17, 99, 160} {
		res, err := core.Run(db, core.SRCH, core.Query{Sources: []int32{src}}, core.Config{BufferPages: 10})
		if err != nil {
			t.Fatal(err)
		}
		reachable := map[int32]bool{}
		for _, v := range res.Successors[src] {
			reachable[v] = true
		}
		for dst := int32(1); dst <= nodes; dst += 13 {
			var rr reachResponse
			if code := getJSON(t, fmt.Sprintf("%s/v1/reach?src=%d&dst=%d", url, src, dst), &rr); code != http.StatusOK {
				t.Fatalf("status %d", code)
			}
			if !rr.IndexHit {
				t.Fatalf("reach %d->%d not served by the index", src, dst)
			}
			if rr.Reachable != reachable[dst] {
				t.Fatalf("index says Reach(%d,%d)=%t, engine says %t", src, dst, rr.Reachable, reachable[dst])
			}
			if rr.PageIO != 0 {
				t.Fatalf("index hit charged %d page I/O", rr.PageIO)
			}
			probes++
		}
	}
	snap := s.Metrics().Snapshot()
	if snap.IndexHits != int64(probes) {
		t.Fatalf("index_hits = %d, want %d", snap.IndexHits, probes)
	}
	if snap.PagesServed != 0 {
		t.Fatalf("index path served %d pages from the engine", snap.PagesServed)
	}
	if snap.Reaches != int64(probes) {
		t.Fatalf("reaches = %d, want %d", snap.Reaches, probes)
	}
}

func TestReachIndexValidation(t *testing.T) {
	_, url, _ := newIndexedServer(t, 50)
	for _, q := range []string{"src=0&dst=1", "src=1&dst=999", "src=x&dst=1"} {
		var rr map[string]any
		if code := getJSON(t, url+"/v1/reach?"+q, &rr); code != http.StatusBadRequest {
			t.Fatalf("query %q: status %d, want 400", q, code)
		}
	}
}

func TestReachStaleIndexFallsBackToEngine(t *testing.T) {
	s, url, idx := newIndexedServer(t, 60)
	// Force staleness with a cycle-creating insert: find a reachable pair
	// and close the loop.
	var u, v int32
	for u = 1; u <= 60 && v == 0; u++ {
		for _, w := range idx.Successors(u) {
			if w != u {
				v = w
				break
			}
		}
	}
	u--
	if v == 0 {
		t.Fatal("generated graph has no reachable pair")
	}
	if err := idx.InsertArc(v, u); err != index.ErrStale {
		t.Fatalf("closing insert returned %v, want ErrStale", err)
	}
	var rr reachResponse
	if code := getJSON(t, fmt.Sprintf("%s/v1/reach?src=%d&dst=%d", url, u, v), &rr); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if rr.IndexHit {
		t.Fatal("stale index still answered the request")
	}
	if !rr.Reachable {
		t.Fatalf("engine fallback lost reachability %d->%d", u, v)
	}
	if s.Metrics().IndexHits.Load() != 0 {
		t.Fatal("stale index counted an index hit")
	}
}
