package server

import (
	"encoding/json"
	"testing"
	"time"
)

func TestMetricsSnapshotCounters(t *testing.T) {
	m := NewMetrics()
	m.Queries.Add(3)
	m.Reaches.Add(2)
	m.Plans.Add(1)
	m.CacheHits.Add(4)
	m.CacheMisses.Add(1)
	m.Rejected.Add(5)
	m.PagesServed.Add(1234)
	s := m.Snapshot()
	if s.Queries != 3 || s.Reaches != 2 || s.Plans != 1 {
		t.Fatalf("request counters wrong: %+v", s)
	}
	if s.CacheHitRate != 0.8 {
		t.Fatalf("hit rate %f, want 0.8", s.CacheHitRate)
	}
	if s.QPS <= 0 {
		t.Fatalf("qps %f, want > 0 after completed requests", s.QPS)
	}
	if s.PagesServed != 1234 || s.Rejected != 5 {
		t.Fatalf("counters wrong: %+v", s)
	}
}

func TestMetricsLatencyQuantiles(t *testing.T) {
	m := NewMetrics()
	// 1..100 ms: quantiles are exact order statistics of the window.
	for i := 1; i <= 100; i++ {
		m.ObserveLatency(time.Duration(i) * time.Millisecond)
	}
	q := m.Snapshot().LatencyMS
	if q.Count != 100 {
		t.Fatalf("count %d, want 100", q.Count)
	}
	if q.P50 < 45 || q.P50 > 55 {
		t.Fatalf("p50 %f out of range", q.P50)
	}
	if q.P90 < 85 || q.P90 > 95 {
		t.Fatalf("p90 %f out of range", q.P90)
	}
	if q.P99 < 95 || q.P99 > 100 {
		t.Fatalf("p99 %f out of range", q.P99)
	}
	if q.Max != 100 {
		t.Fatalf("max %f, want 100", q.Max)
	}
	if !(q.P50 <= q.P90 && q.P90 <= q.P99 && q.P99 <= q.Max) {
		t.Fatalf("quantiles not monotone: %+v", q)
	}
}

func TestMetricsLatencyWindowWraps(t *testing.T) {
	m := NewMetrics()
	// Overfill the ring; the window must keep only recent samples and the
	// total count must keep the true number.
	for i := 0; i < latencyWindow+100; i++ {
		m.ObserveLatency(time.Millisecond)
	}
	q := m.Snapshot().LatencyMS
	if q.Count != latencyWindow+100 {
		t.Fatalf("count %d, want %d", q.Count, latencyWindow+100)
	}
	if q.Max != 1 {
		t.Fatalf("max %f, want 1", q.Max)
	}
}

func TestMetricsEmptySnapshotMarshals(t *testing.T) {
	b, err := json.Marshal(NewMetrics().Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	var round Snapshot
	if err := json.Unmarshal(b, &round); err != nil {
		t.Fatal(err)
	}
	if round.LatencyMS.Count != 0 {
		t.Fatalf("empty snapshot has latency samples: %+v", round)
	}
}
