package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"tcstudy/internal/core"
	"tcstudy/internal/graph"
	"tcstudy/internal/graphgen"
	"tcstudy/internal/index"
)

// Server benchmarks, following the repository convention of reporting page
// I/O — the paper's primary metric — alongside time via ReportMetric. The
// cache-hit path measures the full HTTP round trip served from the LRU;
// the cache-miss path adds one engine execution per operation.

var (
	benchOnce sync.Once
	benchDB   *core.Database
	reachOnce sync.Once
	reachDB   *core.Database
)

func ensureBenchDB(b *testing.B) {
	b.Helper()
	benchOnce.Do(func() {
		arcs, err := graphgen.Generate(graphgen.Params{Nodes: 500, OutDegree: 5, Locality: 50, Seed: 11})
		if err != nil {
			b.Fatal(err)
		}
		benchDB = core.NewDatabase(500, arcs)
	})
}

func benchServer(b *testing.B) (*Server, *httptest.Server) {
	b.Helper()
	ensureBenchDB(b)
	s := New(benchDB, Options{CacheEntries: 4096})
	ts := httptest.NewServer(s)
	b.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

func post(b *testing.B, client *http.Client, url string, body []byte) {
	b.Helper()
	resp, err := client.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		b.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b.Fatalf("status %d", resp.StatusCode)
	}
}

func BenchmarkServerQuery(b *testing.B) {
	b.Run("hit", func(b *testing.B) {
		s, ts := benchServer(b)
		client := ts.Client()
		body, _ := json.Marshal(map[string]any{"algorithm": "srch", "sources": []int32{7, 42}})
		post(b, client, ts.URL+"/v1/query", body) // prime the cache
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			post(b, client, ts.URL+"/v1/query", body)
		}
		b.StopTimer()
		if s.Metrics().CacheHits.Load() < int64(b.N) {
			b.Fatalf("only %d cache hits over %d ops", s.Metrics().CacheHits.Load(), b.N)
		}
		b.ReportMetric(0, "pageIO/op")
	})
	b.Run("miss", func(b *testing.B) {
		s, ts := benchServer(b)
		client := ts.Client()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			// A fresh source pair every iteration defeats the cache.
			body, _ := json.Marshal(map[string]any{
				"algorithm": "srch",
				"sources":   []int32{int32(i%500 + 1), int32((i/500)%500 + 1)},
			})
			post(b, client, ts.URL+"/v1/query", body)
		}
		b.StopTimer()
		pages := s.Metrics().PagesServed.Load()
		b.ReportMetric(float64(pages)/float64(b.N), "pageIO/op")
	})
	b.Run("reach", func(b *testing.B) {
		s, ts := benchServer(b)
		client := ts.Client()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			// Sources cycle through a small pool, so the steady state is
			// the warm-source path.
			url := fmt.Sprintf("%s/v1/reach?src=%d&dst=%d", ts.URL, i%16+1, (i*7)%500+1)
			resp, err := client.Get(url)
			if err != nil {
				b.Fatal(err)
			}
			resp.Body.Close()
		}
		b.StopTimer()
		b.ReportMetric(float64(s.Metrics().PagesServed.Load())/float64(b.N), "pageIO/op")
	})
}

// BenchmarkReach compares the two ways GET /v1/reach can be served: the
// chain-decomposition index (O(1)/O(log k) label probe, zero page I/O)
// against the engine path on cold sources (a SRCH expansion through the
// paged store per new source). Sources rotate through a pool larger than
// the result cache so the engine sub-benchmark measures real engine work,
// which is the case the index exists to eliminate. Requests exercise the
// full handler via ServeHTTP — skipping the loopback TCP round trip, which
// would otherwise swamp both paths equally. The acceptance bar for this PR
// is the index path at >= 10x lower ns/op.
func BenchmarkReach(b *testing.B) {
	// The paper's full-scale G5 graph (n=2000, F=5, l=200), so the engine
	// path pays a representative SRCH expansion per cold source.
	const reachNodes = 2000
	reachOnce.Do(func() {
		arcs, err := graphgen.Generate(graphgen.Params{Nodes: reachNodes, OutDegree: 5, Locality: 200, Seed: 11})
		if err != nil {
			b.Fatal(err)
		}
		reachDB = core.NewDatabase(reachNodes, arcs)
	})
	const pool = 400 // distinct sources; deliberately larger than the cache
	run := func(b *testing.B, opts Options) *Server {
		s := New(reachDB, opts)
		b.Cleanup(s.Close)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			target := fmt.Sprintf("/v1/reach?src=%d&dst=%d", i%pool+1, (i*7)%reachNodes+1)
			rec := httptest.NewRecorder()
			s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, target, nil))
			if rec.Code != http.StatusOK {
				b.Fatalf("status %d", rec.Code)
			}
		}
		b.StopTimer()
		b.ReportMetric(float64(s.Metrics().PagesServed.Load())/float64(b.N), "pageIO/op")
		return s
	}
	b.Run("index", func(b *testing.B) {
		arcs, err := reachDB.Arcs()
		if err != nil {
			b.Fatal(err)
		}
		idx, err := index.Build(graph.New(reachDB.N(), arcs))
		if err != nil {
			b.Fatal(err)
		}
		s := run(b, Options{CacheEntries: 16, Index: idx})
		if s.Metrics().IndexHits.Load() < int64(b.N) {
			b.Fatalf("only %d of %d requests hit the index", s.Metrics().IndexHits.Load(), b.N)
		}
	})
	b.Run("engine", func(b *testing.B) {
		run(b, Options{CacheEntries: 16})
	})
}
