package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"tcstudy/internal/core"
	"tcstudy/internal/dynamic"
	"tcstudy/internal/graph"
	"tcstudy/internal/graphgen"
	"tcstudy/internal/index"
)

// newDynamicServer serves a generated DAG through a mutable dynamic graph
// service. Manual rebuild mode keeps tests deterministic: nothing swaps
// generations until the test says so.
func newDynamicServer(t *testing.T, nodes int, opts dynamic.Options) (*Server, string, *dynamic.Service) {
	t.Helper()
	arcs, err := graphgen.Generate(graphgen.Params{Nodes: nodes, OutDegree: 4, Locality: 40, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	db := core.NewDatabase(nodes, arcs)
	idx, err := index.Build(graph.New(nodes, arcs))
	if err != nil {
		t.Fatal(err)
	}
	if opts.BaseFingerprint == 0 {
		fp, err := db.Fingerprint()
		if err != nil {
			t.Fatal(err)
		}
		opts.BaseFingerprint = fp
	}
	dyn, err := dynamic.New(nodes, arcs, idx, opts)
	if err != nil {
		t.Fatal(err)
	}
	s := New(db, Options{Dynamic: dyn})
	ts := httptest.NewServer(s)
	t.Cleanup(func() {
		ts.Close()
		s.Close()
		dyn.Close()
	})
	return s, ts.URL, dyn
}

func postArc(t *testing.T, url, body string) (*http.Response, arcResponse) {
	t.Helper()
	resp, err := http.Post(url+"/v1/arc", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var ar arcResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&ar); err != nil {
			t.Fatal(err)
		}
	}
	return resp, ar
}

func reachDyn(t *testing.T, url string, src, dst int32) reachResponse {
	t.Helper()
	var rr reachResponse
	if code := getJSON(t, fmt.Sprintf("%s/v1/reach?src=%d&dst=%d", url, src, dst), &rr); code != http.StatusOK {
		t.Fatalf("reach %d->%d: status %d", src, dst, code)
	}
	return rr
}

func TestArcEndpointValidation(t *testing.T) {
	_, url, _ := newDynamicServer(t, 50, dynamic.Options{Manual: true})
	for _, body := range []string{
		``,
		`{`,
		`{"ops":[]}`,
		`{"ops":[{"op":"upsert","from":1,"to":2}]}`,
		`{"ops":[{"op":"insert","from":0,"to":2}]}`,
		`{"ops":[{"op":"insert","from":1,"to":51}]}`,
		`{"ops":[{"op":"insert","from":1,"to":2}]}trailing`,
		`{"bogus":1,"ops":[{"op":"insert","from":1,"to":2}]}`,
	} {
		resp, _ := postArc(t, url, body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("body %q: status %d, want 400", body, resp.StatusCode)
		}
	}
}

func TestArcInsertThenReachReadYourWrites(t *testing.T) {
	_, url, _ := newDynamicServer(t, 50, dynamic.Options{Manual: true})

	// A brand-new arc 1->50 must be visible to the very next reach.
	before := reachDyn(t, url, 1, 50)
	resp, ar := postArc(t, url, `{"ops":[{"op":"insert","from":1,"to":50}]}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("arc status %d", resp.StatusCode)
	}
	if ar.Seq != 1 || ar.Applied != 1 || ar.Rebuilding {
		t.Fatalf("arc response %+v", ar)
	}
	after := reachDyn(t, url, 1, 50)
	if !after.Reachable || !after.IndexHit {
		t.Fatalf("after insert: %+v (before: %+v)", after, before)
	}
	if after.Seq != 1 {
		t.Fatalf("reach seq %d, want 1", after.Seq)
	}

	// Read-your-writes: asking for a sequence this replica has not applied
	// yet is a retryable 503, not a silently stale answer.
	var errBody map[string]any
	code := getJSON(t, url+"/v1/reach?src=1&dst=50&seq=99", &errBody)
	if code != http.StatusServiceUnavailable {
		t.Fatalf("future seq: status %d, want 503", code)
	}
}

func TestArcCycleInsertMergesAndKeepsIndexHits(t *testing.T) {
	_, url, dyn := newDynamicServer(t, 50, dynamic.Options{Manual: true})

	// Find a pair u->v reachable through the DAG, then insert v->u to
	// create a cycle. The index must merge the components in place — no
	// stale flag, and subsequent reads stay on the index fast path.
	var u, v int32
	for u = 1; u <= 40 && v == 0; u++ {
		for w := u + 1; w <= 50; w++ {
			if dyn.Index().Reach(u, w) {
				v = w
				break
			}
		}
	}
	u--
	if v == 0 {
		t.Fatal("no reachable pair in generated DAG")
	}
	resp, ar := postArc(t, url, fmt.Sprintf(`{"ops":[{"op":"insert","from":%d,"to":%d}]}`, v, u))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("arc status %d", resp.StatusCode)
	}
	if ar.Merged < 1 {
		t.Fatalf("cycle insert merged %d components, want >= 1", ar.Merged)
	}
	if ar.Rebuilding {
		t.Fatal("cycle insert marked the service dirty")
	}
	// Both directions now hold, answered by the index.
	for _, pair := range [][2]int32{{u, v}, {v, u}, {u, u}} {
		rr := reachDyn(t, url, pair[0], pair[1])
		if !rr.Reachable || !rr.IndexHit {
			t.Fatalf("post-merge reach %d->%d: %+v", pair[0], pair[1], rr)
		}
	}
	if dyn.Index().Stale() {
		t.Fatal("index stale after in-place merge")
	}
}

func TestArcShrinkingDeleteServesOverlayThenRebuilds(t *testing.T) {
	s, url, dyn := newDynamicServer(t, 50, dynamic.Options{Manual: true})

	// Find a non-redundant arc: deleting it shrinks the closure, so the
	// service goes dirty and answers from the overlay until rebuilt.
	var ar arcResponse
	found := false
	for _, a := range dyn.Arcs() {
		resp, r := postArc(t, url, fmt.Sprintf(`{"ops":[{"op":"delete","from":%d,"to":%d}]}`, a.From, a.To))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("delete status %d", resp.StatusCode)
		}
		if r.Rebuilding {
			ar, found = r, true
			break
		}
	}
	if !found {
		t.Skip("every arc in the generated graph is closure-redundant")
	}
	if ar.Pending < 1 {
		t.Fatalf("dirty service reports %d pending batches", ar.Pending)
	}
	// Overlay answers carry overlay:true and no index hit.
	rr := reachDyn(t, url, 1, 40)
	if rr.IndexHit || !rr.Overlay {
		t.Fatalf("dirty reach not from overlay: %+v", rr)
	}
	// Healthz reports the rebuild in flight and /metrics flags the index
	// stale.
	var hz map[string]any
	if code := getJSON(t, url+"/healthz", &hz); code != http.StatusOK {
		t.Fatalf("healthz status %d", code)
	}
	dynBlock, ok := hz["dynamic"].(map[string]any)
	if !ok {
		t.Fatalf("healthz missing dynamic block: %v", hz)
	}
	if dynBlock["rebuilding"] != true {
		t.Fatalf("healthz dynamic block %v, want rebuilding true", dynBlock)
	}
	if got := s.met.Prometheus(0, 0, s.indexState()); !strings.Contains(got, "tc_index_stale 1") {
		t.Fatalf("metrics missing tc_index_stale 1:\n%s", got)
	}

	if err := dyn.RebuildNow(); err != nil {
		t.Fatal(err)
	}
	rr = reachDyn(t, url, 1, 40)
	if !rr.IndexHit {
		t.Fatalf("post-rebuild reach not from index: %+v", rr)
	}
	if code := getJSON(t, url+"/healthz", &hz); code != http.StatusOK {
		t.Fatalf("healthz status %d", code)
	}
	dynBlock = hz["dynamic"].(map[string]any)
	if dynBlock["rebuilding"] != false || dynBlock["generation"].(float64) < 1 {
		t.Fatalf("post-rebuild dynamic block %v", dynBlock)
	}
}

func TestArcBacklogReturns429(t *testing.T) {
	_, url, _ := newDynamicServer(t, 50, dynamic.Options{Manual: true, MaxPending: 1})

	// Dirty the service, then exceed the one-batch backlog allowance.
	dirtied := false
	for f := int32(1); f <= 50 && !dirtied; f++ {
		resp, r := postArc(t, url, fmt.Sprintf(`{"ops":[{"op":"delete","from":%d,"to":%d}]}`, f, f%50+1))
		if resp.StatusCode == http.StatusBadRequest {
			continue
		}
		if resp.StatusCode == http.StatusOK && r.Rebuilding {
			dirtied = true
		}
	}
	if !dirtied {
		t.Skip("could not dirty the service with single deletes")
	}
	resp, _ := postArc(t, url, `{"ops":[{"op":"insert","from":1,"to":2}]}`)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("backlogged write: status %d, want 429", resp.StatusCode)
	}
}

func TestArcDifferentialAgainstOracle(t *testing.T) {
	const nodes = 40
	_, url, dyn := newDynamicServer(t, nodes, dynamic.Options{Manual: true})

	// Mirror of the service's graph, mutated in lockstep; fresh BFS over it
	// is the truth for every probe.
	adj := make(map[int32]map[int32]bool)
	for _, a := range dyn.Arcs() {
		if adj[a.From] == nil {
			adj[a.From] = map[int32]bool{}
		}
		adj[a.From][a.To] = true
	}
	oracle := func(src, dst int32) bool {
		seen := make([]bool, nodes+1)
		queue := []int32{src}
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for v := range adj[u] {
				if v == dst {
					return true
				}
				if !seen[v] {
					seen[v] = true
					queue = append(queue, v)
				}
			}
		}
		return false
	}

	rng := uint64(12345)
	next := func(n int32) int32 {
		rng = rng*6364136223846793005 + 1442695040888963407
		return int32(rng>>33)%n + 1
	}
	for step := 0; step < 40; step++ {
		f, to := next(nodes), next(nodes)
		op := "insert"
		if step%3 == 2 {
			op = "delete"
		}
		resp, _ := postArc(t, url, fmt.Sprintf(`{"ops":[{"op":%q,"from":%d,"to":%d}]}`, op, f, to))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("step %d: status %d", step, resp.StatusCode)
		}
		if op == "insert" {
			if adj[f] == nil {
				adj[f] = map[int32]bool{}
			}
			adj[f][to] = true
		} else if adj[f] != nil {
			delete(adj[f], to)
		}
		// Probe a band of pairs after every batch, mid-rebuild included.
		for p := 0; p < 8; p++ {
			src, dst := next(nodes), next(nodes)
			rr := reachDyn(t, url, src, dst)
			if rr.Reachable != oracle(src, dst) {
				t.Fatalf("step %d: reach(%d,%d)=%t, oracle says %t (overlay=%t)",
					step, src, dst, rr.Reachable, oracle(src, dst), rr.Overlay)
			}
		}
		if step%10 == 9 {
			if err := dyn.RebuildNow(); err != nil {
				t.Fatal(err)
			}
			for p := 0; p < 8; p++ {
				src, dst := next(nodes), next(nodes)
				rr := reachDyn(t, url, src, dst)
				if rr.Reachable != oracle(src, dst) {
					t.Fatalf("step %d post-rebuild: reach(%d,%d)=%t, oracle says %t",
						step, src, dst, rr.Reachable, oracle(src, dst))
				}
			}
		}
	}
}

func TestArcMetricsAndBodyLimit(t *testing.T) {
	s, url, _ := newDynamicServer(t, 50, dynamic.Options{Manual: true})

	if resp, _ := postArc(t, url, `{"ops":[{"op":"insert","from":1,"to":50}]}`); resp.StatusCode != http.StatusOK {
		t.Fatalf("arc status %d", resp.StatusCode)
	}
	reachDyn(t, url, 1, 50)

	got := s.met.Prometheus(0, 0, s.indexState())
	for _, want := range []string{
		`tc_requests_total{endpoint="arc"} 1`,
		"tc_mutations_total 1",
		"tc_index_generation 0",
		"tc_mutation_seq 1",
		"tc_overlay_reads_total 0",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("metrics missing %q", want)
		}
	}

	// An over-sized body is rejected up front, not half-parsed.
	huge := bytes.Repeat([]byte("x"), maxArcBody+1)
	resp, err := http.Post(url+"/v1/arc", "application/json", bytes.NewReader(huge))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("oversized body: status %d, want 400", resp.StatusCode)
	}
}
