package server

import (
	"fmt"
	"net/http"
	"testing"
)

// healthzBody mirrors the /healthz JSON a routing tier consumes.
type healthzBody struct {
	Status      string `json:"status"`
	Nodes       int    `json:"nodes"`
	Arcs        int    `json:"arcs"`
	Fingerprint string `json:"fingerprint"`
	Index       *struct {
		Nodes      int    `json:"nodes"`
		Arcs       int    `json:"arcs"`
		Stale      bool   `json:"stale"`
		Generation int    `json:"generation"`
		Chains     int    `json:"chains"`
		Builder    string `json:"builder"`
	} `json:"index"`
}

func TestHealthzFingerprint(t *testing.T) {
	s, ts, db := newTestServer(t, 200, Options{})
	_ = s
	var h healthzBody
	if code := getJSON(t, ts.URL+"/healthz", &h); code != http.StatusOK {
		t.Fatalf("healthz status %d", code)
	}
	fp, err := db.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	if want := fmt.Sprintf("%016x", fp); h.Fingerprint != want {
		t.Fatalf("healthz fingerprint %q, want %q", h.Fingerprint, want)
	}
	if h.Index != nil {
		t.Fatalf("no index loaded but healthz reports %+v", h.Index)
	}

	// A replica serving the same generator parameters must answer with the
	// identical fingerprint: that is the enrollment contract of tcrouter.
	_, ts2, _ := newTestServer(t, 200, Options{})
	var h2 healthzBody
	getJSON(t, ts2.URL+"/healthz", &h2)
	if h2.Fingerprint != h.Fingerprint {
		t.Fatalf("identical datasets fingerprint differently: %q vs %q", h.Fingerprint, h2.Fingerprint)
	}
}

func TestHealthzReportsIndex(t *testing.T) {
	_, url, idx := newIndexedServer(t, 150)
	var h healthzBody
	if code := getJSON(t, url+"/healthz", &h); code != http.StatusOK {
		t.Fatalf("healthz status %d", code)
	}
	if h.Index == nil {
		t.Fatal("healthz omits the loaded index")
	}
	if h.Index.Nodes != idx.N() || h.Index.Stale != idx.Stale() {
		t.Fatalf("healthz index %+v disagrees with the index (n=%d stale=%v)", h.Index, idx.N(), idx.Stale())
	}
	if h.Index.Generation != 0 {
		t.Fatalf("fresh index at generation %d, want 0", h.Index.Generation)
	}
	if h.Index.Builder != idx.Builder() || h.Index.Chains != idx.Chains() {
		t.Fatalf("healthz reports builder=%q chains=%d, index has builder=%q chains=%d",
			h.Index.Builder, h.Index.Chains, idx.Builder(), idx.Chains())
	}
	if h.Index.Builder == "" || h.Index.Chains <= 0 {
		t.Fatalf("healthz index identity empty: %+v", h.Index)
	}
}
