package server

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Metrics is the server's live counter set, exported as JSON by the
// /metrics endpoint. Counters are lock-free atomics; latency quantiles come
// from a mutex-guarded ring of recent request latencies, so a snapshot is
// cheap enough to poll while serving traffic.
type Metrics struct {
	start time.Time

	// Request counters by endpoint.
	Queries atomic.Int64 // POST /v1/query requests accepted for processing
	Reaches atomic.Int64 // GET /v1/reach requests accepted for processing
	Plans   atomic.Int64 // GET /v1/plan requests

	// Outcome counters.
	CacheHits    atomic.Int64 // answered straight from the result cache
	CacheMisses  atomic.Int64 // executed by the engine
	IndexHits    atomic.Int64 // /v1/reach answered by the reachability index
	Deduplicated atomic.Int64 // coalesced onto an identical in-flight query
	Rejected      atomic.Int64 // 429: admission queue full
	Timeouts      atomic.Int64 // 504: request deadline expired
	StorageFaults atomic.Int64 // 503: transient storage fault under the engine
	Errors        atomic.Int64 // 4xx validation + other 5xx engine failures

	// Work served by the engine (cache hits add nothing here — that page
	// I/O was already paid for by the miss that filled the cache).
	PagesServed  atomic.Int64 // page I/O of executed queries (the paper's metric)
	TuplesServed atomic.Int64 // distinct closure tuples materialized

	// InFlight is the number of requests currently being processed.
	InFlight atomic.Int64

	lat latencyRing
}

// NewMetrics returns a zeroed metric set with the clock started.
func NewMetrics() *Metrics {
	return &Metrics{start: time.Now()}
}

// ObserveLatency records one served request's latency.
func (m *Metrics) ObserveLatency(d time.Duration) { m.lat.add(d) }

// Snapshot is the JSON shape of /metrics.
type Snapshot struct {
	UptimeSeconds float64 `json:"uptime_seconds"`
	QPS           float64 `json:"qps"` // completed requests / uptime

	Queries int64 `json:"queries"`
	Reaches int64 `json:"reaches"`
	Plans   int64 `json:"plans"`

	CacheHits    int64   `json:"cache_hits"`
	CacheMisses  int64   `json:"cache_misses"`
	CacheHitRate float64 `json:"cache_hit_rate"`
	IndexHits    int64   `json:"index_hits"`
	Deduplicated int64   `json:"deduplicated"`
	Rejected      int64   `json:"rejected"`
	Timeouts      int64   `json:"timeouts"`
	StorageFaults int64   `json:"storage_faults"`
	Errors        int64   `json:"errors"`

	PagesServed  int64 `json:"pages_served"`
	TuplesServed int64 `json:"tuples_served"`
	InFlight     int64 `json:"in_flight"`

	LatencyMS LatencyQuantiles `json:"latency_ms"`
}

// LatencyQuantiles reports quantiles over the recent-latency window, in
// milliseconds.
type LatencyQuantiles struct {
	Count int64   `json:"count"`
	P50   float64 `json:"p50"`
	P90   float64 `json:"p90"`
	P99   float64 `json:"p99"`
	Max   float64 `json:"max"`
}

// Snapshot captures the current counter values.
func (m *Metrics) Snapshot() Snapshot {
	up := time.Since(m.start).Seconds()
	hits, misses := m.CacheHits.Load(), m.CacheMisses.Load()
	completed := m.Queries.Load() + m.Reaches.Load() + m.Plans.Load()
	s := Snapshot{
		UptimeSeconds: up,
		Queries:       m.Queries.Load(),
		Reaches:       m.Reaches.Load(),
		Plans:         m.Plans.Load(),
		CacheHits:     hits,
		CacheMisses:   misses,
		IndexHits:     m.IndexHits.Load(),
		Deduplicated:  m.Deduplicated.Load(),
		Rejected:      m.Rejected.Load(),
		Timeouts:      m.Timeouts.Load(),
		StorageFaults: m.StorageFaults.Load(),
		Errors:        m.Errors.Load(),
		PagesServed:   m.PagesServed.Load(),
		TuplesServed:  m.TuplesServed.Load(),
		InFlight:      m.InFlight.Load(),
		LatencyMS:     m.lat.quantiles(),
	}
	if up > 0 {
		s.QPS = float64(completed) / up
	}
	if hits+misses > 0 {
		s.CacheHitRate = float64(hits) / float64(hits+misses)
	}
	return s
}

// latencyWindow bounds the quantile computation; at 4096 samples the window
// covers well over a minute of traffic at the load generator's default rate.
const latencyWindow = 4096

// latencyRing keeps the most recent latencies for quantile estimation.
type latencyRing struct {
	mu    sync.Mutex
	buf   [latencyWindow]time.Duration
	next  int
	total int64
}

func (r *latencyRing) add(d time.Duration) {
	r.mu.Lock()
	r.buf[r.next] = d
	r.next = (r.next + 1) % latencyWindow
	r.total++
	r.mu.Unlock()
}

func (r *latencyRing) quantiles() LatencyQuantiles {
	r.mu.Lock()
	n := int(r.total)
	if n > latencyWindow {
		n = latencyWindow
	}
	samples := make([]time.Duration, n)
	copy(samples, r.buf[:n])
	total := r.total
	r.mu.Unlock()
	if n == 0 {
		return LatencyQuantiles{}
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	at := func(p float64) float64 {
		i := int(p * float64(n-1))
		return float64(samples[i]) / float64(time.Millisecond)
	}
	return LatencyQuantiles{
		Count: total,
		P50:   at(0.50),
		P90:   at(0.90),
		P99:   at(0.99),
		Max:   float64(samples[n-1]) / float64(time.Millisecond),
	}
}
