package server

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"tcstudy/internal/core"
	"tcstudy/internal/obsv"
	"tcstudy/internal/planner"
)

// Metrics is the server's live counter set, exported by the /metrics
// endpoint in Prometheus text exposition format (JSON remains available via
// ?format=json). Counters are lock-free atomics; latency quantiles come
// from a mutex-guarded ring of recent request latencies, so a snapshot is
// cheap enough to poll while serving traffic. Histograms — request
// latency, per-algorithm engine phase times, and buffer-pool hit ratio —
// are kept in Prometheus bucket form so a scraper can aggregate them
// across servers.
type Metrics struct {
	start time.Time

	// Request counters by endpoint.
	Queries atomic.Int64 // POST /v1/query requests accepted for processing
	Reaches atomic.Int64 // GET /v1/reach requests accepted for processing
	Plans   atomic.Int64 // GET /v1/plan requests

	// ArcWrites counts POST /v1/arc batches accepted; MutationsApplied the
	// individual ops within them that changed the graph.
	ArcWrites        atomic.Int64
	MutationsApplied atomic.Int64

	// Outcome counters.
	CacheHits       atomic.Int64 // answered straight from the result cache
	CacheMisses     atomic.Int64 // executed by the engine
	IndexHits       atomic.Int64 // /v1/reach answered by the reachability index
	OverlayReads    atomic.Int64 // /v1/reach answered by the delta overlay mid-rebuild
	EngineFallbacks atomic.Int64 // /v1/reach forced through the engine (index absent or stale)
	Deduplicated    atomic.Int64 // coalesced onto an identical in-flight query
	Rejected        atomic.Int64 // 429: admission queue full
	Timeouts        atomic.Int64 // 504: request deadline expired
	StorageFaults   atomic.Int64 // 503: transient storage fault under the engine
	Errors          atomic.Int64 // 4xx validation + other 5xx engine failures
	SlowQueries     atomic.Int64 // requests over the slow-query threshold

	// Work served by the engine (cache hits add nothing here — that page
	// I/O was already paid for by the miss that filled the cache).
	PagesServed  atomic.Int64 // page I/O of executed queries (the paper's metric)
	TuplesServed atomic.Int64 // distinct closure tuples materialized

	// InFlight is the number of requests currently being processed.
	InFlight atomic.Int64

	lat     latencyRing
	latHist *obsv.Histogram // request latency, seconds
	ratio   *obsv.Histogram // buffer-pool hit ratio of executed queries

	// Per-(algorithm, phase) engine time histograms, created lazily on the
	// first execution of each algorithm.
	phaseMu   sync.Mutex
	phaseHist map[phaseKey]*obsv.Histogram
}

type phaseKey struct {
	alg   string
	phase string
}

// NewMetrics returns a zeroed metric set with the clock started.
func NewMetrics() *Metrics {
	return &Metrics{
		start:     time.Now(),
		latHist:   obsv.NewHistogram(obsv.DurationBuckets()...),
		ratio:     obsv.NewHistogram(obsv.RatioBuckets()...),
		phaseHist: make(map[phaseKey]*obsv.Histogram),
	}
}

// ObserveLatency records one served request's latency.
func (m *Metrics) ObserveLatency(d time.Duration) {
	m.lat.add(d)
	m.latHist.Observe(d.Seconds())
}

// ObserveEngine records the engine-level observations of one executed
// (non-cached) query: phase wall times per algorithm and the compute-phase
// buffer hit ratio.
func (m *Metrics) ObserveEngine(alg string, em core.Metrics) {
	m.phase(alg, "restructure").Observe(em.RestructureTime.Seconds())
	m.phase(alg, "compute").Observe(em.ComputeTime.Seconds())
	if em.ComputeBuffer.Hits+em.ComputeBuffer.Misses > 0 {
		m.ratio.Observe(em.ComputeBuffer.HitRatio())
	}
}

func (m *Metrics) phase(alg, phase string) *obsv.Histogram {
	k := phaseKey{alg, phase}
	m.phaseMu.Lock()
	h := m.phaseHist[k]
	if h == nil {
		h = obsv.NewHistogram(obsv.DurationBuckets()...)
		m.phaseHist[k] = h
	}
	m.phaseMu.Unlock()
	return h
}

// Snapshot is the JSON shape of /metrics?format=json.
type Snapshot struct {
	UptimeSeconds float64 `json:"uptime_seconds"`
	QPS           float64 `json:"qps"` // completed requests / uptime

	Queries   int64 `json:"queries"`
	Reaches   int64 `json:"reaches"`
	Plans     int64 `json:"plans"`
	ArcWrites int64 `json:"arc_writes,omitempty"`

	CacheHits        int64   `json:"cache_hits"`
	CacheMisses      int64   `json:"cache_misses"`
	CacheHitRate     float64 `json:"cache_hit_rate"`
	IndexHits        int64   `json:"index_hits"`
	OverlayReads     int64   `json:"overlay_reads,omitempty"`
	MutationsApplied int64   `json:"mutations_applied,omitempty"`
	EngineFallbacks  int64   `json:"engine_fallbacks"`
	Deduplicated     int64   `json:"deduplicated"`
	Rejected         int64   `json:"rejected"`
	Timeouts         int64   `json:"timeouts"`
	StorageFaults    int64   `json:"storage_faults"`
	Errors           int64   `json:"errors"`
	SlowQueries      int64   `json:"slow_queries"`

	PagesServed  int64 `json:"pages_served"`
	TuplesServed int64 `json:"tuples_served"`
	InFlight     int64 `json:"in_flight"`

	LatencyMS LatencyQuantiles `json:"latency_ms"`
}

// LatencyQuantiles reports quantiles over the recent-latency window, in
// milliseconds.
type LatencyQuantiles struct {
	Count int64   `json:"count"`
	P50   float64 `json:"p50"`
	P90   float64 `json:"p90"`
	P99   float64 `json:"p99"`
	Max   float64 `json:"max"`
}

// Snapshot captures the current counter values.
func (m *Metrics) Snapshot() Snapshot {
	up := time.Since(m.start).Seconds()
	hits, misses := m.CacheHits.Load(), m.CacheMisses.Load()
	completed := m.Queries.Load() + m.Reaches.Load() + m.Plans.Load()
	s := Snapshot{
		UptimeSeconds:    up,
		Queries:          m.Queries.Load(),
		Reaches:          m.Reaches.Load(),
		Plans:            m.Plans.Load(),
		ArcWrites:        m.ArcWrites.Load(),
		CacheHits:        hits,
		CacheMisses:      misses,
		IndexHits:        m.IndexHits.Load(),
		OverlayReads:     m.OverlayReads.Load(),
		MutationsApplied: m.MutationsApplied.Load(),
		EngineFallbacks:  m.EngineFallbacks.Load(),
		Deduplicated:     m.Deduplicated.Load(),
		Rejected:         m.Rejected.Load(),
		Timeouts:         m.Timeouts.Load(),
		StorageFaults:    m.StorageFaults.Load(),
		Errors:           m.Errors.Load(),
		SlowQueries:      m.SlowQueries.Load(),
		PagesServed:      m.PagesServed.Load(),
		TuplesServed:     m.TuplesServed.Load(),
		InFlight:         m.InFlight.Load(),
		LatencyMS:        m.lat.quantiles(),
	}
	if up > 0 {
		s.QPS = float64(completed) / up
	}
	if hits+misses > 0 {
		s.CacheHitRate = float64(hits) / float64(hits+misses)
	}
	return s
}

// tenantCounters is one tenant's slice of the request counters. The global
// Metrics counters keep counting everything; these attribute the same
// events to a named graph for the tenant-labeled metric families.
type tenantCounters struct {
	Queries     atomic.Int64
	Reaches     atomic.Int64
	Plans       atomic.Int64
	CacheHits   atomic.Int64
	CacheMisses atomic.Int64
	Rejected    atomic.Int64
	PagesServed atomic.Int64
}

// TenantState is the per-scrape snapshot of one tenant, passed into
// Prometheus by the caller because tenants (caches, queues, planners)
// belong to the server, not to Metrics.
type TenantState struct {
	Name        string
	Queries     int64
	Reaches     int64
	Plans       int64
	CacheHits   int64
	CacheMisses int64
	Rejected    int64
	PagesServed int64
	CacheLen    int
	CacheCap    int
	QueueDepth  int
	Adaptive    bool // Planner below is meaningful
	Planner     planner.Stats
}

// IndexState is the per-scrape snapshot of the serving reachability index,
// passed into Prometheus by the caller because the index (static or
// dynamic) belongs to the server, not to Metrics.
type IndexState struct {
	Present    bool  // an index is serving reads
	Stale      bool  // reads are falling back (engine or overlay)
	Generation int64 // static: in-place patch count; dynamic: rebuild generation
	Dynamic    bool  // the fields below are meaningful
	Seq        int64 // last mutation sequence number assigned
	Pending    int   // log batches not yet folded into the sealed index
	Mutations  int64 // individual ops applied since start
	Merges     int64 // SCC components merged by cycle-creating inserts
	Rebuilds   int64 // background generational rebuilds completed
}

// Prometheus renders the metric set in text exposition format. The queue
// gauges come from the caller because the admission queue belongs to the
// dispatcher, not to Metrics; likewise the tenant snapshots (the queue
// capacity is the per-tenant admission bound). When tenant snapshots are
// supplied, the tenant-labeled tc_tenant_* families are emitted, and the
// tc_planner_* families for every tenant running an adaptive planner.
func (m *Metrics) Prometheus(queueDepth, queueCap int, ix IndexState, tenants ...TenantState) string {
	e := obsv.NewExposition()
	e.Gauge("tc_uptime_seconds", "Seconds since the server started.",
		time.Since(m.start).Seconds())

	e.CounterFamily("tc_requests_total", "Requests accepted for processing, by endpoint.")
	e.Sample("tc_requests_total", []obsv.Label{{Name: "endpoint", Value: "query"}},
		float64(m.Queries.Load()))
	e.Sample("tc_requests_total", []obsv.Label{{Name: "endpoint", Value: "reach"}},
		float64(m.Reaches.Load()))
	e.Sample("tc_requests_total", []obsv.Label{{Name: "endpoint", Value: "plan"}},
		float64(m.Plans.Load()))
	e.Sample("tc_requests_total", []obsv.Label{{Name: "endpoint", Value: "arc"}},
		float64(m.ArcWrites.Load()))

	e.Counter("tc_cache_hits_total", "Queries answered from the result cache.",
		float64(m.CacheHits.Load()))
	e.Counter("tc_cache_misses_total", "Queries executed by the engine.",
		float64(m.CacheMisses.Load()))
	e.Counter("tc_index_hits_total", "Reach requests answered by the reachability index.",
		float64(m.IndexHits.Load()))
	e.Counter("tc_overlay_reads_total",
		"Reach requests answered by the delta overlay while a rebuild was in flight.",
		float64(m.OverlayReads.Load()))
	e.Counter("tc_reach_engine_fallback_total",
		"Reach requests forced through the engine because the index was absent or stale.",
		float64(m.EngineFallbacks.Load()))
	e.Counter("tc_deduplicated_total", "Queries coalesced onto an identical in-flight query.",
		float64(m.Deduplicated.Load()))
	e.Counter("tc_rejected_total", "Requests rejected with 429 by admission control.",
		float64(m.Rejected.Load()))
	e.Counter("tc_timeouts_total", "Requests that exceeded their deadline (504).",
		float64(m.Timeouts.Load()))
	e.Counter("tc_storage_faults_total", "Requests failed by a transient storage fault (503).",
		float64(m.StorageFaults.Load()))
	e.Counter("tc_errors_total", "Validation failures and non-transient engine errors.",
		float64(m.Errors.Load()))
	e.Counter("tc_slow_queries_total", "Requests over the slow-query threshold.",
		float64(m.SlowQueries.Load()))
	e.Counter("tc_pages_served_total", "Page I/O performed by executed queries.",
		float64(m.PagesServed.Load()))
	e.Counter("tc_tuples_served_total", "Distinct closure tuples materialized by executed queries.",
		float64(m.TuplesServed.Load()))

	e.Gauge("tc_in_flight", "Requests currently being processed.",
		float64(m.InFlight.Load()))
	e.GaugeFamily("tc_admission_queue_depth", "Jobs waiting in the admission queue.")
	e.Sample("tc_admission_queue_depth", nil, float64(queueDepth))
	e.GaugeFamily("tc_admission_queue_capacity", "Capacity of the admission queue.")
	e.Sample("tc_admission_queue_capacity", nil, float64(queueCap))

	if ix.Present {
		stale := 0.0
		if ix.Stale {
			stale = 1.0
		}
		e.Gauge("tc_index_stale",
			"1 while reads bypass the sealed index (stale static index or rebuild in flight).",
			stale)
		e.Gauge("tc_index_generation", "Generation of the serving reachability index.",
			float64(ix.Generation))
	}
	if ix.Dynamic {
		e.Counter("tc_mutations_total", "Individual arc mutations applied to the live graph.",
			float64(ix.Mutations))
		e.Counter("tc_scc_merges_total",
			"Strongly connected components merged in place by cycle-creating inserts.",
			float64(ix.Merges))
		e.Counter("tc_rebuilds_total", "Background generational index rebuilds completed.",
			float64(ix.Rebuilds))
		e.Gauge("tc_mutation_seq", "Last mutation sequence number assigned.",
			float64(ix.Seq))
		e.Gauge("tc_mutation_pending",
			"Mutation log batches not yet folded into the sealed index generation.",
			float64(ix.Pending))
	}

	if len(tenants) > 0 {
		tl := func(name string) []obsv.Label {
			return []obsv.Label{{Name: "tenant", Value: name}}
		}
		te := func(name, endpoint string) []obsv.Label {
			return []obsv.Label{{Name: "tenant", Value: name}, {Name: "endpoint", Value: endpoint}}
		}
		e.CounterFamily("tc_tenant_requests_total",
			"Requests accepted for processing, by tenant and endpoint.")
		for _, t := range tenants {
			e.Sample("tc_tenant_requests_total", te(t.Name, "query"), float64(t.Queries))
			e.Sample("tc_tenant_requests_total", te(t.Name, "reach"), float64(t.Reaches))
			e.Sample("tc_tenant_requests_total", te(t.Name, "plan"), float64(t.Plans))
		}
		e.CounterFamily("tc_tenant_cache_hits_total",
			"Queries answered from the tenant's result cache.")
		e.CounterFamily("tc_tenant_cache_misses_total",
			"Tenant queries executed by the engine.")
		e.CounterFamily("tc_tenant_rejected_total",
			"Tenant requests rejected with 429 by admission control.")
		e.CounterFamily("tc_tenant_pages_served_total",
			"Page I/O performed by the tenant's executed queries.")
		for _, t := range tenants {
			e.Sample("tc_tenant_cache_hits_total", tl(t.Name), float64(t.CacheHits))
			e.Sample("tc_tenant_cache_misses_total", tl(t.Name), float64(t.CacheMisses))
			e.Sample("tc_tenant_rejected_total", tl(t.Name), float64(t.Rejected))
			e.Sample("tc_tenant_pages_served_total", tl(t.Name), float64(t.PagesServed))
		}
		e.GaugeFamily("tc_tenant_cache_entries", "Entries in the tenant's result cache.")
		e.GaugeFamily("tc_tenant_cache_capacity", "Capacity of the tenant's result cache (its quota).")
		e.GaugeFamily("tc_tenant_queue_depth", "Jobs waiting in the tenant's admission queue.")
		for _, t := range tenants {
			e.Sample("tc_tenant_cache_entries", tl(t.Name), float64(t.CacheLen))
			e.Sample("tc_tenant_cache_capacity", tl(t.Name), float64(t.CacheCap))
			e.Sample("tc_tenant_queue_depth", tl(t.Name), float64(t.QueueDepth))
		}
		adaptive := false
		for _, t := range tenants {
			adaptive = adaptive || t.Adaptive
		}
		if adaptive {
			e.CounterFamily("tc_planner_decisions_total",
				"Executed queries whose algorithm choice was scored against observed evidence.")
			e.CounterFamily("tc_planner_hits_total",
				"Scored decisions where the blended winner was the evidence-fastest algorithm.")
			e.CounterFamily("tc_planner_explorations_total",
				"Plan rankings that promoted a cold candidate (epsilon-greedy).")
			e.CounterFamily("tc_planner_observations_total",
				"Executed queries folded into the planner's observation store.")
			e.GaugeFamily("tc_planner_hit_rate",
				"Rolling fraction of scored decisions where the planner picked the evidence-fastest algorithm.")
			for _, t := range tenants {
				if !t.Adaptive {
					continue
				}
				e.Sample("tc_planner_decisions_total", tl(t.Name), float64(t.Planner.Decisions))
				e.Sample("tc_planner_hits_total", tl(t.Name), float64(t.Planner.Hits))
				e.Sample("tc_planner_explorations_total", tl(t.Name), float64(t.Planner.Explorations))
				e.Sample("tc_planner_observations_total", tl(t.Name), float64(t.Planner.Observations))
				e.Sample("tc_planner_hit_rate", tl(t.Name), t.Planner.HitRate)
			}
		}
	}

	e.HistogramFamily("tc_request_duration_seconds", "End-to-end request latency.")
	e.Histogram("tc_request_duration_seconds", nil, m.latHist.Snapshot())

	e.HistogramFamily("tc_buffer_hit_ratio",
		"Compute-phase buffer-pool hit ratio of executed queries.")
	e.Histogram("tc_buffer_hit_ratio", nil, m.ratio.Snapshot())

	e.HistogramFamily("tc_engine_phase_seconds",
		"Engine phase wall time by algorithm and phase.")
	m.phaseMu.Lock()
	keys := make([]phaseKey, 0, len(m.phaseHist))
	for k := range m.phaseHist {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].alg != keys[j].alg {
			return keys[i].alg < keys[j].alg
		}
		return keys[i].phase < keys[j].phase
	})
	snaps := make([]obsv.HistogramSnapshot, len(keys))
	for i, k := range keys {
		snaps[i] = m.phaseHist[k].Snapshot()
	}
	m.phaseMu.Unlock()
	for i, k := range keys {
		e.Histogram("tc_engine_phase_seconds", []obsv.Label{
			{Name: "algorithm", Value: k.alg}, {Name: "phase", Value: k.phase},
		}, snaps[i])
	}
	return e.String()
}

// latencyWindow bounds the quantile computation; at 4096 samples the window
// covers well over a minute of traffic at the load generator's default rate.
const latencyWindow = 4096

// latencyRing keeps the most recent latencies for quantile estimation.
type latencyRing struct {
	mu    sync.Mutex
	buf   [latencyWindow]time.Duration
	next  int
	total int64
}

func (r *latencyRing) add(d time.Duration) {
	r.mu.Lock()
	r.buf[r.next] = d
	r.next = (r.next + 1) % latencyWindow
	r.total++
	r.mu.Unlock()
}

func (r *latencyRing) quantiles() LatencyQuantiles {
	r.mu.Lock()
	n := int(r.total)
	if n > latencyWindow {
		n = latencyWindow
	}
	samples := make([]time.Duration, n)
	copy(samples, r.buf[:n])
	total := r.total
	r.mu.Unlock()
	if n == 0 {
		return LatencyQuantiles{}
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	at := func(p float64) float64 {
		i := int(p * float64(n-1))
		return float64(samples[i]) / float64(time.Millisecond)
	}
	return LatencyQuantiles{
		Count: total,
		P50:   at(0.50),
		P90:   at(0.90),
		P99:   at(0.99),
		Max:   float64(samples[n-1]) / float64(time.Millisecond),
	}
}
