package server

import (
	"container/list"
	"context"
	"sync"

	"tcstudy/internal/core"
)

// resultCache is an LRU of query results with single-flight deduplication:
// concurrent requests for the same key share one engine execution instead
// of racing duplicate work through the admission queue. Keys canonicalize
// the full (algorithm, sources, config) triple, so two requests share an
// entry exactly when the engine would do identical work for both.
type resultCache struct {
	mu       sync.Mutex
	capacity int
	ll       *list.List               // front = most recently used
	items    map[string]*list.Element // key -> *entry element
	inflight map[string]*flight
}

type entry struct {
	key string
	res *core.Result
}

// flight is one in-progress computation; waiters block on done.
type flight struct {
	done chan struct{}
	res  *core.Result
	err  error
}

// newResultCache builds a cache holding up to capacity results. A zero
// capacity disables retention but keeps single-flight deduplication.
func newResultCache(capacity int) *resultCache {
	if capacity < 0 {
		capacity = 0
	}
	return &resultCache{
		capacity: capacity,
		ll:       list.New(),
		items:    make(map[string]*list.Element),
		inflight: make(map[string]*flight),
	}
}

// Len reports the number of cached results.
func (c *resultCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// lookup must be called with mu held; it refreshes recency on a hit.
func (c *resultCache) lookup(key string) (*core.Result, bool) {
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*entry).res, true
}

// insert must be called with mu held.
func (c *resultCache) insert(key string, res *core.Result) {
	if c.capacity == 0 {
		return
	}
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*entry).res = res
		return
	}
	c.items[key] = c.ll.PushFront(&entry{key: key, res: res})
	for c.ll.Len() > c.capacity {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*entry).key)
	}
}

// Do returns the result for key, computing it with fn at most once across
// concurrent callers. hit reports a cache hit; shared reports that the
// caller waited on another request's in-flight computation. Errors are
// never cached. A waiter whose context expires stops waiting, but the
// computation proceeds and its result still lands in the cache.
func (c *resultCache) Do(ctx context.Context, key string, fn func() (*core.Result, error)) (res *core.Result, hit, shared bool, err error) {
	c.mu.Lock()
	if res, ok := c.lookup(key); ok {
		c.mu.Unlock()
		return res, true, false, nil
	}
	if f, ok := c.inflight[key]; ok {
		c.mu.Unlock()
		select {
		case <-f.done:
			return f.res, false, true, f.err
		case <-ctx.Done():
			return nil, false, true, ctx.Err()
		}
	}
	f := &flight{done: make(chan struct{})}
	c.inflight[key] = f
	c.mu.Unlock()

	f.res, f.err = fn()

	c.mu.Lock()
	delete(c.inflight, key)
	if f.err == nil {
		c.insert(key, f.res)
	}
	c.mu.Unlock()
	close(f.done)
	return f.res, false, false, f.err
}
