package server

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"tcstudy/internal/core"
	"tcstudy/internal/obsv"
)

// Request tracing. Every traced request records its span tree — query →
// phase → per-source / per-worker — into a bounded ring exposed at
// GET /debug/traces, newest first. Requests slower than the configured
// threshold are additionally written to the slow-query log together with a
// tcquery command line that replays the exact engine work offline.

// TraceEntry is one traced request as served by /debug/traces and printed
// (in condensed form) by the slow-query log.
type TraceEntry struct {
	Time         time.Time     `json:"time"`
	Endpoint     string        `json:"endpoint"`
	Algorithm    string        `json:"algorithm,omitempty"`
	Graph        string        `json:"graph,omitempty"`
	Sources      []int32       `json:"sources,omitempty"`
	Cached       bool          `json:"cached,omitempty"`
	Deduplicated bool          `json:"deduplicated,omitempty"`
	IndexHit     bool          `json:"index_hit,omitempty"`
	Slow         bool          `json:"slow,omitempty"`
	Error        string        `json:"error,omitempty"`
	ElapsedMS    float64       `json:"elapsed_ms"`
	Replay       string        `json:"replay,omitempty"`
	Spans        []obsv.Record `json:"spans,omitempty"`
}

// traceRing keeps the most recent traced requests. Zero capacity disables
// recording entirely; add and snapshot are then free.
type traceRing struct {
	mu   sync.Mutex
	buf  []TraceEntry
	next int
	n    int
}

func newTraceRing(capacity int) *traceRing {
	if capacity < 0 {
		capacity = 0
	}
	return &traceRing{buf: make([]TraceEntry, capacity)}
}

func (r *traceRing) enabled() bool { return r != nil && len(r.buf) > 0 }

func (r *traceRing) add(e TraceEntry) {
	if !r.enabled() {
		return
	}
	r.mu.Lock()
	r.buf[r.next] = e
	r.next = (r.next + 1) % len(r.buf)
	if r.n < len(r.buf) {
		r.n++
	}
	r.mu.Unlock()
}

// snapshot returns the recorded entries, newest first.
func (r *traceRing) snapshot() []TraceEntry {
	if !r.enabled() {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]TraceEntry, 0, r.n)
	for i := 1; i <= r.n; i++ {
		out = append(out, r.buf[(r.next-i+len(r.buf))%len(r.buf)])
	}
	return out
}

// replayCommand builds a tcquery invocation reproducing one request's
// engine work: the graph flags come from the server's startup configuration
// (Options.ReplayArgs), the rest from the executed request. The command
// replays the engine work, not the serving path — cache state and admission
// cannot be reproduced offline, page I/O and phase structure can.
func replayCommand(graphArgs string, req core.Request) string {
	var b strings.Builder
	b.WriteString("tcquery")
	if graphArgs != "" {
		b.WriteString(" ")
		b.WriteString(graphArgs)
	}
	fmt.Fprintf(&b, " -alg %s", req.Alg)
	if len(req.Query.Sources) > 0 {
		parts := make([]string, len(req.Query.Sources))
		for i, s := range req.Query.Sources {
			parts[i] = fmt.Sprint(s)
		}
		fmt.Fprintf(&b, " -sources %s", strings.Join(parts, ","))
	}
	fmt.Fprintf(&b, " -m %d", req.Cfg.BufferPages)
	if req.Cfg.PagePolicy != "" {
		fmt.Fprintf(&b, " -pagepolicy %s", req.Cfg.PagePolicy)
	}
	if req.Cfg.ListPolicy != "" {
		fmt.Fprintf(&b, " -listpolicy %s", req.Cfg.ListPolicy)
	}
	if req.Cfg.ILIMIT != 0 {
		fmt.Fprintf(&b, " -ilimit %g", req.Cfg.ILIMIT)
	}
	if req.Cfg.Parallelism > 1 {
		fmt.Fprintf(&b, " -parallel %d", req.Cfg.Parallelism)
	}
	b.WriteString(" -trace")
	return b.String()
}

// slowLogLine condenses a trace entry into one log line: outcome, timing,
// the phase-level I/O split, and the replay command.
func slowLogLine(e TraceEntry, threshold time.Duration) string {
	var b strings.Builder
	fmt.Fprintf(&b, "slow query: endpoint=%s", e.Endpoint)
	if e.Algorithm != "" {
		fmt.Fprintf(&b, " algorithm=%s", e.Algorithm)
	}
	fmt.Fprintf(&b, " sources=%d elapsed=%.1fms threshold=%s",
		len(e.Sources), e.ElapsedMS, threshold)
	if e.Cached {
		b.WriteString(" cached=true")
	}
	if e.Deduplicated {
		b.WriteString(" deduplicated=true")
	}
	if e.Error != "" {
		fmt.Fprintf(&b, " error=%q", e.Error)
	}
	for _, root := range e.Spans {
		for _, phase := range []string{"restructure", "compute"} {
			io := root.SumIO(phase)
			if io.Total() > 0 {
				fmt.Fprintf(&b, " %s_io=%d", phase, io.Reads+io.Writes)
			}
		}
	}
	if e.Replay != "" {
		fmt.Fprintf(&b, " replay=%q", e.Replay)
	}
	return b.String()
}
