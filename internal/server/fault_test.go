package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"tcstudy/internal/core"
	"tcstudy/internal/faultdisk"
	"tcstudy/internal/graphgen"
)

// newFaultedServer builds a server whose database store is wrapped with
// fault injection before the server ever sees it.
func newFaultedServer(t *testing.T, nodes int, opts faultdisk.Options) (*httptest.Server, *core.Database) {
	t.Helper()
	arcs, err := graphgen.Generate(graphgen.Params{Nodes: nodes, OutDegree: 4, Locality: 40, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	db := core.NewDatabase(nodes, arcs)
	db.SwapStore(faultdisk.Wrap(db.Store(), opts))
	s := New(db, Options{})
	ts := httptest.NewServer(s)
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return ts, db
}

// postRaw posts a query body and decodes the response as a generic map, so
// error bodies are inspectable too.
func postRaw(t *testing.T, url string, body any) (int, http.Header, map[string]any) {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/v1/query", "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header, m
}

// TestQueryStorageFaultIs503ThenRecovers drives the transient-fault
// contract end to end: a scheduled read failure under the engine surfaces
// as a 503 with retry hints, and the very next request — same server, same
// database — succeeds with a correct answer.
func TestQueryStorageFaultIs503ThenRecovers(t *testing.T) {
	sched, err := faultdisk.ParseSchedule("read@0")
	if err != nil {
		t.Fatal(err)
	}
	ts, db := newFaultedServer(t, 300, faultdisk.Options{Schedule: sched})
	body := map[string]any{"algorithm": "btc", "sources": []int32{3, 57}}

	status, hdr, m := postRaw(t, ts.URL, body)
	if status != http.StatusServiceUnavailable {
		t.Fatalf("faulted query returned %d, want 503 (body %v)", status, m)
	}
	if hdr.Get("Retry-After") == "" {
		t.Error("503 lacks a Retry-After header")
	}
	if m["transient"] != true || m["retry"] != true {
		t.Errorf("503 body lacks transient/retry hints: %v", m)
	}
	if ms, ok := m["retry_after_ms"].(float64); !ok || ms <= 0 {
		t.Errorf("503 body lacks a positive retry_after_ms: %v", m)
	}

	// The schedule named read #0 only; the store is past it. The same
	// server must now answer, and correctly.
	status, _, m = postRaw(t, ts.URL, body)
	if status != http.StatusOK {
		t.Fatalf("query after fault returned %d (body %v)", status, m)
	}
	want, err := core.Run(db, core.BTC, core.Query{Sources: []int32{3, 57}}, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	counts, ok := m["successor_counts"].(map[string]any)
	if !ok {
		t.Fatalf("response lacks successor_counts: %v", m)
	}
	if got := int(counts["3"].(float64)); got != len(want.Successors[3]) {
		t.Errorf("node 3 has %d successors, engine says %d", got, len(want.Successors[3]))
	}
	if got := int(counts["57"].(float64)); got != len(want.Successors[57]) {
		t.Errorf("node 57 has %d successors, engine says %d", got, len(want.Successors[57]))
	}

	var snap Snapshot
	if code := getJSON(t, ts.URL+"/metrics?format=json", &snap); code != http.StatusOK {
		t.Fatalf("/metrics returned %d", code)
	}
	if snap.StorageFaults != 1 {
		t.Errorf("storage_faults = %d, want 1", snap.StorageFaults)
	}
	if snap.Errors != 0 {
		t.Errorf("a transient fault was miscounted as a generic error (errors = %d)", snap.Errors)
	}
}

// TestValidationStays400UnderFaults pins the status split: a malformed
// request is the client's fault (400) even while the storage layer is
// failing every read, and only well-formed requests that reach the engine
// see the transient 503.
func TestValidationStays400UnderFaults(t *testing.T) {
	ts, _ := newFaultedServer(t, 100, faultdisk.Options{ReadFailProb: 1})

	status, _, m := postRaw(t, ts.URL, map[string]any{"algorithm": "does-not-exist"})
	if status != http.StatusBadRequest {
		t.Fatalf("unknown algorithm returned %d, want 400 (body %v)", status, m)
	}
	if _, hasHint := m["transient"]; hasHint {
		t.Errorf("validation error carries transient hints: %v", m)
	}

	status, _, m = postRaw(t, ts.URL, map[string]any{"algorithm": "btc", "sources": []int32{9999}})
	if status != http.StatusBadRequest {
		t.Fatalf("out-of-range source returned %d, want 400 (body %v)", status, m)
	}

	status, _, m = postRaw(t, ts.URL, map[string]any{"algorithm": "btc", "sources": []int32{1}})
	if status != http.StatusServiceUnavailable {
		t.Fatalf("well-formed query under p(read fail)=1 returned %d, want 503 (body %v)", status, m)
	}

	var snap Snapshot
	if code := getJSON(t, ts.URL+"/metrics?format=json", &snap); code != http.StatusOK {
		t.Fatalf("/metrics returned %d", code)
	}
	if snap.StorageFaults != 1 {
		t.Errorf("storage_faults = %d, want 1", snap.StorageFaults)
	}
	if snap.Errors != 2 {
		t.Errorf("errors = %d, want 2 (the two 400s)", snap.Errors)
	}
}
