// Package server exposes the transitive closure engine over HTTP/JSON: a
// query endpoint returning the paper's full metric record, a boolean
// reachability fast path, the planner's ranking for the loaded graph, and
// live operational metrics.
//
// The serving pipeline layers three production mechanics over the engine:
//
//   - admission control: queries flow through bounded per-tenant queues
//     into a bounded worker pool built on core.RunConcurrent; when a
//     tenant's queue is full, its requests are rejected with 429 rather
//     than piling up, and tenants take turns round-robin so one tenant's
//     flood never starves another.
//   - result caching: a per-tenant LRU keyed on the canonical (algorithm,
//     sources, config) triple answers repeated queries with zero page I/O,
//     and single-flight deduplication collapses identical in-flight
//     queries onto one engine execution. Each tenant's cache is its own
//     quota: one tenant's working set cannot evict another's.
//   - deadlines: every request carries a context deadline (default or
//     per-request); expiry while queued or waiting returns 504 without
//     charging the engine.
//
// A server hosts one graph by default (New) or several named graphs
// (NewMulti): requests select a tenant with the graph= query parameter or
// the "graph" field of a query body, and metrics carry tenant labels so a
// scraper can tell the workloads apart. Each tenant also owns an adaptive
// planner (internal/planner.Adaptive) fed by every executed query; see
// docs/PLANNER.md.
//
// The stack is observable end to end: requests can carry phase-span
// traces (ring-buffered behind GET /debug/traces), GET /metrics serves
// Prometheus text exposition format with per-algorithm phase-time
// histograms, and requests over a slow-query threshold are logged with a
// replayable tcquery command line. See docs/OBSERVABILITY.md.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"log"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"tcstudy/internal/buffer"
	"tcstudy/internal/core"
	"tcstudy/internal/dynamic"
	"tcstudy/internal/graph"
	"tcstudy/internal/index"
	"tcstudy/internal/obsv"
	"tcstudy/internal/pagedisk"
	"tcstudy/internal/planner"
	"tcstudy/internal/slist"
)

// Options configures a Server. Zero values select the defaults.
type Options struct {
	// Workers bounds the number of queries one engine batch executes
	// concurrently (default 8).
	Workers int
	// QueueDepth bounds each tenant's admission queue; a full queue
	// rejects that tenant's requests with 429 (default 64).
	QueueDepth int
	// CacheEntries bounds each tenant's result cache (default 256; 0 keeps
	// single-flight deduplication but retains nothing). The bound is a
	// per-tenant quota: every named graph gets its own cache of this size.
	CacheEntries int
	// DefaultTimeout is the per-request deadline when the request does not
	// set one (default 30s).
	DefaultTimeout time.Duration
	// DefaultConfig supplies engine configuration fields a request leaves
	// unset (buffer pages, policies).
	DefaultConfig core.Config
	// Index, when set, answers GET /v1/reach from the prebuilt
	// reachability index with zero page I/O and no engine work. The engine
	// path remains the fallback when the index is absent or stale. It must
	// cover the same node space as the database. Single-graph servers
	// only; NewMulti takes per-graph indexes via NamedGraph.Index.
	Index *index.Index
	// Dynamic, when set, turns the server into a read/write graph service:
	// POST /v1/arc accepts mutation batches and GET /v1/reach is answered
	// by the dynamic service (sealed index generation or, while a rebuild
	// is in flight, the delta overlay) instead of Options.Index. The
	// engine endpoints (/v1/query, /v1/plan) keep serving the frozen base
	// relation. Single-graph servers only. See docs/DYNAMIC.md.
	Dynamic *dynamic.Service
	// Planner tunes each tenant's adaptive planner (decay, exploration
	// epsilon, confidence, latency weight); zero values select the
	// planner's defaults, including exploration off. See docs/PLANNER.md.
	Planner planner.Config
	// StaticPlan disables adaptive planning entirely: /v1/plan serves the
	// pure static cost-model ranking and executed queries record no
	// observations.
	StaticPlan bool
	// TraceBuffer, when positive, records the span tree of the most recent
	// TraceBuffer requests in a ring served by GET /debug/traces. Zero
	// disables request tracing entirely (no tracer is allocated and query
	// execution takes the untraced path).
	TraceBuffer int
	// SlowQuery, when positive, logs every request slower than this
	// threshold — with its span tree summary and a replayable tcquery
	// command line — through SlowLogf. Slow requests are traced even when
	// TraceBuffer is zero.
	SlowQuery time.Duration
	// SlowLogf receives slow-query log lines (default log.Printf).
	SlowLogf func(format string, args ...any)
	// ReplayArgs is the tcquery flag fragment reconstructing the served
	// graph (e.g. "-n 2000 -f 5 -l 200 -seed 1" or "-db closure.tcdb"),
	// prepended to the replay command of slow-query log entries. With
	// multiple graphs it describes the default tenant; other tenants'
	// trace entries carry their graph name instead.
	ReplayArgs string
}

func (o Options) withDefaults() Options {
	if o.Workers == 0 {
		o.Workers = 8
	}
	if o.QueueDepth == 0 {
		o.QueueDepth = 64
	}
	if o.CacheEntries == 0 {
		o.CacheEntries = 256
	}
	if o.DefaultTimeout == 0 {
		o.DefaultTimeout = 30 * time.Second
	}
	if o.DefaultConfig.BufferPages == 0 {
		o.DefaultConfig.BufferPages = 10
	}
	if o.DefaultConfig.PagePolicy == "" {
		o.DefaultConfig.PagePolicy = "lru"
	}
	if o.DefaultConfig.ListPolicy == "" {
		o.DefaultConfig.ListPolicy = "smallest"
	}
	if o.SlowLogf == nil {
		o.SlowLogf = log.Printf
	}
	return o
}

// NamedGraph is one tenant of a multi-graph server: a loaded database
// served under a name clients select with the graph= request parameter.
type NamedGraph struct {
	Name string
	DB   *core.Database
	// Index, when set, answers this tenant's /v1/reach requests from the
	// prebuilt reachability index.
	Index *index.Index
}

// tenant is the per-graph serving state: the database, its result cache
// (the tenant's quota), optional read index or dynamic service, the
// adaptive planner fed by this tenant's executions, and the tenant's
// counters.
type tenant struct {
	name  string
	db    *core.Database
	cache *resultCache
	idx   *index.Index
	dyn   *dynamic.Service
	adapt *planner.Adaptive
	tm    tenantCounters

	planOnce sync.Once
	profile  planner.Profile
	planErr  error

	fpOnce sync.Once
	fp     uint64
	fpErr  error
}

// ensureProfile builds the tenant's planner profile on first use (one DFS
// plus sampled reachability probes) and reuses it for the server's
// lifetime — the engine-visible graph is immutable.
func (tn *tenant) ensureProfile() (planner.Profile, error) {
	tn.planOnce.Do(func() {
		arcs, err := tn.db.Arcs()
		if err != nil {
			tn.planErr = err
			return
		}
		tn.profile, tn.planErr = planner.BuildProfile(graph.New(tn.db.N(), arcs), 16, 1)
	})
	return tn.profile, tn.planErr
}

// fingerprint is the tenant's dataset identity (CRC-64 of the base
// relation, superseded by the dynamic service's live fingerprint).
func (tn *tenant) fingerprint() (uint64, error) {
	tn.fpOnce.Do(func() { tn.fp, tn.fpErr = tn.db.Fingerprint() })
	if tn.fpErr != nil {
		return 0, tn.fpErr
	}
	if tn.dyn != nil {
		return tn.dyn.Stats().Fingerprint, nil
	}
	return tn.fp, nil
}

// Server serves reachability queries over one or more loaded databases.
type Server struct {
	opts   Options
	disp   *dispatcher
	met    *Metrics
	traces *traceRing
	mux    *http.ServeMux
	algs   map[core.Algorithm]bool

	tenants map[string]*tenant
	names   []string // sorted tenant names (for stable output)
	def     *tenant  // the tenant requests without graph= go to
}

// New builds a server over an already-loaded database, served as the
// single default tenant.
func New(db *core.Database, opts Options) *Server {
	s, err := NewMulti([]NamedGraph{{Name: defaultTenant, DB: db, Index: opts.Index}}, opts)
	if err != nil {
		// A single default graph cannot fail multi-tenant validation.
		panic(err)
	}
	return s
}

// NewMulti builds a server hosting several named graphs. The first graph
// is the default tenant (requests without graph= go to it). Options.Index
// and Options.Dynamic are single-graph features: Dynamic is rejected with
// more than one graph, Index is ignored in favor of NamedGraph.Index.
func NewMulti(graphs []NamedGraph, opts Options) (*Server, error) {
	opts = opts.withDefaults()
	if len(graphs) == 0 {
		return nil, errors.New("server: no graphs to serve")
	}
	if opts.Dynamic != nil && len(graphs) > 1 {
		return nil, errors.New("server: the dynamic graph service is single-graph only")
	}
	s := &Server{
		opts:    opts,
		met:     NewMetrics(),
		traces:  newTraceRing(opts.TraceBuffer),
		mux:     http.NewServeMux(),
		algs:    make(map[core.Algorithm]bool),
		tenants: make(map[string]*tenant, len(graphs)),
	}
	for i, g := range graphs {
		name := g.Name
		if name == "" {
			name = defaultTenant
		}
		if g.DB == nil {
			return nil, fmt.Errorf("server: graph %q has no database", name)
		}
		if _, dup := s.tenants[name]; dup {
			return nil, fmt.Errorf("server: duplicate graph name %q", name)
		}
		tn := &tenant{
			name:  name,
			db:    g.DB,
			cache: newResultCache(opts.CacheEntries),
			idx:   g.Index,
		}
		if tn.idx != nil && tn.idx.N() != g.DB.N() {
			return nil, fmt.Errorf("server: graph %q: index covers %d nodes but the database has %d",
				name, tn.idx.N(), g.DB.N())
		}
		if !opts.StaticPlan {
			tn.adapt = planner.NewAdaptive(opts.Planner)
		}
		s.tenants[name] = tn
		s.names = append(s.names, name)
		if i == 0 {
			s.def = tn
		}
	}
	sort.Strings(s.names)
	s.def.dyn = opts.Dynamic
	s.disp = newDispatcher(s.names, opts.Workers, opts.QueueDepth)
	for _, a := range core.Algorithms() {
		s.algs[a] = true
	}
	s.mux.HandleFunc("POST /v1/query", s.handleQuery)
	s.mux.HandleFunc("GET /v1/reach", s.handleReach)
	s.mux.HandleFunc("GET /v1/plan", s.handlePlan)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /debug/traces", s.handleTraces)
	if s.def.dyn != nil {
		s.mux.HandleFunc("POST /v1/arc", s.handleArc)
		s.def.dyn.SetOnRebuild(func(gen int64, replayed int, took time.Duration) {
			s.traces.add(TraceEntry{
				Time:      time.Now(),
				Endpoint:  "rebuild",
				ElapsedMS: float64(took) / float64(time.Millisecond),
				Sources:   nil,
				Algorithm: fmt.Sprintf("generation %d (+%d replayed)", gen, replayed),
			})
		})
	}
	return s, nil
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Metrics exposes the live counters (for tests and embedding).
func (s *Server) Metrics() *Metrics { return s.met }

// Graphs returns the served tenant names, sorted.
func (s *Server) Graphs() []string { return append([]string(nil), s.names...) }

// Close stops admitting queries and drains in-flight work.
func (s *Server) Close() { s.disp.Close() }

// tenantFor resolves the tenant a request addresses: the graph= query
// parameter, then the request body's graph field, then the default
// tenant. An unknown name is a client error listing the served graphs.
func (s *Server) tenantFor(r *http.Request, bodyGraph string) (*tenant, error) {
	name := r.URL.Query().Get("graph")
	if name == "" {
		name = bodyGraph
	}
	if name == "" {
		return s.def, nil
	}
	if tn, ok := s.tenants[name]; ok {
		return tn, nil
	}
	return nil, badRequest("unknown graph %q (serving: %s)", name, strings.Join(s.names, ", "))
}

// httpError is an error with an HTTP status.
type httpError struct {
	status int
	msg    string
}

func (e *httpError) Error() string { return e.msg }

func badRequest(format string, args ...any) error {
	return &httpError{status: http.StatusBadRequest, msg: fmt.Sprintf(format, args...)}
}

// writeJSON emits one JSON response.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

// retryAfterMS is the retry hint attached to 503 responses for transient
// storage faults. The fault is gone the moment the engine retries (the
// backing store is intact), so the hint only spreads out the retry burst.
const retryAfterMS = 50

// fail maps an error to its HTTP status and counts it. Input-validation
// failures are 400s; a transient storage fault — a failed page read or
// write under the engine, which the next attempt may well not hit — is a
// 503 with retry hints, never a 500: the request was well-formed and the
// database is intact.
func (s *Server) fail(w http.ResponseWriter, err error) { s.failTenant(w, nil, err) }

// failTenant is fail with per-tenant attribution: admission rejections
// are additionally charged to the rejected tenant's counters.
func (s *Server) failTenant(w http.ResponseWriter, tn *tenant, err error) {
	status := http.StatusInternalServerError
	transient := false
	var he *httpError
	switch {
	case errors.As(err, &he):
		status = he.status
	case errors.Is(err, ErrSaturated):
		status = http.StatusTooManyRequests
	case errors.Is(err, ErrClosed):
		status = http.StatusServiceUnavailable
	case isDeadline(err):
		status = http.StatusGatewayTimeout
	case pagedisk.IsTransient(err):
		status = http.StatusServiceUnavailable
		transient = true
	case errors.Is(err, dynamic.ErrBacklog):
		status = http.StatusTooManyRequests
	case errors.Is(err, dynamic.ErrFutureSeq):
		// The replica simply has not applied the writes the client observed
		// elsewhere yet; a retry lands after the log catches up.
		status = http.StatusServiceUnavailable
		transient = true
	}
	switch {
	case status == http.StatusTooManyRequests:
		s.met.Rejected.Add(1)
		if tn != nil {
			tn.tm.Rejected.Add(1)
		}
	case status == http.StatusGatewayTimeout:
		s.met.Timeouts.Add(1)
	case transient:
		s.met.StorageFaults.Add(1)
	default:
		s.met.Errors.Add(1)
	}
	if transient {
		w.Header().Set("Retry-After", "1")
		writeJSON(w, status, map[string]any{
			"error":          err.Error(),
			"transient":      true,
			"retry":          true,
			"retry_after_ms": retryAfterMS,
		})
		return
	}
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

func isDeadline(err error) bool {
	return errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled)
}

// maxRequestParallelism caps the intra-query worker count any single
// request may ask for.
const maxRequestParallelism = 64

// queryRequest is the body of POST /v1/query. Unset configuration fields
// inherit the server defaults.
type queryRequest struct {
	Algorithm string  `json:"algorithm"`
	Sources   []int32 `json:"sources"` // empty = full closure
	// Graph names the tenant on a multi-graph server (the graph= query
	// parameter takes precedence; empty selects the default tenant).
	Graph string `json:"graph,omitempty"`
	// Engine configuration overrides.
	BufferPages int     `json:"buffer_pages,omitempty"`
	PagePolicy  string  `json:"page_policy,omitempty"`
	ListPolicy  string  `json:"list_policy,omitempty"`
	ILIMIT      float64 `json:"ilimit,omitempty"`
	// Parallelism partitions a multi-source query's sources across worker
	// goroutines inside the engine (0 inherits the server default; 1 forces
	// serial). Bounded server-side to keep one request from monopolizing
	// the host.
	Parallelism int `json:"parallelism,omitempty"`
	// TimeoutMS overrides the server's default request deadline.
	TimeoutMS int `json:"timeout_ms,omitempty"`
	// IncludeSuccessors adds the full successor sets to the response
	// (successor counts are always included).
	IncludeSuccessors bool `json:"include_successors,omitempty"`
}

// queryResponse is the reply of POST /v1/query.
type queryResponse struct {
	Algorithm       string            `json:"algorithm"`
	Graph           string            `json:"graph,omitempty"`
	Sources         []int32           `json:"sources,omitempty"`
	Cached          bool              `json:"cached"`
	Deduplicated    bool              `json:"deduplicated"`
	ElapsedMS       float64           `json:"elapsed_ms"`
	Metrics         metricRecord      `json:"metrics"`
	SuccessorCounts map[int32]int     `json:"successor_counts"`
	Successors      map[int32][]int32 `json:"successors,omitempty"`
}

// metricRecord is the JSON shape of the paper's full measurement record.
type metricRecord struct {
	RestructureReads  int64   `json:"restructure_reads"`
	RestructureWrites int64   `json:"restructure_writes"`
	ComputeReads      int64   `json:"compute_reads"`
	ComputeWrites     int64   `json:"compute_writes"`
	TotalIO           int64   `json:"total_io"`
	BufferHits        int64   `json:"buffer_hits"`
	BufferMisses      int64   `json:"buffer_misses"`
	BufferEvicts      int64   `json:"buffer_evicts"`
	BufferHitRatio    float64 `json:"buffer_hit_ratio"`

	TuplesGenerated   int64 `json:"tuples_generated"`
	Duplicates        int64 `json:"duplicates"`
	DistinctTuples    int64 `json:"distinct_tuples"`
	SourceTuples      int64 `json:"source_tuples"`
	SuccessorsFetched int64 `json:"successors_fetched"`
	ListUnions        int64 `json:"list_unions"`
	ArcsConsidered    int64 `json:"arcs_considered"`
	ArcsMarked        int64 `json:"arcs_marked"`

	MarkingPct          float64 `json:"marking_pct"`
	SelectionEfficiency float64 `json:"selection_efficiency"`
	UnmarkedLocality    float64 `json:"unmarked_locality"`

	MagicNodes int64   `json:"magic_nodes,omitempty"`
	MagicArcs  int64   `json:"magic_arcs,omitempty"`
	MagicH     float64 `json:"magic_h,omitempty"`
	MagicW     float64 `json:"magic_w,omitempty"`

	PageSplits   int64 `json:"page_splits"`
	ListsMoved   int64 `json:"lists_moved"`
	EntriesMoved int64 `json:"entries_moved"`
	Overflows    int64 `json:"overflows"`

	RestructureMS float64 `json:"restructure_ms"`
	ComputeMS     float64 `json:"compute_ms"`
	EstimatedIOMS float64 `json:"estimated_io_ms"`
}

func newMetricRecord(m core.Metrics) metricRecord {
	return metricRecord{
		RestructureReads:    m.Restructure.Reads,
		RestructureWrites:   m.Restructure.Writes,
		ComputeReads:        m.Compute.Reads,
		ComputeWrites:       m.Compute.Writes,
		TotalIO:             m.TotalIO(),
		BufferHits:          m.ComputeBuffer.Hits,
		BufferMisses:        m.ComputeBuffer.Misses,
		BufferEvicts:        m.ComputeBuffer.Evicts,
		BufferHitRatio:      m.ComputeBuffer.HitRatio(),
		TuplesGenerated:     m.TuplesGenerated,
		Duplicates:          m.Duplicates,
		DistinctTuples:      m.DistinctTuples,
		SourceTuples:        m.SourceTuples,
		SuccessorsFetched:   m.SuccessorsFetched,
		ListUnions:          m.ListUnions,
		ArcsConsidered:      m.ArcsConsidered,
		ArcsMarked:          m.ArcsMarked,
		MarkingPct:          m.MarkingPct(),
		SelectionEfficiency: m.SelectionEfficiency(),
		UnmarkedLocality:    m.AvgUnmarkedLocality(),
		MagicNodes:          m.MagicNodes,
		MagicArcs:           m.MagicArcs,
		MagicH:              m.MagicH,
		MagicW:              m.MagicW,
		PageSplits:          m.Store.Splits,
		ListsMoved:          m.Store.ListsMoved,
		EntriesMoved:        m.Store.EntriesMoved,
		Overflows:           m.Store.Overflows,
		RestructureMS:       float64(m.RestructureTime) / float64(time.Millisecond),
		ComputeMS:           float64(m.ComputeTime) / float64(time.Millisecond),
		EstimatedIOMS:       float64(m.EstimatedIOTime()) / float64(time.Millisecond),
	}
}

// buildRequest validates a query shape against the tenant's database and
// fills configuration defaults.
func (s *Server) buildRequest(tn *tenant, alg string, sources []int32, qr queryRequest) (core.Request, error) {
	a := core.Algorithm(strings.ToLower(strings.TrimSpace(alg)))
	if !s.algs[a] {
		return core.Request{}, badRequest("unknown algorithm %q (have %v)", alg, core.Algorithms())
	}
	for _, src := range sources {
		if src < 1 || src > int32(tn.db.N()) {
			return core.Request{}, badRequest("source node %d outside 1..%d", src, tn.db.N())
		}
	}
	cfg := s.opts.DefaultConfig
	if qr.BufferPages != 0 {
		cfg.BufferPages = qr.BufferPages
	}
	if qr.PagePolicy != "" {
		cfg.PagePolicy = qr.PagePolicy
	}
	if qr.ListPolicy != "" {
		cfg.ListPolicy = qr.ListPolicy
	}
	if qr.ILIMIT != 0 {
		cfg.ILIMIT = qr.ILIMIT
	}
	if qr.Parallelism != 0 {
		cfg.Parallelism = qr.Parallelism
	}
	if cfg.Parallelism < 0 || cfg.Parallelism > maxRequestParallelism {
		return core.Request{}, badRequest("parallelism must be between 0 and %d, got %d",
			maxRequestParallelism, cfg.Parallelism)
	}
	if cfg.BufferPages < 4 {
		return core.Request{}, badRequest("buffer pool must have at least 4 pages, got %d", cfg.BufferPages)
	}
	if _, err := buffer.NewPolicy(cfg.PagePolicy, cfg.BufferPages); err != nil {
		return core.Request{}, badRequest("%v", err)
	}
	if _, err := slist.NewListPolicy(cfg.ListPolicy); err != nil {
		return core.Request{}, badRequest("%v", err)
	}
	return core.Request{Alg: a, Query: core.Query{Sources: sources}, Cfg: cfg}, nil
}

// cacheKey canonicalizes a request: the source set is sorted and
// deduplicated (the engine's answer is a per-source map, so order and
// multiplicity cannot matter), and every config field that changes engine
// behaviour participates. Caches are per tenant, so the graph name does
// not participate.
func cacheKey(req core.Request) string {
	srcs := append([]int32(nil), req.Query.Sources...)
	sort.Slice(srcs, func(i, j int) bool { return srcs[i] < srcs[j] })
	var b strings.Builder
	fmt.Fprintf(&b, "%s|m=%d|pp=%s|lp=%s|il=%g|nomark=%t|idx=%t|noclus=%t|par=%d|s=",
		req.Alg, req.Cfg.BufferPages, req.Cfg.PagePolicy, req.Cfg.ListPolicy,
		req.Cfg.ILIMIT, req.Cfg.DisableMarking, req.Cfg.ChargeIndexIO, req.Cfg.DisableClustering,
		req.Cfg.Parallelism)
	var last int32 = -1
	for _, v := range srcs {
		if v == last {
			continue
		}
		last = v
		fmt.Fprintf(&b, "%d,", v)
	}
	return b.String()
}

// tracing reports whether requests should carry a tracer: either the
// /debug/traces ring is recording or a slow-query threshold is set. When
// false, requests take the untraced path — no tracer is allocated and the
// engine's span hooks stay nil.
func (s *Server) tracing() bool { return s.traces.enabled() || s.opts.SlowQuery > 0 }

// finishTrace closes a request's root span, records the entry in the trace
// ring, and emits the slow-query log line when over threshold. A nil
// tracer (tracing disabled) is a no-op.
func (s *Server) finishTrace(tr *obsv.Tracer, root *obsv.Span, e TraceEntry, elapsed time.Duration) {
	if tr == nil {
		return
	}
	root.Finish()
	e.Time = time.Now()
	e.ElapsedMS = float64(elapsed) / float64(time.Millisecond)
	e.Spans = tr.Records()
	if s.opts.SlowQuery > 0 && elapsed >= s.opts.SlowQuery {
		e.Slow = true
		s.met.SlowQueries.Add(1)
		s.opts.SlowLogf("%s", slowLogLine(e, s.opts.SlowQuery))
	}
	s.traces.add(e)
}

// execute runs one validated request through the tenant's cache,
// single-flight and admission, attributing served work to the metrics and
// feeding the executed result into the tenant's adaptive planner — the
// observation loop that turns measured phase times and page I/O into
// future plan rankings.
func (s *Server) execute(ctx context.Context, tn *tenant, req core.Request) (res *core.Result, hit, shared bool, err error) {
	res, hit, shared, err = tn.cache.Do(ctx, cacheKey(req), func() (*core.Result, error) {
		r, err := s.disp.SubmitTenant(ctx, tn.name, tn.db, req)
		if err != nil {
			return nil, err
		}
		io := r.Metrics.TotalIO()
		s.met.PagesServed.Add(io)
		tn.tm.PagesServed.Add(io)
		s.met.TuplesServed.Add(r.Metrics.DistinctTuples)
		s.met.ObserveEngine(string(req.Alg), r.Metrics)
		if tn.adapt != nil {
			if prof, perr := tn.ensureProfile(); perr == nil {
				tn.adapt.Observe(prof, len(req.Query.Sources), req.Cfg.BufferPages, req.Alg,
					r.Metrics.RestructureTime+r.Metrics.ComputeTime, io)
			}
		}
		return r, nil
	})
	if err == nil {
		switch {
		case hit:
			s.met.CacheHits.Add(1)
			tn.tm.CacheHits.Add(1)
		case shared:
			s.met.Deduplicated.Add(1)
		default:
			s.met.CacheMisses.Add(1)
			tn.tm.CacheMisses.Add(1)
		}
	}
	return res, hit, shared, err
}

// requestContext applies the effective deadline.
func (s *Server) requestContext(r *http.Request, timeoutMS int) (context.Context, context.CancelFunc) {
	t := s.opts.DefaultTimeout
	if timeoutMS > 0 {
		t = time.Duration(timeoutMS) * time.Millisecond
	}
	return context.WithTimeout(r.Context(), t)
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	s.met.InFlight.Add(1)
	defer s.met.InFlight.Add(-1)
	var qr queryRequest
	if err := json.NewDecoder(r.Body).Decode(&qr); err != nil {
		s.fail(w, badRequest("bad request body: %v", err))
		return
	}
	tn, err := s.tenantFor(r, qr.Graph)
	if err != nil {
		s.fail(w, err)
		return
	}
	req, err := s.buildRequest(tn, qr.Algorithm, qr.Sources, qr)
	if err != nil {
		s.fail(w, err)
		return
	}
	var tr *obsv.Tracer
	var root *obsv.Span
	var entry TraceEntry
	if s.tracing() {
		tr = obsv.NewTracer()
		root = tr.Start("query", obsv.KV("algorithm", string(req.Alg)),
			obsv.KV("sources", len(req.Query.Sources)))
		req.Cfg.Trace = root
		entry = TraceEntry{
			Endpoint:  "query",
			Algorithm: string(req.Alg),
			Graph:     s.traceGraph(tn),
			Sources:   req.Query.Sources,
			Replay:    replayCommand(s.opts.ReplayArgs, req),
		}
	}
	ctx, cancel := s.requestContext(r, qr.TimeoutMS)
	defer cancel()
	res, hit, shared, err := s.execute(ctx, tn, req)
	if err != nil {
		entry.Error = err.Error()
		s.finishTrace(tr, root, entry, time.Since(start))
		s.failTenant(w, tn, err)
		return
	}
	s.met.Queries.Add(1)
	tn.tm.Queries.Add(1)
	elapsed := time.Since(start)
	s.met.ObserveLatency(elapsed)
	entry.Cached, entry.Deduplicated = hit, shared
	root.Annotate(obsv.KV("cached", hit), obsv.KV("deduplicated", shared))
	s.finishTrace(tr, root, entry, elapsed)
	resp := queryResponse{
		Algorithm:       string(req.Alg),
		Graph:           s.responseGraph(tn),
		Sources:         req.Query.Sources,
		Cached:          hit,
		Deduplicated:    shared,
		ElapsedMS:       float64(elapsed) / float64(time.Millisecond),
		Metrics:         newMetricRecord(res.Metrics),
		SuccessorCounts: make(map[int32]int, len(res.Successors)),
	}
	for node, succ := range res.Successors {
		resp.SuccessorCounts[node] = len(succ)
	}
	if qr.IncludeSuccessors {
		resp.Successors = res.Successors
	}
	writeJSON(w, http.StatusOK, resp)
}

// responseGraph names the tenant in responses of multi-graph servers;
// single-graph responses stay byte-compatible with earlier versions.
func (s *Server) responseGraph(tn *tenant) string {
	if len(s.tenants) == 1 {
		return ""
	}
	return tn.name
}

// traceGraph mirrors responseGraph for trace entries.
func (s *Server) traceGraph(tn *tenant) string { return s.responseGraph(tn) }

// reachResponse is the reply of GET /v1/reach.
type reachResponse struct {
	Src       int32   `json:"src"`
	Dst       int32   `json:"dst"`
	Graph     string  `json:"graph,omitempty"`
	Reachable bool    `json:"reachable"`
	Cached    bool    `json:"cached"`
	IndexHit  bool    `json:"index_hit,omitempty"`
	Overlay   bool    `json:"overlay,omitempty"` // answered by the delta overlay mid-rebuild
	Seq       int64   `json:"seq,omitempty"`     // mutation sequence the answer reflects
	ElapsedMS float64 `json:"elapsed_ms"`
	PageIO    int64   `json:"page_io"` // 0 on a cache hit or index hit
}

// handleReach answers src->dst reachability. With a loaded reachability
// index (and while it is not stale) the answer is an O(1)/O(log k) label
// probe with zero page I/O and no engine involvement. Otherwise it expands
// src's successor set with SRCH — the engine's per-source fast path — and
// caches it, so a warm source answers any destination with zero page I/O.
// A node reaches itself only through a cycle, matching closure semantics.
func (s *Server) handleReach(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	s.met.InFlight.Add(1)
	defer s.met.InFlight.Add(-1)
	src, err1 := parseNode(r.URL.Query().Get("src"))
	dst, err2 := parseNode(r.URL.Query().Get("dst"))
	if err1 != nil || err2 != nil {
		s.fail(w, badRequest("reach needs integer src and dst parameters"))
		return
	}
	tn, err := s.tenantFor(r, "")
	if err != nil {
		s.fail(w, err)
		return
	}
	var tr *obsv.Tracer
	var root *obsv.Span
	if s.tracing() {
		tr = obsv.NewTracer()
		root = tr.Start("reach", obsv.KV("src", src), obsv.KV("dst", dst))
	}
	if tn.dyn != nil {
		if src < 1 || src > int32(tn.dyn.N()) {
			s.fail(w, badRequest("source node %d outside 1..%d", src, tn.dyn.N()))
			return
		}
		if dst < 1 || dst > int32(tn.dyn.N()) {
			s.fail(w, badRequest("destination node %d outside 1..%d", dst, tn.dyn.N()))
			return
		}
		observed := int64(atoiDefault(r.URL.Query().Get("seq"), 0))
		probe := root.Child("dynamic-probe")
		reachable, hit, seq, err := tn.dyn.Reach(src, dst, observed)
		if err != nil {
			probe.Finish()
			s.finishTrace(tr, root, TraceEntry{
				Endpoint: "reach", Sources: []int32{src}, Error: err.Error(),
			}, time.Since(start))
			s.fail(w, err)
			return
		}
		probe.Annotate(obsv.KV("reachable", reachable), obsv.KV("index_hit", hit))
		probe.Finish()
		if hit {
			s.met.IndexHits.Add(1)
		} else {
			s.met.OverlayReads.Add(1)
		}
		s.met.Reaches.Add(1)
		tn.tm.Reaches.Add(1)
		elapsed := time.Since(start)
		s.met.ObserveLatency(elapsed)
		s.finishTrace(tr, root, TraceEntry{
			Endpoint: "reach", Sources: []int32{src}, IndexHit: hit,
		}, elapsed)
		writeJSON(w, http.StatusOK, reachResponse{
			Src: src, Dst: dst, Reachable: reachable, IndexHit: hit,
			Overlay: !hit, Seq: seq,
			ElapsedMS: float64(elapsed) / float64(time.Millisecond),
		})
		return
	}
	if tn.idx != nil && !tn.idx.Stale() {
		if src < 1 || src > int32(tn.db.N()) {
			s.fail(w, badRequest("source node %d outside 1..%d", src, tn.db.N()))
			return
		}
		if dst < 1 || dst > int32(tn.db.N()) {
			s.fail(w, badRequest("destination node %d outside 1..%d", dst, tn.db.N()))
			return
		}
		probe := root.Child("index-probe")
		reachable := tn.idx.Reach(src, dst)
		probe.Annotate(obsv.KV("reachable", reachable))
		probe.Finish()
		s.met.IndexHits.Add(1)
		s.met.Reaches.Add(1)
		tn.tm.Reaches.Add(1)
		elapsed := time.Since(start)
		s.met.ObserveLatency(elapsed)
		s.finishTrace(tr, root, TraceEntry{
			Endpoint: "reach", Sources: []int32{src}, IndexHit: true,
		}, elapsed)
		writeJSON(w, http.StatusOK, reachResponse{
			Src: src, Dst: dst, Graph: s.responseGraph(tn), Reachable: reachable, IndexHit: true,
			ElapsedMS: float64(elapsed) / float64(time.Millisecond),
		})
		return
	}
	s.met.EngineFallbacks.Add(1)
	req, err := s.buildRequest(tn, string(core.SRCH), []int32{src}, queryRequest{})
	if err != nil {
		s.fail(w, err)
		return
	}
	if dst < 1 || dst > int32(tn.db.N()) {
		s.fail(w, badRequest("destination node %d outside 1..%d", dst, tn.db.N()))
		return
	}
	var entry TraceEntry
	if tr != nil {
		req.Cfg.Trace = root
		entry = TraceEntry{
			Endpoint:  "reach",
			Algorithm: string(core.SRCH),
			Graph:     s.traceGraph(tn),
			Sources:   []int32{src},
			Replay:    replayCommand(s.opts.ReplayArgs, req),
		}
	}
	ctx, cancel := s.requestContext(r, atoiDefault(r.URL.Query().Get("timeout_ms"), 0))
	defer cancel()
	res, hit, shared, err := s.execute(ctx, tn, req)
	if err != nil {
		entry.Error = err.Error()
		s.finishTrace(tr, root, entry, time.Since(start))
		s.failTenant(w, tn, err)
		return
	}
	s.met.Reaches.Add(1)
	tn.tm.Reaches.Add(1)
	elapsed := time.Since(start)
	s.met.ObserveLatency(elapsed)
	reachable := false
	for _, v := range res.Successors[src] {
		if v == dst {
			reachable = true
			break
		}
	}
	var io int64
	if !hit {
		io = res.Metrics.TotalIO()
	}
	entry.Cached, entry.Deduplicated = hit, shared
	root.Annotate(obsv.KV("reachable", reachable), obsv.KV("cached", hit))
	s.finishTrace(tr, root, entry, elapsed)
	writeJSON(w, http.StatusOK, reachResponse{
		Src: src, Dst: dst, Graph: s.responseGraph(tn), Reachable: reachable, Cached: hit,
		ElapsedMS: float64(elapsed) / float64(time.Millisecond), PageIO: io,
	})
}

// arcResponse is the reply of POST /v1/arc: where the batch landed in the
// mutation log and what it did to the index.
type arcResponse struct {
	Seq         int64   `json:"seq"`
	Applied     int     `json:"applied"`
	Noops       int     `json:"noops"`
	Merged      int     `json:"merged_components,omitempty"`
	Rebuilding  bool    `json:"rebuilding"`
	Generation  int64   `json:"generation"`
	Pending     int     `json:"pending"`
	Fingerprint string  `json:"fingerprint"`
	ElapsedMS   float64 `json:"elapsed_ms"`
}

// maxArcBody bounds a mutation-batch request body. Batches are also capped
// in op count by the dynamic service; this guards the decoder itself.
const maxArcBody = 1 << 20

// handleArc applies one mutation batch — inserts and deletes of arcs —
// against the dynamic graph service. The whole batch is validated before
// any op applies, takes one sequence number, and the response carries the
// post-batch fingerprint so a router can verify replica convergence.
func (s *Server) handleArc(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	s.met.InFlight.Add(1)
	defer s.met.InFlight.Add(-1)
	dyn := s.def.dyn
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxArcBody))
	if err != nil {
		s.fail(w, badRequest("read mutation batch: %v", err))
		return
	}
	batch, err := dynamic.ParseBatch(body, dyn.N(), dyn.MaxBatchOps())
	if err != nil {
		s.fail(w, badRequest("%v", err))
		return
	}
	var tr *obsv.Tracer
	var root *obsv.Span
	if s.tracing() {
		tr = obsv.NewTracer()
		root = tr.Start("arc", obsv.KV("ops", len(batch.Ops)))
	}
	apply := root.Child("apply")
	res, err := dyn.Apply(batch.Ops)
	apply.Finish()
	if err != nil {
		s.finishTrace(tr, root, TraceEntry{Endpoint: "arc", Error: err.Error()}, time.Since(start))
		s.fail(w, err)
		return
	}
	s.met.ArcWrites.Add(1)
	s.met.MutationsApplied.Add(int64(res.Applied))
	elapsed := time.Since(start)
	s.met.ObserveLatency(elapsed)
	root.Annotate(obsv.KV("seq", res.Seq), obsv.KV("applied", res.Applied))
	s.finishTrace(tr, root, TraceEntry{Endpoint: "arc"}, elapsed)
	writeJSON(w, http.StatusOK, arcResponse{
		Seq:         res.Seq,
		Applied:     res.Applied,
		Noops:       res.Noops,
		Merged:      res.Merged,
		Rebuilding:  res.Dirty,
		Generation:  res.Generation,
		Pending:     res.Pending,
		Fingerprint: fmt.Sprintf("%016x", res.Fingerprint),
		ElapsedMS:   float64(elapsed) / float64(time.Millisecond),
	})
}

// planResponse is the reply of GET /v1/plan.
type planResponse struct {
	Profile planProfile `json:"profile"`
	Graph   string      `json:"graph,omitempty"`
	// Mode is "static" (pure cost-model ranking) or "adaptive" (cost model
	// blended with the tenant's decayed observation store).
	Mode      string         `json:"mode,omitempty"`
	Sources   int            `json:"sources"`
	BufferM   int            `json:"buffer_pages"`
	Estimates []planEstimate `json:"estimates"` // cheapest first
	// Planner is the tenant's rolling decision record (adaptive mode).
	Planner *planStats `json:"planner,omitempty"`
}

type planProfile struct {
	Nodes     int     `json:"nodes"`
	Arcs      int     `json:"arcs"`
	H         float64 `json:"h"`
	W         float64 `json:"w"`
	AvgDegree float64 `json:"avg_degree"`
	Reach     float64 `json:"reach"`
	CondNodes int     `json:"cond_nodes"`
	CondArcs  int     `json:"cond_arcs"`
	Density   float64 `json:"cond_density"`
}

type planEstimate struct {
	Algorithm string  `json:"algorithm"`
	IO        float64 `json:"io"`
	Why       string  `json:"why"`
	// Adaptive-mode evidence (omitted in static mode and for cold cells).
	BlendedIO         float64 `json:"blended_io,omitempty"`
	Samples           float64 `json:"samples,omitempty"`
	ObservedIO        float64 `json:"observed_io,omitempty"`
	ObservedLatencyMS float64 `json:"observed_latency_ms,omitempty"`
	Explored          bool    `json:"explored,omitempty"`
}

// planStats is the JSON shape of the planner's rolling counters.
type planStats struct {
	Decisions    int64   `json:"decisions"`
	Hits         int64   `json:"hits"`
	HitRate      float64 `json:"hit_rate"`
	Explorations int64   `json:"explorations"`
	Observations int64   `json:"observations"`
}

// handlePlan ranks the algorithms for the tenant's graph. The statistical
// profile (one DFS plus sampled reachability probes) is built on first use
// and reused for the server's lifetime — the engine-visible graph is
// immutable. By default the ranking is adaptive: the static cost model
// blended with the tenant's decayed observation store (identical to the
// static ranking while the store is cold). ?mode=static forces the pure
// cost-model view.
func (s *Server) handlePlan(w http.ResponseWriter, r *http.Request) {
	tn, err := s.tenantFor(r, "")
	if err != nil {
		s.fail(w, err)
		return
	}
	profile, err := tn.ensureProfile()
	if err != nil {
		s.fail(w, fmt.Errorf("planner profile: %w", err))
		return
	}
	numSources := atoiDefault(r.URL.Query().Get("sources"), 1)
	if numSources < 0 {
		numSources = 0
	}
	m := atoiDefault(r.URL.Query().Get("m"), s.opts.DefaultConfig.BufferPages)
	static := tn.adapt == nil || r.URL.Query().Get("mode") == "static"
	resp := planResponse{
		Profile: planProfile{
			Nodes: profile.N, Arcs: profile.Arcs,
			H: profile.H, W: profile.W,
			AvgDegree: profile.AvgDegree, Reach: profile.Reach,
			CondNodes: profile.CondNodes, CondArcs: profile.CondArcs,
			Density: profile.Density,
		},
		Graph:   s.responseGraph(tn),
		Sources: numSources,
		BufferM: m,
	}
	if static {
		resp.Mode = "static"
		for _, e := range planner.Estimates(profile, numSources, m) {
			resp.Estimates = append(resp.Estimates, planEstimate{Algorithm: string(e.Alg), IO: e.IO, Why: e.Why})
		}
	} else {
		resp.Mode = "adaptive"
		for _, d := range tn.adapt.Rank(profile, numSources, m) {
			resp.Estimates = append(resp.Estimates, planEstimate{
				Algorithm:         string(d.Alg),
				IO:                d.IO,
				Why:               d.Why,
				BlendedIO:         d.Blended,
				Samples:           d.Samples,
				ObservedIO:        d.ObsIO,
				ObservedLatencyMS: float64(d.ObsLatency) / float64(time.Millisecond),
				Explored:          d.Explored,
			})
		}
		st := tn.adapt.Stats()
		resp.Planner = &planStats{
			Decisions:    st.Decisions,
			Hits:         st.Hits,
			HitRate:      st.HitRate,
			Explorations: st.Explorations,
			Observations: st.Observations,
		}
	}
	s.met.Plans.Add(1)
	tn.tm.Plans.Add(1)
	writeJSON(w, http.StatusOK, resp)
}

// healthBlock is one tenant's healthz fragment: graph shape, dataset
// identity, and the index/dynamic state when present.
func (tn *tenant) healthBlock() (map[string]any, error) {
	fp, err := tn.fingerprint()
	if err != nil {
		return nil, err
	}
	b := map[string]any{
		"nodes":       tn.db.N(),
		"arcs":        tn.db.NumArcs(),
		"fingerprint": fmt.Sprintf("%016x", fp),
	}
	if tn.dyn != nil {
		st := tn.dyn.Stats()
		cur := tn.dyn.Index()
		b["arcs"] = st.NumArcs
		b["index"] = map[string]any{
			"nodes":      cur.N(),
			"arcs":       cur.NumArcs(),
			"stale":      st.Dirty || cur.Stale(),
			"generation": st.Generation,
			"chains":     cur.Chains(),
			"builder":    cur.Builder(),
		}
		b["dynamic"] = map[string]any{
			"seq":        st.Seq,
			"generation": st.Generation,
			"pending":    st.Pending,
			"rebuilding": st.Dirty,
			"rebuilds":   st.Rebuilds,
			"mutations":  st.Mutations,
		}
	} else if tn.idx != nil {
		b["index"] = map[string]any{
			"nodes":      tn.idx.N(),
			"arcs":       tn.idx.NumArcs(),
			"stale":      tn.idx.Stale(),
			"generation": tn.idx.Generation(),
			"chains":     tn.idx.Chains(),
			"builder":    tn.idx.Builder(),
		}
	}
	return b, nil
}

// handleHealthz reports liveness plus the dataset identity a routing tier
// needs to decide whether this replica may join a fleet: the graph's
// CRC-64 fingerprint and, when a reachability index is loaded, its shape
// and generation. Replicas answering with different fingerprints serve
// different graphs and must not share a consistent-hash ring. A
// multi-graph server reports each tenant under "graphs" and a combined
// top-level fingerprint folding every tenant's identity, so fleets must
// agree tenant by tenant.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	graphs := make(map[string]any, len(s.names))
	for _, name := range s.names {
		b, err := s.tenants[name].healthBlock()
		if err != nil {
			writeJSON(w, http.StatusInternalServerError, map[string]any{
				"status": "degraded",
				"error":  fmt.Sprintf("dataset fingerprint (%s): %v", name, err),
			})
			return
		}
		graphs[name] = b
	}
	def := graphs[s.def.name].(map[string]any)
	resp := map[string]any{
		"status":         "ok",
		"nodes":          def["nodes"],
		"arcs":           def["arcs"],
		"fingerprint":    def["fingerprint"],
		"uptime_seconds": time.Since(s.met.start).Seconds(),
	}
	if idx, ok := def["index"]; ok {
		resp["index"] = idx
	}
	if dyn, ok := def["dynamic"]; ok {
		resp["dynamic"] = dyn
	}
	if len(s.names) > 1 {
		// Fold every tenant's identity into the top-level fingerprint: two
		// multi-graph replicas agree exactly when every named graph agrees.
		h := fnv.New64a()
		for _, name := range s.names {
			fmt.Fprintf(h, "%s=%s\n", name, graphs[name].(map[string]any)["fingerprint"])
		}
		resp["fingerprint"] = fmt.Sprintf("%016x", h.Sum64())
		resp["graph"] = s.def.name
	}
	resp["graphs"] = graphs
	writeJSON(w, http.StatusOK, resp)
}

// handleMetrics serves the live counters. The default is Prometheus text
// exposition format (what a scraper expects at /metrics); the original
// JSON snapshot remains available as /metrics?format=json.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.URL.Query().Get("format") == "json" {
		writeJSON(w, http.StatusOK, s.met.Snapshot())
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_, _ = w.Write([]byte(s.met.Prometheus(s.disp.QueueDepth(), s.disp.QueueCap(), s.indexState(), s.tenantStates()...)))
}

// tenantStates snapshots every tenant's counters, cache occupancy, queue
// depth and planner statistics for the metrics exposition.
func (s *Server) tenantStates() []TenantState {
	out := make([]TenantState, 0, len(s.names))
	for _, name := range s.names {
		tn := s.tenants[name]
		ts := TenantState{
			Name:        name,
			Queries:     tn.tm.Queries.Load(),
			Reaches:     tn.tm.Reaches.Load(),
			Plans:       tn.tm.Plans.Load(),
			CacheHits:   tn.tm.CacheHits.Load(),
			CacheMisses: tn.tm.CacheMisses.Load(),
			Rejected:    tn.tm.Rejected.Load(),
			PagesServed: tn.tm.PagesServed.Load(),
			CacheLen:    tn.cache.Len(),
			CacheCap:    s.opts.CacheEntries,
			QueueDepth:  s.disp.TenantQueueDepth(name),
		}
		if tn.adapt != nil {
			ts.Adaptive = true
			ts.Planner = tn.adapt.Stats()
		}
		out = append(out, ts)
	}
	return out
}

// indexState summarizes the serving index for the metrics exposition: the
// dynamic service when present (live generation, pending log, merge and
// rebuild counters), the static index otherwise. Index gauges cover the
// default tenant; per-tenant index state is in /healthz.
func (s *Server) indexState() IndexState {
	if s.def.dyn != nil {
		st := s.def.dyn.Stats()
		return IndexState{
			Present:    true,
			Dynamic:    true,
			Stale:      st.Dirty || s.def.dyn.Index().Stale(),
			Generation: st.Generation,
			Seq:        st.Seq,
			Pending:    st.Pending,
			Mutations:  st.Mutations,
			Merges:     st.Merges,
			Rebuilds:   st.Rebuilds,
		}
	}
	if s.def.idx != nil {
		return IndexState{
			Present:    true,
			Stale:      s.def.idx.Stale(),
			Generation: int64(s.def.idx.Generation()),
		}
	}
	return IndexState{}
}

// handleTraces serves the recent-request trace ring, newest first. With
// tracing disabled (TraceBuffer 0) it reports the feature as off rather
// than an empty list, so a probe can tell "no traffic" from "not
// recording".
func (s *Server) handleTraces(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"enabled": s.traces.enabled(),
		"traces":  s.traces.snapshot(),
	})
}

func parseNode(v string) (int32, error) {
	n, err := strconv.ParseInt(v, 10, 32)
	if err != nil {
		return 0, err
	}
	return int32(n), nil
}

func atoiDefault(v string, def int) int {
	if v == "" {
		return def
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		return def
	}
	return n
}
