// Package server exposes the transitive closure engine over HTTP/JSON: a
// query endpoint returning the paper's full metric record, a boolean
// reachability fast path, the planner's ranking for the loaded graph, and
// live operational metrics.
//
// The serving pipeline layers three production mechanics over the engine:
//
//   - admission control: queries flow through a bounded queue into a
//     bounded worker pool built on core.RunConcurrent; when the queue is
//     full, requests are rejected with 429 rather than piling up.
//   - result caching: an LRU keyed on the canonical (algorithm, sources,
//     config) triple answers repeated queries with zero page I/O, and
//     single-flight deduplication collapses identical in-flight queries
//     onto one engine execution.
//   - deadlines: every request carries a context deadline (default or
//     per-request); expiry while queued or waiting returns 504 without
//     charging the engine.
//
// The stack is observable end to end: requests can carry phase-span
// traces (ring-buffered behind GET /debug/traces), GET /metrics serves
// Prometheus text exposition format with per-algorithm phase-time
// histograms, and requests over a slow-query threshold are logged with a
// replayable tcquery command line. See docs/OBSERVABILITY.md.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"tcstudy/internal/buffer"
	"tcstudy/internal/core"
	"tcstudy/internal/dynamic"
	"tcstudy/internal/graph"
	"tcstudy/internal/index"
	"tcstudy/internal/obsv"
	"tcstudy/internal/pagedisk"
	"tcstudy/internal/planner"
	"tcstudy/internal/slist"
)

// Options configures a Server. Zero values select the defaults.
type Options struct {
	// Workers bounds the number of queries one engine batch executes
	// concurrently (default 8).
	Workers int
	// QueueDepth bounds the admission queue; a full queue rejects with
	// 429 (default 64).
	QueueDepth int
	// CacheEntries bounds the result cache (default 256; 0 keeps
	// single-flight deduplication but retains nothing).
	CacheEntries int
	// DefaultTimeout is the per-request deadline when the request does not
	// set one (default 30s).
	DefaultTimeout time.Duration
	// DefaultConfig supplies engine configuration fields a request leaves
	// unset (buffer pages, policies).
	DefaultConfig core.Config
	// Index, when set, answers GET /v1/reach from the prebuilt
	// reachability index with zero page I/O and no engine work. The engine
	// path remains the fallback when the index is absent or stale. It must
	// cover the same node space as the database.
	Index *index.Index
	// Dynamic, when set, turns the server into a read/write graph service:
	// POST /v1/arc accepts mutation batches and GET /v1/reach is answered
	// by the dynamic service (sealed index generation or, while a rebuild
	// is in flight, the delta overlay) instead of Options.Index. The
	// engine endpoints (/v1/query, /v1/plan) keep serving the frozen base
	// relation. See docs/DYNAMIC.md.
	Dynamic *dynamic.Service
	// TraceBuffer, when positive, records the span tree of the most recent
	// TraceBuffer requests in a ring served by GET /debug/traces. Zero
	// disables request tracing entirely (no tracer is allocated and query
	// execution takes the untraced path).
	TraceBuffer int
	// SlowQuery, when positive, logs every request slower than this
	// threshold — with its span tree summary and a replayable tcquery
	// command line — through SlowLogf. Slow requests are traced even when
	// TraceBuffer is zero.
	SlowQuery time.Duration
	// SlowLogf receives slow-query log lines (default log.Printf).
	SlowLogf func(format string, args ...any)
	// ReplayArgs is the tcquery flag fragment reconstructing the served
	// graph (e.g. "-n 2000 -f 5 -l 200 -seed 1" or "-db closure.tcdb"),
	// prepended to the replay command of slow-query log entries.
	ReplayArgs string
}

func (o Options) withDefaults() Options {
	if o.Workers == 0 {
		o.Workers = 8
	}
	if o.QueueDepth == 0 {
		o.QueueDepth = 64
	}
	if o.CacheEntries == 0 {
		o.CacheEntries = 256
	}
	if o.DefaultTimeout == 0 {
		o.DefaultTimeout = 30 * time.Second
	}
	if o.DefaultConfig.BufferPages == 0 {
		o.DefaultConfig.BufferPages = 10
	}
	if o.DefaultConfig.PagePolicy == "" {
		o.DefaultConfig.PagePolicy = "lru"
	}
	if o.DefaultConfig.ListPolicy == "" {
		o.DefaultConfig.ListPolicy = "smallest"
	}
	if o.SlowLogf == nil {
		o.SlowLogf = log.Printf
	}
	return o
}

// Server serves reachability queries over one loaded database.
type Server struct {
	db     *core.Database
	opts   Options
	disp   *dispatcher
	cache  *resultCache
	idx    *index.Index
	dyn    *dynamic.Service
	met    *Metrics
	traces *traceRing
	mux    *http.ServeMux
	algs   map[core.Algorithm]bool

	planOnce sync.Once
	profile  planner.Profile
	planErr  error

	fpOnce sync.Once
	fp     uint64
	fpErr  error
}

// New builds a server over an already-loaded database.
func New(db *core.Database, opts Options) *Server {
	opts = opts.withDefaults()
	s := &Server{
		db:     db,
		opts:   opts,
		disp:   newDispatcher(db, opts.Workers, opts.QueueDepth),
		cache:  newResultCache(opts.CacheEntries),
		idx:    opts.Index,
		dyn:    opts.Dynamic,
		met:    NewMetrics(),
		traces: newTraceRing(opts.TraceBuffer),
		mux:    http.NewServeMux(),
		algs:   make(map[core.Algorithm]bool),
	}
	for _, a := range core.Algorithms() {
		s.algs[a] = true
	}
	s.mux.HandleFunc("POST /v1/query", s.handleQuery)
	s.mux.HandleFunc("GET /v1/reach", s.handleReach)
	s.mux.HandleFunc("GET /v1/plan", s.handlePlan)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /debug/traces", s.handleTraces)
	if s.dyn != nil {
		s.mux.HandleFunc("POST /v1/arc", s.handleArc)
		s.dyn.SetOnRebuild(func(gen int64, replayed int, took time.Duration) {
			s.traces.add(TraceEntry{
				Time:      time.Now(),
				Endpoint:  "rebuild",
				ElapsedMS: float64(took) / float64(time.Millisecond),
				Sources:   nil,
				Algorithm: fmt.Sprintf("generation %d (+%d replayed)", gen, replayed),
			})
		})
	}
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Metrics exposes the live counters (for tests and embedding).
func (s *Server) Metrics() *Metrics { return s.met }

// Close stops admitting queries and drains in-flight work.
func (s *Server) Close() { s.disp.Close() }

// httpError is an error with an HTTP status.
type httpError struct {
	status int
	msg    string
}

func (e *httpError) Error() string { return e.msg }

func badRequest(format string, args ...any) error {
	return &httpError{status: http.StatusBadRequest, msg: fmt.Sprintf(format, args...)}
}

// writeJSON emits one JSON response.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

// retryAfterMS is the retry hint attached to 503 responses for transient
// storage faults. The fault is gone the moment the engine retries (the
// backing store is intact), so the hint only spreads out the retry burst.
const retryAfterMS = 50

// fail maps an error to its HTTP status and counts it. Input-validation
// failures are 400s; a transient storage fault — a failed page read or
// write under the engine, which the next attempt may well not hit — is a
// 503 with retry hints, never a 500: the request was well-formed and the
// database is intact.
func (s *Server) fail(w http.ResponseWriter, err error) {
	status := http.StatusInternalServerError
	transient := false
	var he *httpError
	switch {
	case errors.As(err, &he):
		status = he.status
	case errors.Is(err, ErrSaturated):
		status = http.StatusTooManyRequests
	case errors.Is(err, ErrClosed):
		status = http.StatusServiceUnavailable
	case isDeadline(err):
		status = http.StatusGatewayTimeout
	case pagedisk.IsTransient(err):
		status = http.StatusServiceUnavailable
		transient = true
	case errors.Is(err, dynamic.ErrBacklog):
		status = http.StatusTooManyRequests
	case errors.Is(err, dynamic.ErrFutureSeq):
		// The replica simply has not applied the writes the client observed
		// elsewhere yet; a retry lands after the log catches up.
		status = http.StatusServiceUnavailable
		transient = true
	}
	switch {
	case status == http.StatusTooManyRequests:
		s.met.Rejected.Add(1)
	case status == http.StatusGatewayTimeout:
		s.met.Timeouts.Add(1)
	case transient:
		s.met.StorageFaults.Add(1)
	default:
		s.met.Errors.Add(1)
	}
	if transient {
		w.Header().Set("Retry-After", "1")
		writeJSON(w, status, map[string]any{
			"error":          err.Error(),
			"transient":      true,
			"retry":          true,
			"retry_after_ms": retryAfterMS,
		})
		return
	}
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

func isDeadline(err error) bool {
	return errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled)
}

// maxRequestParallelism caps the intra-query worker count any single
// request may ask for.
const maxRequestParallelism = 64

// queryRequest is the body of POST /v1/query. Unset configuration fields
// inherit the server defaults.
type queryRequest struct {
	Algorithm string  `json:"algorithm"`
	Sources   []int32 `json:"sources"` // empty = full closure
	// Engine configuration overrides.
	BufferPages int     `json:"buffer_pages,omitempty"`
	PagePolicy  string  `json:"page_policy,omitempty"`
	ListPolicy  string  `json:"list_policy,omitempty"`
	ILIMIT      float64 `json:"ilimit,omitempty"`
	// Parallelism partitions a multi-source query's sources across worker
	// goroutines inside the engine (0 inherits the server default; 1 forces
	// serial). Bounded server-side to keep one request from monopolizing
	// the host.
	Parallelism int `json:"parallelism,omitempty"`
	// TimeoutMS overrides the server's default request deadline.
	TimeoutMS int `json:"timeout_ms,omitempty"`
	// IncludeSuccessors adds the full successor sets to the response
	// (successor counts are always included).
	IncludeSuccessors bool `json:"include_successors,omitempty"`
}

// queryResponse is the reply of POST /v1/query.
type queryResponse struct {
	Algorithm       string            `json:"algorithm"`
	Sources         []int32           `json:"sources,omitempty"`
	Cached          bool              `json:"cached"`
	Deduplicated    bool              `json:"deduplicated"`
	ElapsedMS       float64           `json:"elapsed_ms"`
	Metrics         metricRecord      `json:"metrics"`
	SuccessorCounts map[int32]int     `json:"successor_counts"`
	Successors      map[int32][]int32 `json:"successors,omitempty"`
}

// metricRecord is the JSON shape of the paper's full measurement record.
type metricRecord struct {
	RestructureReads  int64   `json:"restructure_reads"`
	RestructureWrites int64   `json:"restructure_writes"`
	ComputeReads      int64   `json:"compute_reads"`
	ComputeWrites     int64   `json:"compute_writes"`
	TotalIO           int64   `json:"total_io"`
	BufferHits        int64   `json:"buffer_hits"`
	BufferMisses      int64   `json:"buffer_misses"`
	BufferEvicts      int64   `json:"buffer_evicts"`
	BufferHitRatio    float64 `json:"buffer_hit_ratio"`

	TuplesGenerated   int64 `json:"tuples_generated"`
	Duplicates        int64 `json:"duplicates"`
	DistinctTuples    int64 `json:"distinct_tuples"`
	SourceTuples      int64 `json:"source_tuples"`
	SuccessorsFetched int64 `json:"successors_fetched"`
	ListUnions        int64 `json:"list_unions"`
	ArcsConsidered    int64 `json:"arcs_considered"`
	ArcsMarked        int64 `json:"arcs_marked"`

	MarkingPct          float64 `json:"marking_pct"`
	SelectionEfficiency float64 `json:"selection_efficiency"`
	UnmarkedLocality    float64 `json:"unmarked_locality"`

	MagicNodes int64   `json:"magic_nodes,omitempty"`
	MagicArcs  int64   `json:"magic_arcs,omitempty"`
	MagicH     float64 `json:"magic_h,omitempty"`
	MagicW     float64 `json:"magic_w,omitempty"`

	PageSplits   int64 `json:"page_splits"`
	ListsMoved   int64 `json:"lists_moved"`
	EntriesMoved int64 `json:"entries_moved"`
	Overflows    int64 `json:"overflows"`

	RestructureMS float64 `json:"restructure_ms"`
	ComputeMS     float64 `json:"compute_ms"`
	EstimatedIOMS float64 `json:"estimated_io_ms"`
}

func newMetricRecord(m core.Metrics) metricRecord {
	return metricRecord{
		RestructureReads:    m.Restructure.Reads,
		RestructureWrites:   m.Restructure.Writes,
		ComputeReads:        m.Compute.Reads,
		ComputeWrites:       m.Compute.Writes,
		TotalIO:             m.TotalIO(),
		BufferHits:          m.ComputeBuffer.Hits,
		BufferMisses:        m.ComputeBuffer.Misses,
		BufferEvicts:        m.ComputeBuffer.Evicts,
		BufferHitRatio:      m.ComputeBuffer.HitRatio(),
		TuplesGenerated:     m.TuplesGenerated,
		Duplicates:          m.Duplicates,
		DistinctTuples:      m.DistinctTuples,
		SourceTuples:        m.SourceTuples,
		SuccessorsFetched:   m.SuccessorsFetched,
		ListUnions:          m.ListUnions,
		ArcsConsidered:      m.ArcsConsidered,
		ArcsMarked:          m.ArcsMarked,
		MarkingPct:          m.MarkingPct(),
		SelectionEfficiency: m.SelectionEfficiency(),
		UnmarkedLocality:    m.AvgUnmarkedLocality(),
		MagicNodes:          m.MagicNodes,
		MagicArcs:           m.MagicArcs,
		MagicH:              m.MagicH,
		MagicW:              m.MagicW,
		PageSplits:          m.Store.Splits,
		ListsMoved:          m.Store.ListsMoved,
		EntriesMoved:        m.Store.EntriesMoved,
		Overflows:           m.Store.Overflows,
		RestructureMS:       float64(m.RestructureTime) / float64(time.Millisecond),
		ComputeMS:           float64(m.ComputeTime) / float64(time.Millisecond),
		EstimatedIOMS:       float64(m.EstimatedIOTime()) / float64(time.Millisecond),
	}
}

// buildRequest validates a query shape against the loaded database and
// fills configuration defaults.
func (s *Server) buildRequest(alg string, sources []int32, qr queryRequest) (core.Request, error) {
	a := core.Algorithm(strings.ToLower(strings.TrimSpace(alg)))
	if !s.algs[a] {
		return core.Request{}, badRequest("unknown algorithm %q (have %v)", alg, core.Algorithms())
	}
	for _, src := range sources {
		if src < 1 || src > int32(s.db.N()) {
			return core.Request{}, badRequest("source node %d outside 1..%d", src, s.db.N())
		}
	}
	cfg := s.opts.DefaultConfig
	if qr.BufferPages != 0 {
		cfg.BufferPages = qr.BufferPages
	}
	if qr.PagePolicy != "" {
		cfg.PagePolicy = qr.PagePolicy
	}
	if qr.ListPolicy != "" {
		cfg.ListPolicy = qr.ListPolicy
	}
	if qr.ILIMIT != 0 {
		cfg.ILIMIT = qr.ILIMIT
	}
	if qr.Parallelism != 0 {
		cfg.Parallelism = qr.Parallelism
	}
	if cfg.Parallelism < 0 || cfg.Parallelism > maxRequestParallelism {
		return core.Request{}, badRequest("parallelism must be between 0 and %d, got %d",
			maxRequestParallelism, cfg.Parallelism)
	}
	if cfg.BufferPages < 4 {
		return core.Request{}, badRequest("buffer pool must have at least 4 pages, got %d", cfg.BufferPages)
	}
	if _, err := buffer.NewPolicy(cfg.PagePolicy, cfg.BufferPages); err != nil {
		return core.Request{}, badRequest("%v", err)
	}
	if _, err := slist.NewListPolicy(cfg.ListPolicy); err != nil {
		return core.Request{}, badRequest("%v", err)
	}
	return core.Request{Alg: a, Query: core.Query{Sources: sources}, Cfg: cfg}, nil
}

// cacheKey canonicalizes a request: the source set is sorted and
// deduplicated (the engine's answer is a per-source map, so order and
// multiplicity cannot matter), and every config field that changes engine
// behaviour participates.
func cacheKey(req core.Request) string {
	srcs := append([]int32(nil), req.Query.Sources...)
	sort.Slice(srcs, func(i, j int) bool { return srcs[i] < srcs[j] })
	var b strings.Builder
	fmt.Fprintf(&b, "%s|m=%d|pp=%s|lp=%s|il=%g|nomark=%t|idx=%t|noclus=%t|par=%d|s=",
		req.Alg, req.Cfg.BufferPages, req.Cfg.PagePolicy, req.Cfg.ListPolicy,
		req.Cfg.ILIMIT, req.Cfg.DisableMarking, req.Cfg.ChargeIndexIO, req.Cfg.DisableClustering,
		req.Cfg.Parallelism)
	var last int32 = -1
	for _, v := range srcs {
		if v == last {
			continue
		}
		last = v
		fmt.Fprintf(&b, "%d,", v)
	}
	return b.String()
}

// tracing reports whether requests should carry a tracer: either the
// /debug/traces ring is recording or a slow-query threshold is set. When
// false, requests take the untraced path — no tracer is allocated and the
// engine's span hooks stay nil.
func (s *Server) tracing() bool { return s.traces.enabled() || s.opts.SlowQuery > 0 }

// finishTrace closes a request's root span, records the entry in the trace
// ring, and emits the slow-query log line when over threshold. A nil
// tracer (tracing disabled) is a no-op.
func (s *Server) finishTrace(tr *obsv.Tracer, root *obsv.Span, e TraceEntry, elapsed time.Duration) {
	if tr == nil {
		return
	}
	root.Finish()
	e.Time = time.Now()
	e.ElapsedMS = float64(elapsed) / float64(time.Millisecond)
	e.Spans = tr.Records()
	if s.opts.SlowQuery > 0 && elapsed >= s.opts.SlowQuery {
		e.Slow = true
		s.met.SlowQueries.Add(1)
		s.opts.SlowLogf("%s", slowLogLine(e, s.opts.SlowQuery))
	}
	s.traces.add(e)
}

// execute runs one validated request through cache, single-flight and
// admission, attributing served work to the metrics.
func (s *Server) execute(ctx context.Context, req core.Request) (res *core.Result, hit, shared bool, err error) {
	res, hit, shared, err = s.cache.Do(ctx, cacheKey(req), func() (*core.Result, error) {
		r, err := s.disp.Submit(ctx, req)
		if err != nil {
			return nil, err
		}
		s.met.PagesServed.Add(r.Metrics.TotalIO())
		s.met.TuplesServed.Add(r.Metrics.DistinctTuples)
		s.met.ObserveEngine(string(req.Alg), r.Metrics)
		return r, nil
	})
	if err == nil {
		switch {
		case hit:
			s.met.CacheHits.Add(1)
		case shared:
			s.met.Deduplicated.Add(1)
		default:
			s.met.CacheMisses.Add(1)
		}
	}
	return res, hit, shared, err
}

// requestContext applies the effective deadline.
func (s *Server) requestContext(r *http.Request, timeoutMS int) (context.Context, context.CancelFunc) {
	t := s.opts.DefaultTimeout
	if timeoutMS > 0 {
		t = time.Duration(timeoutMS) * time.Millisecond
	}
	return context.WithTimeout(r.Context(), t)
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	s.met.InFlight.Add(1)
	defer s.met.InFlight.Add(-1)
	var qr queryRequest
	if err := json.NewDecoder(r.Body).Decode(&qr); err != nil {
		s.fail(w, badRequest("bad request body: %v", err))
		return
	}
	req, err := s.buildRequest(qr.Algorithm, qr.Sources, qr)
	if err != nil {
		s.fail(w, err)
		return
	}
	var tr *obsv.Tracer
	var root *obsv.Span
	var entry TraceEntry
	if s.tracing() {
		tr = obsv.NewTracer()
		root = tr.Start("query", obsv.KV("algorithm", string(req.Alg)),
			obsv.KV("sources", len(req.Query.Sources)))
		req.Cfg.Trace = root
		entry = TraceEntry{
			Endpoint:  "query",
			Algorithm: string(req.Alg),
			Sources:   req.Query.Sources,
			Replay:    replayCommand(s.opts.ReplayArgs, req),
		}
	}
	ctx, cancel := s.requestContext(r, qr.TimeoutMS)
	defer cancel()
	res, hit, shared, err := s.execute(ctx, req)
	if err != nil {
		entry.Error = err.Error()
		s.finishTrace(tr, root, entry, time.Since(start))
		s.fail(w, err)
		return
	}
	s.met.Queries.Add(1)
	elapsed := time.Since(start)
	s.met.ObserveLatency(elapsed)
	entry.Cached, entry.Deduplicated = hit, shared
	root.Annotate(obsv.KV("cached", hit), obsv.KV("deduplicated", shared))
	s.finishTrace(tr, root, entry, elapsed)
	resp := queryResponse{
		Algorithm:       string(req.Alg),
		Sources:         req.Query.Sources,
		Cached:          hit,
		Deduplicated:    shared,
		ElapsedMS:       float64(elapsed) / float64(time.Millisecond),
		Metrics:         newMetricRecord(res.Metrics),
		SuccessorCounts: make(map[int32]int, len(res.Successors)),
	}
	for node, succ := range res.Successors {
		resp.SuccessorCounts[node] = len(succ)
	}
	if qr.IncludeSuccessors {
		resp.Successors = res.Successors
	}
	writeJSON(w, http.StatusOK, resp)
}

// reachResponse is the reply of GET /v1/reach.
type reachResponse struct {
	Src       int32   `json:"src"`
	Dst       int32   `json:"dst"`
	Reachable bool    `json:"reachable"`
	Cached    bool    `json:"cached"`
	IndexHit  bool    `json:"index_hit,omitempty"`
	Overlay   bool    `json:"overlay,omitempty"` // answered by the delta overlay mid-rebuild
	Seq       int64   `json:"seq,omitempty"`     // mutation sequence the answer reflects
	ElapsedMS float64 `json:"elapsed_ms"`
	PageIO    int64   `json:"page_io"` // 0 on a cache hit or index hit
}

// handleReach answers src->dst reachability. With a loaded reachability
// index (and while it is not stale) the answer is an O(1)/O(log k) label
// probe with zero page I/O and no engine involvement. Otherwise it expands
// src's successor set with SRCH — the engine's per-source fast path — and
// caches it, so a warm source answers any destination with zero page I/O.
// A node reaches itself only through a cycle, matching closure semantics.
func (s *Server) handleReach(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	s.met.InFlight.Add(1)
	defer s.met.InFlight.Add(-1)
	src, err1 := parseNode(r.URL.Query().Get("src"))
	dst, err2 := parseNode(r.URL.Query().Get("dst"))
	if err1 != nil || err2 != nil {
		s.fail(w, badRequest("reach needs integer src and dst parameters"))
		return
	}
	var tr *obsv.Tracer
	var root *obsv.Span
	if s.tracing() {
		tr = obsv.NewTracer()
		root = tr.Start("reach", obsv.KV("src", src), obsv.KV("dst", dst))
	}
	if s.dyn != nil {
		if src < 1 || src > int32(s.dyn.N()) {
			s.fail(w, badRequest("source node %d outside 1..%d", src, s.dyn.N()))
			return
		}
		if dst < 1 || dst > int32(s.dyn.N()) {
			s.fail(w, badRequest("destination node %d outside 1..%d", dst, s.dyn.N()))
			return
		}
		observed := int64(atoiDefault(r.URL.Query().Get("seq"), 0))
		probe := root.Child("dynamic-probe")
		reachable, hit, seq, err := s.dyn.Reach(src, dst, observed)
		if err != nil {
			probe.Finish()
			s.finishTrace(tr, root, TraceEntry{
				Endpoint: "reach", Sources: []int32{src}, Error: err.Error(),
			}, time.Since(start))
			s.fail(w, err)
			return
		}
		probe.Annotate(obsv.KV("reachable", reachable), obsv.KV("index_hit", hit))
		probe.Finish()
		if hit {
			s.met.IndexHits.Add(1)
		} else {
			s.met.OverlayReads.Add(1)
		}
		s.met.Reaches.Add(1)
		elapsed := time.Since(start)
		s.met.ObserveLatency(elapsed)
		s.finishTrace(tr, root, TraceEntry{
			Endpoint: "reach", Sources: []int32{src}, IndexHit: hit,
		}, elapsed)
		writeJSON(w, http.StatusOK, reachResponse{
			Src: src, Dst: dst, Reachable: reachable, IndexHit: hit,
			Overlay: !hit, Seq: seq,
			ElapsedMS: float64(elapsed) / float64(time.Millisecond),
		})
		return
	}
	if s.idx != nil && !s.idx.Stale() {
		if src < 1 || src > int32(s.db.N()) {
			s.fail(w, badRequest("source node %d outside 1..%d", src, s.db.N()))
			return
		}
		if dst < 1 || dst > int32(s.db.N()) {
			s.fail(w, badRequest("destination node %d outside 1..%d", dst, s.db.N()))
			return
		}
		probe := root.Child("index-probe")
		reachable := s.idx.Reach(src, dst)
		probe.Annotate(obsv.KV("reachable", reachable))
		probe.Finish()
		s.met.IndexHits.Add(1)
		s.met.Reaches.Add(1)
		elapsed := time.Since(start)
		s.met.ObserveLatency(elapsed)
		s.finishTrace(tr, root, TraceEntry{
			Endpoint: "reach", Sources: []int32{src}, IndexHit: true,
		}, elapsed)
		writeJSON(w, http.StatusOK, reachResponse{
			Src: src, Dst: dst, Reachable: reachable, IndexHit: true,
			ElapsedMS: float64(elapsed) / float64(time.Millisecond),
		})
		return
	}
	s.met.EngineFallbacks.Add(1)
	req, err := s.buildRequest(string(core.SRCH), []int32{src}, queryRequest{})
	if err != nil {
		s.fail(w, err)
		return
	}
	if dst < 1 || dst > int32(s.db.N()) {
		s.fail(w, badRequest("destination node %d outside 1..%d", dst, s.db.N()))
		return
	}
	var entry TraceEntry
	if tr != nil {
		req.Cfg.Trace = root
		entry = TraceEntry{
			Endpoint:  "reach",
			Algorithm: string(core.SRCH),
			Sources:   []int32{src},
			Replay:    replayCommand(s.opts.ReplayArgs, req),
		}
	}
	ctx, cancel := s.requestContext(r, atoiDefault(r.URL.Query().Get("timeout_ms"), 0))
	defer cancel()
	res, hit, shared, err := s.execute(ctx, req)
	if err != nil {
		entry.Error = err.Error()
		s.finishTrace(tr, root, entry, time.Since(start))
		s.fail(w, err)
		return
	}
	s.met.Reaches.Add(1)
	elapsed := time.Since(start)
	s.met.ObserveLatency(elapsed)
	reachable := false
	for _, v := range res.Successors[src] {
		if v == dst {
			reachable = true
			break
		}
	}
	var io int64
	if !hit {
		io = res.Metrics.TotalIO()
	}
	entry.Cached, entry.Deduplicated = hit, shared
	root.Annotate(obsv.KV("reachable", reachable), obsv.KV("cached", hit))
	s.finishTrace(tr, root, entry, elapsed)
	writeJSON(w, http.StatusOK, reachResponse{
		Src: src, Dst: dst, Reachable: reachable, Cached: hit,
		ElapsedMS: float64(elapsed) / float64(time.Millisecond), PageIO: io,
	})
}

// arcResponse is the reply of POST /v1/arc: where the batch landed in the
// mutation log and what it did to the index.
type arcResponse struct {
	Seq         int64   `json:"seq"`
	Applied     int     `json:"applied"`
	Noops       int     `json:"noops"`
	Merged      int     `json:"merged_components,omitempty"`
	Rebuilding  bool    `json:"rebuilding"`
	Generation  int64   `json:"generation"`
	Pending     int     `json:"pending"`
	Fingerprint string  `json:"fingerprint"`
	ElapsedMS   float64 `json:"elapsed_ms"`
}

// maxArcBody bounds a mutation-batch request body. Batches are also capped
// in op count by the dynamic service; this guards the decoder itself.
const maxArcBody = 1 << 20

// handleArc applies one mutation batch — inserts and deletes of arcs —
// against the dynamic graph service. The whole batch is validated before
// any op applies, takes one sequence number, and the response carries the
// post-batch fingerprint so a router can verify replica convergence.
func (s *Server) handleArc(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	s.met.InFlight.Add(1)
	defer s.met.InFlight.Add(-1)
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxArcBody))
	if err != nil {
		s.fail(w, badRequest("read mutation batch: %v", err))
		return
	}
	batch, err := dynamic.ParseBatch(body, s.dyn.N(), s.dyn.MaxBatchOps())
	if err != nil {
		s.fail(w, badRequest("%v", err))
		return
	}
	var tr *obsv.Tracer
	var root *obsv.Span
	if s.tracing() {
		tr = obsv.NewTracer()
		root = tr.Start("arc", obsv.KV("ops", len(batch.Ops)))
	}
	apply := root.Child("apply")
	res, err := s.dyn.Apply(batch.Ops)
	apply.Finish()
	if err != nil {
		s.finishTrace(tr, root, TraceEntry{Endpoint: "arc", Error: err.Error()}, time.Since(start))
		s.fail(w, err)
		return
	}
	s.met.ArcWrites.Add(1)
	s.met.MutationsApplied.Add(int64(res.Applied))
	elapsed := time.Since(start)
	s.met.ObserveLatency(elapsed)
	root.Annotate(obsv.KV("seq", res.Seq), obsv.KV("applied", res.Applied))
	s.finishTrace(tr, root, TraceEntry{Endpoint: "arc"}, elapsed)
	writeJSON(w, http.StatusOK, arcResponse{
		Seq:         res.Seq,
		Applied:     res.Applied,
		Noops:       res.Noops,
		Merged:      res.Merged,
		Rebuilding:  res.Dirty,
		Generation:  res.Generation,
		Pending:     res.Pending,
		Fingerprint: fmt.Sprintf("%016x", res.Fingerprint),
		ElapsedMS:   float64(elapsed) / float64(time.Millisecond),
	})
}

// planResponse is the reply of GET /v1/plan.
type planResponse struct {
	Profile   planProfile    `json:"profile"`
	Sources   int            `json:"sources"`
	BufferM   int            `json:"buffer_pages"`
	Estimates []planEstimate `json:"estimates"` // cheapest first
}

type planProfile struct {
	Nodes     int     `json:"nodes"`
	Arcs      int     `json:"arcs"`
	H         float64 `json:"h"`
	W         float64 `json:"w"`
	AvgDegree float64 `json:"avg_degree"`
	Reach     float64 `json:"reach"`
	CondNodes int     `json:"cond_nodes"`
	CondArcs  int     `json:"cond_arcs"`
	Density   float64 `json:"cond_density"`
}

type planEstimate struct {
	Algorithm string  `json:"algorithm"`
	IO        float64 `json:"io"`
	Why       string  `json:"why"`
}

// handlePlan ranks the algorithms for the loaded graph. The statistical
// profile (one DFS plus sampled reachability probes) is built on first use
// and reused for the server's lifetime — the graph is immutable.
func (s *Server) handlePlan(w http.ResponseWriter, r *http.Request) {
	s.planOnce.Do(func() {
		arcs, err := s.db.Arcs()
		if err != nil {
			s.planErr = err
			return
		}
		s.profile, s.planErr = planner.BuildProfile(graph.New(s.db.N(), arcs), 16, 1)
	})
	if s.planErr != nil {
		s.fail(w, fmt.Errorf("planner profile: %w", s.planErr))
		return
	}
	numSources := atoiDefault(r.URL.Query().Get("sources"), 1)
	if numSources < 0 {
		numSources = 0
	}
	m := atoiDefault(r.URL.Query().Get("m"), s.opts.DefaultConfig.BufferPages)
	ests := planner.Estimates(s.profile, numSources, m)
	resp := planResponse{
		Profile: planProfile{
			Nodes: s.profile.N, Arcs: s.profile.Arcs,
			H: s.profile.H, W: s.profile.W,
			AvgDegree: s.profile.AvgDegree, Reach: s.profile.Reach,
			CondNodes: s.profile.CondNodes, CondArcs: s.profile.CondArcs,
			Density: s.profile.Density,
		},
		Sources: numSources,
		BufferM: m,
	}
	for _, e := range ests {
		resp.Estimates = append(resp.Estimates, planEstimate{Algorithm: string(e.Alg), IO: e.IO, Why: e.Why})
	}
	s.met.Plans.Add(1)
	writeJSON(w, http.StatusOK, resp)
}

// handleHealthz reports liveness plus the dataset identity a routing tier
// needs to decide whether this replica may join a fleet: the graph's
// CRC-64 fingerprint and, when a reachability index is loaded, its shape
// and generation. Replicas answering with different fingerprints serve
// different graphs and must not share a consistent-hash ring.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.fpOnce.Do(func() { s.fp, s.fpErr = s.db.Fingerprint() })
	if s.fpErr != nil {
		writeJSON(w, http.StatusInternalServerError, map[string]any{
			"status": "degraded",
			"error":  fmt.Sprintf("dataset fingerprint: %v", s.fpErr),
		})
		return
	}
	resp := map[string]any{
		"status":         "ok",
		"nodes":          s.db.N(),
		"arcs":           s.db.NumArcs(),
		"fingerprint":    fmt.Sprintf("%016x", s.fp),
		"uptime_seconds": time.Since(s.met.start).Seconds(),
	}
	if s.dyn != nil {
		// The dynamic service owns the live graph: its fingerprint and arc
		// count supersede the frozen base relation's, so a routing tier
		// comparing fleets sees the mutated dataset identity.
		st := s.dyn.Stats()
		cur := s.dyn.Index()
		resp["arcs"] = st.NumArcs
		resp["fingerprint"] = fmt.Sprintf("%016x", st.Fingerprint)
		resp["index"] = map[string]any{
			"nodes":      cur.N(),
			"arcs":       cur.NumArcs(),
			"stale":      st.Dirty || cur.Stale(),
			"generation": st.Generation,
			"chains":     cur.Chains(),
			"builder":    cur.Builder(),
		}
		resp["dynamic"] = map[string]any{
			"seq":        st.Seq,
			"generation": st.Generation,
			"pending":    st.Pending,
			"rebuilding": st.Dirty,
			"rebuilds":   st.Rebuilds,
			"mutations":  st.Mutations,
		}
	} else if s.idx != nil {
		resp["index"] = map[string]any{
			"nodes":      s.idx.N(),
			"arcs":       s.idx.NumArcs(),
			"stale":      s.idx.Stale(),
			"generation": s.idx.Generation(),
			"chains":     s.idx.Chains(),
			"builder":    s.idx.Builder(),
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleMetrics serves the live counters. The default is Prometheus text
// exposition format (what a scraper expects at /metrics); the original
// JSON snapshot remains available as /metrics?format=json.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.URL.Query().Get("format") == "json" {
		writeJSON(w, http.StatusOK, s.met.Snapshot())
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_, _ = w.Write([]byte(s.met.Prometheus(s.disp.QueueDepth(), s.disp.QueueCap(), s.indexState())))
}

// indexState summarizes the serving index for the metrics exposition: the
// dynamic service when present (live generation, pending log, merge and
// rebuild counters), the static index otherwise.
func (s *Server) indexState() IndexState {
	if s.dyn != nil {
		st := s.dyn.Stats()
		return IndexState{
			Present:    true,
			Dynamic:    true,
			Stale:      st.Dirty || s.dyn.Index().Stale(),
			Generation: st.Generation,
			Seq:        st.Seq,
			Pending:    st.Pending,
			Mutations:  st.Mutations,
			Merges:     st.Merges,
			Rebuilds:   st.Rebuilds,
		}
	}
	if s.idx != nil {
		return IndexState{
			Present:    true,
			Stale:      s.idx.Stale(),
			Generation: int64(s.idx.Generation()),
		}
	}
	return IndexState{}
}

// handleTraces serves the recent-request trace ring, newest first. With
// tracing disabled (TraceBuffer 0) it reports the feature as off rather
// than an empty list, so a probe can tell "no traffic" from "not
// recording".
func (s *Server) handleTraces(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"enabled": s.traces.enabled(),
		"traces":  s.traces.snapshot(),
	})
}

func parseNode(v string) (int32, error) {
	n, err := strconv.ParseInt(v, 10, 32)
	if err != nil {
		return 0, err
	}
	return int32(n), nil
}

func atoiDefault(v string, def int) int {
	if v == "" {
		return def
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		return def
	}
	return n
}
