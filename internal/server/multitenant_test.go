package server

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"tcstudy/internal/core"
	"tcstudy/internal/graphgen"
	"tcstudy/internal/obsv"
	"tcstudy/internal/planner"
)

// twoTenantDBs builds two graphs with opposite shapes — "wide" is a sparse
// low-degree DAG, "deep" a local high-degree one — so the tenants are
// distinguishable in every observable surface.
func twoTenantDBs(t *testing.T) (*core.Database, *core.Database) {
	t.Helper()
	wideArcs, err := graphgen.Generate(graphgen.Params{Nodes: 300, OutDegree: 2, Locality: 300, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	deepArcs, err := graphgen.Generate(graphgen.Params{Nodes: 200, OutDegree: 6, Locality: 20, Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	return core.NewDatabase(300, wideArcs), core.NewDatabase(200, deepArcs)
}

// newTwoTenantServer serves wide+deep from one process; wide is the
// default tenant.
func newTwoTenantServer(t *testing.T, opts Options) (*Server, *httptest.Server) {
	t.Helper()
	wide, deep := twoTenantDBs(t)
	s, err := NewMulti([]NamedGraph{
		{Name: "wide", DB: wide},
		{Name: "deep", DB: deep},
	}, opts)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

// TestMultiTenantDifferential pins the core multi-tenancy guarantee: two
// named graphs behind one server answer exactly like two single-graph
// processes, for both tenant-selection surfaces (graph= parameter and the
// body field).
func TestMultiTenantDifferential(t *testing.T) {
	_, multi := newTwoTenantServer(t, Options{})
	wide, deep := twoTenantDBs(t)
	soloWide := httptest.NewServer(New(wide, Options{}))
	defer soloWide.Close()
	soloDeep := httptest.NewServer(New(deep, Options{}))
	defer soloDeep.Close()

	check := func(tenant, solo string, body map[string]any) {
		t.Helper()
		mb := map[string]any{"graph": tenant}
		for k, v := range body {
			mb[k] = v
		}
		respM, qm := postQuery(t, multi.URL, mb)
		respS, qs := postQuery(t, solo, body)
		if respM.StatusCode != http.StatusOK || respS.StatusCode != http.StatusOK {
			t.Fatalf("tenant %s: multi status %d, solo status %d", tenant, respM.StatusCode, respS.StatusCode)
		}
		if qm.Graph != tenant {
			t.Fatalf("multi response names graph %q, want %q", qm.Graph, tenant)
		}
		if qm.Metrics.TotalIO != qs.Metrics.TotalIO {
			t.Fatalf("tenant %s: multi I/O %d != solo %d", tenant, qm.Metrics.TotalIO, qs.Metrics.TotalIO)
		}
		if qm.Metrics.DistinctTuples != qs.Metrics.DistinctTuples {
			t.Fatalf("tenant %s: multi tuples %d != solo %d", tenant, qm.Metrics.DistinctTuples, qs.Metrics.DistinctTuples)
		}
		for node, n := range qs.SuccessorCounts {
			if qm.SuccessorCounts[node] != n {
				t.Fatalf("tenant %s: successor count of %d: multi %d != solo %d",
					tenant, node, qm.SuccessorCounts[node], n)
			}
		}
	}
	for _, alg := range []string{"btc", "seminaive"} {
		check("wide", soloWide.URL, map[string]any{"algorithm": alg, "sources": []int32{3, 40, 120}})
		check("deep", soloDeep.URL, map[string]any{"algorithm": alg, "sources": []int32{3, 40, 120}})
	}

	// graph= parameter surface, via /v1/reach (identical answers).
	var rm, rs reachResponse
	if st := getJSON(t, multi.URL+"/v1/reach?graph=deep&src=3&dst=50", &rm); st != http.StatusOK {
		t.Fatalf("multi reach status %d", st)
	}
	if st := getJSON(t, soloDeep.URL+"/v1/reach?src=3&dst=50", &rs); st != http.StatusOK {
		t.Fatalf("solo reach status %d", st)
	}
	if rm.Reachable != rs.Reachable {
		t.Fatalf("reach differs: multi %t, solo %t", rm.Reachable, rs.Reachable)
	}
	if rm.Graph != "deep" {
		t.Fatalf("reach response names graph %q, want deep", rm.Graph)
	}

	// Unknown tenants are client errors naming the served graphs.
	resp, _ := postQuery(t, multi.URL, map[string]any{"algorithm": "btc", "graph": "nope"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown graph returned %d, want 400", resp.StatusCode)
	}
}

// TestTenantCacheQuota pins that result caches are per-tenant quotas: one
// tenant churning through distinct queries cannot evict another tenant's
// warm entry.
func TestTenantCacheQuota(t *testing.T) {
	s, ts := newTwoTenantServer(t, Options{CacheEntries: 4})

	// Warm one deep-tenant entry.
	warm := map[string]any{"algorithm": "srch", "sources": []int32{5}, "graph": "deep"}
	if resp, qr := postQuery(t, ts.URL, warm); resp.StatusCode != http.StatusOK || qr.Cached {
		t.Fatalf("warmup: status %d cached %t", resp.StatusCode, qr.Cached)
	}
	// Blow well past the quota with distinct wide-tenant queries.
	for i := 1; i <= 12; i++ {
		body := map[string]any{"algorithm": "srch", "sources": []int32{int32(i)}, "graph": "wide"}
		if resp, _ := postQuery(t, ts.URL, body); resp.StatusCode != http.StatusOK {
			t.Fatalf("wide query %d: status %d", i, resp.StatusCode)
		}
	}
	if got := s.tenants["wide"].cache.Len(); got > 4 {
		t.Fatalf("wide cache holds %d entries, quota is 4", got)
	}
	// The deep tenant's entry must still be warm.
	resp, qr := postQuery(t, ts.URL, warm)
	if resp.StatusCode != http.StatusOK || !qr.Cached {
		t.Fatalf("deep tenant's entry evicted by wide tenant's churn: status %d cached %t",
			resp.StatusCode, qr.Cached)
	}
}

// TestTenantPlannerIsolation pins that observation stores are per tenant:
// tenant A's observations never alter tenant B's plan.
func TestTenantPlannerIsolation(t *testing.T) {
	s, ts := newTwoTenantServer(t, Options{})

	var before planResponse
	if st := getJSON(t, ts.URL+"/v1/plan?graph=deep&sources=1", &before); st != http.StatusOK {
		t.Fatalf("plan status %d", st)
	}
	if before.Mode != "adaptive" {
		t.Fatalf("plan mode %q, want adaptive", before.Mode)
	}

	// Flood the wide tenant's store with direct observations biased toward
	// the statically worst candidate (far stronger than any real workload
	// could be).
	wideTn := s.tenants["wide"]
	prof, err := wideTn.ensureProfile()
	if err != nil {
		t.Fatal(err)
	}
	ests := planner.Estimates(prof, 1, s.opts.DefaultConfig.BufferPages)
	underdog := ests[len(ests)-1].Alg
	for i := 0; i < 50; i++ {
		for _, e := range ests {
			if e.Alg == underdog {
				wideTn.adapt.Observe(prof, 1, s.opts.DefaultConfig.BufferPages, e.Alg, 1, 1)
			} else {
				wideTn.adapt.Observe(prof, 1, s.opts.DefaultConfig.BufferPages, e.Alg, 1e9, 100000)
			}
		}
	}
	var widePlan planResponse
	if st := getJSON(t, ts.URL+"/v1/plan?graph=wide&sources=1", &widePlan); st != http.StatusOK {
		t.Fatalf("wide plan status %d", st)
	}
	if widePlan.Estimates[0].Algorithm != string(underdog) {
		t.Fatalf("wide tenant's observations did not move its own plan (got %s, want %s)",
			widePlan.Estimates[0].Algorithm, underdog)
	}

	// The deep tenant's plan must be byte-for-byte unchanged.
	var after planResponse
	if st := getJSON(t, ts.URL+"/v1/plan?graph=deep&sources=1", &after); st != http.StatusOK {
		t.Fatalf("plan status %d", st)
	}
	if len(after.Estimates) != len(before.Estimates) {
		t.Fatalf("deep plan length changed: %d -> %d", len(before.Estimates), len(after.Estimates))
	}
	for i := range after.Estimates {
		if after.Estimates[i] != before.Estimates[i] {
			t.Fatalf("tenant A's observations leaked into tenant B's plan at rank %d:\nbefore %+v\nafter  %+v",
				i, before.Estimates[i], after.Estimates[i])
		}
	}
}

// TestTwoTenantServing is the CI smoke: query both graphs through one
// server and assert the tenant-labeled metric families and the planner
// hit-rate-backing counters appear in the /metrics scrape.
func TestTwoTenantServing(t *testing.T) {
	_, ts := newTwoTenantServer(t, Options{})

	for _, tenant := range []string{"wide", "deep"} {
		body := map[string]any{"algorithm": "btc", "sources": []int32{3, 9}, "graph": tenant}
		if resp, qr := postQuery(t, ts.URL, body); resp.StatusCode != http.StatusOK || qr.Graph != tenant {
			t.Fatalf("tenant %s: status %d graph %q", tenant, resp.StatusCode, qr.Graph)
		}
		var plan planResponse
		if st := getJSON(t, ts.URL+"/v1/plan?graph="+tenant, &plan); st != http.StatusOK {
			t.Fatalf("tenant %s: plan status %d", tenant, st)
		}
		if plan.Planner == nil || plan.Planner.Observations == 0 {
			t.Fatalf("tenant %s: planner saw no observations after an executed query: %+v",
				tenant, plan.Planner)
		}
	}

	// Health reports both tenants with distinct fingerprints.
	var hz struct {
		Graphs map[string]struct {
			Nodes       int    `json:"nodes"`
			Fingerprint string `json:"fingerprint"`
		} `json:"graphs"`
	}
	if st := getJSON(t, ts.URL+"/healthz", &hz); st != http.StatusOK {
		t.Fatalf("healthz status %d", st)
	}
	if len(hz.Graphs) != 2 || hz.Graphs["wide"].Nodes != 300 || hz.Graphs["deep"].Nodes != 200 {
		t.Fatalf("healthz graphs block wrong: %+v", hz.Graphs)
	}
	if hz.Graphs["wide"].Fingerprint == hz.Graphs["deep"].Fingerprint {
		t.Fatal("distinct graphs report identical fingerprints")
	}

	text, fams := scrape(t, ts.URL)
	for _, fam := range []string{
		"tc_tenant_requests_total", "tc_tenant_cache_hits_total",
		"tc_tenant_cache_misses_total", "tc_tenant_rejected_total",
		"tc_tenant_pages_served_total", "tc_tenant_cache_entries",
		"tc_tenant_cache_capacity", "tc_tenant_queue_depth",
		"tc_planner_decisions_total", "tc_planner_hits_total",
		"tc_planner_explorations_total", "tc_planner_observations_total",
		"tc_planner_hit_rate",
	} {
		if fams[fam] == nil {
			t.Errorf("family %s missing from two-tenant scrape", fam)
		}
	}
	for _, tenant := range []string{"wide", "deep"} {
		label := fmt.Sprintf("tenant=%q", tenant)
		if !strings.Contains(text, label) {
			t.Errorf("no sample labeled %s in scrape:\n%s", label, text)
		}
		found := false
		for _, smp := range fams["tc_planner_observations_total"].Samples {
			if strings.Contains(smp.Labels, label) && smp.Value > 0 {
				found = true
			}
		}
		if !found {
			t.Errorf("tc_planner_observations_total{%s} did not advance", label)
		}
	}
	if v, ok := obsv.CounterValue(fams, "tc_planner_decisions_total"); !ok || v == 0 {
		t.Errorf("tc_planner_decisions_total = %v (ok=%t), want > 0", v, ok)
	}
}

// TestPlanZeroArcGraph is the /v1/plan regression for an empty relation: a
// ranked list with zero-work estimates and a well-formed profile, no NaN.
func TestPlanZeroArcGraph(t *testing.T) {
	db := core.NewDatabase(50, nil)
	s := New(db, Options{})
	ts := httptest.NewServer(s)
	defer func() { ts.Close(); s.Close() }()

	for _, mode := range []string{"", "&mode=static"} {
		var plan planResponse
		if st := getJSON(t, ts.URL+"/v1/plan?sources=1"+mode, &plan); st != http.StatusOK {
			t.Fatalf("plan status %d (mode %q)", st, mode)
		}
		if plan.Profile.Nodes != 50 || plan.Profile.Arcs != 0 {
			t.Fatalf("profile wrong: %+v", plan.Profile)
		}
		if len(plan.Estimates) == 0 {
			t.Fatal("zero-arc graph produced no ranked estimates")
		}
		for _, e := range plan.Estimates {
			if e.IO != 0 {
				t.Fatalf("zero-arc estimate for %s is %v, want 0 (mode %q)", e.Algorithm, e.IO, mode)
			}
			if e.Why == "" {
				t.Fatalf("zero-arc estimate for %s carries no rationale", e.Algorithm)
			}
		}
	}
}

// TestPlanStaticModeMatchesAdaptiveCold pins the /v1/plan contract end to
// end: with a cold observation store the adaptive ranking is identical to
// ?mode=static (same algorithms, same order, blended == static estimate).
func TestPlanStaticModeMatchesAdaptiveCold(t *testing.T) {
	_, ts, _ := newTestServer(t, 300, Options{})
	var static, adaptive planResponse
	if st := getJSON(t, ts.URL+"/v1/plan?sources=2&mode=static", &static); st != http.StatusOK {
		t.Fatalf("static plan status %d", st)
	}
	if st := getJSON(t, ts.URL+"/v1/plan?sources=2", &adaptive); st != http.StatusOK {
		t.Fatalf("adaptive plan status %d", st)
	}
	if static.Mode != "static" || adaptive.Mode != "adaptive" {
		t.Fatalf("modes: static=%q adaptive=%q", static.Mode, adaptive.Mode)
	}
	if len(static.Estimates) != len(adaptive.Estimates) {
		t.Fatalf("estimate counts differ: %d vs %d", len(static.Estimates), len(adaptive.Estimates))
	}
	for i := range static.Estimates {
		se, ae := static.Estimates[i], adaptive.Estimates[i]
		if se.Algorithm != ae.Algorithm || se.IO != ae.IO {
			t.Fatalf("rank %d differs cold: static %+v adaptive %+v", i, se, ae)
		}
		if ae.BlendedIO != ae.IO {
			t.Fatalf("cold blended score %v != static estimate %v for %s", ae.BlendedIO, ae.IO, ae.Algorithm)
		}
	}
	if adaptive.Planner == nil {
		t.Fatal("adaptive plan carries no planner stats block")
	}
}
