package server

import (
	"context"
	"errors"
	"sync"

	"tcstudy/internal/core"
)

// Admission control. The engine's unit of safe concurrency is the
// core.RunConcurrent batch: queries of one batch run in parallel over the
// shared database, and each request's temporary files are released the
// moment that request finishes (tracked per owner, so a long-running
// straggler no longer pins the whole batch's temp storage). The
// dispatcher serves
// continuous traffic as a sequence of batches: it blocks for the next
// queued job, tops the batch up to the worker limit without waiting, runs
// the batch, and repeats. The queue in front of the batch loop is bounded;
// a submission finding it full is rejected immediately (HTTP 429), which
// caps both memory and worst-case queueing delay under overload.

// ErrSaturated is returned by Submit when the admission queue is full.
var ErrSaturated = errors.New("server: admission queue full")

// ErrClosed is returned by Submit after the dispatcher has been closed.
var ErrClosed = errors.New("server: dispatcher closed")

// job is one admitted query waiting for a batch slot.
type job struct {
	req  core.Request
	ctx  context.Context
	done chan core.Response // buffered; the batch loop never blocks on it
}

// dispatcher is the bounded worker-pool admission controller.
type dispatcher struct {
	exec    func([]core.Request) []core.Response
	queue   chan *job
	workers int // max queries per batch, i.e. peak engine concurrency
	stop    chan struct{}
	done    chan struct{}
	closing sync.Once

	// mu serializes admission against Close: once closed is set no job can
	// enter the queue, so the shutdown drain cannot strand a submitter.
	mu     sync.Mutex
	closed bool
}

// QueueDepth is the number of jobs currently waiting in the admission
// queue (not counting jobs already placed in a running batch).
func (d *dispatcher) QueueDepth() int { return len(d.queue) }

// QueueCap is the admission queue's capacity.
func (d *dispatcher) QueueCap() int { return cap(d.queue) }

// newDispatcher builds a dispatcher executing batches with
// core.RunConcurrent over db.
func newDispatcher(db *core.Database, workers, queueDepth int) *dispatcher {
	return newDispatcherFunc(func(reqs []core.Request) []core.Response {
		return core.RunConcurrent(db, reqs)
	}, workers, queueDepth)
}

// newDispatcherFunc allows tests to substitute the batch executor.
func newDispatcherFunc(exec func([]core.Request) []core.Response, workers, queueDepth int) *dispatcher {
	if workers < 1 {
		workers = 1
	}
	if queueDepth < 1 {
		queueDepth = 1
	}
	d := &dispatcher{
		exec:    exec,
		queue:   make(chan *job, queueDepth),
		workers: workers,
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
	}
	go d.loop()
	return d
}

// Submit admits one query and blocks until its result is ready, the
// context expires, or the queue rejects it. A query whose submitter times
// out may still execute (the engine's runs are not interruptible); its
// result then lands in the cache for the retry.
func (d *dispatcher) Submit(ctx context.Context, req core.Request) (*core.Result, error) {
	j := &job{req: req, ctx: ctx, done: make(chan core.Response, 1)}
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return nil, ErrClosed
	}
	select {
	case d.queue <- j:
		d.mu.Unlock()
	default:
		d.mu.Unlock()
		return nil, ErrSaturated
	}
	select {
	case resp := <-j.done:
		return resp.Result, resp.Err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// Close stops admission and waits for every already-queued job to finish:
// the shutdown drain.
func (d *dispatcher) Close() {
	d.closing.Do(func() {
		d.mu.Lock()
		d.closed = true
		d.mu.Unlock()
		close(d.stop)
	})
	<-d.done
}

func (d *dispatcher) loop() {
	defer close(d.done)
	for {
		first, ok := d.next()
		if !ok {
			return
		}
		batch := []*job{first}
	fill:
		for len(batch) < d.workers {
			select {
			case j := <-d.queue:
				batch = append(batch, j)
			default:
				break fill
			}
		}
		d.run(batch)
	}
}

// next blocks for the next job. After Close it keeps draining whatever is
// already queued and reports ok=false only once the queue is empty.
func (d *dispatcher) next() (*job, bool) {
	select {
	case j := <-d.queue:
		return j, true
	default:
	}
	select {
	case j := <-d.queue:
		return j, true
	case <-d.stop:
		select {
		case j := <-d.queue:
			return j, true
		default:
			return nil, false
		}
	}
}

// run executes one batch. Jobs whose context expired while queued are
// answered without touching the engine.
func (d *dispatcher) run(batch []*job) {
	live := batch[:0]
	for _, j := range batch {
		if err := j.ctx.Err(); err != nil {
			j.done <- core.Response{Err: err}
			continue
		}
		live = append(live, j)
	}
	if len(live) == 0 {
		return
	}
	reqs := make([]core.Request, len(live))
	for i, j := range live {
		reqs[i] = j.req
	}
	resps := d.exec(reqs)
	for i, j := range live {
		j.done <- resps[i]
	}
}
