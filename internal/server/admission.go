package server

import (
	"context"
	"errors"
	"sync"

	"tcstudy/internal/core"
)

// Admission control. The engine's unit of safe concurrency is the
// core.RunConcurrent batch: queries of one batch run in parallel over one
// shared database, and each request's temporary files are released the
// moment that request finishes. The dispatcher serves continuous traffic
// as a sequence of batches drawn from per-tenant FIFO queues: it picks the
// next tenant with waiting jobs in round-robin order, fills one batch from
// that tenant's queue up to the worker limit (a batch never mixes tenants
// — it runs over a single database), runs it, and repeats. Round-robin
// across tenants is the fairness guarantee multi-graph serving needs: a
// tenant flooding its queue delays only its own jobs, never another
// tenant's turn.
//
// Each tenant's queue is bounded separately; a submission finding its
// tenant's queue full is rejected immediately (HTTP 429), which caps both
// memory and worst-case queueing delay per tenant — one tenant's overload
// cannot consume another tenant's admission quota.

// ErrSaturated is returned by Submit when the tenant's admission queue is
// full.
var ErrSaturated = errors.New("server: admission queue full")

// ErrClosed is returned by Submit after the dispatcher has been closed.
var ErrClosed = errors.New("server: dispatcher closed")

// job is one admitted query waiting for a batch slot.
type job struct {
	req  core.Request
	db   *core.Database
	ctx  context.Context
	done chan core.Response // buffered; the batch loop never blocks on it
}

// dispatcher is the bounded worker-pool admission controller.
type dispatcher struct {
	exec    func(db *core.Database, reqs []core.Request) []core.Response
	workers int // max queries per batch, i.e. peak engine concurrency
	depth   int // per-tenant queue bound
	done    chan struct{}
	closing sync.Once

	mu     sync.Mutex
	cond   *sync.Cond
	queues map[string][]*job
	order  []string // round-robin order over tenants
	rr     int      // next tenant index to consider
	queued int      // total jobs across all queues
	closed bool
}

// QueueDepth is the number of jobs currently waiting across all tenant
// queues (not counting jobs already placed in a running batch).
func (d *dispatcher) QueueDepth() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.queued
}

// TenantQueueDepth is the number of jobs waiting in one tenant's queue.
func (d *dispatcher) TenantQueueDepth(tenant string) int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.queues[tenant])
}

// QueueCap is the per-tenant admission queue capacity.
func (d *dispatcher) QueueCap() int { return d.depth }

// defaultTenant is the queue name single-graph servers submit to.
const defaultTenant = "default"

// newDispatcher builds a dispatcher executing batches with
// core.RunConcurrent, with one bounded queue per tenant name.
func newDispatcher(tenants []string, workers, queueDepth int) *dispatcher {
	return newDispatcherMulti(func(db *core.Database, reqs []core.Request) []core.Response {
		return core.RunConcurrent(db, reqs)
	}, tenants, workers, queueDepth)
}

// newDispatcherFunc allows tests to substitute the batch executor; it
// serves the single default tenant.
func newDispatcherFunc(exec func([]core.Request) []core.Response, workers, queueDepth int) *dispatcher {
	return newDispatcherMulti(func(_ *core.Database, reqs []core.Request) []core.Response {
		return exec(reqs)
	}, []string{defaultTenant}, workers, queueDepth)
}

func newDispatcherMulti(exec func(*core.Database, []core.Request) []core.Response, tenants []string, workers, queueDepth int) *dispatcher {
	if workers < 1 {
		workers = 1
	}
	if queueDepth < 1 {
		queueDepth = 1
	}
	d := &dispatcher{
		exec:    exec,
		workers: workers,
		depth:   queueDepth,
		done:    make(chan struct{}),
		queues:  make(map[string][]*job, len(tenants)),
		order:   append([]string(nil), tenants...),
	}
	d.cond = sync.NewCond(&d.mu)
	for _, t := range tenants {
		d.queues[t] = nil
	}
	go d.loop()
	return d
}

// Submit admits one query for the default tenant. See SubmitTenant.
func (d *dispatcher) Submit(ctx context.Context, req core.Request) (*core.Result, error) {
	return d.SubmitTenant(ctx, defaultTenant, nil, req)
}

// SubmitTenant admits one query into the named tenant's queue and blocks
// until its result is ready, the context expires, or the queue rejects it.
// A query whose submitter times out may still execute (the engine's runs
// are not interruptible); its result then lands in the cache for the
// retry.
func (d *dispatcher) SubmitTenant(ctx context.Context, tenant string, db *core.Database, req core.Request) (*core.Result, error) {
	j := &job{req: req, db: db, ctx: ctx, done: make(chan core.Response, 1)}
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return nil, ErrClosed
	}
	q, ok := d.queues[tenant]
	if !ok {
		d.mu.Unlock()
		return nil, errors.New("server: unknown tenant queue " + tenant)
	}
	if len(q) >= d.depth {
		d.mu.Unlock()
		return nil, ErrSaturated
	}
	d.queues[tenant] = append(q, j)
	d.queued++
	d.cond.Signal()
	d.mu.Unlock()
	select {
	case resp := <-j.done:
		return resp.Result, resp.Err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// Close stops admission and waits for every already-queued job to finish:
// the shutdown drain.
func (d *dispatcher) Close() {
	d.closing.Do(func() {
		d.mu.Lock()
		d.closed = true
		d.cond.Broadcast()
		d.mu.Unlock()
	})
	<-d.done
}

func (d *dispatcher) loop() {
	defer close(d.done)
	for {
		batch := d.nextBatch()
		if batch == nil {
			return
		}
		d.run(batch)
	}
}

// nextBatch blocks until some tenant has queued jobs, then takes up to the
// worker limit from the next non-empty tenant queue in round-robin order.
// After Close it keeps draining whatever is already queued and returns nil
// only once every queue is empty.
func (d *dispatcher) nextBatch() []*job {
	d.mu.Lock()
	defer d.mu.Unlock()
	for {
		for i := 0; i < len(d.order); i++ {
			name := d.order[(d.rr+i)%len(d.order)]
			q := d.queues[name]
			if len(q) == 0 {
				continue
			}
			n := len(q)
			if n > d.workers {
				n = d.workers
			}
			batch := append([]*job(nil), q[:n]...)
			d.queues[name] = q[:copy(q, q[n:])]
			d.queued -= n
			d.rr = (d.rr + i + 1) % len(d.order)
			return batch
		}
		if d.closed {
			return nil
		}
		d.cond.Wait()
	}
}

// run executes one batch. Jobs whose context expired while queued are
// answered without touching the engine. All jobs of a batch belong to one
// tenant and therefore share one database.
func (d *dispatcher) run(batch []*job) {
	live := batch[:0]
	for _, j := range batch {
		if err := j.ctx.Err(); err != nil {
			j.done <- core.Response{Err: err}
			continue
		}
		live = append(live, j)
	}
	if len(live) == 0 {
		return
	}
	reqs := make([]core.Request, len(live))
	for i, j := range live {
		reqs[i] = j.req
	}
	resps := d.exec(live[0].db, reqs)
	for i, j := range live {
		j.done <- resps[i]
	}
}
