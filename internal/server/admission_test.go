package server

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"tcstudy/internal/core"
)

// blockingExec is a controllable batch executor: each call signals started
// and waits for release, recording the batch it received.
type blockingExec struct {
	mu      sync.Mutex
	batches [][]core.Request
	started chan struct{}
	release chan struct{}
}

func newBlockingExec() *blockingExec {
	return &blockingExec{
		started: make(chan struct{}, 64),
		release: make(chan struct{}),
	}
}

func (b *blockingExec) exec(reqs []core.Request) []core.Response {
	b.mu.Lock()
	b.batches = append(b.batches, reqs)
	b.mu.Unlock()
	b.started <- struct{}{}
	<-b.release
	out := make([]core.Response, len(reqs))
	for i := range out {
		out[i] = core.Response{Result: &core.Result{}}
	}
	return out
}

func (b *blockingExec) batchSizes() []int {
	b.mu.Lock()
	defer b.mu.Unlock()
	var sizes []int
	for _, batch := range b.batches {
		sizes = append(sizes, len(batch))
	}
	return sizes
}

func TestDispatcherSaturation(t *testing.T) {
	ex := newBlockingExec()
	d := newDispatcherFunc(ex.exec, 1, 1)
	defer func() { close(ex.release); d.Close() }()

	results := make(chan error, 2)
	submit := func() {
		_, err := d.Submit(context.Background(), core.Request{Alg: core.SRCH})
		results <- err
	}
	// First job enters the (size-1) batch.
	go submit()
	<-ex.started
	// Second job sits in the (depth-1) queue while the batch blocks.
	go submit()
	waitQueue(t, d, 1)
	// Third submission finds the queue full: immediate rejection.
	if _, err := d.Submit(context.Background(), core.Request{Alg: core.SRCH}); !errors.Is(err, ErrSaturated) {
		t.Fatalf("full queue returned %v, want ErrSaturated", err)
	}
}

func TestDispatcherQueueTimeout(t *testing.T) {
	ex := newBlockingExec()
	d := newDispatcherFunc(ex.exec, 1, 4)
	defer func() { close(ex.release); d.Close() }()

	go d.Submit(context.Background(), core.Request{Alg: core.SRCH}) //nolint:errcheck
	<-ex.started

	// A queued job whose deadline expires is answered without execution.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	_, err := d.Submit(ctx, core.Request{Alg: core.BTC})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("queued job returned %v, want deadline exceeded", err)
	}
}

func TestDispatcherSkipsExpiredJobs(t *testing.T) {
	ex := newBlockingExec()
	d := newDispatcherFunc(ex.exec, 4, 8)

	// Block the loop with one live job.
	go d.Submit(context.Background(), core.Request{Alg: core.SRCH}) //nolint:errcheck
	<-ex.started

	// Queue one already-cancelled job and one live one.
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	go d.Submit(cancelled, core.Request{Alg: core.BTC}) //nolint:errcheck
	done := make(chan error, 1)
	go func() {
		_, err := d.Submit(context.Background(), core.Request{Alg: core.BJ})
		done <- err
	}()
	waitQueue(t, d, 2)

	// Release the first batch; the next batch must contain only the live
	// job — the cancelled one never reaches the engine.
	ex.release <- struct{}{}
	<-ex.started
	ex.release <- struct{}{}
	if err := <-done; err != nil {
		t.Fatalf("live job failed: %v", err)
	}
	close(ex.release)
	d.Close()
	for _, batch := range ex.batches {
		for _, req := range batch {
			if req.Alg == core.BTC {
				t.Fatal("cancelled job was dispatched to the engine")
			}
		}
	}
}

func TestDispatcherBatchesUpToWorkerLimit(t *testing.T) {
	ex := newBlockingExec()
	d := newDispatcherFunc(ex.exec, 3, 16)

	// Hold the loop in a first batch, then queue five more jobs.
	var wg sync.WaitGroup
	submit := func() {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := d.Submit(context.Background(), core.Request{Alg: core.SRCH}); err != nil {
				t.Errorf("submit: %v", err)
			}
		}()
	}
	submit()
	<-ex.started
	for i := 0; i < 5; i++ {
		submit()
	}
	waitQueue(t, d, 5)
	// Six jobs drain as batches of 1, 3 (the worker limit) and 2.
	ex.release <- struct{}{}
	<-ex.started
	ex.release <- struct{}{}
	<-ex.started
	ex.release <- struct{}{}
	wg.Wait()
	d.Close()
	total := 0
	for _, n := range ex.batchSizes() {
		if n > 3 {
			t.Fatalf("batch of %d exceeds worker limit 3", n)
		}
		total += n
	}
	if total != 6 {
		t.Fatalf("dispatched %d jobs, want 6", total)
	}
}

func TestDispatcherDrainsOnClose(t *testing.T) {
	ex := newBlockingExec()
	d := newDispatcherFunc(ex.exec, 2, 8)

	var wg sync.WaitGroup
	errs := make(chan error, 4)
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := d.Submit(context.Background(), core.Request{Alg: core.SRCH})
			errs <- err
		}()
	}
	// Wait until every job is either executing or queued, then close while
	// releasing batches: all four must complete.
	<-ex.started
	waitQueue(t, d, 2)
	go func() {
		for {
			select {
			case ex.release <- struct{}{}:
			case <-d.done:
				return
			}
		}
	}()
	d.Close()
	wg.Wait()
	for i := 0; i < 4; i++ {
		if err := <-errs; err != nil {
			t.Fatalf("queued job lost during drain: %v", err)
		}
	}
	// After close, admission refuses.
	if _, err := d.Submit(context.Background(), core.Request{Alg: core.SRCH}); !errors.Is(err, ErrClosed) {
		t.Fatalf("closed dispatcher returned %v, want ErrClosed", err)
	}
}

// waitQueue waits until the dispatcher queues hold want jobs in total.
func waitQueue(t *testing.T, d *dispatcher, want int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for d.QueueDepth() < want {
		if time.Now().After(deadline) {
			t.Fatalf("queue never reached %d jobs (have %d)", want, d.QueueDepth())
		}
		time.Sleep(time.Millisecond)
	}
}

// TestDispatcherTenantFairness pins the round-robin guarantee: a tenant
// flooding its own queue cannot starve another tenant's single job. With
// one worker, tenant A holds the engine and has more jobs queued; tenant
// B's lone job must run in the very next batch.
func TestDispatcherTenantFairness(t *testing.T) {
	ex := newBlockingExec()
	d := newDispatcherMulti(func(_ *core.Database, reqs []core.Request) []core.Response {
		return ex.exec(reqs)
	}, []string{"a", "b"}, 1, 8)

	var wg sync.WaitGroup
	submit := func(tenant string, alg core.Algorithm) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := d.SubmitTenant(context.Background(), tenant, nil, core.Request{Alg: alg}); err != nil {
				t.Errorf("submit %s: %v", tenant, err)
			}
		}()
	}
	// Tenant A occupies the single worker, then floods its queue.
	submit("a", core.SRCH)
	<-ex.started
	for i := 0; i < 4; i++ {
		submit("a", core.SRCH)
	}
	waitQueue(t, d, 4)
	// Tenant B queues one job behind A's backlog.
	submit("b", core.BTC)
	waitQueue(t, d, 5)

	// Release the running batch: the next batch must be tenant B's job,
	// not more of tenant A's backlog.
	ex.release <- struct{}{}
	<-ex.started
	ex.mu.Lock()
	second := ex.batches[1]
	ex.mu.Unlock()
	if len(second) != 1 || second[0].Alg != core.BTC {
		t.Fatalf("second batch %v is not tenant B's job: round-robin fairness violated", second)
	}
	// Drain the rest.
	go func() {
		for {
			select {
			case ex.release <- struct{}{}:
			case <-d.done:
				return
			}
		}
	}()
	wg.Wait()
	d.Close()
}

// TestDispatcherPerTenantSaturation pins that queue bounds are per tenant:
// one tenant's full queue rejects only that tenant.
func TestDispatcherPerTenantSaturation(t *testing.T) {
	ex := newBlockingExec()
	d := newDispatcherMulti(func(_ *core.Database, reqs []core.Request) []core.Response {
		return ex.exec(reqs)
	}, []string{"a", "b"}, 1, 1)
	defer func() { close(ex.release); d.Close() }()

	// Tenant A: one job executing, one queued — its quota is spent.
	go d.SubmitTenant(context.Background(), "a", nil, core.Request{Alg: core.SRCH}) //nolint:errcheck
	<-ex.started
	go d.SubmitTenant(context.Background(), "a", nil, core.Request{Alg: core.SRCH}) //nolint:errcheck
	waitQueue(t, d, 1)
	if _, err := d.SubmitTenant(context.Background(), "a", nil, core.Request{Alg: core.SRCH}); !errors.Is(err, ErrSaturated) {
		t.Fatalf("tenant A over quota returned %v, want ErrSaturated", err)
	}
	// Tenant B's queue is untouched: admission succeeds.
	done := make(chan error, 1)
	go func() {
		_, err := d.SubmitTenant(context.Background(), "b", nil, core.Request{Alg: core.BTC})
		done <- err
	}()
	waitQueue(t, d, 2)
	if got := d.TenantQueueDepth("b"); got != 1 {
		t.Fatalf("tenant B queue depth %d, want 1", got)
	}
	ex.release <- struct{}{}
	<-ex.started
	ex.release <- struct{}{}
	<-ex.started
	ex.release <- struct{}{}
	if err := <-done; err != nil {
		t.Fatalf("tenant B job failed under tenant A saturation: %v", err)
	}
}
