package server

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"

	"tcstudy/internal/core"
)

func value(io int64) *core.Result {
	return &core.Result{Metrics: core.Metrics{Compute: core.PhaseIO{Reads: io}}}
}

func fill(t *testing.T, c *resultCache, key string, io int64) {
	t.Helper()
	_, hit, shared, err := c.Do(context.Background(), key, func() (*core.Result, error) {
		return value(io), nil
	})
	if err != nil || hit || shared {
		t.Fatalf("fill %q: hit=%t shared=%t err=%v", key, hit, shared, err)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := newResultCache(2)
	fill(t, c, "a", 1)
	fill(t, c, "b", 2)
	// Touch a so that b is the eviction victim.
	if _, hit, _, _ := c.Do(context.Background(), "a", nil); !hit {
		t.Fatal("a not cached")
	}
	fill(t, c, "c", 3)
	if c.Len() != 2 {
		t.Fatalf("cache holds %d entries, want 2", c.Len())
	}
	if _, hit, _, _ := c.Do(context.Background(), "c", nil); !hit {
		t.Fatal("c evicted prematurely")
	}
	res, hit, _, _ := c.Do(context.Background(), "a", nil)
	if !hit || res.Metrics.TotalIO() != 1 {
		t.Fatalf("a lost: hit=%t res=%v", hit, res)
	}
	// b was least recently used: recomputation required.
	ran := false
	if _, hit, _, _ = c.Do(context.Background(), "b", func() (*core.Result, error) {
		ran = true
		return value(2), nil
	}); hit || !ran {
		t.Fatalf("b should have been evicted (hit=%t ran=%t)", hit, ran)
	}
}

func TestCacheSingleFlight(t *testing.T) {
	c := newResultCache(8)
	var calls atomic.Int64
	gate := make(chan struct{})
	started := make(chan struct{})
	const waiters = 8
	var (
		wg            sync.WaitGroup
		hitCount      atomic.Int64
		sharedCount   atomic.Int64
		computedCount atomic.Int64
	)
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, hit, shared, err := c.Do(context.Background(), "k", func() (*core.Result, error) {
				calls.Add(1)
				close(started)
				<-gate
				return value(7), nil
			})
			if err != nil {
				t.Errorf("err=%v", err)
			}
			switch {
			case hit:
				hitCount.Add(1) // arrived after the flight completed
			case shared:
				sharedCount.Add(1)
			default:
				computedCount.Add(1)
			}
			if res.Metrics.TotalIO() != 7 {
				t.Errorf("wrong result %v", res.Metrics.TotalIO())
			}
		}()
	}
	// Let the waiters pile onto the single flight, then open the gate.
	<-started
	close(gate)
	wg.Wait()
	if calls.Load() != 1 {
		t.Fatalf("fn ran %d times, want 1", calls.Load())
	}
	if computedCount.Load() != 1 || sharedCount.Load()+hitCount.Load() != waiters-1 {
		t.Fatalf("computed=%d shared=%d hits=%d over %d waiters",
			computedCount.Load(), sharedCount.Load(), hitCount.Load(), waiters)
	}
	// Afterwards the result is cached.
	if _, hit, _, _ := c.Do(context.Background(), "k", nil); !hit {
		t.Fatal("result not cached after flight")
	}
}

func TestCacheErrorNotCached(t *testing.T) {
	c := newResultCache(4)
	boom := errors.New("boom")
	if _, _, _, err := c.Do(context.Background(), "k", func() (*core.Result, error) {
		return nil, boom
	}); !errors.Is(err, boom) {
		t.Fatalf("got %v", err)
	}
	ran := false
	if _, hit, _, err := c.Do(context.Background(), "k", func() (*core.Result, error) {
		ran = true
		return value(1), nil
	}); err != nil || hit || !ran {
		t.Fatalf("error was cached: hit=%t ran=%t err=%v", hit, ran, err)
	}
}

func TestCacheWaiterHonoursContext(t *testing.T) {
	c := newResultCache(4)
	gate := make(chan struct{})
	started := make(chan struct{})
	go c.Do(context.Background(), "k", func() (*core.Result, error) { //nolint:errcheck
		close(started)
		<-gate
		return value(1), nil
	})
	<-started
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, shared, err := c.Do(ctx, "k", nil); !shared || !errors.Is(err, context.Canceled) {
		t.Fatalf("shared=%t err=%v, want cancelled waiter", shared, err)
	}
	close(gate)
}

func TestCacheZeroCapacity(t *testing.T) {
	c := newResultCache(0)
	ran := 0
	for i := 0; i < 2; i++ {
		if _, hit, _, _ := c.Do(context.Background(), "k", func() (*core.Result, error) {
			ran++
			return value(1), nil
		}); hit {
			t.Fatal("zero-capacity cache reported a hit")
		}
	}
	if ran != 2 {
		t.Fatalf("fn ran %d times, want 2 (no retention)", ran)
	}
	if c.Len() != 0 {
		t.Fatalf("zero-capacity cache holds %d entries", c.Len())
	}
}
