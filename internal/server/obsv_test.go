package server

import (
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"tcstudy/internal/obsv"
)

func scrape(t *testing.T, url string) (string, map[string]*obsv.Family) {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics returned %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("Content-Type = %q, want text/plain exposition", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	fams, err := obsv.ParseExposition(string(body))
	if err != nil {
		t.Fatalf("scrape does not parse as exposition format: %v\n%s", err, body)
	}
	return string(body), fams
}

// TestMetricsPrometheusScrape validates the default /metrics payload
// against the exposition-format checker — every family carries HELP and
// TYPE, no duplicates, parseable samples — and that counters are monotone
// across two scrapes with traffic in between.
func TestMetricsPrometheusScrape(t *testing.T) {
	_, ts, _ := newTestServer(t, 300, Options{})

	postQuery(t, ts.URL, map[string]any{"algorithm": "btc", "sources": []int32{3, 9}})
	text, first := scrape(t, ts.URL)

	for _, name := range []string{
		"tc_uptime_seconds", "tc_requests_total", "tc_cache_hits_total",
		"tc_cache_misses_total", "tc_index_hits_total",
		"tc_reach_engine_fallback_total", "tc_deduplicated_total",
		"tc_rejected_total", "tc_timeouts_total", "tc_storage_faults_total",
		"tc_errors_total", "tc_slow_queries_total", "tc_pages_served_total",
		"tc_tuples_served_total", "tc_in_flight", "tc_admission_queue_depth",
		"tc_admission_queue_capacity", "tc_request_duration_seconds",
		"tc_buffer_hit_ratio", "tc_engine_phase_seconds",
	} {
		if first[name] == nil {
			t.Errorf("family %s missing from scrape:\n%s", name, text)
		}
	}
	// One executed btc query: its phase histograms must be labelled.
	if !strings.Contains(text, `tc_engine_phase_seconds_count{algorithm="btc",phase="compute"}`) {
		t.Errorf("no btc compute phase histogram in scrape:\n%s", text)
	}

	// More traffic, then re-scrape: every counter must be monotone.
	postQuery(t, ts.URL, map[string]any{"algorithm": "warren"})
	var reach reachResponse
	getJSON(t, ts.URL+"/v1/reach?src=3&dst=9", &reach)
	_, second := scrape(t, ts.URL)
	for name, fam := range first {
		if fam.Type != "counter" {
			continue
		}
		v1, ok1 := obsv.CounterValue(first, name)
		v2, ok2 := obsv.CounterValue(second, name)
		if !ok1 || !ok2 {
			t.Errorf("%s missing from a scrape", name)
			continue
		}
		if v2 < v1 {
			t.Errorf("%s decreased between scrapes: %v -> %v", name, v1, v2)
		}
	}
	if v, _ := obsv.CounterValue(second, "tc_requests_total"); v < 3 {
		t.Errorf("tc_requests_total = %v after 3 requests", v)
	}
	if v, _ := obsv.CounterValue(second, "tc_reach_engine_fallback_total"); v != 1 {
		t.Errorf("tc_reach_engine_fallback_total = %v, want 1 (no index loaded)", v)
	}
}

// TestMetricsJSONFallback keeps the pre-Prometheus JSON shape reachable
// for existing consumers.
func TestMetricsJSONFallback(t *testing.T) {
	_, ts, _ := newTestServer(t, 200, Options{})
	postQuery(t, ts.URL, map[string]any{"algorithm": "srch", "sources": []int32{5}})
	var snap Snapshot
	if code := getJSON(t, ts.URL+"/metrics?format=json", &snap); code != http.StatusOK {
		t.Fatalf("json metrics returned %d", code)
	}
	if snap.Queries != 1 || snap.CacheMisses != 1 {
		t.Fatalf("snapshot = %+v", snap)
	}
}

// TestSlowQueryLog drives a query through a server whose slow threshold is
// one nanosecond, so everything is slow, and checks the log line carries a
// replayable tcquery command and the counter moves.
func TestSlowQueryLog(t *testing.T) {
	var mu sync.Mutex
	var lines []string
	s, ts, _ := newTestServer(t, 300, Options{
		SlowQuery:  time.Nanosecond,
		ReplayArgs: "-n 300 -f 4 -l 40 -seed 7",
		SlowLogf: func(format string, args ...any) {
			mu.Lock()
			lines = append(lines, fmt.Sprintf(format, args...))
			mu.Unlock()
		},
	})
	postQuery(t, ts.URL, map[string]any{
		"algorithm": "btc", "sources": []int32{3, 9}, "buffer_pages": 12,
	})
	mu.Lock()
	defer mu.Unlock()
	if len(lines) != 1 {
		t.Fatalf("got %d slow-log lines, want 1: %q", len(lines), lines)
	}
	line := lines[0]
	for _, want := range []string{
		"slow query:",
		"algorithm=btc",
		"elapsed=",
		`replay="tcquery -n 300 -f 4 -l 40 -seed 7 -alg btc -sources 3,9 -m 12 -pagepolicy lru -listpolicy smallest -trace"`,
		"compute_io=",
	} {
		if !strings.Contains(line, want) {
			t.Errorf("slow-log line missing %q:\n%s", want, line)
		}
	}
	if got := s.Metrics().SlowQueries.Load(); got != 1 {
		t.Errorf("SlowQueries = %d, want 1", got)
	}
}

// TestDebugTraces exercises the trace ring: span trees with engine phase
// children appear newest-first, the cached re-run is flagged, and a server
// without tracing reports the endpoint as disabled.
func TestDebugTraces(t *testing.T) {
	_, ts, _ := newTestServer(t, 300, Options{TraceBuffer: 8})
	postQuery(t, ts.URL, map[string]any{"algorithm": "btc", "sources": []int32{3, 9}})
	postQuery(t, ts.URL, map[string]any{"algorithm": "btc", "sources": []int32{3, 9}}) // cache hit

	var out struct {
		Enabled bool         `json:"enabled"`
		Traces  []TraceEntry `json:"traces"`
	}
	if code := getJSON(t, ts.URL+"/debug/traces", &out); code != http.StatusOK {
		t.Fatalf("/debug/traces returned %d", code)
	}
	if !out.Enabled {
		t.Fatal("tracing reported disabled")
	}
	if len(out.Traces) != 2 {
		t.Fatalf("got %d traces, want 2", len(out.Traces))
	}
	newest, oldest := out.Traces[0], out.Traces[1]
	if !newest.Cached || oldest.Cached {
		t.Fatalf("newest.Cached=%v oldest.Cached=%v, want true/false", newest.Cached, oldest.Cached)
	}
	if len(oldest.Spans) != 1 {
		t.Fatalf("executed query has %d root spans, want 1", len(oldest.Spans))
	}
	root := oldest.Spans[0]
	if root.Name != "query" {
		t.Fatalf("root span %q, want query", root.Name)
	}
	var phases []string
	root.Visit(func(r obsv.Record) {
		if r.Name == "restructure" || r.Name == "compute" {
			phases = append(phases, r.Name)
		}
	})
	if len(phases) != 2 {
		t.Fatalf("phase spans = %v, want restructure+compute", phases)
	}
	if io := root.SumIO("restructure", "compute"); io.Total() == 0 {
		t.Fatal("executed query's spans carry no page I/O")
	}
	// The cached request did no engine work: no phase spans.
	if len(newest.Spans) != 1 || len(newest.Spans[0].Children) != 0 {
		t.Fatalf("cached request spans = %+v, want a bare root", newest.Spans)
	}
	if newest.Replay == "" || !strings.Contains(newest.Replay, "-alg btc") {
		t.Fatalf("replay = %q", newest.Replay)
	}

	// Tracing off: the endpoint stays up but reports disabled.
	_, ts2, _ := newTestServer(t, 100, Options{})
	var off struct {
		Enabled bool `json:"enabled"`
	}
	if code := getJSON(t, ts2.URL+"/debug/traces", &off); code != http.StatusOK {
		t.Fatalf("/debug/traces returned %d", code)
	}
	if off.Enabled {
		t.Fatal("tracing reported enabled on an untraced server")
	}
}
