package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"tcstudy/internal/core"
	"tcstudy/internal/graph"
	"tcstudy/internal/graphgen"
)

// measure is the averaged outcome of repeated runs of one (graph,
// algorithm, query, config) cell.
type measure struct {
	io          float64
	restructIO  float64
	computeIO   float64
	tuples      float64 // distinct tuples materialized (tc)
	gen         float64 // tuples generated including duplicates
	dups        float64
	unions      float64
	markPct     float64
	eff         float64
	hit         float64
	unmarkedLoc float64
	wall        time.Duration
}

// run measures one cell, averaging QueryReps random source sets for
// selection queries (the paper averages five source sets per query).
func (s *Suite) run(sg *studyGraph, alg core.Algorithm, nSources int, cfg core.Config) (measure, error) {
	reps := s.QueryReps
	if nSources == 0 || reps < 1 {
		reps = 1
	}
	var m measure
	for r := 0; r < reps; r++ {
		var q core.Query
		if nSources > 0 {
			q.Sources = graphgen.SourceSet(s.Nodes, nSources, s.Seed*1000+int64(r)*17+int64(nSources))
		}
		start := time.Now()
		res, err := core.Run(sg.db, alg, q, cfg)
		if err != nil {
			return m, fmt.Errorf("%s on %s: %w", alg, sg.spec.Name, err)
		}
		m.wall += time.Since(start)
		mt := res.Metrics
		m.io += float64(mt.TotalIO())
		m.restructIO += float64(mt.Restructure.Total())
		m.computeIO += float64(mt.Compute.Total())
		m.tuples += float64(mt.DistinctTuples)
		m.gen += float64(mt.TuplesGenerated)
		m.dups += float64(mt.Duplicates)
		m.unions += float64(mt.ListUnions)
		m.markPct += mt.MarkingPct()
		m.eff += mt.SelectionEfficiency()
		m.hit += mt.ComputeBuffer.HitRatio()
		m.unmarkedLoc += mt.AvgUnmarkedLocality()
	}
	f := float64(reps)
	m.io /= f
	m.restructIO /= f
	m.computeIO /= f
	m.tuples /= f
	m.gen /= f
	m.dups /= f
	m.unions /= f
	m.markPct /= f
	m.eff /= f
	m.hit /= f
	m.unmarkedLoc /= f
	m.wall /= time.Duration(reps)
	return m, nil
}

func f0(v float64) string  { return fmt.Sprintf("%.0f", v) }
func f1(v float64) string  { return fmt.Sprintf("%.1f", v) }
func f2(v float64) string  { return fmt.Sprintf("%.2f", v) }
func pct(v float64) string { return fmt.Sprintf("%.1f%%", v) }

// statsFor caches the Table 2 characterization of a study graph.
func (s *Suite) statsFor(sg *studyGraph) (graph.Stats, error) {
	if sg.stats == nil {
		st, err := sg.g.ComputeStats()
		if err != nil {
			return graph.Stats{}, err
		}
		sg.stats = &st
	}
	return *sg.stats, nil
}

// Table2 regenerates Table 2: the characterization of graphs G1–G12.
func (s *Suite) Table2() (*Table, error) {
	t := &Table{
		ID:    "table2",
		Title: "Graph parameters (paper Table 2)",
		Columns: []string{"graph", "F", "l", "|G|", "max level", "H", "W",
			"avg loc", "avg irred loc", "|TC(G)|"},
		Notes: []string{
			"paper shape: higher F / lower l give deeper graphs (higher H and max level)",
			"paper shape: irredundant-arc locality is much lower than all-arc locality",
		},
	}
	for _, spec := range StudyGraphs() {
		sg, err := s.Graph(spec.Name)
		if err != nil {
			return nil, err
		}
		st, err := s.statsFor(sg)
		if err != nil {
			return nil, err
		}
		t.AddRow(spec.Name, fmt.Sprint(spec.OutDegree), fmt.Sprint(spec.Locality),
			fmt.Sprint(st.Arcs), fmt.Sprint(st.MaxLevel), f1(st.H), f1(st.W),
			f1(st.AvgLocality), f1(st.AvgIrredLoc), fmt.Sprint(st.ClosureSize))
		s.progress("table2: %s done", spec.Name)
	}
	return t, nil
}

// Table3 regenerates Table 3: the cost breakdown of BTC computing the full
// closure of G6 with 10, 20 and 50 buffer pages. Wall-clock time replaces
// the DECstation's `time` output; estimated I/O time uses the paper's
// calibrated 20 ms per page I/O.
func (s *Suite) Table3() (*Table, error) {
	sg, err := s.Graph("G6")
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "table3",
		Title:   "I/O and CPU cost of BTC (G6, CTC)",
		Columns: []string{"M", "wall time", "restruct I/O", "compute I/O", "total I/O", "est. I/O time"},
		Notes: []string{
			"paper shape: computation is I/O bound (estimated I/O time >> CPU time)",
			"paper shape: the computation phase dominates I/O at every buffer size",
		},
	}
	for _, m := range []int{10, 20, 50} {
		mm, err := s.run(sg, core.BTC, 0, core.Config{BufferPages: m})
		if err != nil {
			return nil, err
		}
		est := time.Duration(mm.io) * 20 * time.Millisecond
		t.AddRow(fmt.Sprint(m), mm.wall.Round(time.Millisecond).String(),
			f0(mm.restructIO), f0(mm.computeIO), f0(mm.io), est.Round(time.Millisecond).String())
	}
	return t, nil
}

// Fig6 regenerates Figure 6: total I/O of BTC and of HYB with ILIMIT 0.1,
// 0.2 and 0.3 on G9's full closure, across buffer sizes.
func (s *Suite) Fig6() (*Table, error) {
	sg, err := s.Graph("G9")
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "fig6",
		Title:   "Hybrid vs BTC, effect of blocking (G9, CTC): total I/O",
		Columns: []string{"M", "BTC", "HYB-0.1", "HYB-0.2", "HYB-0.3"},
		Notes: []string{
			"paper shape: cost increases with ILIMIT; HYB is best with no blocking (= BTC)",
		},
	}
	for _, m := range []int{10, 20, 30, 40, 50} {
		row := []string{fmt.Sprint(m)}
		mb, err := s.run(sg, core.BTC, 0, core.Config{BufferPages: m})
		if err != nil {
			return nil, err
		}
		row = append(row, f0(mb.io))
		for _, il := range []float64{0.1, 0.2, 0.3} {
			mh, err := s.run(sg, core.HYB, 0, core.Config{BufferPages: m, ILIMIT: il})
			if err != nil {
				return nil, err
			}
			row = append(row, f0(mh.io))
		}
		t.AddRow(row...)
		s.progress("fig6: M=%d done", m)
	}
	return t, nil
}

// Fig7 regenerates Figure 7: the successor tree algorithms against BTC on
// the locality-200 graphs (G2, G5, G8, G11) with 20 buffer pages —
// (a) total I/O and (b) duplicates generated.
func (s *Suite) Fig7() (*Table, error) {
	t := &Table{
		ID:    "fig7",
		Title: "Tree algorithms vs BTC (CTC, locality 200, M=20)",
		Columns: []string{"graph", "F", "BTC I/O", "SPN I/O", "JKB I/O", "JKB2 I/O",
			"BTC dups", "SPN dups"},
		Notes: []string{
			"paper shape (a): BTC beats the tree algorithms; SPN closes the gap as F grows; JKB/JKB2 stay worst",
			"paper shape (b): SPN generates far fewer duplicates than BTC — tuple savings that do not become page-I/O savings",
		},
	}
	cfg := core.Config{BufferPages: 20}
	for _, name := range []string{"G2", "G5", "G8", "G11"} {
		sg, err := s.Graph(name)
		if err != nil {
			return nil, err
		}
		var cells []measure
		for _, alg := range []core.Algorithm{core.BTC, core.SPN, core.JKB, core.JKB2} {
			m, err := s.run(sg, alg, 0, cfg)
			if err != nil {
				return nil, err
			}
			cells = append(cells, m)
			s.progress("fig7: %s %s done (%.0f I/O)", name, alg, m.io)
		}
		t.AddRow(name, fmt.Sprint(sg.spec.OutDegree),
			f0(cells[0].io), f0(cells[1].io), f0(cells[2].io), f0(cells[3].io),
			f0(cells[0].dups), f0(cells[1].dups))
	}
	return t, nil
}

// highSelCell is the cached measurement grid behind Figures 8–12.
type highSelCell struct {
	graph string
	s     int
	alg   core.Algorithm
	m     measure
}

var highSelAlgs = []core.Algorithm{core.BTC, core.BJ, core.JKB2, core.SRCH}
var highSelS = []int{2, 5, 10, 20}

func (s *Suite) highSelData() ([]highSelCell, error) {
	if s.highSel != nil {
		return s.highSel, nil
	}
	cfg := core.Config{BufferPages: 10}
	var cells []highSelCell
	for _, name := range []string{"G4", "G11"} {
		sg, err := s.Graph(name)
		if err != nil {
			return nil, err
		}
		for _, ns := range highSelS {
			for _, alg := range highSelAlgs {
				m, err := s.run(sg, alg, ns, cfg)
				if err != nil {
					return nil, err
				}
				cells = append(cells, highSelCell{graph: name, s: ns, alg: alg, m: m})
			}
			s.progress("high-selectivity grid: %s s=%d done", name, ns)
		}
	}
	s.highSel = cells
	return cells, nil
}

// highSelTable renders one metric of the cached grid.
func (s *Suite) highSelTable(id, title string, notes []string, metric func(measure) string) (*Table, error) {
	cells, err := s.highSelData()
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      id,
		Title:   title,
		Columns: []string{"graph", "s", "BTC", "BJ", "JKB2", "SRCH"},
		Notes:   notes,
	}
	for _, name := range []string{"G4", "G11"} {
		for _, ns := range highSelS {
			row := []string{name, fmt.Sprint(ns)}
			for _, alg := range highSelAlgs {
				for _, c := range cells {
					if c.graph == name && c.s == ns && c.alg == alg {
						row = append(row, metric(c.m))
					}
				}
			}
			t.AddRow(row...)
		}
	}
	return t, nil
}

// Fig8 regenerates Figure 8: total I/O for high selectivity PTC.
func (s *Suite) Fig8() (*Table, error) {
	return s.highSelTable("fig8",
		"High selectivity PTC: total I/O (M=10)",
		[]string{
			"paper shape: SRCH performs best at small s and deteriorates as s grows",
			"paper shape: JKB2 beats BTC on the narrow G4 and loses on the wide G11 (Table 4)",
		},
		func(m measure) string { return f0(m.io) })
}

// Fig9 regenerates Figure 9: distinct tuples generated (with selection
// efficiency in parentheses).
func (s *Suite) Fig9() (*Table, error) {
	return s.highSelTable("fig9",
		"High selectivity PTC: tuples materialized (selection efficiency)",
		[]string{
			"paper shape: SRCH is optimal (efficiency 1); JKB2 generates under 1% of BTC/BJ's tuples",
			"paper shape: BTC and BJ expand every magic-graph node — poor selection efficiency",
		},
		func(m measure) string { return fmt.Sprintf("%s (%.2f)", f0(m.tuples), m.eff) })
}

// Fig10 regenerates Figure 10: successor list unions.
func (s *Suite) Fig10() (*Table, error) {
	return s.highSelTable("fig10",
		"High selectivity PTC: successor list unions",
		[]string{
			"paper shape: SRCH unions grow rapidly with s (no immediate-successor optimization)",
			"paper shape: JKB2 performs many more unions than BTC/BJ (missed markings)",
		},
		func(m measure) string { return f0(m.unions) })
}

// Fig11 regenerates Figure 11: marking percentage.
func (s *Suite) Fig11() (*Table, error) {
	return s.highSelTable("fig11",
		"High selectivity PTC: marking percentage",
		[]string{
			"paper shape: JKB2's marking is far below BTC/BJ's (special-node lists miss markings); SRCH marks nothing",
		},
		func(m measure) string { return pct(m.markPct) })
}

// Fig12 regenerates Figure 12: average locality of the unmarked arcs.
func (s *Suite) Fig12() (*Table, error) {
	return s.highSelTable("fig12",
		"High selectivity PTC: avg locality of unmarked (performed-union) arcs",
		[]string{
			"paper shape: locality is much worse for JKB2 — its unions are likelier to need I/O",
		},
		func(m measure) string { return f1(m.unmarkedLoc) })
}

// Fig13 regenerates Figure 13: total I/O and computation-phase hit ratio of
// BTC, JKB2 and SRCH as the buffer pool grows, with 10 source nodes.
func (s *Suite) Fig13() (*Table, error) {
	t := &Table{
		ID:      "fig13",
		Title:   "Effect of buffer pool size (10 sources): total I/O (hit ratio)",
		Columns: []string{"graph", "M", "BTC", "JKB2", "SRCH"},
		Notes: []string{
			"paper shape: all improve with M; JKB2 is the most sensitive and becomes memory-resident, its I/O then dominated by preprocessing",
		},
	}
	for _, name := range []string{"G4", "G11"} {
		sg, err := s.Graph(name)
		if err != nil {
			return nil, err
		}
		for _, m := range []int{10, 20, 30, 40, 50} {
			row := []string{name, fmt.Sprint(m)}
			for _, alg := range []core.Algorithm{core.BTC, core.JKB2, core.SRCH} {
				mm, err := s.run(sg, alg, 10, core.Config{BufferPages: m})
				if err != nil {
					return nil, err
				}
				row = append(row, fmt.Sprintf("%s (%.2f)", f0(mm.io), mm.hit))
			}
			t.AddRow(row...)
			s.progress("fig13: %s M=%d done", name, m)
		}
	}
	return t, nil
}

// Fig14 regenerates Figure 14: the low selectivity trends on G9 with 20
// buffer pages — total I/O, tuples generated, marking percentage and list
// unions for BTC, BJ and JKB2 as s approaches the full closure.
func (s *Suite) Fig14() (*Table, error) {
	sg, err := s.Graph("G9")
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "fig14",
		Title:   "Low selectivity PTC trends (G9, M=20)",
		Columns: []string{"s", "alg", "total I/O", "tuples gen", "marking", "unions"},
		Notes: []string{
			"paper shape: BJ tracks BTC (few single-parent nodes left to eliminate)",
			"paper shape: JKB2's advantages and disadvantages both diminish as s grows; curves converge at s = n, where JKB2 stays higher due to stored parent information",
		},
	}
	svals := []int{200, 500, 1000, 2000}
	for _, ns := range svals {
		eff := ns
		if eff > s.Nodes {
			eff = s.Nodes
		}
		for _, alg := range []core.Algorithm{core.BTC, core.BJ, core.JKB2} {
			m, err := s.run(sg, alg, eff, core.Config{BufferPages: 20})
			if err != nil {
				return nil, err
			}
			t.AddRow(fmt.Sprint(eff), string(alg), f0(m.io), f0(m.gen), pct(m.markPct), f0(m.unions))
		}
		s.progress("fig14: s=%d done", eff)
	}
	return t, nil
}

// Table4 regenerates Table 4: the I/O of JKB2 relative to BTC for PTC with
// 5 and 10 sources and 10 buffer pages, over all graphs sorted by width.
func (s *Suite) Table4() (*Table, error) {
	t := &Table{
		ID:      "table4",
		Title:   "JKB2 / BTC total I/O ratio vs graph width (M=10)",
		Columns: []string{"graph", "width", "height", "s=5", "s=10"},
		Notes: []string{
			"paper shape: JKB2 wins (ratio < 1) on narrow graphs and loses (ratio > 1) on wide ones; sensitivity is to width, not height",
		},
	}
	type row struct {
		name   string
		w, h   float64
		ratios [2]float64
	}
	var rows []row
	for _, spec := range StudyGraphs() {
		sg, err := s.Graph(spec.Name)
		if err != nil {
			return nil, err
		}
		st, err := s.statsFor(sg)
		if err != nil {
			return nil, err
		}
		r := row{name: spec.Name, w: st.W, h: st.H}
		for i, ns := range []int{5, 10} {
			mb, err := s.run(sg, core.BTC, ns, core.Config{BufferPages: 10})
			if err != nil {
				return nil, err
			}
			mj, err := s.run(sg, core.JKB2, ns, core.Config{BufferPages: 10})
			if err != nil {
				return nil, err
			}
			if mb.io > 0 {
				r.ratios[i] = mj.io / mb.io
			}
		}
		rows = append(rows, r)
		s.progress("table4: %s done (W=%.0f ratios %.2f %.2f)", spec.Name, r.w, r.ratios[0], r.ratios[1])
	}
	for i := 0; i < len(rows); i++ {
		for j := i + 1; j < len(rows); j++ {
			if rows[j].w < rows[i].w {
				rows[i], rows[j] = rows[j], rows[i]
			}
		}
	}
	for _, r := range rows {
		t.AddRow(r.name, f0(r.w), f0(r.h), f2(r.ratios[0]), f2(r.ratios[1]))
	}
	return t, nil
}

// RelatedWork re-measures the conclusion of the earlier studies the paper
// builds on (its Section 8): the graph-based algorithms beat the iterative
// (Seminaive) and matrix-based (Blocked Warren) families, with Seminaive
// relatively strongest at high selectivity and Warren paying the full
// closure price on every selection.
func (s *Suite) RelatedWork() (*Table, error) {
	t := &Table{
		ID:      "relatedwork",
		Title:   "BTC vs the iterative and matrix baselines: total I/O (M=10)",
		Columns: []string{"graph", "query", "BTC", "Seminaive", "Warren"},
		Notes: []string{
			"literature shape ([19] via paper Section 8): Seminaive loses full closures by an order of magnitude but is competitive at high selectivity; the matrix algorithm pays its fixed full-matrix cost on every query, so it cannot exploit selectivity at all",
			"Warren's fixed cost scales with n^2 bits while the graph algorithms scale with |TC| tuples, so the bit matrix can win very dense closures (G5) and loses sparse ones (G3)",
		},
	}
	cfg := core.Config{BufferPages: 10}
	for _, name := range []string{"G2", "G3", "G5"} {
		sg, err := s.Graph(name)
		if err != nil {
			return nil, err
		}
		for _, ns := range []int{0, 10, 200} {
			label := "CTC"
			if ns > 0 {
				label = fmt.Sprintf("PTC s=%d", ns)
			}
			row := []string{name, label}
			for _, alg := range []core.Algorithm{core.BTC, core.SEMI, core.WARREN} {
				m, err := s.run(sg, alg, ns, cfg)
				if err != nil {
					return nil, err
				}
				row = append(row, f0(m.io))
			}
			t.AddRow(row...)
			s.progress("relatedwork: %s %s done", name, label)
		}
	}
	return t, nil
}

// AblationPolicies sweeps the page and list replacement policy grid,
// checking the paper's claim (Section 5.1) that the choice has a secondary
// effect on cost.
func (s *Suite) AblationPolicies() (*Table, error) {
	sg, err := s.Graph("G5")
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "ablation-policies",
		Title:   "Replacement policy grid: BTC total I/O (G5, CTC, M=10)",
		Columns: []string{"page policy", "smallest", "largest", "lru", "random"},
		Notes: []string{
			"paper claim: the choice of page and list replacement policies has a secondary effect",
		},
	}
	for _, pp := range []string{"lru", "mru", "fifo", "clock", "random"} {
		row := []string{pp}
		for _, lp := range []string{"smallest", "largest", "lru", "random"} {
			m, err := s.run(sg, core.BTC, 0, core.Config{BufferPages: 10, PagePolicy: pp, ListPolicy: lp})
			if err != nil {
				return nil, err
			}
			row = append(row, f0(m.io))
		}
		t.AddRow(row...)
	}
	return t, nil
}

// AblationMarking measures what the marking optimization is worth.
func (s *Suite) AblationMarking() (*Table, error) {
	t := &Table{
		ID:      "ablation-marking",
		Title:   "Marking optimization on/off: BTC CTC (M=10)",
		Columns: []string{"graph", "I/O on", "I/O off", "unions on", "unions off"},
		Notes: []string{
			"marking avoids exactly the redundant (transitively implied) arcs — and the paper notes those are the expensive, low-locality unions",
		},
	}
	for _, name := range []string{"G2", "G5", "G8"} {
		sg, err := s.Graph(name)
		if err != nil {
			return nil, err
		}
		on, err := s.run(sg, core.BTC, 0, core.Config{BufferPages: 10})
		if err != nil {
			return nil, err
		}
		off, err := s.run(sg, core.BTC, 0, core.Config{BufferPages: 10, DisableMarking: true})
		if err != nil {
			return nil, err
		}
		t.AddRow(name, f0(on.io), f0(off.io), f0(on.unions), f0(off.unions))
	}
	return t, nil
}

// AblationClustering measures inter-list clustering's contribution.
func (s *Suite) AblationClustering() (*Table, error) {
	t := &Table{
		ID:      "ablation-clustering",
		Title:   "Inter-list clustering on/off: BTC CTC (M=10)",
		Columns: []string{"graph", "I/O clustered", "I/O unclustered"},
		Notes: []string{
			"clustering packs lists in processing order; turning it off spreads initial lists one per page",
		},
	}
	for _, name := range []string{"G2", "G5", "G8"} {
		sg, err := s.Graph(name)
		if err != nil {
			return nil, err
		}
		on, err := s.run(sg, core.BTC, 0, core.Config{BufferPages: 10})
		if err != nil {
			return nil, err
		}
		off, err := s.run(sg, core.BTC, 0, core.Config{BufferPages: 10, DisableClustering: true})
		if err != nil {
			return nil, err
		}
		t.AddRow(name, f0(on.io), f0(off.io))
	}
	return t, nil
}

// AblationIndex measures the paper's free-index assumption: probes via a
// disk-resident B+-tree whose interior pages are charged, against the
// default in-memory sparse index.
func (s *Suite) AblationIndex() (*Table, error) {
	t := &Table{
		ID:      "ablation-index",
		Title:   "Charging clustered-index interior I/O: total I/O (M=10)",
		Columns: []string{"graph", "query", "alg", "index free", "index charged"},
		Notes: []string{
			"paper assumption: interior index pages cost nothing; with the root and one interior level hot in the pool, the measured overhead stays small — the assumption is sound",
		},
	}
	for _, name := range []string{"G2", "G8"} {
		sg, err := s.Graph(name)
		if err != nil {
			return nil, err
		}
		type cell struct {
			label string
			alg   core.Algorithm
			ns    int
		}
		for _, c := range []cell{{"CTC", core.BTC, 0}, {"PTC s=10", core.SRCH, 10}} {
			free, err := s.run(sg, c.alg, c.ns, core.Config{BufferPages: 10})
			if err != nil {
				return nil, err
			}
			charged, err := s.run(sg, c.alg, c.ns, core.Config{BufferPages: 10, ChargeIndexIO: true})
			if err != nil {
				return nil, err
			}
			t.AddRow(name, c.label, string(c.alg), f0(free.io), f0(charged.io))
		}
	}
	return t, nil
}

// ExtensionPaths measures the generalized-closure aggregates (the paper's
// companion work [7]) against plain BTC reachability on one study family:
// path aggregation forgoes the marking optimization, so its extra unions
// and write-once lists cost real I/O.
func (s *Suite) ExtensionPaths() (*Table, error) {
	sg, err := s.Graph("G5")
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "extension-paths",
		Title:   "Generalized closure on G5 (CTC, M=20): I/O vs reachability",
		Columns: []string{"computation", "restruct I/O", "compute I/O", "total I/O", "unions"},
		Notes: []string{
			"path aggregation must process every arc (no marking) and rewrites each node's aggregate list once",
		},
	}
	base, err := s.run(sg, core.BTC, 0, core.Config{BufferPages: 20})
	if err != nil {
		return nil, err
	}
	t.AddRow("btc reachability", f0(base.restructIO), f0(base.computeIO), f0(base.io), f0(base.unions))
	for _, agg := range []core.PathAggregate{core.MinHops, core.MaxHops, core.PathCount} {
		res, err := core.RunPaths(sg.db, agg, core.Query{}, core.Config{BufferPages: 20})
		if err != nil {
			return nil, err
		}
		m := res.Metrics
		t.AddRow("paths-"+string(agg), f0(float64(m.Restructure.Total())),
			f0(float64(m.Compute.Total())), f0(float64(m.TotalIO())), f0(float64(m.ListUnions)))
		s.progress("extension-paths: %s done", agg)
	}
	return t, nil
}

// ExtensionSession measures what a warm buffer pool is worth for repeated
// queries — the library-usage counterpoint to the paper's cold-start
// measurements.
func (s *Suite) ExtensionSession() (*Table, error) {
	sg, err := s.Graph("G5")
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "extension-session",
		Title:   "Warm session vs cold runs (G5, 5 sources, M=50): total I/O",
		Columns: []string{"alg", "cold", "warm rerun"},
		Notes: []string{
			"the session keeps the relation's hot pages resident between queries; the paper's experiments are deliberately cold",
		},
	}
	sources := graphgen.SourceSet(s.Nodes, 5, s.Seed)
	for _, alg := range []core.Algorithm{core.SRCH, core.JKB2, core.BTC} {
		sess, err := core.NewSession(sg.db, core.Config{BufferPages: 50})
		if err != nil {
			return nil, err
		}
		cold, err := sess.Run(alg, core.Query{Sources: sources})
		if err != nil {
			return nil, err
		}
		warm, err := sess.Run(alg, core.Query{Sources: sources})
		if err != nil {
			return nil, err
		}
		t.AddRow(string(alg), f0(float64(cold.Metrics.TotalIO())), f0(float64(warm.Metrics.TotalIO())))
	}
	return t, nil
}

// Condensation demonstrates the cyclic-graph pipeline the paper's
// introduction assumes: strongly connected components are merged into an
// acyclic condensation whose closure is then computed with BTC.
func (s *Suite) Condensation() (*Table, error) {
	t := &Table{
		ID:      "condensation",
		Title:   "Cyclic input: condensation+BTC vs native Schmitz (M=10)",
		Columns: []string{"n", "arcs", "SCCs", "condensed arcs", "BTC I/O", "Schmitz I/O", "|TC| original"},
		Notes: []string{
			"paper Section 1: the condensation is cheap relative to the closure of the condensation graph",
			"Schmitz closes components in the same pass that finds them — one end-to-end I/O figure for the cyclic input",
		},
	}
	n := s.Nodes / 2
	if n < 50 {
		n = 50
	}
	rng := rand.New(rand.NewSource(s.Seed))
	arcs, err := graphgen.Generate(graphgen.Params{Nodes: n, OutDegree: 4, Locality: n / 10, Seed: s.Seed})
	if err != nil {
		return nil, err
	}
	// Add back-arcs to create cycles.
	nBack := len(arcs) / 10
	for i := 0; i < nBack; i++ {
		from := int32(rng.Intn(n-1) + 2)
		to := int32(rng.Intn(int(from-1)) + 1)
		arcs = append(arcs, graph.Arc{From: from, To: to})
	}
	g := graph.New(n, arcs)
	cond := g.Condense()
	db := core.NewDatabase(cond.DAG.N(), cond.DAG.Arcs())
	m := measure{}
	res, err := core.Run(db, core.BTC, core.Query{}, core.Config{BufferPages: 10})
	if err != nil {
		return nil, err
	}
	m.io = float64(res.Metrics.TotalIO())
	// Schmitz closes the original cyclic graph directly.
	cycDB := core.NewDatabase(n, arcs)
	sres, err := core.Run(cycDB, core.SCHMITZ, core.Query{}, core.Config{BufferPages: 10})
	if err != nil {
		return nil, err
	}
	// Expand the condensation closure back to original nodes to size it.
	succ, err := cond.DAG.Closure()
	if err != nil {
		return nil, err
	}
	expanded := cond.ExpandClosure(succ)
	var tc int64
	for u := 1; u <= n; u++ {
		tc += int64(len(expanded[u]))
	}
	t.AddRow(fmt.Sprint(n), fmt.Sprint(g.NumArcs()), fmt.Sprint(cond.DAG.N()),
		fmt.Sprint(cond.DAG.NumArcs()), f0(m.io),
		f0(float64(sres.Metrics.TotalIO())), fmt.Sprint(tc))
	return t, nil
}
