// Package experiments regenerates every table and figure of the paper's
// evaluation section (Section 6), plus the ablations DESIGN.md calls out.
// Each experiment is a named runner producing a Table — the rows/series
// the paper reports — over the study's 12 synthetic graph families
// (Table 2) with the paper's query and system parameters (Table 1).
package experiments

import (
	"fmt"
	"sort"
	"strings"

	"tcstudy/internal/core"
	"tcstudy/internal/graph"
	"tcstudy/internal/graphgen"
)

// Table is one regenerated artifact: a titled grid of cells plus notes on
// the qualitative shape the paper reports for it.
type Table struct {
	ID      string
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Render returns the table as fixed-width text.
func (t *Table) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Columns)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, r := range t.Rows {
		line(r)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Markdown renders the table as a GitHub-flavored markdown table.
func (t *Table) Markdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "### %s: %s\n\n", t.ID, t.Title)
	b.WriteString("| " + strings.Join(t.Columns, " | ") + " |\n")
	b.WriteString("|" + strings.Repeat("---|", len(t.Columns)) + "\n")
	for _, r := range t.Rows {
		b.WriteString("| " + strings.Join(r, " | ") + " |\n")
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "\n*%s*\n", n)
	}
	return b.String()
}

// Suite holds shared experiment state: the study graphs are generated once
// and their databases reused across experiments.
type Suite struct {
	// Nodes is the graph size; the paper uses 2000. Smaller values give a
	// faster, shape-preserving "quick" mode.
	Nodes int
	// Seed fixes the generator; the paper averages 5 random graphs per
	// family, we report one fixed instance per family by default.
	Seed int64
	// QueryReps is the number of random source sets averaged per selection
	// query (the paper uses 5).
	QueryReps int
	// Progress, when non-nil, receives one line per completed step.
	Progress func(string)

	graphs  map[string]*studyGraph
	highSel []highSelCell // cached grid shared by Figures 8-12
}

// NewSuite returns a suite with the paper's defaults.
func NewSuite() *Suite {
	return &Suite{Nodes: 2000, Seed: 1, QueryReps: 3}
}

func (s *Suite) progress(format string, args ...any) {
	if s.Progress != nil {
		s.Progress(fmt.Sprintf(format, args...))
	}
}

// GraphSpec identifies one study graph family of Table 2.
type GraphSpec struct {
	Name      string
	OutDegree int // F
	Locality  int // l
}

// StudyGraphs lists the 12 families G1–G12 (Table 2: F in {2,5,20,50}
// crossed with generation locality l in {20,200,2000}).
func StudyGraphs() []GraphSpec {
	var specs []GraphSpec
	i := 1
	for _, f := range []int{2, 5, 20, 50} {
		for _, l := range []int{20, 200, 2000} {
			specs = append(specs, GraphSpec{Name: fmt.Sprintf("G%d", i), OutDegree: f, Locality: l})
			i++
		}
	}
	return specs
}

type studyGraph struct {
	spec  GraphSpec
	g     *graph.Graph
	db    *core.Database
	stats *graph.Stats
}

// Graph returns (building and caching on first use) one study graph.
func (s *Suite) Graph(name string) (*studyGraph, error) {
	if s.graphs == nil {
		s.graphs = make(map[string]*studyGraph)
	}
	if sg, ok := s.graphs[name]; ok {
		return sg, nil
	}
	for _, spec := range StudyGraphs() {
		if spec.Name != name {
			continue
		}
		// Locality scales with the graph when running reduced-size quick
		// suites, preserving the deep/shallow family shapes.
		l := spec.Locality
		if s.Nodes != 2000 {
			l = spec.Locality * s.Nodes / 2000
			if l < 2 {
				l = 2
			}
		}
		arcs, err := graphgen.Generate(graphgen.Params{
			Nodes: s.Nodes, OutDegree: spec.OutDegree, Locality: l, Seed: s.Seed,
		})
		if err != nil {
			return nil, err
		}
		sg := &studyGraph{spec: spec, g: graph.New(s.Nodes, arcs), db: core.NewDatabase(s.Nodes, arcs)}
		s.graphs[name] = sg
		s.progress("generated %s (F=%d l=%d): %d arcs", name, spec.OutDegree, l, len(arcs))
		return sg, nil
	}
	return nil, fmt.Errorf("experiments: unknown study graph %q", name)
}

// runner is one registered experiment.
type runner struct {
	id    string
	title string
	fn    func(*Suite) (*Table, error)
}

var registry = []runner{
	{"table2", "Graph parameters of the study DAGs", (*Suite).Table2},
	{"table3", "I/O and CPU cost breakdown of BTC (G6, CTC)", (*Suite).Table3},
	{"fig6", "Hybrid vs BTC: effect of blocking (G9, CTC)", (*Suite).Fig6},
	{"fig7", "Successor tree algorithms vs BTC (CTC, locality 200)", (*Suite).Fig7},
	{"fig8", "High selectivity PTC: total I/O (G4 and G11)", (*Suite).Fig8},
	{"fig9", "High selectivity PTC: tuples and selection efficiency", (*Suite).Fig9},
	{"fig10", "High selectivity PTC: successor list unions", (*Suite).Fig10},
	{"fig11", "High selectivity PTC: marking percentage", (*Suite).Fig11},
	{"fig12", "High selectivity PTC: avg locality of unmarked arcs", (*Suite).Fig12},
	{"fig13", "Effect of buffer pool size (10 source nodes)", (*Suite).Fig13},
	{"fig14", "Low selectivity PTC trends (G9)", (*Suite).Fig14},
	{"table4", "JKB2 vs BTC I/O ratio against graph width", (*Suite).Table4},
	{"relatedwork", "Graph-based vs iterative and matrix baselines", (*Suite).RelatedWork},
	{"ablation-policies", "Page and list replacement policy grid (BTC)", (*Suite).AblationPolicies},
	{"ablation-marking", "Marking optimization on/off (BTC)", (*Suite).AblationMarking},
	{"ablation-clustering", "Inter-list clustering on/off (BTC)", (*Suite).AblationClustering},
	{"ablation-index", "Charging index interior I/O (B+-tree vs free index)", (*Suite).AblationIndex},
	{"condensation", "Cyclic input via SCC condensation", (*Suite).Condensation},
	{"extension-paths", "Generalized closure: path aggregates", (*Suite).ExtensionPaths},
	{"extension-session", "Warm-buffer sessions vs cold runs", (*Suite).ExtensionSession},
}

// IDs lists every registered experiment in run order.
func IDs() []string {
	ids := make([]string, len(registry))
	for i, r := range registry {
		ids[i] = r.id
	}
	return ids
}

// Titles maps experiment IDs to their titles.
func Titles() map[string]string {
	m := make(map[string]string, len(registry))
	for _, r := range registry {
		m[r.id] = r.title
	}
	return m
}

// Run executes one experiment by ID.
func (s *Suite) Run(id string) (*Table, error) {
	for _, r := range registry {
		if r.id == id {
			s.progress("running %s: %s", r.id, r.title)
			return r.fn(s)
		}
	}
	known := IDs()
	sort.Strings(known)
	return nil, fmt.Errorf("experiments: unknown experiment %q (known: %s)",
		id, strings.Join(known, ", "))
}

// RunAll executes every experiment in registry order.
func (s *Suite) RunAll() ([]*Table, error) {
	var out []*Table
	for _, r := range registry {
		t, err := s.Run(r.id)
		if err != nil {
			return out, fmt.Errorf("%s: %w", r.id, err)
		}
		out = append(out, t)
	}
	return out, nil
}
