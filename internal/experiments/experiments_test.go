package experiments

import (
	"strconv"
	"strings"
	"testing"
)

// quickSuite returns a reduced-size suite that preserves the study shapes
// but runs in seconds.
func quickSuite() *Suite {
	s := NewSuite()
	s.Nodes = 300
	s.QueryReps = 1
	return s
}

func cell(t *testing.T, tb *Table, row, col int) float64 {
	t.Helper()
	raw := tb.Rows[row][col]
	raw = strings.TrimSuffix(strings.Fields(raw)[0], "%")
	v, err := strconv.ParseFloat(raw, 64)
	if err != nil {
		t.Fatalf("cell (%d,%d) = %q not numeric: %v", row, col, tb.Rows[row][col], err)
	}
	return v
}

func TestIDsAndTitles(t *testing.T) {
	ids := IDs()
	if len(ids) != len(registry) {
		t.Fatalf("IDs() returned %d, registry has %d", len(ids), len(registry))
	}
	titles := Titles()
	for _, id := range ids {
		if titles[id] == "" {
			t.Fatalf("no title for %s", id)
		}
	}
	if _, err := quickSuite().Run("nope"); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestAllExperimentsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment sweep in -short mode")
	}
	s := quickSuite()
	tables, err := s.RunAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != len(registry) {
		t.Fatalf("RunAll produced %d tables, want %d", len(tables), len(registry))
	}
	for _, tb := range tables {
		if len(tb.Rows) == 0 {
			t.Fatalf("%s has no rows", tb.ID)
		}
		for _, r := range tb.Rows {
			if len(r) != len(tb.Columns) {
				t.Fatalf("%s: row %v does not match columns %v", tb.ID, r, tb.Columns)
			}
		}
		if !strings.Contains(tb.Render(), tb.ID) {
			t.Fatalf("%s: Render missing ID", tb.ID)
		}
		if !strings.Contains(tb.Markdown(), "|") {
			t.Fatalf("%s: Markdown malformed", tb.ID)
		}
	}
}

// TestTable2Shapes asserts the paper's qualitative Table 2 trends.
func TestTable2Shapes(t *testing.T) {
	s := quickSuite()
	tb, err := s.Run("table2")
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 12 {
		t.Fatalf("table2 has %d rows, want 12", len(tb.Rows))
	}
	// Within a fixed F, lower generation locality means a deeper graph:
	// H(G1) > H(G3), H(G4) > H(G6), etc. (columns: 5 = H)
	for _, pair := range [][2]int{{0, 2}, {3, 5}, {6, 8}, {9, 11}} {
		if cell(t, tb, pair[0], 5) <= cell(t, tb, pair[1], 5) {
			t.Errorf("H(%s) <= H(%s), expected deeper at low locality",
				tb.Rows[pair[0]][0], tb.Rows[pair[1]][0])
		}
	}
	// Irredundant locality is below overall locality wherever redundant
	// arcs are plentiful (the dense families G7-G12); on very sparse
	// graphs the trend is statistical, so only the dense half is asserted.
	for i := 6; i < 12; i++ {
		if cell(t, tb, i, 8) > cell(t, tb, i, 7)+1e-9 {
			t.Errorf("row %d: irredundant locality above overall", i)
		}
	}
}

// TestFig6Shape asserts blocking does not beat BTC.
func TestFig6Shape(t *testing.T) {
	s := quickSuite()
	tb, err := s.Run("fig6")
	if err != nil {
		t.Fatal(err)
	}
	for i := range tb.Rows {
		btc := cell(t, tb, i, 1)
		hyb3 := cell(t, tb, i, 4)
		if hyb3 < btc*0.98 {
			t.Errorf("M=%s: HYB-0.3 (%.0f) beat BTC (%.0f), paper says blocking hurts",
				tb.Rows[i][0], hyb3, btc)
		}
	}
}

// TestFig7Shape asserts the tree-algorithm findings.
func TestFig7Shape(t *testing.T) {
	s := quickSuite()
	tb, err := s.Run("fig7")
	if err != nil {
		t.Fatal(err)
	}
	for i := range tb.Rows {
		btcIO, spnIO := cell(t, tb, i, 2), cell(t, tb, i, 3)
		btcDup, spnDup := cell(t, tb, i, 6), cell(t, tb, i, 7)
		if spnIO < btcIO*0.95 {
			t.Errorf("row %d: SPN I/O (%.0f) beat BTC (%.0f)", i, spnIO, btcIO)
		}
		if spnDup >= btcDup {
			t.Errorf("row %d: SPN dups (%.0f) not below BTC (%.0f)", i, spnDup, btcDup)
		}
	}
}

// TestFig8Shape asserts SRCH's selectivity behaviour.
func TestFig8Shape(t *testing.T) {
	s := quickSuite()
	tb, err := s.Run("fig8")
	if err != nil {
		t.Fatal(err)
	}
	// SRCH I/O grows with s on each graph (column 5).
	for _, base := range []int{0, 4} { // G4 rows 0..3, G11 rows 4..7
		lo := cell(t, tb, base, 5)
		hi := cell(t, tb, base+3, 5)
		if hi <= lo {
			t.Errorf("SRCH I/O did not grow with s: %.0f -> %.0f", lo, hi)
		}
	}
	// At the smallest s SRCH is the cheapest algorithm.
	for _, base := range []int{0, 4} {
		srch := cell(t, tb, base, 5)
		for col := 2; col <= 4; col++ {
			if srch > cell(t, tb, base, col) {
				t.Errorf("row %d: SRCH (%.0f) not cheapest at s=2", base, srch)
			}
		}
	}
}

// TestFig11Shape asserts JKB2's poor marking utilization.
func TestFig11Shape(t *testing.T) {
	s := quickSuite()
	tb, err := s.Run("fig11")
	if err != nil {
		t.Fatal(err)
	}
	for i := range tb.Rows {
		btc := cell(t, tb, i, 2)
		jkb2 := cell(t, tb, i, 4)
		srch := cell(t, tb, i, 5)
		if jkb2 > btc {
			t.Errorf("row %d: JKB2 marking %.1f%% above BTC %.1f%%", i, jkb2, btc)
		}
		if srch != 0 {
			t.Errorf("row %d: SRCH marking %.1f%%, want 0", i, srch)
		}
	}
}

// TestFig13Shape asserts I/O decreases with buffer size.
func TestFig13Shape(t *testing.T) {
	s := quickSuite()
	tb, err := s.Run("fig13")
	if err != nil {
		t.Fatal(err)
	}
	// Rows come in two blocks of five (G4 M=10..50, G11 M=10..50); BTC
	// I/O at M=50 must not exceed I/O at M=10.
	for _, base := range []int{0, 5} {
		if cell(t, tb, base+4, 2) > cell(t, tb, base, 2) {
			t.Errorf("BTC I/O grew with buffer size in block %d", base)
		}
	}
}

// TestTable4Shape asserts the width correlation: the JKB2/BTC ratio on the
// narrowest graph is below that of the widest graph.
func TestTable4Shape(t *testing.T) {
	s := quickSuite()
	tb, err := s.Run("table4")
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 12 {
		t.Fatalf("table4 rows = %d", len(tb.Rows))
	}
	first := cell(t, tb, 0, 3)
	last := cell(t, tb, 11, 3)
	if first >= last {
		t.Errorf("JKB2/BTC ratio did not grow with width: %.2f -> %.2f", first, last)
	}
	// Rows must be sorted by width.
	for i := 1; i < len(tb.Rows); i++ {
		if cell(t, tb, i, 1) < cell(t, tb, i-1, 1) {
			t.Errorf("table4 not sorted by width at row %d", i)
		}
	}
}

// TestAblationMarkingShape asserts marking reduces unions.
func TestAblationMarkingShape(t *testing.T) {
	s := quickSuite()
	tb, err := s.Run("ablation-marking")
	if err != nil {
		t.Fatal(err)
	}
	for i := range tb.Rows {
		if cell(t, tb, i, 3) >= cell(t, tb, i, 4) {
			t.Errorf("row %d: marking did not reduce unions", i)
		}
	}
}

func TestCondensationRuns(t *testing.T) {
	s := quickSuite()
	tb, err := s.Run("condensation")
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 1 {
		t.Fatalf("condensation rows = %d", len(tb.Rows))
	}
	sccs := cell(t, tb, 0, 2)
	n := cell(t, tb, 0, 0)
	if sccs >= n {
		t.Errorf("no cycles were formed: %v SCCs of %v nodes", sccs, n)
	}
}

// TestRelatedWorkShape asserts the literature claims the experiment checks.
func TestRelatedWorkShape(t *testing.T) {
	s := quickSuite()
	tb, err := s.Run("relatedwork")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(tb.Rows); i += 3 {
		// The Seminaive order-of-magnitude loss needs depth to iterate
		// over; the shallow G3 row exists for the Warren density story,
		// so the claim is asserted on the deeper families only.
		if tb.Rows[i][0] != "G3" {
			btcCTC := cell(t, tb, i, 2)
			semiCTC := cell(t, tb, i, 3)
			if semiCTC < 1.5*btcCTC {
				t.Errorf("row %d: Seminaive CTC %.0f not clearly above BTC %.0f", i, semiCTC, btcCTC)
			}
		}
		// Warren's fixed cost: selections cost roughly as much as CTC.
		wCTC, wS10 := cell(t, tb, i, 4), cell(t, tb, i+1, 4)
		if wS10 < wCTC*0.8 {
			t.Errorf("row %d: Warren exploited selectivity (%.0f vs %.0f)", i, wS10, wCTC)
		}
	}
}

// TestAblationIndexShape asserts the index-charging overhead is nonzero
// but modest.
func TestAblationIndexShape(t *testing.T) {
	s := quickSuite()
	tb, err := s.Run("ablation-index")
	if err != nil {
		t.Fatal(err)
	}
	for i := range tb.Rows {
		free := cell(t, tb, i, 3)
		charged := cell(t, tb, i, 4)
		if charged < free {
			t.Errorf("row %d: charging the index reduced I/O", i)
		}
		if charged > 3*free+60 {
			t.Errorf("row %d: index overhead implausible: %.0f vs %.0f", i, charged, free)
		}
	}
}

// TestExtensionSessionShape asserts warm reruns are never dearer.
func TestExtensionSessionShape(t *testing.T) {
	s := quickSuite()
	tb, err := s.Run("extension-session")
	if err != nil {
		t.Fatal(err)
	}
	for i := range tb.Rows {
		if cell(t, tb, i, 2) > cell(t, tb, i, 1) {
			t.Errorf("row %d: warm rerun dearer than cold", i)
		}
	}
}
