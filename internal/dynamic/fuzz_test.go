package dynamic

import (
	"testing"
)

// FuzzParseBatch hammers the mutation-batch decoder: whatever the bytes,
// it must either reject the batch or return one that passes every
// invariant the apply path depends on — no panics, no half-valid batches.
func FuzzParseBatch(f *testing.F) {
	f.Add([]byte(`{"ops":[{"op":"insert","from":1,"to":2}]}`))
	f.Add([]byte(`{"ops":[{"op":"delete","from":3,"to":3},{"op":"insert","from":2,"to":1}]}`))
	f.Add([]byte(`{"seq":7,"ops":[{"op":"insert","from":1,"to":1}]}`))
	f.Add([]byte(`{"ops":[]}`))
	f.Add([]byte(`{"ops":[{"op":"upsert","from":1,"to":2}]}`))
	f.Add([]byte(`{"ops":[{"op":"insert","from":0,"to":9999}]}`))
	f.Add([]byte(`{"ops":[{"op":"insert","from":1,"to":2}]}trailing`))
	f.Add([]byte(`{"unknown":1,"ops":[{"op":"insert","from":1,"to":2}]}`))
	f.Add([]byte(`null`))
	f.Add([]byte(``))
	f.Fuzz(func(t *testing.T, data []byte) {
		const n, maxOps = 100, 8
		b, err := ParseBatch(data, n, maxOps)
		if err != nil {
			return
		}
		if len(b.Ops) == 0 || len(b.Ops) > maxOps {
			t.Fatalf("accepted batch with %d ops (limit %d)", len(b.Ops), maxOps)
		}
		for i, o := range b.Ops {
			if o.Op != OpInsert && o.Op != OpDelete {
				t.Fatalf("op %d: accepted verb %q", i, o.Op)
			}
			if o.From < 1 || o.To < 1 || int(o.From) > n || int(o.To) > n {
				t.Fatalf("op %d: accepted out-of-range arc (%d,%d)", i, o.From, o.To)
			}
		}
	})
}
