// Package dynamic turns the frozen serving stack into a read/write graph
// service: it owns the authoritative adjacency for a mutable graph, an
// append-only mutation log with per-batch sequence numbers, the in-place
// index maintenance fast paths (acyclic folds, SCC collapse on
// cycle-closing inserts, closure-preserving delete patches), and a
// generational rebuild manager that keeps serving reads from the current
// index generation while a background worker rebuilds from graph + replayed
// log and atomically swaps generations.
package dynamic

import (
	"bytes"
	"encoding/json"
	"fmt"
)

// Op verbs accepted by the mutation protocol.
const (
	OpInsert = "insert"
	OpDelete = "delete"
)

// Op is one arc mutation.
type Op struct {
	Op   string `json:"op"`
	From int32  `json:"from"`
	To   int32  `json:"to"`
}

// Batch is one atomic group of mutations. Seq is assigned by the service
// when the batch is applied; on the wire a client never sends it, but a
// recovery replay (Service.Log -> ReplayLog) carries it for continuity
// checks.
type Batch struct {
	Seq int64 `json:"seq,omitempty"`
	Ops []Op  `json:"ops"`
}

// Validate checks one op against the verb set and the node range 1..n.
func (o Op) Validate(n int) error {
	if o.Op != OpInsert && o.Op != OpDelete {
		return fmt.Errorf("dynamic: op %q is not %q or %q", o.Op, OpInsert, OpDelete)
	}
	if o.From < 1 || o.To < 1 || int(o.From) > n || int(o.To) > n {
		return fmt.Errorf("dynamic: arc (%d,%d) outside 1..%d", o.From, o.To, n)
	}
	return nil
}

// ParseBatch decodes and validates one mutation batch against a graph of n
// nodes and a per-batch op budget. The decoder is strict: unknown fields,
// trailing garbage, an empty op list, and over-budget batches are all
// rejected, so a malformed write can never be half-applied.
func ParseBatch(data []byte, n, maxOps int) (Batch, error) {
	var b Batch
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&b); err != nil {
		return Batch{}, fmt.Errorf("dynamic: batch decode: %w", err)
	}
	if dec.More() {
		return Batch{}, fmt.Errorf("dynamic: trailing data after batch")
	}
	if len(b.Ops) == 0 {
		return Batch{}, fmt.Errorf("dynamic: batch has no ops")
	}
	if maxOps > 0 && len(b.Ops) > maxOps {
		return Batch{}, fmt.Errorf("dynamic: batch has %d ops, limit %d", len(b.Ops), maxOps)
	}
	for i, o := range b.Ops {
		if err := o.Validate(n); err != nil {
			return Batch{}, fmt.Errorf("op %d: %w", i, err)
		}
	}
	return b, nil
}
