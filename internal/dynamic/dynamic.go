package dynamic

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc64"
	"sync"
	"time"

	"tcstudy/internal/graph"
	"tcstudy/internal/index"
)

// ErrBacklog is returned by Apply when the gap between applied batches and
// the serving index generation exceeds Options.MaxPending: the rebuild
// worker is behind, and admitting more writes would only grow the overlay
// the read path has to BFS over. Callers should surface it as retryable
// backpressure (HTTP 429).
var ErrBacklog = errors.New("dynamic: mutation backlog exceeds limit; rebuild in progress, retry")

// ErrFutureSeq is returned by Reach when the caller claims to have
// observed a sequence number this replica has not applied yet — a
// read-your-writes query routed to a lagging replica. Callers should
// surface it as retryable (HTTP 503) so the client or router re-routes.
var ErrFutureSeq = errors.New("dynamic: observed sequence not yet applied on this replica")

// Options tunes a Service.
type Options struct {
	// BaseFingerprint seeds the dynamic dataset fingerprint, normally
	// core.Database.Fingerprint() of the frozen base relation. Every
	// applied arc change XORs an order-independent arc hash into it, so
	// two replicas that applied the same set of effective changes agree
	// on the fingerprint no matter how their rebuilds interleaved.
	BaseFingerprint uint64
	// MaxBatchOps caps ops per batch (default 1024).
	MaxBatchOps int
	// MaxPending caps applied-but-not-yet-reindexed batches before Apply
	// sheds load with ErrBacklog (default 256).
	MaxPending int
	// Manual disables the background rebuild worker; tests drive
	// RebuildNow explicitly to hold the service in the dirty state.
	Manual bool
	// OnRebuild, when set, observes every completed generation swap. It
	// is called outside all service locks.
	OnRebuild func(generation int64, replayed int, took time.Duration)
}

// logOp is one applied op plus the classification replay needs: whether it
// changed the graph at all and, for deletes, whether removing the arc
// shrank the closure (not coverable by an in-place patch).
type logOp struct {
	Op
	applied   bool
	shrinking bool
}

type logBatch struct {
	seq int64
	ops []logOp
}

// Result reports what one applied batch did.
type Result struct {
	Seq         int64  `json:"seq"`
	Applied     int    `json:"applied"`
	Noops       int    `json:"noops"`
	Merged      int    `json:"merged_components"`
	Dirty       bool   `json:"rebuilding"`
	Generation  int64  `json:"generation"`
	Pending     int    `json:"pending"`
	Fingerprint uint64 `json:"-"`
}

// Stats is a point-in-time summary for health and metrics endpoints.
type Stats struct {
	Seq         int64
	Generation  int64
	Pending     int
	Dirty       bool
	Rebuilds    int64
	Mutations   int64
	Merges      int64
	NumArcs     int
	Fingerprint uint64
}

// Service is the mutable-graph authority for one tcserve process. It is
// safe for concurrent use; reads take a read lock and are never blocked by
// a background rebuild (the expensive build runs outside all locks and
// only the pointer swap is exclusive).
type Service struct {
	opts Options

	mu      sync.RWMutex
	n       int
	adj     []map[int32]struct{} // authoritative adjacency, nodes 1..n
	numArcs int
	fp      uint64
	seq     int64      // batches applied
	log     []logBatch // append-only; log[i].seq == i+1
	idx     *index.Index
	idxSeq  int64 // log position the serving index reflects
	dirty   bool  // a closure-shrinking delete awaits the next rebuild
	pendIns int   // inserts applied to adj but not folded into idx (while dirty)

	generation int64
	rebuilds   int64
	mutations  int64
	merges     int64

	kick chan struct{}
	done chan struct{}
	wg   sync.WaitGroup
}

var fpTable = crc64.MakeTable(crc64.ECMA)

// arcHash is the order-independent per-arc term of the dynamic dataset
// fingerprint: applied changes XOR it in, so insert followed by delete of
// the same arc cancels back to the original fingerprint.
func arcHash(u, v int32) uint64 {
	var b [8]byte
	binary.LittleEndian.PutUint32(b[0:], uint32(u))
	binary.LittleEndian.PutUint32(b[4:], uint32(v))
	return crc64.Checksum(b[:], fpTable)
}

// New builds a Service over the base graph (nodes 1..n, arcs as loaded)
// and a freshly built or loaded index for exactly that graph. Unless
// opts.Manual is set, a background worker rebuilds the index whenever a
// closure-shrinking delete dirties it.
func New(n int, arcs []graph.Arc, idx *index.Index, opts Options) (*Service, error) {
	if idx == nil {
		return nil, errors.New("dynamic: nil index")
	}
	if idx.N() != n {
		return nil, fmt.Errorf("dynamic: index covers %d nodes, graph has %d", idx.N(), n)
	}
	if idx.Stale() {
		return nil, errors.New("dynamic: refusing a stale index; rebuild it first")
	}
	if opts.MaxBatchOps <= 0 {
		opts.MaxBatchOps = 1024
	}
	if opts.MaxPending <= 0 {
		opts.MaxPending = 256
	}
	s := &Service{
		opts: opts,
		n:    n,
		adj:  make([]map[int32]struct{}, n+1),
		fp:   opts.BaseFingerprint,
		idx:  idx,
		kick: make(chan struct{}, 1),
		done: make(chan struct{}),
	}
	for _, a := range arcs {
		if a.From < 1 || a.To < 1 || int(a.From) > n || int(a.To) > n {
			return nil, fmt.Errorf("dynamic: base arc (%d,%d) outside 1..%d", a.From, a.To, n)
		}
		if s.addAdj(a.From, a.To) {
			s.numArcs++
		}
	}
	if !opts.Manual {
		s.wg.Add(1)
		go s.worker()
	}
	return s, nil
}

// Close stops the background rebuild worker. It does not flush: a dirty
// service stays dirty (the log still holds everything needed to rebuild).
func (s *Service) Close() {
	select {
	case <-s.done:
	default:
		close(s.done)
	}
	s.wg.Wait()
}

func (s *Service) addAdj(u, v int32) bool {
	if s.adj[u] == nil {
		s.adj[u] = make(map[int32]struct{})
	}
	if _, ok := s.adj[u][v]; ok {
		return false
	}
	s.adj[u][v] = struct{}{}
	return true
}

// N reports the node count (fixed at construction; the mutation protocol
// changes arcs, not the vertex set).
func (s *Service) N() int { return s.n }

// SetOnRebuild installs the rebuild observer after construction. The
// serving layer owns the metrics and trace ring the hook feeds but is
// built after the service, so it cannot pass the hook through Options.
func (s *Service) SetOnRebuild(f func(generation int64, replayed int, took time.Duration)) {
	s.mu.Lock()
	s.opts.OnRebuild = f
	s.mu.Unlock()
}

// MaxBatchOps exposes the per-batch op budget for request validation.
func (s *Service) MaxBatchOps() int { return s.opts.MaxBatchOps }

// Apply validates and applies one batch atomically: either every op is
// checked and the whole batch is applied (idempotent no-ops included), or
// nothing is. It returns ErrBacklog when the rebuild worker is too far
// behind to admit more writes.
func (s *Service) Apply(ops []Op) (Result, error) {
	return s.apply(ops, true)
}

func (s *Service) apply(ops []Op, admission bool) (Result, error) {
	if len(ops) == 0 {
		return Result{}, errors.New("dynamic: empty batch")
	}
	if len(ops) > s.opts.MaxBatchOps {
		return Result{}, fmt.Errorf("dynamic: batch has %d ops, limit %d", len(ops), s.opts.MaxBatchOps)
	}
	for i, o := range ops {
		if err := o.Validate(s.n); err != nil {
			return Result{}, fmt.Errorf("op %d: %w", i, err)
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if admission && int(s.seq-s.idxSeq) >= s.opts.MaxPending {
		return Result{}, ErrBacklog
	}
	s.seq++
	lb := logBatch{seq: s.seq, ops: make([]logOp, 0, len(ops))}
	res := Result{Seq: s.seq}
	for _, o := range ops {
		lo := s.applyOpLocked(o, &res)
		lb.ops = append(lb.ops, lo)
	}
	s.log = append(s.log, lb)
	if !s.dirty {
		s.idxSeq = s.seq
	} else if !s.opts.Manual {
		select {
		case s.kick <- struct{}{}:
		default:
		}
	}
	res.Dirty = s.dirty
	res.Generation = s.generation
	res.Pending = int(s.seq - s.idxSeq)
	res.Fingerprint = s.fp
	return res, nil
}

func (s *Service) applyOpLocked(o Op, res *Result) logOp {
	lo := logOp{Op: o}
	if o.Op == OpInsert {
		if !s.addAdj(o.From, o.To) {
			res.Noops++
			return lo
		}
		lo.applied = true
		s.numArcs++
		s.fp ^= arcHash(o.From, o.To)
		s.mutations++
		res.Applied++
		if s.dirty {
			s.pendIns++
			return lo
		}
		merged, err := s.idx.InsertArcMerge(o.From, o.To)
		if err != nil {
			// Defensive: the only in-range failure is a stale index, which
			// New refuses and the merge path never produces. Fall back to
			// the rebuild path rather than serving wrong answers.
			s.dirty = true
			s.pendIns++
			return lo
		}
		s.merges += int64(merged)
		res.Merged += merged
		return lo
	}
	// delete
	if _, ok := s.adj[o.From][o.To]; !ok {
		res.Noops++
		return lo
	}
	delete(s.adj[o.From], o.To)
	lo.applied = true
	s.numArcs--
	s.fp ^= arcHash(o.From, o.To)
	s.mutations++
	res.Applied++
	if o.From != o.To {
		// A delete is patchable iff it preserves the closure: u must still
		// reach v through the remaining arcs. The check runs on the
		// authoritative adjacency, so it also certifies intra-SCC deletes
		// that do not split their component.
		lo.shrinking = !s.bfsLocked(o.From, o.To)
	}
	if s.dirty {
		return lo
	}
	switch {
	case o.From == o.To:
		s.idx.DeleteSelfLoop(o.From)
	case !lo.shrinking:
		s.idx.DeleteRedundantArc(o.From, o.To)
	default:
		s.dirty = true
	}
	return lo
}

// bfsLocked answers closure-semantics reachability (path length >= 1) on
// the authoritative adjacency. It is the overlay read path while the index
// is dirty and the delete classifier's certificate; both need the true
// current graph, which only the adjacency holds.
func (s *Service) bfsLocked(src, dst int32) bool {
	seen := make([]bool, s.n+1)
	var queue []int32
	for v := range s.adj[src] {
		if !seen[v] {
			seen[v] = true
			queue = append(queue, v)
		}
	}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		if v == dst {
			return true
		}
		for w := range s.adj[v] {
			if !seen[w] {
				seen[w] = true
				queue = append(queue, w)
			}
		}
	}
	return seen[dst]
}

// Reach answers src -> dst with read-your-writes semantics: observed is
// the highest batch sequence number the caller has seen acknowledged (0
// for none). If this replica has not applied that batch yet it refuses
// with ErrFutureSeq instead of serving an older state. The boolean
// indexHit reports whether the sealed index answered (false means the
// bounded delta overlay — a BFS over the authoritative adjacency — was
// consulted because a rebuild is in flight).
func (s *Service) Reach(src, dst int32, observed int64) (reachable, indexHit bool, seq int64, err error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if observed > s.seq {
		return false, false, s.seq, ErrFutureSeq
	}
	if src < 1 || dst < 1 || int(src) > s.n || int(dst) > s.n {
		return false, !s.dirty, s.seq, nil
	}
	if !s.dirty {
		return s.idx.Reach(src, dst), true, s.seq, nil
	}
	// Dirty: the index is missing a closure-shrinking delete, so a
	// positive index answer cannot be trusted. A negative one can, as
	// long as no un-folded inserts are pending — deletes only shrink
	// reachability.
	if s.pendIns == 0 && !s.idx.Reach(src, dst) {
		return false, false, s.seq, nil
	}
	return s.bfsLocked(src, dst), false, s.seq, nil
}

// Index returns the currently serving index generation.
func (s *Service) Index() *index.Index {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.idx
}

// Arcs snapshots the authoritative adjacency as a sorted arc list.
func (s *Service) Arcs() []graph.Arc {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.arcsLocked()
}

func (s *Service) arcsLocked() []graph.Arc {
	arcs := make([]graph.Arc, 0, s.numArcs)
	for u := int32(1); u <= int32(s.n); u++ {
		for v := range s.adj[u] {
			arcs = append(arcs, graph.Arc{From: u, To: v})
		}
	}
	return arcs
}

// Stats summarizes the service state.
func (s *Service) Stats() Stats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return Stats{
		Seq:         s.seq,
		Generation:  s.generation,
		Pending:     int(s.seq - s.idxSeq),
		Dirty:       s.dirty,
		Rebuilds:    s.rebuilds,
		Mutations:   s.mutations,
		Merges:      s.merges,
		NumArcs:     s.numArcs,
		Fingerprint: s.fp,
	}
}

// Log snapshots the applied mutation log for persistence or crash-recovery
// replay into a fresh service (see ReplayLog).
func (s *Service) Log() []Batch {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]Batch, len(s.log))
	for i, b := range s.log {
		ops := make([]Op, len(b.ops))
		for j, lo := range b.ops {
			ops[j] = lo.Op
		}
		out[i] = Batch{Seq: b.seq, Ops: ops}
	}
	return out
}

// ReplayLog re-applies a recovered mutation log to a service freshly
// constructed from the same base graph. Sequence numbers must continue
// from the service's current position; admission control is bypassed
// (recovery must not shed its own history).
func (s *Service) ReplayLog(batches []Batch) error {
	for _, b := range batches {
		res, err := s.apply(b.Ops, false)
		if err != nil {
			return fmt.Errorf("dynamic: replay batch %d: %w", b.Seq, err)
		}
		if b.Seq != 0 && res.Seq != b.Seq {
			return fmt.Errorf("dynamic: replay produced seq %d for logged batch %d", res.Seq, b.Seq)
		}
	}
	return nil
}
