package dynamic

import (
	"time"

	"tcstudy/internal/graph"
	"tcstudy/internal/index"
)

// worker is the generational rebuild loop: every kick (a closure-shrinking
// delete while clean) triggers one RebuildNow. The channel has capacity
// one, so bursts of dirtying deletes coalesce into a single rebuild that
// replays all of them.
func (s *Service) worker() {
	defer s.wg.Done()
	for {
		select {
		case <-s.done:
			return
		case <-s.kick:
			s.RebuildNow()
		}
	}
}

// RebuildNow drives one generational rebuild to completion (a no-op when
// the service is clean). The cycle: snapshot the authoritative adjacency
// and sequence position under a read lock, build a fresh index entirely
// outside the locks (reads keep being served from the old generation via
// the overlay), then under the write lock replay any batches applied since
// the snapshot into the new index in place and atomically swap it in. If
// the replay hits another closure-shrinking delete the new index would be
// wrong too, so the loop snapshots again and rebuilds.
func (s *Service) RebuildNow() error {
	for {
		start := time.Now()
		s.mu.RLock()
		if !s.dirty {
			s.mu.RUnlock()
			return nil
		}
		snapSeq := s.seq
		n := s.n
		arcs := s.arcsLocked()
		s.mu.RUnlock()

		nx, err := index.Build(graph.New(n, arcs))
		if err != nil {
			// Build only fails when the condensation is not acyclic, which
			// Condense guarantees against; surface it rather than spin.
			return err
		}

		s.mu.Lock()
		replayed := 0
		ok := true
		for _, b := range s.log[snapSeq:] {
			if !replayBatch(nx, b) {
				ok = false
				break
			}
			replayed++
		}
		if !ok {
			s.mu.Unlock()
			continue
		}
		s.idx = nx
		s.idxSeq = s.seq
		s.dirty = false
		s.pendIns = 0
		s.generation++
		s.rebuilds++
		gen := s.generation
		hook := s.opts.OnRebuild
		s.mu.Unlock()
		if hook != nil {
			hook(gen, replayed, time.Since(start))
		}
		return nil
	}
}

// replayBatch folds one logged batch into a freshly built index whose
// graph state matches the log position just before the batch. It reports
// false when the batch contains a closure-shrinking delete, which no
// in-place patch covers — the caller must rebuild from a later snapshot.
func replayBatch(nx *index.Index, b logBatch) bool {
	for _, lo := range b.ops {
		if !lo.applied {
			continue
		}
		if lo.Op.Op == OpInsert {
			if _, err := nx.InsertArcMerge(lo.From, lo.To); err != nil {
				return false
			}
			continue
		}
		switch {
		case lo.From == lo.To:
			if nx.DeleteSelfLoop(lo.From) != nil {
				return false
			}
		case lo.shrinking:
			return false
		default:
			if nx.DeleteRedundantArc(lo.From, lo.To) != nil {
				return false
			}
		}
	}
	return true
}
