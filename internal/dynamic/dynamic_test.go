package dynamic

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"tcstudy/internal/graph"
	"tcstudy/internal/index"
)

// arcSet is the test's own authoritative graph, mutated in lockstep with
// the service so the oracle is independent of everything the service
// maintains.
type arcSet map[[2]int32]bool

func (a arcSet) apply(o Op) {
	k := [2]int32{o.From, o.To}
	if o.Op == OpInsert {
		a[k] = true
	} else {
		delete(a, k)
	}
}

func (a arcSet) arcs() []graph.Arc {
	var out []graph.Arc
	for k := range a {
		out = append(out, graph.Arc{From: k[0], To: k[1]})
	}
	return out
}

// oracleReach is a fresh BFS per query — closure semantics, path length
// >= 1 — over the test's own arc set.
func oracleReach(n int, a arcSet, src, dst int32) bool {
	adj := make(map[int32][]int32)
	for k := range a {
		adj[k[0]] = append(adj[k[0]], k[1])
	}
	seen := make([]bool, n+1)
	var queue []int32
	for _, v := range adj[src] {
		if !seen[v] {
			seen[v] = true
			queue = append(queue, v)
		}
	}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, w := range adj[v] {
			if !seen[w] {
				seen[w] = true
				queue = append(queue, w)
			}
		}
	}
	return seen[dst]
}

func newService(t *testing.T, n int, arcs []graph.Arc, opts Options) (*Service, arcSet) {
	t.Helper()
	g := graph.New(n, arcs)
	idx, err := index.Build(g)
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(n, g.Arcs(), idx, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	set := arcSet{}
	for _, a := range g.Arcs() {
		set[[2]int32{a.From, a.To}] = true
	}
	return s, set
}

// checkAllPairs pins every Reach answer to the oracle.
func checkAllPairs(t *testing.T, s *Service, n int, set arcSet, ctx string) {
	t.Helper()
	for u := int32(1); u <= int32(n); u++ {
		for v := int32(1); v <= int32(n); v++ {
			got, _, _, err := s.Reach(u, v, 0)
			if err != nil {
				t.Fatalf("%s: Reach(%d,%d): %v", ctx, u, v, err)
			}
			if want := oracleReach(n, set, u, v); got != want {
				t.Fatalf("%s: Reach(%d,%d) = %t, oracle %t", ctx, u, v, got, want)
			}
		}
	}
}

func baseChain(n int32) []graph.Arc {
	var arcs []graph.Arc
	for u := int32(1); u < n; u++ {
		arcs = append(arcs, graph.Arc{From: u, To: u + 1})
	}
	return arcs
}

func TestApplyBasicsAndFingerprint(t *testing.T) {
	s, set := newService(t, 5, baseChain(5), Options{Manual: true, BaseFingerprint: 42})
	base := s.Stats().Fingerprint
	if base != 42 {
		t.Fatalf("fingerprint %d before any mutation, want the base 42", base)
	}

	res, err := s.Apply([]Op{{Op: OpInsert, From: 1, To: 3}, {Op: OpInsert, From: 1, To: 2}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Seq != 1 || res.Applied != 1 || res.Noops != 1 || res.Dirty {
		t.Fatalf("unexpected result %+v", res)
	}
	set.apply(Op{Op: OpInsert, From: 1, To: 3})
	checkAllPairs(t, s, 5, set, "after insert")

	// Deleting the arc just inserted cancels the fingerprint exactly.
	if _, err := s.Apply([]Op{{Op: OpDelete, From: 1, To: 3}}); err != nil {
		t.Fatal(err)
	}
	set.apply(Op{Op: OpDelete, From: 1, To: 3})
	if got := s.Stats().Fingerprint; got != base {
		t.Fatalf("fingerprint %016x after insert+delete, want base %016x", got, base)
	}
	checkAllPairs(t, s, 5, set, "after cancelling delete")

	// Validation failures apply nothing.
	if _, err := s.Apply([]Op{{Op: OpInsert, From: 1, To: 2}, {Op: "upsert", From: 1, To: 2}}); err == nil {
		t.Fatal("bad verb accepted")
	}
	if _, err := s.Apply([]Op{{Op: OpInsert, From: 0, To: 2}}); err == nil {
		t.Fatal("out-of-range op accepted")
	}
	if _, err := s.Apply(nil); err == nil {
		t.Fatal("empty batch accepted")
	}
	if got := s.Stats().Seq; got != 2 {
		t.Fatalf("rejected batches moved seq to %d", got)
	}
}

func TestCycleInsertMergesInsteadOfStale(t *testing.T) {
	s, set := newService(t, 4, []graph.Arc{
		{From: 1, To: 2}, {From: 2, To: 3}, {From: 3, To: 4},
	}, Options{Manual: true})
	res, err := s.Apply([]Op{{Op: OpInsert, From: 4, To: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Merged != 3 || res.Dirty {
		t.Fatalf("cycle insert result %+v, want 3 merged components and no rebuild", res)
	}
	set.apply(Op{Op: OpInsert, From: 4, To: 1})
	checkAllPairs(t, s, 4, set, "after cycle insert")
	if _, hit, _, _ := s.Reach(2, 1, 0); !hit {
		t.Fatal("post-merge read did not hit the index")
	}
	if s.Index().Stale() {
		t.Fatal("merge path left the index stale")
	}
}

func TestShrinkingDeleteOverlayAndRebuild(t *testing.T) {
	s, set := newService(t, 5, baseChain(5), Options{Manual: true})
	res, err := s.Apply([]Op{{Op: OpDelete, From: 3, To: 4}})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Dirty || res.Pending != 1 {
		t.Fatalf("shrinking delete result %+v, want dirty with pending 1", res)
	}
	set.apply(Op{Op: OpDelete, From: 3, To: 4})

	// Mid-rebuild (dirty) answers come from the overlay and must already
	// reflect the delete.
	got, hit, _, err := s.Reach(1, 5, 0)
	if err != nil || got || hit {
		t.Fatalf("dirty Reach(1,5) = (%t, hit=%t, err=%v), want false via overlay", got, hit, err)
	}
	checkAllPairs(t, s, 5, set, "dirty")

	// More writes while dirty, including an insert the overlay must see.
	if _, err := s.Apply([]Op{{Op: OpInsert, From: 2, To: 5}}); err != nil {
		t.Fatal(err)
	}
	set.apply(Op{Op: OpInsert, From: 2, To: 5})
	checkAllPairs(t, s, 5, set, "dirty with pending insert")

	if err := s.RebuildNow(); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Dirty || st.Generation != 1 || st.Pending != 0 {
		t.Fatalf("post-rebuild stats %+v", st)
	}
	checkAllPairs(t, s, 5, set, "after rebuild")
	if _, hit, _, _ := s.Reach(1, 3, 0); !hit {
		t.Fatal("post-rebuild read did not hit the index")
	}
}

func TestReadYourWritesFutureSeq(t *testing.T) {
	s, _ := newService(t, 3, baseChain(3), Options{Manual: true})
	if _, _, _, err := s.Reach(1, 2, 1); !errors.Is(err, ErrFutureSeq) {
		t.Fatalf("Reach with unapplied observed seq returned %v, want ErrFutureSeq", err)
	}
	if _, err := s.Apply([]Op{{Op: OpInsert, From: 3, To: 1}}); err != nil {
		t.Fatal(err)
	}
	if _, _, seq, err := s.Reach(1, 2, 1); err != nil || seq != 1 {
		t.Fatalf("Reach at observed=applied seq: seq=%d err=%v", seq, err)
	}
}

func TestBacklogAdmission(t *testing.T) {
	s, _ := newService(t, 6, baseChain(6), Options{Manual: true, MaxPending: 2})
	// Two shrinking deletes fill the pending window.
	for _, o := range []Op{{Op: OpDelete, From: 1, To: 2}, {Op: OpDelete, From: 3, To: 4}} {
		if _, err := s.Apply([]Op{o}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.Apply([]Op{{Op: OpInsert, From: 1, To: 3}}); !errors.Is(err, ErrBacklog) {
		t.Fatalf("third batch returned %v, want ErrBacklog", err)
	}
	if err := s.RebuildNow(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Apply([]Op{{Op: OpInsert, From: 1, To: 3}}); err != nil {
		t.Fatalf("post-rebuild apply still rejected: %v", err)
	}
}

// TestDeleteSchedulesMatchOracle is the delete-path property test: 50
// seeded DAG mutation schedules, heavy on deletes, pinning every post-batch
// Reach answer to a fresh BFS oracle — in the dirty state and after
// explicit rebuilds.
func TestDeleteSchedulesMatchOracle(t *testing.T) {
	const n = 16
	for seed := int64(1); seed <= 50; seed++ {
		rng := rand.New(rand.NewSource(seed))
		var base []graph.Arc
		for u := int32(1); u < n; u++ {
			for d := int32(1); d <= 3; d++ {
				if u+d <= n && rng.Intn(3) > 0 {
					base = append(base, graph.Arc{From: u, To: u + d})
				}
			}
		}
		s, set := newService(t, n, base, Options{Manual: true})
		for step := 0; step < 12; step++ {
			var ops []Op
			for len(ops) < 1+rng.Intn(3) {
				o := Op{Op: OpInsert, From: int32(rng.Intn(n) + 1), To: int32(rng.Intn(n) + 1)}
				if rng.Intn(2) == 0 {
					o.Op = OpDelete
					// Bias deletes toward arcs that exist so they bite.
					if existing := set.arcs(); len(existing) > 0 && rng.Intn(4) > 0 {
						pick := existing[rng.Intn(len(existing))]
						o.From, o.To = pick.From, pick.To
					}
				}
				ops = append(ops, o)
			}
			if _, err := s.Apply(ops); err != nil {
				t.Fatalf("seed %d step %d: %v", seed, step, err)
			}
			for _, o := range ops {
				set.apply(o)
			}
			ctx := fmt.Sprintf("seed %d step %d", seed, step)
			checkAllPairs(t, s, n, set, ctx)
			if step%5 == 4 {
				if err := s.RebuildNow(); err != nil {
					t.Fatalf("%s: rebuild: %v", ctx, err)
				}
				checkAllPairs(t, s, n, set, ctx+" post-rebuild")
			}
		}
	}
}

// TestCrashRecoveryReplay rebuilds a fresh service from the base graph
// plus the survivor's mutation log and demands identical state: same
// sequence, same fingerprint, same answers.
func TestCrashRecoveryReplay(t *testing.T) {
	const n = 12
	rng := rand.New(rand.NewSource(99))
	base := baseChain(n)
	a, set := newService(t, n, base, Options{Manual: true, BaseFingerprint: 7})
	for step := 0; step < 20; step++ {
		o := Op{Op: OpInsert, From: int32(rng.Intn(n) + 1), To: int32(rng.Intn(n) + 1)}
		if rng.Intn(3) == 0 {
			if existing := set.arcs(); len(existing) > 0 {
				pick := existing[rng.Intn(len(existing))]
				o = Op{Op: OpDelete, From: pick.From, To: pick.To}
			}
		}
		if _, err := a.Apply([]Op{o}); err != nil {
			t.Fatal(err)
		}
		set.apply(o)
		if step == 10 {
			if err := a.RebuildNow(); err != nil {
				t.Fatal(err)
			}
		}
	}

	b, _ := newService(t, n, base, Options{Manual: true, BaseFingerprint: 7})
	if err := b.ReplayLog(a.Log()); err != nil {
		t.Fatal(err)
	}
	sa, sb := a.Stats(), b.Stats()
	if sa.Seq != sb.Seq {
		t.Fatalf("replayed seq %d, survivor %d", sb.Seq, sa.Seq)
	}
	if sa.Fingerprint != sb.Fingerprint {
		t.Fatalf("replayed fingerprint %016x, survivor %016x", sb.Fingerprint, sa.Fingerprint)
	}
	if sa.NumArcs != sb.NumArcs {
		t.Fatalf("replayed arcs %d, survivor %d", sb.NumArcs, sa.NumArcs)
	}
	checkAllPairs(t, b, n, set, "replayed service")
	// The survivor rebuilt mid-history; the replayed service may not have.
	// Rebuild both and the serving generations must agree on every answer.
	if err := b.RebuildNow(); err != nil {
		t.Fatal(err)
	}
	checkAllPairs(t, b, n, set, "replayed service post-rebuild")
}

// TestConcurrentMutateAndRead exercises the background worker under the
// race detector: writers, readers and the rebuild loop all run at once.
func TestConcurrentMutateAndRead(t *testing.T) {
	const n = 32
	s, _ := newService(t, n, baseChain(n), Options{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < 50; i++ {
				o := Op{Op: OpInsert, From: int32(rng.Intn(n) + 1), To: int32(rng.Intn(n) + 1)}
				if rng.Intn(3) == 0 {
					o.Op = OpDelete
				}
				if _, err := s.Apply([]Op{o}); err != nil && !errors.Is(err, ErrBacklog) {
					t.Errorf("apply: %v", err)
					return
				}
			}
		}(w)
	}
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + r)))
			for i := 0; i < 200; i++ {
				u, v := int32(rng.Intn(n)+1), int32(rng.Intn(n)+1)
				if _, _, _, err := s.Reach(u, v, 0); err != nil {
					t.Errorf("reach: %v", err)
					return
				}
			}
		}(r)
	}
	wg.Wait()
}
