package slist

import (
	"math/rand"
	"testing"

	"tcstudy/internal/buffer"
	"tcstudy/internal/pagedisk"
)

// TestFlushListThenRelocationHazard is the regression test for a bug found
// during development: flushing a list and then growing *another* list can
// split a shared page and relocate the flushed list onto fresh, unflushed
// pages. Callers must flush after the last append (as the engine does);
// this test pins the storage-level behaviour the fix relies on: after a
// relocation, FlushList written state must match the directory, not the
// stale pages.
func TestFlushListThenRelocationHazard(t *testing.T) {
	s, d := newStore(t, 8, "smallest", 4)
	// List 0 small, list 1 fills the rest of the page.
	if err := s.AppendAll(0, []int32{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	big := make([]int32, 29*BlockEntries)
	for i := range big {
		big[i] = int32(100 + i)
	}
	if err := s.AppendAll(1, big); err != nil {
		t.Fatal(err)
	}
	// Premature flush of list 0, then growth of list 1 splits the page
	// and relocates list 0.
	if err := s.FlushList(0); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendAll(1, []int32{9999, 9998}); err != nil {
		t.Fatal(err)
	}
	if s.Stats().ListsMoved == 0 {
		t.Fatal("test setup: no relocation happened")
	}
	// Flushing again (after the last append) and discarding the buffer
	// must preserve list 0's contents on disk.
	if err := s.FlushList(0); err != nil {
		t.Fatal(err)
	}
	if err := s.FlushList(1); err != nil {
		t.Fatal(err)
	}
	s.DiscardAll()
	wantList(t, s, 0, []int32{1, 2, 3})
	wantList(t, s, 1, append(big, 9999, 9998))
	_ = d
}

// TestRelocatedListRemainsAppendable: growth continues cleanly after a
// list was moved by a split.
func TestRelocatedListRemainsAppendable(t *testing.T) {
	s, _ := newStore(t, 8, "smallest", 4)
	if err := s.AppendAll(0, []int32{1}); err != nil {
		t.Fatal(err)
	}
	big := make([]int32, 29*BlockEntries)
	for i := range big {
		big[i] = int32(i)
	}
	if err := s.AppendAll(1, big); err != nil {
		t.Fatal(err)
	}
	if err := s.Append(1, -5); err != nil { // forces the split, moving list 0
		t.Fatal(err)
	}
	if err := s.AppendAll(0, []int32{2, 3}); err != nil {
		t.Fatal(err)
	}
	wantList(t, s, 0, []int32{1, 2, 3})
}

// TestOwnerFieldLimit documents the 16-bit block owner field: the store
// rejects list IDs beyond 65535 loudly rather than corrupting state.
func TestOwnerFieldLimit(t *testing.T) {
	s, _ := newStore(t, 8, "smallest", 70000)
	defer func() {
		if recover() == nil {
			t.Fatal("oversized list ID did not panic")
		}
	}()
	_ = s.Append(66000, 1)
}

// TestNegativeEntriesRoundTrip: the tree encodings store negated parent
// markers; the engine relies on sign preservation.
func TestNegativeEntriesRoundTrip(t *testing.T) {
	s, _ := newStore(t, 8, "smallest", 2)
	vals := []int32{-1, 5, -2147483647, 2147483647, -42}
	if err := s.AppendAll(0, vals); err != nil {
		t.Fatal(err)
	}
	wantList(t, s, 0, vals)
}

// TestManySmallListsAcrossSplits drives hundreds of interleaved lists with
// a tiny pool under every list policy and confirms directory integrity.
func TestManySmallListsAcrossSplits(t *testing.T) {
	for _, pol := range ListPolicyNames() {
		t.Run(pol, func(t *testing.T) {
			s, _ := newStore(t, 4, pol, 300)
			ref := make([][]int32, 300)
			rng := rand.New(rand.NewSource(99))
			for i := 0; i < 20000; i++ {
				id := int32(rng.Intn(300))
				v := rng.Int31()
				if v < 0 {
					v = -v
				}
				if err := s.Append(id, v); err != nil {
					t.Fatal(err)
				}
				ref[id] = append(ref[id], v)
			}
			for id := int32(0); id < 300; id++ {
				wantList(t, s, id, ref[id])
			}
			if s.Pool().PinnedFrames() != 0 {
				t.Fatal("pins leaked")
			}
		})
	}
}

// TestFlushListCountsChainWalkIO: locating the chain goes through the
// buffer pool, so flushing a cold list is itself charged.
func TestFlushListCountsChainWalkIO(t *testing.T) {
	s, d := newStore(t, 4, "smallest", 2)
	vals := make([]int32, 2000)
	for i := range vals {
		vals[i] = int32(i)
	}
	if err := s.AppendAll(0, vals); err != nil {
		t.Fatal(err)
	}
	if err := s.Pool().FlushAll(); err != nil {
		t.Fatal(err)
	}
	s.DiscardAll()
	d.ResetStats()
	if err := s.FlushList(0); err != nil {
		t.Fatal(err)
	}
	if d.Stats().Reads == 0 {
		t.Fatal("cold FlushList read no pages")
	}
	if d.Stats().Writes != 0 {
		t.Fatal("clean list was rewritten")
	}
}

// TestStoreFileIsolation: two stores on one pool never cross pages.
func TestStoreFileIsolation(t *testing.T) {
	d := pagedisk.New()
	polPage, err := buffer.NewPolicy("lru", 6)
	if err != nil {
		t.Fatal(err)
	}
	pool := buffer.New(d, 6, polPage)
	lp, _ := NewListPolicy("smallest")
	a := NewStore(pool, "a", 4, lp)
	b := NewStore(pool, "b", 4, lp)
	for i := int32(0); i < 1000; i++ {
		if err := a.Append(i%4, i); err != nil {
			t.Fatal(err)
		}
		if err := b.Append(i%4, -i-1); err != nil {
			t.Fatal(err)
		}
	}
	for id := int32(0); id < 4; id++ {
		av, err := a.ReadAll(id)
		if err != nil {
			t.Fatal(err)
		}
		for _, v := range av {
			if v < 0 {
				t.Fatal("store a contains store b's values")
			}
		}
		bv, err := b.ReadAll(id)
		if err != nil {
			t.Fatal(err)
		}
		for _, v := range bv {
			if v >= 0 {
				t.Fatal("store b contains store a's values")
			}
		}
	}
}
