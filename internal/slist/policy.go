package slist

import (
	"fmt"
	"math/rand"
)

// ListPolicy chooses which list to relocate when a page split is needed
// (Section 5.1: "a list replacement policy is used when a successor list
// expands to the point where at least one of the other lists on the page
// must be moved to a new page"). Candidates are the other lists owning
// blocks on the full page; length and lastUse expose directory metadata.
type ListPolicy interface {
	Name() string
	Victim(cands []int32, length func(int32) int32, lastUse func(int32) int64) int32
}

// NewListPolicy constructs a list replacement policy by name.
// Known names: "smallest", "largest", "lru", "random".
func NewListPolicy(name string) (ListPolicy, error) {
	switch name {
	case "smallest":
		return extremal{small: true}, nil
	case "largest":
		return extremal{small: false}, nil
	case "lru":
		return lruList{}, nil
	case "random":
		return &randomList{rng: rand.New(rand.NewSource(1))}, nil
	}
	return nil, fmt.Errorf("slist: unknown list replacement policy %q", name)
}

// ListPolicyNames lists the built-in list replacement policies.
func ListPolicyNames() []string { return []string{"smallest", "largest", "lru", "random"} }

// extremal relocates the shortest (cheapest to move) or the longest
// (frees the most blocks) candidate. Ties break on the lower list ID so
// runs are deterministic.
type extremal struct{ small bool }

func (e extremal) Name() string {
	if e.small {
		return "smallest"
	}
	return "largest"
}

func (e extremal) Victim(cands []int32, length func(int32) int32, _ func(int32) int64) int32 {
	best := cands[0]
	for _, c := range cands[1:] {
		lc, lb := length(c), length(best)
		if e.small && (lc < lb || (lc == lb && c < best)) {
			best = c
		}
		if !e.small && (lc > lb || (lc == lb && c < best)) {
			best = c
		}
	}
	return best
}

// lruList relocates the least recently used candidate.
type lruList struct{}

func (lruList) Name() string { return "lru" }

func (lruList) Victim(cands []int32, _ func(int32) int32, lastUse func(int32) int64) int32 {
	best := cands[0]
	for _, c := range cands[1:] {
		if lastUse(c) < lastUse(best) || (lastUse(c) == lastUse(best) && c < best) {
			best = c
		}
	}
	return best
}

// randomList relocates a uniformly random candidate with a fixed seed.
type randomList struct{ rng *rand.Rand }

func (*randomList) Name() string { return "random" }

func (r *randomList) Victim(cands []int32, _ func(int32) int32, _ func(int32) int64) int32 {
	return cands[r.rng.Intn(len(cands))]
}
