package slist

import (
	"testing"

	"tcstudy/internal/buffer"
	"tcstudy/internal/pagedisk"
)

func newBenchStore(b *testing.B, frames, numLists int) *Store {
	b.Helper()
	d := pagedisk.New()
	pol, err := buffer.NewPolicy("lru", frames)
	if err != nil {
		b.Fatal(err)
	}
	pool := buffer.New(d, frames, pol)
	lp, err := NewListPolicy("smallest")
	if err != nil {
		b.Fatal(err)
	}
	return NewStore(pool, "lists", numLists, lp)
}

// BenchmarkIterate walks a populated list with a reused value iterator —
// the successor-fetch loop every algorithm's computation phase runs. Must
// stay at zero allocs/op.
func BenchmarkIterate(b *testing.B) {
	s := newBenchStore(b, 16, 8)
	const entries = 2000
	vals := make([]int32, entries)
	for i := range vals {
		vals[i] = int32(i)
	}
	if err := s.AppendAll(0, vals); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var it Iterator
	for i := 0; i < b.N; i++ {
		it.Reset(s, 0)
		n := 0
		for {
			if _, ok := it.Next(); !ok {
				break
			}
			n++
		}
		it.Close()
		if err := it.Err(); err != nil {
			b.Fatal(err)
		}
		if n != entries {
			b.Fatalf("iterated %d entries, want %d", n, entries)
		}
	}
}

// BenchmarkAppendWithSplits grows interleaved lists so the page-split
// machinery (ownersOnPage, relocate) runs constantly; scratch reuse keeps
// steady-state allocations near zero.
func BenchmarkAppendWithSplits(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := newBenchStore(b, 64, 64)
		for round := 0; round < 40; round++ {
			for id := int32(0); id < 64; id++ {
				if err := s.Append(id, int32(round)); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
}
