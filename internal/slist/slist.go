// Package slist implements the successor-list storage engine of the study
// (Sections 4 and 5.1 of the paper).
//
// Successor lists (and the successor/predecessor trees of the SPN and JKB
// algorithms, which are lists with sign-encoded structure) are stored on
// 2048-byte pages, each divided into 30 fixed-length blocks of 15 four-byte
// entries — 450 successors per page, exactly the paper's layout. A list is
// a chain of blocks linked by (page, block) pointers.
//
// Clustering follows the paper:
//
//   - inter-list clustering: new lists are packed onto a shared fill page in
//     creation order (the restructuring phase creates them in the order the
//     computation phase will consume them);
//   - intra-list clustering: a growing list first takes free blocks on its
//     own page; when the page is full, a *list replacement policy* chooses
//     another list on the page to relocate (a page split, Section 5.1), so
//     the growing list's blocks stay together. A list that fills a whole
//     page spills onto dedicated overflow pages.
//
// The per-list directory (head, tail, length) is kept in memory, mirroring
// the paper's in-memory node-to-list mapping. All page traffic goes through
// the buffer pool and is therefore counted as page I/O.
package slist

import (
	"encoding/binary"
	"fmt"

	"tcstudy/internal/buffer"
	"tcstudy/internal/pagedisk"
)

const (
	// BlocksPerPage and BlockEntries give the paper's page layout:
	// 30 blocks of 15 successors, 450 successors per 2048-byte page.
	BlocksPerPage = 30
	BlockEntries  = 15

	headerSize = 8
	blockSize  = 68 // 15*4 entry bytes + 4 next-page + 1 next-blk + 1 used + 2 owner
)

// Ref addresses one block on one page.
type Ref struct {
	Page pagedisk.PageID
	Blk  int16
}

// nilRef marks the end of a chain or an empty list.
var nilRef = Ref{Page: pagedisk.InvalidPage, Blk: -1}

func (r Ref) valid() bool { return r.Page != pagedisk.InvalidPage }

// Stats counts storage-engine events. Page I/O is accounted by the buffer
// pool and disk; these counters capture the split machinery itself.
type Stats struct {
	Splits       int64 // page-split events (a victim list relocated)
	ListsMoved   int64 // victim lists relocated
	EntriesMoved int64 // entries copied while relocating
	Overflows    int64 // pages dedicated to a single large list
}

// Store is a collection of numbered successor lists in one disk file.
// It is not safe for concurrent use.
type Store struct {
	pool   *buffer.Pool
	file   pagedisk.FileID
	victim ListPolicy

	head, tail []Ref
	length     []int32
	lastUse    []int64
	clock      int64

	// fillPage is the shared page new lists are packed onto.
	fillPage pagedisk.PageID

	stats Stats

	// Scratch buffers reused across calls so the hot paths (appends that
	// split, chain walks) do not allocate per operation.
	ownerScratch []int32
	relocScratch []int32
	pageScratch  []pagedisk.PageID

	// clusterOff disables inter-list packing (each new list gets its own
	// page); used by the clustering ablation.
	clusterOff bool
}

// NewStore creates a store for lists numbered 0..numLists-1 in a fresh disk
// file. Lists start empty. The pool must have at least 4 frames (append
// plus split relocation each hold up to two pins).
func NewStore(pool *buffer.Pool, name string, numLists int, victim ListPolicy) *Store {
	if pool.Size() < 4 {
		panic("slist: buffer pool must have at least 4 frames")
	}
	s := &Store{
		pool:     pool,
		file:     pool.Disk().CreateFile(name),
		victim:   victim,
		head:     make([]Ref, numLists),
		tail:     make([]Ref, numLists),
		length:   make([]int32, numLists),
		lastUse:  make([]int64, numLists),
		fillPage: pagedisk.InvalidPage,
	}
	for i := range s.head {
		s.head[i], s.tail[i] = nilRef, nilRef
	}
	return s
}

// SetClustering enables or disables inter-list packing of new lists onto a
// shared fill page. On by default; the ablation experiment turns it off.
func (s *Store) SetClustering(on bool) { s.clusterOff = !on }

// File returns the store's disk file.
func (s *Store) File() pagedisk.FileID { return s.file }

// Pool returns the buffer pool the store operates through.
func (s *Store) Pool() *buffer.Pool { return s.pool }

// NumLists reports the directory size.
func (s *Store) NumLists() int { return len(s.head) }

// Len reports the number of entries in list id.
func (s *Store) Len(id int32) int { return int(s.length[id]) }

// Stats returns split-machinery counters.
func (s *Store) Stats() Stats { return s.stats }

// --- on-page block accessors -------------------------------------------

func blockOff(blk int16) int { return headerSize + int(blk)*blockSize }

func pageBitmap(pg *pagedisk.Page) uint32 {
	return binary.LittleEndian.Uint32(pg[0:4])
}

func setPageBitmap(pg *pagedisk.Page, bm uint32) {
	binary.LittleEndian.PutUint32(pg[0:4], bm)
}

func blockEntry(pg *pagedisk.Page, blk int16, i int) int32 {
	return int32(binary.LittleEndian.Uint32(pg[blockOff(blk)+4*i:]))
}

func setBlockEntry(pg *pagedisk.Page, blk int16, i int, v int32) {
	binary.LittleEndian.PutUint32(pg[blockOff(blk)+4*i:], uint32(v))
}

func blockNext(pg *pagedisk.Page, blk int16) Ref {
	off := blockOff(blk)
	p := int32(binary.LittleEndian.Uint32(pg[off+60:]))
	b := int8(pg[off+64])
	if p < 0 {
		return nilRef
	}
	return Ref{Page: pagedisk.PageID(p), Blk: int16(b)}
}

func setBlockNext(pg *pagedisk.Page, blk int16, next Ref) {
	off := blockOff(blk)
	binary.LittleEndian.PutUint32(pg[off+60:], uint32(next.Page))
	pg[off+64] = byte(int8(next.Blk))
}

func blockUsed(pg *pagedisk.Page, blk int16) int { return int(pg[blockOff(blk)+65]) }

func setBlockUsed(pg *pagedisk.Page, blk int16, n int) { pg[blockOff(blk)+65] = byte(n) }

func blockOwner(pg *pagedisk.Page, blk int16) int32 {
	return int32(binary.LittleEndian.Uint16(pg[blockOff(blk)+66:]))
}

func setBlockOwner(pg *pagedisk.Page, blk int16, id int32) {
	if id < 0 || id > 0xFFFF {
		panic(fmt.Sprintf("slist: list id %d out of range for block owner field", id))
	}
	binary.LittleEndian.PutUint16(pg[blockOff(blk)+66:], uint16(id))
}

// freeBlockOn returns a free block index on the page, or -1.
func freeBlockOn(pg *pagedisk.Page) int16 {
	bm := pageBitmap(pg)
	for b := int16(0); b < BlocksPerPage; b++ {
		if bm&(1<<uint(b)) == 0 {
			return b
		}
	}
	return -1
}

// claimBlock marks a block allocated and initializes it for owner id.
func claimBlock(pg *pagedisk.Page, blk int16, id int32) {
	setPageBitmap(pg, pageBitmap(pg)|1<<uint(blk))
	setBlockNext(pg, blk, nilRef)
	setBlockUsed(pg, blk, 0)
	setBlockOwner(pg, blk, id)
}

// releaseBlock marks a block free.
func releaseBlock(pg *pagedisk.Page, blk int16) {
	setPageBitmap(pg, pageBitmap(pg)&^(1<<uint(blk)))
}

// --- append path ---------------------------------------------------------

// Append adds v at the end of list id.
func (s *Store) Append(id int32, v int32) error {
	return s.AppendAll(id, []int32{v})
}

// AppendAll appends every value in vs to list id. It holds the tail page
// pinned across consecutive same-page writes, so bulk appends cost one
// buffer access per block rather than per entry.
func (s *Store) AppendAll(id int32, vs []int32) error {
	if len(vs) == 0 {
		return nil
	}
	s.clock++
	s.lastUse[id] = s.clock
	i := 0
	for i < len(vs) {
		// Ensure the tail block has room, splitting/overflowing as needed.
		if err := s.ensureTailRoom(id); err != nil {
			return err
		}
		t := s.tail[id]
		h, err := s.pool.Get(s.file, t.Page)
		if err != nil {
			return err
		}
		pg := h.Data()
		used := blockUsed(pg, t.Blk)
		for i < len(vs) && used < BlockEntries {
			setBlockEntry(pg, t.Blk, used, vs[i])
			used++
			i++
			s.length[id]++
		}
		setBlockUsed(pg, t.Blk, used)
		s.pool.Unpin(&h, true)
	}
	return nil
}

// ensureTailRoom guarantees that s.tail[id] names a block with at least one
// free entry slot, growing the chain if necessary.
func (s *Store) ensureTailRoom(id int32) error {
	if !s.tail[id].valid() {
		// First block of a new list: pack onto the shared fill page.
		ref, err := s.allocFirstBlock(id)
		if err != nil {
			return err
		}
		s.head[id], s.tail[id] = ref, ref
		return nil
	}
	t := s.tail[id]
	h, err := s.pool.Get(s.file, t.Page)
	if err != nil {
		return err
	}
	if blockUsed(h.Data(), t.Blk) < BlockEntries {
		s.pool.Unpin(&h, false)
		return nil
	}
	// Tail block full: try a free block on the same page (intra-list
	// clustering).
	if blk := freeBlockOn(h.Data()); blk >= 0 {
		claimBlock(h.Data(), blk, id)
		setBlockNext(h.Data(), t.Blk, Ref{Page: t.Page, Blk: blk})
		s.tail[id] = Ref{Page: t.Page, Blk: blk}
		s.pool.Unpin(&h, true)
		return nil
	}
	// Page full. If other lists own blocks here, relocate one (page split);
	// otherwise spill to a dedicated overflow page.
	victims := s.ownersOnPage(h.Data(), id)
	s.pool.Unpin(&h, false)
	if len(victims) > 0 {
		if err := s.split(t.Page, id, victims); err != nil {
			return err
		}
		// A block was freed on the page; claim it.
		h2, err := s.pool.Get(s.file, t.Page)
		if err != nil {
			return err
		}
		blk := freeBlockOn(h2.Data())
		if blk < 0 {
			s.pool.Unpin(&h2, false)
			return fmt.Errorf("slist: split of page %d freed no block", t.Page)
		}
		claimBlock(h2.Data(), blk, id)
		setBlockNext(h2.Data(), t.Blk, Ref{Page: t.Page, Blk: blk})
		s.tail[id] = Ref{Page: t.Page, Blk: blk}
		s.pool.Unpin(&h2, true)
		return nil
	}
	return s.overflow(id)
}

// allocFirstBlock places the first block of list id, packing new lists onto
// the shared fill page unless clustering is disabled.
func (s *Store) allocFirstBlock(id int32) (Ref, error) {
	if !s.clusterOff && s.fillPage != pagedisk.InvalidPage {
		h, err := s.pool.Get(s.file, s.fillPage)
		if err != nil {
			return nilRef, err
		}
		if blk := freeBlockOn(h.Data()); blk >= 0 {
			claimBlock(h.Data(), blk, id)
			ref := Ref{Page: s.fillPage, Blk: blk}
			s.pool.Unpin(&h, true)
			return ref, nil
		}
		s.pool.Unpin(&h, false)
	}
	pid, h, err := s.pool.GetNew(s.file)
	if err != nil {
		return nilRef, err
	}
	claimBlock(h.Data(), 0, id)
	s.pool.Unpin(&h, true)
	if !s.clusterOff {
		s.fillPage = pid
	}
	return Ref{Page: pid, Blk: 0}, nil
}

// overflow extends list id onto a fresh page of its own.
func (s *Store) overflow(id int32) error {
	pid, h, err := s.pool.GetNew(s.file)
	if err != nil {
		return err
	}
	claimBlock(h.Data(), 0, id)
	s.pool.Unpin(&h, true)
	t := s.tail[id]
	ht, err := s.pool.Get(s.file, t.Page)
	if err != nil {
		return err
	}
	setBlockNext(ht.Data(), t.Blk, Ref{Page: pid, Blk: 0})
	s.pool.Unpin(&ht, true)
	s.tail[id] = Ref{Page: pid, Blk: 0}
	s.stats.Overflows++
	return nil
}

// ownersOnPage lists the distinct list IDs other than exclude that own
// blocks on the page. The result aliases the store's scratch buffer and is
// valid until the next call; a page holds at most BlocksPerPage owners, so
// linear dedup beats a map allocation.
func (s *Store) ownersOnPage(pg *pagedisk.Page, exclude int32) []int32 {
	bm := pageBitmap(pg)
	out := s.ownerScratch[:0]
	for b := int16(0); b < BlocksPerPage; b++ {
		if bm&(1<<uint(b)) == 0 {
			continue
		}
		o := blockOwner(pg, b)
		if o == exclude {
			continue
		}
		dup := false
		for _, seen := range out {
			if seen == o {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, o)
		}
	}
	s.ownerScratch = out
	return out
}

// split relocates one victim list off the page so that the growing list can
// take its blocks. The victim is chosen by the store's list replacement
// policy (Section 5.1).
func (s *Store) split(page pagedisk.PageID, growing int32, victims []int32) error {
	v := s.victim.Victim(victims, func(id int32) int32 { return s.length[id] },
		func(id int32) int64 { return s.lastUse[id] })
	s.stats.Splits++
	return s.relocate(v)
}

// relocate moves an entire list to fresh storage: its entries are read,
// its blocks freed, and the contents re-appended onto a dedicated page run.
// All page traffic goes through the pool and is counted.
func (s *Store) relocate(id int32) error {
	// Read the full contents into the reusable scratch buffer (relocation
	// happens on every split; per-split allocation would dominate).
	vals := s.relocScratch[:0]
	var it Iterator
	it.Reset(s, id)
	for {
		v, ok := it.Next()
		if !ok {
			break
		}
		vals = append(vals, v)
	}
	it.Close()
	s.relocScratch = vals
	if err := it.Err(); err != nil {
		return err
	}
	// Free the old chain.
	if err := s.freeChain(id); err != nil {
		return err
	}
	// Rewrite onto dedicated pages (the relocated list becomes sole owner
	// of its new pages, so its own later growth cannot cascade splits).
	s.stats.ListsMoved++
	s.stats.EntriesMoved += int64(len(vals))
	tail := nilRef
	for i := 0; i < len(vals); i += BlockEntries {
		end := i + BlockEntries
		if end > len(vals) {
			end = len(vals)
		}
		var ref Ref
		if tail.valid() && s.pageHasRoom(tail.Page) {
			h, err := s.pool.Get(s.file, tail.Page)
			if err != nil {
				return err
			}
			blk := freeBlockOn(h.Data())
			claimBlock(h.Data(), blk, id)
			ref = Ref{Page: tail.Page, Blk: blk}
			for j := i; j < end; j++ {
				setBlockEntry(h.Data(), blk, j-i, vals[j])
			}
			setBlockUsed(h.Data(), blk, end-i)
			s.pool.Unpin(&h, true)
		} else {
			pid, h, err := s.pool.GetNew(s.file)
			if err != nil {
				return err
			}
			claimBlock(h.Data(), 0, id)
			ref = Ref{Page: pid, Blk: 0}
			for j := i; j < end; j++ {
				setBlockEntry(h.Data(), 0, j-i, vals[j])
			}
			setBlockUsed(h.Data(), 0, end-i)
			s.pool.Unpin(&h, true)
		}
		if tail.valid() {
			h, err := s.pool.Get(s.file, tail.Page)
			if err != nil {
				return err
			}
			setBlockNext(h.Data(), tail.Blk, ref)
			s.pool.Unpin(&h, true)
		} else {
			s.head[id] = ref
		}
		tail = ref
	}
	if len(vals) == 0 {
		s.head[id], s.tail[id] = nilRef, nilRef
	} else {
		s.tail[id] = tail
	}
	return nil
}

func (s *Store) pageHasRoom(pid pagedisk.PageID) bool {
	h, err := s.pool.Get(s.file, pid)
	if err != nil {
		return false
	}
	ok := freeBlockOn(h.Data()) >= 0
	s.pool.Unpin(&h, false)
	return ok
}

// freeChain releases every block of list id, leaving the directory entry
// empty.
func (s *Store) freeChain(id int32) error {
	ref := s.head[id]
	for ref.valid() {
		h, err := s.pool.Get(s.file, ref.Page)
		if err != nil {
			return err
		}
		next := blockNext(h.Data(), ref.Blk)
		releaseBlock(h.Data(), ref.Blk)
		s.pool.Unpin(&h, true)
		ref = next
	}
	s.head[id], s.tail[id] = nilRef, nilRef
	return nil
}

// Clear empties list id, releasing its blocks for reuse.
func (s *Store) Clear(id int32) error {
	if err := s.freeChain(id); err != nil {
		return err
	}
	s.length[id] = 0
	return nil
}

// --- read path -----------------------------------------------------------

// Iterator walks one list front to back, holding at most one page pinned.
// Callers must Close it and should check Err.
//
// The iterator is defensive about on-page state: a corrupt chain (block
// index outside the page layout, an entry count exceeding the block size,
// or a cycle of next-pointers) surfaces as an error from Err, never as an
// out-of-bounds access or an unterminated walk. Pages reach this code
// through the buffer pool from a store that fault injection or a damaged
// snapshot may have corrupted, so the read path cannot trust them.
type Iterator struct {
	s      *Store
	cur    Ref
	idx    int
	steps  int // blocks visited, bounds the walk against cyclic chains
	h      buffer.Handle
	pinned pagedisk.PageID
	err    error
}

// NewIterator returns an iterator positioned before the first entry.
// Hot loops that walk many lists should hold a value Iterator and Reset it
// instead, which avoids one heap allocation per list.
func (s *Store) NewIterator(id int32) *Iterator {
	it := new(Iterator)
	it.Reset(s, id)
	return it
}

// Reset repositions the iterator before the first entry of list id in
// store s, releasing any page the previous walk still holds pinned. A
// zero-value Iterator may be Reset directly; after Reset the iterator is
// exactly as fresh as one from NewIterator.
func (it *Iterator) Reset(s *Store, id int32) {
	if it.s != nil {
		it.release()
	}
	s.clock++
	s.lastUse[id] = s.clock
	*it = Iterator{s: s, cur: s.head[id], pinned: pagedisk.InvalidPage}
}

// Next returns the next entry. ok is false at the end of the list or on
// error (check Err).
func (it *Iterator) Next() (v int32, ok bool) {
	for {
		if !it.cur.valid() || it.err != nil {
			it.release()
			return 0, false
		}
		if it.cur.Blk < 0 || it.cur.Blk >= BlocksPerPage {
			it.err = fmt.Errorf("slist: corrupt chain: block index %d outside page layout", it.cur.Blk)
			it.release()
			return 0, false
		}
		if it.pinned != it.cur.Page {
			it.release()
			h, err := it.s.pool.Get(it.s.file, it.cur.Page)
			if err != nil {
				it.err = err
				return 0, false
			}
			it.h = h
			it.pinned = it.cur.Page
		}
		pg := it.h.Data()
		used := blockUsed(pg, it.cur.Blk)
		if used > BlockEntries {
			it.err = fmt.Errorf("slist: corrupt block %d on page %d: %d entries used, capacity %d",
				it.cur.Blk, it.cur.Page, used, BlockEntries)
			it.release()
			return 0, false
		}
		if it.idx < used {
			v = blockEntry(pg, it.cur.Blk, it.idx)
			it.idx++
			return v, true
		}
		// A well-formed chain visits each block at most once; a walk longer
		// than every block in the file is a next-pointer cycle.
		if it.steps++; it.steps > (it.s.pool.Disk().NumPages(it.s.file)+1)*BlocksPerPage {
			it.err = fmt.Errorf("slist: corrupt chain: next-pointer cycle after %d blocks", it.steps)
			it.release()
			return 0, false
		}
		it.cur = blockNext(pg, it.cur.Blk)
		it.idx = 0
	}
}

// Err reports the first error the iterator encountered, if any.
func (it *Iterator) Err() error { return it.err }

func (it *Iterator) release() {
	if it.pinned != pagedisk.InvalidPage {
		it.s.pool.Unpin(&it.h, false)
		it.pinned = pagedisk.InvalidPage
	}
}

// Close releases any pinned page. Safe to call multiple times.
func (it *Iterator) Close() { it.release() }

// ReadAll returns the full contents of list id.
func (s *Store) ReadAll(id int32) ([]int32, error) {
	out := make([]int32, 0, s.length[id])
	it := s.NewIterator(id)
	for {
		v, ok := it.Next()
		if !ok {
			break
		}
		out = append(out, v)
	}
	it.Close()
	return out, it.Err()
}

// PinList walks the chain of list id and returns one pinned handle per
// distinct page, in first-visit order. Used by the Hybrid algorithm to fix
// the diagonal block in memory. The caller must UnpinAll the result.
// If the pool runs out of frames the already-acquired handles are released
// and buffer.ErrNoFrames is returned, which the caller treats as the signal
// to reblock.
func (s *Store) PinList(id int32) ([]buffer.Handle, error) {
	var handles []buffer.Handle
	seen := s.seenPages()
	ref := s.head[id]
	for ref.valid() {
		if !pageSeen(seen, ref.Page) {
			h, err := s.pool.Get(s.file, ref.Page)
			if err != nil {
				s.UnpinAll(handles)
				return nil, err
			}
			seen = append(seen, ref.Page)
			s.pageScratch = seen
			handles = append(handles, h)
		}
		// The page is pinned; read the next pointer through the pool (hit).
		h, err := s.pool.Get(s.file, ref.Page)
		if err != nil {
			s.UnpinAll(handles)
			return nil, err
		}
		next := blockNext(h.Data(), ref.Blk)
		s.pool.Unpin(&h, false)
		ref = next
	}
	return handles, nil
}

// UnpinAll releases handles returned by PinList.
func (s *Store) UnpinAll(handles []buffer.Handle) {
	for i := range handles {
		s.pool.Unpin(&handles[i], false)
	}
}

// NumPagesUsed reports the store file's length in pages (for space
// accounting in experiments).
func (s *Store) NumPagesUsed() int { return s.pool.Disk().NumPages(s.file) }

// FlushList walks the chain of list id and writes every distinct dirty
// page it touches back to disk — the paper's "write the expanded lists of
// the query source nodes out to disk" step. Locating the chain goes
// through the buffer pool and is charged as usual.
func (s *Store) FlushList(id int32) error {
	seen := s.seenPages()
	ref := s.head[id]
	for ref.valid() {
		h, err := s.pool.Get(s.file, ref.Page)
		if err != nil {
			return err
		}
		next := blockNext(h.Data(), ref.Blk)
		s.pool.Unpin(&h, false)
		if !pageSeen(seen, ref.Page) {
			seen = append(seen, ref.Page)
			s.pageScratch = seen
			if err := s.pool.FlushPage(s.file, ref.Page); err != nil {
				return err
			}
		}
		ref = next
	}
	return nil
}

// seenPages returns the empty reusable distinct-page scratch buffer. A
// list's chain touches few distinct pages, so linear membership tests
// (pageSeen) are cheaper than a per-call map.
func (s *Store) seenPages() []pagedisk.PageID { return s.pageScratch[:0] }

func pageSeen(seen []pagedisk.PageID, p pagedisk.PageID) bool {
	for _, q := range seen {
		if q == p {
			return true
		}
	}
	return false
}

// DiscardAll invalidates every resident page of the store without writing,
// dropping intermediate results that are no longer needed.
func (s *Store) DiscardAll() { s.pool.DiscardFile(s.file) }
